// Finetune: simulate fine-tuning OPT-13B with LoRA + recomputation +
// offloading (the paper's most fragmentation-prone strategy mix) on the
// PyTorch caching allocator and on GMLake, side by side.
//
// This is the paper's core end-to-end claim in one program: same workload,
// same device, ~25% less reserved memory with GMLake at equal throughput.
//
// Run with: go run ./examples/finetune
package main

import (
	"fmt"
	"log"

	gmlake "repro"
)

const (
	warmupSteps   = 80 // let GMLake's stitched-block cache converge (§5.4)
	measuredSteps = 10
)

func main() {
	spec := gmlake.TrainSpec{
		Model:    gmlake.OPT13B,
		Strategy: gmlake.StrategyLRO,
		World:    4,  // ZeRO-3 over 4 GPUs
		Batch:    24, // per-GPU micro-batch
		Seed:     7,
	}
	fmt.Printf("fine-tuning %s, strategy %s, %d GPUs, batch %d\n\n",
		spec.Model.Name, spec.Strategy.Label(), spec.World, spec.Batch)

	type outcome struct {
		name       string
		stats      gmlake.Stats
		throughput float64
	}
	var results []outcome

	for _, which := range []string{"caching", "gmlake"} {
		sys := gmlake.NewSystem(80 * gmlake.GiB)
		var alloc gmlake.MemoryAllocator
		if which == "gmlake" {
			alloc = gmlake.New(sys.Driver)
		} else {
			alloc = gmlake.NewCaching(sys.Driver)
		}
		tr, err := gmlake.NewTrainer(spec, alloc, sys.Clock)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Setup(); err != nil {
			log.Fatalf("%s: setup: %v", which, err)
		}
		for i := 0; i < warmupSteps; i++ {
			if err := tr.Step(); err != nil {
				log.Fatalf("%s: step %d: %v", which, i, err)
			}
		}
		start := sys.Clock.Now()
		for i := 0; i < measuredSteps; i++ {
			if err := tr.Step(); err != nil {
				log.Fatalf("%s: measured step: %v", which, err)
			}
		}
		elapsed := (sys.Clock.Now() - start).Seconds()
		thr := float64(measuredSteps*spec.Batch*spec.World) / elapsed
		results = append(results, outcome{which, alloc.Stats(), thr})
		tr.Teardown()
	}

	fmt.Printf("%-10s %14s %14s %12s %14s\n",
		"allocator", "peak active", "peak reserved", "utilization", "throughput")
	for _, r := range results {
		fmt.Printf("%-10s %13.1fG %13.1fG %11.1f%% %11.1f/s\n",
			r.name,
			float64(r.stats.PeakActive)/float64(gmlake.GiB),
			float64(r.stats.PeakReserved)/float64(gmlake.GiB),
			100*r.stats.Utilization(), r.throughput)
	}
	saved := results[0].stats.PeakReserved - results[1].stats.PeakReserved
	fmt.Printf("\nGMLake saves %.1f GB of reserved GPU memory on this workload.\n",
		float64(saved)/float64(gmlake.GiB))
}
