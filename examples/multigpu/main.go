// Multigpu: reproduce the paper's scale-out observation (Figures 4 and 11)
// as a runnable program: as ZeRO-3 shards a fine-tune over more GPUs, the
// caching allocator fragments more, while GMLake's utilization stays flat.
//
// Each world size simulates rank 0's allocator; ranks are symmetric under
// data parallelism.
//
// Run with: go run ./examples/multigpu
package main

import (
	"fmt"
	"log"

	gmlake "repro"
)

func main() {
	fmt.Println("GPT-NeoX-20B, LoRA + recomputation, batch 12/GPU (paper Figure 11c)")
	fmt.Printf("\n%5s  %22s  %22s\n", "GPUs", "caching util/reserved", "gmlake util/reserved")

	for _, world := range []int{1, 2, 4, 8, 16} {
		spec := gmlake.TrainSpec{
			Model:    gmlake.GPTNeoX20B,
			Strategy: gmlake.StrategyLR,
			World:    world,
			Batch:    12,
			Seed:     7,
		}
		row := fmt.Sprintf("%5d", world)
		for _, which := range []string{"caching", "gmlake"} {
			sys := gmlake.NewSystem(80 * gmlake.GiB)
			var alloc gmlake.MemoryAllocator
			if which == "gmlake" {
				alloc = gmlake.New(sys.Driver)
			} else {
				alloc = gmlake.NewCaching(sys.Driver)
			}
			tr, err := gmlake.NewTrainer(spec, alloc, sys.Clock)
			if err != nil {
				log.Fatal(err)
			}
			if err := tr.Setup(); err != nil {
				log.Fatalf("world %d: %v", world, err)
			}
			for i := 0; i < 50; i++ {
				if err := tr.Step(); err != nil {
					log.Fatalf("world %d: %v", world, err)
				}
			}
			st := alloc.Stats()
			row += fmt.Sprintf("  %9.1f%% / %6.1fGB",
				100*st.Utilization(), float64(st.PeakReserved)/float64(gmlake.GiB))
			tr.Teardown()
		}
		fmt.Println(row)
	}
	fmt.Println("\npaper: baseline utilization decays toward ~76% at 16 GPUs; GMLake holds ~90%+")
}
