// Serving: compare KV-cache policies for LLM inference on the same
// heterogeneous multi-tenant request stream — the paper's Table 3 scope
// argument, executable, now with ServeGen-style client decomposition.
//
// The workload is the mixed-bursty mix: steady interactive chat, a strongly
// bursty agent tenant (Gamma interarrivals) and on-off batch backfill, each
// with its own SLO class. Three policies manage the KV cache of an
// OPT-1.3B server under continuous batching:
//
//   - contiguous: pad every sequence to the maximum length (pre-vLLM);
//   - paged: vLLM's block table inside one pre-reserved slab;
//   - chunked: grow each sequence through an ordinary tensor allocator,
//     run once over the caching allocator and once over GMLake.
//
// The per-SLO-class tables show what aggregates hide: under the pad-to-max
// baseline the batch classes absorb enormous queueing delay while paging
// and chunking keep every class's TTFT low — and admission/preemption are
// SLO-aware, so interactive tenants are evicted last.
//
// The next sections scale out: a fixed multi-replica cluster with
// priority aging, then an elastic fleet — queue-depth autoscaling with
// drain-on-idle, work-stealing re-dispatch of queued requests, and
// capacity-weighted dispatch for heterogeneous replicas.
//
// A fault-injection section crashes a replica mid-decode on a scripted
// schedule and walks through what recovery does: queued requests
// re-dispatch for free, in-flight ones retry with recompute-from-scratch
// cost (TTFT surviving only if the first token had streamed), deadlines
// split completions into goodput and misses, and admission shedding
// rejects provably-late requests up front.
//
// A session section switches to the chat-sessions mix — multi-turn
// conversations whose turn N+1 prompt embeds turn N's prompt and output —
// and compares dispatch policies with KV prefix reuse on: session-affinity
// routes a follow-up turn to the replica still holding its prefix, so the
// resident tokens skip prefill and the turn's TTFT drops, where jsq
// scatters the turns and mostly misses.
//
// The final section closes the specify→observe→calibrate loop with request
// traces: a capture hook records every completed request, the trace
// round-trips through a file byte-identically, replaying it reproduces the
// original report exactly, and fitting it recovers a calibrated mix with a
// quantified fit error.
//
// A closing section contrasts the two latency-reporting modes: exact
// nearest-rank percentiles (the default while a digest holds at most
// exact_samples raw values) versus the fixed-size streaming quantile
// sketch the digests spill into at million-request scale — same stream,
// near-identical percentiles, flat memory.
//
// # Request-trace file format
//
// A request trace stores one record per request — arrival offset
// (integer nanoseconds), client class, SLO tag, priority, prompt tokens,
// output tokens — sorted by arrival, in either of two versioned formats:
//
// JSONL (default; a header object, then one record per line):
//
//	{"format":"reqtrace","version":1}
//	{"arrival_ns":212334791,"class":"chat","slo":"interactive","priority":2,"prompt_tokens":120,"output_tokens":64}
//
// CSV (written for .csv paths; a version comment, a column header, rows):
//
//	#reqtrace v1
//	arrival_ns,class,slo,priority,prompt_tokens,output_tokens
//	212334791,chat,interactive,2,120,64
//
// Readers sniff the format from the first byte, reject newer versions, and
// validate ordering and token counts on load. Arrival offsets are exact
// integer nanoseconds, which is what makes file round trips byte-identical.
//
// Run with: go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"time"

	gmlake "repro"
)

func main() {
	mix := gmlake.MixedBurstyMix()
	reqs, err := gmlake.GenMixRequests(mix, 150, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gmlake.OPT1_3B
	srvCfg := gmlake.ServeConfig{MaxBatch: 24}
	const capacity = 3 * gmlake.GiB / 2

	fmt.Printf("mix %s: %d requests over %d client classes, %.1f req/s aggregate\n\n",
		mix.Name, len(reqs), len(mix.Classes), mix.Rate)

	show := func(policy, pool string, rep gmlake.ServeReport, st gmlake.Stats) {
		fmt.Printf("%s over %s: served %d in %s virtual, %d preemptions, pool util %.1f%%, reserved %s\n",
			policy, pool, rep.Served, rep.Duration.Round(time.Millisecond), rep.Preemptions,
			100*st.Utilization(), gb(st.PeakReserved))
		fmt.Printf("  %-16s %-12s %7s %10s %10s %10s %8s\n",
			"class", "SLO", "served", "TTFT p50", "TTFT p99", "e2e p99", "KV share")
		for _, c := range rep.Classes {
			fmt.Printf("  %-16s %-12s %7d %8dms %8dms %8dms %7.1f%%\n",
				c.Class, c.SLO, c.Served, c.TTFT.P50.Milliseconds(),
				c.TTFT.P99.Milliseconds(), c.E2E.P99.Milliseconds(), 100*c.KVShare)
		}
		fmt.Println()
	}

	// Pad-to-max baseline.
	{
		sys := gmlake.NewSystem(capacity)
		alloc := gmlake.NewCaching(sys.Driver)
		mgr := gmlake.NewContiguousKV(alloc, cfg, 1024)
		rep, err := gmlake.ServeRequests(reqs, mgr, srvCfg)
		if err != nil {
			log.Fatal(err)
		}
		show("contiguous", "caching", rep, alloc.Stats())
	}

	// vLLM-style paging.
	{
		sys := gmlake.NewSystem(capacity)
		alloc := gmlake.NewCaching(sys.Driver)
		mgr, err := gmlake.NewPagedKV(alloc, cfg, 16, 448)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := gmlake.ServeRequests(reqs, mgr, srvCfg)
		if err != nil {
			log.Fatal(err)
		}
		show("paged (vLLM)", "caching", rep, alloc.Stats())
		mgr.Close()
	}

	// Ordinary-allocator growth, caching vs GMLake underneath.
	for _, pool := range []string{"caching", "gmlake"} {
		sys := gmlake.NewSystem(capacity)
		var alloc gmlake.MemoryAllocator
		if pool == "gmlake" {
			alloc = gmlake.New(sys.Driver)
		} else {
			alloc = gmlake.NewCaching(sys.Driver)
		}
		mgr := gmlake.NewChunkedKV(alloc, cfg, 64)
		rep, err := gmlake.ServeRequests(reqs, mgr, srvCfg)
		if err != nil {
			log.Fatal(err)
		}
		show("chunked", pool, rep, alloc.Stats())
	}

	fmt.Println("paged eliminates in-tensor padding; GMLake eliminates pool-level fragmentation")
	fmt.Println("under the chunked policy (compare the two chunked pool-util lines) — different")
	fmt.Println("scopes, complementary mechanisms (Table 3). per-class rows show the SLO story")
	fmt.Println("aggregates hide: batch absorbs the queueing tail.")
	fmt.Println()

	// Multi-replica cluster: the mix cranked to 4x its rate — a sustained
	// overload — sharded over three replicas behind a cluster-level
	// admission queue. Each replica gets its own device, pool and chunked
	// manager; join-shortest-queue dispatch routes each arrival to the
	// least-loaded replica, and priority aging keeps the batch tenant from
	// starving while the interactive tenants saturate admission.
	overload, err := gmlake.GenMixRequests(mix.WithRate(4*mix.Rate), 150, 7)
	if err != nil {
		log.Fatal(err)
	}
	newMgr := func(int) gmlake.KVCacheManager {
		sys := gmlake.NewSystem(capacity)
		return gmlake.NewChunkedKV(gmlake.New(sys.Driver), cfg, 64)
	}
	for _, aging := range []time.Duration{0, 2 * time.Second} {
		rep, err := gmlake.ServeClusterRequests(overload, newMgr, gmlake.ServeClusterConfig{
			Replicas: 3,
			Dispatch: gmlake.DispatchJSQ,
			Server:   gmlake.ServeConfig{MaxBatch: 4, Aging: aging},
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "aging off"
		if aging > 0 {
			label = "aging " + aging.String()
		}
		fmt.Printf("cluster 3x chunked/gmlake (jsq, %s): served %d in %s virtual, assigned %v\n",
			label, rep.Served, rep.Duration.Round(time.Millisecond), rep.Assigned)
		for _, c := range rep.Classes {
			fmt.Printf("  %-16s %-12s %7d %8dms %8dms %8dms\n",
				c.Class, c.SLO, c.Served, c.TTFT.P50.Milliseconds(),
				c.TTFT.P99.Milliseconds(), c.E2E.P99.Milliseconds())
		}
		fmt.Println()
	}
	fmt.Println("cluster percentiles merge the replicas' raw samples; with aging on, a starved")
	fmt.Println("batch request's effective priority rises one level per aging interval of wait,")
	fmt.Println("so fresh interactive arrivals eventually stop cutting ahead of it.")
	fmt.Println()

	// Elastic fleet: the same overload served by a queue-depth autoscaler
	// instead of a fixed fleet. The scaler watches the queued backlog in
	// virtual time: above ScaleUpDepth requests per active replica it
	// spawns one (up to MaxReplicas); when the backlog thins it marks the
	// highest-index replica draining — the replica takes no new work and
	// leaves the fleet only once its queue and batch are empty, the
	// drain-on-idle rule that keeps runs deterministic. Work-stealing
	// re-dispatch (Steal) lets a replica that goes idle take QUEUED (never
	// running) requests from a backlogged peer, so an early-draining
	// replica helps instead of idling.
	//
	// Worked drain-on-idle example: under the 4x burst the fleet grows
	// 1 -> 3; when arrivals stop, replica 2 finishes its queue first, is
	// marked draining, empties, and leaves — its replica-seconds stop
	// accruing there, while a static 3-replica fleet pays 3 x makespan.
	for _, steal := range []bool{false, true} {
		rep, err := gmlake.ServeClusterRequests(overload, newMgr, gmlake.ServeClusterConfig{
			MinReplicas: 1,
			MaxReplicas: 3,
			Steal:       steal,
			Dispatch:    gmlake.DispatchJSQ,
			Server:      gmlake.ServeConfig{MaxBatch: 4},
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "elastic 1..3"
		if steal {
			label = "elastic 1..3 + stealing"
		}
		stolen := 0
		for _, n := range rep.Stolen {
			stolen += n
		}
		fmt.Printf("%s: served %d in %s virtual, peak %d replicas, %d spawns, %d drains, %d stolen\n",
			label, rep.Served, rep.Duration.Round(time.Millisecond),
			rep.PeakReplicas, rep.Spawns, rep.Drains, stolen)
		fmt.Printf("  fleet cost %.1f replica-seconds (static 3x fleet would pay %.1f), e2e p99 %s\n",
			rep.ReplicaSeconds.Seconds(), (3 * rep.Duration).Seconds(),
			rep.E2E.P99.Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("a heterogeneous fleet adds per-replica overrides: ServeReplicaOverride{Capacity: 2,")
	fmt.Println("MaxBatch: 8} makes replica 0 a double-size instance, and jsq/least-kv divide its")
	fmt.Println("observed load by the weight so it legitimately absorbs twice the demand.")
	fmt.Println()

	// Fault injection: the same overloaded stream on a 3-replica fleet,
	// with replica 1 crashing mid-run on a scripted schedule and restarting
	// two seconds later. Everything replica 1 held at the crash instant is
	// affected, but not equally:
	//
	//   - queued requests (dispatched to replica 1 but not yet admitted)
	//     lost nothing but their place in line — the cluster re-dispatches
	//     them immediately, keeping their arrival-order ticket, at no
	//     retry cost;
	//   - in-flight requests (decoding when the KV cache vanished) must
	//     recompute from scratch on another replica. Each consumes one of
	//     Recovery.Retries attempts, re-entering dispatch after an
	//     exponential-backoff delay. Their TTFT is preserved only if the
	//     first token had already streamed to the client — the same
	//     contract preemption honours; E2E always stretches.
	//
	// With Retries: 0 the in-flight requests would instead be abandoned
	// and counted in Lost. The deadline (Timeout) bounds end-to-end
	// latency across retries: a completion past its deadline still counts
	// as served, but not as goodput. Shed goes one step further and
	// rejects a request at admission the moment its minimum service time
	// cannot fit inside what remains of the deadline, freeing the batch
	// slot for a request that can still make it.
	plan, err := gmlake.ParseServeFaultPlan("crash@t=6s:r1/restart@t=8s:r1")
	if err != nil {
		log.Fatal(err)
	}
	for _, recov := range []gmlake.ServeRecoveryConfig{
		{},           // abandon crashed in-flight work
		{Retries: 3}, // retry it, default 50ms delay doubling per attempt
	} {
		rep, err := gmlake.ServeClusterRequests(overload, newMgr, gmlake.ServeClusterConfig{
			Replicas: 3,
			Dispatch: gmlake.DispatchJSQ,
			Server:   gmlake.ServeConfig{MaxBatch: 4, Timeout: 60 * time.Second, Shed: true},
			Faults:   gmlake.ServeFaultConfig{Plan: plan},
			Recovery: recov,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := "no retries"
		if recov.Retries > 0 {
			label = fmt.Sprintf("retries %d", recov.Retries)
		}
		fmt.Printf("crash@6s r1, restart@8s (%s): served %d, goodput %d, %d retries, %d lost, %d shed, %d misses, availability %.1f%%\n",
			label, rep.Served, rep.Goodput, rep.Retries, rep.Lost, rep.Shed,
			rep.DeadlineMisses, 100*rep.Availability)
	}
	fmt.Println()
	fmt.Println("faults fire only at event boundaries of the co-simulation, so a faulty run is")
	fmt.Println("exactly as deterministic as a fault-free one: same seed and plan, byte-identical")
	fmt.Println("report. Seeded MTTF/MTTR streams (ServeFaultConfig{MTTF, MTTR, Seed}) replace the")
	fmt.Println("script for statistical fault processes; the conf keys are mttf, mttr, fault_plan,")
	fmt.Println("timeout, retries, backoff, retry_budget and shed (same flags on gmlake-serve).")
	fmt.Println()

	// Multi-turn sessions and KV prefix reuse: the chat-sessions mix
	// generates conversations — turn N+1's prompt is turn N's prompt plus
	// its output plus a fresh user delta, arriving after a think-time gap,
	// with SessionID/Turn stamped on every request. PrefixReuse makes a
	// server remember, per completed session turn, how many tokens of that
	// conversation's KV it still holds; a follow-up turn admitted on the
	// same replica skips that many prompt tokens of prefill (a prefix
	// *hit* — its TTFT drops by exactly the skipped prefill time), while a
	// turn landing on a replica without the prefix pays full prefill (a
	// *miss*). Crashes, recompute preemption and deadline drops invalidate
	// residency — reuse is a compute shortcut, never a correctness risk.
	//
	// Residency is per replica, so in a fleet the dispatch policy decides
	// whether reuse ever fires: session-affinity routes a turn to the
	// replica holding its prefix and falls back to a base policy (jsq
	// here, affinity_base to change it) for first turns and lost prefixes.
	// The comparison below is the policy's whole trade, measured: affinity
	// converts misses into hits and cuts interactive TTFT, at the price of
	// a stickier (less balanced) assignment than pure jsq.
	sessMix := gmlake.ChatSessionsMix()
	sessReqs, err := gmlake.GenMixRequests(sessMix, 150, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mix %s: %d requests (multi-turn sessions over a batch floor)\n", sessMix.Name, len(sessReqs))
	for _, d := range []gmlake.DispatchPolicy{gmlake.DispatchSessionAffinity, gmlake.DispatchJSQ} {
		rep, err := gmlake.ServeClusterRequests(sessReqs, newMgr, gmlake.ServeClusterConfig{
			Replicas: 4,
			Dispatch: d,
			Server:   gmlake.ServeConfig{MaxBatch: 8, PrefixReuse: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		label := string(d)
		if d == gmlake.DispatchSessionAffinity {
			label = "session-affinity/jsq"
		}
		fmt.Printf("  %-20s TTFT p50 %4dms p99 %4dms  %3d hits %3d misses  %5d tokens reused  %3d affinity-routed  assigned %v\n",
			label, rep.TTFT.P50.Milliseconds(), rep.TTFT.P99.Milliseconds(),
			rep.PrefixHits, rep.PrefixMisses, rep.ReusedTokens, rep.AffinityRouted, rep.Assigned)
	}
	fmt.Println()
	fmt.Println("same stream, same reuse model — only the routing differs: affinity keeps a")
	fmt.Println("conversation on its replica so the resident prefix is there when the next turn")
	fmt.Println("arrives. The conf keys are serve_mix:chat-sessions, dispatch:session-affinity,")
	fmt.Println("prefix_reuse:true and affinity_base:<p>; gmlake-serve takes -mix chat-sessions")
	fmt.Println("-dispatch session-affinity -prefix-reuse -affinity-base jsq.")
	fmt.Println()

	// Request traces: capture → file → replay → calibrate. A capture hook
	// on the server records every completed request; the trace written to
	// disk (JSONL here — see the package comment for the format) replays
	// into the byte-identical request stream, so re-serving it reproduces
	// the original report exactly. Fitting the trace recovers a servegen
	// mix — class shares, arrival burstiness, length distributions — whose
	// fit error against the trace is measured, never assumed.
	dir, err := os.MkdirTemp("", "reqtrace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tracePath := filepath.Join(dir, "captured.jsonl")

	capture := gmlake.NewRequestCapture()
	{
		sys := gmlake.NewSystem(capacity)
		mgr := gmlake.NewChunkedKV(gmlake.New(sys.Driver), cfg, 64)
		srvCfg := srvCfg
		srvCfg.OnComplete = capture.Hook()
		if _, err := gmlake.ServeRequests(reqs, mgr, srvCfg); err != nil {
			log.Fatal(err)
		}
	}
	if err := capture.Trace().WriteFile(tracePath); err != nil {
		log.Fatal(err)
	}
	loaded, err := gmlake.ReadRequestTrace(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := loaded.Replay(gmlake.TraceReplayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d completed requests into %s; replay identical to the generated stream: %v\n",
		capture.Count(), filepath.Base(tracePath), reflect.DeepEqual(replayed, reqs))

	fitted, err := gmlake.FitRequestTrace(loaded)
	if err != nil {
		log.Fatal(err)
	}
	fitErr, err := gmlake.RequestTraceFitError(loaded, fitted, len(reqs), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted mix: %d classes at %.1f req/s; fit error vs trace: rate %.1f%%, prompt mean %.1f%%, output mean %.1f%%\n",
		len(fitted.Classes), fitted.Rate, 100*fitErr.RateErr, 100*fitErr.PromptMeanErr, 100*fitErr.OutputMeanErr)
	stats := loaded.Stats()
	for _, c := range stats.Classes {
		fmt.Printf("  %-16s %6d reqs  %.2f req/s  prompt mean %4.0f  output mean %4.0f\n",
			c.Class, c.Requests, c.RatePerSec, c.MeanPrompt, c.MeanOutput)
	}
	fmt.Println()
	fmt.Println("the trace keys wire the same loop through configuration strings and gmlake-serve:")
	fmt.Println("  trace_out:prod.jsonl            capture a run        (-trace-out)")
	fmt.Println("  trace_in:prod.jsonl             replay it            (-trace-in)")
	fmt.Println("  trace_in:prod.jsonl,trace_scale:2   replay at 2x rate (-trace-scale)")
	fmt.Println("  trace_in:prod.jsonl,fit:true    serve the fitted mix (-fit)")
	fmt.Println("and EmpiricalDist/TraceArrivalProcess feed captured samples straight into a")
	fmt.Println("WorkloadMix when no parametric family fits.")
	fmt.Println()

	// Streaming percentiles: every latency table above was exact — each
	// digest retains raw samples and applies the exact nearest-rank rule
	// up to ServeConfig.ExactSamples values (default
	// gmlake.DefaultServeExactSamples = 8192, so small runs like this one
	// render byte-identically to the historical tables). One sample past
	// the threshold the digest spills into a fixed-size deterministic
	// quantile sketch, so a 10M-request run keeps a few thousand buckets
	// instead of millions of samples, within a ~1% relative rank-error
	// bound. ExactSamples: -1 forces the sketch path from the first
	// sample — on the same stream its percentiles land next to the exact
	// ones, and the retained/sketched sample counts show the footprint
	// trade directly. The conf key is exact_samples:<n>
	// (-exact-samples on gmlake-serve and gmlake-bench).
	serveWith := func(exactSamples int) gmlake.ServeReport {
		sys := gmlake.NewSystem(capacity)
		mgr := gmlake.NewChunkedKV(gmlake.New(sys.Driver), cfg, 64)
		cfg := srvCfg
		cfg.ExactSamples = exactSamples
		rep, err := gmlake.ServeRequests(reqs, mgr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	exactRep, sketchRep := serveWith(0), serveWith(-1)
	fmt.Printf("exact digests (default): E2E p50/p99 %v/%v, %d raw samples retained, %d sketched\n",
		exactRep.E2E.P50, exactRep.E2E.P99, exactRep.RetainedSamples, exactRep.SketchedSamples)
	fmt.Printf("sketch-only (exact_samples:-1): E2E p50/p99 %v/%v, %d raw samples retained, %d sketched\n",
		sketchRep.E2E.P50, sketchRep.E2E.P99, sketchRep.RetainedSamples, sketchRep.SketchedSamples)
}

func gb(n int64) string { return fmt.Sprintf("%.2f GB", float64(n)/float64(gmlake.GiB)) }
