// Serving: compare KV-cache policies for LLM inference on the same request
// stream — the paper's Table 3 scope argument, executable.
//
// Three policies manage the KV cache of an OPT-1.3B server under continuous
// batching:
//
//   - contiguous: pad every sequence to the maximum length (pre-vLLM);
//   - paged: vLLM's block table inside one pre-reserved slab;
//   - chunked: grow each sequence through an ordinary tensor allocator,
//     run once over the caching allocator and once over GMLake.
//
// The chunked rows show the paper's point: variable prompt sizes fragment
// the caching allocator's pool while GMLake's virtual memory stitching
// absorbs them — a layer of waste vLLM's in-tensor paging cannot see.
//
// Run with: go run ./examples/serving
package main

import (
	"fmt"
	"log"

	gmlake "repro"
)

func main() {
	reqs, err := gmlake.GenServeRequests(150, gmlake.DefaultServeMix(), 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gmlake.OPT1_3B
	fmt.Printf("%-14s %-9s %8s %10s %10s %12s %10s\n",
		"policy", "pool", "served", "mgr waste", "pool util", "reserved", "preempt")

	show := func(policy, pool string, rep gmlake.ServeReport, stats gmlake.Stats) {
		fmt.Printf("%-14s %-9s %8d %9.1f%% %9.1f%% %12s %10d\n",
			policy, pool, rep.Served, 100*rep.MeanWaste,
			100*stats.Utilization(), gb(stats.PeakReserved), rep.Preemptions)
	}

	// Pad-to-max baseline.
	{
		sys := gmlake.NewSystem(16 * gmlake.GiB)
		alloc := gmlake.NewCaching(sys.Driver)
		mgr := gmlake.NewContiguousKV(alloc, cfg, 1024)
		rep, err := gmlake.ServeRequests(reqs, mgr, gmlake.ServeConfig{MaxBatch: 12})
		if err != nil {
			log.Fatal(err)
		}
		show("contiguous", "caching", rep, alloc.Stats())
	}

	// vLLM-style paging.
	{
		sys := gmlake.NewSystem(16 * gmlake.GiB)
		alloc := gmlake.NewCaching(sys.Driver)
		mgr, err := gmlake.NewPagedKV(alloc, cfg, 16, 4096)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := gmlake.ServeRequests(reqs, mgr, gmlake.ServeConfig{MaxBatch: 12})
		if err != nil {
			log.Fatal(err)
		}
		show("paged (vLLM)", "caching", rep, alloc.Stats())
		mgr.Close()
	}

	// Ordinary-allocator growth, caching vs GMLake underneath.
	for _, pool := range []string{"caching", "gmlake"} {
		sys := gmlake.NewSystem(16 * gmlake.GiB)
		var alloc gmlake.MemoryAllocator
		if pool == "gmlake" {
			alloc = gmlake.New(sys.Driver)
		} else {
			alloc = gmlake.NewCaching(sys.Driver)
		}
		mgr := gmlake.NewChunkedKV(alloc, cfg, 64)
		rep, err := gmlake.ServeRequests(reqs, mgr, gmlake.ServeConfig{MaxBatch: 12})
		if err != nil {
			log.Fatal(err)
		}
		show("chunked", pool, rep, alloc.Stats())
	}

	fmt.Println("\npaged eliminates in-tensor padding; GMLake eliminates pool-level fragmentation")
	fmt.Println("under the chunked policy — different scopes, complementary mechanisms (Table 3).")
}

func gb(n int64) string { return fmt.Sprintf("%.2f GB", float64(n)/float64(gmlake.GiB)) }
