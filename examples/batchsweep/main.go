// Batchsweep: push the per-GPU batch size to the out-of-memory frontier on
// both allocators (the paper's Figure 13). The caching allocator dies first;
// GMLake's defragmentation buys several extra batch-size steps — i.e., more
// useful work from the same hardware.
//
// Run with: go run ./examples/batchsweep
package main

import (
	"fmt"
	"log"

	gmlake "repro"
)

func main() {
	fmt.Println("OPT-1.3B, LoRA + recomputation + ZeRO-3 on 4x80GB (paper Figure 13a)")
	fmt.Printf("\n%6s  %18s  %18s\n", "batch", "caching reserved", "gmlake reserved")

	for _, batch := range []int{32, 64, 128, 192, 224, 249} {
		spec := gmlake.TrainSpec{
			Model:    gmlake.OPT1_3B,
			Strategy: gmlake.StrategyLR,
			World:    4,
			Batch:    batch,
			Seed:     7,
		}
		row := fmt.Sprintf("%6d", batch)
		for _, which := range []string{"caching", "gmlake"} {
			sys := gmlake.NewSystem(80 * gmlake.GiB)
			var alloc gmlake.MemoryAllocator
			if which == "gmlake" {
				alloc = gmlake.New(sys.Driver)
			} else {
				alloc = gmlake.NewCaching(sys.Driver)
			}
			tr, err := gmlake.NewTrainer(spec, alloc, sys.Clock)
			if err != nil {
				log.Fatal(err)
			}
			cell := "OOM"
			if err := tr.Setup(); err == nil {
				ok := true
				for i := 0; i < 30 && ok; i++ {
					if err := tr.Step(); err != nil {
						ok = false
					}
				}
				if ok {
					cell = fmt.Sprintf("%.1fGB", float64(alloc.Stats().PeakReserved)/float64(gmlake.GiB))
				}
			}
			row += fmt.Sprintf("  %18s", cell)
			tr.Teardown()
		}
		fmt.Println(row)
	}
	fmt.Println("\npaper: PyTorch OOMs at the largest batches while GMLake keeps running")
}
