// Replay: record the allocation request stream of a fine-tuning run, then
// replay the identical stream against every allocator in the library.
//
// The allocator only ever sees a sequence of Alloc/Free calls; recording it
// once and replaying it everywhere is the cleanest apples-to-apples
// comparison (and how the paper's traces in Figures 5 and 14 are read).
// Expect the caching allocator to reserve the most under the irregular LRO
// stream, GMLake the least, with expandable segments in between.
//
// Run with: go run ./examples/replay
package main

import (
	"fmt"
	"log"

	gmlake "repro"
	"repro/internal/trace"
)

func main() {
	spec := gmlake.TrainSpec{
		Model:    gmlake.OPT1_3B,
		Strategy: gmlake.StrategyLRO,
		World:    4,
		Batch:    32,
	}

	// Record the stream once, on the caching allocator.
	rec := func() *trace.Trace {
		sys := gmlake.NewSystem(80 * gmlake.GiB)
		recorder := trace.NewRecorder(gmlake.NewCaching(sys.Driver), sys.Clock)
		tr, err := gmlake.NewTrainer(spec, recorder, sys.Clock)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Setup(); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := tr.Step(); err != nil {
				log.Fatal(err)
			}
		}
		tr.Teardown()
		return recorder.Trace()
	}()
	st := rec.Stats()
	fmt.Printf("recorded %s/%s: %d allocations, %d frees, avg %s\n\n",
		spec.Model.Name, spec.Strategy.Label(), st.Allocs, st.Frees, mb(st.MeanBytes))

	// Replay it on every allocator.
	fmt.Printf("%-12s %14s %14s %8s\n", "allocator", "peak active", "peak reserved", "util")
	for _, name := range []string{"caching", "gmlake", "expandable", "compact"} {
		sys := gmlake.NewSystem(80 * gmlake.GiB)
		var alloc gmlake.MemoryAllocator
		switch name {
		case "caching":
			alloc = gmlake.NewCaching(sys.Driver)
		case "gmlake":
			alloc = gmlake.New(sys.Driver)
		case "expandable":
			alloc = gmlake.NewExpandable(sys.Driver)
		case "compact":
			alloc = gmlake.NewCompact(sys.Driver)
		}
		if err := trace.Replay(rec, alloc); err != nil {
			fmt.Printf("%-12s OOM: %v\n", name, err)
			continue
		}
		s := alloc.Stats()
		fmt.Printf("%-12s %11.1f GB %11.1f GB %7.1f%%\n",
			name, gbf(s.PeakActive), gbf(s.PeakReserved), 100*s.Utilization())
	}
}

func gbf(n int64) float64 { return float64(n) / float64(gmlake.GiB) }

func mb(n int64) string { return fmt.Sprintf("%.1f MB", float64(n)/float64(gmlake.MiB)) }
