// Defragcompare: run the same fragmentation-prone fine-tune on four
// allocators — the caching baseline, GMLake (stitching), PyTorch's
// expandable segments (growing), and a compaction defragmenter (copying) —
// and compare reserved memory and simulated step time.
//
// This extends the paper's evaluation with the §6 related-work techniques.
//
// Run with: go run ./examples/defragcompare
package main

import (
	"fmt"
	"log"

	gmlake "repro"
)

func main() {
	spec := gmlake.TrainSpec{
		Model:    gmlake.OPT13B,
		Strategy: gmlake.StrategyLRO,
		World:    4,
		Batch:    24,
		Seed:     7,
	}
	fmt.Printf("%s, strategy %s, %d GPUs, batch %d\n\n",
		spec.Model.Name, spec.Strategy.Label(), spec.World, spec.Batch)
	fmt.Printf("%-12s %15s %12s %14s\n", "allocator", "peak reserved", "utilization", "virt s/step")

	for _, name := range []string{"caching", "gmlake", "expandable", "compact"} {
		sys := gmlake.NewSystem(80 * gmlake.GiB)
		var alloc gmlake.MemoryAllocator
		switch name {
		case "gmlake":
			alloc = gmlake.New(sys.Driver)
		case "expandable":
			alloc = gmlake.NewExpandable(sys.Driver)
		case "compact":
			alloc = gmlake.NewCompact(sys.Driver)
		default:
			alloc = gmlake.NewCaching(sys.Driver)
		}
		tr, err := gmlake.NewTrainer(spec, alloc, sys.Clock)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Setup(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		const warm, meas = 80, 10
		for i := 0; i < warm; i++ {
			if err := tr.Step(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		start := sys.Clock.Now()
		for i := 0; i < meas; i++ {
			if err := tr.Step(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		perStep := (sys.Clock.Now() - start).Seconds() / meas
		st := alloc.Stats()
		fmt.Printf("%-12s %13.1fGB %11.1f%% %13.2fs\n",
			name, float64(st.PeakReserved)/float64(gmlake.GiB),
			100*st.Utilization(), perStep)
		tr.Teardown()
	}
	fmt.Println("\nstitching and compaction both eliminate fragmentation; compaction needs")
	fmt.Println("framework cooperation to move live tensors, which is why PyTorch shipped")
	fmt.Println("a VMM-based approach instead.")
}
