// Quickstart: allocate GPU memory through GMLake and watch virtual memory
// stitching defeat fragmentation.
//
// The program builds the paper's Figure 1 scenario by hand: several
// scattered blocks are freed, then a request larger than any single free
// block arrives. The caching allocator must reserve new memory; GMLake
// stitches the free blocks into one contiguous virtual range instead.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gmlake "repro"
)

func main() {
	// An 8 GB simulated GPU with the paper-calibrated driver cost model.
	sys := gmlake.NewSystem(8 * gmlake.GiB)
	alloc := gmlake.New(sys.Driver)

	// Allocate four scattered 512 MB tensors and free them.
	var bufs []*gmlake.Buffer
	for i := 0; i < 4; i++ {
		b, err := alloc.Alloc(512 * gmlake.MiB)
		if err != nil {
			log.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	fmt.Printf("after 4x512MB allocations: reserved=%s, device used=%s\n",
		gb(alloc.Stats().Reserved), gb(sys.Device.Used()))

	for _, b := range bufs {
		alloc.Free(b)
	}
	fmt.Printf("after freeing all:         reserved=%s (GMLake retains physical memory)\n",
		gb(alloc.Stats().Reserved))

	// A 2 GB request: no single free block is big enough, but stitching
	// fuses the four 512 MB blocks into one contiguous virtual range
	// without allocating any new physical memory.
	big, err := alloc.Alloc(2 * gmlake.GiB)
	if err != nil {
		log.Fatal(err)
	}
	s1, s2, s3, s4 := alloc.StrategyCounts()
	fmt.Printf("after 2GB allocation:      reserved=%s (no growth!)\n", gb(alloc.Stats().Reserved))
	fmt.Printf("strategy counts: S1 exact=%d, S2 split=%d, S3 stitch=%d, S4 new=%d\n", s1, s2, s3, s4)

	alloc.Free(big)

	// The stitched block is now cached: the same request again is an S1
	// exact match with zero driver work.
	big2, err := alloc.Alloc(2 * gmlake.GiB)
	if err != nil {
		log.Fatal(err)
	}
	s1b, _, _, _ := alloc.StrategyCounts()
	fmt.Printf("repeat 2GB allocation:     exact-match hits went %d -> %d (convergence)\n", s1, s1b)
	alloc.Free(big2)

	st := alloc.Stats()
	fmt.Printf("\nfinal stats: peak active=%s, peak reserved=%s, utilization=%.1f%%, simulated time=%v\n",
		gb(st.PeakActive), gb(st.PeakReserved), 100*st.Utilization(), sys.Clock.Now())
}

func gb(n int64) string { return fmt.Sprintf("%.2fGB", float64(n)/float64(gmlake.GiB)) }
