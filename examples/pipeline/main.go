// Pipeline: plan a 20B-parameter training job across GPUs with the 3D
// parallelism and checkpointing planners (paper §2.4's decompositions).
//
// The program asks a concrete engineering question: which combination of
// data, tensor and pipeline parallelism — plus how much activation
// checkpointing — fits GPT-NeoX-20B on 80 GB devices? It walks candidate
// topologies with the memory planner, then uses the recompute planner to
// squeeze the winning topology's activations under a byte budget.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"time"

	gmlake "repro"
	"repro/internal/parallel"
	"repro/internal/recompute"
)

func main() {
	cfg := gmlake.GPTNeoX20B
	fmt.Printf("planning %s: %.1fB parameters, %d layers\n\n", cfg.Name, cfg.ParamsBillions(), cfg.Layers)

	topos := []struct {
		topo gmlake.Topology
		zero gmlake.ZeROStage
	}{
		{gmlake.Topology{DP: 1, TP: 1, PP: 1}, parallel.Stage0},
		{gmlake.Topology{DP: 8, TP: 1, PP: 1}, parallel.Stage3},
		{gmlake.Topology{DP: 1, TP: 8, PP: 1}, parallel.Stage0},
		{gmlake.Topology{DP: 2, TP: 2, PP: 2}, parallel.Stage1},
		{gmlake.Topology{DP: 4, TP: 2, PP: 2}, parallel.Stage3},
	}
	fmt.Printf("%-16s %6s %8s %14s %10s\n", "topology", "world", "zero", "max rank", "fits 80GB")
	var pick gmlake.MemoryPlan
	for _, c := range topos {
		plan, err := gmlake.PlanMemory(cfg, c.topo, c.zero, parallel.OneFOneB, 4, 0)
		if err != nil {
			log.Fatal(err)
		}
		fits := plan.Fits(80*gmlake.GiB, 0.1)
		fmt.Printf("%-16s %6d %8s %11.1f GB %10v\n",
			c.topo.String(), c.topo.World(), c.zero, float64(plan.MaxRankBytes())/float64(gmlake.GiB), fits)
		if fits && (pick.Topology.World() == 0 || c.topo.World() < pick.Topology.World()) {
			pick = plan
		}
	}
	if pick.Topology.World() == 0 {
		log.Fatal("no candidate topology fits")
	}
	fmt.Printf("\npicked %s (%d GPUs)\n\n", pick.Topology.String(), pick.Topology.World())

	// Now shrink activations further with checkpointing: budget half of
	// what the plan currently spends on them.
	m := gmlake.RecomputeForModel(cfg, 4, 0)
	full := m.Evaluate(recompute.NoRecompute())
	budget := full.PeakBytes / 4
	plan, err := m.PlanForBudget(budget)
	if err != nil {
		log.Fatal(err)
	}
	r := m.Evaluate(plan)
	fmt.Printf("checkpointing to a %.1f GB activation budget:\n", float64(budget)/float64(gmlake.GiB))
	fmt.Printf("  %d segments, peak %.1f GB (was %.1f GB), +%v recompute per step\n",
		r.Segments, float64(r.PeakBytes)/float64(gmlake.GiB),
		float64(full.PeakBytes)/float64(gmlake.GiB), r.ExtraTime.Round(time.Millisecond))
	fmt.Println("\neach decomposition slices tensors smaller and adds transient gathers and recompute")
	fmt.Println("bursts — the irregular request streams GMLake's stitching was built to absorb.")
}
