// Offload: the ZeRO-Offload optimizer pipeline and the activation swapper,
// the mechanics behind the paper's "O" strategy (§2.3).
//
// Part 1 runs one offloaded optimizer step for an OPT-13B gradient shard:
// gradients stream to the host, CPU Adam updates the fp32 master state,
// updated parameters stream back — all bucketed and pipelined on dedicated
// copy streams, so the step approaches the slowest stage instead of the sum.
//
// Part 2 round-trips activations through host memory with and without
// prefetch, showing the swap-in latency prefetch hides and the alloc/free
// churn swapping induces on the GPU allocator (Observation 1).
//
// Run with: go run ./examples/offload
package main

import (
	"fmt"
	"log"
	"time"

	gmlake "repro"
	"repro/internal/offload"
)

func main() {
	sys := gmlake.NewSystem(80 * gmlake.GiB)
	sched := gmlake.NewStreamScheduler(sys.Clock)
	engine := gmlake.NewCopyEngine(gmlake.DefaultPCIe(), sched)
	alloc := gmlake.New(sys.Driver)

	// --- Part 1: offloaded optimizer step ------------------------------
	// OPT-13B fp16 parameters sharded over 4 GPUs: one rank's shard.
	shard := gmlake.OPT13B.Params() * 2 / 4
	opt, err := gmlake.NewOffloadOptimizer(offload.OptimizerConfig{
		Bucket:     64 * gmlake.MiB,
		Pinned:     true,
		StageOnGPU: true,
	}, engine, alloc, shard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host optimizer state: %.1f GB (fp32 master + Adam moments)\n",
		float64(opt.HostStateBytes())/float64(gmlake.GiB))

	elapsed, err := opt.Step(shard)
	if err != nil {
		log.Fatal(err)
	}
	serial := opt.SerialStepEstimate(shard)
	fmt.Printf("optimizer step: pipelined %v vs serial %v (%.2fx), %d staging allocations\n\n",
		elapsed.Round(time.Millisecond), serial.Round(time.Millisecond),
		float64(serial)/float64(elapsed), alloc.Stats().AllocCount)

	// --- Part 2: activation swapping -----------------------------------
	swapper := gmlake.NewSwapper(engine, alloc, true)
	act, err := alloc.Alloc(512 * gmlake.MiB)
	if err != nil {
		log.Fatal(err)
	}

	// Without prefetch: the swap-in stalls for the full H2D transfer.
	h := swapper.SwapOut(act)
	start := sys.Clock.Now()
	act, err = swapper.SwapIn(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swap-in without prefetch: stalled %v\n", (sys.Clock.Now() - start).Round(time.Microsecond))

	// With prefetch issued early, the swap-in finds the data resident.
	h = swapper.SwapOut(act)
	if err := swapper.Prefetch(h); err != nil {
		log.Fatal(err)
	}
	sys.Clock.Advance(100 * time.Millisecond) // forward pass elsewhere
	start = sys.Clock.Now()
	act, err = swapper.SwapIn(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swap-in with prefetch:    stalled %v (hits: %d)\n",
		(sys.Clock.Now() - start).Round(time.Microsecond), swapper.PrefetchHits())
	alloc.Free(act)

	fmt.Printf("\ncopy engine moved %.1f GB D2H / %.1f GB H2D across %d transfers\n",
		float64(engine.BytesD2H())/float64(gmlake.GiB),
		float64(engine.BytesH2D())/float64(gmlake.GiB), engine.Copies())
	fmt.Println("every swap-in allocated a fresh GPU block: offloading turns residents into churn.")
}
