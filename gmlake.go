// Package gmlake is a pure-Go reproduction of "GMLake: Efficient and
// Transparent GPU Memory Defragmentation for Large-scale DNN Training with
// Virtual Memory Stitching" (ASPLOS 2024).
//
// The package is the public facade over the library:
//
//   - a simulated GPU device and CUDA driver (native allocator + low-level
//     virtual memory management API) with a latency cost model calibrated to
//     the paper's measurements;
//   - the PyTorch-style best-fit-with-coalescing caching allocator the paper
//     uses as its baseline;
//   - the GMLake allocator itself: primitive and stitched memory pools,
//     the BestFit algorithm and the multi-state defragmentation strategy;
//   - LLM fine-tuning workload generators and the experiment harness that
//     regenerates every table and figure of the paper's evaluation;
//   - an inference-serving substrate: three KV-cache policies under
//     continuous batching — with tree-indexed admission, idle-jump and
//     preemption-victim queues, so the serving loop stays O(log n) on long
//     backlogged streams — plus a ServeGen-style multi-tenant workload
//     generator with per-SLO-class reporting;
//   - a deterministic parallel experiment engine (internal/runner): every
//     harness experiment declares its cells (independent workload ×
//     allocator executions, each on a private simulated rig) and a bounded
//     worker pool sweeps them, joining results by cell index, so rendered
//     tables are byte-identical at any parallelism.
//
// # Parallel experiment engine
//
// Experiment sweeps saturate the host instead of running one cell at a
// time. The worker count comes from the `parallel:<n>` configuration key
// (0 = GOMAXPROCS) or the -parallel flag of cmd/gmlake-bench and
// cmd/gmlake-serve; determinism is preserved because cells share no state
// and results join in declaration order. A panicking cell never wedges the
// pool: every other cell completes and the lowest-index panic is re-raised.
//
// # Serving workload mixes
//
// Multi-tenant serving traffic is described by a WorkloadMix: client
// classes with individual arrival processes (Poisson, bursty Gamma,
// on-off), rate shares, prompt/output length distributions (deterministic,
// uniform, lognormal) and SLO class tags. The same seed always yields a
// byte-identical request stream. Canonical mixes are ChatHeavyMix,
// BatchHeavyMix and MixedBurstyMix; configuration strings select and tune
// them with the serving keys parsed alongside the allocator knobs:
//
//	serve_mix:<name>    named mix (chat-heavy, batch-heavy, mixed-bursty,
//	                    chat-sessions, chat+batch, …)
//	serve_rate:<r>      aggregate request rate override, requests/second
//	burst_cv:<cv>       interarrival CV override for bursty classes
//	parallel:<n>        worker-pool bound for experiment/policy sweeps
//	                    (0 = GOMAXPROCS)
//	replicas:<n>        replica servers behind the cluster admission queue
//	dispatch:<policy>   cluster dispatch: round-robin, jsq, least-kv,
//	                    session-affinity
//	aging:<dur>         priority-aging rate (one level per <dur> of wait)
//	exact_samples:<n>   latency-digest exact-retention threshold (0 =
//	                    DefaultServeExactSamples, negative = sketch-only)
//	prefix_reuse:<b>    session KV prefix reuse: resident prefixes skip
//	                    their share of prefill on follow-up turns
//	affinity_base:<p>   session-affinity's fallback policy (default jsq)
//
// ServeRequests runs a stream under continuous batching with SLO-aware
// admission and preemption, and its ServeReport breaks TTFT and end-to-end
// latency percentiles, preemptions and KV-cache occupancy down per client
// class (ServeClassReport) — the per-SLO-class view a multi-tenant
// operator actually monitors. Latency percentiles are exact nearest-rank
// while a digest holds at most ServeConfig.ExactSamples values; past that
// the digest spills into a fixed-size deterministic mergeable quantile
// sketch (internal/quantile), so million-request runs keep flat memory at
// a bounded relative rank error instead of retaining every sample.
//
// # Multi-replica serving cluster
//
// ServeClusterRequests shards one request stream over N replica servers —
// each with its own cache manager, pool allocator and virtual clock —
// behind a cluster-level admission queue. A DispatchPolicy (round-robin,
// join-shortest-queue, least-KV-load) assigns each arrival to a replica at
// its arrival instant, and the returned ServeClusterReport merges the
// replicas' raw per-request samples into cluster-level per-SLO-class
// percentiles (never averaged percentiles) next to the per-replica
// reports. ServeConfig.Aging enables priority aging — a waiting request
// gains one priority level per Aging of queue wait — so batch-class
// requests cannot starve under a permanent interactive overload.
//
// The fleet can be heterogeneous and elastic. ServeReplicaOverride gives a
// replica its own capacity weight (the load-aware policies divide observed
// load by it, so a 2x replica absorbs 2x demand), batch limit and aging
// rate. ServeClusterConfig.MaxReplicas > 0 enables queue-depth
// autoscaling: replicas spawn when the queued backlog per active replica
// exceeds ScaleUpDepth and drain — only after they empty — when it falls
// to ScaleDownDepth, between MinReplicas and MaxReplicas with a
// ScaleCooldown between decisions; ReplicaSeconds in the report prices the
// fleet. ServeClusterConfig.Steal enables work-stealing re-dispatch: a
// replica that goes idle takes queued (never running) requests from a
// backlogged peer, replacing decide-once-at-arrival dispatch.
//
// The co-simulation is event-ordered — scaling and stealing decisions
// happen at event boundaries — so the same seed yields a byte-identical
// cluster report, and with one replica (static, or MinReplicas ==
// MaxReplicas == 1 with stealing off) the cluster reproduces
// ServeRequests exactly.
//
// # Multi-turn sessions and KV prefix reuse
//
// A WorkloadMix class with a WorkloadSessionProfile generates multi-turn
// conversations instead of one-shot requests: each session's turn N+1
// prompt is the prior prompt plus the prior output plus a fresh delta,
// arriving after a think-time gap, and every request carries its
// SessionID and Turn (ChatSessionsMix is the canonical session mix).
// ServeConfig.PrefixReuse models KV prefix reuse on the server: a
// follow-up turn whose session prefix is still resident on its replica
// skips that fraction of prefill, cutting its TTFT; crashes, recompute
// preemption and deadline drops invalidate residency. The
// DispatchSessionAffinity cluster policy routes a turn to the replica
// holding its prefix and falls back to ServeClusterConfig.AffinityBase
// (default jsq) when none does. Reports count PrefixHits, PrefixMisses,
// ReusedTokens and AffinityRouted. With no session requests and
// PrefixReuse off, every run is byte-identical to the session-unaware
// scheduler. The corresponding configuration keys are prefix_reuse and
// affinity_base; cmd/gmlake-serve exposes -prefix-reuse and
// -affinity-base.
//
// # Request traces
//
// RequestTrace is a request-level serving trace — (arrival offset, class,
// SLO, priority, prompt/output tokens) per request — persisted as
// versioned JSONL or CSV (ReadRequestTrace / RequestTrace.WriteFile). A
// RequestCapture installed as ServeConfig.OnComplete records every
// completed request of a ServeRequests or ServeClusterRequests run back
// into a trace, and RequestTrace.Replay turns a trace into the
// byte-identical request stream (optionally rate-scaled, truncated or
// looped), so generate→capture→replay round-trips exactly.
// FitRequestTrace calibrates a WorkloadMix to a trace — class shares,
// arrival burstiness (Poisson / Gamma CV / on-off duty cycles) and
// length distributions — and RequestTraceFitError reports the moment-match
// and KS-distance errors of any mix against a trace. EmpiricalDist and
// TraceArrivalProcess plug captured length samples and arrival sequences
// straight into a WorkloadMix without fitting a parametric family. The
// corresponding configuration keys are trace_in, trace_out, trace_scale
// and fit (see internal/conf), and cmd/gmlake-serve exposes them as
// -trace-in, -trace-out, -trace-scale and -fit.
//
// (RequestTrace records serving requests; the unrelated allocator-event
// traces of the paper's Figure 5 live in internal/trace.)
//
// # Fault injection and recovery
//
// A cluster run can inject deterministic replica faults
// (ServeClusterConfig.Faults, a ServeFaultConfig): a crash loses the
// replica's KV cache and in-flight sequences, removes it from dispatch,
// and a later restart returns it empty. Faults come from a seeded
// MTTF/MTTR process or a scripted plan (ParseServeFaultPlan,
// ServeFaultEvent), and fire only at event boundaries of the
// co-simulation, so faulty runs replay byte-identically from one seed.
// ServeRecoveryConfig bounds crash recovery: queued requests displaced by
// a crash re-dispatch for free, in-flight ones retry with recompute-from-
// scratch cost under capped retries, exponential backoff and a per-class
// retry budget (exhausted requests count as Lost). ServeConfig.Timeout
// sets a per-request deadline — completions past it are deadline misses,
// not goodput — and ServeConfig.Shed rejects requests at admission once
// the deadline is provably unreachable. Reports grow Crashes, Restarts,
// DeadlineMisses, Shed and Goodput; ServeClusterReport adds Retries, Lost
// and capacity-weighted Availability. The corresponding configuration keys
// are mttf, mttr, fault_plan, timeout, retries, backoff, retry_budget and
// shed, and cmd/gmlake-serve exposes them as flags of the same names.
//
// # Quick start
//
//	sys := gmlake.NewSystem(80 * gmlake.GiB)
//	alloc := gmlake.New(sys.Driver)
//	buf, err := alloc.Alloc(512 * gmlake.MiB)
//	if err != nil { ... }
//	alloc.Free(buf)
//	fmt.Println(alloc.Stats().Utilization())
//
// See examples/ for complete programs and cmd/gmlake-bench for the paper's
// evaluation.
package gmlake

import (
	"repro/internal/caching"
	"repro/internal/compact"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/expandable"
	"repro/internal/fragstat"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/parallel"
	"repro/internal/recompute"
	"repro/internal/reqtrace"
	"repro/internal/safealloc"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Byte sizes.
const (
	KiB = sim.KiB
	MiB = sim.MiB
	GiB = sim.GiB
)

// ChunkSize is the uniform 2 MiB physical chunk size of the VMM API.
const ChunkSize = core.ChunkSize

// Re-exported core types. The aliases keep one canonical implementation in
// internal packages while giving users a single import.
type (
	// Allocator is the GMLake allocator (the paper's contribution).
	Allocator = core.Allocator
	// Config tunes the GMLake allocator.
	Config = core.Config
	// CachingAllocator is the PyTorch-style baseline.
	CachingAllocator = caching.Allocator
	// NativeAllocator is the cudaMalloc/cudaFree strawman.
	NativeAllocator = memalloc.Native
	// ExpandableAllocator is PyTorch's later expandable-segments allocator
	// (VMM-based growing rather than stitching).
	ExpandableAllocator = expandable.Allocator
	// CompactAllocator is a compaction-based (copying) defragmenter.
	CompactAllocator = compact.Allocator
	// MemoryAllocator is the interface all of the above implement.
	MemoryAllocator = memalloc.Allocator
	// Buffer is one live allocation.
	Buffer = memalloc.Buffer
	// Stats is the active/reserved accounting (utilization ratio as in the
	// paper's §5.1).
	Stats = memalloc.Stats
	// Driver is the simulated CUDA driver.
	Driver = cuda.Driver
	// Device is the simulated GPU.
	Device = gpu.Device
	// Clock is the virtual clock all latency is charged to.
	Clock = sim.Clock
	// CostModel prices driver calls (calibrated to the paper's Table 1).
	CostModel = sim.CostModel
	// ModelConfig describes one of the evaluated LLMs.
	ModelConfig = model.Config
	// TrainSpec describes one fine-tuning workload.
	TrainSpec = workload.Spec
	// Strategy is a combination of memory-reduction techniques.
	Strategy = workload.Strategy
	// Trainer drives an allocator through a fine-tuning workload.
	Trainer = workload.Trainer
	// Timeline is a memory-over-time series.
	Timeline = metrics.Timeline
)

// Evaluated models (paper Table 2).
var (
	GPT2       = model.GPT2
	OPT1_3B    = model.OPT1_3B
	GLM10B     = model.GLM10B
	OPT13B     = model.OPT13B
	Vicuna13B  = model.Vicuna13B
	GPTNeoX20B = model.GPTNeoX20B
)

// Strategy shorthands (paper Figures 3 and 10).
var (
	StrategyN   = workload.StrategyN
	StrategyR   = workload.StrategyR
	StrategyLR  = workload.StrategyLR
	StrategyRO  = workload.StrategyRO
	StrategyLRO = workload.StrategyLRO
)

// ZeRO stages and pipeline schedules (paper §2.4 decompositions).
const (
	ZeRO0 = parallel.Stage0
	ZeRO1 = parallel.Stage1
	ZeRO2 = parallel.Stage2
	ZeRO3 = parallel.Stage3

	// GPipe buffers all microbatches to the pipeline flush.
	GPipe = parallel.GPipe
	// OneFOneB bounds in-flight microbatches to the stage depth.
	OneFOneB = parallel.OneFOneB
)

// System bundles one simulated GPU with its driver and clock.
type System struct {
	Device *Device
	Driver *Driver
	Clock  *Clock
}

// NewSystem creates a simulated GPU with the given physical capacity and the
// paper-calibrated cost model.
func NewSystem(capacity int64) *System {
	dev := gpu.NewDevice("sim-gpu", capacity)
	clock := sim.NewClock()
	return &System{
		Device: dev,
		Clock:  clock,
		Driver: cuda.NewDriver(dev, clock, sim.DefaultCostModel()),
	}
}

// New returns a GMLake allocator with the paper's default configuration.
func New(driver *Driver) *Allocator { return core.NewDefault(driver) }

// NewWithConfig returns a GMLake allocator with a custom configuration.
func NewWithConfig(driver *Driver, cfg Config) *Allocator { return core.New(driver, cfg) }

// DefaultConfig returns the paper's recommended GMLake configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewCaching returns the baseline caching allocator.
func NewCaching(driver *Driver) *CachingAllocator { return caching.New(driver) }

// NewNative returns the native (cudaMalloc-per-tensor) allocator.
func NewNative(driver *Driver) *NativeAllocator { return memalloc.NewNative(driver) }

// NewExpandable returns the expandable-segments allocator.
func NewExpandable(driver *Driver) *ExpandableAllocator { return expandable.New(driver) }

// NewCompact returns the compaction-based defragmenter.
func NewCompact(driver *Driver) *CompactAllocator { return compact.New(driver) }

// NewTrainer builds a fine-tuning workload driver over alloc.
func NewTrainer(spec TrainSpec, alloc MemoryAllocator, clock *Clock) (*Trainer, error) {
	return workload.NewTrainer(spec, alloc, clock)
}

// Substrate types the training ecosystem around the allocator is built
// from: CUDA streams and events, host-device offloading, checkpointing
// plans, distributed decompositions, inference KV caching, fragmentation
// analytics and thread-safety.
type (
	// StreamScheduler simulates CUDA streams and events on the virtual
	// clock.
	StreamScheduler = stream.Scheduler
	// StreamID names one stream.
	StreamID = stream.ID
	// Event marks a point in a stream's work queue.
	Event = stream.Event
	// StreamAllocator adds PyTorch's record_stream deferred-free
	// semantics to any allocator.
	StreamAllocator = stream.Allocator

	// Link prices a host-device interconnect.
	Link = offload.Link
	// CopyEngine runs asynchronous H2D/D2H transfers on dedicated
	// streams.
	CopyEngine = offload.Engine
	// OffloadOptimizer is the ZeRO-Offload CPU optimizer pipeline.
	OffloadOptimizer = offload.Optimizer
	// Swapper parks activation tensors in host memory with prefetch.
	Swapper = offload.Swapper

	// RecomputePlan is one activation-checkpointing decision.
	RecomputePlan = recompute.Plan
	// RecomputeModel is the per-layer cost model the planner works over.
	RecomputeModel = recompute.Model

	// Topology is a DP×TP×PP decomposition.
	Topology = parallel.Topology
	// ZeROStage selects DeepSpeed's state-sharding level.
	ZeROStage = parallel.ZeROStage
	// MemoryPlan is the per-rank demand of one topology.
	MemoryPlan = parallel.MemoryPlan

	// ServeRequest is one inference request.
	ServeRequest = serve.Request
	// ServeMix shapes the synthetic request distribution.
	ServeMix = serve.GenConfig
	// ServeConfig tunes the continuous-batching server.
	ServeConfig = serve.ServerConfig
	// KVCacheManager is one KV-cache management policy.
	KVCacheManager = serve.CacheManager
	// ServeReport summarizes a continuous-batching run.
	ServeReport = serve.Report
	// ServeClassReport is the per-client-class (per-SLO-class) slice of a
	// serving run: latency percentiles, preemptions, KV occupancy.
	ServeClassReport = serve.ClassReport
	// LatencySummary holds p50/p95/p99 of a latency sample: exact
	// nearest-rank up to ServeConfig.ExactSamples values per digest,
	// sketch-backed (within a documented relative rank-error bound)
	// beyond it.
	LatencySummary = serve.LatencySummary
	// ServeClusterConfig tunes the multi-replica serving cluster,
	// including the elastic autoscaler (MinReplicas/MaxReplicas), the
	// work-stealing switch (Steal) and per-replica overrides.
	ServeClusterConfig = serve.ClusterConfig
	// ServeReplicaOverride customizes one replica of a heterogeneous
	// cluster: capacity weight for load-aware dispatch, batch limit,
	// aging rate.
	ServeReplicaOverride = serve.ReplicaOverride
	// ServeClusterReport merges per-replica serving reports from raw
	// samples and keeps the per-replica breakdown, plus the elastic-fleet
	// view (peak replicas, spawns/drains, replica-seconds, steals).
	ServeClusterReport = serve.ClusterReport
	// DispatchPolicy assigns cluster arrivals to replicas.
	DispatchPolicy = serve.DispatchPolicy
	// ServeFaultConfig injects deterministic replica crashes and restarts
	// into a cluster run (seeded MTTF/MTTR streams or a scripted plan).
	ServeFaultConfig = serve.FaultConfig
	// ServeFaultEvent is one scripted crash or restart.
	ServeFaultEvent = serve.FaultEvent
	// ServeFaultKind classifies a fault event (ServeFaultCrash,
	// ServeFaultRestart).
	ServeFaultKind = serve.FaultKind
	// ServeRecoveryConfig bounds crash recovery: retries, backoff and the
	// per-class retry budget.
	ServeRecoveryConfig = serve.RecoveryConfig

	// WorkloadMix is a multi-tenant serving workload: an aggregate request
	// rate decomposed over heterogeneous client classes.
	WorkloadMix = servegen.Mix
	// ClientClass is one tenant population in a WorkloadMix.
	ClientClass = servegen.ClientClass
	// ArrivalProcess describes when a client class submits requests.
	ArrivalProcess = servegen.ArrivalProcess
	// LengthDist is a prompt or output token-length distribution.
	LengthDist = servegen.LengthDist
	// WorkloadSessionProfile makes a ClientClass generate multi-turn
	// sessions: turns-per-session, think-time and per-turn prompt-delta
	// distributions, and the prompt-growth cap.
	WorkloadSessionProfile = servegen.SessionProfile

	// RequestTrace is a request-level serving trace: capture, file
	// round-trip (JSONL/CSV), replay and calibration (see the package
	// comment's request-trace section).
	RequestTrace = reqtrace.Trace
	// RequestTraceRecord is one request of a RequestTrace.
	RequestTraceRecord = reqtrace.Record
	// RequestTraceStats summarizes a trace (aggregate and per-class rates,
	// shares, token-length moments).
	RequestTraceStats = reqtrace.Stats
	// RequestCapture records completed requests from a serving run; install
	// its Hook as ServeConfig.OnComplete.
	RequestCapture = reqtrace.Capture
	// TraceReplayOptions tunes RequestTrace.Replay (truncate/loop via N,
	// rate scaling via Scale).
	TraceReplayOptions = reqtrace.ReplayOptions
	// TraceFitReport is the fit-error report of a mix against a trace:
	// moment matches and per-class KS distances.
	TraceFitReport = reqtrace.FitReport

	// FragSnapshot holds an allocator's free blocks for fragmentation
	// indices (FMFI-style).
	FragSnapshot = fragstat.Snapshot

	// SafeAllocator makes any allocator safe for concurrent use.
	SafeAllocator = safealloc.Allocator
)

// NewStreamScheduler creates the stream/event simulator on clock.
func NewStreamScheduler(clock *Clock) *StreamScheduler { return stream.NewScheduler(clock) }

// NewStreamAllocator wraps inner with stream-aware freeing.
func NewStreamAllocator(inner MemoryAllocator, sched *StreamScheduler) *StreamAllocator {
	return stream.NewAllocator(inner, sched)
}

// DefaultPCIe returns the PCIe 4.0 x16 link of the paper's testbed.
func DefaultPCIe() *Link { return offload.DefaultPCIe() }

// NewCopyEngine creates a copy engine over link with fresh streams on sched.
func NewCopyEngine(link *Link, sched *StreamScheduler) *CopyEngine {
	return offload.NewEngine(link, sched)
}

// NewSwapper builds an activation swapper over engine and alloc.
func NewSwapper(engine *CopyEngine, alloc MemoryAllocator, pinned bool) *Swapper {
	return offload.NewSwapper(engine, alloc, pinned)
}

// PlanMemory computes per-rank memory demand for training cfg under a 3D
// topology (see internal/parallel for the fine-grained API).
func PlanMemory(cfg ModelConfig, topo Topology, zero ZeROStage, sched parallel.Schedule, microBatch, seq int) (MemoryPlan, error) {
	return parallel.PlanMemory(cfg, topo, zero, sched, microBatch, seq)
}

// NewOffloadOptimizer builds the ZeRO-Offload CPU optimizer for a parameter
// shard of paramBytes.
func NewOffloadOptimizer(cfg offload.OptimizerConfig, engine *CopyEngine, alloc MemoryAllocator, paramBytes int64) (*OffloadOptimizer, error) {
	return offload.NewOptimizer(cfg, engine, alloc, paramBytes)
}

// RecomputeForModel builds the checkpointing planner's cost model for one of
// the paper's LLMs (flops 0 uses the default A100-class throughput).
func RecomputeForModel(cfg ModelConfig, batch, seq int) RecomputeModel {
	return recompute.ForModel(cfg, batch, seq, 0)
}

// GenServeRequests returns n deterministic inference requests.
func GenServeRequests(n int, cfg ServeMix, seed uint64) ([]ServeRequest, error) {
	return serve.GenRequests(n, cfg, seed)
}

// DefaultServeMix returns the chat-like request mix.
func DefaultServeMix() ServeMix { return serve.DefaultGenConfig() }

// ChatHeavyMix returns the interactive-dominated multi-tenant mix.
func ChatHeavyMix() WorkloadMix { return servegen.ChatHeavy() }

// BatchHeavyMix returns the throughput-oriented multi-tenant mix.
func BatchHeavyMix() WorkloadMix { return servegen.BatchHeavy() }

// MixedBurstyMix returns the bursty heterogeneous stress mix.
func MixedBurstyMix() WorkloadMix { return servegen.MixedBursty() }

// ChatSessionsMix returns the multi-turn conversation mix: interactive
// sessions whose prompts grow by the prior exchange, over a batch-backfill
// floor. Serve it with ServeConfig.PrefixReuse and DispatchSessionAffinity
// to exercise the session machinery end to end.
func ChatSessionsMix() WorkloadMix { return servegen.ChatSessions() }

// ServeMixByName resolves a serve_mix configuration name.
func ServeMixByName(name string) (WorkloadMix, error) { return servegen.MixByName(name) }

// GenMixRequests returns the first n requests of the mix's merged
// multi-tenant stream; the same seed yields a byte-identical stream.
func GenMixRequests(m WorkloadMix, n int, seed uint64) ([]ServeRequest, error) {
	return m.Generate(n, seed)
}

// NewRequestCapture returns an empty request capture; install its Hook as
// ServeConfig.OnComplete to record a run into a RequestTrace.
func NewRequestCapture() *RequestCapture { return reqtrace.NewCapture() }

// RequestTraceFromStream converts a request stream into a canonical
// (arrival-sorted) trace.
func RequestTraceFromStream(reqs []ServeRequest) RequestTrace {
	return reqtrace.FromRequests(reqs)
}

// ReadRequestTrace reads and validates a request-trace file (JSONL or CSV,
// sniffed from the content).
func ReadRequestTrace(path string) (RequestTrace, error) { return reqtrace.ReadFile(path) }

// FitRequestTrace calibrates a WorkloadMix to a trace: class shares,
// arrival processes and token-length distributions recovered from the
// observed requests. Measure the result with RequestTraceFitError.
func FitRequestTrace(t RequestTrace) (WorkloadMix, error) { return reqtrace.Fit(t) }

// RequestTraceFitError generates n requests from the mix and reports how
// the synthetic stream deviates from the trace: moment matches (rate, mean
// lengths) and per-class KS distances.
func RequestTraceFitError(t RequestTrace, m WorkloadMix, n int, seed uint64) (TraceFitReport, error) {
	return reqtrace.FitError(t, m, n, seed)
}

// EmpiricalDist returns the token-length distribution that draws from the
// CDF of observed samples (clamped to [min, max] when nonzero) — the
// nonparametric alternative to a fitted lognormal.
func EmpiricalDist(samples []int, min, max int) LengthDist {
	return servegen.Empirical(samples, min, max)
}

// TraceArrivalProcess returns the arrival process that replays recorded
// arrival offsets (seconds), rescaled to a class's target rate and looped
// past the recorded end.
func TraceArrivalProcess(times []float64) ArrivalProcess {
	return servegen.TraceArrivals(times)
}

// NewContiguousKV returns the pad-to-max KV-cache baseline.
func NewContiguousKV(alloc MemoryAllocator, cfg ModelConfig, maxTokens int) *serve.ContiguousKV {
	return serve.NewContiguousKV(alloc, cfg, maxTokens)
}

// NewPagedKV returns the vLLM-style block-table KV cache.
func NewPagedKV(alloc MemoryAllocator, cfg ModelConfig, blockTokens, totalBlocks int) (*serve.PagedKV, error) {
	return serve.NewPagedKV(alloc, cfg, blockTokens, totalBlocks)
}

// NewChunkedKV returns the chunk-growing KV cache backed by an ordinary
// allocator.
func NewChunkedKV(alloc MemoryAllocator, cfg ModelConfig, chunkTokens int) *serve.ChunkedKV {
	return serve.NewChunkedKV(alloc, cfg, chunkTokens)
}

// ServeRequests runs requests under continuous batching on mgr.
func ServeRequests(reqs []ServeRequest, mgr KVCacheManager, cfg ServeConfig) (ServeReport, error) {
	return serve.Serve(reqs, mgr, cfg)
}

// DefaultServeExactSamples is the default ServeConfig.ExactSamples: a
// latency digest keeps raw samples and reports exact nearest-rank
// percentiles up to this many values, then spills to a mergeable
// deterministic quantile sketch (internal/quantile) whose memory is fixed
// regardless of run length. Set ExactSamples negative to sketch from the
// first sample, or higher to keep exactness on longer runs.
const DefaultServeExactSamples = serve.DefaultExactSamples

// Cluster dispatch policies.
const (
	DispatchRoundRobin      = serve.DispatchRoundRobin
	DispatchJSQ             = serve.DispatchJSQ
	DispatchLeastKV         = serve.DispatchLeastKV
	DispatchSessionAffinity = serve.DispatchSessionAffinity
)

// Scripted fault-event kinds.
const (
	ServeFaultCrash   = serve.FaultCrash
	ServeFaultRestart = serve.FaultRestart
)

// ParseServeFaultPlan parses a scripted fault schedule of '/'-separated
// events like "crash@t=12s:r1/restart@t=14s:r1" into a plan for
// ServeFaultConfig.Plan.
func ParseServeFaultPlan(s string) ([]ServeFaultEvent, error) { return serve.ParseFaultPlan(s) }

// ServeClusterRequests runs requests on a multi-replica serving cluster;
// newMgr builds replica i's cache manager (each replica needs its own
// manager and allocator). See the package comment's cluster section.
func ServeClusterRequests(reqs []ServeRequest, newMgr func(replica int) KVCacheManager, cfg ServeClusterConfig) (ServeClusterReport, error) {
	return serve.ServeCluster(reqs, newMgr, cfg)
}

// ParseDispatchPolicy resolves a dispatch-policy name ("" = round-robin).
func ParseDispatchPolicy(name string) (DispatchPolicy, error) { return serve.ParseDispatch(name) }

// CaptureFragmentation snapshots an allocator's free blocks; ok is false
// when the allocator does not expose them.
func CaptureFragmentation(a MemoryAllocator) (FragSnapshot, bool) { return fragstat.Capture(a) }

// NewSafe wraps any allocator for concurrent use.
func NewSafe(inner MemoryAllocator) *SafeAllocator { return safealloc.New(inner) }

// NewFromConf builds an allocator from a PYTORCH_CUDA_ALLOC_CONF-style
// configuration string, e.g. "backend:gmlake,frag_limit_mb:256" or
// "backend:caching,max_split_size_mb:128,garbage_collection_threshold:0.8".
// The empty string is the default caching allocator. Serving-workload keys
// (serve_mix, serve_rate, burst_cv) are accepted in the same string; see
// the package comment and internal/conf.
func NewFromConf(s string, driver *Driver) (MemoryAllocator, error) { return conf.New(s, driver) }
