// Package memalloc defines the allocator interface shared by the baseline
// caching allocator and GMLake, plus the trivial native (cudaMalloc-only)
// allocator and the statistics all of them report.
//
// The interface mirrors what a DL framework's tensor allocator needs:
// allocate, free, query statistics, and drop caches under memory pressure.
package memalloc

import (
	"repro/internal/cuda"
)

// Buffer is one live tensor allocation. Requested is the tensor's byte size;
// BlockSize is the (possibly rounded or split) block actually assigned, which
// is what "active memory" accounts in the paper's utilization metric.
type Buffer struct {
	Ptr       cuda.DevicePtr
	Requested int64
	BlockSize int64

	// impl is allocator-private block state.
	impl any
}

// Impl returns the allocator-private state attached to the buffer; only the
// owning allocator should interpret it.
func (b *Buffer) Impl() any { return b.impl }

// SetImpl attaches allocator-private state; for allocator implementations.
func (b *Buffer) SetImpl(v any) { b.impl = v }

// Allocator is the tensor-facing memory allocator interface.
type Allocator interface {
	// Name identifies the allocator in reports ("caching", "gmlake", ...).
	Name() string

	// Alloc returns a buffer of at least size bytes, or an out-of-memory
	// error once every fallback (cache flush, defragmentation) failed.
	Alloc(size int64) (*Buffer, error)

	// Free returns a buffer. Buffers must be freed exactly once.
	Free(b *Buffer)

	// Stats returns a snapshot of the allocator's accounting.
	Stats() Stats

	// EmptyCache releases every cached, currently-unused byte back to the
	// device, like torch.cuda.empty_cache().
	EmptyCache()
}

// Stats is the paper's measurement vocabulary (§5.1): active memory is the
// total of blocks currently assigned to tensors, reserved memory is the
// total set aside from the device. Utilization = peak active / peak
// reserved; fragmentation = 1 - utilization.
type Stats struct {
	Active       int64 // block bytes currently assigned to tensors
	Reserved     int64 // bytes currently reserved from the device
	PeakActive   int64
	PeakReserved int64

	AllocCount int64 // tensor allocations served
	FreeCount  int64 // tensor frees served
}

// Utilization returns peak active / peak reserved, the paper's utilization
// ratio. A fresh allocator with no traffic reports 1 (no waste).
func (s Stats) Utilization() float64 {
	if s.PeakReserved == 0 {
		return 1
	}
	return float64(s.PeakActive) / float64(s.PeakReserved)
}

// Fragmentation returns 1 - Utilization, the paper's fragmentation ratio.
func (s Stats) Fragmentation() float64 { return 1 - s.Utilization() }

// Accounting tracks the running statistics; embed it in allocators.
type Accounting struct {
	stats Stats
}

// OnAlloc records a block of blockSize bytes becoming active.
func (a *Accounting) OnAlloc(blockSize int64) {
	a.stats.Active += blockSize
	a.stats.AllocCount++
	if a.stats.Active > a.stats.PeakActive {
		a.stats.PeakActive = a.stats.Active
	}
}

// OnFree records a block of blockSize bytes becoming inactive.
func (a *Accounting) OnFree(blockSize int64) {
	a.stats.Active -= blockSize
	a.stats.FreeCount++
}

// OnReserve records bytes reserved from the device.
func (a *Accounting) OnReserve(bytes int64) {
	a.stats.Reserved += bytes
	if a.stats.Reserved > a.stats.PeakReserved {
		a.stats.PeakReserved = a.stats.Reserved
	}
}

// OnRelease records bytes released back to the device.
func (a *Accounting) OnRelease(bytes int64) { a.stats.Reserved -= bytes }

// Stats returns the current snapshot.
func (a *Accounting) Stats() Stats { return a.stats }

// ResetPeaks restarts peak tracking from current levels; harnesses call this
// after warm-up iterations.
func (a *Accounting) ResetPeaks() {
	a.stats.PeakActive = a.stats.Active
	a.stats.PeakReserved = a.stats.Reserved
}
