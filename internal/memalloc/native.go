package memalloc

import "repro/internal/cuda"

// Native is the GPU-vendor native allocator: every Alloc is a cudaMalloc and
// every Free a synchronizing cudaFree. It exists as the paper's §2.2 strawman
// — about 10x slower end to end than the caching allocator — and as the
// simplest possible reference implementation for differential tests.
type Native struct {
	driver *cuda.Driver
	acct   Accounting
}

// NewNative returns a native allocator over driver.
func NewNative(driver *cuda.Driver) *Native {
	return &Native{driver: driver}
}

// Name implements Allocator.
func (n *Native) Name() string { return "native" }

// Alloc implements Allocator.
func (n *Native) Alloc(size int64) (*Buffer, error) {
	ptr, err := n.driver.Malloc(size)
	if err != nil {
		return nil, err
	}
	n.acct.OnReserve(size)
	n.acct.OnAlloc(size)
	return &Buffer{Ptr: ptr, Requested: size, BlockSize: size}, nil
}

// Free implements Allocator.
func (n *Native) Free(b *Buffer) {
	if err := n.driver.Free(b.Ptr); err != nil {
		panic("memalloc: native Free: " + err.Error())
	}
	n.acct.OnFree(b.BlockSize)
	n.acct.OnRelease(b.BlockSize)
}

// Stats implements Allocator.
func (n *Native) Stats() Stats { return n.acct.Stats() }

// EmptyCache implements Allocator. The native allocator holds no cache.
func (n *Native) EmptyCache() {}

// ResetPeaks restarts peak tracking (see Accounting.ResetPeaks).
func (n *Native) ResetPeaks() { n.acct.ResetPeaks() }
