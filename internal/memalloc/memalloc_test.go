package memalloc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
)

func newNative(capacity int64) (*Native, *cuda.Driver) {
	dev := gpu.NewDevice("test", capacity)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	return NewNative(drv), drv
}

func TestNativeAllocFree(t *testing.T) {
	n, drv := newNative(sim.GiB)
	b, err := n.Alloc(100 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if b.Requested != 100*sim.MiB || b.BlockSize != 100*sim.MiB {
		t.Fatalf("buffer sizes %d/%d", b.Requested, b.BlockSize)
	}
	st := n.Stats()
	if st.Active != 100*sim.MiB || st.Reserved != 100*sim.MiB {
		t.Fatalf("stats %+v", st)
	}
	n.Free(b)
	st = n.Stats()
	if st.Active != 0 || st.Reserved != 0 {
		t.Fatalf("stats after free %+v", st)
	}
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatal("device not free")
	}
}

func TestNativeOOM(t *testing.T) {
	n, _ := newNative(10 * sim.MiB)
	if _, err := n.Alloc(11 * sim.MiB); !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestNativeEveryAllocHitsDriver(t *testing.T) {
	n, drv := newNative(sim.GiB)
	for i := 0; i < 10; i++ {
		b, err := n.Alloc(sim.MiB)
		if err != nil {
			t.Fatal(err)
		}
		n.Free(b)
	}
	c := drv.Counters()
	if c.Malloc != 10 || c.Free != 10 {
		t.Fatalf("driver calls %d/%d, want 10/10 (no caching)", c.Malloc, c.Free)
	}
}

func TestStatsUtilization(t *testing.T) {
	tests := []struct {
		s    Stats
		util float64
	}{
		{Stats{}, 1},
		{Stats{PeakActive: 50, PeakReserved: 100}, 0.5},
		{Stats{PeakActive: 100, PeakReserved: 100}, 1},
	}
	for _, tt := range tests {
		if got := tt.s.Utilization(); got != tt.util {
			t.Errorf("Utilization(%+v) = %v, want %v", tt.s, got, tt.util)
		}
		if got := tt.s.Fragmentation(); got != 1-tt.util {
			t.Errorf("Fragmentation(%+v) = %v", tt.s, got)
		}
	}
}

func TestAccountingPeaks(t *testing.T) {
	var a Accounting
	a.OnReserve(100)
	a.OnAlloc(60)
	a.OnAlloc(30)
	a.OnFree(60)
	a.OnAlloc(10)
	st := a.Stats()
	if st.Active != 40 || st.PeakActive != 90 {
		t.Fatalf("active %d peak %d, want 40/90", st.Active, st.PeakActive)
	}
	if st.Reserved != 100 || st.PeakReserved != 100 {
		t.Fatalf("reserved %d peak %d", st.Reserved, st.PeakReserved)
	}
	a.OnRelease(50)
	a.ResetPeaks()
	st = a.Stats()
	if st.PeakActive != 40 || st.PeakReserved != 50 {
		t.Fatalf("after ResetPeaks: %+v", st)
	}
	if st.AllocCount != 3 || st.FreeCount != 1 {
		t.Fatalf("counts %d/%d", st.AllocCount, st.FreeCount)
	}
}

func TestAccountingQuick(t *testing.T) {
	// Peaks never decrease and always bound current values during an
	// arbitrary alloc/free sequence.
	f := func(ops []int16) bool {
		var a Accounting
		var live int64
		for _, op := range ops {
			size := int64(op)%512 + 1
			if size <= 0 {
				size = -size + 1
			}
			if op >= 0 {
				a.OnReserve(size)
				a.OnAlloc(size)
				live += size
			} else if live > 0 {
				if size > live {
					size = live
				}
				a.OnFree(size)
				a.OnRelease(size)
				live -= size
			}
			st := a.Stats()
			if st.PeakActive < st.Active || st.PeakReserved < st.Reserved {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferImpl(t *testing.T) {
	b := &Buffer{}
	if b.Impl() != nil {
		t.Fatal("fresh buffer has impl")
	}
	b.SetImpl(42)
	if b.Impl() != 42 {
		t.Fatal("impl roundtrip failed")
	}
}
