package harness

import (
	"strings"
	"testing"

	"repro/internal/servegen"
)

// TestServeMixExperimentDeterministic is the acceptance criterion: with a
// fixed seed, two independent runs of the serving-mix experiment produce
// identical request streams and identical per-SLO-class latency tables.
func TestServeMixExperimentDeterministic(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		NewEnv().ServeMixExperiment().Render(&sb)
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("two runs with the same seed rendered different tables:\n%s\n---\n%s", a, b)
	}
	reqs1, err := servegen.MixedBursty().Generate(serveMixRequests, NewEnv().Seed)
	if err != nil {
		t.Fatal(err)
	}
	reqs2, err := servegen.MixedBursty().Generate(serveMixRequests, NewEnv().Seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs1 {
		if reqs1[i] != reqs2[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

// TestServeMixExperimentShape: per-class rows must appear for all three KV
// policies under all three mixes, with no OOM rows and the mixes' class
// rosters complete.
func TestServeMixExperimentShape(t *testing.T) {
	tbl := NewEnv().ServeMixExperiment()

	type key struct{ mix, policy, pool string }
	classes := map[key]map[string]bool{}
	for _, row := range tbl.Rows {
		if row[5] == "OOM" {
			t.Fatalf("OOM row: %v", row)
		}
		k := key{row[0], row[1], row[2]}
		if classes[k] == nil {
			classes[k] = map[string]bool{}
		}
		classes[k][row[3]] = true
	}

	policies := []key{} // expected (policy, pool) combinations per mix
	for _, p := range (&Env{}).serveMixPolicies() {
		policies = append(policies, key{policy: p.policy, pool: p.pool})
	}
	for _, mix := range servegen.Mixes() {
		for _, p := range policies {
			k := key{mix.Name, p.policy, p.pool}
			got := classes[k]
			if len(got) != len(mix.Classes) {
				t.Errorf("%v: %d class rows, mix has %d classes", k, len(got), len(mix.Classes))
				continue
			}
			for _, c := range mix.Classes {
				if !got[c.Name] {
					t.Errorf("%v: class %s missing", k, c.Name)
				}
			}
		}
	}
}
