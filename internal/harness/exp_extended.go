package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// coreConfig aliases the GMLake configuration for the ablation table.
type coreConfig = core.Config

// coreConfigVariant is one ablation point: a name plus a config mutation.
type coreConfigVariant struct {
	name   string
	mutate func(*coreConfig)
}

// gmlakeRunResult extends RunResult with GMLake-internal counters.
type gmlakeRunResult struct {
	RunResult
	stitches    int64
	stitchFrees int64
}

// runGMLakeVariant runs the ablation workload on a custom-configured GMLake.
func (e *Env) runGMLakeVariant(v coreConfigVariant) gmlakeRunResult {
	cfg := core.DefaultConfig()
	if v.mutate != nil {
		v.mutate(&cfg)
	}
	dev := gpu.NewDevice("sim-a100", e.Capacity)
	clock := sim.NewClock()
	driver := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	alloc := core.New(driver, cfg)
	r := rig{dev: dev, clock: clock, driver: driver, alloc: alloc}
	spec := workload.Spec{Model: model.OPT13B, Strategy: workload.StrategyLRO, World: 4, Batch: 24}
	res := e.runOnRig(r, spec, AllocGMLake+"/"+v.name, RunOptions{})
	_, s2, s3, _ := alloc.StrategyCounts()
	return gmlakeRunResult{RunResult: res, stitches: s2 + s3, stitchFrees: alloc.StitchFreeCount()}
}

// Extended goes beyond the paper's evaluation: a five-way comparison between
// the caching baseline, the same baseline with the PYTORCH_CUDA_ALLOC_CONF
// tuning practitioners used against fragmentation (max_split_size_mb +
// garbage_collection_threshold), GMLake (virtual memory stitching), PyTorch's later
// expandable-segments allocator (virtual memory growing — the technique the
// paper's §6 family anticipates and PyTorch eventually shipped), and a
// compaction-based defragmenter (the copy-based alternative §6 argues
// against).
//
// Expected shape: all three defragmenters eliminate most of the baseline's
// reserved-memory waste; compaction pays for it with data-movement time;
// expandable segments land close to GMLake, with interior holes costing it a
// little extra memory on the most irregular mixes.
func (e *Env) Extended() *Table {
	t := &Table{
		ID:    "extended",
		Title: "Defragmentation techniques compared (OPT-13B, 4 GPUs, batch 24)",
		Header: []string{"Strategy", "Allocator",
			"Reserved(GB)", "Utilization", "Thru(samples/s)"},
	}
	allocators := []string{AllocCaching, AllocCachingTuned, AllocGMLake, AllocExpandable, AllocCompact}
	type cell struct {
		strategy workload.Strategy
		alloc    string
	}
	var cells []cell
	for _, s := range []workload.Strategy{
		workload.StrategyR, workload.StrategyLR, workload.StrategyRO, workload.StrategyLRO,
	} {
		for _, name := range allocators {
			cells = append(cells, cell{strategy: s, alloc: name})
		}
	}
	results := runCells(e, cells, func(c cell) RunResult {
		spec := workload.Spec{Model: model.OPT13B, Strategy: c.strategy, World: 4, Batch: 24}
		return e.RunWorkload(spec, c.alloc, RunOptions{})
	})
	for i, res := range results {
		t.AddRow(cells[i].strategy.Label(), cells[i].alloc, gbOrOOM(res), pctOrOOM(res), thrOrOOM(res))
	}
	t.AddNote("beyond the paper: expandable segments is the VMM technique PyTorch later adopted; compaction is the §6 copy-based alternative")
	return t
}

// Ablations quantifies GMLake's own design choices on the most
// fragmentation-prone workload: split semantics (rebind vs destroy), the
// fragmentation limit, and the stitched-pool cap.
func (e *Env) Ablations() *Table {
	t := &Table{
		ID:    "ablations",
		Title: "GMLake design-choice ablations (OPT-13B, LRO, 4 GPUs, batch 24)",
		Header: []string{"Variant", "Reserved(GB)", "Utilization",
			"Thru(samples/s)", "Stitches", "StitchFrees"},
	}
	base := coreConfigVariant{name: "default"}
	variants := []coreConfigVariant{
		base,
		{name: "destroy-on-split", mutate: func(c *coreConfig) { c.RebindOnSplit = false }},
		{name: "frag-limit-2MB", mutate: func(c *coreConfig) { c.FragLimit = 2 << 20 }},
		{name: "frag-limit-512MB", mutate: func(c *coreConfig) { c.FragLimit = 512 << 20 }},
		{name: "spool-cap-64", mutate: func(c *coreConfig) { c.MaxSBlocks = 64 }},
	}
	for i, res := range runCells(e, variants, e.runGMLakeVariant) {
		t.AddRow(variants[i].name, gbOrOOM(res.RunResult), pctOrOOM(res.RunResult),
			thrOrOOM(res.RunResult),
			fmt.Sprintf("%d", res.stitches), fmt.Sprintf("%d", res.stitchFrees))
	}
	t.AddNote("rebind-on-split preserves the convergence tape; tiny sPool caps force re-stitching every iteration")
	return t
}
