package harness

import (
	"fmt"
	"time"

	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/parallel"
	"repro/internal/pipesim"
	"repro/internal/recompute"
	"repro/internal/sim"
	"repro/internal/stream"
)

// ZeROExperiment tabulates per-rank training state and per-step
// communication across ZeRO stages and world sizes (the decomposition behind
// the paper's Figure 4 scale-out observation): higher stages shrink each
// rank's residents but slice them into world-dependent shards and add
// gather churn.
func (e *Env) ZeROExperiment() *Table {
	t := &Table{
		ID:     "zero",
		Title:  "ZeRO stages: per-rank state and communication, OPT-13B",
		Header: []string{"stage", "world", "params(GB)", "grads(GB)", "optim(GB)", "total(GB)", "comm/step(GB)"},
	}
	params := model.OPT13B.Params()
	type cell struct {
		stage parallel.ZeROStage
		world int
	}
	var cells []cell
	for _, stage := range []parallel.ZeROStage{parallel.Stage0, parallel.Stage1, parallel.Stage2, parallel.Stage3} {
		for _, world := range []int{1, 4, 16} {
			cells = append(cells, cell{stage: stage, world: world})
		}
	}
	for _, row := range runCells(e, cells, func(c cell) []string {
		b, err := parallel.ZeROState(params, c.world, c.stage)
		if err != nil {
			panic("harness: " + err.Error())
		}
		comm := parallel.ZeROStepCommBytes(params, c.world, c.stage)
		return []string{c.stage.String(), fmt.Sprint(c.world),
			gb(b.Params), gb(b.Grads), gb(b.Optimizer), gb(b.Total()), gb(comm)}
	}) {
		t.AddRow(row...)
	}
	t.AddNote("ZeRO-3 cuts a 16-rank job's per-rank state 8x vs ZeRO-0 but pays 2 extra parameter gathers per step;")
	t.AddNote("each gather materializes transient full layers — the alloc/free churn behind Figure 4's utilization drop.")
	return t
}

// TopologyExperiment sizes 3D-parallel decompositions of GPT-NeoX-20B with
// the memory planner: which topologies fit an 80 GiB device and where the
// per-rank demand goes.
func (e *Env) TopologyExperiment() *Table {
	t := &Table{
		ID:     "topology",
		Title:  "3D parallelism memory plan, GPT-NeoX-20B (micro-batch 4, 1F1B)",
		Header: []string{"topology", "world", "zero", "max rank (GB)", "state (GB)", "acts (GB)", "fits 80GB"},
	}
	cfg := model.GPTNeoX20B
	cases := []struct {
		topo parallel.Topology
		zero parallel.ZeROStage
	}{
		{parallel.Topology{DP: 1, TP: 1, PP: 1}, parallel.Stage0},
		{parallel.Topology{DP: 4, TP: 1, PP: 1}, parallel.Stage3},
		{parallel.Topology{DP: 1, TP: 4, PP: 1}, parallel.Stage0},
		{parallel.Topology{DP: 1, TP: 1, PP: 4}, parallel.Stage0},
		{parallel.Topology{DP: 2, TP: 2, PP: 2}, parallel.Stage1},
		{parallel.Topology{DP: 4, TP: 2, PP: 2}, parallel.Stage3},
	}
	for _, row := range runCells(e, cases, func(c struct {
		topo parallel.Topology
		zero parallel.ZeROStage
	}) []string {
		plan, err := parallel.PlanMemory(cfg, c.topo, c.zero, parallel.OneFOneB, 4, 0)
		if err != nil {
			panic("harness: " + err.Error())
		}
		var worst parallel.RankDemand
		for _, d := range plan.Stages {
			if d.Total() > worst.Total() {
				worst = d
			}
		}
		return []string{c.topo.String(), fmt.Sprint(c.topo.World()), c.zero.String(),
			gb(plan.MaxRankBytes()), gb(worst.State.Total()), gb(worst.Activations),
			fmt.Sprint(plan.Fits(80*sim.GiB, 0.1))}
	}) {
		t.AddRow(row...)
	}
	t.AddNote("20B parameters at 16 bytes/param need 325 GB of state: no single 80 GB device fits without sharding.")
	return t
}

// RecomputeExperiment tabulates checkpointing plans for GPT-NeoX-20B: how
// the planner trades activation memory against recompute time, and how a
// byte budget picks the cheapest feasible segmentation.
func (e *Env) RecomputeExperiment() *Table {
	t := &Table{
		ID:     "recompute",
		Title:  "Activation checkpointing plans, GPT-NeoX-20B batch 16",
		Header: []string{"plan", "segments", "peak acts (GB)", "stored (GB)", "extra time", "vs store-all"},
	}
	m := recompute.ForModel(model.GPTNeoX20B, 16, 0, 0)
	full := m.Evaluate(recompute.NoRecompute())

	// Cells: one plan evaluation per row; m is shared read-only (value
	// receiver, pure evaluation).
	planRow := func(name string, p recompute.Plan) []string {
		r := m.Evaluate(p)
		return []string{name, fmt.Sprint(r.Segments), gb(r.PeakBytes), gb(r.StoredBytes),
			r.ExtraTime.Round(time.Millisecond).String(),
			pct(float64(r.PeakBytes) / float64(full.PeakBytes))}
	}
	jobs := []func() []string{
		func() []string { return planRow("store-all", recompute.NoRecompute()) },
	}
	if p, err := recompute.SqrtN(len(m.Layers)); err == nil {
		jobs = append(jobs, func() []string { return planRow("sqrt(N)", p) })
	}
	if p, err := recompute.Uniform(len(m.Layers), 1); err == nil {
		jobs = append(jobs, func() []string { return planRow("per-layer", p) })
	}
	for _, frac := range []float64{0.5, 0.25, 0.1} {
		frac := frac
		jobs = append(jobs, func() []string {
			budget := int64(float64(full.PeakBytes) * frac)
			p, err := m.PlanForBudget(budget)
			if err != nil {
				return []string{fmt.Sprintf("budget %.0f%%", frac*100), "-", "infeasible", "-", "-", "-"}
			}
			return planRow(fmt.Sprintf("budget %.0f%%", frac*100), p)
		})
	}
	for _, row := range e.tableRows(jobs) {
		t.AddRow(row...)
	}
	t.AddNote("checkpointing converts a big resident activation set into per-segment recompute bursts of")
	t.AddNote("short-lived tensors — the small-and-frequent request pattern of Figure 5's right panel.")
	return t
}

// OffloadExperiment measures the ZeRO-Offload optimizer pipeline on the
// virtual clock: pipelined versus serial step time across bucket sizes and
// interconnects, plus the GPU staging churn the strategy induces.
func (e *Env) OffloadExperiment() *Table {
	t := &Table{
		ID:     "offload",
		Title:  "ZeRO-Offload optimizer step, OPT-13B shard on 4 GPUs",
		Header: []string{"link", "bucket", "pipelined", "serial", "speedup", "staging allocs"},
	}
	// One rank's fp16 gradient shard of OPT-13B across 4 GPUs.
	shard := model.ShardBytes(model.OPT13B.Params()*model.DTypeBytes, 4)
	links := []struct {
		name string
		link func() *offload.Link
		pin  bool
	}{
		{"pcie-pinned", offload.DefaultPCIe, true},
		{"pcie-pageable", offload.DefaultPCIe, false},
		{"nvlink-c2c", offload.NVLinkC2C, true},
	}
	// One cell per link × bucket; the link constructors run inside the cell
	// so concurrent cells never share a Link value.
	type cell struct {
		linkIdx int
		bucket  int64
	}
	var cells []cell
	for i := range links {
		for _, bucket := range []int64{16 * sim.MiB, 64 * sim.MiB, 256 * sim.MiB} {
			cells = append(cells, cell{linkIdx: i, bucket: bucket})
		}
	}
	for _, row := range runCells(e, cells, func(c cell) []string {
		l := links[c.linkIdx]
		r := e.newRig(AllocCaching)
		sched := stream.NewScheduler(r.clock)
		engine := offload.NewEngine(l.link(), sched)
		opt, err := offload.NewOptimizer(offload.OptimizerConfig{
			Bucket:     c.bucket,
			Pinned:     l.pin,
			StageOnGPU: true,
		}, engine, r.alloc, shard)
		if err != nil {
			panic("harness: " + err.Error())
		}
		elapsed, err := opt.Step(shard)
		if err != nil {
			panic("harness: " + err.Error())
		}
		serial := opt.SerialStepEstimate(shard)
		return []string{l.name, sim.FormatBytes(c.bucket),
			elapsed.Round(time.Millisecond).String(),
			serial.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(serial)/float64(elapsed)),
			fmt.Sprint(r.alloc.Stats().AllocCount)}
	}) {
		t.AddRow(row...)
	}
	t.AddNote("the bucketed D2H → CPU-Adam → H2D pipeline hides most transfer time behind CPU compute;")
	t.AddNote("every bucket is one staging alloc+free on the GPU — offload's contribution to Observation 1.")
	return t
}

// StreamsExperiment quantifies the stream-aware free deferral: sharing
// buffers with a busy side stream keeps blocks transiently unavailable, so
// reserved memory climbs above the no-sharing run on the same request
// sequence.
func (e *Env) StreamsExperiment() *Table {
	t := &Table{
		ID:     "streams",
		Title:  "Cross-stream sharing inflates reserved memory (record_stream deferral)",
		Header: []string{"allocator", "sharing", "peak reserved (GB)", "deferred frees", "events"},
	}
	const (
		rounds  = 64
		bufSize = 256 * sim.MiB
		kernel  = 5 * time.Millisecond
	)
	type cell struct {
		alloc string
		share bool
	}
	var cells []cell
	for _, allocName := range []string{AllocCaching, AllocGMLake} {
		for _, share := range []bool{false, true} {
			cells = append(cells, cell{alloc: allocName, share: share})
		}
	}
	for _, row := range runCells(e, cells, func(c cell) []string {
		r := e.newRig(c.alloc)
		sched := stream.NewScheduler(r.clock)
		side := sched.NewStream()
		sa := stream.NewAllocator(r.alloc, sched)

		for i := 0; i < rounds; i++ {
			b, err := sa.Alloc(bufSize)
			if err != nil {
				panic("harness: streams experiment OOM")
			}
			if c.share {
				// A kernel on the side stream reads the buffer.
				sched.Launch(side, kernel)
				sa.RecordStream(b, side)
			}
			sa.Free(b)
		}
		sa.SynchronizeAndFree()
		st := sa.Stats()
		return []string{c.alloc, fmt.Sprint(c.share), gb(st.PeakReserved),
			fmt.Sprint(sa.DeferredTotal()), fmt.Sprint(sched.EventsRecorded())}
	}) {
		t.AddRow(row...)
	}
	t.AddNote("without sharing each free is immediate and one block is reused for all rounds;")
	t.AddNote("with a busy consumer stream the free defers behind an event, forcing fresh reservations.")
	return t
}

// PipelineExperiment drives per-stage allocators through GPipe and 1F1B
// schedules with sequence-length jitter: the schedules' different activation
// lifetimes (LIFO flush vs bounded FIFO window) and the jittered sizes
// separate the caching allocator from GMLake on the worst stage.
func (e *Env) PipelineExperiment() *Table {
	t := &Table{
		ID:     "pipefrag",
		Title:  "Pipeline schedules vs allocators, OPT-13B, 4 stages, 20% seq jitter",
		Header: []string{"schedule", "allocator", "worst reserved (GB)", "worst util", "OOM stages"},
	}
	type cell struct {
		sched parallel.Schedule
		alloc string
	}
	var cells []cell
	for _, sched := range []parallel.Schedule{parallel.GPipe, parallel.OneFOneB} {
		for _, allocName := range []string{AllocCaching, AllocGMLake} {
			cells = append(cells, cell{sched: sched, alloc: allocName})
		}
	}
	for _, row := range runCells(e, cells, func(c cell) []string {
		cfg := pipesim.Config{
			Model: model.OPT13B,
			Pipe: parallel.PipelineConfig{
				Stages:       4,
				MicroBatches: 16,
				Schedule:     c.sched,
			},
			MicroBatch: 2,
			SeqJitter:  0.2,
			Steps:      max(2, e.TotalSteps/5),
			Seed:       e.Seed,
		}
		results, err := pipesim.Run(cfg, func(int) memalloc.Allocator {
			return e.newRig(c.alloc).alloc
		})
		if err != nil {
			panic("harness: " + err.Error())
		}
		ooms := 0
		for _, r := range results {
			if r.OOM {
				ooms++
			}
		}
		worst := pipesim.WorstStage(results)
		return []string{c.sched.String(), c.alloc,
			gb(worst.Stats.PeakReserved), pct(worst.Stats.Utilization()), fmt.Sprint(ooms)}
	}) {
		t.AddRow(row...)
	}
	t.AddNote("GPipe buffers all 16 microbatches at the flush; 1F1B holds at most the stage depth but")
	t.AddNote("recycles jittered sizes through the pool every slot — the churn GMLake absorbs.")
	return t
}
