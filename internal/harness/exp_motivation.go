package harness

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Figure3 reproduces the motivation study: memory utilization of the caching
// allocator when fine-tuning OPT-1.3B on 4 GPUs under five strategy
// combinations (P, PR, PLR, PRO, PLRO).
func (e *Env) Figure3() *Table {
	t := &Table{
		ID:     "figure3",
		Title:  "Memory utilization by strategy combination (OPT-1.3B, 4 GPUs, caching allocator)",
		Header: []string{"Strategy", "Utilization", "PeakActive(GB)", "PeakReserved(GB)"},
	}
	results := runCells(e, figureStrategies, func(s figureStrategy) RunResult {
		spec := workload.Spec{Model: model.OPT1_3B, Strategy: s.strategy, World: 4, Batch: 48}
		return e.RunWorkload(spec, AllocCaching, RunOptions{})
	})
	for i, res := range results {
		s := figureStrategies[i]
		t.AddRow("P"+sIf(s.label != "N", s.label, ""), pct(res.Utilization()), gb(res.PeakActive), gb(res.PeakReserved))
	}
	t.AddNote("paper: P 97%%, PR 80%%, PLR 76%%, PRO 70%%, PLRO 73%% — utilization falls as strategies compound")
	return t
}

// figureStrategy labels one strategy combination of Figures 3 and 10.
type figureStrategy struct {
	label    string
	strategy workload.Strategy
}

var figureStrategies = []figureStrategy{
	{"N", workload.StrategyN},
	{"R", workload.StrategyR},
	{"LR", workload.StrategyLR},
	{"RO", workload.StrategyRO},
	{"LRO", workload.StrategyLRO},
}

func sIf(cond bool, a, b string) string {
	if cond {
		return a
	}
	return b
}

// Figure4 reproduces the GPU scale-out motivation: caching-allocator
// utilization for OPT-13B as the world grows 1 → 16.
func (e *Env) Figure4() *Table {
	t := &Table{
		ID:     "figure4",
		Title:  "Memory utilization vs GPU count (OPT-13B, LR, caching allocator)",
		Header: []string{"GPUs", "Utilization", "PeakActive(GB)", "PeakReserved(GB)"},
	}
	worlds := []int{1, 2, 4, 8, 16}
	results := runCells(e, worlds, func(w int) RunResult {
		spec := workload.Spec{Model: model.OPT13B, Strategy: workload.StrategyLR, World: w, Batch: 24}
		return e.RunWorkload(spec, AllocCaching, RunOptions{})
	})
	for i, res := range results {
		t.AddRow(fmt.Sprintf("%d", worlds[i]), pct(res.Utilization()), gb(res.PeakActive), gb(res.PeakReserved))
	}
	t.AddNote("paper: utilization declines from ~91%% at 1 GPU to ~76%% at 16 GPUs")
	return t
}

// Figure5 reproduces the footprint-irregularity statistics: GPT-NeoX-20B
// training with and without LR, counting allocations and their mean size.
// The paper reports ~46k allocations at ~93 MB average for the plain run vs
// ~76k at ~85 MB with LR — more and smaller requests.
func (e *Env) Figure5() *Table {
	t := &Table{
		ID:     "figure5",
		Title:  "Request-stream statistics (GPT-NeoX-20B, caching allocator)",
		Header: []string{"Config", "Allocs", "MeanSize(MB)", "Allocs/step", "Utilization"},
	}
	cfgs := []struct {
		label    string
		strategy workload.Strategy
		batch    int
	}{
		{"Original", workload.StrategyN, 4},
		{"+LR", workload.StrategyLR, 4},
	}
	rows := e.tableRows([]func() []string{
		func() []string { return e.figure5Row(cfgs[0].label, cfgs[0].strategy, cfgs[0].batch) },
		func() []string { return e.figure5Row(cfgs[1].label, cfgs[1].strategy, cfgs[1].batch) },
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: plain run ~46k allocations averaging ~93MB; +LR run ~76k averaging ~85MB (more, smaller, more irregular)")
	return t
}

// figure5Row measures one Figure 5 configuration (a run plus a traced
// re-run for the mean request size) and renders its row.
func (e *Env) figure5Row(label string, strategy workload.Strategy, batch int) []string {
	spec := workload.Spec{Model: model.GPTNeoX20B, Strategy: strategy, World: 8, Batch: batch}
	res := e.RunWorkload(spec, AllocCaching, RunOptions{})
	steps := res.Steps
	if steps == 0 {
		steps = 1
	}
	return []string{label,
		fmt.Sprintf("%d", res.AllocCount),
		fmt.Sprintf("%.0f", e.meanAllocMB(spec)),
		fmt.Sprintf("%d", res.AllocCount/int64(steps)),
		pct(res.Utilization())}
}

// meanAllocMB computes the mean requested allocation size over a short
// traced run of spec.
func (e *Env) meanAllocMB(spec workload.Spec) float64 {
	tr := e.TraceRun(spec, 8)
	st := tr.Stats()
	if st.Allocs == 0 {
		return 0
	}
	return float64(st.MeanBytes) / float64(sim.MiB)
}

// Figure5Timelines returns the memory-footprint timelines behind Figure 5's
// two panels, for CSV export by cmd/gmlake-trace.
func (e *Env) Figure5Timelines() (plain, lr *metrics.Timeline) {
	specs := []workload.Spec{
		{Model: model.GPTNeoX20B, Strategy: workload.StrategyN, World: 8, Batch: 4},
		{Model: model.GPTNeoX20B, Strategy: workload.StrategyLR, World: 8, Batch: 4},
	}
	runs := runCells(e, specs, func(spec workload.Spec) RunResult {
		return e.RunWorkload(spec, AllocCaching, RunOptions{Timeline: true, Steps: 12})
	})
	return runs[0].Timeline, runs[1].Timeline
}
