package harness

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/workload"
)

// Cluster goes beyond the paper's single-rank measurement: a full
// data-parallel job with one simulated device and allocator per rank. With
// per-rank data loaders each rank draws different batch shapes, ranks
// fragment differently, and the job's OOM risk is set by the *worst* rank —
// a figure the paper's rank-0 numbers understate for the caching allocator.
// GMLake's reserved memory tracks active memory, so its worst rank barely
// exceeds its mean.
func (e *Env) ClusterExperiment() *Table {
	t := &Table{
		ID:    "cluster",
		Title: "Whole-job view: per-rank allocators (OPT-1.3B, LR, 4 ranks, batch 32)",
		Header: []string{"Allocator", "Shapes", "Mean RM(GB)", "Worst RM(GB)",
			"Rank skew", "Min util"},
	}
	type cell struct {
		alloc  string
		shared bool
	}
	var cells []cell
	for _, alloc := range []string{AllocCaching, AllocGMLake} {
		for _, shared := range []bool{true, false} {
			cells = append(cells, cell{alloc: alloc, shared: shared})
		}
	}
	summaries := runCells(e, cells, func(c cell) cluster.Summary {
		return e.runCluster(c.alloc, c.shared)
	})
	for i, s := range summaries {
		label := "per-rank"
		if cells[i].shared {
			label = "shared"
		}
		t.AddRow(cells[i].alloc, label,
			gb(s.MeanPeakReserved), gb(s.MaxPeakReserved),
			fmt.Sprintf("%.3f", s.RankSkew()), pct(s.MinUtilization))
	}
	t.AddNote("beyond the paper: a job OOMs when ANY rank does, so worst-rank reserved is the operative number")
	return t
}

func (e *Env) runCluster(alloc string, shared bool) cluster.Summary {
	c, err := cluster.New(cluster.Config{
		Spec: workload.Spec{
			Model:    model.OPT1_3B,
			Strategy: workload.StrategyLR,
			World:    4,
			Batch:    32,
			Seed:     e.Seed,
		},
		Allocator:    alloc,
		Capacity:     e.Capacity,
		SharedShapes: shared,
	})
	if err != nil {
		panic("harness: cluster: " + err.Error())
	}
	defer c.Teardown()
	if err := c.Setup(); err != nil {
		return c.Summarize()
	}
	for i := 0; i < e.TotalSteps; i++ {
		if err := c.Step(); err != nil {
			break
		}
	}
	return c.Summarize()
}
