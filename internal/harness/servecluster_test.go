package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/servegen"
)

// TestServeClusterSingleReplicaMatchesServemix is the PR's differential
// acceptance criterion at the harness level: on the exact request streams
// and rigs the servemix experiment uses, a one-replica cluster must produce
// a report identical to the single-server Serve loop for every mix × KV
// policy × dispatch policy combination.
func TestServeClusterSingleReplicaMatchesServemix(t *testing.T) {
	e := NewEnv()
	srvCfg := serve.ServerConfig{MaxBatch: serveMixMaxBatch}
	for _, mix := range servegen.Mixes() {
		reqs, err := mix.Generate(serveMixRequests, e.Seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range e.serveMixPolicies() {
			want, err := serve.Serve(reqs, p.make(e.newServeRig(p.pool)), srvCfg)
			if err != nil {
				t.Fatalf("%s/%s/%s: Serve: %v", mix.Name, p.policy, p.pool, err)
			}
			for _, dispatch := range serve.DispatchPolicies() {
				got, err := serve.ServeCluster(reqs, func(int) serve.CacheManager {
					return p.make(e.newServeRig(p.pool))
				}, serve.ClusterConfig{Replicas: 1, Dispatch: dispatch, Server: srvCfg})
				if err != nil {
					t.Fatalf("%s/%s/%s/%s: ServeCluster: %v", mix.Name, p.policy, p.pool, dispatch, err)
				}
				if !reflect.DeepEqual(got.Report, want) {
					t.Errorf("%s/%s/%s/%s: one-replica cluster diverged from Serve",
						mix.Name, p.policy, p.pool, dispatch)
				}
			}
		}
	}
}

// TestServeClusterExperimentDeterministic: the full servecluster experiment
// (scaling grid + aging table) renders byte-identically across independent
// runs and across engine parallelism — the cluster co-simulation is
// event-ordered and every cell owns its replicas' rigs.
func TestServeClusterExperimentDeterministic(t *testing.T) {
	render := func(parallelism int) string {
		e := NewEnv()
		e.Parallelism = parallelism
		var sb strings.Builder
		for _, tbl := range e.ServeClusterExperiment() {
			tbl.Render(&sb)
		}
		return sb.String()
	}
	seq := render(1)
	if par := render(8); seq != par {
		t.Fatalf("servecluster diverged across parallelism:\n--- P=1 ---\n%s\n--- P=8 ---\n%s", seq, par)
	}
	if again := render(8); seq != again {
		t.Fatal("servecluster diverged across two identical runs")
	}
	if strings.Contains(seq, "OOM") {
		t.Fatalf("servecluster hit OOM cells:\n%s", seq)
	}
}

// TestServeClusterExperimentShape: the scaling grid covers every (mix,
// replica count, dispatch) cell with the mix's full class roster plus an
// ALL row whose assigned spread names every replica.
func TestServeClusterExperimentShape(t *testing.T) {
	tbl := NewEnv().serveClusterScaling()
	type key struct {
		mix, replicas, dispatch string
	}
	classes := map[key]map[string]bool{}
	spread := map[key]string{}
	for _, row := range tbl.Rows {
		k := key{row[0], row[1], row[2]}
		if classes[k] == nil {
			classes[k] = map[string]bool{}
		}
		if row[3] == "ALL" {
			spread[k] = row[len(row)-1]
			continue
		}
		classes[k][row[3]] = true
	}
	for _, mix := range servegen.Mixes() {
		for _, n := range serveClusterReplicas {
			for _, d := range serve.DispatchPolicies() {
				k := key{mix.Name, fmt.Sprint(n), string(d)}
				if len(classes[k]) != len(mix.Classes) {
					t.Errorf("%v: %d class rows, mix has %d classes", k, len(classes[k]), len(mix.Classes))
				}
				if got := len(strings.Split(spread[k], "/")); got != n {
					t.Errorf("%v: assigned spread %q names %d replicas, want %d", k, spread[k], got, n)
				}
			}
		}
	}
}
