package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a renderable experiment result: a title, a header row, data rows
// and free-form notes (the paper's expected values go there).
type Table struct {
	ID     string // experiment id, e.g. "figure10a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, " "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, " note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
