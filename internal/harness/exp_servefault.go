package harness

import (
	"fmt"
	"time"

	"repro/internal/serve"
	"repro/internal/servegen"
)

// Fault-injection testbed. Intensities are calibrated to the ~15s virtual
// makespan of the 120-request mixes: "low" crashes a replica once or twice
// per run, "high" keeps roughly one replica of three in recovery at any
// moment. The deadline is loose enough that a fault-free run completes
// everything in time — misses and lost goodput are attributable to faults.
const (
	serveFaultFleet    = 3
	serveFaultBatch    = 6
	serveFaultTimeout  = 30 * time.Second
	serveFaultTightSLO = 15 * time.Second
	serveFaultMTTR     = 400 * time.Millisecond
)

// serveFaultIntensities are the compared fault levels: the fault-free
// baseline every faulty run is measured against, plus two MTTF settings.
type serveFaultIntensity struct {
	name string
	mttf time.Duration
}

func serveFaultIntensities() []serveFaultIntensity {
	return []serveFaultIntensity{
		{"none", 0},
		{"low (mttf 8s)", 8 * time.Second},
		{"high (mttf 2s)", 2 * time.Second},
	}
}

func (e *Env) serveFaultConfig(mttf, timeout time.Duration, rc serve.RecoveryConfig, shed bool) serve.ClusterConfig {
	cfg := serve.ClusterConfig{
		Replicas: serveFaultFleet,
		Dispatch: serve.DispatchJSQ,
		Server: serve.ServerConfig{
			MaxBatch:     serveFaultBatch,
			ExactSamples: e.ExactSamples,
			Timeout:      timeout,
			Shed:         shed,
		},
		Recovery: rc,
	}
	if mttf > 0 {
		cfg.Faults = serve.FaultConfig{MTTF: mttf, MTTR: serveFaultMTTR, Seed: e.Seed}
	}
	return cfg
}

// ServeFaultExperiment measures goodput and availability under replica
// crashes: every mix at three fault intensities under a fixed retry policy,
// then one overloaded mix at the high intensity under the recovery-policy
// ladder. Faults are injected at event boundaries from seeded streams, so
// the tables are byte-identical at any engine parallelism.
func (e *Env) ServeFaultExperiment() []*Table {
	return []*Table{e.serveFaultIntensity(), e.serveFaultPolicies()}
}

// serveFaultIntensity is the mixes × fault-intensities grid under retries:3
// with exponential backoff.
func (e *Env) serveFaultIntensity() *Table {
	t := &Table{
		ID: "servefault",
		Title: fmt.Sprintf("Serving under replica faults: %d replicas, OPT-1.3B, %d requests, %v deadline, retries:3",
			serveFaultFleet, serveMixRequests, serveFaultTimeout),
		Header: []string{"mix", "faults", "served", "goodput", "crashes", "restarts",
			"retries", "lost", "misses", "avail"},
	}
	type cell struct {
		mix       servegen.Mix
		reqs      []serve.Request
		intensity serveFaultIntensity
	}
	var cells []cell
	for _, mix := range servegen.Mixes() {
		reqs, err := mix.Generate(serveMixRequests, e.Seed)
		if err != nil {
			panic("harness: " + err.Error())
		}
		for _, in := range serveFaultIntensities() {
			cells = append(cells, cell{mix: mix, reqs: reqs, intensity: in})
		}
	}
	rc := serve.RecoveryConfig{Retries: 3, Backoff: 2}
	reports := runCells(e, cells, func(c cell) serve.ClusterReport {
		rep, err := serve.ServeCluster(c.reqs, e.clusterMgrFactory(), e.serveFaultConfig(c.intensity.mttf, serveFaultTimeout, rc, false))
		if err != nil {
			panic("harness: servefault " + c.mix.Name + "/" + c.intensity.name + ": " + err.Error())
		}
		return rep
	})
	for i, rep := range reports {
		c := cells[i]
		t.AddRow(c.mix.Name, c.intensity.name, fmt.Sprint(rep.Served), fmt.Sprint(rep.Goodput),
			fmt.Sprint(rep.Crashes), fmt.Sprint(rep.Restarts), fmt.Sprint(rep.Retries),
			fmt.Sprint(rep.Lost), fmt.Sprint(rep.DeadlineMisses), pct(rep.Availability))
	}
	t.AddNote("goodput counts completions inside the deadline; avail is capacity-weighted uptime. Crashed")
	t.AddNote("in-flight requests recompute from scratch on a surviving replica (TTFT kept iff the first")
	t.AddNote("token had streamed); queued requests are re-dispatched for free. Same seed, same table,")
	t.AddNote("at any parallelism.")
	return t
}

// serveFaultPolicies holds the fault intensity fixed and walks the recovery
// ladder on the bursty mix: abandon in-flight work, retry it, or retry and
// shed provably-late admissions.
func (e *Env) serveFaultPolicies() *Table {
	t := &Table{
		ID: "servefault-policy",
		Title: fmt.Sprintf("Recovery policies at mttf 2s: mixed-bursty, %d replicas, %d requests, %v deadline",
			serveFaultFleet, serveMixRequests, serveFaultTightSLO),
		Header: []string{"policy", "served", "goodput", "retries", "lost", "shed", "misses", "e2e p99", "avail"},
	}
	reqs, err := servegen.MixedBursty().Generate(serveMixRequests, e.Seed)
	if err != nil {
		panic("harness: " + err.Error())
	}
	type policy struct {
		name string
		rc   serve.RecoveryConfig
		shed bool
	}
	policies := []policy{
		{"no-retry", serve.RecoveryConfig{}, false},
		{"retry:3", serve.RecoveryConfig{Retries: 3, Backoff: 2}, false},
		{"retry:3+shed", serve.RecoveryConfig{Retries: 3, Backoff: 2}, true},
	}
	reports := runCells(e, policies, func(p policy) serve.ClusterReport {
		rep, err := serve.ServeCluster(reqs, e.clusterMgrFactory(), e.serveFaultConfig(2*time.Second, serveFaultTightSLO, p.rc, p.shed))
		if err != nil {
			panic("harness: servefault-policy " + p.name + ": " + err.Error())
		}
		return rep
	})
	for i, rep := range reports {
		t.AddRow(policies[i].name, fmt.Sprint(rep.Served), fmt.Sprint(rep.Goodput),
			fmt.Sprint(rep.Retries), fmt.Sprint(rep.Lost), fmt.Sprint(rep.Shed),
			fmt.Sprint(rep.DeadlineMisses), ms(rep.E2E.P99), pct(rep.Availability))
	}
	t.AddNote("no-retry abandons crashed in-flight requests (lost); retry recomputes them from scratch")
	t.AddNote("with exponential backoff; shed additionally rejects requests at admission once their")
	t.AddNote("queueing delay makes the deadline unreachable, freeing batch slots for requests that")
	t.AddNote("can still make it.")
	return t
}
