package harness

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/reqtrace"
	"repro/internal/servegen"
)

func renderServeTrace(t *testing.T, e *Env) string {
	t.Helper()
	tables, err := e.ServeTraceExperiment()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tbl := range tables {
		tbl.Render(&sb)
	}
	return sb.String()
}

// TestServeTraceParallelIdentical pins the servetrace tables byte-identical
// at P=1 and P=8 on the parallel experiment engine.
func TestServeTraceParallelIdentical(t *testing.T) {
	seq, par := NewEnv(), NewEnv()
	seq.Parallelism = 1
	par.Parallelism = 8
	a, b := renderServeTrace(t, seq), renderServeTrace(t, par)
	if a != b {
		t.Fatalf("servetrace differs at P=1 vs P=8:\n%s\n---\n%s", a, b)
	}
}

// TestServeTraceRoundTripRows is the harness-level round-trip acceptance:
// for every mix, the replayed rows are byte-identical to the generated
// ones, class for class.
func TestServeTraceRoundTripRows(t *testing.T) {
	tables, err := NewEnv().ServeTraceExperiment()
	if err != nil {
		t.Fatal(err)
	}
	main := tables[0]
	type key struct{ mix, class string }
	generated := map[key][]string{}
	replayed := map[key][]string{}
	for _, row := range main.Rows {
		k := key{row[0], row[2]}
		switch row[1] {
		case "generated":
			generated[k] = row[3:]
		case "replayed":
			replayed[k] = row[3:]
		}
	}
	if len(generated) == 0 || len(generated) != len(replayed) {
		t.Fatalf("row coverage: %d generated vs %d replayed keys", len(generated), len(replayed))
	}
	for k, g := range generated {
		r, ok := replayed[k]
		if !ok {
			t.Fatalf("%v has no replayed row", k)
		}
		if strings.Join(g, "|") != strings.Join(r, "|") {
			t.Fatalf("%v: replayed row %v differs from generated %v", k, r, g)
		}
	}
}

// TestServeTraceFitTolerance enforces the stated acceptance bound: the
// fitted mix's aggregate rate and mean-length errors (the ALL row of the
// fit table) stay within serveTraceRateTol / serveTraceLenTol for every
// mix, and every mix class appears in the fit table.
func TestServeTraceFitTolerance(t *testing.T) {
	tables, err := NewEnv().ServeTraceExperiment()
	if err != nil {
		t.Fatal(err)
	}
	fit := tables[1]
	parsePct := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad percentage cell %q", s)
		}
		return v / 100
	}
	allRows := 0
	classes := map[string]int{}
	for _, row := range fit.Rows {
		if row[1] != "ALL" {
			classes[row[0]]++
			continue
		}
		allRows++
		if e := parsePct(row[4]); e > serveTraceRateTol {
			t.Errorf("%s: aggregate rate error %s above %.0f%%", row[0], row[4], 100*serveTraceRateTol)
		}
		for _, cell := range []string{row[5], row[6]} {
			if e := parsePct(cell); e > serveTraceLenTol {
				t.Errorf("%s: mean length error %s above %.0f%%", row[0], cell, 100*serveTraceLenTol)
			}
		}
	}
	mixes := servegen.Mixes()
	if allRows != len(mixes) {
		t.Fatalf("%d ALL rows for %d mixes", allRows, len(mixes))
	}
	for _, mix := range mixes {
		if classes[mix.Name] != len(mix.Classes) {
			t.Errorf("%s: %d fit rows, mix has %d classes", mix.Name, classes[mix.Name], len(mix.Classes))
		}
	}
}

// TestServeTraceMissingFile: a nonexistent trace_in path is a clear error
// through the harness — named in the message, never a panic — and the
// RunExperiment wrapper renders it as a note.
func TestServeTraceMissingFile(t *testing.T) {
	e := NewEnv()
	e.TraceIn = "/nonexistent/prod-trace.jsonl"
	_, err := e.ServeTraceExperiment()
	if err == nil || !strings.Contains(err.Error(), "/nonexistent/prod-trace.jsonl") {
		t.Fatalf("error %v does not name the missing trace", err)
	}
	tables := e.RunExperiment("servetrace")
	if len(tables) != 1 || len(tables[0].Notes) == 0 ||
		!strings.Contains(tables[0].Notes[0], "/nonexistent/prod-trace.jsonl") {
		t.Fatalf("RunExperiment did not surface the load error: %+v", tables)
	}
}

// TestServeTraceFromFile drives the trace_in path end to end: capture a
// mix to a file, replay it through the experiment, and check the replayed
// table matches the file's roster.
func TestServeTraceFromFile(t *testing.T) {
	reqs, err := servegen.ChatHeavy().Generate(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "captured.csv")
	if err := reqtrace.FromRequests(reqs).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	e := NewEnv()
	e.TraceIn = path
	tables, err := e.ServeTraceExperiment()
	if err != nil {
		t.Fatal(err)
	}
	sawReplay := false
	for _, row := range tables[0].Rows {
		if row[0] != path {
			t.Fatalf("row labeled %q, want the trace path", row[0])
		}
		if row[1] == "replayed" {
			sawReplay = true
		}
	}
	if !sawReplay {
		t.Fatal("no replayed rows for the trace file")
	}
}
