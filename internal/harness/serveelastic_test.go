package harness

import (
	"strconv"
	"strings"
	"testing"
)

// renderServeElastic renders the full serveelastic experiment at the given
// engine parallelism.
func renderServeElastic(parallelism int) string {
	e := NewEnv()
	e.Parallelism = parallelism
	var sb strings.Builder
	for _, tbl := range e.ServeElasticExperiment() {
		tbl.Render(&sb)
	}
	return sb.String()
}

// TestServeElasticExperimentDeterministic is the PR's harness-level
// differential criterion: the serveelastic tables render byte-identically
// across engine parallelism and across independent runs — autoscaling and
// stealing decisions are event-ordered inside each cell, and every cell
// owns its replicas' rigs.
func TestServeElasticExperimentDeterministic(t *testing.T) {
	seq := renderServeElastic(1)
	if par := renderServeElastic(8); seq != par {
		t.Fatalf("serveelastic diverged across parallelism:\n--- P=1 ---\n%s\n--- P=8 ---\n%s", seq, par)
	}
	if again := renderServeElastic(8); seq != again {
		t.Fatal("serveelastic diverged across two identical runs")
	}
}

// TestServeElasticScalingBehaviour checks the rows mean what they claim:
// every fleet serves the full stream, the elastic fleets actually scale
// (spawns > 0, peak within bounds) and consume strictly fewer
// replica-seconds than the static MaxReplicas fleet, and the stealing
// fleet records steals.
func TestServeElasticScalingBehaviour(t *testing.T) {
	tbl := NewEnv().serveElasticScaling()
	fleets := serveElasticFleets(0)
	if len(tbl.Rows)%len(fleets) != 0 {
		t.Fatalf("%d rows for %d fleets", len(tbl.Rows), len(fleets))
	}
	col := func(row []string, name string) string {
		for i, h := range tbl.Header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	num := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(col(row, name), 64)
		if err != nil {
			t.Fatalf("column %q = %q: %v", name, col(row, name), err)
		}
		return v
	}
	for base := 0; base < len(tbl.Rows); base += len(fleets) {
		static := tbl.Rows[base]
		mix := col(static, "mix")
		staticRS := num(static, "replica-secs")
		for off, row := range tbl.Rows[base : base+len(fleets)] {
			if col(row, "served") != col(static, "served") {
				t.Errorf("%s/%s served %s, static served %s",
					mix, col(row, "fleet"), col(row, "served"), col(static, "served"))
			}
			if peak := num(row, "peak"); peak < 1 || peak > serveElasticMaxFleet {
				t.Errorf("%s/%s peak %v outside [1, %d]", mix, col(row, "fleet"), peak, serveElasticMaxFleet)
			}
			if off == 0 {
				continue
			}
			if num(row, "spawns") == 0 {
				t.Errorf("%s/%s never scaled up under a %dx overload", mix, col(row, "fleet"), serveElasticRate)
			}
			if rs := num(row, "replica-secs"); rs >= staticRS {
				t.Errorf("%s/%s consumed %v replica-secs, static fleet %v — no drain savings",
					mix, col(row, "fleet"), rs, staticRS)
			}
		}
		if stolen := num(tbl.Rows[base+2], "stolen"); stolen < 0 {
			t.Errorf("%s: negative steal count %v", mix, stolen)
		}
	}
}

// TestServeElasticHeteroCapacityAware: on the heterogeneous table the
// load-aware policies route roughly twice the requests to the 2x replica,
// while round-robin splits evenly.
func TestServeElasticHeteroCapacityAware(t *testing.T) {
	tbl := NewEnv().serveElasticHetero()
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	ratio := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("ratio %q: %v", row[len(row)-1], err)
		}
		return v
	}
	for _, row := range tbl.Rows {
		switch row[0] {
		case "round-robin":
			if r := ratio(row); r < 0.9 || r > 1.2 {
				t.Errorf("round-robin big/small ratio %v, want ~1", r)
			}
		case "jsq", "least-kv", "session-affinity":
			// session-affinity on a sessionless mix degenerates to its
			// jsq fallback, so it must stay capacity-aware too.
			if r := ratio(row); r < 1.5 {
				t.Errorf("%s big/small ratio %v, want ~2 (capacity-aware)", row[0], r)
			}
		default:
			t.Errorf("unexpected dispatch row %q", row[0])
		}
	}
}
