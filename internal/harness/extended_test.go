package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// parseGB parses a "12.3" cell; returns -1 for OOM.
func parseGB(t *testing.T, cell string) float64 {
	t.Helper()
	if cell == "OOM" {
		return -1
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("bad GB cell %q: %v", cell, err)
	}
	return v
}

func TestExtendedOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	e := fastEnv()
	tbl := e.Extended()
	// Group reserved memory by strategy; within each, caching must be the
	// worst and every defragmenter must improve on it.
	byStrategy := map[string]map[string]float64{}
	for _, row := range tbl.Rows {
		strat, alloc := row[0], row[1]
		if byStrategy[strat] == nil {
			byStrategy[strat] = map[string]float64{}
		}
		byStrategy[strat][alloc] = parseGB(t, row[2])
	}
	for strat, m := range byStrategy {
		base := m[AllocCaching]
		if base < 0 {
			continue
		}
		for _, name := range []string{AllocGMLake, AllocExpandable, AllocCompact} {
			if m[name] < 0 {
				t.Errorf("%s: %s OOM'd where caching survived", strat, name)
				continue
			}
			if m[name] >= base {
				t.Errorf("%s: %s reserved %.1f GB, not below caching %.1f GB",
					strat, name, m[name], base)
			}
		}
		// GMLake must be at least as good as expandable segments (interior
		// holes cost the latter).
		if m[AllocGMLake] > m[AllocExpandable]+0.1 {
			t.Errorf("%s: gmlake %.1f GB worse than expandable %.1f GB",
				strat, m[AllocGMLake], m[AllocExpandable])
		}
	}
}

func TestAblationsStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute experiment")
	}
	e := fastEnv()
	tbl := e.Ablations()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 variants", len(tbl.Rows))
	}
	stitches := map[string]int64{}
	for _, row := range tbl.Rows {
		n, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		stitches[row[0]] = n
	}
	if stitches["destroy-on-split"] <= stitches["default"] {
		t.Errorf("destroy-on-split stitches %d not above default %d",
			stitches["destroy-on-split"], stitches["default"])
	}
	if stitches["spool-cap-64"] <= stitches["default"] {
		t.Errorf("tiny sPool cap stitches %d not above default %d",
			stitches["spool-cap-64"], stitches["default"])
	}
}

func TestRunGMLakeVariantUsesConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e := fastEnv()
	res := e.runGMLakeVariant(coreConfigVariant{
		name:   "check",
		mutate: func(c *core.Config) { c.MaxSBlocks = 1 },
	})
	if res.stitchFrees == 0 {
		t.Fatal("MaxSBlocks=1 produced no StitchFree evictions; config not applied")
	}
}
