package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/servegen"
)

// TestServeFaultDeterministicParallel: the fault experiment's acceptance
// criterion — seeded fault injection must render byte-identical tables at
// Parallelism=1 and Parallelism=8, because faults fire from per-replica
// streams that depend only on the configuration, never on engine timing.
func TestServeFaultDeterministicParallel(t *testing.T) {
	ids := []string{"servefault"}
	seq := renderExperiments(t, 1, ids)
	par := renderExperiments(t, 8, ids)
	if seq != par {
		t.Fatalf("servefault diverged across parallelism:\n--- parallelism 1 ---\n%s\n--- parallelism 8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "avail") || !strings.Contains(seq, "goodput") {
		t.Fatalf("servefault table missing goodput/availability columns:\n%s", seq)
	}
}

// TestServeFaultChaosSmoke is the CI chaos gate: an aggressive fault rate
// over the full fleet must terminate, seal a coherent report, and never
// panic or deadlock — whatever the crash/restart interleaving does to the
// dispatch queue.
func TestServeFaultChaosSmoke(t *testing.T) {
	reqs, err := servegen.MixedBursty().Generate(80, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnv()
	for _, seed := range []uint64{1, 2, 3} {
		rep, err := serve.ServeCluster(reqs, e.clusterMgrFactory(), serve.ClusterConfig{
			Replicas: serveFaultFleet,
			Dispatch: serve.DispatchJSQ,
			Server:   serve.ServerConfig{MaxBatch: serveFaultBatch, Timeout: 60 * time.Second},
			Faults:   serve.FaultConfig{MTTF: time.Second, MTTR: 300 * time.Millisecond, Seed: seed},
			Recovery: serve.RecoveryConfig{Retries: 5, Backoff: 2},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Crashes == 0 {
			t.Fatalf("seed %d: chaos run saw no crashes", seed)
		}
		if rep.Availability <= 0 || rep.Availability >= 1 {
			t.Fatalf("seed %d: availability %v outside (0,1)", seed, rep.Availability)
		}
		if rep.Goodput > rep.Served {
			t.Fatalf("seed %d: goodput %d > served %d", seed, rep.Goodput, rep.Served)
		}
	}
}
