package harness

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/servegen"
)

// Elastic-serving testbed. The mixes are overloaded well past one replica's
// service rate so the queue-depth autoscaler has a backlog to react to, and
// the per-replica batch is small enough that queued work is visible backlog
// rather than instant admission.
const (
	serveElasticRate     = 4 // x the mix's aggregate rate
	serveElasticMaxFleet = 4
	serveElasticBatch    = 6
)

// serveElasticFleets are the compared fleet configurations: the static
// MaxReplicas fleet every elastic run is measured against, the autoscaled
// fleet, and the autoscaled fleet with work-stealing re-dispatch.
type serveElasticFleet struct {
	name string
	cfg  serve.ClusterConfig
}

func serveElasticFleets(exactSamples int) []serveElasticFleet {
	server := serve.ServerConfig{MaxBatch: serveElasticBatch, ExactSamples: exactSamples}
	return []serveElasticFleet{
		{"static-4", serve.ClusterConfig{
			Replicas: serveElasticMaxFleet, Dispatch: serve.DispatchJSQ, Server: server}},
		{"elastic 1..4", serve.ClusterConfig{
			MinReplicas: 1, MaxReplicas: serveElasticMaxFleet,
			Dispatch: serve.DispatchJSQ, Server: server}},
		{"elastic+steal", serve.ClusterConfig{
			MinReplicas: 1, MaxReplicas: serveElasticMaxFleet, Steal: true,
			Dispatch: serve.DispatchJSQ, Server: server}},
	}
}

// ServeElasticExperiment compares static, autoscaled and work-stealing
// fleets on overloaded multi-tenant mixes, and shows capacity-aware
// dispatch over a heterogeneous two-replica fleet. Cells run on the
// parallel experiment engine; each cell owns its replicas' rigs, so the
// tables are byte-identical at any parallelism.
func (e *Env) ServeElasticExperiment() []*Table {
	return []*Table{e.serveElasticScaling(), e.serveElasticHetero()}
}

// serveElasticScaling is the mixes × fleet-configurations grid. The
// replica-seconds column is the fleet cost (virtual time integral of
// provisioned replicas); "saved" is the fraction of the static MaxReplicas
// fleet's replica-seconds the elastic fleet did not consume.
func (e *Env) serveElasticScaling() *Table {
	t := &Table{
		ID: "serveelastic",
		Title: fmt.Sprintf("Elastic serving fleet at %dx overload, OPT-1.3B, %d requests, batch %d per replica",
			serveElasticRate, serveMixRequests, serveElasticBatch),
		Header: []string{"mix", "fleet", "served", "e2e p50", "e2e p99",
			"peak", "spawns", "drains", "replica-secs", "saved", "stolen"},
	}
	type cell struct {
		mix   servegen.Mix
		reqs  []serve.Request
		fleet serveElasticFleet
	}
	var cells []cell
	for _, mix := range servegen.Mixes() {
		over := mix.WithRate(mix.Rate * serveElasticRate)
		reqs, err := over.Generate(serveMixRequests, e.Seed)
		if err != nil {
			panic("harness: " + err.Error())
		}
		for _, f := range serveElasticFleets(e.ExactSamples) {
			cells = append(cells, cell{mix: mix, reqs: reqs, fleet: f})
		}
	}
	reports := runCells(e, cells, func(c cell) serve.ClusterReport {
		rep, err := serve.ServeCluster(c.reqs, e.clusterMgrFactory(), c.fleet.cfg)
		if err != nil {
			panic("harness: serveelastic " + c.mix.Name + "/" + c.fleet.name + ": " + err.Error())
		}
		return rep
	})
	// Rows are assembled after the join so each elastic row can report its
	// savings against the static fleet of the same mix — the first cell of
	// each mix's block by construction.
	fleets := serveElasticFleets(e.ExactSamples)
	for i, rep := range reports {
		c := cells[i]
		static := reports[i-i%len(fleets)]
		saved := "-"
		if c.fleet.name != fleets[0].name && static.ReplicaSeconds > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*(1-float64(rep.ReplicaSeconds)/float64(static.ReplicaSeconds)))
		}
		stolen := 0
		for _, n := range rep.Stolen {
			stolen += n
		}
		t.AddRow(c.mix.Name, c.fleet.name, fmt.Sprint(rep.Served),
			ms(rep.E2E.P50), ms(rep.E2E.P99),
			fmt.Sprint(rep.PeakReplicas), fmt.Sprint(rep.Spawns), fmt.Sprint(rep.Drains),
			fmt.Sprintf("%.1f", rep.ReplicaSeconds.Seconds()), saved, fmt.Sprint(stolen))
	}
	t.AddNote("replica-secs integrates provisioned replicas over virtual time (static fleet = 4 x makespan);")
	t.AddNote("saved is relative to the static-4 fleet of the same mix. The autoscaler spawns on queued")
	t.AddNote("backlog and drains a replica only once it has emptied, so runs stay deterministic.")
	return t
}

// serveElasticHetero serves one overloaded mix on a heterogeneous
// two-replica fleet — replica 0 has twice the capacity (pool, batch and
// dispatch weight) of replica 1 — under every dispatch policy. Capacity-
// aware policies route ~2x the requests to the big replica; round-robin
// splits blindly and overloads the small one.
func (e *Env) serveElasticHetero() *Table {
	t := &Table{
		ID: "serveelastic-hetero",
		Title: fmt.Sprintf("Heterogeneous 2-replica fleet (2x + 1x capacity), mixed-bursty at %dx, %d requests",
			serveElasticRate, serveMixRequests),
		Header: []string{"dispatch", "served", "e2e p50", "e2e p99", "assigned", "big/small"},
	}
	mix := servegen.MixedBursty()
	reqs, err := mix.WithRate(mix.Rate*serveElasticRate).Generate(serveMixRequests, e.Seed)
	if err != nil {
		panic("harness: " + err.Error())
	}
	weights := []int64{2, 1}
	newMgr := func() func(int) serve.CacheManager {
		return func(i int) serve.CacheManager {
			r := e.newRigCap(AllocCaching, weights[i]*serveMixCapacity)
			return serve.NewChunkedKV(r.alloc, model.OPT1_3B, serveMixChunkTokens)
		}
	}
	reports := runCells(e, serve.DispatchPolicies(), func(d serve.DispatchPolicy) serve.ClusterReport {
		rep, err := serve.ServeCluster(reqs, newMgr(), serve.ClusterConfig{
			Replicas: 2,
			Dispatch: d,
			Server:   serve.ServerConfig{MaxBatch: serveElasticBatch, ExactSamples: e.ExactSamples},
			Overrides: []serve.ReplicaOverride{
				{Capacity: 2, MaxBatch: 2 * serveElasticBatch},
			},
		})
		if err != nil {
			panic("harness: serveelastic-hetero " + string(d) + ": " + err.Error())
		}
		return rep
	})
	for i, rep := range reports {
		spread := make([]string, len(rep.Assigned))
		for j, n := range rep.Assigned {
			spread[j] = fmt.Sprint(n)
		}
		ratio := "-"
		if rep.Assigned[1] > 0 {
			ratio = fmt.Sprintf("%.1f", float64(rep.Assigned[0])/float64(rep.Assigned[1]))
		}
		t.AddRow(string(serve.DispatchPolicies()[i]), fmt.Sprint(rep.Served),
			ms(rep.E2E.P50), ms(rep.E2E.P99), strings.Join(spread, "/"), ratio)
	}
	t.AddNote("replica 0 has a 2x pool, a 2x batch limit and dispatch weight 2: jsq and least-kv divide")
	t.AddNote("observed load by the weight, so the big replica absorbs ~2x the demand; round-robin is")
	t.AddNote("capacity-blind and pays for it in the tail.")
	return t
}
