package harness

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fastEnv keeps integration tests quick: small step budgets are enough to
// check orderings and invariants (full figures use cmd/gmlake-bench).
func fastEnv() *Env {
	e := NewEnv()
	e.TotalSteps = 12
	e.MaxSteps = 60
	e.MeasureSteps = 4
	return e
}

func TestTable1MatchesPaper(t *testing.T) {
	tbl := NewEnv().Table1()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	wantTotals := []float64{115.4, 9.1, 1.5}
	for i, row := range tbl.Rows {
		got, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-wantTotals[i])/wantTotals[i] > 0.05 {
			t.Errorf("row %d total = %v, paper %v", i, got, wantTotals[i])
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	tbl := NewEnv().Figure6()
	if tbl.Rows[0][0] != "Native" {
		t.Fatal("first row must be the native allocator")
	}
	native2GB, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	vmm2MB, _ := strconv.ParseFloat(tbl.Rows[1][3], 64)
	if ratio := vmm2MB / native2GB; ratio < 100 || ratio > 130 {
		t.Fatalf("2MB-chunk VMM / native = %.0fx, paper ~115x", ratio)
	}
	// Latency must fall monotonically down the chunk-size column.
	prev := math.Inf(1)
	for _, row := range tbl.Rows[1:] {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("latency not decreasing at chunk %s", row[0])
		}
		prev = v
	}
}

func TestRunWorkloadReportsOOM(t *testing.T) {
	e := fastEnv()
	e.Capacity = 2 * sim.GiB
	res := e.RunWorkload(workload.Spec{Model: model.OPT13B, World: 1, Batch: 1}, AllocCaching, RunOptions{})
	if !res.OOM {
		t.Fatal("13B on 2 GiB should OOM")
	}
	if res.Steps != 0 {
		t.Fatalf("Steps = %d after setup OOM", res.Steps)
	}
}

func TestGMLakeBeatsCachingOnIrregularWorkload(t *testing.T) {
	e := fastEnv()
	spec := workload.Spec{Model: model.OPT1_3B, Strategy: workload.StrategyLR, World: 4, Batch: 32}
	base, gml := e.Compare(spec, RunOptions{})
	if base.OOM || gml.OOM {
		t.Fatal("unexpected OOM")
	}
	if gml.PeakReserved >= base.PeakReserved {
		t.Fatalf("GMLake reserved %d not below caching %d", gml.PeakReserved, base.PeakReserved)
	}
	if gml.Utilization() <= base.Utilization() {
		t.Fatalf("GMLake utilization %.3f not above caching %.3f", gml.Utilization(), base.Utilization())
	}
	if gml.Utilization() < 0.95 {
		t.Fatalf("GMLake utilization %.3f, want >= 0.95 (paper: 90-95%%+)", gml.Utilization())
	}
}

func TestRegularWorkloadBothNearPerfect(t *testing.T) {
	e := fastEnv()
	spec := workload.Spec{Model: model.OPT1_3B, Strategy: workload.StrategyN, World: 4, Batch: 16}
	base, gml := e.Compare(spec, RunOptions{})
	if base.Utilization() < 0.95 || gml.Utilization() < 0.95 {
		t.Fatalf("plain training should not fragment: caching %.3f gmlake %.3f",
			base.Utilization(), gml.Utilization())
	}
}

func TestThroughputParityAfterConvergence(t *testing.T) {
	e := NewEnv() // full warm-up so GMLake converges
	e.MeasureSteps = 6
	spec := workload.Spec{Model: model.OPT1_3B, Strategy: workload.StrategyLR, World: 4, Batch: 32}
	base, gml := e.Compare(spec, RunOptions{})
	if base.OOM || gml.OOM {
		t.Fatal("unexpected OOM")
	}
	ratio := gml.Throughput() / base.Throughput()
	if ratio < 0.9 || ratio > 1.2 {
		t.Fatalf("throughput ratio gmlake/caching = %.2f, want ~1 (paper: comparable)", ratio)
	}
}

func TestOOMFrontierOrdering(t *testing.T) {
	// At some batch size the caching allocator must die before GMLake does
	// (Figure 13's headline behaviour), and GMLake must never OOM at a
	// batch the baseline survives.
	e := fastEnv()
	sawBaselineOnlyOOM := false
	batches := []int{64, 128, 192, 224, 249}
	if testing.Short() {
		// Scaled-down frontier: one surviving batch and the two points
		// where only the baseline dies.
		batches = []int{64, 224, 249}
	}
	for _, b := range batches {
		spec := workload.Spec{Model: model.OPT1_3B, Strategy: workload.StrategyLR, World: 4, Batch: b}
		base, gml := e.Compare(spec, RunOptions{})
		if gml.OOM && !base.OOM {
			t.Fatalf("GMLake OOM'd at batch %d while caching survived", b)
		}
		if base.OOM && !gml.OOM {
			sawBaselineOnlyOOM = true
		}
	}
	if !sawBaselineOnlyOOM {
		t.Fatal("no batch where only the baseline OOMs; Figure 13's frontier is missing")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "x", Title: "T", Header: []string{"A", "BB"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("n=%d", 5)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: T ==", "A", "BB", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRunRecords(t *testing.T) {
	e := fastEnv()
	tr := e.TraceRun(workload.Spec{Model: model.OPT1_3B, Strategy: workload.StrategyN, World: 2, Batch: 4}, 2)
	st := tr.Stats()
	if st.Allocs == 0 || st.Frees == 0 {
		t.Fatalf("trace empty: %+v", st)
	}
	if st.Frees > st.Allocs {
		t.Fatal("more frees than allocs")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if got := NewEnv().RunExperiment("nope"); got != nil {
		t.Fatal("unknown experiment returned tables")
	}
}

func TestNativeSlowdown(t *testing.T) {
	ratio := fastEnv().NativeSlowdownEndToEnd()
	if ratio < 1.5 {
		t.Fatalf("native end-to-end slowdown = %.2fx, want clearly slower (paper 9.7x)", ratio)
	}
}

func TestFigure5MoreAndSmallerAllocs(t *testing.T) {
	e := fastEnv()
	tbl := e.Figure5()
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	plainAllocs, _ := strconv.ParseInt(tbl.Rows[0][1], 10, 64)
	lrAllocs, _ := strconv.ParseInt(tbl.Rows[1][1], 10, 64)
	plainMean, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	lrMean, _ := strconv.ParseFloat(tbl.Rows[1][2], 64)
	if lrAllocs <= plainAllocs {
		t.Fatalf("LR allocs %d not more than plain %d", lrAllocs, plainAllocs)
	}
	if lrMean >= plainMean {
		t.Fatalf("LR mean %.0f not smaller than plain %.0f", lrMean, plainMean)
	}
}
