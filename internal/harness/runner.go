package harness

import "repro/internal/runner"

// The parallel experiment engine. Every experiment declares its cells —
// independent workload × configuration executions, each of which assembles
// its own rig (device, virtual clock, driver, allocator) — and the engine
// runs them on a bounded worker pool, joining results by cell index. Because
// cells share nothing and the join order is fixed, the rendered tables are
// byte-identical whatever Env.Parallelism is; the differential test in
// parallel_test.go pins that property.

// workers resolves Env.Parallelism (0 = GOMAXPROCS) for the engine.
func (e *Env) workers() int { return runner.Workers(e.Parallelism) }

// runCells executes run over every cell on the engine and returns the
// results in cell order. A panicking cell does not wedge the pool: every
// other cell still runs, and the lowest-index panic is re-raised afterwards
// as a *runner.PanicError so failures stay deterministic.
func runCells[C, R any](e *Env, cells []C, run func(C) R) []R {
	out, err := runner.Collect(e.workers(), len(cells), func(i int) R {
		return run(cells[i])
	})
	if err != nil {
		panic(err)
	}
	return out
}

// tableRows is runCells for the common case where each cell produces
// exactly one table row.
func (e *Env) tableRows(jobs []func() []string) [][]string {
	return runCells(e, jobs, func(job func() []string) []string { return job() })
}
