package harness

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/reqtrace"
	"repro/internal/serve"
	"repro/internal/servegen"
)

// Fit-quality tolerances the servetrace experiment states and the tests
// enforce: a stream regenerated from the fitted mix must match the captured
// trace within these relative errors on mean rate and mean token lengths.
const (
	serveTraceRateTol = 0.15
	serveTraceLenTol  = 0.25
)

// serveTraceResult is one mix's slice of the servetrace tables.
type serveTraceResult struct {
	rows    [][]string // per-source per-class serving rows
	fitRows [][]string // per-class fit-error rows
}

// ServeTraceExperiment closes the specify→observe→calibrate loop on the
// serving substrate. For every canonical mix it (1) serves the generated
// stream with a capture hook recording completions into a request trace,
// (2) replays the trace — the replayed rows are byte-identical to the
// generated ones, the round-trip guarantee — and (3) fits a servegen mix to
// the trace and serves a stream regenerated from the fit, with a per-class
// fit-error table (moment match + KS distance) quantifying how much of the
// hand-picked mix the calibration recovered.
//
// With Env.TraceIn set the canonical mixes are replaced by the trace file:
// the experiment replays it (rate-scaled by Env.TraceScale) and compares
// against its fitted mix. A missing or malformed file is returned as an
// error — trace paths come from user configuration, so they must not panic
// the harness.
//
// Cells run on the parallel experiment engine (one cell per mix, each on
// private rigs), so the tables are byte-identical at any parallelism.
func (e *Env) ServeTraceExperiment() ([]*Table, error) {
	type cell struct {
		name string
		reqs []serve.Request
	}
	var cells []cell
	if e.TraceIn != "" {
		tr, err := reqtrace.ReadFile(e.TraceIn)
		if err != nil {
			return nil, err
		}
		reqs, err := tr.Replay(reqtrace.ReplayOptions{Scale: e.TraceScale})
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell{name: e.TraceIn, reqs: reqs})
	} else {
		for _, mix := range servegen.Mixes() {
			reqs, err := mix.Generate(serveMixRequests, e.Seed)
			if err != nil {
				panic("harness: " + err.Error())
			}
			cells = append(cells, cell{name: mix.Name, reqs: reqs})
		}
	}

	results := runCells(e, cells, func(c cell) serveTraceResult {
		return e.serveTraceCell(c.name, c.reqs)
	})

	main := &Table{
		ID: "servetrace",
		Title: fmt.Sprintf("Generate→capture→replay→calibrate round trip, OPT-1.3B, %d requests, %s GB device",
			len(cells[0].reqs), gb(serveMixCapacity)),
		Header: []string{"mix", "source", "class", "SLO",
			"served", "TTFT p50", "TTFT p99", "e2e p50", "e2e p99", "preempt"},
	}
	fit := &Table{
		ID:    "servetrace-fit",
		Title: "Calibration fit error: fitted mix vs captured trace (relative errors; KS in [0,1])",
		Header: []string{"mix", "class", "SLO", "arrival fit",
			"rate err", "prompt err", "output err", "KS prompt", "KS output"},
	}
	for _, r := range results {
		for _, row := range r.rows {
			main.AddRow(row...)
		}
		for _, row := range r.fitRows {
			fit.AddRow(row...)
		}
	}
	main.AddNote("the generated rows are served with a reqtrace capture hook; the replayed rows re-serve the")
	main.AddNote("captured trace and are byte-identical to the generated ones (the round-trip guarantee); the")
	main.AddNote("fitted rows serve a stream regenerated from the calibrated mix — close, never identical.")
	fit.AddNote("tolerance: the fitted mix stays within %.0f%% on mean rate and %.0f%% on mean prompt/output",
		100*serveTraceRateTol, 100*serveTraceLenTol)
	fit.AddNote("length (ALL row); per-class KS distances expose what moment matching hides, e.g. an")
	fit.AddNote("extreme-burst class fitted as on-off rather than Gamma.")
	return []*Table{main, fit}, nil
}

// serveTraceCell runs one mix's generate→capture→replay→fit pipeline.
func (e *Env) serveTraceCell(name string, reqs []serve.Request) serveTraceResult {
	serveOn := func(stream []serve.Request, hook func(serve.Request)) serve.Report {
		r := e.newServeRig(AllocCaching)
		mgr := serve.NewChunkedKV(r.alloc, model.OPT1_3B, serveMixChunkTokens)
		rep, err := serve.Serve(stream, mgr, serve.ServerConfig{
			MaxBatch: serveMixMaxBatch, OnComplete: hook, ExactSamples: e.ExactSamples,
		})
		if err != nil {
			panic("harness: servetrace " + name + ": " + err.Error())
		}
		return rep
	}

	var res serveTraceResult
	addRows := func(source string, rep serve.Report) {
		for _, cr := range rep.Classes {
			res.rows = append(res.rows, []string{name, source,
				cr.Class, cr.SLO, fmt.Sprint(cr.Served),
				ms(cr.TTFT.P50), ms(cr.TTFT.P99),
				ms(cr.E2E.P50), ms(cr.E2E.P99), fmt.Sprint(cr.Preemptions)})
		}
	}

	cap := reqtrace.NewCapture()
	addRows("generated", serveOn(reqs, cap.Hook()))
	tr := cap.Trace()

	replayed, err := tr.Replay(reqtrace.ReplayOptions{})
	if err != nil {
		panic("harness: servetrace " + name + ": " + err.Error())
	}
	addRows("replayed", serveOn(replayed, nil))

	fitted, err := reqtrace.Fit(tr)
	if err != nil {
		panic("harness: servetrace " + name + ": " + err.Error())
	}
	synth, err := fitted.Generate(len(reqs), e.Seed)
	if err != nil {
		panic("harness: servetrace " + name + ": " + err.Error())
	}
	addRows("fitted", serveOn(synth, nil))

	// The fit-error report compares the exact stream the fitted rows
	// served — no regeneration, no implicit (n, seed) coupling.
	fitRep := reqtrace.CompareTraces(tr, reqtrace.FromRequests(synth))
	for _, ce := range fitRep.Classes {
		arrival := "-"
		for _, c := range fitted.Classes {
			if c.Name == ce.Class {
				arrival = c.Arrival.Describe()
			}
		}
		res.fitRows = append(res.fitRows, []string{name, ce.Class, ce.SLO, arrival,
			pct(ce.RateErr), pct(ce.PromptMeanErr), pct(ce.OutputMeanErr),
			fmt.Sprintf("%.2f", ce.PromptKS), fmt.Sprintf("%.2f", ce.OutputKS)})
	}
	res.fitRows = append(res.fitRows, []string{name, "ALL", "-", "-",
		pct(fitRep.RateErr), pct(fitRep.PromptMeanErr), pct(fitRep.OutputMeanErr), "-", "-"})
	return res
}
