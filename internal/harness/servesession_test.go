package harness

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/servegen"
)

// TestServeSessionDeterministicParallel: the session experiment's acceptance
// criterion — multi-turn generation, prefix-reuse accounting and the sticky
// dispatch probe must render byte-identical tables at Parallelism=1 and
// Parallelism=8, because residency lives entirely on the virtual clock.
func TestServeSessionDeterministicParallel(t *testing.T) {
	ids := []string{"servesession"}
	seq := renderExperiments(t, 1, ids)
	par := renderExperiments(t, 8, ids)
	if seq != par {
		t.Fatalf("servesession diverged across parallelism:\n--- parallelism 1 ---\n%s\n--- parallelism 8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "chat-sessions") || !strings.Contains(seq, "session-affinity/jsq") {
		t.Fatalf("servesession table missing its session cells:\n%s", seq)
	}
}

// TestServeSessionAffinityWins pins the experiment's headline claim: on the
// session mix, affinity dispatch must beat plain jsq on prefix hits and
// reused tokens (the TTFT delta follows from those but is too small to pin
// robustly against mix retuning).
func TestServeSessionAffinityWins(t *testing.T) {
	reqs, err := servegen.ChatSessions().Generate(serveMixRequests, NewEnv().Seed)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnv()
	run := func(dispatch, base serve.DispatchPolicy) serve.ClusterReport {
		rep, err := serve.ServeCluster(reqs, e.clusterMgrFactory(), serve.ClusterConfig{
			Replicas:     serveSessionReplicas,
			Dispatch:     dispatch,
			AffinityBase: base,
			Server:       serve.ServerConfig{MaxBatch: serveMixMaxBatch, PrefixReuse: true},
		})
		if err != nil {
			t.Fatalf("%s: %v", dispatch, err)
		}
		return rep
	}
	aff := run(serve.DispatchSessionAffinity, serve.DispatchJSQ)
	jsq := run(serve.DispatchJSQ, "")
	if aff.AffinityRouted == 0 {
		t.Fatal("affinity dispatch never routed a request by residency")
	}
	if aff.PrefixHits <= jsq.PrefixHits || aff.ReusedTokens <= jsq.ReusedTokens {
		t.Fatalf("affinity did not beat jsq: hits %d vs %d, reused %d vs %d",
			aff.PrefixHits, jsq.PrefixHits, aff.ReusedTokens, jsq.ReusedTokens)
	}
	if jsq.AffinityRouted != 0 {
		t.Fatalf("jsq reported %d affinity routes", jsq.AffinityRouted)
	}
}

// TestServeSessionChaosSmoke extends the CI chaos gate with sessions: an
// aggressive fault rate under session-affinity dispatch with prefix reuse
// must terminate and seal a coherent report (crashes wipe residency, retried
// turns re-dispatch through the base policy), and the whole run must be
// reproducible — same seeds, same report.
func TestServeSessionChaosSmoke(t *testing.T) {
	reqs, err := servegen.ChatSessions().Generate(80, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnv()
	run := func(seed uint64) serve.ClusterReport {
		rep, err := serve.ServeCluster(reqs, e.clusterMgrFactory(), serve.ClusterConfig{
			Replicas:     serveFaultFleet,
			Dispatch:     serve.DispatchSessionAffinity,
			AffinityBase: serve.DispatchJSQ,
			Server:       serve.ServerConfig{MaxBatch: serveFaultBatch, Timeout: 60 * time.Second, PrefixReuse: true},
			Faults:       serve.FaultConfig{MTTF: time.Second, MTTR: 300 * time.Millisecond, Seed: seed},
			Recovery:     serve.RecoveryConfig{Retries: 5, Backoff: 2},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return rep
	}
	for _, seed := range []uint64{1, 2, 3} {
		rep := run(seed)
		if rep.Crashes == 0 {
			t.Fatalf("seed %d: chaos run saw no crashes", seed)
		}
		if rep.Goodput > rep.Served {
			t.Fatalf("seed %d: goodput %d > served %d", seed, rep.Goodput, rep.Served)
		}
		if rep.ReusedTokens < 0 || rep.PrefixHits < 0 {
			t.Fatalf("seed %d: negative reuse accounting: %+v", seed, rep.Report)
		}
		if again := run(seed); !reflect.DeepEqual(rep, again) {
			t.Fatalf("seed %d: session chaos run not reproducible", seed)
		}
	}
}
