// Package harness reproduces the paper's evaluation: one runner per table
// and figure, each returning a renderable text table with the same rows or
// series the paper reports. DESIGN.md maps experiment ids to these
// functions; EXPERIMENTS.md records paper-vs-measured values.
package harness

import (
	"fmt"
	"time"

	"repro/internal/caching"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/expandable"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Allocator names accepted by the runners.
const (
	AllocCaching    = "caching"
	AllocGMLake     = "gmlake"
	AllocNative     = "native"
	AllocExpandable = "expandable"
	AllocCompact    = "compact"
	// AllocCachingTuned is the caching allocator with the
	// PYTORCH_CUDA_ALLOC_CONF mitigations practitioners used before
	// VMM-based allocators: max_split_size_mb=128 and
	// garbage_collection_threshold=0.8.
	AllocCachingTuned = "caching-tuned"
)

// Env fixes the simulated testbed: A100-80GB-class devices and the
// calibrated driver cost model.
type Env struct {
	// Capacity is the per-GPU memory (default 80 GiB, the paper's A100).
	Capacity int64

	// TotalSteps is the minimum per-run step count. GMLake's stitched-block
	// cache needs tens of iterations to converge on the more irregular
	// strategy mixes (paper Figure 14 shows the same warm-up effect), and
	// the caching allocator's reserved memory needs a similar horizon to
	// reach its steady-state union of packings.
	TotalSteps int

	// MaxSteps caps the adaptive warm-up: a run keeps stepping past
	// TotalSteps until the allocator converges (GMLake: S1-only; caching:
	// reserved memory stable) or MaxSteps is reached.
	MaxSteps int

	// MeasureSteps is how many post-convergence steps the throughput is
	// averaged over.
	MeasureSteps int

	// Seed drives the workload generators.
	Seed uint64

	// Parallelism bounds the experiment engine's worker pool: experiment
	// cells (independent workload × allocator executions, each on its own
	// rig) run on up to this many goroutines, and their results are joined
	// by cell index so rendered tables are byte-identical to a sequential
	// run. 0 means GOMAXPROCS; 1 forces sequential execution.
	Parallelism int

	// TraceIn, when set, points the servetrace experiment at a request
	// trace file (internal/reqtrace JSONL or CSV) to replay and calibrate
	// instead of the canonical synthetic mixes; TraceScale rate-scales the
	// replay (0 = the recorded rate). A bad path surfaces as an error from
	// the experiment, never a panic.
	TraceIn    string
	TraceScale float64

	// ExactSamples is the serving experiments' latency-digest exact-
	// retention threshold (serve.ServerConfig.ExactSamples): 0 keeps the
	// serve default — large enough that every canonical experiment stays
	// on the exact nearest-rank path and tables render byte-identically —
	// and a negative value sketches from the first sample.
	ExactSamples int
}

// NewEnv returns the default environment.
func NewEnv() *Env {
	return &Env{
		Capacity:     80 * sim.GiB,
		TotalSteps:   40,
		MaxSteps:     200,
		MeasureSteps: 12,
		Seed:         7,
	}
}

// rig is one assembled device + driver + allocator.
type rig struct {
	dev    *gpu.Device
	clock  *sim.Clock
	driver *cuda.Driver
	alloc  memalloc.Allocator
}

func (e *Env) newRig(name string) rig { return e.newRigCap(name, e.Capacity) }

// newRigCap assembles a rig on a device of an explicit capacity. It must
// not read mutable Env state beyond its arguments: rigs are built inside
// parallel experiment cells.
func (e *Env) newRigCap(name string, capacity int64) rig {
	dev := gpu.NewDevice("sim-a100", capacity)
	clock := sim.NewClock()
	driver := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	var alloc memalloc.Allocator
	switch name {
	case AllocCaching:
		alloc = caching.New(driver)
	case AllocCachingTuned:
		alloc = caching.NewWithConfig(driver, caching.Config{
			MaxSplitSize: 128 * sim.MiB,
			GCThreshold:  0.8,
		})
	case AllocGMLake:
		alloc = core.NewDefault(driver)
	case AllocNative:
		alloc = memalloc.NewNative(driver)
	case AllocExpandable:
		alloc = expandable.New(driver)
	case AllocCompact:
		alloc = compact.New(driver)
	default:
		panic("harness: unknown allocator " + name)
	}
	return rig{dev: dev, clock: clock, driver: driver, alloc: alloc}
}

// RunResult is one workload × allocator execution.
type RunResult struct {
	metrics.Run
	Spec     workload.Spec
	Timeline *metrics.Timeline
	Counters cuda.Counters
}

// RunOptions tweaks RunWorkload.
type RunOptions struct {
	// Timeline attaches per-phase memory sampling.
	Timeline bool
	// Steps overrides the environment's step budget (0 = default).
	Steps int
}

// RunWorkload executes spec on the named allocator and summarizes it.
// Out-of-memory — at setup or any step — is reported in the result, not as
// an error: OOM points are data in Figures 13 and 14.
func (e *Env) RunWorkload(spec workload.Spec, allocName string, opts RunOptions) RunResult {
	return e.runOnRig(e.newRig(allocName), spec, allocName, opts)
}

// runOnRig drives spec on an already-assembled rig (used directly by the
// ablation runner, which needs custom allocator configurations).
func (e *Env) runOnRig(r rig, spec workload.Spec, allocName string, opts RunOptions) RunResult {
	spec.Seed = e.Seed
	res := RunResult{Spec: spec}
	res.Allocator = allocName

	tr, err := workload.NewTrainer(spec, r.alloc, r.clock)
	if err != nil {
		panic("harness: bad spec: " + err.Error())
	}
	var tl *metrics.Timeline
	if opts.Timeline {
		tl = &metrics.Timeline{}
		tr.SetTimeline(tl)
		res.Timeline = tl
	}

	minSteps, maxSteps := e.TotalSteps, e.MaxSteps
	if opts.Steps != 0 {
		minSteps, maxSteps = opts.Steps, opts.Steps
	}
	measure := e.MeasureSteps

	oom := false
	if err := tr.Setup(); err != nil {
		oom = true
	}

	// Warm up adaptively: run at least minSteps, then continue until the
	// allocator converges or maxSteps.
	conv := newConvergenceProbe(r.alloc)
	if !oom {
		for i := 0; i < maxSteps; i++ {
			if err := tr.Step(); err != nil {
				oom = true
				break
			}
			if i+1 >= minSteps && conv.converged() {
				break
			}
		}
	}

	// Measure throughput over post-warm-up steps.
	var measStart time.Duration
	measSamples := 0
	if !oom {
		measStart = r.clock.Now()
		for i := 0; i < measure; i++ {
			if err := tr.Step(); err != nil {
				oom = true
				break
			}
			measSamples += spec.Batch * spec.World
		}
	}
	st := r.alloc.Stats()
	res.PeakActive = st.PeakActive
	res.PeakReserved = st.PeakReserved
	res.AllocCount = st.AllocCount
	res.FreeCount = st.FreeCount
	res.Steps = tr.Steps()
	res.OOM = oom
	if measSamples > 0 && r.clock.Now() > measStart {
		res.Samples = measSamples
		res.Elapsed = r.clock.Now() - measStart
	}
	tr.Teardown()
	res.Counters = r.driver.Counters()
	return res
}

// Compare runs spec on both the caching baseline and GMLake.
func (e *Env) Compare(spec workload.Spec, opts RunOptions) (base, gml RunResult) {
	return e.RunWorkload(spec, AllocCaching, opts), e.RunWorkload(spec, AllocGMLake, opts)
}

// TraceRun records the allocation request stream of steps training steps of
// spec on the caching allocator (stream statistics are
// allocator-independent: the trainer emits the same requests either way).
func (e *Env) TraceRun(spec workload.Spec, steps int) *trace.Trace {
	r := e.newRig(AllocCaching)
	spec.Seed = e.Seed
	rec := trace.NewRecorder(r.alloc, r.clock)
	tr, err := workload.NewTrainer(spec, rec, r.clock)
	if err != nil {
		panic("harness: bad spec: " + err.Error())
	}
	if err := tr.Setup(); err != nil {
		return rec.Trace()
	}
	for i := 0; i < steps; i++ {
		if err := tr.Step(); err != nil {
			break
		}
	}
	tr.Teardown()
	return rec.Trace()
}

// convergenceProbe detects allocator steady state between training steps.
type convergenceProbe struct {
	gml *core.Allocator
	// lastNonExact is the S2+S3+S4 total at the previous check (GMLake);
	// lastReserved the reserved bytes (caching/native).
	lastNonExact int64
	alloc        memalloc.Allocator
	lastReserved int64
	stable       int
}

func newConvergenceProbe(alloc memalloc.Allocator) *convergenceProbe {
	p := &convergenceProbe{alloc: alloc}
	if g, ok := alloc.(*core.Allocator); ok {
		p.gml = g
	}
	return p
}

// converged reports steady state once the probe's signal has been stable for
// six consecutive steps: for GMLake no allocation left the S1 exact-match
// path (the paper's §5.4 convergence), for the baseline no reserved-memory
// growth. Six steps cover every recurring shape bucket a few times, so a
// lucky streak of repeated buckets cannot fake convergence.
func (p *convergenceProbe) converged() bool {
	var signal int64
	if p.gml != nil {
		_, s2, s3, s4 := p.gml.StrategyCounts()
		signal = s2 + s3 + s4
		if signal == p.lastNonExact {
			p.stable++
		} else {
			p.stable = 0
		}
		p.lastNonExact = signal
	} else {
		signal = p.alloc.Stats().PeakReserved
		if signal == p.lastReserved {
			p.stable++
		} else {
			p.stable = 0
		}
		p.lastReserved = signal
	}
	return p.stable >= 6
}

// gb formats bytes as "12.3" gigabytes.
func gb(n int64) string { return fmt.Sprintf("%.1f", float64(n)/float64(sim.GiB)) }

// pct formats a ratio as "87.3%".
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
