package harness

import (
	"strings"
	"testing"
)

// heavyExperiments take multiple seconds even at the minimum step budget
// (they sweep many workload × allocator cells); -short trades their
// coverage for a fast suite, the full run keeps the paper tables honest.
var heavyExperiments = map[string]bool{
	"figure10": true,
	"figure11": true,
	"figure13": true,
	"headline": true,
}

// TestAllExperimentsSmoke runs every registered experiment with a tiny step
// budget, exercising all runner code paths and validating table structure.
// In -short mode the shapes scale down further and the heavyweight sweeps
// are skipped; the full-budget numbers live in results_full.txt /
// EXPERIMENTS.md.
func TestAllExperimentsSmoke(t *testing.T) {
	e := NewEnv()
	e.TotalSteps = 3
	e.MaxSteps = 6
	e.MeasureSteps = 2
	if testing.Short() {
		e.TotalSteps, e.MaxSteps, e.MeasureSteps = 1, 2, 1
	}

	for _, id := range Experiments {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && heavyExperiments[id] {
				t.Skip("heavyweight sweep; full run only")
			}
			tables := e.RunExperiment(id)
			if len(tables) == 0 {
				t.Fatalf("experiment %q produced no tables", id)
			}
			for _, tbl := range tables {
				if tbl.ID == "" || tbl.Title == "" {
					t.Errorf("%s: missing id/title", id)
				}
				if len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
					t.Errorf("%s: empty table", tbl.ID)
				}
				for i, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("%s row %d: %d cells vs %d headers", tbl.ID, i, len(row), len(tbl.Header))
					}
					for j, cell := range row {
						if strings.TrimSpace(cell) == "" {
							t.Errorf("%s row %d col %d: empty cell", tbl.ID, i, j)
						}
					}
				}
				var sb strings.Builder
				tbl.Render(&sb)
				if !strings.Contains(sb.String(), tbl.ID) {
					t.Errorf("%s: render missing id", tbl.ID)
				}
			}
		})
	}
}

// TestRunAllWritesEverything checks the batch entry point used by
// cmd/gmlake-bench. It duplicates TestAllExperimentsSmoke's execution cost
// without a way to scale the heavy sweeps out, so -short skips it.
func TestRunAllWritesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment, heavy sweeps included")
	}
	e := NewEnv()
	e.TotalSteps = 2
	e.MaxSteps = 3
	e.MeasureSteps = 1
	var sb strings.Builder
	e.RunAll(&sb)
	out := sb.String()
	for _, id := range Experiments {
		if !strings.Contains(out, "== "+id) && !strings.Contains(out, "== "+id[:len(id)-1]) {
			t.Errorf("RunAll output missing experiment %q", id)
		}
	}
}
