package harness

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every registered experiment with a tiny step
// budget, exercising all runner code paths and validating table structure.
// The full-budget numbers live in results_full.txt / EXPERIMENTS.md.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; minutes of work")
	}
	e := NewEnv()
	e.TotalSteps = 3
	e.MaxSteps = 6
	e.MeasureSteps = 2

	for _, id := range Experiments {
		id := id
		t.Run(id, func(t *testing.T) {
			tables := e.RunExperiment(id)
			if len(tables) == 0 {
				t.Fatalf("experiment %q produced no tables", id)
			}
			for _, tbl := range tables {
				if tbl.ID == "" || tbl.Title == "" {
					t.Errorf("%s: missing id/title", id)
				}
				if len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
					t.Errorf("%s: empty table", tbl.ID)
				}
				for i, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("%s row %d: %d cells vs %d headers", tbl.ID, i, len(row), len(tbl.Header))
					}
					for j, cell := range row {
						if strings.TrimSpace(cell) == "" {
							t.Errorf("%s row %d col %d: empty cell", tbl.ID, i, j)
						}
					}
				}
				var sb strings.Builder
				tbl.Render(&sb)
				if !strings.Contains(sb.String(), tbl.ID) {
					t.Errorf("%s: render missing id", tbl.ID)
				}
			}
		})
	}
}

// TestRunAllWritesEverything checks the batch entry point used by
// cmd/gmlake-bench.
func TestRunAllWritesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	e := NewEnv()
	e.TotalSteps = 2
	e.MaxSteps = 3
	e.MeasureSteps = 1
	var sb strings.Builder
	e.RunAll(&sb)
	out := sb.String()
	for _, id := range Experiments {
		if !strings.Contains(out, "== "+id) && !strings.Contains(out, "== "+id[:len(id)-1]) {
			t.Errorf("RunAll output missing experiment %q", id)
		}
	}
}
