package harness

import (
	"fmt"
	"strings"

	"repro/internal/serve"
	"repro/internal/servegen"
)

// Session-serving grid: the chat-sessions mix (multi-turn conversations
// whose prompts grow by the prior exchange) against a sessionless control,
// each sharded over a fixed fleet under three dispatch policies. Every
// replica runs with KV prefix reuse on, so the comparison isolates the
// dispatcher: session-affinity lands a follow-up turn on the replica that
// still holds its prefix and skips that prefill; jsq and least-kv scatter
// turns and pay it.
const serveSessionReplicas = 4

// serveSessionPolicies are the swept dispatch policies. Session-affinity
// names its fallback explicitly so the cell label carries the whole policy.
var serveSessionPolicies = []serve.ClusterConfig{
	{Dispatch: serve.DispatchSessionAffinity, AffinityBase: serve.DispatchJSQ},
	{Dispatch: serve.DispatchJSQ},
	{Dispatch: serve.DispatchLeastKV},
}

// ServeSessionExperiment quantifies session-affinity dispatch against jsq
// and least-kv on the chat-sessions mix: TTFT saved by routing turns to
// their resident prefix versus the load imbalance the stickiness costs.
// The mixed-bursty control row has no sessions, so affinity degenerates to
// its base policy there — those rows must match the jsq rows exactly.
func (e *Env) ServeSessionExperiment() *Table {
	t := &Table{
		ID: "servesession",
		Title: fmt.Sprintf("Session-affinity dispatch vs load balancing, OPT-1.3B, %d requests, %d replicas, prefix reuse on",
			serveMixRequests, serveSessionReplicas),
		Header: []string{"mix", "dispatch", "served", "TTFT p50", "TTFT p99",
			"e2e p99", "hits", "reused tok", "affinity", "assigned"},
	}
	type cell struct {
		mix    string
		reqs   []serve.Request
		policy serve.ClusterConfig
	}
	var cells []cell
	for _, mix := range []servegen.Mix{servegen.ChatSessions(), servegen.MixedBursty()} {
		reqs, err := mix.Generate(serveMixRequests, e.Seed)
		if err != nil {
			panic("harness: " + err.Error())
		}
		for _, p := range serveSessionPolicies {
			cells = append(cells, cell{mix: mix.Name, reqs: reqs, policy: p})
		}
	}
	reports := runCells(e, cells, func(c cell) []string {
		rep, err := serve.ServeCluster(c.reqs, e.clusterMgrFactory(), serve.ClusterConfig{
			Replicas:     serveSessionReplicas,
			Dispatch:     c.policy.Dispatch,
			AffinityBase: c.policy.AffinityBase,
			Server: serve.ServerConfig{
				MaxBatch:     serveMixMaxBatch,
				PrefixReuse:  true,
				ExactSamples: e.ExactSamples,
			},
		})
		label := string(c.policy.Dispatch)
		if c.policy.AffinityBase != "" {
			label += "/" + string(c.policy.AffinityBase)
		}
		if err != nil {
			return []string{c.mix, label, "OOM", "-", "-", "-", "-", "-", "-", "-"}
		}
		spread := make([]string, len(rep.Assigned))
		for i, n := range rep.Assigned {
			spread[i] = fmt.Sprint(n)
		}
		return []string{c.mix, label, fmt.Sprint(rep.Served),
			ms(rep.TTFT.P50), ms(rep.TTFT.P99), ms(rep.E2E.P99),
			fmt.Sprint(rep.PrefixHits), fmt.Sprint(rep.ReusedTokens),
			fmt.Sprint(rep.AffinityRouted), strings.Join(spread, "/")}
	})
	for _, row := range reports {
		t.AddRow(row...)
	}
	t.AddNote("one request stream per mix, sharded by the dispatch policy; hits/reused tok count the")
	t.AddNote("prefill skipped on a resident session prefix, affinity the requests the sticky probe")
	t.AddNote("routed. chat-sessions: affinity turns misses into hits; mixed-bursty has no sessions,")
	t.AddNote("so its affinity rows reproduce the base policy exactly and affinity stays 0.")
	return t
}
