package harness

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/runner"
)

// renderExperiments renders the given experiments at one parallelism
// setting on a reduced step budget.
func renderExperiments(t *testing.T, parallelism int, ids []string) string {
	t.Helper()
	e := NewEnv()
	e.TotalSteps = 3
	e.MaxSteps = 6
	e.MeasureSteps = 2
	e.Parallelism = parallelism
	var sb strings.Builder
	for _, id := range ids {
		tables := e.RunExperiment(id)
		if len(tables) == 0 {
			t.Fatalf("experiment %q produced no tables", id)
		}
		for _, tbl := range tables {
			tbl.Render(&sb)
		}
	}
	return sb.String()
}

// TestParallelRenderingByteIdentical is the engine's acceptance criterion:
// Parallelism=1 and Parallelism=8 must render byte-identical tables,
// because cells share nothing and results join by index. Table1 covers the
// rig-per-cell micro path, servemix the multi-row serving cells.
func TestParallelRenderingByteIdentical(t *testing.T) {
	ids := []string{"table1", "servemix"}
	seq := renderExperiments(t, 1, ids)
	par := renderExperiments(t, 8, ids)
	if seq != par {
		t.Fatalf("parallel run diverged from sequential:\n--- parallelism 1 ---\n%s\n--- parallelism 8 ---\n%s", seq, par)
	}
	if !testing.Short() {
		// The full registry at a minimal step budget: every refactored
		// runner's cells execute under a forced 8-worker pool (real
		// goroutines whatever GOMAXPROCS is, so -race sees them) and must
		// render exactly what the sequential pass rendered.
		e := NewEnv()
		e.TotalSteps, e.MaxSteps, e.MeasureSteps = 1, 2, 1
		render := func(parallelism int) string {
			e.Parallelism = parallelism
			var sb strings.Builder
			e.RunAll(&sb)
			return sb.String()
		}
		seq, par := render(1), render(8)
		if seq != par {
			t.Fatal("parallel run diverged from sequential over the full experiment registry")
		}
	}
}

// TestPanickingCellSurfacesDeterministically: a cell that panics must not
// wedge the worker pool — every other cell still runs — and the surfaced
// failure is the lowest-index panic wrapped in *runner.PanicError.
func TestPanickingCellSurfacesDeterministically(t *testing.T) {
	e := NewEnv()
	e.Parallelism = 4
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("cell panic did not propagate")
		}
		err, ok := v.(error)
		if !ok {
			t.Fatalf("panic value %T, want error", v)
		}
		var pe *runner.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("panic value %v, want *runner.PanicError", err)
		}
		if pe.Index != 3 {
			t.Fatalf("surfaced cell %d, want lowest panicking index 3", pe.Index)
		}
	}()
	ran := make([]bool, 16)
	runCells(e, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, func(i int) int {
		ran[i] = true
		if i >= 3 && i%2 == 1 {
			panic("cell failure")
		}
		return i
	})
	_ = ran
	t.Fatal("runCells returned despite a panicking cell")
}
