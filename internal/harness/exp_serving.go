package harness

import (
	"fmt"

	"repro/internal/fragstat"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ServingExperiment makes the paper's Table 3 scope argument executable: on
// one inference request stream it compares vLLM-style in-tensor paging with
// pool-level allocation, and shows that GMLake removes the pool
// fragmentation the chunked (ordinary-allocator) policy leaves behind —
// a workload class vLLM's technique does not address.
func (e *Env) ServingExperiment() *Table {
	t := &Table{
		ID:     "serving",
		Title:  "KV-cache policies under continuous batching, OPT-1.3B, 120 requests",
		Header: []string{"policy", "pool", "served", "mean batch", "mgr waste", "pool reserved (GB)", "pool util", "preempt"},
	}
	reqs, err := serve.GenRequests(120, serve.DefaultGenConfig(), e.Seed)
	if err != nil {
		panic("harness: " + err.Error())
	}
	cfg := model.OPT1_3B
	srvCfg := serve.ServerConfig{MaxBatch: 12, ExactSamples: e.ExactSamples}

	// Cells: one serving run per policy × pool; each cell owns its rig and
	// manager and renders its row.
	row := func(policy, pool string, mgr serve.CacheManager, r rig) []string {
		rep, err := serve.Serve(reqs, mgr, srvCfg)
		if err != nil {
			return []string{policy, pool, "OOM", "-", "-", "-", "-", "-"}
		}
		st := r.alloc.Stats()
		return []string{policy, pool,
			fmt.Sprint(rep.Served), fmt.Sprintf("%.1f", rep.MeanBatch),
			pct(rep.MeanWaste), gb(st.PeakReserved), pct(st.Utilization()), fmt.Sprint(rep.Preemptions)}
	}
	jobs := []func() []string{
		func() []string {
			r := e.newRig(AllocCaching)
			return row("contiguous", AllocCaching, serve.NewContiguousKV(r.alloc, cfg, 1024), r)
		},
		func() []string {
			r := e.newRig(AllocCaching)
			mgr, err := serve.NewPagedKV(r.alloc, cfg, 16, 4096)
			if err != nil {
				panic("harness: " + err.Error())
			}
			defer mgr.Close()
			return row("paged (vLLM)", AllocCaching, mgr, r)
		},
	}
	for _, pool := range []string{AllocCaching, AllocGMLake} {
		pool := pool
		jobs = append(jobs, func() []string {
			r := e.newRig(pool)
			return row("chunked", pool, serve.NewChunkedKV(r.alloc, cfg, 64), r)
		})
	}
	for _, cells := range e.tableRows(jobs) {
		t.AddRow(cells...)
	}
	t.AddNote("paged removes in-tensor padding waste but needed a pre-reserved slab; chunked pushes the")
	t.AddNote("problem down to the pool, where variable prompt sizes fragment the caching allocator and")
	t.AddNote("GMLake's stitching absorbs them — the two techniques work at different scopes (Table 3).")
	return t
}

// FragIndexExperiment captures classic fragmentation indices (the
// Gorman–Whitcroft unusable-free-space index the paper cites as FMFI) on
// both allocators mid-training: it shows *why* the caching allocator's
// reserved memory is unusable — free space shattered below the request
// sizes — while GMLake's free blocks stay stitchable.
func (e *Env) FragIndexExperiment() *Table {
	t := &Table{
		ID:    "fragindex",
		Title: "Free-space fragmentation indices mid-training, OPT-13B LRO w4 b16",
		Header: []string{"allocator", "free blocks", "free (GB)", "largest (GB)",
			"ext frag", "unusable@512MB", "unusable@1GB"},
	}
	spec := workload.Spec{
		Model:    model.OPT13B,
		Strategy: workload.StrategyLRO,
		World:    4,
		Batch:    16,
	}
	spec.Seed = e.Seed
	allocNames := []string{AllocCaching, AllocGMLake}
	snaps := runCells(e, allocNames, func(allocName string) fragstat.Snapshot {
		r := e.newRig(allocName)
		tr, err := workload.NewTrainer(spec, r.alloc, r.clock)
		if err != nil {
			panic("harness: " + err.Error())
		}
		if err := tr.Setup(); err != nil {
			panic("harness: fragindex setup OOM")
		}
		for i := 0; i < e.TotalSteps; i++ {
			if err := tr.Step(); err != nil {
				panic("harness: fragindex step OOM")
			}
		}
		// Capture mid-life, before teardown: this is the state a new
		// large allocation would face.
		snap, ok := fragstat.Capture(r.alloc)
		if !ok {
			panic("harness: allocator does not expose free blocks")
		}
		tr.Teardown()
		return snap
	})
	for i, snap := range snaps {
		t.AddRow(allocNames[i],
			fmt.Sprint(len(snap.Free)), gb(snap.FreeBytes()), gb(snap.LargestFree()),
			pct(snap.ExternalFragmentation()),
			pct(snap.UnusableIndex(512*sim.MiB)), pct(snap.UnusableIndex(sim.GiB)))
	}
	t.AddNote("for GMLake the indices overstate waste: inactive pBlocks counted 'unusable' at a size are")
	t.AddNote("still stitchable into that size, which is precisely the mechanism the paper introduces.")
	return t
}
