package harness

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell ("12.3", "95.9%").
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q", s)
	}
	return v
}

func TestZeROExperimentShape(t *testing.T) {
	tbl := NewEnv().ZeROExperiment()
	// Rows are (stage × world) ordered; world-16 ZeRO-3 must hold far less
	// than world-16 ZeRO-0.
	var z0w16, z3w16 float64
	for _, row := range tbl.Rows {
		if row[0] == "ZeRO-0" && row[1] == "16" {
			z0w16 = cell(t, row[5])
		}
		if row[0] == "ZeRO-3" && row[1] == "16" {
			z3w16 = cell(t, row[5])
		}
	}
	if z0w16 == 0 || z3w16 == 0 {
		t.Fatal("missing rows")
	}
	if z3w16*8 > z0w16 {
		t.Fatalf("ZeRO-3/16 %v GB not ~16x below ZeRO-0 %v GB", z3w16, z0w16)
	}
}

func TestTopologyExperimentShape(t *testing.T) {
	tbl := NewEnv().TopologyExperiment()
	if len(tbl.Rows) < 5 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// The single-GPU row must not fit; the 16-GPU row must.
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if first[6] != "false" {
		t.Fatalf("20B on one GPU reported as fitting: %v", first)
	}
	if last[6] != "true" {
		t.Fatalf("16-GPU 3D plan does not fit: %v", last)
	}
}

func TestRecomputeExperimentShape(t *testing.T) {
	tbl := NewEnv().RecomputeExperiment()
	var storeAll, sqrtN float64
	for _, row := range tbl.Rows {
		switch row[0] {
		case "store-all":
			storeAll = cell(t, row[2])
		case "sqrt(N)":
			sqrtN = cell(t, row[2])
		}
	}
	if sqrtN*3 > storeAll {
		t.Fatalf("sqrtN peak %v not well below store-all %v", sqrtN, storeAll)
	}
}

func TestOffloadExperimentShape(t *testing.T) {
	tbl := NewEnv().OffloadExperiment()
	for _, row := range tbl.Rows {
		speed := strings.TrimSuffix(row[4], "x")
		if v := cell(t, speed); v < 1.0 {
			t.Fatalf("pipeline slower than serial: %v", row)
		}
	}
}

func TestStreamsExperimentShape(t *testing.T) {
	tbl := NewEnv().StreamsExperiment()
	byKey := map[string]float64{}
	for _, row := range tbl.Rows {
		byKey[row[0]+"/"+row[1]] = cell(t, row[2])
	}
	for _, alloc := range []string{"caching", "gmlake"} {
		if byKey[alloc+"/true"] <= byKey[alloc+"/false"] {
			t.Fatalf("%s: sharing did not inflate reserved (%v vs %v)",
				alloc, byKey[alloc+"/true"], byKey[alloc+"/false"])
		}
	}
}

func TestServingExperimentShape(t *testing.T) {
	tbl := NewEnv().ServingExperiment()
	var chunkCaching, chunkGMLake float64 // pool utilization
	var contigWaste, pagedWaste float64
	for _, row := range tbl.Rows {
		switch {
		case row[0] == "chunked" && row[1] == "caching":
			chunkCaching = cell(t, row[6])
		case row[0] == "chunked" && row[1] == "gmlake":
			chunkGMLake = cell(t, row[6])
		case row[0] == "contiguous":
			contigWaste = cell(t, row[4])
		case strings.HasPrefix(row[0], "paged"):
			pagedWaste = cell(t, row[4])
		}
	}
	if chunkGMLake <= chunkCaching {
		t.Fatalf("GMLake pool utilization %v%% not above caching %v%%", chunkGMLake, chunkCaching)
	}
	if contigWaste < 5*pagedWaste {
		t.Fatalf("contiguous waste %v%% not far above paged %v%%", contigWaste, pagedWaste)
	}
	for _, row := range tbl.Rows {
		if row[2] != "120" {
			t.Fatalf("policy %s/%s served %s of 120", row[0], row[1], row[2])
		}
	}
}

func TestFragIndexExperimentShape(t *testing.T) {
	e := NewEnv()
	e.TotalSteps = 6 // keep the test quick; indices are visible early
	tbl := e.FragIndexExperiment()
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if v := cell(t, row[4]); v < 0 || v > 100 {
			t.Fatalf("ext frag out of range: %v", row)
		}
		// unusable@1GB ≥ unusable@512MB (monotone in request size).
		if cell(t, row[6]) < cell(t, row[5]) {
			t.Fatalf("unusable index not monotone: %v", row)
		}
	}
}

func TestPipelineExperimentShape(t *testing.T) {
	e := NewEnv()
	e.TotalSteps = 10
	tbl := e.PipelineExperiment()
	util := map[string]float64{}
	reserved := map[string]float64{}
	for _, row := range tbl.Rows {
		key := row[0] + "/" + row[1]
		reserved[key] = cell(t, row[2])
		util[key] = cell(t, row[3])
		if row[4] != "0" {
			t.Fatalf("unexpected OOM: %v", row)
		}
	}
	for _, sched := range []string{"GPipe", "1F1B"} {
		if util[sched+"/gmlake"] < util[sched+"/caching"] {
			t.Fatalf("%s: GMLake util below caching", sched)
		}
		if reserved[sched+"/gmlake"] > reserved[sched+"/caching"] {
			t.Fatalf("%s: GMLake reserved above caching", sched)
		}
	}
	// 1F1B must hold less than GPipe on the same allocator.
	if reserved["1F1B/caching"] >= reserved["GPipe/caching"] {
		t.Fatal("1F1B did not reduce reserved memory vs GPipe")
	}
}
