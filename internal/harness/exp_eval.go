package harness

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// figure10Models fixes the per-model evaluation points of Figure 10: a
// common batch size per model chosen so that every strategy combination
// (including plain N, which keeps full activations) fits the 80 GB device.
// GPT-NeoX-20B's full fine-tuning state exceeds 4x80 GB under our sizing, so
// its panel runs on 8 GPUs, as noted in EXPERIMENTS.md.
var figure10Models = []struct {
	model model.Config
	world int
	batch int
}{
	{model.OPT13B, 4, 8},
	{model.Vicuna13B, 4, 8},
	{model.GPTNeoX20B, 8, 6},
}

// comparePair is one cell result: the same spec on both allocators.
type comparePair struct{ base, gml RunResult }

// compareCells runs e.Compare over every spec as parallel cells, joined in
// spec order.
func (e *Env) compareCells(specs []workload.Spec) []comparePair {
	return runCells(e, specs, func(spec workload.Spec) comparePair {
		base, gml := e.Compare(spec, RunOptions{})
		return comparePair{base, gml}
	})
}

// Figure10 reproduces the strategy-scalability comparison: reserved memory
// and utilization for N/R/LR/RO/LRO with and without GMLake, per model.
func (e *Env) Figure10() []*Table {
	// Cells: model × strategy, flattened so all panels sweep concurrently.
	var specs []workload.Spec
	for _, mc := range figure10Models {
		for _, s := range figureStrategies {
			specs = append(specs, workload.Spec{Model: mc.model, Strategy: s.strategy, World: mc.world, Batch: mc.batch})
		}
	}
	pairs := e.compareCells(specs)

	var tables []*Table
	for i, mc := range figure10Models {
		t := &Table{
			ID: fmt.Sprintf("figure10%c", 'a'+i),
			Title: fmt.Sprintf("Strategy scalability: %s, %d GPUs, batch %d",
				mc.model.Name, mc.world, mc.batch),
			Header: []string{"Strategy",
				"RM w/o GML(GB)", "RM w/ GML(GB)",
				"UR w/o GML", "UR w/ GML", "Saved(GB)"},
		}
		for j, s := range figureStrategies {
			p := pairs[i*len(figureStrategies)+j]
			t.AddRow(s.label,
				gbOrOOM(p.base), gbOrOOM(p.gml),
				pctOrOOM(p.base), pctOrOOM(p.gml),
				savedGB(p.base, p.gml))
		}
		t.AddNote("paper: GMLake lifts utilization by ~5-24%% and cuts reserved memory by ~10GB (up to 17GB)")
		tables = append(tables, t)
	}
	return tables
}

// figure11Models fixes Figure 11's scale-out runs (LR strategy, DeepSpeed).
var figure11Models = []struct {
	model model.Config
	batch int
}{
	{model.OPT13B, 24},
	{model.Vicuna13B, 24},
	{model.GPTNeoX20B, 12},
}

// Figure11 reproduces GPU scale-out: utilization/reserved memory (panels
// a-c) and throughput (panels d-f) for 1..16 GPUs under LR.
func (e *Env) Figure11() []*Table {
	// Cells: model × world, flattened.
	worlds := []int{1, 2, 4, 8, 16}
	var specs []workload.Spec
	for _, mc := range figure11Models {
		for _, w := range worlds {
			specs = append(specs, workload.Spec{Model: mc.model, Strategy: workload.StrategyLR, World: w, Batch: mc.batch})
		}
	}
	pairs := e.compareCells(specs)

	var tables []*Table
	for i, mc := range figure11Models {
		mem := &Table{
			ID:    fmt.Sprintf("figure11%c", 'a'+i),
			Title: fmt.Sprintf("Scale-out memory: %s, LR, batch %d/GPU", mc.model.Name, mc.batch),
			Header: []string{"GPUs",
				"RM w/o GML(GB)", "RM w/ GML(GB)",
				"UR w/o GML", "UR w/ GML"},
		}
		thr := &Table{
			ID:     fmt.Sprintf("figure11%c", 'd'+i),
			Title:  fmt.Sprintf("Scale-out throughput: %s, LR (samples/s)", mc.model.Name),
			Header: []string{"GPUs", "Thru w/o GML", "Thru w/ GML"},
		}
		for j, w := range worlds {
			p := pairs[i*len(worlds)+j]
			mem.AddRow(fmt.Sprintf("%d", w),
				gbOrOOM(p.base), gbOrOOM(p.gml), pctOrOOM(p.base), pctOrOOM(p.gml))
			thr.AddRow(fmt.Sprintf("%d", w),
				thrOrOOM(p.base), thrOrOOM(p.gml))
		}
		mem.AddNote("paper: baseline utilization decays with scale-out; GMLake holds ~90%%+")
		thr.AddNote("paper: GMLake sustains throughput comparable to the baseline at every scale")
		tables = append(tables, mem, thr)
	}
	return tables
}

// Figure12 reproduces the platform comparison: FSDP-GLM-10B, DeepSpeed-
// OPT-13B and Colossal-AI-GPT-2 under LR on 4 GPUs.
func (e *Env) Figure12() *Table {
	t := &Table{
		ID:    "figure12",
		Title: "Platform scalability (LR, 4 GPUs)",
		Header: []string{"Platform/Model",
			"RM w/o GML(GB)", "RM w/ GML(GB)",
			"UR w/o GML", "UR w/ GML", "Saved(GB)"},
	}
	cases := []struct {
		label    string
		platform workload.Platform
		model    model.Config
		batch    int
	}{
		{"FSDP-GLM-10B", workload.FSDP, model.GLM10B, 24},
		{"DS-OPT-13B", workload.DeepSpeed, model.OPT13B, 24},
		{"CAI-GPT-2", workload.ColossalAI, model.GPT2, 48},
	}
	var specs []workload.Spec
	for _, c := range cases {
		specs = append(specs, workload.Spec{Model: c.model, Strategy: workload.StrategyLR,
			Platform: c.platform, World: 4, Batch: c.batch})
	}
	for i, p := range e.compareCells(specs) {
		t.AddRow(cases[i].label, gbOrOOM(p.base), gbOrOOM(p.gml),
			pctOrOOM(p.base), pctOrOOM(p.gml), savedGB(p.base, p.gml))
	}
	t.AddNote("paper: reductions of ~9-33%% in fragmentation and 7-25GB reserved memory across platforms")
	return t
}

// figure13Sweeps fixes the batch sweeps of Figure 13 (LR + ZeRO-3, 4 GPUs).
var figure13Sweeps = []struct {
	model   model.Config
	batches []int
}{
	{model.OPT1_3B, []int{1, 32, 64, 128, 192, 224, 249}},
	{model.OPT13B, []int{1, 20, 40, 60, 80, 100, 120}},
	{model.GPTNeoX20B, []int{1, 12, 24, 36, 48, 60, 72, 84}},
}

// Figure13 reproduces the end-to-end batch sweeps: memory (panels a-c) and
// throughput (panels d-f), including the OOM frontier where the baseline
// dies but GMLake still runs.
func (e *Env) Figure13() []*Table {
	// Cells: every (model, batch) point of every sweep, flattened; the OOM
	// frontier points run concurrently with the surviving ones.
	var specs []workload.Spec
	for _, sw := range figure13Sweeps {
		for _, b := range sw.batches {
			specs = append(specs, workload.Spec{Model: sw.model, Strategy: workload.StrategyLR, World: 4, Batch: b})
		}
	}
	pairs := e.compareCells(specs)

	var tables []*Table
	next := 0
	for i, sw := range figure13Sweeps {
		mem := &Table{
			ID:    fmt.Sprintf("figure13%c", 'a'+i),
			Title: fmt.Sprintf("Batch sweep memory: %s, LR, 4 GPUs", sw.model.Name),
			Header: []string{"Batch",
				"RM w/o GML(GB)", "RM w/ GML(GB)",
				"UR w/o GML", "UR w/ GML"},
		}
		thr := &Table{
			ID:     fmt.Sprintf("figure13%c", 'd'+i),
			Title:  fmt.Sprintf("Batch sweep throughput: %s, LR, 4 GPUs (samples/s)", sw.model.Name),
			Header: []string{"Batch", "Thru w/o GML", "Thru w/ GML"},
		}
		for _, b := range sw.batches {
			p := pairs[next]
			next++
			mem.AddRow(fmt.Sprintf("%d", b),
				gbOrOOM(p.base), gbOrOOM(p.gml), pctOrOOM(p.base), pctOrOOM(p.gml))
			thr.AddRow(fmt.Sprintf("%d", b), thrOrOOM(p.base), thrOrOOM(p.gml))
		}
		mem.AddNote("paper: baseline hits OOM at the largest batches while GMLake keeps running with >95%% utilization")
		tables = append(tables, mem, thr)
	}
	return tables
}

// Figure14 reproduces the memory-trace comparison on GPT-NeoX-20B at the
// batch size where the baseline OOMs (72 in the paper; 84 under our memory
// sizing): per-phase active and reserved timelines for both allocators,
// plus the convergence observation.
func (e *Env) Figure14() (*Table, map[string]*metrics.Timeline) {
	spec := workload.Spec{Model: model.GPTNeoX20B, Strategy: workload.StrategyLR, World: 4, Batch: 84}
	runs := runCells(e, []string{AllocCaching, AllocGMLake}, func(name string) RunResult {
		return e.RunWorkload(spec, name, RunOptions{Timeline: true})
	})
	base, gml := runs[0], runs[1]

	t := &Table{
		ID:     "figure14",
		Title:  "Memory trace summary (GPT-NeoX-20B, LR, batch 84, 4 GPUs)",
		Header: []string{"Allocator", "Completed steps", "OOM", "PeakActive(GB)", "PeakReserved(GB)", "Thru(samples/s)"},
	}
	for _, r := range []RunResult{base, gml} {
		t.AddRow(r.Allocator, fmt.Sprintf("%d", r.Steps), fmt.Sprintf("%v", r.OOM),
			gb(r.PeakActive), gb(r.PeakReserved), thrOrOOM(r))
	}
	t.AddNote("paper: PyTorch dies with OOM at ~200s while GMLake runs; reserved ~= active for GMLake; GMLake reaches steady state after ~4 iterations")
	return t, map[string]*metrics.Timeline{
		AllocCaching: base.Timeline,
		AllocGMLake:  gml.Timeline,
	}
}

// headlineGrid enumerates the paper's §5 aggregate: 76 workloads over 8
// model/platform combinations. We sweep model x strategy x world x batch
// points that fit the device, pairing every run on both allocators.
func headlineGrid() []workload.Spec {
	var specs []workload.Spec
	type mc struct {
		m       model.Config
		world   int
		batches []int
	}
	// 19 model/world/batch points x 4 strategies = 76 workloads, matching
	// the paper's count. The largest batches sit at the OOM frontier.
	cases := []mc{
		{model.OPT1_3B, 4, []int{16, 64, 128, 249}},
		{model.GPT2, 4, []int{16, 48, 96}},
		{model.GLM10B, 4, []int{8, 24, 48}},
		{model.OPT13B, 4, []int{8, 24, 100}},
		{model.Vicuna13B, 4, []int{8, 24, 48}},
		{model.GPTNeoX20B, 8, []int{4, 12, 24}},
	}
	strategies := []workload.Strategy{
		workload.StrategyR, workload.StrategyLR,
		workload.StrategyRO, workload.StrategyLRO,
	}
	for _, c := range cases {
		for _, s := range strategies {
			for _, b := range c.batches {
				specs = append(specs, workload.Spec{
					Model: c.m, Strategy: s, World: c.world, Batch: b,
				})
			}
		}
	}
	return specs
}

// Headline reproduces the paper's summary numbers: average and maximum
// reserved-memory savings and fragmentation reduction across the workload
// grid.
func (e *Env) Headline() *Table {
	specs := headlineGrid()
	var (
		bases, gmls  []metrics.Run
		sumSaved     float64
		maxSaved     float64
		sumFragDrop  float64
		maxFragDrop  float64
		completed    int
		baselineOOMs int
	)
	// The 76 workload cells sweep concurrently; the aggregation below folds
	// their results in spec order, so the summary numbers are independent
	// of scheduling.
	for _, p := range e.compareCells(specs) {
		base, gml := p.base, p.gml
		bases = append(bases, base.Run)
		gmls = append(gmls, gml.Run)
		if base.OOM && !gml.OOM {
			baselineOOMs++
			continue
		}
		if base.OOM || gml.OOM {
			continue
		}
		completed++
		saved := float64(base.PeakReserved-gml.PeakReserved) / float64(1<<30)
		fragDrop := base.Fragmentation() - gml.Fragmentation()
		sumSaved += saved
		sumFragDrop += fragDrop
		if saved > maxSaved {
			maxSaved = saved
		}
		if fragDrop > maxFragDrop {
			maxFragDrop = fragDrop
		}
	}
	t := &Table{
		ID:     "headline",
		Title:  fmt.Sprintf("Aggregate over %d workloads", len(specs)),
		Header: []string{"Metric", "Measured", "Paper"},
	}
	if completed > 0 {
		t.AddRow("Avg reserved saving (GB)", fmt.Sprintf("%.1f", sumSaved/float64(completed)), "9.2")
		t.AddRow("Max reserved saving (GB)", fmt.Sprintf("%.1f", maxSaved), "25")
		t.AddRow("Avg fragmentation reduction", pct(sumFragDrop/float64(completed)), "15%")
		t.AddRow("Max fragmentation reduction", pct(maxFragDrop), "33%")
	}
	t.AddRow("Mem reduction ratio", pct(metrics.MemReductionRatio(bases, gmls)), "-")
	t.AddRow("Workloads baseline-OOM only", fmt.Sprintf("%d", baselineOOMs), ">0")
	return t
}

func gbOrOOM(r RunResult) string {
	if r.OOM {
		return "OOM"
	}
	return gb(r.PeakReserved)
}

func pctOrOOM(r RunResult) string {
	if r.OOM {
		return "OOM"
	}
	return pct(r.Utilization())
}

func thrOrOOM(r RunResult) string {
	if r.OOM {
		return "OOM"
	}
	return fmt.Sprintf("%.1f", r.Throughput())
}

func savedGB(base, gml RunResult) string {
	if base.OOM || gml.OOM {
		return "-"
	}
	return gb(base.PeakReserved - gml.PeakReserved)
}
