package harness

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

// Serving-mix testbed shape. The device is deliberately much smaller than
// the training rigs: per-SLO-class latency only separates when the KV cache
// is the bottleneck, so the pool is sized to a handful of concurrent
// sequences and the paged slab to the same token budget.
const (
	serveMixCapacity    = int64(3) * sim.GiB / 2
	serveMixRequests    = 120
	serveMixMaxBatch    = 24
	serveMixMaxTokens   = 1024 // contiguous pad-to-max budget
	serveMixBlockTokens = 16
	serveMixSlabBlocks  = 448 // 7168 tokens ≈ 1.3 GB of OPT-1.3B KV
	serveMixChunkTokens = 64
)

// serveMixPolicy is one compared KV-cache policy: a manager constructor
// over a fresh rig plus the pool allocator it runs on.
type serveMixPolicy struct {
	policy, pool string
	make         func(r rig) serve.CacheManager
}

// serveMixPolicies builds the compared KV-cache managers over a fresh rig
// each; the chunked policy runs once per pool allocator to expose the
// pool-level fragmentation GMLake removes.
func (e *Env) serveMixPolicies() []serveMixPolicy {
	cfg := model.OPT1_3B
	return []serveMixPolicy{
		{"contiguous", AllocCaching, func(r rig) serve.CacheManager {
			return serve.NewContiguousKV(r.alloc, cfg, serveMixMaxTokens)
		}},
		{"paged (vLLM)", AllocCaching, func(r rig) serve.CacheManager {
			mgr, err := serve.NewPagedKV(r.alloc, cfg, serveMixBlockTokens, serveMixSlabBlocks)
			if err != nil {
				panic("harness: " + err.Error())
			}
			return mgr
		}},
		{"chunked", AllocCaching, func(r rig) serve.CacheManager {
			return serve.NewChunkedKV(r.alloc, cfg, serveMixChunkTokens)
		}},
		{"chunked", AllocGMLake, func(r rig) serve.CacheManager {
			return serve.NewChunkedKV(r.alloc, cfg, serveMixChunkTokens)
		}},
	}
}

// ServeMixExperiment serves three heterogeneous multi-tenant mixes
// (ServeGen-style client decomposition: chat-heavy, batch-heavy, mixed
// bursty) on every KV-cache policy and reports the per-SLO-class view:
// TTFT and end-to-end latency percentiles, preemptions and KV-cache
// occupancy per client class. The same seed replays identical request
// streams across policies and runs, so rows are directly comparable.
func (e *Env) ServeMixExperiment() *Table {
	t := &Table{
		ID: "servemix",
		Title: fmt.Sprintf("Per-SLO-class serving under multi-tenant mixes, OPT-1.3B, %d requests, %s GB device",
			serveMixRequests, gb(serveMixCapacity)),
		Header: []string{"mix", "policy", "pool", "class", "SLO",
			"served", "TTFT p50", "TTFT p95", "TTFT p99", "e2e p50", "e2e p99", "preempt", "KV share"},
	}
	srvCfg := serve.ServerConfig{MaxBatch: serveMixMaxBatch, ExactSamples: e.ExactSamples}

	// Cells: one continuous-batching run per mix × policy. The request
	// streams are generated up front (once per mix, shared read-only) so
	// every cell replays the identical stream; each cell builds its own
	// rig and cache manager.
	type cell struct {
		mix    servegen.Mix
		reqs   []serve.Request
		policy serveMixPolicy
	}
	var cells []cell
	for _, mix := range servegen.Mixes() {
		reqs, err := mix.Generate(serveMixRequests, e.Seed)
		if err != nil {
			panic("harness: " + err.Error())
		}
		for _, p := range e.serveMixPolicies() {
			cells = append(cells, cell{mix: mix, reqs: reqs, policy: p})
		}
	}
	reports := runCells(e, cells, func(c cell) [][]string {
		r := e.newServeRig(c.policy.pool)
		mgr := c.policy.make(r)
		rep, err := serve.Serve(c.reqs, mgr, srvCfg)
		if err != nil {
			return [][]string{{c.mix.Name, c.policy.policy, c.policy.pool,
				"ALL", "-", "OOM", "-", "-", "-", "-", "-", "-", "-"}}
		}
		var rows [][]string
		for _, cr := range rep.Classes {
			rows = append(rows, []string{c.mix.Name, c.policy.policy, c.policy.pool,
				cr.Class, cr.SLO, fmt.Sprint(cr.Served),
				ms(cr.TTFT.P50), ms(cr.TTFT.P95), ms(cr.TTFT.P99),
				ms(cr.E2E.P50), ms(cr.E2E.P99),
				fmt.Sprint(cr.Preemptions), pct(cr.KVShare)})
		}
		return rows
	})
	for _, rows := range reports {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.AddNote("same seed => identical request streams for every policy; TTFT/e2e are virtual-clock ms.")
	t.AddNote("batch classes absorb the preemptions and the queueing tail; interactive classes keep")
	t.AddNote("low TTFT because admission and eviction are SLO-priority-aware.")
	return t
}

// newServeRig is newRig on the serving testbed's smaller device. It takes
// the capacity as an argument rather than temporarily mutating e.Capacity:
// rigs are built inside parallel experiment cells, so Env must stay
// read-only while cells run.
func (e *Env) newServeRig(name string) rig {
	return e.newRigCap(name, serveMixCapacity)
}

// ms renders a duration as whole milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%d", d.Milliseconds())
}
