package harness

import "io"

// Experiment names runnable via RunExperiment.
var Experiments = []string{
	"table1", "figure3", "figure4", "figure5", "figure6",
	"figure10", "figure11", "figure12", "figure13", "figure14",
	"headline", "extended", "ablations", "cluster",
	"zero", "topology", "recompute", "offload", "streams",
	"serving", "servemix", "servecluster", "serveelastic", "servetrace",
	"servefault", "servesession",
	"fragindex", "pipefrag",
}

// RunExperiment executes one experiment by id and returns its tables.
func (e *Env) RunExperiment(id string) []*Table {
	switch id {
	case "table1":
		return []*Table{e.Table1()}
	case "figure3":
		return []*Table{e.Figure3()}
	case "figure4":
		return []*Table{e.Figure4()}
	case "figure5":
		return []*Table{e.Figure5()}
	case "figure6":
		return []*Table{e.Figure6()}
	case "figure10":
		return e.Figure10()
	case "figure11":
		return e.Figure11()
	case "figure12":
		return []*Table{e.Figure12()}
	case "figure13":
		return e.Figure13()
	case "figure14":
		t, _ := e.Figure14()
		return []*Table{t}
	case "headline":
		return []*Table{e.Headline()}
	case "extended":
		return []*Table{e.Extended()}
	case "ablations":
		return []*Table{e.Ablations()}
	case "cluster":
		return []*Table{e.ClusterExperiment()}
	case "zero":
		return []*Table{e.ZeROExperiment()}
	case "topology":
		return []*Table{e.TopologyExperiment()}
	case "recompute":
		return []*Table{e.RecomputeExperiment()}
	case "offload":
		return []*Table{e.OffloadExperiment()}
	case "streams":
		return []*Table{e.StreamsExperiment()}
	case "serving":
		return []*Table{e.ServingExperiment()}
	case "servemix":
		return []*Table{e.ServeMixExperiment()}
	case "servecluster":
		return e.ServeClusterExperiment()
	case "serveelastic":
		return e.ServeElasticExperiment()
	case "servefault":
		return e.ServeFaultExperiment()
	case "servesession":
		return []*Table{e.ServeSessionExperiment()}
	case "servetrace":
		ts, err := e.ServeTraceExperiment()
		if err != nil {
			// Trace paths come from user configuration: surface the load
			// error as a rendered note rather than panicking the suite.
			t := &Table{ID: "servetrace", Title: "request-trace replay and calibration"}
			t.AddNote("error: %v", err)
			return []*Table{t}
		}
		return ts
	case "fragindex":
		return []*Table{e.FragIndexExperiment()}
	case "pipefrag":
		return []*Table{e.PipelineExperiment()}
	default:
		return nil
	}
}

// RunAll executes every experiment, rendering each table to w as it
// completes.
func (e *Env) RunAll(w io.Writer) {
	for _, id := range Experiments {
		for _, t := range e.RunExperiment(id) {
			t.Render(w)
		}
	}
}
