package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/servegen"
)

// Serving-cluster grid. Replica counts are swept per mix and dispatch
// policy; every replica is a full serving testbed (its own device, pool
// allocator and KV manager) behind the cluster admission queue.
var (
	serveClusterReplicas = []int{1, 2, 4}
	serveClusterAgings   = []time.Duration{0, 250 * time.Millisecond, time.Second}
)

// Aging-table testbed: the mixed-bursty rate is multiplied until the
// interactive classes saturate admission of a deliberately small per-replica
// batch — the regime where the batch class starves without aging — and the
// stream is long enough that every swept aging window is much shorter than
// the arrival span (a window wider than the whole run cannot reorder it).
const (
	serveClusterOverloadRate = 8
	serveClusterAgingBatch   = 4
	serveClusterAgingReqs    = 2 * serveMixRequests
)

// clusterMgrFactory builds per-replica chunked KV managers, each over its
// own fresh serving rig — replicas share nothing, which is what makes the
// cluster cells (and the replicas inside one cell) deterministic.
func (e *Env) clusterMgrFactory() func(int) serve.CacheManager {
	return func(int) serve.CacheManager {
		r := e.newServeRig(AllocCaching)
		return serve.NewChunkedKV(r.alloc, model.OPT1_3B, serveMixChunkTokens)
	}
}

// ServeClusterExperiment shards the multi-tenant mixes over a multi-replica
// serving cluster and reports the per-SLO-class view per (mix, replica
// count, dispatch policy) cell, plus an aging table showing how priority
// aging bounds batch-class starvation under sustained interactive overload.
// Cells run on the parallel experiment engine; each owns its replicas' rigs,
// so tables are byte-identical at any parallelism.
func (e *Env) ServeClusterExperiment() []*Table {
	return []*Table{e.serveClusterScaling(), e.serveClusterAging()}
}

// serveClusterScaling is the mixes × replica counts × dispatch policies
// grid. The cluster-level percentiles are computed from the union of the
// replicas' raw per-request samples, so rows are comparable across replica
// counts.
func (e *Env) serveClusterScaling() *Table {
	t := &Table{
		ID: "servecluster",
		Title: fmt.Sprintf("Multi-replica serving cluster, OPT-1.3B, %d requests, %s GB per replica",
			serveMixRequests, gb(serveMixCapacity)),
		Header: []string{"mix", "replicas", "dispatch", "class", "SLO", "served",
			"TTFT p50", "TTFT p99", "e2e p50", "e2e p99", "preempt", "assigned"},
	}
	type cell struct {
		mix      servegen.Mix
		reqs     []serve.Request
		replicas int
		dispatch serve.DispatchPolicy
	}
	var cells []cell
	for _, mix := range servegen.Mixes() {
		reqs, err := mix.Generate(serveMixRequests, e.Seed)
		if err != nil {
			panic("harness: " + err.Error())
		}
		for _, n := range serveClusterReplicas {
			for _, d := range serve.DispatchPolicies() {
				cells = append(cells, cell{mix: mix, reqs: reqs, replicas: n, dispatch: d})
			}
		}
	}
	reports := runCells(e, cells, func(c cell) [][]string {
		rep, err := serve.ServeCluster(c.reqs, e.clusterMgrFactory(), serve.ClusterConfig{
			Replicas: c.replicas,
			Dispatch: c.dispatch,
			Server:   serve.ServerConfig{MaxBatch: serveMixMaxBatch, ExactSamples: e.ExactSamples},
		})
		key := []string{c.mix.Name, fmt.Sprint(c.replicas), string(c.dispatch)}
		if err != nil {
			return [][]string{append(key, "ALL", "-", "OOM", "-", "-", "-", "-", "-", "-")}
		}
		var rows [][]string
		for _, cr := range rep.Classes {
			rows = append(rows, append(append([]string{}, key...),
				cr.Class, cr.SLO, fmt.Sprint(cr.Served),
				ms(cr.TTFT.P50), ms(cr.TTFT.P99), ms(cr.E2E.P50), ms(cr.E2E.P99),
				fmt.Sprint(cr.Preemptions), "-"))
		}
		spread := make([]string, len(rep.Assigned))
		for i, n := range rep.Assigned {
			spread[i] = fmt.Sprint(n)
		}
		rows = append(rows, append(append([]string{}, key...),
			"ALL", "-", fmt.Sprint(rep.Served),
			ms(rep.TTFT.P50), ms(rep.TTFT.P99), ms(rep.E2E.P50), ms(rep.E2E.P99),
			fmt.Sprint(rep.Preemptions), strings.Join(spread, "/")))
		return rows
	})
	for _, rows := range reports {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.AddNote("one request stream per mix, sharded by the dispatch policy; cluster percentiles merge the")
	t.AddNote("replicas' raw samples (never averaged percentiles). ALL/assigned shows the per-replica")
	t.AddNote("request spread; jsq and least-kv adapt it to load where round-robin cannot.")
	return t
}

// serveClusterAging overloads a 2-replica cluster with the mixed-bursty mix
// at several priority-aging rates: without aging the batch class waits out
// the whole run, with aging its effective priority grows with queue wait
// until it outranks fresh interactive arrivals.
func (e *Env) serveClusterAging() *Table {
	mix := servegen.MixedBursty()
	t := &Table{
		ID: "servecluster-aging",
		Title: fmt.Sprintf("Priority aging under %dx interactive overload, mixed-bursty, 2 replicas, jsq",
			serveClusterOverloadRate),
		Header: []string{"aging", "class", "SLO", "served",
			"TTFT p50", "TTFT p99", "e2e p50", "e2e p99", "preempt"},
	}
	reqs, err := mix.WithRate(mix.Rate*serveClusterOverloadRate).Generate(serveClusterAgingReqs, e.Seed)
	if err != nil {
		panic("harness: " + err.Error())
	}
	reports := runCells(e, serveClusterAgings, func(aging time.Duration) [][]string {
		rep, err := serve.ServeCluster(reqs, e.clusterMgrFactory(), serve.ClusterConfig{
			Replicas: 2,
			Dispatch: serve.DispatchJSQ,
			Server:   serve.ServerConfig{MaxBatch: serveClusterAgingBatch, Aging: aging, ExactSamples: e.ExactSamples},
		})
		label := "off"
		if aging > 0 {
			label = aging.String()
		}
		if err != nil {
			return [][]string{{label, "ALL", "-", "OOM", "-", "-", "-", "-", "-"}}
		}
		var rows [][]string
		for _, cr := range rep.Classes {
			rows = append(rows, []string{label, cr.Class, cr.SLO, fmt.Sprint(cr.Served),
				ms(cr.TTFT.P50), ms(cr.TTFT.P99), ms(cr.E2E.P50), ms(cr.E2E.P99),
				fmt.Sprint(cr.Preemptions)})
		}
		return rows
	})
	for _, rows := range reports {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.AddNote("aging is the per-priority-level wait: with it on, a starved batch request's effective")
	t.AddNote("priority rises until fresh interactive arrivals no longer cut ahead, pulling the batch")
	t.AddNote("queueing tail down at the interactive classes' expense — the fairness dial is the rate.")
	return t
}
