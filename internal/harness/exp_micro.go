package harness

import (
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table1 reproduces the paper's Table 1: the execution-time breakdown of
// allocating 2 GB through the VMM API with 2 MB / 128 MB / 1024 MB physical
// chunks, normalized to a cudaMalloc of the same size.
func (e *Env) Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "VMM API execution time breakdown, normalized to cuMalloc (2 GB allocation)",
		Header: []string{"Chunk Size", "cuMemReserve", "cuMemCreate", "cuMemMap", "cuMemSetAccess", "Total"},
	}
	const block = 2 * sim.GiB
	chunks := []int64{2 * sim.MiB, 128 * sim.MiB, 1024 * sim.MiB}
	breakdowns := runCells(e, chunks, func(chunk int64) vmmBreakdown {
		return e.vmmBreakdown(block, chunk)
	})
	for i, b := range breakdowns {
		t.AddRow(sim.FormatBytes(chunks[i]),
			fmt.Sprintf("%.3f", b.reserve), fmt.Sprintf("%.2f", b.create),
			fmt.Sprintf("%.2f", b.mapped), fmt.Sprintf("%.2f", b.access),
			fmt.Sprintf("%.1f", b.total()))
	}
	t.AddNote("paper totals: 115.4 (2MB), 9.1 (128MB), 1.5 (1024MB)")
	return t
}

type vmmBreakdown struct{ reserve, create, mapped, access float64 }

func (b vmmBreakdown) total() float64 { return b.reserve + b.create + b.mapped + b.access }

// vmmBreakdown measures each VMM phase for allocating block bytes in chunks,
// normalized to cudaMalloc(block).
func (e *Env) vmmBreakdown(block, chunk int64) vmmBreakdown {
	r := e.newRig(AllocNative)
	d := r.driver

	sw := sim.StartStopwatch(r.clock)
	ptr, err := d.Malloc(block)
	if err != nil {
		panic("harness: table1 malloc: " + err.Error())
	}
	base := float64(sw.Elapsed())
	if err := d.Free(ptr); err != nil {
		panic(err.Error())
	}

	phase := func(f func()) float64 {
		sw := sim.StartStopwatch(r.clock)
		f()
		return float64(sw.Elapsed()) / base
	}

	var va cuda.DevicePtr
	reserve := phase(func() {
		va, err = d.MemAddressReserve(block)
		if err != nil {
			panic(err.Error())
		}
	})
	n := block / chunk
	handles := make([]cuda.MemHandle, n)
	create := phase(func() {
		for i := range handles {
			h, err := d.MemCreate(chunk)
			if err != nil {
				panic(err.Error())
			}
			handles[i] = h
		}
	})
	mapped := phase(func() {
		for i, h := range handles {
			if err := d.MemMap(va+cuda.DevicePtr(int64(i)*chunk), h); err != nil {
				panic(err.Error())
			}
		}
	})
	access := phase(func() {
		if err := d.MemSetAccess(va, block); err != nil {
			panic(err.Error())
		}
	})
	return vmmBreakdown{reserve: reserve, create: create, mapped: mapped, access: access}
}

// Figure6 reproduces the allocation-latency sweep: native allocator vs the
// VMM allocator at chunk sizes 2 MB .. 1 GB, for total block sizes 512 MB,
// 1 GB and 2 GB.
func (e *Env) Figure6() *Table {
	t := &Table{
		ID:     "figure6",
		Title:  "Allocation latency (ms): native vs virtual memory allocator by chunk size",
		Header: []string{"ChunkSize", "512MB block", "1GB block", "2GB block"},
	}
	blocks := []int64{512 * sim.MiB, 1 * sim.GiB, 2 * sim.GiB}

	// Cells: the native row plus one row per chunk size; every row builds
	// its rigs privately.
	jobs := []func() []string{func() []string {
		nat := make([]string, 0, len(blocks))
		for _, blk := range blocks {
			r := e.newRig(AllocNative)
			sw := sim.StartStopwatch(r.clock)
			ptr, err := r.driver.Malloc(blk)
			if err != nil {
				panic(err.Error())
			}
			nat = append(nat, fmt.Sprintf("%.2f", sw.Elapsed().Seconds()*1e3))
			_ = r.driver.Free(ptr)
		}
		return append([]string{"Native"}, nat...)
	}}
	for chunk := 2 * sim.MiB; chunk <= sim.GiB; chunk *= 2 {
		chunk := chunk
		jobs = append(jobs, func() []string {
			row := []string{sim.FormatBytes(chunk)}
			for _, blk := range blocks {
				if chunk > blk {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.2f", e.vmmAllocLatency(blk, chunk).Seconds()*1e3))
			}
			return row
		})
	}
	for _, row := range e.tableRows(jobs) {
		t.AddRow(row...)
	}
	t.AddNote("paper: 2MB-chunked VMM is ~115x slower than native; latency falls monotonically with chunk size")
	return t
}

func (e *Env) vmmAllocLatency(block, chunk int64) time.Duration {
	r := e.newRig(AllocNative)
	d := r.driver
	sw := sim.StartStopwatch(r.clock)
	va, err := d.MemAddressReserve(block)
	if err != nil {
		panic(err.Error())
	}
	for off := int64(0); off < block; off += chunk {
		h, err := d.MemCreate(chunk)
		if err != nil {
			panic(err.Error())
		}
		if err := d.MemMap(va+cuda.DevicePtr(off), h); err != nil {
			panic(err.Error())
		}
	}
	if err := d.MemSetAccess(va, block); err != nil {
		panic(err.Error())
	}
	return sw.Elapsed()
}

// NativeSlowdownEndToEnd reproduces §2.2's experiment: train OPT-1.3B with
// the caching allocator disabled (every tensor allocation hits cudaMalloc /
// synchronizing cudaFree) and report how much slower a training step gets.
// The paper measured 9.7x.
func (e *Env) NativeSlowdownEndToEnd() float64 {
	spec := workload.Spec{Model: model.OPT1_3B, Strategy: workload.StrategyR, World: 4, Batch: 16}
	stepTime := func(name string) time.Duration {
		r := e.newRig(name)
		tr, err := workload.NewTrainer(spec, r.alloc, r.clock)
		if err != nil {
			panic(err.Error())
		}
		if err := tr.Setup(); err != nil {
			panic("harness: native-vs-caching setup: " + err.Error())
		}
		defer tr.Teardown()
		// One warm-up step, then three measured.
		if err := tr.Step(); err != nil {
			panic(err.Error())
		}
		sw := sim.StartStopwatch(r.clock)
		for i := 0; i < 3; i++ {
			if err := tr.Step(); err != nil {
				panic(err.Error())
			}
		}
		return sw.Elapsed()
	}
	times := runCells(e, []string{AllocNative, AllocCaching}, stepTime)
	return float64(times[0]) / float64(times[1])
}

// NativeVsCachingSpeedup quantifies §2.2's "caching allocator is ~10x faster
// than the native allocator" using a replayed allocation stream. It returns
// the allocator-time-only ratio native/caching (much larger than the
// end-to-end ratio, which compute dilutes).
func (e *Env) NativeVsCachingSpeedup(allocs int) float64 {
	run := func(name string) time.Duration {
		r := e.newRig(name)
		rng := sim.NewRNG(e.Seed)
		sizes := make([]int64, allocs)
		for i := range sizes {
			sizes[i] = (rng.Int63n(256) + 1) * sim.MiB
		}
		sw := sim.StartStopwatch(r.clock)
		for _, s := range sizes {
			b, err := r.alloc.Alloc(s)
			if err != nil {
				panic(err.Error())
			}
			r.alloc.Free(b)
		}
		return sw.Elapsed()
	}
	return float64(run(AllocNative)) / float64(run(AllocCaching))
}
