package recompute

import (
	"time"

	"repro/internal/model"
)

// DefaultFLOPS is the sustained matmul throughput used to convert layer
// FLOPs to forward time (an A100-class device at realistic utilization,
// matching the workload package's compute model).
const DefaultFLOPS = 125e12

// ForModel builds the planner's cost model for one of the paper's LLMs at
// the given micro-batch and sequence length, using the same sizing rules as
// the workload generator.
func ForModel(cfg model.Config, batch, seq int, flops float64) Model {
	if seq <= 0 {
		seq = cfg.SeqLen
	}
	if flops <= 0 {
		flops = DefaultFLOPS
	}
	layerFlops := 2 * float64(batch) * float64(seq) * float64(cfg.LayerParams())
	fwd := time.Duration(layerFlops / flops * float64(time.Second))

	layers := make([]LayerCost, cfg.Layers)
	for i := range layers {
		layers[i] = LayerCost{
			Activation: cfg.ActivationBytesPerLayer(batch, seq),
			Checkpoint: cfg.CheckpointBytesPerLayer(batch, seq),
			Forward:    fwd,
		}
	}
	return Model{Layers: layers}
}
