package recompute

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// uniformModel builds n identical layers.
func uniformModel(n int, act, ckpt int64, fwd time.Duration) Model {
	layers := make([]LayerCost, n)
	for i := range layers {
		layers[i] = LayerCost{Activation: act, Checkpoint: ckpt, Forward: fwd}
	}
	return Model{Layers: layers}
}

func TestNoRecomputeStoresEverything(t *testing.T) {
	m := uniformModel(10, 100, 10, time.Millisecond)
	r := m.Evaluate(NoRecompute())
	if r.PeakBytes != 1000 || r.StoredBytes != 1000 {
		t.Fatalf("peak=%d stored=%d, want 1000/1000", r.PeakBytes, r.StoredBytes)
	}
	if r.ExtraTime != 0 || r.Segments != 0 {
		t.Fatalf("store-all plan has extra=%v segments=%d", r.ExtraTime, r.Segments)
	}
}

func TestUniformSegmentation(t *testing.T) {
	p, err := Uniform(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 6, 9}
	if len(p.Starts) != len(want) {
		t.Fatalf("starts = %v", p.Starts)
	}
	for i, s := range want {
		if p.Starts[i] != s {
			t.Fatalf("starts = %v, want %v", p.Starts, want)
		}
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := Uniform(0, 1); err == nil {
		t.Fatal("accepted zero layers")
	}
	if _, err := Uniform(5, 0); err == nil {
		t.Fatal("accepted zero segment length")
	}
}

func TestEvaluateUniformPlan(t *testing.T) {
	// 12 layers of 100 B activations, 10 B checkpoints, 1 ms forward,
	// segments of 4: peak = 3 checkpoints + one segment (400) = 430.
	m := uniformModel(12, 100, 10, time.Millisecond)
	p, _ := Uniform(12, 4)
	r := m.Evaluate(p)
	if r.PeakBytes != 430 {
		t.Fatalf("peak = %d, want 430", r.PeakBytes)
	}
	if r.StoredBytes != 30 {
		t.Fatalf("stored = %d, want 30", r.StoredBytes)
	}
	if r.ExtraTime != 12*time.Millisecond {
		t.Fatalf("extra = %v, want 12ms (full forward again)", r.ExtraTime)
	}
	if r.Segments != 3 {
		t.Fatalf("segments = %d", r.Segments)
	}
}

func TestSqrtNRule(t *testing.T) {
	p, err := SqrtN(48)
	if err != nil {
		t.Fatal(err)
	}
	segLen := int(math.Ceil(math.Sqrt(48))) // 7
	if p.Starts[1]-p.Starts[0] != segLen {
		t.Fatalf("segment length %d, want %d", p.Starts[1], segLen)
	}
	m := uniformModel(48, 1000, 100, time.Millisecond)
	full := m.Evaluate(NoRecompute()).PeakBytes
	ck := m.Evaluate(p).PeakBytes
	if ck*3 > full {
		t.Fatalf("sqrtN peak %d not well below store-all %d", ck, full)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []Plan{
		{Recompute: true},                         // no segments
		{Recompute: true, Starts: []int{1}},       // first not 0
		{Recompute: true, Starts: []int{0, 0}},    // not ascending
		{Recompute: true, Starts: []int{0, 99}},   // beyond layers
		{Recompute: true, Starts: []int{0, 3, 2}}, // descending tail
	}
	for i, p := range cases {
		if err := p.Validate(10); err == nil {
			t.Fatalf("case %d: invalid plan accepted: %+v", i, p)
		}
	}
	good := Plan{Recompute: true, Starts: []int{0, 3, 7}}
	if err := good.Validate(10); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestEvaluatePanicsOnInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Evaluate accepted an invalid plan")
		}
	}()
	uniformModel(4, 1, 1, 0).Evaluate(Plan{Recompute: true, Starts: []int{2}})
}

func TestPlanForBudgetPrefersNoRecompute(t *testing.T) {
	m := uniformModel(8, 100, 10, time.Millisecond)
	p, err := m.PlanForBudget(800)
	if err != nil {
		t.Fatal(err)
	}
	if p.Recompute {
		t.Fatal("recomputation chosen although everything fits")
	}
}

func TestPlanForBudgetMeetsBudget(t *testing.T) {
	m := uniformModel(16, 100, 10, time.Millisecond)
	for _, budget := range []int64{1500, 800, 500, 300, 270} {
		p, err := m.PlanForBudget(budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		r := m.Evaluate(p)
		if r.PeakBytes > budget {
			t.Fatalf("budget %d: plan peaks at %d", budget, r.PeakBytes)
		}
	}
}

func TestPlanForBudgetMinimizesSegments(t *testing.T) {
	m := uniformModel(16, 100, 10, time.Millisecond)
	// Budget 560: 4 segments of 4 layers peak at 4*10+400=440; 3 segments
	// of 6 would peak at 3*10+600=630 > 560. Optimal is 4 segments... but
	// a cap of 500 packs 5+5+5+1 giving 4 checkpoints + 500 = 540 ≤ 560
	// with 4 segments too. Either way more than 4 segments is wasteful.
	p, err := m.PlanForBudget(560)
	if err != nil {
		t.Fatal(err)
	}
	if p.Segments() > 4 {
		t.Fatalf("plan uses %d segments, 4 suffice", p.Segments())
	}
}

func TestPlanForBudgetInfeasible(t *testing.T) {
	m := uniformModel(4, 100, 50, 0)
	// Even per-layer: 4 checkpoints (200) + 100 = 300 minimum.
	if _, err := m.PlanForBudget(250); err == nil {
		t.Fatal("infeasible budget accepted")
	}
}

func TestPlanForBudgetEmptyModel(t *testing.T) {
	if _, err := (Model{}).PlanForBudget(100); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestHeterogeneousLayersPack(t *testing.T) {
	// A huge middle layer forces its own segment.
	m := Model{Layers: []LayerCost{
		{Activation: 10, Checkpoint: 1},
		{Activation: 10, Checkpoint: 1},
		{Activation: 500, Checkpoint: 1},
		{Activation: 10, Checkpoint: 1},
	}}
	p, err := m.PlanForBudget(520)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Evaluate(p)
	if r.PeakBytes > 520 {
		t.Fatalf("peak %d over budget", r.PeakBytes)
	}
}

// Property: any valid checkpointing plan never exceeds the store-all peak,
// and PlanForBudget's result always meets its budget when it succeeds.
func TestBudgetProperty(t *testing.T) {
	prop := func(nLayers uint8, act uint16, budgetFrac uint8) bool {
		n := int(nLayers)%30 + 1
		a := int64(act)%10000 + 1
		m := uniformModel(n, a, a/10+1, time.Millisecond)
		full := m.Evaluate(NoRecompute()).PeakBytes
		budget := full * (int64(budgetFrac)%100 + 1) / 100

		p, err := m.PlanForBudget(budget)
		if err != nil {
			// Infeasible must really be infeasible.
			finest, _ := Uniform(n, 1)
			return m.Evaluate(finest).PeakBytes > budget
		}
		r := m.Evaluate(p)
		return r.PeakBytes <= budget && r.PeakBytes <= full
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestForModelBuildsPaperModels(t *testing.T) {
	m := ForModel(model.OPT13B, 16, 0, 0)
	if len(m.Layers) != model.OPT13B.Layers {
		t.Fatalf("layers = %d, want %d", len(m.Layers), model.OPT13B.Layers)
	}
	l := m.Layers[0]
	if l.Activation <= 0 || l.Checkpoint <= 0 || l.Forward <= 0 {
		t.Fatalf("degenerate layer cost %+v", l)
	}
	if l.Checkpoint >= l.Activation {
		t.Fatal("checkpoint should be far smaller than full activations")
	}
	// √N on OPT-13B should cut peak activations by at least 2x.
	p, _ := SqrtN(len(m.Layers))
	if r, full := m.Evaluate(p), m.Evaluate(NoRecompute()); r.PeakBytes*2 > full.PeakBytes {
		t.Fatalf("sqrtN peak %s vs full %s", sim.FormatBytes(r.PeakBytes), sim.FormatBytes(full.PeakBytes))
	}
}
