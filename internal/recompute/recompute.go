// Package recompute plans activation checkpointing (the paper's "R"
// strategy, §2.3): which transformer layers keep their activations and which
// are recomputed during the backward pass.
//
// The planner works over a per-layer cost model — activation bytes,
// checkpoint (layer-input) bytes and forward time — and evaluates a plan to
// its peak activation memory and extra recompute time. Besides the classic
// schedules (uniform segments, Chen et al.'s √N rule) it offers
// PlanForBudget, which finds the cheapest segmentation whose peak fits a
// byte budget; the harness uses it to show how checkpointing converts a
// memory problem into the small-and-frequent allocation pattern that
// fragments the baseline allocator (Figure 5).
package recompute

import (
	"fmt"
	"math"
	"time"
)

// LayerCost prices one layer for the planner.
type LayerCost struct {
	// Activation is the byte size of everything the layer must keep for
	// its backward pass when not checkpointed.
	Activation int64
	// Checkpoint is the byte size of the layer's input, the only tensor a
	// checkpointed segment starting at this layer retains.
	Checkpoint int64
	// Forward is the layer's forward compute time, paid again when the
	// layer is recomputed.
	Forward time.Duration
}

// Model is the sequence of layers to plan over.
type Model struct {
	Layers []LayerCost
}

// Plan is a checkpointing decision: either "store everything" or a
// partition of the layers into contiguous segments, each of which stores
// only its input and recomputes its body during backward.
type Plan struct {
	// Recompute selects checkpointing; false stores all activations.
	Recompute bool
	// Starts holds the first layer index of every segment, ascending,
	// beginning with 0. Only meaningful when Recompute is true.
	Starts []int
}

// Segments returns the number of segments; zero for a store-all plan.
func (p Plan) Segments() int {
	if !p.Recompute {
		return 0
	}
	return len(p.Starts)
}

// Validate checks the plan against a model of n layers.
func (p Plan) Validate(n int) error {
	if !p.Recompute {
		return nil
	}
	if len(p.Starts) == 0 {
		return fmt.Errorf("recompute: checkpointing plan with no segments")
	}
	if p.Starts[0] != 0 {
		return fmt.Errorf("recompute: first segment starts at %d, want 0", p.Starts[0])
	}
	for i := 1; i < len(p.Starts); i++ {
		if p.Starts[i] <= p.Starts[i-1] {
			return fmt.Errorf("recompute: segment starts not ascending at %d", i)
		}
	}
	if last := p.Starts[len(p.Starts)-1]; last >= n {
		return fmt.Errorf("recompute: segment start %d beyond %d layers", last, n)
	}
	return nil
}

// Report is the evaluated cost of a plan.
type Report struct {
	// PeakBytes is the peak activation memory: all segment checkpoints
	// plus the fully materialized activations of the largest segment
	// (segments are recomputed one at a time during backward).
	PeakBytes int64
	// StoredBytes is what stays resident across the whole forward pass.
	StoredBytes int64
	// ExtraTime is the recomputation time added to the backward pass.
	ExtraTime time.Duration
	// Segments echoes the plan's segment count.
	Segments int
}

// NoRecompute returns the store-everything plan.
func NoRecompute() Plan { return Plan{} }

// Uniform returns a plan with segments of segLen layers (the last may be
// shorter).
func Uniform(n, segLen int) (Plan, error) {
	if n <= 0 {
		return Plan{}, fmt.Errorf("recompute: %d layers", n)
	}
	if segLen <= 0 {
		return Plan{}, fmt.Errorf("recompute: segment length %d", segLen)
	}
	var starts []int
	for s := 0; s < n; s += segLen {
		starts = append(starts, s)
	}
	return Plan{Recompute: true, Starts: starts}, nil
}

// SqrtN returns the classic √N schedule: segment length ⌈√n⌉, which for
// uniform layers keeps O(√n) activations at O(1) extra forward passes.
func SqrtN(n int) (Plan, error) {
	if n <= 0 {
		return Plan{}, fmt.Errorf("recompute: %d layers", n)
	}
	return Uniform(n, int(math.Ceil(math.Sqrt(float64(n)))))
}

// Evaluate prices plan p over model m. It panics on an invalid plan;
// validate first when the plan is untrusted.
func (m Model) Evaluate(p Plan) Report {
	if err := p.Validate(len(m.Layers)); err != nil {
		panic(err)
	}
	if !p.Recompute {
		var total int64
		for _, l := range m.Layers {
			total += l.Activation
		}
		return Report{PeakBytes: total, StoredBytes: total}
	}

	var stored int64        // all checkpoints
	var maxSeg int64        // largest segment's materialized activations
	var extra time.Duration // one recomputed forward per segment body
	for i, start := range p.Starts {
		end := len(m.Layers)
		if i+1 < len(p.Starts) {
			end = p.Starts[i+1]
		}
		stored += m.Layers[start].Checkpoint
		var seg int64
		for _, l := range m.Layers[start:end] {
			seg += l.Activation
			extra += l.Forward
		}
		if seg > maxSeg {
			maxSeg = seg
		}
	}
	return Report{
		PeakBytes:   stored + maxSeg,
		StoredBytes: stored,
		ExtraTime:   extra,
		Segments:    len(p.Starts),
	}
}

// PlanForBudget returns the plan with the fewest segments (hence the least
// bookkeeping and the least pool churn) whose peak activation memory fits
// budget. It prefers no recomputation when everything fits; it returns an
// error when even per-layer checkpointing overflows the budget.
//
// Segmentation uses a greedy pack under a binary-searched per-segment cap,
// which is optimal for the peak = checkpoints + max-segment objective on
// contiguous partitions.
func (m Model) PlanForBudget(budget int64) (Plan, error) {
	if len(m.Layers) == 0 {
		return Plan{}, fmt.Errorf("recompute: empty model")
	}
	if all := m.Evaluate(NoRecompute()); all.PeakBytes <= budget {
		return NoRecompute(), nil
	}

	// Feasibility floor: one segment per layer.
	finest, err := Uniform(len(m.Layers), 1)
	if err != nil {
		return Plan{}, err
	}
	if m.Evaluate(finest).PeakBytes > budget {
		return Plan{}, fmt.Errorf("recompute: budget %d bytes infeasible even with per-layer checkpoints (need %d)",
			budget, m.Evaluate(finest).PeakBytes)
	}

	// Binary search the largest per-segment activation cap that still
	// meets the budget; larger caps mean fewer segments.
	lo, hi := int64(0), int64(0)
	for _, l := range m.Layers {
		if l.Activation > lo {
			lo = l.Activation // cap below the largest layer packs nothing
		}
		hi += l.Activation
	}
	best := finest
	for lo <= hi {
		mid := lo + (hi-lo)/2
		plan, ok := m.packWithCap(mid)
		if ok && m.Evaluate(plan).PeakBytes <= budget {
			best = plan
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best, nil
}

// packWithCap greedily packs layers into segments whose activation sum stays
// at or below cap. ok is false when a single layer exceeds the cap.
func (m Model) packWithCap(cap int64) (Plan, bool) {
	var starts []int
	var run int64
	for i, l := range m.Layers {
		if l.Activation > cap {
			return Plan{}, false
		}
		if i == 0 || run+l.Activation > cap {
			starts = append(starts, i)
			run = 0
		}
		run += l.Activation
	}
	return Plan{Recompute: true, Starts: starts}, true
}
