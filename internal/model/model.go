// Package model describes the transformer LLMs the paper evaluates
// (Table 2) at the level the allocators care about: parameter counts and
// tensor shapes, from which the workload generator derives allocation sizes.
package model

import (
	"fmt"
)

// DTypeBytes is the training datatype width (fp16/bf16).
const DTypeBytes = 2

// OptimBytesPerParam is Adam's fp32 state per parameter: master copy,
// exp_avg and exp_avg_sq (3 × 4 bytes).
const OptimBytesPerParam = 12

// Config is one transformer model.
type Config struct {
	Name   string
	Layers int // transformer blocks
	Hidden int // model dimension
	Heads  int // attention heads
	Vocab  int // vocabulary size
	SeqLen int // fine-tuning sequence length
}

// Models evaluated in the paper (Table 2), with architecture hyperparameters
// from the models' public configurations.
var (
	GPT2 = Config{Name: "GPT-2", Layers: 48, Hidden: 1600, Heads: 25, Vocab: 50257, SeqLen: 1024}

	OPT1_3B = Config{Name: "OPT-1.3B", Layers: 24, Hidden: 2048, Heads: 32, Vocab: 50272, SeqLen: 512}

	GLM10B = Config{Name: "GLM-10B", Layers: 48, Hidden: 4096, Heads: 32, Vocab: 50304, SeqLen: 512}

	OPT13B = Config{Name: "OPT-13B", Layers: 40, Hidden: 5120, Heads: 40, Vocab: 50272, SeqLen: 512}

	Vicuna13B = Config{Name: "Vicuna-13B", Layers: 40, Hidden: 5120, Heads: 40, Vocab: 32000, SeqLen: 512}

	GPTNeoX20B = Config{Name: "GPT-NeoX-20B", Layers: 44, Hidden: 6144, Heads: 64, Vocab: 50432, SeqLen: 512}
)

// All lists the evaluated models.
var All = []Config{GPT2, OPT1_3B, GLM10B, OPT13B, Vicuna13B, GPTNeoX20B}

// ByName returns the model with the given name.
func ByName(name string) (Config, error) {
	for _, m := range All {
		if m.Name == name {
			return m, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}

// LayerParams returns the parameter count of one transformer block:
// attention (4 H²) plus MLP (8 H²) plus norms/biases (~13 H).
func (c Config) LayerParams() int64 {
	h := int64(c.Hidden)
	return 12*h*h + 13*h
}

// EmbeddingParams returns the token embedding parameter count (tied with the
// LM head).
func (c Config) EmbeddingParams() int64 {
	return int64(c.Vocab) * int64(c.Hidden)
}

// Params returns the total parameter count.
func (c Config) Params() int64 {
	return int64(c.Layers)*c.LayerParams() + c.EmbeddingParams()
}

// ParamsBillions returns the parameter count in billions, for display.
func (c Config) ParamsBillions() float64 { return float64(c.Params()) / 1e9 }

// LayerParamBytes returns the fp16 byte size of one block's parameters — the
// unit ZeRO-3 all-gathers during forward and backward.
func (c Config) LayerParamBytes() int64 { return c.LayerParams() * DTypeBytes }

// EmbeddingBytes returns the fp16 byte size of the embedding table.
func (c Config) EmbeddingBytes() int64 { return c.EmbeddingParams() * DTypeBytes }

// ActivationBytesPerLayer returns the bytes of intermediate activations one
// block retains per sample at the given sequence length when recomputation is
// off. The factor ~16 covers attention projections, the 4H MLP intermediate
// and residual copies (Korthikanti et al.'s s·b·h·(10+24) without the
// quadratic term, as flash-style attention is assumed).
func (c Config) ActivationBytesPerLayer(batch, seq int) int64 {
	return int64(batch) * int64(seq) * int64(c.Hidden) * DTypeBytes * 16
}

// CheckpointBytesPerLayer returns the bytes one block retains per sample
// with recomputation on: just the block input.
func (c Config) CheckpointBytesPerLayer(batch, seq int) int64 {
	return int64(batch) * int64(seq) * int64(c.Hidden) * DTypeBytes
}

// LogitsBytes returns the size of the LM-head output.
func (c Config) LogitsBytes(batch, seq int) int64 {
	return int64(batch) * int64(seq) * int64(c.Vocab) * DTypeBytes
}

// String renders "OPT-13B (12.9B params)".
func (c Config) String() string {
	return fmt.Sprintf("%s (%.1fB params, %d layers, hidden %d)",
		c.Name, c.ParamsBillions(), c.Layers, c.Hidden)
}

// ShardBytes divides total bytes across world GPUs, rounding up.
func ShardBytes(total int64, world int) int64 {
	if world <= 0 {
		panic(fmt.Sprintf("model: world size %d", world))
	}
	return (total + int64(world) - 1) / int64(world)
}

// FitsSanity panics if a config is internally inconsistent; used in tests.
func (c Config) FitsSanity() error {
	if c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.Vocab <= 0 || c.SeqLen <= 0 {
		return fmt.Errorf("model: %s has a non-positive dimension", c.Name)
	}
	if c.Hidden%c.Heads != 0 {
		return fmt.Errorf("model: %s hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	}
	if c.Params() < int64(100)*1e6 {
		return fmt.Errorf("model: %s implausibly small (%d params)", c.Name, c.Params())
	}
	return nil
}
