package model

import (
	"math"
	"strings"
	"testing"
)

func TestParamCountsMatchNominal(t *testing.T) {
	// Each model's computed parameter count must be within 15% of its
	// advertised size.
	nominal := map[string]float64{
		"GPT-2":        1.5,
		"OPT-1.3B":     1.3,
		"GLM-10B":      10,
		"OPT-13B":      13,
		"Vicuna-13B":   13,
		"GPT-NeoX-20B": 20,
	}
	for _, m := range All {
		want := nominal[m.Name]
		got := m.ParamsBillions()
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("%s: computed %.2fB params, nominal %.1fB", m.Name, got, want)
		}
	}
}

func TestConfigsSane(t *testing.T) {
	for _, m := range All {
		if err := m.FitsSanity(); err != nil {
			t.Error(err)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("OPT-13B")
	if err != nil {
		t.Fatal(err)
	}
	if m.Hidden != 5120 {
		t.Fatalf("OPT-13B hidden = %d", m.Hidden)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Fatal("unknown model lookup succeeded")
	}
}

func TestShardBytes(t *testing.T) {
	tests := []struct {
		total int64
		world int
		want  int64
	}{
		{100, 1, 100},
		{100, 4, 25},
		{101, 4, 26},
		{7, 8, 1},
	}
	for _, tt := range tests {
		if got := ShardBytes(tt.total, tt.world); got != tt.want {
			t.Errorf("ShardBytes(%d, %d) = %d, want %d", tt.total, tt.world, got, tt.want)
		}
	}
}

func TestActivationScaling(t *testing.T) {
	m := OPT13B
	a1 := m.ActivationBytesPerLayer(1, 512)
	a2 := m.ActivationBytesPerLayer(2, 512)
	a3 := m.ActivationBytesPerLayer(1, 1024)
	if a2 != 2*a1 || a3 != 2*a1 {
		t.Fatalf("activation bytes must scale linearly in batch and seq: %d %d %d", a1, a2, a3)
	}
	if ck := m.CheckpointBytesPerLayer(1, 512); ck >= a1 {
		t.Fatalf("checkpoint (%d) not smaller than full activations (%d)", ck, a1)
	}
}

func TestLayerBytes(t *testing.T) {
	m := OPT13B
	// One OPT-13B block is ~315M params, ~630 MB in fp16.
	gotMB := float64(m.LayerParamBytes()) / (1 << 20)
	if gotMB < 550 || gotMB > 700 {
		t.Fatalf("LayerParamBytes = %.0f MB, want ~600 MB", gotMB)
	}
	if m.LogitsBytes(8, 512) != int64(8*512*50272*2) {
		t.Fatal("LogitsBytes mismatch")
	}
}

func TestStringAndEmbeddingBytes(t *testing.T) {
	s := OPT13B.String()
	if !strings.Contains(s, "OPT-13B") || !strings.Contains(s, "layers") {
		t.Fatalf("String = %q", s)
	}
	if got := OPT13B.EmbeddingBytes(); got != OPT13B.EmbeddingParams()*DTypeBytes {
		t.Fatalf("EmbeddingBytes = %d", got)
	}
}

func TestShardBytesRoundsUpAndPanics(t *testing.T) {
	if got := ShardBytes(10, 3); got != 4 {
		t.Fatalf("ShardBytes(10,3) = %d, want 4 (round up)", got)
	}
	if got := ShardBytes(12, 3); got != 4 {
		t.Fatalf("ShardBytes(12,3) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on world 0")
		}
	}()
	ShardBytes(10, 0)
}

func TestFitsSanityRejectsBrokenConfigs(t *testing.T) {
	broken := []Config{
		{Name: "zero-layers", Hidden: 1024, Heads: 8, Vocab: 1000, SeqLen: 512},
		{Name: "indivisible", Layers: 24, Hidden: 1000, Heads: 7, Vocab: 1000, SeqLen: 512},
		{Name: "tiny", Layers: 1, Hidden: 8, Heads: 2, Vocab: 10, SeqLen: 4},
	}
	for _, c := range broken {
		if err := c.FitsSanity(); err == nil {
			t.Fatalf("%s passed sanity", c.Name)
		}
	}
	for _, c := range All {
		if err := c.FitsSanity(); err != nil {
			t.Fatalf("paper model %s failed sanity: %v", c.Name, err)
		}
	}
}
