package parallel

import (
	"fmt"
	"time"
)

// Schedule selects the pipeline-parallel execution order.
type Schedule int

// Pipeline schedules.
const (
	// GPipe runs all microbatch forwards, then all backwards; every stage
	// buffers every microbatch's activations at the flush point.
	GPipe Schedule = iota
	// OneFOneB interleaves one forward with one backward after warm-up,
	// bounding stage s's buffered microbatches to (stages − s).
	OneFOneB
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case GPipe:
		return "GPipe"
	case OneFOneB:
		return "1F1B"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// PipelineConfig describes one pipeline-parallel setup.
type PipelineConfig struct {
	Stages       int
	MicroBatches int
	Schedule     Schedule
}

// Validate checks the configuration.
func (c PipelineConfig) Validate() error {
	if c.Stages <= 0 {
		return fmt.Errorf("parallel: %d pipeline stages", c.Stages)
	}
	if c.MicroBatches <= 0 {
		return fmt.Errorf("parallel: %d microbatches", c.MicroBatches)
	}
	if c.Schedule != GPipe && c.Schedule != OneFOneB {
		return fmt.Errorf("parallel: unknown schedule %v", c.Schedule)
	}
	return nil
}

// BubbleFraction returns the idle fraction of the pipeline,
// (S−1)/(M+S−1) for both schedules.
func (c PipelineConfig) BubbleFraction() float64 {
	return float64(c.Stages-1) / float64(c.MicroBatches+c.Stages-1)
}

// PeakMicrobatchesInFlight returns how many microbatches' activations stage
// (0-based) holds at its worst moment.
func (c PipelineConfig) PeakMicrobatchesInFlight(stage int) int {
	if stage < 0 || stage >= c.Stages {
		panic(fmt.Sprintf("parallel: stage %d of %d", stage, c.Stages))
	}
	switch c.Schedule {
	case OneFOneB:
		// Warm-up depth: earlier stages run ahead by the distance to the
		// last stage, bounded by the microbatch count.
		if inflight := c.Stages - stage; inflight < c.MicroBatches {
			return inflight
		}
		return c.MicroBatches
	default: // GPipe buffers everything until the flush
		return c.MicroBatches
	}
}

// StageActivationBytes returns stage's peak buffered activation bytes given
// the per-microbatch activation footprint of that stage's layers.
func (c PipelineConfig) StageActivationBytes(stage int, perMicrobatch int64) int64 {
	return int64(c.PeakMicrobatchesInFlight(stage)) * perMicrobatch
}

// StepTime returns one training step's duration given per-microbatch
// forward and backward times of one stage (assumed balanced). Both
// schedules complete in (M + S − 1) slots of (fwd+bwd); 1F1B's benefit is
// memory, not time.
func (c PipelineConfig) StepTime(fwd, bwd time.Duration) time.Duration {
	slots := time.Duration(c.MicroBatches + c.Stages - 1)
	return slots * (fwd + bwd)
}

// PartitionLayers splits n layers into the pipeline's stages as evenly as
// possible (earlier stages take the remainder, Megatron's convention).
// The result holds each stage's layer count and sums to n.
func (c PipelineConfig) PartitionLayers(n int) ([]int, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if n < c.Stages {
		return nil, fmt.Errorf("parallel: %d layers across %d stages", n, c.Stages)
	}
	per, rem := n/c.Stages, n%c.Stages
	out := make([]int, c.Stages)
	for i := range out {
		out[i] = per
		if i < rem {
			out[i]++
		}
	}
	return out, nil
}
