package parallel

import (
	"testing"

	"repro/internal/model"
)

func TestTPValidate(t *testing.T) {
	if err := (TPConfig{Degree: 8}).Validate(model.OPT13B); err != nil {
		t.Fatalf("degree 8 on 40 heads/5120 hidden rejected: %v", err)
	}
	if err := (TPConfig{Degree: 0}).Validate(model.OPT13B); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if err := (TPConfig{Degree: 3}).Validate(model.OPT13B); err == nil {
		t.Fatal("degree 3 does not divide 40 heads but was accepted")
	}
	// GPT-2 has 25 heads: degree 5 divides heads and hidden (1600).
	if err := (TPConfig{Degree: 5}).Validate(model.GPT2); err != nil {
		t.Fatalf("degree 5 on GPT-2: %v", err)
	}
}

func TestShardLayerSumsToWholeLayer(t *testing.T) {
	for _, degree := range []int{1, 2, 4, 8} {
		shard, err := TPConfig{Degree: degree}.ShardLayer(model.OPT13B)
		if err != nil {
			t.Fatal(err)
		}
		h := int64(model.OPT13B.Hidden)
		matrices := 12 * h * h * model.DTypeBytes // 3+1+4+4 H² weights
		norms := 13 * h * model.DTypeBytes
		gotMatrices := shard.AttnQKV + shard.AttnProj + shard.MLPUp + shard.MLPDown
		if int64(degree)*gotMatrices != matrices {
			t.Fatalf("degree %d: matrix shards %d × %d ≠ %d", degree, degree, gotMatrices, matrices)
		}
		if shard.Norms != norms {
			t.Fatalf("degree %d: norms %d not replicated (%d)", degree, shard.Norms, norms)
		}
		// Whole layer matches the model package's own count at degree 1.
		if degree == 1 && shard.Bytes() != model.OPT13B.LayerParamBytes() {
			t.Fatalf("degree-1 shard %d ≠ LayerParamBytes %d", shard.Bytes(), model.OPT13B.LayerParamBytes())
		}
	}
}

func TestShardLayerRejectsBadDegree(t *testing.T) {
	if _, err := (TPConfig{Degree: 7}).ShardLayer(model.OPT13B); err == nil {
		t.Fatal("degree 7 accepted")
	}
}

func TestActivationBytesShrinkInteriorOnly(t *testing.T) {
	cfg, batch, seq := model.OPT13B, 8, 512
	full := TPConfig{Degree: 1}.ActivationBytes(cfg, batch, seq)
	if full != cfg.ActivationBytesPerLayer(batch, seq) {
		t.Fatalf("degree-1 activations %d ≠ model's %d", full, cfg.ActivationBytesPerLayer(batch, seq))
	}
	half := TPConfig{Degree: 2}.ActivationBytes(cfg, batch, seq)
	if half >= full {
		t.Fatal("degree 2 did not shrink activations")
	}
	boundary := int64(batch) * int64(seq) * int64(cfg.Hidden) * model.DTypeBytes
	if half < 2*boundary {
		t.Fatal("boundary activations must stay replicated")
	}
}

func TestAllReduceBytes(t *testing.T) {
	cfg, batch, seq := model.OPT13B, 8, 512
	if got := (TPConfig{Degree: 1}).AllReduceBytesPerLayer(cfg, batch, seq); got != 0 {
		t.Fatalf("degree 1 communicates %d", got)
	}
	b2 := TPConfig{Degree: 2}.AllReduceBytesPerLayer(cfg, batch, seq)
	b8 := TPConfig{Degree: 8}.AllReduceBytesPerLayer(cfg, batch, seq)
	if b2 <= 0 || b8 <= b2 {
		t.Fatalf("ring volume should grow with degree: d2=%d d8=%d", b2, b8)
	}
	boundary := int64(batch) * int64(seq) * int64(cfg.Hidden) * model.DTypeBytes
	if b8 >= 4*boundary {
		t.Fatalf("per-layer traffic %d above the 4×boundary asymptote %d", b8, 4*boundary)
	}
}
