package parallel

import (
	"fmt"

	"repro/internal/model"
)

// Topology is a 3D parallel decomposition: DP data-parallel replicas (the
// ZeRO group), TP tensor-parallel ranks within a layer, PP pipeline stages.
type Topology struct {
	DP int
	TP int
	PP int
}

// World returns the total GPU count, DP·TP·PP.
func (t Topology) World() int { return t.DP * t.TP * t.PP }

// String renders "dp4·tp2·pp2".
func (t Topology) String() string { return fmt.Sprintf("dp%d·tp%d·pp%d", t.DP, t.TP, t.PP) }

// Validate checks the topology against the model.
func (t Topology) Validate(cfg model.Config) error {
	if t.DP <= 0 || t.TP <= 0 || t.PP <= 0 {
		return fmt.Errorf("parallel: degenerate topology %s", t)
	}
	if err := (TPConfig{Degree: t.TP}).Validate(cfg); err != nil {
		return err
	}
	if cfg.Layers < t.PP {
		return fmt.Errorf("parallel: %d layers across %d pipeline stages", cfg.Layers, t.PP)
	}
	return nil
}

// RankDemand is the memory one rank must provide.
type RankDemand struct {
	Stage       int // pipeline stage this rank sits in
	Layers      int // transformer layers held
	State       StateBreakdown
	Activations int64 // peak buffered activation bytes
}

// Total returns the rank's total demand in bytes.
func (d RankDemand) Total() int64 { return d.State.Total() + d.Activations }

// MemoryPlan is the per-stage memory demand of one topology. Ranks within a
// stage are symmetric, so one RankDemand per pipeline stage suffices.
type MemoryPlan struct {
	Topology Topology
	Stages   []RankDemand
}

// MaxRankBytes returns the worst rank's demand — what the smallest GPU in
// the job must fit.
func (p MemoryPlan) MaxRankBytes() int64 {
	var maxTotal int64
	for _, d := range p.Stages {
		if t := d.Total(); t > maxTotal {
			maxTotal = t
		}
	}
	return maxTotal
}

// PlanMemory computes the per-rank memory demand of training cfg under the
// topology: parameters are first cut by TP and the stage's layer share, then
// the ZeRO stage shards state across the DP group; activations follow the
// pipeline schedule's in-flight bound and TP's interior sharding.
// microBatch is the per-microbatch sample count (pipeline granularity).
func PlanMemory(cfg model.Config, topo Topology, zero ZeROStage, sched Schedule, microBatch, seq int) (MemoryPlan, error) {
	if err := topo.Validate(cfg); err != nil {
		return MemoryPlan{}, err
	}
	if microBatch <= 0 {
		return MemoryPlan{}, fmt.Errorf("parallel: microbatch %d", microBatch)
	}
	if seq <= 0 {
		seq = cfg.SeqLen
	}

	pipe := PipelineConfig{
		Stages: topo.PP,
		// Standard sizing: enough microbatches to keep the bubble small.
		MicroBatches: 4 * topo.PP,
		Schedule:     sched,
	}
	layersPerStage, err := pipe.PartitionLayers(cfg.Layers)
	if err != nil {
		return MemoryPlan{}, err
	}

	tp := TPConfig{Degree: topo.TP}
	shard, err := tp.ShardLayer(cfg)
	if err != nil {
		return MemoryPlan{}, err
	}
	layerParamsPerRank := shard.Bytes() / model.DTypeBytes
	actPerLayer := tp.ActivationBytes(cfg, microBatch, seq)

	plan := MemoryPlan{Topology: topo, Stages: make([]RankDemand, topo.PP)}
	for s := 0; s < topo.PP; s++ {
		params := layerParamsPerRank * int64(layersPerStage[s])
		if s == 0 || s == topo.PP-1 {
			// Embeddings sit on the first stage; the tied LM head and
			// final norm on the last (both TP-sharded column-wise).
			params += cfg.EmbeddingParams() / int64(topo.TP)
		}
		state, err := ZeROState(params, topo.DP, zero)
		if err != nil {
			return MemoryPlan{}, err
		}
		plan.Stages[s] = RankDemand{
			Stage:       s,
			Layers:      layersPerStage[s],
			State:       state,
			Activations: pipe.StageActivationBytes(s, actPerLayer*int64(layersPerStage[s])),
		}
	}
	return plan, nil
}

// Fits reports whether every rank of the plan fits a device of capacity
// bytes, leaving headroom fraction (e.g. 0.1 keeps 10% free for transients).
func (p MemoryPlan) Fits(capacity int64, headroom float64) bool {
	budget := int64(float64(capacity) * (1 - headroom))
	return p.MaxRankBytes() <= budget
}
