package parallel

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestZeROStage0Replicates(t *testing.T) {
	b, err := ZeROState(1e9, 8, Stage0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Params != 2e9 || b.Grads != 2e9 || b.Optimizer != 12e9 {
		t.Fatalf("stage0 breakdown %+v", b)
	}
	if b.Total() != 16e9 {
		t.Fatalf("total = %d, want 16e9 (16 bytes/param)", b.Total())
	}
}

func TestZeROStagesShardProgressively(t *testing.T) {
	const params, world = int64(1e9), 8
	var prev int64 = 1 << 62
	for _, stage := range []ZeROStage{Stage0, Stage1, Stage2, Stage3} {
		b, err := ZeROState(params, world, stage)
		if err != nil {
			t.Fatal(err)
		}
		if b.Total() >= prev {
			t.Fatalf("%v total %d not below previous stage %d", stage, b.Total(), prev)
		}
		prev = b.Total()
	}
	// Stage 3 with world=8: everything /8.
	b, _ := ZeROState(params, world, Stage3)
	if b.Total() != 2e9 {
		t.Fatalf("stage3 total = %d, want 2e9", b.Total())
	}
}

func TestZeROWorldOneIsFullState(t *testing.T) {
	b, err := ZeROState(1000, 1, Stage3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() != 16*1000 {
		t.Fatalf("world=1 sharded anyway: %+v", b)
	}
}

func TestZeROValidation(t *testing.T) {
	if _, err := ZeROState(0, 4, Stage3); err == nil {
		t.Fatal("accepted zero params")
	}
	if _, err := ZeROState(100, 0, Stage3); err == nil {
		t.Fatal("accepted zero world")
	}
	if _, err := ZeROState(100, 4, ZeROStage(9)); err == nil {
		t.Fatal("accepted unknown stage")
	}
}

func TestZeROStageStrings(t *testing.T) {
	if Stage3.String() != "ZeRO-3" || Stage0.String() != "ZeRO-0" {
		t.Fatalf("%v %v", Stage0, Stage3)
	}
	if ZeROStage(7).String() != "ZeROStage(7)" {
		t.Fatalf("%v", ZeROStage(7))
	}
}

func TestZeROStepCommBytes(t *testing.T) {
	const p = int64(1e6)
	if got := ZeROStepCommBytes(p, 1, Stage3); got != 0 {
		t.Fatalf("single GPU communicates %d", got)
	}
	s0 := ZeROStepCommBytes(p, 8, Stage0)
	s2 := ZeROStepCommBytes(p, 8, Stage2)
	s3 := ZeROStepCommBytes(p, 8, Stage3)
	if s0 != 4*p { // 2 × grad bytes (2p)
		t.Fatalf("stage0 comm = %d, want %d", s0, 4*p)
	}
	if s2 >= s0 {
		t.Fatal("stage2 should communicate less than stage0")
	}
	if s3 <= s0 {
		t.Fatal("stage3 must pay extra parameter gathers")
	}
}

func TestGatherGranularity(t *testing.T) {
	g1 := GatherGranularity(model.OPT13B, 1)
	g2 := GatherGranularity(model.OPT13B, 2)
	if g1 != model.OPT13B.LayerParamBytes() {
		t.Fatalf("granularity = %d", g1)
	}
	if g2 != 2*g1 {
		t.Fatalf("FSDP-style 2-layer gather = %d, want %d", g2, 2*g1)
	}
	if GatherGranularity(model.OPT13B, 0) != g1 {
		t.Fatal("zero layersPerGather should default to 1")
	}
}

// Property: sharding never loses bytes — world × per-rank shard covers the
// full state (with padding, never less), and higher stages never hold more.
func TestZeROShardCoverageProperty(t *testing.T) {
	prop := func(paramsK uint32, worldRaw uint8) bool {
		params := int64(paramsK)%1e7 + 1
		world := int(worldRaw)%63 + 1
		full, err := ZeROState(params, world, Stage0)
		if err != nil {
			return false
		}
		for _, stage := range []ZeROStage{Stage1, Stage2, Stage3} {
			b, err := ZeROState(params, world, stage)
			if err != nil {
				return false
			}
			if b.Total() > full.Total() {
				return false
			}
			if int64(world)*b.Total() < full.Total() {
				return false // shards don't cover the model
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
