package parallel

import (
	"fmt"

	"repro/internal/model"
)

// TPConfig is Megatron-style tensor parallelism: each transformer layer's
// weight matrices are split across Degree ranks — attention QKV and MLP
// up-projection column-wise, attention output and MLP down-projection
// row-wise — with layer norms replicated.
type TPConfig struct {
	Degree int
}

// Validate checks that the degree divides the model's heads and hidden
// dimension, the constraint real Megatron enforces.
func (c TPConfig) Validate(cfg model.Config) error {
	if c.Degree <= 0 {
		return fmt.Errorf("parallel: tensor-parallel degree %d", c.Degree)
	}
	if cfg.Heads%c.Degree != 0 {
		return fmt.Errorf("parallel: degree %d does not divide %d heads", c.Degree, cfg.Heads)
	}
	if cfg.Hidden%c.Degree != 0 {
		return fmt.Errorf("parallel: degree %d does not divide hidden %d", c.Degree, cfg.Hidden)
	}
	return nil
}

// LayerShard is one rank's share of one transformer layer, in bytes.
type LayerShard struct {
	AttnQKV  int64 // column-parallel QKV projection (3H² / degree)
	AttnProj int64 // row-parallel attention output (H² / degree)
	MLPUp    int64 // column-parallel up projection (4H² / degree)
	MLPDown  int64 // row-parallel down projection (4H² / degree)
	Norms    int64 // replicated layer norms and biases
}

// Bytes returns the shard's total parameter bytes.
func (s LayerShard) Bytes() int64 {
	return s.AttnQKV + s.AttnProj + s.MLPUp + s.MLPDown + s.Norms
}

// ShardLayer splits one transformer layer of cfg across the degree.
func (c TPConfig) ShardLayer(cfg model.Config) (LayerShard, error) {
	if err := c.Validate(cfg); err != nil {
		return LayerShard{}, err
	}
	h := int64(cfg.Hidden)
	d := int64(c.Degree)
	return LayerShard{
		AttnQKV:  3 * h * h / d * model.DTypeBytes,
		AttnProj: h * h / d * model.DTypeBytes,
		MLPUp:    4 * h * h / d * model.DTypeBytes,
		MLPDown:  4 * h * h / d * model.DTypeBytes,
		Norms:    13 * h * model.DTypeBytes, // replicated on every rank
	}, nil
}

// ActivationBytes returns one rank's activation bytes for one layer: the
// attention and MLP interiors shrink by the degree, while the layer's
// input/output activations (batch·seq·hidden) stay replicated.
func (c TPConfig) ActivationBytes(cfg model.Config, batch, seq int) int64 {
	full := cfg.ActivationBytesPerLayer(batch, seq)
	boundary := int64(batch) * int64(seq) * int64(cfg.Hidden) * model.DTypeBytes
	interior := full - 2*boundary
	if interior < 0 {
		interior = 0
	}
	return 2*boundary + interior/int64(c.Degree)
}

// AllReduceBytesPerLayer returns the activation traffic tensor parallelism
// adds: two all-reduces of the boundary activation per layer per forward
// pass (one after attention, one after the MLP), each moving
// 2·(d-1)/d of the tensor on a ring.
func (c TPConfig) AllReduceBytesPerLayer(cfg model.Config, batch, seq int) int64 {
	if c.Degree <= 1 {
		return 0
	}
	boundary := int64(batch) * int64(seq) * int64(cfg.Hidden) * model.DTypeBytes
	d := int64(c.Degree)
	perAllReduce := 2 * boundary * (d - 1) / d
	return 2 * perAllReduce
}
