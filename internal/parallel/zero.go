// Package parallel models the distributed-training decompositions the paper
// names in §2.4 — ZeRO data parallelism, tensor parallelism and pipeline
// parallelism — at the granularity the allocators care about: how many bytes
// of parameters, gradients, optimizer state and activations each rank must
// hold, and how the decomposition slices formerly-large tensors into the
// many smaller ones that fragment the baseline allocator (Observation 2).
package parallel

import (
	"fmt"

	"repro/internal/model"
)

// ZeROStage selects how much optimizer/gradient/parameter state is sharded
// across the data-parallel group (DeepSpeed ZeRO).
type ZeROStage int

// ZeRO stages.
const (
	// Stage0 is plain data parallelism: everything replicated.
	Stage0 ZeROStage = iota
	// Stage1 shards optimizer state.
	Stage1
	// Stage2 shards optimizer state and gradients.
	Stage2
	// Stage3 shards optimizer state, gradients and parameters (the
	// configuration the paper evaluates).
	Stage3
)

// String implements fmt.Stringer.
func (s ZeROStage) String() string {
	if s < Stage0 || s > Stage3 {
		return fmt.Sprintf("ZeROStage(%d)", int(s))
	}
	return [...]string{"ZeRO-0", "ZeRO-1", "ZeRO-2", "ZeRO-3"}[s]
}

// StateBreakdown is the per-rank persistent training state in bytes.
type StateBreakdown struct {
	Params    int64 // fp16 parameters resident on the rank
	Grads     int64 // fp16 gradients resident on the rank
	Optimizer int64 // fp32 master + Adam moments resident on the rank
}

// Total returns the per-rank persistent bytes.
func (b StateBreakdown) Total() int64 { return b.Params + b.Grads + b.Optimizer }

// ZeROState returns each rank's persistent state for a model of params
// parameters trained across world data-parallel ranks at the given stage.
// Shards round up, as real implementations pad to the world size.
func ZeROState(params int64, world int, stage ZeROStage) (StateBreakdown, error) {
	if params <= 0 {
		return StateBreakdown{}, fmt.Errorf("parallel: %d parameters", params)
	}
	if world <= 0 {
		return StateBreakdown{}, fmt.Errorf("parallel: world %d", world)
	}
	if stage < Stage0 || stage > Stage3 {
		return StateBreakdown{}, fmt.Errorf("parallel: unknown %v", stage)
	}
	full := StateBreakdown{
		Params:    params * model.DTypeBytes,
		Grads:     params * model.DTypeBytes,
		Optimizer: params * model.OptimBytesPerParam,
	}
	b := full
	if stage >= Stage1 {
		b.Optimizer = model.ShardBytes(full.Optimizer, world)
	}
	if stage >= Stage2 {
		b.Grads = model.ShardBytes(full.Grads, world)
	}
	if stage >= Stage3 {
		b.Params = model.ShardBytes(full.Params, world)
	}
	return b, nil
}

// ZeROStepCommBytes returns the per-rank communication volume of one
// training step, in parameter-traffic bytes. Stages 0–2 pay one gradient
// all-reduce (2× the gradient bytes on a ring); stage 3 additionally
// all-gathers parameters in the forward and again in the backward pass.
func ZeROStepCommBytes(params int64, world int, stage ZeROStage) int64 {
	if world <= 1 {
		return 0
	}
	grad := params * model.DTypeBytes
	p := params * model.DTypeBytes
	switch stage {
	case Stage0, Stage1:
		return 2 * grad // all-reduce = reduce-scatter + all-gather
	case Stage2:
		return grad // reduce-scatter only; each rank keeps its shard
	default: // Stage3
		return grad + 2*p // reduce-scatter grads + two parameter gathers
	}
}

// GatherGranularity returns the byte size of the parameter material one
// ZeRO-3 gather materializes on every rank: the full (unsharded) layer.
// These transient full-layer tensors, allocated and freed once per layer per
// pass, are the ZeRO-3 churn the paper's Figure 4 measures.
func GatherGranularity(cfg model.Config, layersPerGather int) int64 {
	if layersPerGather <= 0 {
		layersPerGather = 1
	}
	return cfg.LayerParamBytes() * int64(layersPerGather)
}
