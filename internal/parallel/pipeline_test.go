package parallel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPipelineValidate(t *testing.T) {
	good := PipelineConfig{Stages: 4, MicroBatches: 16, Schedule: OneFOneB}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []PipelineConfig{
		{Stages: 0, MicroBatches: 4},
		{Stages: 4, MicroBatches: 0},
		{Stages: 4, MicroBatches: 4, Schedule: Schedule(9)},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("accepted %+v", bad)
		}
	}
}

func TestScheduleStrings(t *testing.T) {
	if GPipe.String() != "GPipe" || OneFOneB.String() != "1F1B" {
		t.Fatalf("%v %v", GPipe, OneFOneB)
	}
	if Schedule(5).String() != "Schedule(5)" {
		t.Fatalf("%v", Schedule(5))
	}
}

func TestBubbleFraction(t *testing.T) {
	c := PipelineConfig{Stages: 4, MicroBatches: 12}
	if got, want := c.BubbleFraction(), 3.0/15.0; got != want {
		t.Fatalf("bubble = %v, want %v", got, want)
	}
	single := PipelineConfig{Stages: 1, MicroBatches: 8}
	if single.BubbleFraction() != 0 {
		t.Fatal("single stage has no bubble")
	}
}

func TestGPipeBuffersAllMicrobatches(t *testing.T) {
	c := PipelineConfig{Stages: 4, MicroBatches: 16, Schedule: GPipe}
	for s := 0; s < 4; s++ {
		if got := c.PeakMicrobatchesInFlight(s); got != 16 {
			t.Fatalf("stage %d in-flight = %d, want 16", s, got)
		}
	}
}

func TestOneFOneBBoundsInFlight(t *testing.T) {
	c := PipelineConfig{Stages: 4, MicroBatches: 16, Schedule: OneFOneB}
	want := []int{4, 3, 2, 1}
	for s, w := range want {
		if got := c.PeakMicrobatchesInFlight(s); got != w {
			t.Fatalf("stage %d in-flight = %d, want %d", s, got, w)
		}
	}
}

func TestOneFOneBClampsToMicrobatchCount(t *testing.T) {
	c := PipelineConfig{Stages: 8, MicroBatches: 2, Schedule: OneFOneB}
	if got := c.PeakMicrobatchesInFlight(0); got != 2 {
		t.Fatalf("in-flight %d with only 2 microbatches", got)
	}
}

func TestPeakInFlightPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad stage index")
		}
	}()
	PipelineConfig{Stages: 2, MicroBatches: 2}.PeakMicrobatchesInFlight(2)
}

func TestStageActivationBytes(t *testing.T) {
	c := PipelineConfig{Stages: 2, MicroBatches: 8, Schedule: GPipe}
	if got := c.StageActivationBytes(0, 100); got != 800 {
		t.Fatalf("got %d, want 800", got)
	}
}

func TestStepTime(t *testing.T) {
	c := PipelineConfig{Stages: 4, MicroBatches: 12, Schedule: OneFOneB}
	got := c.StepTime(time.Millisecond, 2*time.Millisecond)
	if want := 15 * 3 * time.Millisecond; got != want {
		t.Fatalf("step = %v, want %v", got, want)
	}
}

func TestPartitionLayers(t *testing.T) {
	c := PipelineConfig{Stages: 4, MicroBatches: 4, Schedule: GPipe}
	parts, err := c.PartitionLayers(10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 2, 2}
	sum := 0
	for i, p := range parts {
		if p != want[i] {
			t.Fatalf("partition = %v, want %v", parts, want)
		}
		sum += p
	}
	if sum != 10 {
		t.Fatalf("partition sums to %d", sum)
	}
	if _, err := c.PartitionLayers(3); err == nil {
		t.Fatal("3 layers across 4 stages accepted")
	}
}

// Property: 1F1B never buffers more than GPipe anywhere, both partition
// sums are exact, and in-flight counts are within [1, MicroBatches].
func TestScheduleMemoryProperty(t *testing.T) {
	prop := func(stagesRaw, microRaw uint8) bool {
		stages := int(stagesRaw)%15 + 1
		micro := int(microRaw)%63 + 1
		g := PipelineConfig{Stages: stages, MicroBatches: micro, Schedule: GPipe}
		o := PipelineConfig{Stages: stages, MicroBatches: micro, Schedule: OneFOneB}
		for s := 0; s < stages; s++ {
			gi, oi := g.PeakMicrobatchesInFlight(s), o.PeakMicrobatchesInFlight(s)
			if oi > gi || oi < 1 || gi > micro {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
