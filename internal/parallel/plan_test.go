package parallel

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestTopologyWorldAndString(t *testing.T) {
	topo := Topology{DP: 4, TP: 2, PP: 2}
	if topo.World() != 16 {
		t.Fatalf("world = %d", topo.World())
	}
	if topo.String() != "dp4·tp2·pp2" {
		t.Fatalf("String = %q", topo.String())
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{DP: 2, TP: 2, PP: 2}).Validate(model.OPT13B); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Topology{
		{DP: 0, TP: 1, PP: 1},
		{DP: 1, TP: 3, PP: 1},  // 3 does not divide 40 heads
		{DP: 1, TP: 1, PP: 64}, // more stages than layers
	} {
		if err := bad.Validate(model.OPT13B); err == nil {
			t.Fatalf("accepted %s", bad)
		}
	}
}

func TestPlanMemorySingleRankMatchesZeRO(t *testing.T) {
	topo := Topology{DP: 1, TP: 1, PP: 1}
	plan, err := PlanMemory(model.OPT13B, topo, Stage0, OneFOneB, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 1 {
		t.Fatalf("%d stages", len(plan.Stages))
	}
	wantState, _ := ZeROState(model.OPT13B.Params(), 1, Stage0)
	if got := plan.Stages[0].State.Total(); got != wantState.Total() {
		t.Fatalf("state %d ≠ full-model ZeRO0 %d", got, wantState.Total())
	}
	if plan.Stages[0].Layers != model.OPT13B.Layers {
		t.Fatalf("layers = %d", plan.Stages[0].Layers)
	}
}

func TestPlanMemoryShardsWithTopology(t *testing.T) {
	single, err := PlanMemory(model.OPT13B, Topology{DP: 1, TP: 1, PP: 1}, Stage0, OneFOneB, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := PlanMemory(model.OPT13B, Topology{DP: 4, TP: 2, PP: 2}, Stage3, OneFOneB, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.MaxRankBytes()*4 > single.MaxRankBytes() {
		t.Fatalf("16-way 3D parallel rank %s not well below single rank %s",
			sim.FormatBytes(sharded.MaxRankBytes()), sim.FormatBytes(single.MaxRankBytes()))
	}
}

func TestPlanMemoryEdgeStagesCarryEmbeddings(t *testing.T) {
	plan, err := PlanMemory(model.OPT13B, Topology{DP: 1, TP: 1, PP: 4}, Stage0, GPipe, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All stages hold 10 layers each here; first and last add embeddings.
	if plan.Stages[0].State.Params <= plan.Stages[1].State.Params {
		t.Fatal("first stage should carry embedding parameters")
	}
	if plan.Stages[3].State.Params <= plan.Stages[1].State.Params {
		t.Fatal("last stage should carry LM-head parameters")
	}
}

func TestPlanMemoryGPipeCostsMoreActivationsThan1F1B(t *testing.T) {
	topo := Topology{DP: 1, TP: 1, PP: 4}
	g, err := PlanMemory(model.OPT13B, topo, Stage0, GPipe, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := PlanMemory(model.OPT13B, topo, Stage0, OneFOneB, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stages[0].Activations <= o.Stages[0].Activations {
		t.Fatalf("GPipe %d ≤ 1F1B %d on stage 0 activations",
			g.Stages[0].Activations, o.Stages[0].Activations)
	}
}

func TestPlanMemoryValidation(t *testing.T) {
	if _, err := PlanMemory(model.OPT13B, Topology{DP: 1, TP: 3, PP: 1}, Stage0, GPipe, 4, 0); err == nil {
		t.Fatal("invalid TP degree accepted")
	}
	if _, err := PlanMemory(model.OPT13B, Topology{DP: 1, TP: 1, PP: 1}, Stage0, GPipe, 0, 0); err == nil {
		t.Fatal("zero microbatch accepted")
	}
}

func TestFits(t *testing.T) {
	plan, err := PlanMemory(model.OPT13B, Topology{DP: 4, TP: 2, PP: 2}, Stage3, OneFOneB, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fits(80*sim.GiB, 0.1) {
		t.Fatalf("13B across 16 GPUs needs %s and should fit 72 GiB budget",
			sim.FormatBytes(plan.MaxRankBytes()))
	}
	if plan.Fits(plan.MaxRankBytes(), 0.5) {
		t.Fatal("plan fits a budget half its own demand")
	}
}

func TestPlanMemoryLayerCoverage(t *testing.T) {
	for _, pp := range []int{1, 2, 4} {
		plan, err := PlanMemory(model.GPTNeoX20B, Topology{DP: 1, TP: 1, PP: pp}, Stage0, GPipe, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, s := range plan.Stages {
			total += s.Layers
		}
		if total != model.GPTNeoX20B.Layers {
			t.Fatalf("pp=%d covers %d layers, want %d", pp, total, model.GPTNeoX20B.Layers)
		}
	}
}
