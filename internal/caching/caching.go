// Package caching implements the baseline allocator GMLake is compared
// against: the best-fit-with-coalescing (BFC) caching allocator used by
// PyTorch and TensorFlow (paper §2.2, Figure 2b).
//
// The implementation mirrors PyTorch's CUDACachingAllocator:
//
//  1. Requests are rounded to 512-byte multiples and served from a small
//     pool (requests ≤ 1 MiB, backed by 2 MiB segments) or a large pool.
//  2. Best fit: the smallest cached inactive block that fits is chosen.
//  3. Split: if the chosen block leaves a usable remainder, it is split;
//     the two halves stay linked so they can re-merge.
//  4. Free does not call the driver — the block is marked inactive and
//     coalesced with inactive neighbours inside its segment.
//
// When no cached block fits, a new segment is requested with cudaMalloc;
// on device OOM all completely-free cached segments are released and the
// allocation retried, as PyTorch does.
//
// Splitting is exactly the mechanism the paper blames for fragmentation:
// split remainders scattered across segments cannot serve later large
// requests, so reserved memory keeps growing — the behaviour the Figure 10,
// 11 and 13 baselines exhibit.
package caching

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/cuda"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

// PyTorch CUDACachingAllocator sizing constants.
const (
	// MinBlockSize is the rounding granularity for every request.
	MinBlockSize = 512
	// SmallSize is the largest request served by the small pool.
	SmallSize = 1 * sim.MiB
	// SmallBuffer is the segment size backing the small pool.
	SmallBuffer = 2 * sim.MiB
	// LargeBuffer is the segment size for medium requests (≤ MinLargeAlloc).
	LargeBuffer = 20 * sim.MiB
	// MinLargeAlloc is the threshold above which a request gets its own
	// rounded segment.
	MinLargeAlloc = 10 * sim.MiB
	// RoundLarge is the rounding granularity for large segments.
	RoundLarge = 2 * sim.MiB
)

// Config mirrors the PYTORCH_CUDA_ALLOC_CONF tuning knobs practitioners used
// against fragmentation before VMM-based allocators existed.
type Config struct {
	// MaxSplitSize forbids splitting cached blocks larger than this
	// (max_split_size_mb): big blocks stay intact for big requests instead
	// of being nibbled into pinned remainders. Oversize blocks may still
	// serve a request within OversizeSlack of their size. Zero disables
	// the limit (PyTorch's default).
	MaxSplitSize int64

	// GCThreshold triggers a cache flush when reserved memory exceeds this
	// fraction of device capacity before a new segment is allocated
	// (garbage_collection_threshold). Zero disables.
	GCThreshold float64
}

// OversizeSlack is how much larger than the request an unsplittable block
// may be and still serve it (PyTorch's kLargeBuffer-based rule).
const OversizeSlack = 20 * sim.MiB

// Allocator is the caching allocator.
type Allocator struct {
	driver *cuda.Driver
	cfg    Config
	acct   memalloc.Accounting

	small, large *pool
	segments     map[cuda.DevicePtr]*segment
}

type pool struct {
	isSmall bool
	free    *container.Tree[*block]
}

type segment struct {
	ptr   cuda.DevicePtr
	size  int64
	pool  *pool
	first *block
}

type block struct {
	seg       *segment
	ptr       cuda.DevicePtr
	size      int64
	allocated bool
	prev      *block // address-order neighbours inside the segment
	next      *block
	node      *container.Node[*block] // position in pool.free when inactive
}

// New returns a caching allocator over driver with PyTorch's default
// configuration (unlimited splitting, no GC threshold).
func New(driver *cuda.Driver) *Allocator { return NewWithConfig(driver, Config{}) }

// NewWithConfig returns a caching allocator with tuning knobs set.
func NewWithConfig(driver *cuda.Driver, cfg Config) *Allocator {
	return &Allocator{
		driver:   driver,
		cfg:      cfg,
		small:    newPool(true),
		large:    newPool(false),
		segments: make(map[cuda.DevicePtr]*segment),
	}
}

func newPool(isSmall bool) *pool {
	return &pool{
		isSmall: isSmall,
		free: container.NewTree[*block](func(a, b *block) bool {
			if a.size != b.size {
				return a.size < b.size
			}
			return a.ptr < b.ptr
		}),
	}
}

// Name implements memalloc.Allocator.
func (a *Allocator) Name() string { return "caching" }

// Stats implements memalloc.Allocator.
func (a *Allocator) Stats() memalloc.Stats { return a.acct.Stats() }

// ResetPeaks restarts peak tracking from current levels.
func (a *Allocator) ResetPeaks() { a.acct.ResetPeaks() }

// RoundSize returns the block size a request of size bytes occupies.
func RoundSize(size int64) int64 {
	if size < MinBlockSize {
		return MinBlockSize
	}
	return sim.RoundUp(size, MinBlockSize)
}

// allocationSize returns the segment size cudaMalloc'd for a request that
// missed the cache.
func allocationSize(size int64) int64 {
	switch {
	case size <= SmallSize:
		return SmallBuffer
	case size < MinLargeAlloc:
		return LargeBuffer
	default:
		return sim.RoundUp(size, RoundLarge)
	}
}

func (a *Allocator) poolFor(size int64) *pool {
	if size <= SmallSize {
		return a.small
	}
	return a.large
}

// Alloc implements memalloc.Allocator: best fit, then split (paper Figure 2b
// steps 1 and 2).
func (a *Allocator) Alloc(size int64) (*memalloc.Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("caching: Alloc(%d)", size)
	}
	a.driver.Clock().Advance(a.driver.Cost().HostOp())

	rounded := RoundSize(size)
	p := a.poolFor(rounded)

	blk := a.findBestFit(p, rounded)
	if blk == nil {
		var err error
		blk, err = a.allocSegment(p, rounded)
		if err != nil {
			return nil, err
		}
	}
	blk = a.maybeSplit(p, blk, rounded)
	blk.allocated = true
	a.acct.OnAlloc(blk.size)

	buf := &memalloc.Buffer{Ptr: blk.ptr, Requested: size, BlockSize: blk.size}
	buf.SetImpl(blk)
	return buf, nil
}

// findBestFit removes and returns the smallest inactive block that fits, or
// nil. With MaxSplitSize set, an unsplittable (oversize) block is usable
// only when it exceeds the request by at most OversizeSlack; larger
// candidates would be wasted whole, so the search reports a miss instead
// (PyTorch's rule).
func (a *Allocator) findBestFit(p *pool, size int64) *block {
	n := p.free.Ceil(&block{size: size})
	if n == nil {
		return nil
	}
	blk := n.Value
	if a.cfg.MaxSplitSize > 0 && !p.isSmall &&
		blk.size > a.cfg.MaxSplitSize && blk.size-size > OversizeSlack {
		return nil
	}
	p.free.Delete(n)
	blk.node = nil
	return blk
}

// allocSegment cudaMallocs a fresh segment sized for the request; on device
// OOM it releases all cached free segments and retries once. With a GC
// threshold configured, the cache is flushed proactively once reserved
// memory crosses the threshold fraction of device capacity.
func (a *Allocator) allocSegment(p *pool, size int64) (*block, error) {
	segSize := allocationSize(size)
	if a.cfg.GCThreshold > 0 {
		_, total := a.driver.MemGetInfo()
		if float64(a.acct.Stats().Reserved+segSize) > a.cfg.GCThreshold*float64(total) {
			a.releaseCachedSegments()
		}
	}
	ptr, err := a.driver.Malloc(segSize)
	if err != nil {
		if a.releaseCachedSegments() == 0 {
			return nil, fmt.Errorf("caching: %w", err)
		}
		ptr, err = a.driver.Malloc(segSize)
		if err != nil {
			return nil, fmt.Errorf("caching: %w", err)
		}
	}
	seg := &segment{ptr: ptr, size: segSize, pool: p}
	blk := &block{seg: seg, ptr: ptr, size: segSize}
	seg.first = blk
	a.segments[ptr] = seg
	a.acct.OnReserve(segSize)
	return blk, nil
}

// splitRemainder is the smallest usable split remainder per pool: 512 B for
// the small pool, 1 MiB for the large pool (PyTorch's should_split rule).
func splitRemainder(p *pool) int64 {
	if p.isSmall {
		return MinBlockSize
	}
	return SmallSize
}

// maybeSplit splits blk if the remainder after carving size bytes is usable,
// returning the block to hand out (paper Figure 2b step 2). Blocks above
// MaxSplitSize are handed out whole.
func (a *Allocator) maybeSplit(p *pool, blk *block, size int64) *block {
	remaining := blk.size - size
	if remaining < splitRemainder(p) {
		return blk
	}
	if a.cfg.MaxSplitSize > 0 && !p.isSmall && blk.size > a.cfg.MaxSplitSize {
		return blk
	}
	rest := &block{
		seg:  blk.seg,
		ptr:  blk.ptr + cuda.DevicePtr(size),
		size: remaining,
		prev: blk,
		next: blk.next,
	}
	if blk.next != nil {
		blk.next.prev = rest
	}
	blk.next = rest
	blk.size = size
	rest.node = p.free.Insert(rest)
	return blk
}

// Free implements memalloc.Allocator: mark inactive and merge with inactive
// neighbours (paper Figure 2b steps 3 and 4). The driver is never called.
func (a *Allocator) Free(buf *memalloc.Buffer) {
	blk, ok := buf.Impl().(*block)
	if !ok || blk == nil {
		panic("caching: Free of buffer not owned by this allocator")
	}
	if !blk.allocated {
		panic("caching: double Free")
	}
	a.driver.Clock().Advance(a.driver.Cost().HostOp())
	a.acct.OnFree(blk.size)
	blk.allocated = false
	buf.SetImpl(nil)

	p := blk.seg.pool
	// Merge right then left; the merged block keeps the leftmost identity.
	if nb := blk.next; nb != nil && !nb.allocated {
		p.free.Delete(nb.node)
		blk.size += nb.size
		blk.next = nb.next
		if nb.next != nil {
			nb.next.prev = blk
		}
	}
	if pb := blk.prev; pb != nil && !pb.allocated {
		p.free.Delete(pb.node)
		pb.size += blk.size
		pb.next = blk.next
		if blk.next != nil {
			blk.next.prev = pb
		}
		blk = pb
	}
	blk.node = p.free.Insert(blk)
}

// EmptyCache implements memalloc.Allocator.
func (a *Allocator) EmptyCache() { a.releaseCachedSegments() }

// releaseCachedSegments cudaFrees every segment whose whole span is a single
// inactive block, returning the number of segments released.
func (a *Allocator) releaseCachedSegments() int {
	released := 0
	for ptr, seg := range a.segments {
		blk := seg.first
		if blk.allocated || blk.next != nil {
			continue
		}
		seg.pool.free.Delete(blk.node)
		if err := a.driver.Free(seg.ptr); err != nil {
			panic("caching: releasing cached segment: " + err.Error())
		}
		a.acct.OnRelease(seg.size)
		delete(a.segments, ptr)
		released++
	}
	return released
}

// SegmentCount reports live segments (diagnostics).
func (a *Allocator) SegmentCount() int { return len(a.segments) }

// FreeBlockCount reports cached inactive blocks across both pools
// (diagnostics; a growing count under an irregular workload is the
// fragmentation the paper describes).
func (a *Allocator) FreeBlockCount() int {
	return a.small.free.Len() + a.large.free.Len()
}

// FreeBlockSizes returns the size of every cached inactive block, ascending
// per pool; fragstat consumes it for fragmentation indices.
func (a *Allocator) FreeBlockSizes() []int64 {
	out := make([]int64, 0, a.FreeBlockCount())
	for _, p := range []*pool{a.small, a.large} {
		p.free.Ascend(func(n *container.Node[*block]) bool {
			out = append(out, n.Value.size)
			return true
		})
	}
	return out
}

// CheckInvariants validates internal consistency; tests call it after
// workloads. It verifies that every segment's block chain tiles the segment
// exactly, that inactive blocks are indexed in their pool's free tree, and
// that no two inactive neighbours remain unmerged.
func (a *Allocator) CheckInvariants() error {
	for _, seg := range a.segments {
		var total int64
		prevInactive := false
		for blk := seg.first; blk != nil; blk = blk.next {
			if blk.seg != seg {
				return fmt.Errorf("caching: block segment pointer mismatch")
			}
			if blk.ptr != seg.ptr+cuda.DevicePtr(total) {
				return fmt.Errorf("caching: block chain has a gap at %#x", uint64(blk.ptr))
			}
			if blk.next != nil && blk.next.prev != blk {
				return fmt.Errorf("caching: broken block chain links")
			}
			if !blk.allocated {
				if prevInactive {
					return fmt.Errorf("caching: adjacent inactive blocks not merged")
				}
				if blk.node == nil {
					return fmt.Errorf("caching: inactive block missing from free tree")
				}
				prevInactive = true
			} else {
				prevInactive = false
			}
			total += blk.size
		}
		if total != seg.size {
			return fmt.Errorf("caching: segment tiles %d of %d bytes", total, seg.size)
		}
	}
	return nil
}
