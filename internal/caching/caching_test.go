package caching

import (
	"errors"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func newTestAllocator(capacity int64) (*Allocator, *cuda.Driver) {
	dev := gpu.NewDevice("test", capacity)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	return New(drv), drv
}

func TestRoundSize(t *testing.T) {
	tests := []struct{ in, want int64 }{
		{1, 512},
		{511, 512},
		{512, 512},
		{513, 1024},
		{sim.MiB, sim.MiB},
	}
	for _, tt := range tests {
		if got := RoundSize(tt.in); got != tt.want {
			t.Errorf("RoundSize(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestAllocationSize(t *testing.T) {
	tests := []struct{ in, want int64 }{
		{512, SmallBuffer},
		{SmallSize, SmallBuffer},
		{SmallSize + 512, LargeBuffer},
		{MinLargeAlloc - 512, LargeBuffer},
		{MinLargeAlloc, MinLargeAlloc},
		{MinLargeAlloc + 1, MinLargeAlloc + RoundLarge},
		{100 * sim.MiB, 100 * sim.MiB},
		{101 * sim.MiB, 102 * sim.MiB},
	}
	for _, tt := range tests {
		if got := allocationSize(tt.in); got != tt.want {
			t.Errorf("allocationSize(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestAllocFreeReuse(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b1, err := a.Alloc(100 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	mallocsAfterFirst := drv.Counters().Malloc
	a.Free(b1)
	// Same-size realloc must hit the cache: no new cudaMalloc.
	b2, err := a.Alloc(100 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if drv.Counters().Malloc != mallocsAfterFirst {
		t.Fatalf("cache miss on same-size realloc: %d mallocs", drv.Counters().Malloc)
	}
	if b2.Ptr != b1.Ptr {
		t.Fatalf("reused block at %#x, want %#x", uint64(b2.Ptr), uint64(b1.Ptr))
	}
	a.Free(b2)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	big, err := a.Alloc(100 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(big)
	// Allocate a smaller tensor: best fit splits the 100 MiB block.
	small1, err := a.Alloc(30 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if small1.Ptr != big.Ptr {
		t.Fatal("split should reuse the cached block's front")
	}
	if a.FreeBlockCount() != 1 {
		t.Fatalf("FreeBlockCount = %d, want 1 (the split remainder)", a.FreeBlockCount())
	}
	small2, err := a.Alloc(70 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if small2.Ptr != big.Ptr+cuda.DevicePtr(30*sim.MiB) {
		t.Fatal("second allocation should use the split remainder")
	}
	// Free both: they must coalesce back into one 100 MiB block.
	a.Free(small1)
	a.Free(small2)
	if a.FreeBlockCount() != 1 {
		t.Fatalf("FreeBlockCount = %d, want 1 after coalescing", a.FreeBlockCount())
	}
	again, err := a.Alloc(100 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if again.Ptr != big.Ptr {
		t.Fatal("coalesced block not reusable at original address")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallPoolSegmentSharing(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	// Many small tensors should share 2 MiB segments.
	var bufs []*memalloc.Buffer
	for i := 0; i < 100; i++ {
		b, err := a.Alloc(10 * sim.KiB)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	// 100 * 10 KiB = ~1 MiB; one 2 MiB segment must be enough.
	if got := drv.Counters().Malloc; got != 1 {
		t.Fatalf("small pool used %d segments, want 1", got)
	}
	for _, b := range bufs {
		a.Free(b)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeDoesNotCallDriver(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b, _ := a.Alloc(50 * sim.MiB)
	frees := drv.Counters().Free
	a.Free(b)
	if drv.Counters().Free != frees {
		t.Fatal("Free invoked cudaFree; caching allocator must not")
	}
	st := a.Stats()
	if st.Active != 0 {
		t.Fatalf("Active = %d after free", st.Active)
	}
	if st.Reserved == 0 {
		t.Fatal("Reserved dropped to 0; cache should retain the segment")
	}
}

func TestEmptyCache(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b, _ := a.Alloc(50 * sim.MiB)
	a.Free(b)
	a.EmptyCache()
	if st := a.Stats(); st.Reserved != 0 {
		t.Fatalf("Reserved = %d after EmptyCache", st.Reserved)
	}
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatalf("device not fully free after EmptyCache: %d/%d", free, total)
	}
	if a.SegmentCount() != 0 {
		t.Fatalf("SegmentCount = %d", a.SegmentCount())
	}
}

func TestEmptyCacheKeepsPartialSegments(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b1, _ := a.Alloc(8 * sim.MiB) // 20 MiB segment, split
	a.EmptyCache()
	if a.SegmentCount() != 1 {
		t.Fatal("EmptyCache released a segment with a live block")
	}
	a.Free(b1)
	a.EmptyCache()
	if a.SegmentCount() != 0 {
		t.Fatal("EmptyCache kept a fully-free segment")
	}
}

func TestOOMRetryAfterCacheFlush(t *testing.T) {
	a, _ := newTestAllocator(100 * sim.MiB)
	b, err := a.Alloc(60 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(b)
	// Cache now holds 60 MiB; a 90 MiB request cannot fit alongside it but
	// must succeed after the allocator flushes its cache.
	b2, err := a.Alloc(90 * sim.MiB)
	if err != nil {
		t.Fatalf("Alloc after flushable cache failed: %v", err)
	}
	a.Free(b2)
}

func TestHardOOM(t *testing.T) {
	a, _ := newTestAllocator(100 * sim.MiB)
	b, err := a.Alloc(80 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(80 * sim.MiB); !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	a.Free(b)
}

func TestFragmentationScenario(t *testing.T) {
	// The paper's Figure 1 scenario: split remainders too small for a new
	// request force reserved memory to grow even though total free bytes
	// would suffice.
	a, _ := newTestAllocator(10 * sim.GiB)
	var keep, junk []*memalloc.Buffer
	// Interleave long-lived and short-lived blocks inside shared segments.
	for i := 0; i < 32; i++ {
		b1, err := a.Alloc(96 * sim.MiB)
		if err != nil {
			t.Fatal(err)
		}
		junk = append(junk, b1)
		b2, err := a.Alloc(32 * sim.MiB)
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, b2)
	}
	for _, b := range junk {
		a.Free(b)
	}
	st := a.Stats()
	freeBytes := st.Reserved - st.Active
	if freeBytes < 32*96*sim.MiB {
		t.Fatalf("expected ≥ %d cached free bytes, got %d", 32*96*sim.MiB, freeBytes)
	}
	// Allocate blocks bigger than any single cached fragment: reserved must
	// grow despite ample free bytes — that is fragmentation.
	reservedBefore := st.Reserved
	b, err := a.Alloc(200 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Reserved; got <= reservedBefore {
		t.Fatalf("reserved did not grow (%d -> %d); expected fragmentation", reservedBefore, got)
	}
	a.Free(b)
	for _, bf := range keep {
		a.Free(bf)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b, _ := a.Alloc(sim.MiB)
	a.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double Free did not panic")
		}
	}()
	a.Free(b)
}

func TestStatsAccounting(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b1, _ := a.Alloc(30 * sim.MiB)
	b2, _ := a.Alloc(10 * sim.MiB)
	st := a.Stats()
	if st.AllocCount != 2 || st.FreeCount != 0 {
		t.Fatalf("counts = %d/%d", st.AllocCount, st.FreeCount)
	}
	if st.Active < 40*sim.MiB {
		t.Fatalf("Active = %d, want >= 40 MiB", st.Active)
	}
	if st.Reserved < st.Active {
		t.Fatal("Reserved < Active")
	}
	a.Free(b1)
	a.Free(b2)
	st = a.Stats()
	if st.Active != 0 {
		t.Fatalf("Active = %d after freeing all", st.Active)
	}
	if st.PeakActive < 40*sim.MiB {
		t.Fatalf("PeakActive = %d", st.PeakActive)
	}
	if u := st.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("Utilization = %v", u)
	}
}

// TestRandomWorkloadInvariants drives a random alloc/free mix and validates
// structural invariants plus leak-freedom at the end.
func TestRandomWorkloadInvariants(t *testing.T) {
	a, drv := newTestAllocator(4 * sim.GiB)
	rng := sim.NewRNG(2024)
	var live []*memalloc.Buffer
	for step := 0; step < 4000; step++ {
		if rng.Float64() < 0.55 {
			// Mix small and large requests across three magnitudes.
			var size int64
			switch rng.Intn(3) {
			case 0:
				size = int64(rng.Intn(1024) + 1)
			case 1:
				size = int64(rng.Intn(int(4*sim.MiB)) + 1)
			default:
				size = int64(rng.Intn(int(64*sim.MiB)) + 1)
			}
			b, err := a.Alloc(size)
			if err != nil {
				continue
			}
			live = append(live, b)
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			a.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if step%500 == 0 {
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	for _, b := range live {
		a.Free(b)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Active != 0 {
		t.Fatalf("leaked %d active bytes", st.Active)
	}
	a.EmptyCache()
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatalf("device leak: %d of %d free", free, total)
	}
}

func TestNameResetPeaksAndFreeSizes(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	if a.Name() != "caching" {
		t.Fatalf("Name = %q", a.Name())
	}
	b1, _ := a.Alloc(16 * sim.MiB)
	b2, _ := a.Alloc(8 * sim.MiB)
	a.Free(b2)

	sizes := a.FreeBlockSizes()
	if len(sizes) == 0 {
		t.Fatal("no free block sizes after a free")
	}
	var total int64
	for _, s := range sizes {
		if s <= 0 {
			t.Fatalf("non-positive free size %d", s)
		}
		total += s
	}
	st := a.Stats()
	if total != st.Reserved-st.Active {
		t.Fatalf("free sizes sum %d != reserved-active %d", total, st.Reserved-st.Active)
	}

	a.ResetPeaks()
	st = a.Stats()
	if st.PeakActive != st.Active || st.PeakReserved != st.Reserved {
		t.Fatal("ResetPeaks did not restart peaks")
	}
	a.Free(b1)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
