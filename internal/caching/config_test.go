package caching

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func newTunedAllocator(capacity int64, cfg Config) (*Allocator, *cuda.Driver) {
	dev := gpu.NewDevice("test", capacity)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	return NewWithConfig(drv, cfg), drv
}

func TestMaxSplitSizePreservesBigBlocks(t *testing.T) {
	a, _ := newTunedAllocator(sim.GiB, Config{MaxSplitSize: 128 * sim.MiB})
	big, err := a.Alloc(400 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(big)
	// A small request must NOT nibble the cached 400 MiB block: it gets its
	// own segment instead, and the 400 MiB block stays whole.
	small, err := a.Alloc(30 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if small.Ptr == big.Ptr {
		t.Fatal("small request was served from the oversize block")
	}
	// The intact big block still serves a same-size request.
	big2, err := a.Alloc(400 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if big2.Ptr != big.Ptr {
		t.Fatal("oversize block not reused whole")
	}
	a.Free(small)
	a.Free(big2)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSplitSizeOversizeSlack(t *testing.T) {
	a, _ := newTunedAllocator(sim.GiB, Config{MaxSplitSize: 128 * sim.MiB})
	big, _ := a.Alloc(400 * sim.MiB)
	a.Free(big)
	// Within the slack: the oversize block serves the request whole.
	b, err := a.Alloc(390 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if b.Ptr != big.Ptr {
		t.Fatal("request within slack not served by the oversize block")
	}
	if b.BlockSize != 400*sim.MiB {
		t.Fatalf("BlockSize = %d, want whole 400 MiB (no split)", b.BlockSize)
	}
	a.Free(b)
}

func TestMaxSplitStillSplitsSmallBlocks(t *testing.T) {
	a, _ := newTunedAllocator(sim.GiB, Config{MaxSplitSize: 128 * sim.MiB})
	med, _ := a.Alloc(100 * sim.MiB) // below the limit: splittable
	a.Free(med)
	s, err := a.Alloc(40 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ptr != med.Ptr || s.BlockSize != 40*sim.MiB {
		t.Fatal("sub-limit block should still split")
	}
	a.Free(s)
}

func TestGCThresholdFlushesProactively(t *testing.T) {
	a, drv := newTunedAllocator(sim.GiB, Config{GCThreshold: 0.5})
	// Fill the cache to ~60% of the device, all free.
	var bufs []*memalloc.Buffer
	for i := 0; i < 6; i++ {
		b, err := a.Alloc(100 * sim.MiB)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		a.Free(b)
	}
	if got := a.Stats().Reserved; got != 600*sim.MiB {
		t.Fatalf("Reserved = %d", got)
	}
	// A request needing a new segment crosses the 50% threshold: the cache
	// must be flushed first, dropping reserved to just the new segment.
	frees := drv.Counters().Free
	b, err := a.Alloc(200 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if drv.Counters().Free == frees {
		t.Fatal("GC threshold did not flush the cache")
	}
	if got := a.Stats().Reserved; got != 200*sim.MiB {
		t.Fatalf("Reserved = %d after GC, want 200 MiB", got)
	}
	a.Free(b)
}
