package runner

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestCollectJoinsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		out, err := Collect(workers, 100, func(i int) int { return i * i })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestDoRunsEveryJobExactlyOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int64
	if err := Do(8, n, func(i int) { counts[i].Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
}

// TestPanicSurfacesWithoutWedgingPool: a panicking job must not deadlock or
// starve the pool — every other job still runs, and the panic comes back as
// a typed error naming the job.
func TestPanicSurfacesWithoutWedgingPool(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := Do(workers, n, func(i int) {
			if i == 17 {
				panic("cell exploded")
			}
			ran.Add(1)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 17 {
			t.Fatalf("workers=%d: panic index %d, want 17", workers, pe.Index)
		}
		if pe.Value != "cell exploded" {
			t.Fatalf("workers=%d: panic value %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "job 17") {
			t.Fatalf("workers=%d: capture incomplete: %v", workers, pe)
		}
		if got := ran.Load(); got != n-1 {
			t.Fatalf("workers=%d: %d of %d healthy jobs ran", workers, got, n-1)
		}
	}
}

// TestLowestIndexPanicWins: with several panicking jobs the reported one is
// the lowest index, so failures are deterministic under any scheduling.
func TestLowestIndexPanicWins(t *testing.T) {
	err := Do(8, 32, func(i int) {
		if i%2 == 1 {
			panic(i)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if pe.Index != 1 {
		t.Fatalf("reported index %d, want 1", pe.Index)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d, want GOMAXPROCS", got)
	}
}

func TestDoZeroJobs(t *testing.T) {
	if err := Do(4, 0, func(int) { t.Fatal("job ran") }); err != nil {
		t.Fatal(err)
	}
}

// TestCollectReturnsPartialResultsOnPanic: healthy jobs' results survive a
// sibling's panic.
func TestCollectReturnsPartialResultsOnPanic(t *testing.T) {
	out, err := Collect(4, 8, func(i int) int {
		if i == 3 {
			panic("boom")
		}
		return i + 1
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	for i, v := range out {
		if i == 3 {
			if v != 0 {
				t.Fatalf("panicked slot holds %d", v)
			}
			continue
		}
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
