// Package runner is a deterministic parallel job engine: jobs are indexed
// closures, a bounded worker pool executes them, and results are joined by
// index so the assembled output never depends on goroutine scheduling.
//
// The harness uses it to run experiment cells — each cell builds its own
// fully isolated rig (device, virtual clock, driver, allocator), so cells
// are embarrassingly parallel and the only discipline required is the one
// this package enforces: fixed-order join, bounded workers, and per-job
// panic capture so one bad cell can never wedge the pool.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError reports a panic inside one job, identified by its index. When
// several jobs panic, Do returns the lowest-index one, so the surfaced
// failure is deterministic regardless of scheduling.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Index, e.Value)
}

// Workers resolves a parallelism setting: n > 0 is taken as-is, anything
// else means GOMAXPROCS (use every processor the runtime may schedule on).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(0) … fn(n-1) on at most Workers(workers) goroutines and waits
// for all of them. Every job runs exactly once even when other jobs panic:
// a panic is captured with its stack, the worker moves on, and after the
// join the lowest-index capture is returned as a *PanicError. The caller's
// goroutine executes jobs too when workers == 1, keeping the sequential
// path allocation-free and easy to step through.
func Do(workers, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	var (
		mu    sync.Mutex
		first *PanicError
	)
	record := func(i int) {
		if v := recover(); v != nil {
			pe := &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			mu.Lock()
			if first == nil || pe.Index < first.Index {
				first = pe
			}
			mu.Unlock()
		}
	}
	job := func(i int) {
		defer record(i)
		fn(i)
	}

	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					job(i)
				}
			}()
		}
		wg.Wait()
	}

	if first != nil {
		return first
	}
	return nil
}

// Collect runs fn for every index on the pool and returns the results
// joined by index: out[i] is fn(i)'s return value, whatever order the jobs
// actually ran in. On a panic the partial results are returned alongside
// the *PanicError (the panicked indexes hold zero values).
func Collect[R any](workers, n int, fn func(i int) R) ([]R, error) {
	out := make([]R, n)
	err := Do(workers, n, func(i int) { out[i] = fn(i) })
	return out, err
}
