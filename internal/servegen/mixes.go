package servegen

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// The predefined mixes keep prompt+output below 896 tokens so every request
// fits the serving substrate's 1024-token pad-to-max baseline; the contrast
// between policies then comes from traffic shape, not from unservable
// requests.

// ChatHeavy returns a mix dominated by interactive chat: lognormal
// long-tailed lengths on a steady Poisson base, with a small API tenant and
// a trickle of batch summarization.
func ChatHeavy() Mix {
	return Mix{
		Name: "chat-heavy",
		Rate: 5,
		Classes: []ClientClass{
			{
				Name: "chat", SLO: SLOInteractive, Share: 0.70,
				Arrival: Poisson(),
				Prompt:  Lognormal(120, 1.0, 8, 512),
				Output:  Lognormal(120, 0.8, 4, 384),
			},
			{
				Name: "assistant-api", SLO: SLOStandard, Share: 0.20,
				Arrival: Bursty(2.5),
				Prompt:  Uniform(32, 256),
				Output:  Uniform(16, 192),
			},
			{
				Name: "batch-summarize", SLO: SLOBatch, Share: 0.10,
				Arrival: OnOff(0.25, 20*time.Second),
				Prompt:  Uniform(256, 512),
				Output:  Deterministic(64),
			},
		},
	}
}

// BatchHeavy returns a throughput-oriented mix: long deterministic-ish
// offline jobs arriving in waves, with a minority interactive tenant riding
// on top.
func BatchHeavy() Mix {
	return Mix{
		Name: "batch-heavy",
		Rate: 3,
		Classes: []ClientClass{
			{
				Name: "batch-eval", SLO: SLOBatch, Share: 0.60,
				Arrival: OnOff(0.3, 30*time.Second),
				Prompt:  Uniform(320, 512),
				Output:  Deterministic(96),
			},
			{
				Name: "batch-embed", SLO: SLOBatch, Share: 0.25,
				Arrival: Poisson(),
				Prompt:  Deterministic(384),
				Output:  Deterministic(8),
			},
			{
				Name: "chat", SLO: SLOInteractive, Share: 0.15,
				Arrival: Poisson(),
				Prompt:  Lognormal(96, 1.0, 8, 384),
				Output:  Lognormal(96, 0.8, 4, 256),
			},
		},
	}
}

// MixedBursty returns the stress mix: steady chat, a strongly bursty agent
// tenant (Gamma interarrivals, CV 4) and on-off batch backfill — the
// heterogeneous traffic that exposes per-SLO latency differences between
// KV-cache policies.
func MixedBursty() Mix {
	return Mix{
		Name: "mixed-bursty",
		Rate: 4,
		Classes: []ClientClass{
			{
				Name: "chat", SLO: SLOInteractive, Share: 0.45,
				Arrival: Poisson(),
				Prompt:  Lognormal(120, 1.0, 8, 512),
				Output:  Lognormal(100, 0.8, 4, 320),
			},
			{
				Name: "agent", SLO: SLOInteractive, Share: 0.25,
				Arrival: Bursty(4),
				Prompt:  Lognormal(200, 1.2, 16, 512),
				Output:  Lognormal(80, 1.0, 4, 256),
			},
			{
				Name: "batch-backfill", SLO: SLOBatch, Share: 0.30,
				Arrival: OnOff(0.2, 15*time.Second),
				Prompt:  Uniform(128, 512),
				Output:  Uniform(32, 128),
			},
		},
	}
}

// mixAliases maps configuration-string names (serve_mix:<name>) to
// constructors. "chat+batch" is the ServeGen-style shorthand for the mixed
// bursty workload.
var mixAliases = map[string]func() Mix{
	"chat":          ChatHeavy,
	"chat-heavy":    ChatHeavy,
	"batch":         BatchHeavy,
	"batch-heavy":   BatchHeavy,
	"mixed":         MixedBursty,
	"mixed-bursty":  MixedBursty,
	"chat+batch":    MixedBursty,
	"sessions":      ChatSessions,
	"chat-sessions": ChatSessions,
}

// MixNames returns the accepted serve_mix names, sorted.
func MixNames() []string {
	names := make([]string, 0, len(mixAliases))
	for name := range mixAliases {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MixByName resolves a configuration-string mix name.
func MixByName(name string) (Mix, error) {
	if mk, ok := mixAliases[strings.TrimSpace(name)]; ok {
		return mk(), nil
	}
	return Mix{}, fmt.Errorf("servegen: unknown mix %q (have %s)",
		name, strings.Join(MixNames(), ", "))
}

// Mixes returns the three canonical mixes the harness compares.
func Mixes() []Mix { return []Mix{ChatHeavy(), BatchHeavy(), MixedBursty()} }
