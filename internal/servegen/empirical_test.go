package servegen

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestEmpiricalSingleSample: a 1-sample distribution always returns that
// sample, whatever the seed.
func TestEmpiricalSingleSample(t *testing.T) {
	d := Empirical([]int{137}, 0, 0)
	if err := d.validate("test"); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed < 4; seed++ {
		rng := sim.NewRNG(seed)
		for i := 0; i < 50; i++ {
			if v := d.sample(rng); v != 137 {
				t.Fatalf("seed %d draw %d: got %d, want 137", seed, i, v)
			}
		}
	}
	if m := d.MeanTokens(); m != 137 {
		t.Fatalf("MeanTokens = %g, want 137", m)
	}
}

// TestEmpiricalAllIdentical: identical samples collapse to a deterministic
// draw even though the CDF has many (tied) support points.
func TestEmpiricalAllIdentical(t *testing.T) {
	d := Empirical([]int{64, 64, 64, 64}, 0, 0)
	rng := sim.NewRNG(9)
	for i := 0; i < 100; i++ {
		if v := d.sample(rng); v != 64 {
			t.Fatalf("draw %d: got %d, want 64", i, v)
		}
	}
}

// TestEmpiricalClamping: nonzero Min/Max clamp draws from below/above, and a
// zero bound leaves that side open.
func TestEmpiricalClamping(t *testing.T) {
	samples := []int{1, 10, 100, 1000}
	d := Empirical(samples, 8, 256)
	rng := sim.NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 400; i++ {
		v := d.sample(rng)
		if v < 8 || v > 256 {
			t.Fatalf("draw %d: %d outside clamp [8,256]", i, v)
		}
		seen[v] = true
	}
	// 1 clamps up to 8, 1000 down to 256; 10 and 100 pass through.
	for _, want := range []int{8, 10, 100, 256} {
		if !seen[want] {
			t.Errorf("clamped support misses %d (saw %v)", want, seen)
		}
	}
	lo := Empirical(samples, 0, 50) // only an upper clamp
	rng = sim.NewRNG(3)
	for i := 0; i < 100; i++ {
		if v := lo.sample(rng); v > 50 {
			t.Fatalf("upper-only clamp leaked %d", v)
		}
	}
}

// TestEmpiricalDeterministicTieBreaking: the same seed draws the same
// sequence, and permuting the input samples changes nothing — Empirical
// sorts its copy, so ties and duplicates resolve identically.
func TestEmpiricalDeterministicTieBreaking(t *testing.T) {
	a := Empirical([]int{5, 9, 5, 2, 9, 9}, 0, 0)
	b := Empirical([]int{9, 2, 9, 5, 9, 5}, 0, 0)
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatalf("sorted samples differ: %v vs %v", a.Samples, b.Samples)
	}
	draw := func(d LengthDist) []int {
		rng := sim.NewRNG(42)
		out := make([]int, 200)
		for i := range out {
			out[i] = d.sample(rng)
		}
		return out
	}
	if !reflect.DeepEqual(draw(a), draw(b)) {
		t.Fatal("permuted sample input changed the draw sequence")
	}
	if !reflect.DeepEqual(draw(a), draw(a)) {
		t.Fatal("same seed drew different sequences")
	}
}

// TestEmpiricalValidate rejects empty and non-positive samples and inverted
// clamps.
func TestEmpiricalValidate(t *testing.T) {
	cases := []LengthDist{
		{Kind: DistEmpirical},
		Empirical([]int{0}, 0, 0),
		Empirical([]int{-3, 5}, 0, 0),
		Empirical([]int{5}, 10, 4),
	}
	for i, d := range cases {
		if err := d.validate("test"); err == nil {
			t.Errorf("case %d (%+v): validate accepted", i, d)
		}
	}
}

// TestTraceArrivalsReplay: recorded offsets replay rescaled so the looped
// long-run rate hits the target, loop with a constant period, and consume
// no randomness.
func TestTraceArrivalsReplay(t *testing.T) {
	rec := []float64{1, 2, 4, 8}
	p := TraceArrivals(rec)
	if err := p.validate("test"); err != nil {
		t.Fatal(err)
	}
	// Loop period = span + mean gap = 8 + 8/3; the rescale delivers n0=4
	// arrivals per scaled period, so at rate 1 the scale is 4/period.
	period := 8 + 8.0/3
	scale := 4 / period
	got := p.arrivals(sim.NewRNG(7), 1, 4)
	for i, at := range rec {
		if diff := got[i] - at*scale; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("arrival %d = %g, want %g", i, got[i], at*scale)
		}
	}
	// Looping: one full pass per period·scale = 4 seconds at rate 1 — the
	// long-run rate is exactly the target.
	got = p.arrivals(sim.NewRNG(7), 1, 6)
	for i, want := range []float64{1 * scale, 2 * scale, 4 * scale, 8 * scale,
		(1 + period) * scale, (2 + period) * scale} {
		if diff := got[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("looped arrival %d = %g, want %g", i, got[i], want)
		}
	}
	if adv := got[4] - got[0]; adv < 4-1e-9 || adv > 4+1e-9 {
		t.Fatalf("loop advances %g per pass, want 4s (rate 1, 4 arrivals)", adv)
	}
	// Determinism without randomness: two different seeds, same output.
	a := p.arrivals(sim.NewRNG(1), 2, 10)
	b := p.arrivals(sim.NewRNG(999), 2, 10)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("trace arrivals consumed randomness")
	}
	// Out-of-order and empty recordings are rejected.
	if err := TraceArrivals(nil).validate("test"); err == nil {
		t.Error("empty trace arrivals accepted")
	}
	if err := TraceArrivals([]float64{3, 1}).validate("test"); err == nil {
		t.Error("out-of-order trace arrivals accepted")
	}
}
