package servegen

import (
	"reflect"
	"testing"
	"time"
)

// TestSessionGenerateDeterministic: the session mix is a pure function of
// (mix, n, seed) like every other mix.
func TestSessionGenerateDeterministic(t *testing.T) {
	a, err := ChatSessions().Generate(150, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChatSessions().Generate(150, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different session streams")
	}
	c, err := ChatSessions().Generate(150, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical session streams")
	}
}

// TestSessionStreamShape checks the generated conversations turn by turn:
// contiguous turn numbers from 0, strictly increasing arrivals within a
// session, prompts that grow by at least the prior output until the cap,
// and session identity confined to the session class.
func TestSessionStreamShape(t *testing.T) {
	mix := ChatSessions()
	cap := mix.Classes[0].Sessions.MaxPrompt
	reqs, err := mix.Generate(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	type turn struct {
		at             time.Duration
		prompt, output int
	}
	bySession := map[string][]turn{}
	var sawSession, sawOneShot bool
	for _, r := range reqs {
		if r.SessionID == "" {
			sawOneShot = true
			if r.Turn != 0 {
				t.Fatalf("one-shot request %d has turn %d", r.ID, r.Turn)
			}
			if r.Class != "batch-backfill" {
				t.Fatalf("sessionless request from session class %q", r.Class)
			}
			continue
		}
		sawSession = true
		if r.Class != "chat-turns" {
			t.Fatalf("session request from one-shot class %q", r.Class)
		}
		if r.Turn != len(bySession[r.SessionID]) {
			t.Fatalf("session %s: turn %d out of order (have %d turns)",
				r.SessionID, r.Turn, len(bySession[r.SessionID]))
		}
		bySession[r.SessionID] = append(bySession[r.SessionID], turn{r.ArrivalAt, r.PromptLen, r.OutputLen})
	}
	if !sawSession || !sawOneShot {
		t.Fatalf("mix did not produce both tenants: sessions=%v one-shots=%v", sawSession, sawOneShot)
	}
	var multi int
	for sid, turns := range bySession {
		if len(turns) > 1 {
			multi++
		}
		for i := 1; i < len(turns); i++ {
			if turns[i].at <= turns[i-1].at {
				t.Fatalf("session %s: turn %d arrival %v not after %v", sid, i, turns[i].at, turns[i-1].at)
			}
			// prompt[i] = prompt[i-1] + output[i-1] + delta, saturating at the
			// cap; delta >= 1, so growth is strict until the cap binds.
			grown := turns[i].prompt > turns[i-1].prompt+turns[i-1].output
			if !grown && turns[i].prompt != cap {
				t.Fatalf("session %s: turn %d prompt %d does not embed turn %d (prompt %d + output %d) and is not the cap %d",
					sid, i, turns[i].prompt, i-1, turns[i-1].prompt, turns[i-1].output, cap)
			}
			if turns[i].prompt > cap {
				t.Fatalf("session %s: turn %d prompt %d above cap %d", sid, i, turns[i].prompt, cap)
			}
		}
	}
	if multi == 0 {
		t.Fatal("no multi-turn session in 200 requests")
	}
}

// TestSessionTruncationKeepsTurnPrefix: first-n truncation of the merged
// stream must keep every surviving session a contiguous turn prefix — serve
// cannot be handed turn 3 of a conversation whose turn 2 was cut.
func TestSessionTruncationKeepsTurnPrefix(t *testing.T) {
	for _, n := range []int{1, 7, 25, 60, 140} {
		reqs, err := ChatSessions().Generate(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != n {
			t.Fatalf("n=%d: got %d requests", n, len(reqs))
		}
		next := map[string]int{}
		for _, r := range reqs {
			if r.SessionID == "" {
				continue
			}
			if r.Turn != next[r.SessionID] {
				t.Fatalf("n=%d: session %s jumped to turn %d, want %d",
					n, r.SessionID, r.Turn, next[r.SessionID])
			}
			next[r.SessionID]++
		}
	}
}

// TestSessionMixAliases: the conf-facing names resolve to the session mix.
func TestSessionMixAliases(t *testing.T) {
	for _, name := range []string{"chat-sessions", "sessions"} {
		m, err := MixByName(name)
		if err != nil {
			t.Fatalf("MixByName(%q): %v", name, err)
		}
		if m.Name != "chat-sessions" {
			t.Fatalf("MixByName(%q) = %q", name, m.Name)
		}
		if m.Classes[0].Sessions == nil {
			t.Fatalf("MixByName(%q) lost the session profile", name)
		}
	}
}

// TestSessionlessMixesCarryNoSessions: the pre-session mixes must generate
// exactly what they always did — in particular, zero session identity.
func TestSessionlessMixesCarryNoSessions(t *testing.T) {
	for _, m := range []Mix{ChatHeavy(), BatchHeavy(), MixedBursty()} {
		reqs, err := m.Generate(80, 11)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reqs {
			if r.SessionID != "" || r.Turn != 0 {
				t.Fatalf("%s: request %d carries session identity %q/%d", m.Name, r.ID, r.SessionID, r.Turn)
			}
		}
	}
}

// TestSessionProfileValidation: malformed profiles are rejected up front.
func TestSessionProfileValidation(t *testing.T) {
	base := ChatSessions()
	break1 := base
	break1.Classes = append([]ClientClass(nil), base.Classes...)
	c := break1.Classes[0]
	c.Sessions = &SessionProfile{Turns: Uniform(2, 5), Think: Lognormal(1500, 0.6, 200, 6000), Delta: Deterministic(0)}
	break1.Classes[0] = c
	if _, err := break1.Generate(10, 1); err == nil {
		t.Fatal("accepted a zero delta distribution")
	}
	c.Sessions = &SessionProfile{Turns: Uniform(2, 5), Think: Lognormal(1500, 0.6, 200, 6000), Delta: Uniform(4, 128), MaxPrompt: -1}
	break1.Classes[0] = c
	if _, err := break1.Generate(10, 1); err == nil {
		t.Fatal("accepted a negative prompt cap")
	}
}
