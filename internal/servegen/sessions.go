package servegen

import (
	"fmt"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
)

// SessionProfile makes a client class multi-turn: every arrival the class's
// arrival process produces starts a *session* instead of a one-shot request.
// Turn 0 carries the class's Prompt/Output draws like any one-shot request;
// turn N+1 arrives a Think gap after turn N and its prompt embeds turn N's
// whole context as a shared prefix:
//
//	prompt[N+1] = prompt[N] + output[N] + delta[N+1]
//
// — the prior conversation plus the user's fresh message. All turns of a
// session carry the same SessionID and consecutive Turn numbers, which is
// what the serving side's prefix-reuse model and session-affinity dispatch
// key on. The generator is open-loop: think gaps are measured from the
// previous turn's arrival (generation cannot know completions), which keeps
// the stream a pure function of (mix, n, seed).
type SessionProfile struct {
	// Turns draws the number of turns per session; draws are clamped to a
	// minimum of 1 (a 1-turn session is an ordinary one-shot request that
	// happens to carry a SessionID).
	Turns LengthDist
	// Think draws the think-time gap between consecutive turns, in
	// milliseconds.
	Think LengthDist
	// Delta draws the fresh prompt tokens a follow-up turn appends on top
	// of the prior turn's prompt+output — the user's new message.
	Delta LengthDist
	// MaxPrompt caps the grown prompt length (0 = uncapped). Long sessions
	// saturate at the cap, the generator's stand-in for context-window
	// truncation.
	MaxPrompt int
}

func (p *SessionProfile) validate(what string) error {
	if err := p.Turns.validate(what + " session turns"); err != nil {
		return err
	}
	if err := p.Think.validate(what + " session think"); err != nil {
		return err
	}
	if err := p.Delta.validate(what + " session delta"); err != nil {
		return err
	}
	if p.MaxPrompt < 0 {
		return fmt.Errorf("servegen: %s session max prompt %d", what, p.MaxPrompt)
	}
	return nil
}

// Describe renders the profile compactly for reports and CLIs.
func (p *SessionProfile) Describe() string {
	return fmt.Sprintf("turns %s, think %s ms, delta %s", p.Turns.Describe(), p.Think.Describe(), p.Delta.Describe())
}

// expand generates the turns of one session of class c starting at startSec.
// The session's draws come in a fixed order — turns, turn-0 prompt, then per
// turn output / think / delta — so the sub-stream is byte-reproducible, and
// all of them consume c's own class RNG, preserving class independence.
func (p *SessionProfile) expand(rng *sim.RNG, c ClientClass, si int, startSec float64) []serve.Request {
	turns := p.Turns.sample(rng)
	if turns < 1 {
		turns = 1
	}
	sid := fmt.Sprintf("%s#%d", c.Name, si)
	at := startSec
	prompt := c.Prompt.sample(rng)
	out := make([]serve.Request, 0, turns)
	for t := 0; t < turns; t++ {
		output := c.Output.sample(rng)
		out = append(out, serve.Request{
			Class:     c.Name,
			SLO:       c.SLO,
			Priority:  SLOPriority(c.SLO),
			ArrivalAt: time.Duration(at * float64(time.Second)),
			PromptLen: prompt,
			OutputLen: output,
			SessionID: sid,
			Turn:      t,
		})
		if t == turns-1 {
			break
		}
		// Length draws are validated positive, so the think gap is at least
		// 1ms: turn arrivals are strictly increasing within a session, and
		// truncating the merged stream always keeps a turn prefix.
		at += float64(p.Think.sample(rng)) / 1e3
		prompt += output + p.Delta.sample(rng)
		if p.MaxPrompt > 0 && prompt > p.MaxPrompt {
			prompt = p.MaxPrompt
		}
	}
	return out
}

// ChatSessions returns the session-heavy mix: multi-turn interactive chat —
// 2-to-5-turn sessions with second-scale think gaps and context that grows
// turn over turn — alongside a one-shot batch backfill tenant. The prompt cap
// (640) plus the output clamp (160) keeps every turn under the 1024-token
// pad-to-max baseline like the other predefined mixes. This is the workload
// the session-affinity dispatch and KV prefix-reuse experiments run on.
func ChatSessions() Mix {
	return Mix{
		Name: "chat-sessions",
		Rate: 2.5,
		Classes: []ClientClass{
			{
				Name: "chat-turns", SLO: SLOInteractive, Share: 0.80,
				Arrival: Poisson(),
				Prompt:  Lognormal(96, 0.8, 8, 256),
				Output:  Lognormal(80, 0.8, 4, 160),
				Sessions: &SessionProfile{
					Turns:     Uniform(2, 5),
					Think:     Lognormal(1500, 0.6, 200, 6000),
					Delta:     Lognormal(48, 0.8, 4, 128),
					MaxPrompt: 640,
				},
			},
			{
				Name: "batch-backfill", SLO: SLOBatch, Share: 0.20,
				Arrival: OnOff(0.25, 20*time.Second),
				Prompt:  Uniform(128, 384),
				Output:  Uniform(32, 96),
			},
		},
	}
}
