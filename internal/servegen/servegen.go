// Package servegen generates heterogeneous multi-tenant serving workloads
// with ServeGen-style client decomposition: the aggregate request stream is
// the merge of N independent client classes, each with its own arrival
// process (Poisson, bursty Gamma, on-off), rate share, prompt/output length
// distributions and SLO class. Production traces are dominated by exactly
// this structure — a few heavy-rate bursty clients over a long tail of
// steady ones — which a single homogeneous mix cannot reproduce.
//
// Classes can be multi-turn (ClientClass.Sessions): each arrival starts a
// session whose follow-up turns arrive after think-time gaps and carry a
// prompt that embeds the prior turns' prompt+output as a growing shared
// prefix, tagged with SessionID/Turn — the workload shape the serving side's
// KV prefix-reuse model and session-affinity dispatch exploit. ChatSessions
// is the predefined session-heavy mix.
//
// Everything is driven by the repository's seeded PRNG: the same seed yields
// a byte-identical request stream, so serving experiments are replayable and
// differential tests can compare KV-cache policies on the exact same
// traffic.
package servegen

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
)

// SLO class tags. Priorities order preemption and admission: interactive
// traffic is served first and evicted last.
const (
	SLOInteractive = "interactive"
	SLOStandard    = "standard"
	SLOBatch       = "batch"
)

// SLOPriority maps an SLO class tag to the scheduling priority carried on
// each request (higher = more latency-sensitive). Unknown tags get the
// standard priority.
func SLOPriority(slo string) int {
	switch slo {
	case SLOInteractive:
		return 2
	case SLOBatch:
		return 0
	default:
		return 1
	}
}

// DistKind names a token-length distribution family.
type DistKind string

// Length distribution families.
const (
	DistDeterministic DistKind = "deterministic"
	DistUniform       DistKind = "uniform"
	DistLognormal     DistKind = "lognormal"
	// DistEmpirical draws from the CDF of observed token lengths — the
	// extension point internal/reqtrace uses to replay a captured trace's
	// length distribution without assuming a parametric family.
	DistEmpirical DistKind = "empirical"
)

// LengthDist is a prompt or output token-length distribution.
type LengthDist struct {
	Kind DistKind

	// Value is the fixed length of a deterministic distribution.
	Value int

	// Min and Max bound uniform draws and clamp lognormal ones. For the
	// empirical family a nonzero Min (Max) clamps draws from below (above);
	// zero leaves that side unclamped.
	Min, Max int

	// Mean and CV parameterize the lognormal family: Mean is the
	// distribution mean in tokens, CV its coefficient of variation. The
	// long right tail (CV near or above 1) is what production length
	// traces show and uniform mixes miss.
	Mean, CV float64

	// Samples are the observed token lengths an empirical distribution
	// draws from (its CDF's support). Empirical keeps them sorted, so draws
	// depend only on the multiset of samples, never their input order.
	Samples []int
}

// Deterministic returns the fixed-length distribution.
func Deterministic(v int) LengthDist {
	return LengthDist{Kind: DistDeterministic, Value: v}
}

// Uniform returns the uniform distribution on [min, max].
func Uniform(min, max int) LengthDist {
	return LengthDist{Kind: DistUniform, Min: min, Max: max}
}

// Lognormal returns a discretized lognormal with the given mean and
// coefficient of variation, clamped to [min, max].
func Lognormal(mean, cv float64, min, max int) LengthDist {
	return LengthDist{Kind: DistLognormal, Mean: mean, CV: cv, Min: min, Max: max}
}

// Empirical returns the distribution that draws uniformly from the CDF of
// the observed samples (nearest-rank inverse CDF). min and max clamp draws
// when nonzero. The samples are copied and sorted, so two Empirical
// distributions over the same multiset behave identically under the same
// seed whatever order the samples arrived in.
func Empirical(samples []int, min, max int) LengthDist {
	s := append([]int(nil), samples...)
	sort.Ints(s)
	return LengthDist{Kind: DistEmpirical, Samples: s, Min: min, Max: max}
}

func (d LengthDist) validate(what string) error {
	switch d.Kind {
	case DistDeterministic:
		if d.Value <= 0 {
			return fmt.Errorf("servegen: %s deterministic length %d", what, d.Value)
		}
	case DistUniform:
		if d.Min <= 0 || d.Max < d.Min {
			return fmt.Errorf("servegen: %s uniform range [%d,%d]", what, d.Min, d.Max)
		}
	case DistLognormal:
		if d.Mean <= 0 || d.CV <= 0 {
			return fmt.Errorf("servegen: %s lognormal mean %g cv %g", what, d.Mean, d.CV)
		}
		if d.Min <= 0 || d.Max < d.Min {
			return fmt.Errorf("servegen: %s lognormal clamp [%d,%d]", what, d.Min, d.Max)
		}
	case DistEmpirical:
		if len(d.Samples) == 0 {
			return fmt.Errorf("servegen: %s empirical with no samples", what)
		}
		for _, v := range d.Samples {
			if v <= 0 {
				return fmt.Errorf("servegen: %s empirical sample %d", what, v)
			}
		}
		if d.Min < 0 || (d.Max > 0 && d.Max < d.Min) {
			return fmt.Errorf("servegen: %s empirical clamp [%d,%d]", what, d.Min, d.Max)
		}
	default:
		return fmt.Errorf("servegen: %s has unknown distribution %q", what, d.Kind)
	}
	return nil
}

// Describe renders the distribution compactly for reports and CLIs.
func (d LengthDist) Describe() string {
	switch d.Kind {
	case DistDeterministic:
		return fmt.Sprintf("=%d", d.Value)
	case DistUniform:
		return fmt.Sprintf("U[%d,%d]", d.Min, d.Max)
	case DistLognormal:
		return fmt.Sprintf("logn(%.0f,cv %.1f)", d.Mean, d.CV)
	case DistEmpirical:
		return fmt.Sprintf("empirical(%d)", len(d.Samples))
	default:
		return string(d.Kind)
	}
}

// MeanTokens returns the distribution mean before clamping (exact for
// deterministic and uniform; the lognormal parameter for lognormal).
func (d LengthDist) MeanTokens() float64 {
	switch d.Kind {
	case DistDeterministic:
		return float64(d.Value)
	case DistUniform:
		return float64(d.Min+d.Max) / 2
	case DistEmpirical:
		if len(d.Samples) == 0 {
			return 0
		}
		var sum float64
		for _, v := range d.Samples {
			sum += float64(v)
		}
		return sum / float64(len(d.Samples))
	default:
		return d.Mean
	}
}

func (d LengthDist) sample(rng *sim.RNG) int {
	switch d.Kind {
	case DistDeterministic:
		return d.Value
	case DistUniform:
		return d.Min + rng.Intn(d.Max-d.Min+1)
	case DistEmpirical:
		// Nearest-rank inverse CDF: u in [0,1) indexes the sorted samples,
		// so a value's draw probability is exactly its sample frequency.
		// Samples are kept sorted (see Empirical), which makes ties and
		// duplicates deterministic under a fixed seed.
		v := d.Samples[int(rng.Float64()*float64(len(d.Samples)))]
		if d.Min > 0 && v < d.Min {
			v = d.Min
		}
		if d.Max > 0 && v > d.Max {
			v = d.Max
		}
		return v
	default: // lognormal, discretized by rounding
		sigma2 := math.Log(1 + d.CV*d.CV)
		mu := math.Log(d.Mean) - sigma2/2
		v := int(math.Round(math.Exp(mu + math.Sqrt(sigma2)*normal(rng))))
		if v < d.Min {
			v = d.Min
		}
		if v > d.Max {
			v = d.Max
		}
		return v
	}
}

// normal returns a standard normal draw (Box–Muller on the seeded RNG).
func normal(rng *sim.RNG) float64 {
	u1 := 1 - rng.Float64() // (0,1]: log never sees 0
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gamma returns a draw from Gamma(shape k, scale 1) via Marsaglia–Tsang,
// boosted for k < 1.
func gamma(rng *sim.RNG, k float64) float64 {
	if k < 1 {
		u := 1 - rng.Float64()
		return gamma(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := normal(rng)
		t := 1 + c*x
		if t <= 0 {
			continue
		}
		v := t * t * t
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// ArrivalKind names an arrival process family.
type ArrivalKind string

// Arrival process families.
const (
	// ArrivalPoisson is memoryless steady traffic (interarrival CV 1).
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalGamma draws Gamma interarrivals with a configurable CV:
	// CV > 1 clusters arrivals into bursts separated by lulls.
	ArrivalGamma ArrivalKind = "gamma"
	// ArrivalOnOff confines arrivals to the on-window of a fixed cycle —
	// the batch-job pattern of periodic submission waves.
	ArrivalOnOff ArrivalKind = "onoff"
	// ArrivalTrace replays a recorded arrival-offset sequence, rescaled to
	// the class's target rate and looped past its end — the extension point
	// internal/reqtrace uses to drive a mix with captured traffic instead
	// of a stochastic model. No randomness is consumed.
	ArrivalTrace ArrivalKind = "trace"
)

// ArrivalProcess describes when one client class submits requests.
type ArrivalProcess struct {
	Kind ArrivalKind

	// CV is the Gamma interarrival coefficient of variation (> 0).
	CV float64

	// OnFraction is the on-window share of each on-off cycle, in (0, 1].
	OnFraction float64
	// Cycle is the on-off cycle length.
	Cycle time.Duration

	// Times are the recorded arrival offsets in seconds a trace process
	// replays, sorted non-decreasing.
	Times []float64
}

// Poisson returns the memoryless arrival process.
func Poisson() ArrivalProcess { return ArrivalProcess{Kind: ArrivalPoisson} }

// Bursty returns a Gamma arrival process with interarrival CV cv.
func Bursty(cv float64) ArrivalProcess {
	return ArrivalProcess{Kind: ArrivalGamma, CV: cv}
}

// OnOff returns an on-off process submitting only during the first
// onFraction of each cycle.
func OnOff(onFraction float64, cycle time.Duration) ArrivalProcess {
	return ArrivalProcess{Kind: ArrivalOnOff, OnFraction: onFraction, Cycle: cycle}
}

// TraceArrivals returns the process that replays the recorded arrival
// offsets (seconds from trace start, non-decreasing), rescaled so the
// replayed stream hits the class's target rate and looped with a constant
// period when more arrivals are needed than were recorded.
func TraceArrivals(times []float64) ArrivalProcess {
	return ArrivalProcess{Kind: ArrivalTrace, Times: append([]float64(nil), times...)}
}

// Describe renders the arrival process compactly for reports and CLIs.
func (a ArrivalProcess) Describe() string {
	switch a.Kind {
	case ArrivalGamma:
		return fmt.Sprintf("gamma cv=%.1f", a.CV)
	case ArrivalOnOff:
		return fmt.Sprintf("on-off %.0f%%/%s", 100*a.OnFraction, a.Cycle.Round(100*time.Millisecond))
	case ArrivalTrace:
		return fmt.Sprintf("trace(%d)", len(a.Times))
	default:
		return string(a.Kind)
	}
}

func (a ArrivalProcess) validate(what string) error {
	switch a.Kind {
	case ArrivalPoisson:
	case ArrivalGamma:
		if a.CV <= 0 {
			return fmt.Errorf("servegen: %s gamma cv %g", what, a.CV)
		}
	case ArrivalOnOff:
		if a.OnFraction <= 0 || a.OnFraction > 1 {
			return fmt.Errorf("servegen: %s on-fraction %g", what, a.OnFraction)
		}
		if a.Cycle <= 0 {
			return fmt.Errorf("servegen: %s cycle %v", what, a.Cycle)
		}
	case ArrivalTrace:
		if len(a.Times) == 0 {
			return fmt.Errorf("servegen: %s trace arrivals with no times", what)
		}
		for i, t := range a.Times {
			if t < 0 || (i > 0 && t < a.Times[i-1]) {
				return fmt.Errorf("servegen: %s trace arrival %d at %gs out of order", what, i, t)
			}
		}
	default:
		return fmt.Errorf("servegen: %s has unknown arrival process %q", what, a.Kind)
	}
	return nil
}

// arrivals generates n arrival times (seconds) at aggregate rate ratePerSec.
func (a ArrivalProcess) arrivals(rng *sim.RNG, ratePerSec float64, n int) []float64 {
	out := make([]float64, n)
	switch a.Kind {
	case ArrivalGamma:
		// Interarrival Gamma with mean 1/rate and CV cv: shape k = 1/cv²,
		// scale θ = cv²/rate.
		k := 1 / (a.CV * a.CV)
		theta := 1 / (ratePerSec * k)
		t := 0.0
		for i := range out {
			t += gamma(rng, k) * theta
			out[i] = t
		}
	case ArrivalOnOff:
		// Poisson at the boosted on-rate in "on-time", then mapped onto the
		// wall clock so the aggregate rate stays ratePerSec.
		onRate := ratePerSec / a.OnFraction
		cycle := a.Cycle.Seconds()
		onLen := a.OnFraction * cycle
		tau := 0.0 // cumulative on-time
		for i := range out {
			tau += expDraw(rng, onRate)
			out[i] = math.Floor(tau/onLen)*cycle + math.Mod(tau, onLen)
		}
	case ArrivalTrace:
		// Replay the recorded offsets, rescaled so the replayed stream's
		// long-run rate is ratePerSec. Past the recorded end the sequence
		// loops shifted by a constant period — the recorded span plus one
		// mean interarrival gap, so the wrap does not glue the last and
		// first arrivals together. The rescale normalizes by that loop
		// period (n0 arrivals per period), not the recorded span: span
		// normalization would under-deliver by a factor (n0−1)/n0 whenever
		// the trace loops, down to half the target rate for a one-point
		// recording. A degenerate recording (every offset zero) falls back
		// to evenly spaced arrivals at the target rate.
		n0 := len(a.Times)
		span := a.Times[n0-1]
		if span <= 0 {
			for i := range out {
				out[i] = float64(i+1) / ratePerSec
			}
			break
		}
		gap := span / math.Max(1, float64(n0-1))
		period := span + gap
		scale := float64(n0) / period / ratePerSec
		for i := range out {
			out[i] = (a.Times[i%n0] + float64(i/n0)*period) * scale
		}
	default: // Poisson
		t := 0.0
		for i := range out {
			t += expDraw(rng, ratePerSec)
			out[i] = t
		}
	}
	return out
}

// expDraw returns an exponential interarrival at the given rate.
func expDraw(rng *sim.RNG, rate float64) float64 {
	return -math.Log(1-rng.Float64()) / rate
}

// ClientClass is one tenant population in a mix.
type ClientClass struct {
	// Name identifies the class in reports.
	Name string
	// SLO is the class's service-level tag (SLOInteractive, SLOStandard,
	// SLOBatch); it sets request priority for admission and preemption.
	SLO string
	// Share is the class's relative share of the mix's aggregate rate
	// (shares are normalized, so they need not sum to 1).
	Share float64
	// Arrival is the class's arrival process.
	Arrival ArrivalProcess
	// Prompt and Output are the class's token-length distributions. For a
	// session class they parameterize turn 0; follow-up turns grow the
	// prompt per the session profile.
	Prompt, Output LengthDist
	// Sessions, when non-nil, makes the class multi-turn: each arrival the
	// class's arrival process produces starts a session whose follow-up
	// turns share a growing prompt prefix. Nil keeps the class one-shot.
	// See SessionProfile.
	Sessions *SessionProfile
}

// Mix is a multi-tenant serving workload: an aggregate request rate
// decomposed over client classes.
type Mix struct {
	// Name identifies the mix in reports and configuration strings.
	Name string
	// Rate is the aggregate request rate in requests per second.
	Rate float64
	// Classes are the tenant populations; at least one is required.
	Classes []ClientClass
}

// Validate checks the mix is well-formed.
func (m Mix) Validate() error {
	if m.Rate <= 0 {
		return fmt.Errorf("servegen: mix %q rate %g", m.Name, m.Rate)
	}
	if len(m.Classes) == 0 {
		return fmt.Errorf("servegen: mix %q has no classes", m.Name)
	}
	seen := map[string]bool{}
	for _, c := range m.Classes {
		if c.Name == "" {
			return fmt.Errorf("servegen: mix %q has an unnamed class", m.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("servegen: mix %q repeats class %q", m.Name, c.Name)
		}
		seen[c.Name] = true
		if c.Share <= 0 {
			return fmt.Errorf("servegen: class %q share %g", c.Name, c.Share)
		}
		if err := c.Arrival.validate("class " + c.Name); err != nil {
			return err
		}
		if err := c.Prompt.validate("class " + c.Name + " prompt"); err != nil {
			return err
		}
		if err := c.Output.validate("class " + c.Name + " output"); err != nil {
			return err
		}
		if c.Sessions != nil {
			if err := c.Sessions.validate("class " + c.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// WithRate returns a copy of m with the aggregate rate set to ratePerSec.
func (m Mix) WithRate(ratePerSec float64) Mix {
	m.Rate = ratePerSec
	return m
}

// WithBurstCV returns a copy of m with every Gamma-arrival class set to
// interarrival CV cv (the burst_cv configuration knob).
func (m Mix) WithBurstCV(cv float64) Mix {
	classes := append([]ClientClass(nil), m.Classes...)
	for i := range classes {
		if classes[i].Arrival.Kind == ArrivalGamma {
			classes[i].Arrival.CV = cv
		}
	}
	m.Classes = classes
	return m
}

// Generate returns the first n requests of the merged multi-tenant stream,
// ordered by arrival and identified 0..n-1. The same (mix, n, seed) yields
// a byte-identical stream; the per-class sub-streams are seeded
// independently, so adding a class does not perturb the others' draws.
//
// A session class's arrival process produces session starts rather than
// individual requests: each start expands into that session's turns (same
// SessionID, consecutive Turn numbers, think-time gaps, growing prompt —
// see SessionProfile), so the class contributes its sessions' turns to the
// merge. Turn arrivals are strictly increasing within a session and the
// merge sort is stable, so the first-n truncation always keeps a prefix of
// each session's turns — a turn never appears without its predecessors.
// A mix with no session classes draws exactly the sequence it always did.
func (m Mix) Generate(n int, seed uint64) ([]serve.Request, error) {
	if n <= 0 {
		return nil, fmt.Errorf("servegen: %d requests", n)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var totalShare float64
	for _, c := range m.Classes {
		totalShare += c.Share
	}

	// Each class draws its sub-stream from its own splitmix-derived seed.
	// n arrivals per class always cover the merged first-n horizon: a
	// lower-rate class spreads its n draws over a longer span.
	root := sim.NewRNG(seed)
	var all []serve.Request
	for _, c := range m.Classes {
		rng := sim.NewRNG(root.Uint64())
		rate := m.Rate * c.Share / totalShare
		times := c.Arrival.arrivals(rng, rate, n)
		if c.Sessions != nil {
			for si, at := range times {
				all = append(all, c.Sessions.expand(rng, c, si, at)...)
			}
			continue
		}
		for _, at := range times {
			all = append(all, serve.Request{
				Class:     c.Name,
				SLO:       c.SLO,
				Priority:  SLOPriority(c.SLO),
				ArrivalAt: time.Duration(at * float64(time.Second)),
				PromptLen: c.Prompt.sample(rng),
				OutputLen: c.Output.sample(rng),
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ArrivalAt < all[j].ArrivalAt })
	all = all[:n]
	for i := range all {
		all[i].ID = i
	}
	return all, nil
}
