package servegen

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestGenerateDeterministic: the same (mix, n, seed) must yield a
// byte-identical request stream; different seeds must diverge.
func TestGenerateDeterministic(t *testing.T) {
	for _, mix := range Mixes() {
		a, err := mix.Generate(300, 7)
		if err != nil {
			t.Fatalf("%s: %v", mix.Name, err)
		}
		b, err := mix.Generate(300, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != 300 || len(b) != 300 {
			t.Fatalf("%s: lengths %d/%d", mix.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: request %d differs across identical seeds:\n%+v\n%+v",
					mix.Name, i, a[i], b[i])
			}
		}
		c, err := mix.Generate(300, 8)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical streams", mix.Name)
		}
	}
}

// TestGenerateWellFormed: IDs are 0..n-1 in arrival order, arrivals
// non-decreasing, lengths positive, class/SLO tags populated with the
// right priorities.
func TestGenerateWellFormed(t *testing.T) {
	for _, mix := range Mixes() {
		reqs, err := mix.Generate(400, 3)
		if err != nil {
			t.Fatal(err)
		}
		classes := map[string]bool{}
		var prev time.Duration
		for i, r := range reqs {
			if r.ID != i {
				t.Fatalf("%s: request %d has ID %d", mix.Name, i, r.ID)
			}
			if r.ArrivalAt < prev {
				t.Fatalf("%s: arrivals not sorted at %d", mix.Name, i)
			}
			prev = r.ArrivalAt
			if r.PromptLen <= 0 || r.OutputLen <= 0 {
				t.Fatalf("%s: request %d lengths %d/%d", mix.Name, i, r.PromptLen, r.OutputLen)
			}
			if r.Class == "" || r.SLO == "" {
				t.Fatalf("%s: request %d missing class/SLO", mix.Name, i)
			}
			if r.Priority != SLOPriority(r.SLO) {
				t.Fatalf("%s: request %d priority %d for SLO %s", mix.Name, i, r.Priority, r.SLO)
			}
			classes[r.Class] = true
		}
		if len(classes) != len(mix.Classes) {
			t.Fatalf("%s: %d classes in stream, mix has %d", mix.Name, len(classes), len(mix.Classes))
		}
	}
}

// TestRateShares: empirical per-class counts track the configured rate
// shares within sampling tolerance.
func TestRateShares(t *testing.T) {
	mix := ChatHeavy()
	const n = 4000
	reqs, err := mix.Generate(n, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.Class]++
	}
	var total float64
	for _, c := range mix.Classes {
		total += c.Share
	}
	for _, c := range mix.Classes {
		want := c.Share / total
		got := float64(counts[c.Name]) / n
		if math.Abs(got-want)/want > 0.25 {
			t.Errorf("class %s: empirical share %.3f, spec %.3f", c.Name, got, want)
		}
	}
}

// TestLengthDistributionMeans: empirical means of the three families track
// their specs (wide clamps so the lognormal's truncation bias is
// negligible).
func TestLengthDistributionMeans(t *testing.T) {
	cases := []struct {
		name string
		dist LengthDist
		tol  float64 // relative tolerance on the mean
	}{
		{"deterministic", Deterministic(128), 0},
		{"uniform", Uniform(64, 192), 0.05},
		{"lognormal", Lognormal(100, 0.8, 1, 100000), 0.08},
	}
	for _, tc := range cases {
		mix := Mix{
			Name: "single",
			Rate: 10,
			Classes: []ClientClass{{
				Name: "only", SLO: SLOStandard, Share: 1,
				Arrival: Poisson(), Prompt: tc.dist, Output: Deterministic(1),
			}},
		}
		reqs, err := mix.Generate(4000, 5)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, r := range reqs {
			sum += float64(r.PromptLen)
		}
		got := sum / float64(len(reqs))
		want := tc.dist.MeanTokens()
		if tc.tol == 0 {
			if got != want {
				t.Errorf("%s: mean %.2f, want exactly %.2f", tc.name, got, want)
			}
		} else if math.Abs(got-want)/want > tc.tol {
			t.Errorf("%s: mean %.2f, spec %.2f (tol %.0f%%)", tc.name, got, want, 100*tc.tol)
		}
	}
}

// interarrivalCV estimates the interarrival coefficient of variation of a
// single-class stream.
func interarrivalCV(t *testing.T, arrival ArrivalProcess, n int, seed uint64) float64 {
	t.Helper()
	mix := Mix{
		Name: "single",
		Rate: 5,
		Classes: []ClientClass{{
			Name: "only", SLO: SLOStandard, Share: 1,
			Arrival: arrival, Prompt: Deterministic(16), Output: Deterministic(4),
		}},
	}
	reqs, err := mix.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for i := 1; i < len(reqs); i++ {
		gaps = append(gaps, (reqs[i].ArrivalAt - reqs[i-1].ArrivalAt).Seconds())
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	return math.Sqrt(varsum/float64(len(gaps))) / mean
}

// TestArrivalBurstiness: Poisson interarrivals sit near CV 1, Gamma CV 4
// well above — the burstiness knob is real.
func TestArrivalBurstiness(t *testing.T) {
	if cv := interarrivalCV(t, Poisson(), 4000, 9); cv < 0.8 || cv > 1.25 {
		t.Errorf("poisson interarrival CV %.2f, want ≈ 1", cv)
	}
	if cv := interarrivalCV(t, Bursty(4), 4000, 9); cv < 2 {
		t.Errorf("gamma(cv=4) interarrival CV %.2f, want clearly bursty (> 2)", cv)
	}
}

// TestOnOffConfinesArrivals: every on-off arrival lands inside the
// on-window of its cycle.
func TestOnOffConfinesArrivals(t *testing.T) {
	const onFraction = 0.25
	cycle := 10 * time.Second
	mix := Mix{
		Name: "single",
		Rate: 5,
		Classes: []ClientClass{{
			Name: "only", SLO: SLOBatch, Share: 1,
			Arrival: OnOff(onFraction, cycle),
			Prompt:  Deterministic(16), Output: Deterministic(4),
		}},
	}
	reqs, err := mix.Generate(2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	onLen := time.Duration(onFraction * float64(cycle))
	for _, r := range reqs {
		if phase := r.ArrivalAt % cycle; phase > onLen {
			t.Fatalf("arrival %v lands in the off-window (phase %v, on-window %v)",
				r.ArrivalAt, phase, onLen)
		}
	}
}

// TestMixByName: aliases resolve, unknown names error, every canonical mix
// validates.
func TestMixByName(t *testing.T) {
	for _, name := range MixNames() {
		m, err := MixByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if m, err := MixByName("chat+batch"); err != nil || m.Name != "mixed-bursty" {
		t.Fatalf("chat+batch resolved to %q, %v", m.Name, err)
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

// TestOverrides: WithRate scales arrival density, WithBurstCV rewrites only
// Gamma classes.
func TestOverrides(t *testing.T) {
	base := MixedBursty()
	fast := base.WithRate(base.Rate * 4)
	a, err := base.Generate(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fast.Generate(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if span, fastSpan := a[len(a)-1].ArrivalAt, b[len(b)-1].ArrivalAt; fastSpan >= span {
		t.Fatalf("4x rate did not compress the stream: %v vs %v", fastSpan, span)
	}

	cv := base.WithBurstCV(8)
	var sawGamma bool
	for i, c := range cv.Classes {
		if c.Arrival.Kind == ArrivalGamma {
			sawGamma = true
			if c.Arrival.CV != 8 {
				t.Fatalf("gamma class %s CV %.1f after override", c.Name, c.Arrival.CV)
			}
		} else if !reflect.DeepEqual(c.Arrival, base.Classes[i].Arrival) {
			t.Fatalf("non-gamma class %s mutated by WithBurstCV", c.Name)
		}
	}
	if !sawGamma {
		t.Fatal("mixed-bursty has no gamma class to override")
	}
	if base.Classes[1].Arrival.CV == 8 {
		t.Fatal("WithBurstCV mutated the receiver")
	}
}

// TestValidateRejectsMalformed covers the validation paths.
func TestValidateRejectsMalformed(t *testing.T) {
	good := ClientClass{
		Name: "c", SLO: SLOStandard, Share: 1,
		Arrival: Poisson(), Prompt: Deterministic(8), Output: Deterministic(8),
	}
	cases := []Mix{
		{Name: "no-rate", Rate: 0, Classes: []ClientClass{good}},
		{Name: "no-classes", Rate: 1},
		{Name: "bad-share", Rate: 1, Classes: []ClientClass{{Name: "c", Share: 0, Arrival: Poisson(), Prompt: Deterministic(8), Output: Deterministic(8)}}},
		{Name: "dup", Rate: 1, Classes: []ClientClass{good, good}},
		{Name: "bad-prompt", Rate: 1, Classes: []ClientClass{{Name: "c", Share: 1, Arrival: Poisson(), Prompt: Uniform(10, 5), Output: Deterministic(8)}}},
		{Name: "bad-arrival", Rate: 1, Classes: []ClientClass{{Name: "c", Share: 1, Arrival: Bursty(0), Prompt: Deterministic(8), Output: Deterministic(8)}}},
		{Name: "bad-onoff", Rate: 1, Classes: []ClientClass{{Name: "c", Share: 1, Arrival: OnOff(1.5, time.Second), Prompt: Deterministic(8), Output: Deterministic(8)}}},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %q validated", m.Name)
		}
		if _, err := m.Generate(10, 1); err == nil {
			t.Errorf("mix %q generated", m.Name)
		}
	}
	if _, err := ChatHeavy().Generate(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestSeedIndependencePerClass: per-class sub-streams are independently
// seeded, so a class keeps its draws when another class is appended.
func TestSeedIndependencePerClass(t *testing.T) {
	one := Mix{
		Name: "one",
		Rate: 2,
		Classes: []ClientClass{{
			Name: "a", SLO: SLOStandard, Share: 1,
			Arrival: Poisson(), Prompt: Uniform(8, 64), Output: Uniform(8, 64),
		}},
	}
	two := one
	two.Classes = append([]ClientClass{}, one.Classes...)
	two.Classes = append(two.Classes, ClientClass{
		Name: "b", SLO: SLOBatch, Share: 0.001,
		Arrival: Poisson(), Prompt: Deterministic(8), Output: Deterministic(8),
	})
	// Scale the aggregate so class a's share-normalized rate stays at its
	// solo value.
	two.Rate = one.Rate * 1.001

	ra, err := one.Generate(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := two.Generate(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Class a's first draws (lengths, not merged order) must be unchanged.
	var la, lb []int
	for _, r := range ra {
		if r.Class == "a" {
			la = append(la, r.PromptLen, r.OutputLen)
		}
	}
	for _, r := range rb {
		if r.Class == "a" {
			lb = append(lb, r.PromptLen, r.OutputLen)
		}
	}
	if len(lb) == 0 {
		t.Fatal("class a vanished")
	}
	for i := range lb {
		if i >= len(la) {
			break
		}
		if la[i] != lb[i] {
			t.Fatalf("class a draw %d changed when class b was appended", i)
		}
	}
}

// TestOnOffCycleBoundary drives the on-off on-time→wall-clock mapping
// directly across many cycle boundaries: arrivals must be non-decreasing,
// every arrival must land inside an on-window even when the cumulative
// on-time tau is at (or within float noise of) an exact multiple of the
// window length, and consecutive arrivals that straddle d cycle boundaries
// must be separated by at least the d off-windows between them.
func TestOnOffCycleBoundary(t *testing.T) {
	const onFraction = 0.2
	cycle := 4 * time.Second
	proc := OnOff(onFraction, cycle)
	// A rate high enough that several arrivals land in every on-window and
	// the stream crosses many boundaries.
	times := proc.arrivals(sim.NewRNG(17), 25, 4000)

	onLen := onFraction * cycle.Seconds()
	cycleS := cycle.Seconds()
	boundaries := 0
	for i, at := range times {
		if at < 0 {
			t.Fatalf("arrival %d negative: %v", i, at)
		}
		phase := math.Mod(at, cycleS)
		if phase > onLen*(1+1e-9) {
			t.Fatalf("arrival %d at %.9fs lands in the off-window (phase %.9fs, on-window %.9fs)",
				i, at, phase, onLen)
		}
		if i == 0 {
			continue
		}
		if at < times[i-1] {
			t.Fatalf("arrival %d at %.9fs before arrival %d at %.9fs", i, at, i-1, times[i-1])
		}
		if d := int(math.Floor(at/cycleS)) - int(math.Floor(times[i-1]/cycleS)); d >= 1 {
			boundaries++
			// Straddling d boundaries skips d off-windows of (1-on)·cycle
			// each; the two in-window offsets can eat at most one on-window.
			if gap, min := at-times[i-1], float64(d)*(cycleS-onLen)-onLen; gap < min {
				t.Fatalf("arrivals %d→%d straddle %d boundaries with gap %.9fs < %.9fs",
					i-1, i, d, gap, min)
			}
		}
	}
	if boundaries < 3 {
		t.Fatalf("stream crossed only %d cycle boundaries; boundary seam untested", boundaries)
	}
}
