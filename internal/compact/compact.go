// Package compact implements a compaction-based defragmenting allocator,
// the classic alternative the paper's §6 contrasts GMLake with: when
// fragmentation blocks an allocation, live blocks are copied downward until
// all free space is one contiguous tail.
//
// Compaction achieves the same zero-fragmentation steady state as GMLake's
// stitching but pays for it with data movement: every compaction copies the
// moved bytes through HBM and requires a device synchronization (tensors
// move, so every in-flight kernel must drain and every pointer be rewritten
// — which is also why real frameworks cannot adopt it transparently; this
// implementation exists as the quantitative comparison point).
//
// Structure: one arena (a full-capacity VA reservation, physically committed
// in 2 MiB chunks by a growing frontier, like the expandable allocator) with
// best-fit/split/coalesce block management inside the mapped prefix.
package compact

import (
	"fmt"
	"time"

	"repro/internal/caching"
	"repro/internal/container"
	"repro/internal/cuda"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

// ChunkSize is the physical mapping granularity.
const ChunkSize = cuda.ChunkGranularity

// SmallThreshold routes sub-2 MiB requests to the embedded small pool.
const SmallThreshold = 2 * sim.MiB

// copyBandwidth prices compaction's data movement: an on-device copy reads
// and writes HBM (A100: ~2 TB/s raw, ~1.3 TB/s effective for a memcpy).
const copyBandwidth = 1.3e12

// syncStall is the device synchronization each compaction requires before
// tensors may move.
const syncStall = 5 * time.Millisecond

// Allocator is the compaction allocator.
type Allocator struct {
	driver *cuda.Driver
	acct   memalloc.Accounting

	va       cuda.DevicePtr
	vaSize   int64
	frontier int64
	chunks   []cuda.MemHandle

	blocks *block
	free   *container.Tree[*block]

	small *caching.Allocator

	compactions int64
	movedBytes  int64
}

type block struct {
	off       int64
	size      int64
	allocated bool
	prev      *block
	next      *block
	node      *container.Node[*block]
}

// New returns a compaction allocator over driver.
func New(driver *cuda.Driver) *Allocator {
	return &Allocator{
		driver: driver,
		free: container.NewTree[*block](func(a, b *block) bool {
			if a.size != b.size {
				return a.size < b.size
			}
			return a.off < b.off
		}),
		small: caching.New(driver),
	}
}

// Name implements memalloc.Allocator.
func (a *Allocator) Name() string { return "compact" }

// Stats implements memalloc.Allocator.
func (a *Allocator) Stats() memalloc.Stats {
	st := a.acct.Stats()
	ss := a.small.Stats()
	st.Active += ss.Active
	st.Reserved += ss.Reserved
	st.PeakActive += ss.PeakActive
	st.PeakReserved += ss.PeakReserved
	st.AllocCount += ss.AllocCount
	st.FreeCount += ss.FreeCount
	return st
}

// ResetPeaks restarts peak tracking.
func (a *Allocator) ResetPeaks() {
	a.acct.ResetPeaks()
	a.small.ResetPeaks()
}

// Compactions reports how many compaction passes have run.
func (a *Allocator) Compactions() int64 { return a.compactions }

// MovedBytes reports the total bytes copied by compaction.
func (a *Allocator) MovedBytes() int64 { return a.movedBytes }

func (a *Allocator) ensureArena() error {
	if a.vaSize != 0 {
		return nil
	}
	_, total := a.driver.MemGetInfo()
	size := sim.RoundUp(total, ChunkSize)
	va, err := a.driver.MemAddressReserve(size)
	if err != nil {
		return err
	}
	a.va = va
	a.vaSize = size
	return nil
}

// Alloc implements memalloc.Allocator: best fit, then compact, then grow.
func (a *Allocator) Alloc(size int64) (*memalloc.Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("compact: Alloc(%d)", size)
	}
	if size < SmallThreshold {
		return a.small.Alloc(size)
	}
	a.driver.Clock().Advance(a.driver.Cost().HostOp())
	if err := a.ensureArena(); err != nil {
		return nil, err
	}
	rounded := caching.RoundSize(size)

	blk := a.findBestFit(rounded)
	if blk == nil && a.freeBytesInArena() >= rounded {
		a.compact()
		blk = a.findBestFit(rounded)
	}
	if blk == nil {
		var err error
		blk, err = a.extend(rounded)
		if err != nil {
			return nil, err
		}
	}
	blk = a.maybeSplit(blk, rounded)
	blk.allocated = true
	a.acct.OnAlloc(blk.size)
	buf := &memalloc.Buffer{
		Ptr:       a.va + cuda.DevicePtr(blk.off),
		Requested: size,
		BlockSize: blk.size,
	}
	buf.SetImpl(blk)
	return buf, nil
}

func (a *Allocator) freeBytesInArena() int64 {
	var n int64
	a.free.Ascend(func(node *container.Node[*block]) bool {
		n += node.Value.size
		return true
	})
	return n
}

func (a *Allocator) findBestFit(size int64) *block {
	n := a.free.Ceil(&block{size: size})
	if n == nil {
		return nil
	}
	blk := n.Value
	a.free.Delete(n)
	blk.node = nil
	return blk
}

// compact slides every allocated block downward so all free space becomes
// one contiguous tail, charging the copy and synchronization costs.
func (a *Allocator) compact() {
	a.compactions++
	a.driver.Clock().Advance(syncStall)

	// Snapshot the chain before rewriting links.
	var chain []*block
	for blk := a.blocks; blk != nil; blk = blk.next {
		chain = append(chain, blk)
	}

	var moved int64
	off := int64(0)
	var firstAlloc *block
	var last *block
	for _, blk := range chain {
		if !blk.allocated {
			if blk.node != nil {
				a.free.Delete(blk.node)
				blk.node = nil
			}
			continue
		}
		if blk.off != off {
			moved += blk.size
			blk.off = off
		}
		blk.prev = last
		blk.next = nil
		if last != nil {
			last.next = blk
		} else {
			firstAlloc = blk
		}
		last = blk
		off += blk.size
	}
	a.blocks = firstAlloc
	if off < a.frontier {
		tail := &block{off: off, size: a.frontier - off, prev: last}
		if last != nil {
			last.next = tail
		} else {
			a.blocks = tail
		}
		tail.node = a.free.Insert(tail)
	}
	a.movedBytes += moved
	a.driver.Clock().Advance(time.Duration(float64(moved) / copyBandwidth * float64(time.Second)))
}

func (a *Allocator) tail() *block {
	if a.blocks == nil {
		return nil
	}
	b := a.blocks
	for b.next != nil {
		b = b.next
	}
	return b
}

func (a *Allocator) extend(size int64) (*block, error) {
	tail := a.tail()
	tailFree := int64(0)
	if tail != nil && !tail.allocated {
		tailFree = tail.size
	}
	need := sim.RoundUp(size-tailFree, ChunkSize)
	if a.frontier+need > a.vaSize {
		return nil, fmt.Errorf("compact: %w: arena frontier at %d of %d",
			cuda.ErrOutOfMemory, a.frontier, a.vaSize)
	}
	var created []cuda.MemHandle
	for off := int64(0); off < need; off += ChunkSize {
		h, err := a.driver.MemCreate(ChunkSize)
		if err != nil {
			for i, hh := range created {
				base := a.va + cuda.DevicePtr(a.frontier+int64(i)*ChunkSize)
				if e := a.driver.MemUnmap(base, ChunkSize); e != nil {
					panic("compact: rollback unmap: " + e.Error())
				}
				if e := a.driver.MemRelease(hh); e != nil {
					panic("compact: rollback release: " + e.Error())
				}
			}
			return nil, err
		}
		if err := a.driver.MemMap(a.va+cuda.DevicePtr(a.frontier+off), h); err != nil {
			panic("compact: MemMap: " + err.Error())
		}
		created = append(created, h)
	}
	if err := a.driver.MemSetAccess(a.va+cuda.DevicePtr(a.frontier), need); err != nil {
		panic("compact: MemSetAccess: " + err.Error())
	}
	a.chunks = append(a.chunks, created...)
	a.acct.OnReserve(need)

	grown := &block{off: a.frontier, size: need, prev: tail}
	a.frontier += need
	if tail != nil {
		tail.next = grown
	} else {
		a.blocks = grown
	}
	if tail != nil && !tail.allocated {
		a.free.Delete(tail.node)
		tail.node = nil
		tail.size += grown.size
		tail.next = nil
		if tail.prev != nil {
			tail.prev.next = tail
		} else {
			a.blocks = tail
		}
		return tail, nil
	}
	return grown, nil
}

func (a *Allocator) maybeSplit(blk *block, size int64) *block {
	remaining := blk.size - size
	if remaining < caching.MinBlockSize {
		return blk
	}
	rest := &block{
		off:  blk.off + size,
		size: remaining,
		prev: blk,
		next: blk.next,
	}
	if blk.next != nil {
		blk.next.prev = rest
	}
	blk.next = rest
	blk.size = size
	rest.node = a.free.Insert(rest)
	return blk
}

// Free implements memalloc.Allocator.
func (a *Allocator) Free(buf *memalloc.Buffer) {
	blk, ok := buf.Impl().(*block)
	if !ok || blk == nil {
		a.small.Free(buf)
		return
	}
	if !blk.allocated {
		panic("compact: double Free")
	}
	a.driver.Clock().Advance(a.driver.Cost().HostOp())
	a.acct.OnFree(blk.size)
	blk.allocated = false
	buf.SetImpl(nil)

	if nb := blk.next; nb != nil && !nb.allocated {
		a.free.Delete(nb.node)
		blk.size += nb.size
		blk.next = nb.next
		if nb.next != nil {
			nb.next.prev = blk
		}
	}
	if pb := blk.prev; pb != nil && !pb.allocated {
		a.free.Delete(pb.node)
		pb.size += blk.size
		pb.next = blk.next
		if blk.next != nil {
			blk.next.prev = pb
		}
		blk = pb
	}
	blk.node = a.free.Insert(blk)
}

// EmptyCache implements memalloc.Allocator: trim the free tail.
func (a *Allocator) EmptyCache() {
	a.small.EmptyCache()
	tail := a.tail()
	if tail == nil || tail.allocated {
		return
	}
	releaseFrom := sim.RoundUp(tail.off, ChunkSize)
	releaseBytes := a.frontier - releaseFrom
	if releaseBytes <= 0 {
		return
	}
	if err := a.driver.MemUnmap(a.va+cuda.DevicePtr(releaseFrom), releaseBytes); err != nil {
		panic("compact: trim unmap: " + err.Error())
	}
	nChunks := releaseBytes / ChunkSize
	for _, h := range a.chunks[int64(len(a.chunks))-nChunks:] {
		if err := a.driver.MemRelease(h); err != nil {
			panic("compact: trim release: " + err.Error())
		}
	}
	a.chunks = a.chunks[:int64(len(a.chunks))-nChunks]
	a.acct.OnRelease(releaseBytes)
	a.frontier = releaseFrom

	a.free.Delete(tail.node)
	tail.node = nil
	if tail.off == releaseFrom {
		if tail.prev != nil {
			tail.prev.next = nil
		} else {
			a.blocks = nil
		}
		return
	}
	tail.size = releaseFrom - tail.off
	tail.next = nil
	tail.node = a.free.Insert(tail)
}

// CheckInvariants validates the block chain tiling and free-index state.
func (a *Allocator) CheckInvariants() error {
	var off int64
	prevFree := false
	for blk := a.blocks; blk != nil; blk = blk.next {
		if blk.off != off {
			return fmt.Errorf("compact: gap at offset %d", off)
		}
		if blk.next != nil && blk.next.prev != blk {
			return fmt.Errorf("compact: broken chain links")
		}
		if !blk.allocated {
			if prevFree {
				return fmt.Errorf("compact: adjacent free blocks not merged")
			}
			if blk.node == nil {
				return fmt.Errorf("compact: free block missing from index")
			}
			prevFree = true
		} else {
			prevFree = false
		}
		off += blk.size
	}
	if off != a.frontier {
		return fmt.Errorf("compact: blocks tile %d of frontier %d", off, a.frontier)
	}
	return nil
}
