package compact

import (
	"errors"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func newTestAllocator(capacity int64) (*Allocator, *cuda.Driver) {
	dev := gpu.NewDevice("test", capacity)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	return New(drv), drv
}

func mustAlloc(t *testing.T, a *Allocator, size int64) *memalloc.Buffer {
	t.Helper()
	b, err := a.Alloc(size)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", size, err)
	}
	return b
}

func checkInv(t *testing.T, a *Allocator) {
	t.Helper()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionDefeatsFragmentation(t *testing.T) {
	// Interleave keep/free blocks, then request more than any single hole:
	// compaction must fire and serve it without growing the arena.
	a, _ := newTestAllocator(4 * sim.GiB)
	var keep, junk []*memalloc.Buffer
	for i := 0; i < 8; i++ {
		junk = append(junk, mustAlloc(t, a, 96*sim.MiB))
		keep = append(keep, mustAlloc(t, a, 32*sim.MiB))
	}
	for _, b := range junk {
		a.Free(b)
	}
	reserved := a.Stats().Reserved
	big := mustAlloc(t, a, 512*sim.MiB) // bigger than any 96 MiB hole
	if a.Compactions() != 1 {
		t.Fatalf("Compactions = %d, want 1", a.Compactions())
	}
	if got := a.Stats().Reserved; got != reserved {
		t.Fatalf("reserved grew %d -> %d; compaction should reuse holes", reserved, got)
	}
	if a.MovedBytes() == 0 {
		t.Fatal("compaction moved nothing")
	}
	a.Free(big)
	for _, b := range keep {
		a.Free(b)
	}
	checkInv(t, a)
}

func TestCompactionChargesCopyTime(t *testing.T) {
	a, drv := newTestAllocator(4 * sim.GiB)
	var junk []*memalloc.Buffer
	var keep []*memalloc.Buffer
	for i := 0; i < 8; i++ {
		junk = append(junk, mustAlloc(t, a, 96*sim.MiB))
		keep = append(keep, mustAlloc(t, a, 32*sim.MiB))
	}
	for _, b := range junk {
		a.Free(b)
	}
	before := drv.Clock().Now()
	big := mustAlloc(t, a, 512*sim.MiB)
	elapsed := drv.Clock().Now() - before
	if elapsed < syncStall {
		t.Fatalf("compaction took %v, below the sync stall %v", elapsed, syncStall)
	}
	a.Free(big)
	for _, b := range keep {
		a.Free(b)
	}
}

func TestNoCompactionWhenFitExists(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b1 := mustAlloc(t, a, 100*sim.MiB)
	a.Free(b1)
	b2 := mustAlloc(t, a, 64*sim.MiB)
	if a.Compactions() != 0 {
		t.Fatal("compaction ran despite a fitting free block")
	}
	a.Free(b2)
	checkInv(t, a)
}

func TestGrowWhenFreeInsufficient(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b1 := mustAlloc(t, a, 100*sim.MiB)
	// Nothing free: must extend, not compact.
	b2 := mustAlloc(t, a, 100*sim.MiB)
	if a.Compactions() != 0 {
		t.Fatal("pointless compaction")
	}
	if a.Stats().Reserved != 200*sim.MiB {
		t.Fatalf("Reserved = %d", a.Stats().Reserved)
	}
	a.Free(b1)
	a.Free(b2)
	checkInv(t, a)
}

func TestOOM(t *testing.T) {
	a, _ := newTestAllocator(256 * sim.MiB)
	b := mustAlloc(t, a, 200*sim.MiB)
	if _, err := a.Alloc(100 * sim.MiB); !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("err = %v, want OOM", err)
	}
	a.Free(b)
}

func TestEmptyCacheTrims(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 128*sim.MiB)
	a.Free(b)
	a.EmptyCache()
	if a.Stats().Reserved != 0 {
		t.Fatalf("Reserved = %d after trim", a.Stats().Reserved)
	}
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatal("device not free")
	}
	checkInv(t, a)
}

func TestRandomWorkloadInvariants(t *testing.T) {
	a, drv := newTestAllocator(8 * sim.GiB)
	rng := sim.NewRNG(77)
	var live []*memalloc.Buffer
	for step := 0; step < 2500; step++ {
		if rng.Float64() < 0.55 {
			size := int64(rng.Intn(int(256*sim.MiB)) + 1)
			if b, err := a.Alloc(size); err == nil {
				live = append(live, b)
			}
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			a.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if step%500 == 0 {
			checkInv(t, a)
		}
	}
	for _, b := range live {
		a.Free(b)
	}
	checkInv(t, a)
	a.EmptyCache()
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatalf("device leak: %d of %d", free, total)
	}
}

func TestSmallPoolPath(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 64*sim.KiB)
	a.Free(b)
	if st := a.Stats(); st.Active != 0 {
		t.Fatalf("Active = %d", st.Active)
	}
}

func TestNameAndResetPeaks(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	if a.Name() != "compact" {
		t.Fatalf("Name = %q", a.Name())
	}
	b, err := a.Alloc(8 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(b)
	a.ResetPeaks()
	st := a.Stats()
	if st.PeakActive != st.Active || st.PeakReserved != st.Reserved {
		t.Fatal("ResetPeaks did not restart peaks")
	}
}
