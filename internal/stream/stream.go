// Package stream simulates CUDA streams and events on the virtual clock and
// implements the stream-aware allocation semantics of PyTorch's caching
// allocator (recordStream plus event-deferred frees).
//
// GPU work is asynchronous: the host enqueues kernels on streams and moves
// on, so a tensor freed by the host may still be read by an in-flight kernel.
// PyTorch solves this by recording, per allocation, every stream that used
// the buffer; when the buffer is freed, an event is recorded on each such
// stream and the block is only returned to the pool once all events have
// completed. This deferral keeps more blocks transiently unavailable and is
// one of the request-stream dynamics (alongside recomputation and
// offloading) that fragment the baseline allocator — the paper's
// Observation 1 in driver-level form.
//
// The simulation keeps one completion frontier per stream: the virtual time
// at which everything enqueued on the stream so far will have finished. The
// host clock and the frontiers together reproduce the ordering guarantees of
// real streams (FIFO within a stream, no order across streams) without
// modelling individual kernels.
package stream

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// ID names a stream. Stream 0 is the default (legacy) stream.
type ID int

// DefaultStream is the stream used by allocations that never declared one.
const DefaultStream ID = 0

// Scheduler owns all streams of one device and their completion frontiers.
// All latencies are charged to the shared virtual clock.
type Scheduler struct {
	clock     *sim.Clock
	frontiers []time.Duration // indexed by ID
	events    int64           // events ever recorded, for stats
}

// NewScheduler returns a scheduler with the default stream only. More
// streams are created with NewStream.
func NewScheduler(clock *sim.Clock) *Scheduler {
	return &Scheduler{clock: clock, frontiers: make([]time.Duration, 1)}
}

// Clock returns the virtual clock the scheduler charges.
func (s *Scheduler) Clock() *sim.Clock { return s.clock }

// NewStream creates a new stream and returns its ID.
func (s *Scheduler) NewStream() ID {
	s.frontiers = append(s.frontiers, s.clock.Now())
	return ID(len(s.frontiers) - 1)
}

// Streams returns how many streams exist, including the default stream.
func (s *Scheduler) Streams() int { return len(s.frontiers) }

// EventsRecorded returns how many events were ever recorded.
func (s *Scheduler) EventsRecorded() int64 { return s.events }

func (s *Scheduler) frontier(id ID) time.Duration {
	if int(id) >= len(s.frontiers) || id < 0 {
		panic(fmt.Sprintf("stream: unknown stream %d", id))
	}
	// A stream's work can never complete in the host's past.
	if f := s.frontiers[id]; f > s.clock.Now() {
		return f
	}
	return s.clock.Now()
}

// Launch enqueues work taking d of device time on stream id. The host does
// not block; only the stream's completion frontier moves.
func (s *Scheduler) Launch(id ID, d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("stream: negative kernel duration %v", d))
	}
	s.frontiers[id] = s.frontier(id) + d
}

// Busy reports whether stream id still has unfinished work at the current
// host time.
func (s *Scheduler) Busy(id ID) bool { return s.frontiers[id] > s.clock.Now() }

// Synchronize blocks the host until stream id's enqueued work completes,
// advancing the clock to the stream's frontier (cudaStreamSynchronize).
func (s *Scheduler) Synchronize(id ID) {
	s.clock.AdvanceTo(s.frontier(id))
}

// SynchronizeAll blocks the host until every stream is idle
// (cudaDeviceSynchronize).
func (s *Scheduler) SynchronizeAll() {
	for id := range s.frontiers {
		s.Synchronize(ID(id))
	}
}

// WaitEvent makes stream id wait for e before running work enqueued later
// (cudaStreamWaitEvent): the stream's frontier can never fall before the
// event's completion time.
func (s *Scheduler) WaitEvent(id ID, e Event) {
	if e.when > s.frontier(id) {
		s.frontiers[id] = e.when
	}
}

// Event is a marker in a stream's work queue (cudaEventRecord). It completes
// when everything enqueued on the stream before the record has finished.
type Event struct {
	when time.Duration
	set  bool
}

// Record captures the current completion frontier of stream id.
func (s *Scheduler) Record(id ID) Event {
	s.events++
	return Event{when: s.frontier(id), set: true}
}

// Done reports whether the event has completed at the current host time
// (cudaEventQuery). An event that was never recorded is complete.
func (e Event) Done(clock *sim.Clock) bool {
	return !e.set || e.when <= clock.Now()
}

// Sync blocks the host until the event completes (cudaEventSynchronize).
func (e Event) Sync(clock *sim.Clock) {
	if e.set {
		clock.AdvanceTo(e.when)
	}
}

// CompletesAt returns the event's completion time; zero if never recorded.
func (e Event) CompletesAt() time.Duration { return e.when }
