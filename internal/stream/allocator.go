package stream

import (
	"repro/internal/memalloc"
)

// Allocator wraps any memalloc.Allocator with PyTorch's stream-aware
// semantics:
//
//   - every buffer belongs to the stream it was allocated on;
//   - RecordStream marks a buffer as also used by another stream;
//   - Free defers the actual free until every recording stream has passed
//     the point of the free, tracked with events — exactly the caching
//     allocator's cudaEventQuery-driven pending list.
//
// Deferred buffers still occupy their blocks, so a workload that shares
// tensors across busy streams holds memory longer than its logical
// lifetimes suggest. ProcessEvents (called on every Alloc, like PyTorch)
// retires the pending list as events complete.
type Allocator struct {
	inner memalloc.Allocator
	sched *Scheduler

	pending  []pendingFree
	deferred int64 // frees that had to wait on at least one event
}

type pendingFree struct {
	buf    *memalloc.Buffer
	events []Event
}

// streamState is the per-buffer state: the owning stream and every other
// stream recorded against the buffer.
type streamState struct {
	owner    ID
	recorded []ID
	wrapped  any // inner allocator's private state
}

// NewAllocator wraps inner with stream-aware freeing driven by sched.
func NewAllocator(inner memalloc.Allocator, sched *Scheduler) *Allocator {
	return &Allocator{inner: inner, sched: sched}
}

// Name implements memalloc.Allocator.
func (a *Allocator) Name() string { return a.inner.Name() + "+streams" }

// Inner returns the wrapped allocator.
func (a *Allocator) Inner() memalloc.Allocator { return a.inner }

// Alloc allocates on the default stream.
func (a *Allocator) Alloc(size int64) (*memalloc.Buffer, error) {
	return a.AllocOn(size, DefaultStream)
}

// AllocOn allocates a buffer owned by stream id. Pending deferred frees are
// processed first, so completed cross-stream work returns its blocks before
// new memory is taken — the same ordering the caching allocator uses.
func (a *Allocator) AllocOn(size int64, id ID) (*memalloc.Buffer, error) {
	a.ProcessEvents()
	b, err := a.inner.Alloc(size)
	if err != nil {
		// Last resort: drain everything in flight, retry once.
		a.SynchronizeAndFree()
		b, err = a.inner.Alloc(size)
		if err != nil {
			return nil, err
		}
	}
	b.SetImpl(&streamState{owner: id, wrapped: b.Impl()})
	return b, nil
}

// RecordStream marks buffer b as used by stream id, so a later Free waits
// for id's in-flight work (torch.Tensor.record_stream).
func (a *Allocator) RecordStream(b *memalloc.Buffer, id ID) {
	st := b.Impl().(*streamState)
	if id == st.owner {
		return
	}
	for _, r := range st.recorded {
		if r == id {
			return
		}
	}
	st.recorded = append(st.recorded, id)
}

// Free returns the buffer. If any recording stream still has unfinished
// work, the free is deferred behind per-stream events; otherwise the buffer
// is released immediately.
func (a *Allocator) Free(b *memalloc.Buffer) {
	st := b.Impl().(*streamState)
	b.SetImpl(st.wrapped)

	var events []Event
	for _, id := range st.recorded {
		if a.sched.Busy(id) {
			events = append(events, a.sched.Record(id))
		}
	}
	if len(events) == 0 {
		a.inner.Free(b)
		return
	}
	a.deferred++
	a.pending = append(a.pending, pendingFree{buf: b, events: events})
}

// ProcessEvents frees every pending buffer whose events have all completed.
func (a *Allocator) ProcessEvents() {
	kept := a.pending[:0]
	for _, p := range a.pending {
		if allDone(p.events, a) {
			a.inner.Free(p.buf)
			continue
		}
		kept = append(kept, p)
	}
	a.pending = kept
}

func allDone(events []Event, a *Allocator) bool {
	for _, e := range events {
		if !e.Done(a.sched.clock) {
			return false
		}
	}
	return true
}

// SynchronizeAndFree blocks until all pending events complete and frees the
// backlog; the allocator's OOM fallback.
func (a *Allocator) SynchronizeAndFree() {
	for _, p := range a.pending {
		for _, e := range p.events {
			e.Sync(a.sched.clock)
		}
		a.inner.Free(p.buf)
	}
	a.pending = a.pending[:0]
}

// PendingFrees returns how many frees are currently deferred.
func (a *Allocator) PendingFrees() int { return len(a.pending) }

// DeferredTotal returns how many frees were ever deferred behind events.
func (a *Allocator) DeferredTotal() int64 { return a.deferred }

// Stats implements memalloc.Allocator. Deferred buffers still count as
// active in the inner allocator, which is exactly the memory-pressure
// effect stream sharing has on the real caching allocator.
func (a *Allocator) Stats() memalloc.Stats { return a.inner.Stats() }

// EmptyCache drains pending frees, then empties the inner cache.
func (a *Allocator) EmptyCache() {
	a.SynchronizeAndFree()
	a.inner.EmptyCache()
}
