package stream

import (
	"testing"
	"time"

	"repro/internal/caching"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func newTestAllocator(t *testing.T, capacity int64) (*Allocator, *Scheduler, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	dev := gpu.NewDevice("t", capacity)
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	sched := NewScheduler(clock)
	return NewAllocator(caching.New(drv), sched), sched, clock
}

func TestNameSuffix(t *testing.T) {
	a, _, _ := newTestAllocator(t, sim.GiB)
	if a.Name() != "caching+streams" {
		t.Fatalf("Name = %q", a.Name())
	}
	if a.Inner().Name() != "caching" {
		t.Fatalf("Inner().Name = %q", a.Inner().Name())
	}
}

func TestFreeWithoutRecordedStreamsIsImmediate(t *testing.T) {
	a, _, _ := newTestAllocator(t, sim.GiB)
	b, err := a.Alloc(4 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(b)
	if a.PendingFrees() != 0 {
		t.Fatalf("pending = %d, want 0", a.PendingFrees())
	}
	if got := a.Stats().Active; got != 0 {
		t.Fatalf("active = %d after free", got)
	}
}

func TestFreeOnIdleRecordedStreamIsImmediate(t *testing.T) {
	a, sched, _ := newTestAllocator(t, sim.GiB)
	side := sched.NewStream()
	b, _ := a.Alloc(4 * sim.MiB)
	a.RecordStream(b, side) // side stream is idle
	a.Free(b)
	if a.PendingFrees() != 0 {
		t.Fatal("free deferred although recorded stream was idle")
	}
}

func TestFreeDeferredBehindBusyStream(t *testing.T) {
	a, sched, clock := newTestAllocator(t, sim.GiB)
	side := sched.NewStream()

	b, _ := a.Alloc(4 * sim.MiB)
	a.RecordStream(b, side)
	sched.Launch(side, 50*time.Millisecond) // kernel reading b in flight
	a.Free(b)

	if a.PendingFrees() != 1 {
		t.Fatalf("pending = %d, want 1", a.PendingFrees())
	}
	if got := a.Stats().Active; got == 0 {
		t.Fatal("deferred buffer no longer counted active")
	}

	clock.Advance(60 * time.Millisecond) // kernel finishes
	a.ProcessEvents()
	if a.PendingFrees() != 0 {
		t.Fatal("event completed but free still pending")
	}
	if got := a.Stats().Active; got != 0 {
		t.Fatalf("active = %d after deferred free retired", got)
	}
	if a.DeferredTotal() != 1 {
		t.Fatalf("DeferredTotal = %d, want 1", a.DeferredTotal())
	}
}

func TestRecordStreamDeduplicates(t *testing.T) {
	a, sched, _ := newTestAllocator(t, sim.GiB)
	side := sched.NewStream()
	b, _ := a.Alloc(2 * sim.MiB)
	a.RecordStream(b, side)
	a.RecordStream(b, side)
	a.RecordStream(b, DefaultStream) // owner: ignored
	st := b.Impl().(*streamState)
	if len(st.recorded) != 1 {
		t.Fatalf("recorded %d streams, want 1", len(st.recorded))
	}
	sched.Launch(side, time.Millisecond)
	a.Free(b)
	if a.PendingFrees() != 1 {
		t.Fatal("dedup broke deferral")
	}
	a.SynchronizeAndFree()
}

func TestAllocProcessesPendingFirst(t *testing.T) {
	// Size the device so the second allocation only fits after the first
	// deferred free retires.
	a, sched, clock := newTestAllocator(t, 64*sim.MiB)
	side := sched.NewStream()

	b, err := a.Alloc(40 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	a.RecordStream(b, side)
	sched.Launch(side, time.Millisecond)
	a.Free(b)

	clock.Advance(2 * time.Millisecond) // event now complete
	if _, err := a.Alloc(40 * sim.MiB); err != nil {
		t.Fatalf("Alloc did not retire completed pending frees: %v", err)
	}
}

func TestAllocSynchronizesOnOOM(t *testing.T) {
	a, sched, clock := newTestAllocator(t, 64*sim.MiB)
	side := sched.NewStream()

	b, _ := a.Alloc(40 * sim.MiB)
	a.RecordStream(b, side)
	sched.Launch(side, time.Hour) // still running at alloc time
	a.Free(b)

	start := clock.Now()
	if _, err := a.Alloc(40 * sim.MiB); err != nil {
		t.Fatalf("OOM despite synchronize fallback: %v", err)
	}
	if clock.Now()-start < time.Hour {
		t.Fatal("fallback did not wait for the blocking event")
	}
}

func TestOwnerStreamFreeNeedsNoEvent(t *testing.T) {
	// Work on the owning stream does not defer the free: PyTorch only
	// tracks *other* streams, because frees are ordered with the owning
	// stream's work by the allocator itself.
	a, sched, _ := newTestAllocator(t, sim.GiB)
	b, _ := a.AllocOn(2*sim.MiB, DefaultStream)
	sched.Launch(DefaultStream, time.Hour)
	a.Free(b)
	if a.PendingFrees() != 0 {
		t.Fatal("owner-stream work deferred the free")
	}
}

func TestEmptyCacheDrainsPending(t *testing.T) {
	a, sched, _ := newTestAllocator(t, sim.GiB)
	side := sched.NewStream()
	b, _ := a.Alloc(8 * sim.MiB)
	a.RecordStream(b, side)
	sched.Launch(side, time.Minute)
	a.Free(b)

	a.EmptyCache()
	if a.PendingFrees() != 0 {
		t.Fatal("EmptyCache left pending frees")
	}
	if got := a.Stats().Reserved; got != 0 {
		t.Fatalf("reserved = %d after EmptyCache", got)
	}
}

func TestImplRestoredForInnerAllocator(t *testing.T) {
	// The wrapper must hand the inner allocator its own private state back,
	// or the inner Free corrupts its pools.
	a, sched, clock := newTestAllocator(t, sim.GiB)
	side := sched.NewStream()
	var bufs []*memalloc.Buffer
	for i := 0; i < 8; i++ {
		b, err := a.Alloc(4 * sim.MiB)
		if err != nil {
			t.Fatal(err)
		}
		a.RecordStream(b, side)
		sched.Launch(side, time.Millisecond)
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		a.Free(b)
	}
	clock.Advance(time.Minute)
	a.ProcessEvents()
	// Reuse must work (inner free trees intact).
	for i := 0; i < 8; i++ {
		if _, err := a.Alloc(4 * sim.MiB); err != nil {
			t.Fatalf("realloc %d: %v", i, err)
		}
	}
}

// TestRandomOpsProperty drives the wrapper with a random interleaving of
// allocs, cross-stream records, frees, kernel launches and clock advances;
// accounting must always cover live+pending buffers and drain to zero.
func TestRandomOpsProperty(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		a, sched, clock := newTestAllocator(t, 4*sim.GiB)
		streams := []ID{DefaultStream, sched.NewStream(), sched.NewStream()}
		rng := sim.NewRNG(seed)

		type liveBuf struct{ b *memalloc.Buffer }
		var live []liveBuf
		var liveBytes int64

		for op := 0; op < 400; op++ {
			switch rng.Intn(5) {
			case 0, 1: // alloc
				size := int64(rng.Intn(8)+1) * 2 * sim.MiB
				b, err := a.AllocOn(size, streams[rng.Intn(len(streams))])
				if err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
				live = append(live, liveBuf{b})
				liveBytes += b.BlockSize
			case 2: // record + free
				if len(live) == 0 {
					continue
				}
				k := rng.Intn(len(live))
				if rng.Intn(2) == 0 {
					a.RecordStream(live[k].b, streams[rng.Intn(len(streams))])
				}
				liveBytes -= live[k].b.BlockSize
				a.Free(live[k].b)
				live = append(live[:k], live[k+1:]...)
			case 3: // kernel on a random stream
				sched.Launch(streams[rng.Intn(len(streams))], time.Duration(rng.Intn(5))*time.Millisecond)
			case 4: // time passes, events retire
				clock.Advance(time.Duration(rng.Intn(10)) * time.Millisecond)
				a.ProcessEvents()
			}
			// Active covers live buffers plus deferred (pending) frees.
			if got := a.Stats().Active; got < liveBytes {
				t.Fatalf("seed %d op %d: active %d below live %d", seed, op, got, liveBytes)
			}
		}
		for _, l := range live {
			a.Free(l.b)
		}
		a.SynchronizeAndFree()
		if got := a.Stats().Active; got != 0 {
			t.Fatalf("seed %d: %d bytes leaked", seed, got)
		}
	}
}
