package stream

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestLaunchAdvancesFrontierNotHost(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock)
	s.Launch(DefaultStream, 10*time.Millisecond)
	if clock.Now() != 0 {
		t.Fatalf("host clock moved on launch: %v", clock.Now())
	}
	if !s.Busy(DefaultStream) {
		t.Fatal("stream should be busy after launch")
	}
	s.Synchronize(DefaultStream)
	if got := clock.Now(); got != 10*time.Millisecond {
		t.Fatalf("Synchronize advanced clock to %v, want 10ms", got)
	}
	if s.Busy(DefaultStream) {
		t.Fatal("stream still busy after synchronize")
	}
}

func TestLaunchesOnOneStreamAreFIFO(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock)
	s.Launch(DefaultStream, 3*time.Millisecond)
	s.Launch(DefaultStream, 4*time.Millisecond)
	s.Synchronize(DefaultStream)
	if got := clock.Now(); got != 7*time.Millisecond {
		t.Fatalf("frontier %v, want 7ms (serial execution)", got)
	}
}

func TestStreamsRunConcurrently(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock)
	s2 := s.NewStream()
	s.Launch(DefaultStream, 5*time.Millisecond)
	s.Launch(s2, 8*time.Millisecond)
	s.SynchronizeAll()
	if got := clock.Now(); got != 8*time.Millisecond {
		t.Fatalf("device sync at %v, want 8ms (overlap, not 13ms)", got)
	}
}

func TestNewStreamStartsAtHostTime(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock)
	clock.Advance(time.Second)
	id := s.NewStream()
	if s.Busy(id) {
		t.Fatal("fresh stream must be idle")
	}
	s.Launch(id, time.Millisecond)
	s.Synchronize(id)
	if got := clock.Now(); got != time.Second+time.Millisecond {
		t.Fatalf("clock %v, want 1.001s", got)
	}
}

func TestEventRecordQuerySync(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock)
	s.Launch(DefaultStream, 6*time.Millisecond)
	e := s.Record(DefaultStream)
	if e.Done(clock) {
		t.Fatal("event done while stream busy")
	}
	// Work enqueued after the record does not delay the event.
	s.Launch(DefaultStream, time.Hour)
	e.Sync(clock)
	if got := clock.Now(); got != 6*time.Millisecond {
		t.Fatalf("event sync at %v, want 6ms", got)
	}
	if !e.Done(clock) {
		t.Fatal("event not done after sync")
	}
}

func TestZeroEventIsComplete(t *testing.T) {
	clock := sim.NewClock()
	var e Event
	if !e.Done(clock) {
		t.Fatal("zero event must read complete")
	}
	e.Sync(clock) // must not advance
	if clock.Now() != 0 {
		t.Fatal("zero event sync moved the clock")
	}
}

func TestWaitEventOrdersAcrossStreams(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock)
	producer := s.NewStream()
	consumer := s.NewStream()

	s.Launch(producer, 10*time.Millisecond)
	e := s.Record(producer)
	s.WaitEvent(consumer, e)
	s.Launch(consumer, 2*time.Millisecond)

	s.Synchronize(consumer)
	if got := clock.Now(); got != 12*time.Millisecond {
		t.Fatalf("consumer done at %v, want 12ms (after producer)", got)
	}
}

func TestWaitEventInThePastIsNoop(t *testing.T) {
	clock := sim.NewClock()
	s := NewScheduler(clock)
	e := s.Record(DefaultStream) // completes immediately
	s2 := s.NewStream()
	s.Launch(s2, 5*time.Millisecond)
	s.WaitEvent(s2, e)
	s.Synchronize(s2)
	if got := clock.Now(); got != 5*time.Millisecond {
		t.Fatalf("past event delayed stream: %v", got)
	}
}

func TestEventsRecordedCounter(t *testing.T) {
	s := NewScheduler(sim.NewClock())
	s.Record(DefaultStream)
	s.Record(DefaultStream)
	if got := s.EventsRecorded(); got != 2 {
		t.Fatalf("EventsRecorded = %d, want 2", got)
	}
}

func TestUnknownStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown stream")
		}
	}()
	NewScheduler(sim.NewClock()).Launch(ID(9), time.Millisecond)
}

func TestNegativeLaunchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative duration")
		}
	}()
	NewScheduler(sim.NewClock()).Launch(DefaultStream, -time.Millisecond)
}

// Property: an event never completes before all work enqueued prior to its
// record, and always completes once the host syncs the stream.
func TestEventCompletionProperty(t *testing.T) {
	prop := func(durs []uint16, recordAfter uint8) bool {
		clock := sim.NewClock()
		s := NewScheduler(clock)
		var before time.Duration
		n := int(recordAfter) % (len(durs) + 1)
		for i, d := range durs {
			dd := time.Duration(d) * time.Microsecond
			s.Launch(DefaultStream, dd)
			if i < n {
				before += dd
			}
		}
		var e Event
		// Re-run: record after the first n launches.
		clock2 := sim.NewClock()
		s2 := NewScheduler(clock2)
		for i, d := range durs {
			if i == n {
				e = s2.Record(DefaultStream)
			}
			s2.Launch(DefaultStream, time.Duration(d)*time.Microsecond)
		}
		if n == len(durs) {
			e = s2.Record(DefaultStream)
		}
		if e.CompletesAt() != before {
			return false
		}
		s2.Synchronize(DefaultStream)
		return e.Done(clock2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
