package quantile

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// xorshift is a tiny deterministic generator so the oracle streams are
// reproducible without seeding the global rand state.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

func (x *xorshift) intn(n int64) int64 { return int64(x.next() % uint64(n)) }

// exactRank is the oracle: the k-th smallest of vals, 1-based, the same
// nearest-rank rule internal/serve's summarize uses.
func exactRank(vals []int64, k int64) int64 {
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if k < 1 {
		k = 1
	}
	if k > int64(len(sorted)) {
		k = int64(len(sorted))
	}
	return sorted[k-1]
}

// checkBound asserts the documented error bound at p50/p95/p99 against the
// exact nearest-rank oracle.
func checkBound(t *testing.T, name string, s *Sketch, vals []int64) {
	t.Helper()
	n := int64(len(vals))
	for _, pct := range []int64{50, 95, 99} {
		k := (n*pct + 99) / 100
		got := s.Rank(k)
		want := exactRank(vals, k)
		bound := int64(math.Ceil(DefaultAlpha*float64(want))) + 1
		if diff := got - want; diff < -bound || diff > bound {
			t.Errorf("%s: p%d (rank %d/%d): sketch %d, exact %d, |err| %d > bound %d",
				name, pct, k, n, got, want, diff, bound)
		}
	}
}

func addAll(s *Sketch, vals []int64) {
	for _, v := range vals {
		s.Add(v)
	}
}

// TestSketchVsExactOracle drives the sketch over several stream shapes and
// sizes and checks every percentile against the exact order statistic.
func TestSketchVsExactOracle(t *testing.T) {
	rng := xorshift(7)
	streams := map[string][]int64{}

	uniform := make([]int64, 5000)
	for i := range uniform {
		uniform[i] = 1 + rng.intn(1_000_000_000)
	}
	streams["uniform"] = uniform

	// Latency-shaped: lognormal-ish via the product of uniforms, heavy tail.
	heavy := make([]int64, 3000)
	for i := range heavy {
		v := int64(1)
		for j := 0; j < 4; j++ {
			v *= 1 + rng.intn(200)
		}
		heavy[i] = v
	}
	streams["heavy-tail"] = heavy

	small := []int64{3}
	streams["single"] = small
	streams["tiny"] = []int64{5, 1, 4, 1, 5, 9, 2, 6}

	for name, vals := range streams {
		s := New()
		addAll(s, vals)
		if s.Count() != int64(len(vals)) {
			t.Fatalf("%s: count %d, want %d", name, s.Count(), len(vals))
		}
		checkBound(t, name, s, vals)
	}
}

// TestSketchAdversarialOrders feeds the same multiset in sorted, reversed,
// all-ties and two-point bimodal orders: the resulting sketches must be
// identical (Add is order-free) and within the bound.
func TestSketchAdversarialOrders(t *testing.T) {
	base := make([]int64, 2000)
	for i := range base {
		base[i] = int64(i + 1)
	}
	sorted := append([]int64(nil), base...)
	reversed := make([]int64, len(base))
	for i, v := range base {
		reversed[len(base)-1-i] = v
	}

	a, b := New(), New()
	addAll(a, sorted)
	addAll(b, reversed)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sorted and reversed insertion orders produced different sketches")
	}
	checkBound(t, "sorted", a, base)

	ties := make([]int64, 1000)
	for i := range ties {
		ties[i] = 42
	}
	s := New()
	addAll(s, ties)
	for _, pct := range []float64{0.5, 0.95, 0.99} {
		if got := s.Quantile(pct); got != 42 {
			t.Fatalf("all-ties quantile(%v) = %d, want 42", pct, got)
		}
	}

	bimodal := make([]int64, 1000)
	for i := range bimodal {
		if i%10 == 0 {
			bimodal[i] = 1_000_000_000 // 10% slow mode
		} else {
			bimodal[i] = 1_000
		}
	}
	bi := New()
	addAll(bi, bimodal)
	checkBound(t, "bimodal", bi, bimodal)
	// The p50 must land on the fast mode, the p99 on the slow mode — a
	// sketch that smears the modes together fails outright.
	if got := bi.Quantile(0.50); got > 1_100 {
		t.Fatalf("bimodal p50 = %d, want fast mode ~1000", got)
	}
	if got := bi.Quantile(0.99); got < 900_000_000 {
		t.Fatalf("bimodal p99 = %d, want slow mode ~1e9", got)
	}
}

// TestSketchMergeLaws pins merge associativity and commutativity — and that
// any merge equals the single-stream sketch — at the level of the full
// sketch state, not just the quantile outputs.
func TestSketchMergeLaws(t *testing.T) {
	rng := xorshift(11)
	mk := func(n int) []int64 {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = 1 + rng.intn(5_000_000)
		}
		return vals
	}
	va, vb, vc := mk(700), mk(1300), mk(400)

	sketch := func(streams ...[]int64) *Sketch {
		s := New()
		for _, vs := range streams {
			addAll(s, vs)
		}
		return s
	}
	merge := func(dst *Sketch, srcs ...*Sketch) *Sketch {
		for _, src := range srcs {
			if err := dst.Merge(src); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}

	single := sketch(va, vb, vc)
	ab := merge(sketch(va), sketch(vb))                         // (A+B)
	abTHENc := merge(merge(sketch(va), sketch(vb)), sketch(vc)) // (A+B)+C
	aTHENbc := merge(sketch(va), merge(sketch(vb), sketch(vc))) // A+(B+C)
	ba := merge(sketch(vb), sketch(va))                         // (B+A)

	if !reflect.DeepEqual(ab, ba) {
		t.Fatal("merge(A,B) != merge(B,A)")
	}
	if !reflect.DeepEqual(abTHENc, aTHENbc) {
		t.Fatal("(A+B)+C != A+(B+C)")
	}
	if !reflect.DeepEqual(abTHENc, single) {
		t.Fatal("merged sketch != single-stream sketch")
	}

	all := append(append(append([]int64(nil), va...), vb...), vc...)
	checkBound(t, "merged", abTHENc, all)

	other, err := NewAlpha(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Merge(other); err == nil {
		t.Fatal("merging sketches with different alphas must fail")
	}
}

// TestSketchEdgeCases covers empties, zeros and extreme magnitudes.
func TestSketchEdgeCases(t *testing.T) {
	s := New()
	if s.Rank(1) != 0 || s.Quantile(0.5) != 0 || s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}

	s.Add(0)
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("all-zero stream p99 = %d", got)
	}

	big := New()
	big.Add(math.MaxInt64)
	big.Add(1)
	if got := big.Quantile(1.0); got != math.MaxInt64 {
		t.Fatalf("max clamp lost: %d", got)
	}
	if got := big.Quantile(0.01); got != 1 {
		t.Fatalf("min clamp lost: %d", got)
	}

	if _, err := NewAlpha(0); err == nil {
		t.Fatal("alpha 0 must be rejected")
	}
	if _, err := NewAlpha(1); err == nil {
		t.Fatal("alpha 1 must be rejected")
	}
}
