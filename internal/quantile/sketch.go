// Package quantile provides a mergeable streaming quantile sketch with a
// guaranteed relative rank-error bound and fully deterministic behaviour.
//
// The sketch is DDSketch-shaped: positive values are counted into buckets
// whose boundaries grow geometrically by γ = (1+α)/(1−α), so every value in
// a bucket is within relative error α of the bucket's representative. Unlike
// sampling-based summaries (GK, KLL, t-digest with stochastic merging) there
// is no randomized compaction anywhere: Add is a counter increment, Merge is
// a bucket-wise addition, and the same inputs produce byte-identical
// quantiles on every run and on every merge order — Merge is exactly
// associative and commutative. That determinism is what lets the serving
// harness diff reports across scheduler refactors.
//
// Memory is fixed: one int64 counter per bucket (~2.6k buckets at the
// default α = 1%, covering (0, MaxInt64] nanoseconds), independent of how
// many values are added.
//
// # Error bound
//
// For a sketch over n values, Rank(k) returns a value r with
//
//	|r − x(k)| ≤ α·x(k) + 1
//
// where x(k) is the exact k-th smallest value (1-based), provided x(k) ≥ 0
// and values stay below 2⁵³ (beyond that the +1 rounding term grows to one
// float64 ulp; durations under ~104 days are exact). Quantile(p) is Rank at
// the nearest-rank index ceil(p·n), so percentiles carry the same bound
// against the exact nearest-rank oracle.
package quantile

import (
	"fmt"
	"math"
	"sort"
)

// DefaultAlpha is the default relative-accuracy target: quantiles are within
// 1% of the exact order statistic (plus 1 unit of integer rounding).
const DefaultAlpha = 0.01

// table holds the precomputed bucket geometry for one α. Bucket i covers
// the half-open integer range (bound[i−1], bound[i]] with bound[−1] = 0, and
// rep[i] is its representative value (the harmonic mean of the bucket edges,
// which minimizes the worst-case relative error over the bucket).
type table struct {
	alpha float64
	bound []int64
	rep   []int64
}

// defaultTable is the shared bucket geometry for DefaultAlpha, built once
// at package initialization. Every sketch in practice uses the default α,
// so the hot path never touches shared mutable state — the previous
// mutex-guarded map cache here was a package-level write reachable from
// every parallel serving job (flagged by the parcapture analyzer: the
// insert was idempotent and race-free, but a shared lock under the pool is
// both a scalability and an auditability cost the init-time build avoids).
var defaultTable = buildTable(DefaultAlpha)

// geometry returns the bucket table for alpha: the precomputed shared
// table at DefaultAlpha, a freshly built one otherwise (non-default α is
// a cold path — tables are built per sketch constructor, never per Add).
func geometry(alpha float64) *table {
	if alpha == DefaultAlpha {
		return defaultTable
	}
	return buildTable(alpha)
}

// buildTable constructs the bucket geometry for one α. Boundaries are built
// by repeated multiplication with γ, forced to advance by at least 1, so the
// low range (0, ⌈1/(γ−1)⌉] degenerates into width-1 buckets that are exact.
func buildTable(alpha float64) *table {
	gamma := (1 + alpha) / (1 - alpha)
	t := &table{alpha: alpha}
	lo, b := int64(0), int64(1)
	for {
		t.bound = append(t.bound, b)
		if b-lo <= 1 {
			// A single-integer bucket represents itself exactly.
			t.rep = append(t.rep, b)
		} else {
			h := 2 * float64(lo) * float64(b) / (float64(lo) + float64(b))
			t.rep = append(t.rep, int64(math.Round(h)))
		}
		if b == math.MaxInt64 {
			break
		}
		lo = b
		next := float64(b) * gamma
		if next >= float64(math.MaxInt64) {
			b = math.MaxInt64
		} else if nb := int64(next); nb > b {
			b = nb
		} else {
			b = b + 1
		}
	}
	return t
}

// Sketch is a mergeable streaming quantile sketch. The zero value is not
// usable; construct with New or NewAlpha.
type Sketch struct {
	geo    *table
	counts []int64
	low    int64 // values ≤ 0 (durations are non-negative in practice)
	n      int64
	min    int64
	max    int64
}

// New returns an empty sketch at DefaultAlpha.
func New() *Sketch {
	s, _ := NewAlpha(DefaultAlpha)
	return s
}

// NewAlpha returns an empty sketch with relative-accuracy target alpha,
// 0 < alpha < 1.
func NewAlpha(alpha float64) (*Sketch, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("quantile: alpha %v outside (0, 1)", alpha)
	}
	geo := geometry(alpha)
	return &Sketch{
		geo:    geo,
		counts: make([]int64, len(geo.bound)),
		min:    math.MaxInt64,
		max:    math.MinInt64,
	}, nil
}

// Alpha returns the sketch's relative-accuracy target.
func (s *Sketch) Alpha() float64 { return s.geo.alpha }

// Count returns the number of values added.
func (s *Sketch) Count() int64 { return s.n }

// Min and Max return the exact extremes of the added values (0 when empty).
func (s *Sketch) Min() int64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

func (s *Sketch) Max() int64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Add counts one value into the sketch.
func (s *Sketch) Add(v int64) {
	s.n++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v <= 0 {
		s.low++
		return
	}
	i := sort.Search(len(s.geo.bound), func(i int) bool { return s.geo.bound[i] >= v })
	s.counts[i]++
}

// Rank returns an approximation of the k-th smallest added value (1-based),
// within the package-level error bound. k is clamped to [1, Count]; an empty
// sketch returns 0.
func (s *Sketch) Rank(k int64) int64 {
	if s.n == 0 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	if k > s.n {
		k = s.n
	}
	// The extremes are tracked exactly; the first and last order statistics
	// ARE the extremes, so return them with zero error.
	if k == 1 {
		return s.min
	}
	if k == s.n {
		return s.max
	}
	cum := s.low
	v := int64(0) // the ≤0 bucket's representative, clamped below
	if cum < k {
		for i, c := range s.counts {
			cum += c
			if cum >= k {
				v = s.geo.rep[i]
				break
			}
		}
	}
	// The exact extremes tighten the representative at the tails; clamping
	// never moves v away from any value in its bucket.
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// Quantile returns the nearest-rank p-quantile (0 ≤ p ≤ 1): Rank at index
// ceil(p·n).
func (s *Sketch) Quantile(p float64) int64 {
	return s.Rank(int64(math.Ceil(p * float64(s.n))))
}

// Merge folds o into s. Both sketches must share the same alpha. Merging is
// exactly associative and commutative: any merge tree over the same streams
// yields byte-identical bucket counts, and merge(A, B) equals adding both
// streams into one sketch. o is not modified.
func (s *Sketch) Merge(o *Sketch) error {
	if s.geo != o.geo {
		return fmt.Errorf("quantile: merging sketches with alpha %v and %v", s.geo.alpha, o.geo.alpha)
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.low += o.low
	s.n += o.n
	if o.n > 0 {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	return nil
}
