// Package trace records and replays allocation request streams. A Recorder
// wraps any memalloc.Allocator and logs every Alloc/Free with its virtual
// timestamp; the log supports the paper's Figure 5 stream statistics
// (allocation count and mean size), CSV export, and deterministic replay
// against a different allocator for differential testing.
//
// Naming note: this package records *allocator events* — the memory-level
// view underneath a workload. The similarly named internal/reqtrace package
// records *serving requests* (arrival, class, SLO, token counts) at the
// inference-serving layer; the two trace layers observe different systems
// and share nothing but the word.
package trace

import (
	"fmt"
	"io"
	"time"

	"repro/internal/memalloc"
	"repro/internal/sim"
)

// Op is the event kind.
type Op uint8

// Event kinds.
const (
	OpAlloc Op = iota
	OpFree
)

// Event is one allocation-stream event. Free events reference the Alloc
// event they release through ID.
type Event struct {
	Op   Op
	ID   int64 // allocation identity, assigned at Alloc
	Size int64 // requested bytes (Alloc events)
	T    time.Duration
}

// Trace is a recorded request stream.
type Trace struct {
	Events []Event
}

// Stats summarizes a trace the way the paper's Figure 5 caption does.
type Stats struct {
	Allocs    int64
	Frees     int64
	Bytes     int64 // total requested bytes across allocs
	MeanBytes int64
}

// Stats computes stream statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	for _, e := range t.Events {
		switch e.Op {
		case OpAlloc:
			s.Allocs++
			s.Bytes += e.Size
		case OpFree:
			s.Frees++
		}
	}
	if s.Allocs > 0 {
		s.MeanBytes = s.Bytes / s.Allocs
	}
	return s
}

// WriteCSV emits "op,id,size,seconds" rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "op,id,size,seconds"); err != nil {
		return err
	}
	for _, e := range t.Events {
		op := "alloc"
		if e.Op == OpFree {
			op = "free"
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.6f\n", op, e.ID, e.Size, e.T.Seconds()); err != nil {
			return err
		}
	}
	return nil
}

// Recorder wraps an allocator and records its request stream.
type Recorder struct {
	inner memalloc.Allocator
	clock *sim.Clock
	trace Trace
	ids   map[*memalloc.Buffer]int64
	next  int64
}

// NewRecorder wraps inner, timestamping events from clock.
func NewRecorder(inner memalloc.Allocator, clock *sim.Clock) *Recorder {
	return &Recorder{inner: inner, clock: clock, ids: make(map[*memalloc.Buffer]int64)}
}

// Name implements memalloc.Allocator.
func (r *Recorder) Name() string { return r.inner.Name() + "+trace" }

// Alloc implements memalloc.Allocator.
func (r *Recorder) Alloc(size int64) (*memalloc.Buffer, error) {
	b, err := r.inner.Alloc(size)
	if err != nil {
		return nil, err
	}
	r.next++
	r.ids[b] = r.next
	r.trace.Events = append(r.trace.Events, Event{Op: OpAlloc, ID: r.next, Size: size, T: r.clock.Now()})
	return b, nil
}

// Free implements memalloc.Allocator.
func (r *Recorder) Free(b *memalloc.Buffer) {
	id, ok := r.ids[b]
	if !ok {
		panic("trace: Free of unrecorded buffer")
	}
	delete(r.ids, b)
	r.trace.Events = append(r.trace.Events, Event{Op: OpFree, ID: id, T: r.clock.Now()})
	r.inner.Free(b)
}

// Stats implements memalloc.Allocator.
func (r *Recorder) Stats() memalloc.Stats { return r.inner.Stats() }

// EmptyCache implements memalloc.Allocator.
func (r *Recorder) EmptyCache() { r.inner.EmptyCache() }

// Trace returns the recorded stream.
func (r *Recorder) Trace() *Trace { return &r.trace }

// Replay applies a recorded stream to alloc. It returns the first allocation
// error encountered (freeing everything live first) or nil. Timestamps are
// not reproduced — the target allocator charges its own costs.
func Replay(t *Trace, alloc memalloc.Allocator) error {
	live := make(map[int64]*memalloc.Buffer)
	fail := func(err error) error {
		for _, b := range live {
			alloc.Free(b)
		}
		return err
	}
	for _, e := range t.Events {
		switch e.Op {
		case OpAlloc:
			b, err := alloc.Alloc(e.Size)
			if err != nil {
				return fail(fmt.Errorf("trace: replay alloc %d (%d bytes): %w", e.ID, e.Size, err))
			}
			live[e.ID] = b
		case OpFree:
			b, ok := live[e.ID]
			if !ok {
				return fail(fmt.Errorf("trace: replay free of unknown id %d", e.ID))
			}
			delete(live, e.ID)
			alloc.Free(b)
		}
	}
	for _, b := range live {
		alloc.Free(b)
	}
	return nil
}
