package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/caching"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func newRecorded(capacity int64) (*Recorder, *sim.Clock) {
	dev := gpu.NewDevice("test", capacity)
	clock := sim.NewClock()
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	return NewRecorder(caching.New(drv), clock), clock
}

func TestRecorderCapturesEvents(t *testing.T) {
	rec, _ := newRecorded(sim.GiB)
	b1, err := rec.Alloc(10 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := rec.Alloc(20 * sim.MiB)
	rec.Free(b1)
	rec.Free(b2)
	tr := rec.Trace()
	if len(tr.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(tr.Events))
	}
	if tr.Events[0].Op != OpAlloc || tr.Events[0].Size != 10*sim.MiB {
		t.Fatalf("event 0 = %+v", tr.Events[0])
	}
	if tr.Events[2].Op != OpFree || tr.Events[2].ID != tr.Events[0].ID {
		t.Fatalf("free event does not reference its alloc: %+v", tr.Events[2])
	}
	st := tr.Stats()
	if st.Allocs != 2 || st.Frees != 2 || st.Bytes != 30*sim.MiB || st.MeanBytes != 15*sim.MiB {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecorderTimestampsAscend(t *testing.T) {
	rec, clock := newRecorded(sim.GiB)
	b, _ := rec.Alloc(sim.MiB)
	clock.Advance(5 * 1e6)
	rec.Free(b)
	tr := rec.Trace()
	if tr.Events[1].T <= tr.Events[0].T {
		t.Fatal("timestamps not ascending")
	}
}

func TestRecorderFreeUnknownPanics(t *testing.T) {
	rec, _ := newRecorded(sim.GiB)
	defer func() {
		if recover() == nil {
			t.Fatal("Free of foreign buffer did not panic")
		}
	}()
	rec.Free(&memalloc.Buffer{})
}

func TestReplayOnDifferentAllocator(t *testing.T) {
	// Record a stream on the caching allocator, replay on GMLake; both must
	// end clean.
	rec, _ := newRecorded(sim.GiB)
	var live []*memalloc.Buffer
	rng := sim.NewRNG(4)
	for i := 0; i < 200; i++ {
		if rng.Float64() < 0.6 {
			b, err := rec.Alloc(int64(rng.Intn(int(64*sim.MiB)) + 1))
			if err != nil {
				continue
			}
			live = append(live, b)
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			rec.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
	}
	for _, b := range live {
		rec.Free(b)
	}

	dev := gpu.NewDevice("replay", sim.GiB)
	clock := sim.NewClock()
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	gml := core.NewDefault(drv)
	if err := Replay(rec.Trace(), gml); err != nil {
		t.Fatal(err)
	}
	if st := gml.Stats(); st.Active != 0 {
		t.Fatalf("replay leaked %d bytes", st.Active)
	}
	if err := gml.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayOOMCleansUp(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Op: OpAlloc, ID: 1, Size: 30 * sim.MiB},
		{Op: OpAlloc, ID: 2, Size: 100 * sim.MiB}, // exceeds the 64 MiB device
	}}
	dev := gpu.NewDevice("small", 64*sim.MiB)
	clock := sim.NewClock()
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	alloc := caching.New(drv)
	if err := Replay(tr, alloc); err == nil {
		t.Fatal("replay over capacity succeeded")
	}
	if st := alloc.Stats(); st.Active != 0 {
		t.Fatalf("failed replay leaked %d bytes", st.Active)
	}
}

func TestReplayUnknownFree(t *testing.T) {
	tr := &Trace{Events: []Event{{Op: OpFree, ID: 99}}}
	dev := gpu.NewDevice("x", sim.GiB)
	clock := sim.NewClock()
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	if err := Replay(tr, caching.New(drv)); err == nil {
		t.Fatal("replay with dangling free succeeded")
	}
}

func TestTraceCSV(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Op: OpAlloc, ID: 1, Size: 1024, T: 0},
		{Op: OpFree, ID: 1, T: 2e9},
	}}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "op,id,size,seconds\nalloc,1,1024,0.000000\nfree,1,0,2.000000\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q", sb.String())
	}
}

func TestRecorderDelegates(t *testing.T) {
	rec, _ := newRecorded(sim.GiB)
	if rec.Name() != "caching+trace" {
		t.Fatalf("Name = %q", rec.Name())
	}
	b, _ := rec.Alloc(10 * sim.MiB)
	rec.Free(b)
	if rec.Stats().AllocCount != 1 {
		t.Fatal("Stats not delegated")
	}
	rec.EmptyCache()
	if rec.Stats().Reserved != 0 {
		t.Fatal("EmptyCache not delegated")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := &Trace{Events: []Event{
		{Op: OpAlloc, ID: 1, Size: 4 * sim.MiB, T: time.Millisecond},
		{Op: OpAlloc, ID: 2, Size: 8 * sim.MiB, T: 2 * time.Millisecond},
		{Op: OpFree, ID: 1, T: 3 * time.Millisecond},
		{Op: OpFree, ID: 2, T: 4 * time.Millisecond},
	}}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("%d events", len(got.Events))
	}
	for i := range orig.Events {
		if got.Events[i] != orig.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], orig.Events[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format":"other","version":1}`)); err == nil {
		t.Fatal("accepted wrong format")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format":"gmlake-trace","version":99}`)); err == nil {
		t.Fatal("accepted wrong version")
	}
	// Structurally bad streams.
	bad := `{"format":"gmlake-trace","version":1,"events":[{"Op":1,"ID":7}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("accepted free of unknown id")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []Trace{
		{Events: []Event{{Op: OpAlloc, ID: 1, Size: 0}}},                                           // zero size
		{Events: []Event{{Op: OpAlloc, ID: 1, Size: 4}, {Op: OpAlloc, ID: 1, Size: 4}}},            // dup id
		{Events: []Event{{Op: Op(9), ID: 1}}},                                                      // unknown op
		{Events: []Event{{Op: OpAlloc, ID: 1, Size: 4}, {Op: OpFree, ID: 1}, {Op: OpFree, ID: 1}}}, // double free
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestRecordedTraceSurvivesJSONAndReplays(t *testing.T) {
	clock := sim.NewClock()
	dev := gpu.NewDevice("t", sim.GiB)
	rec := NewRecorder(caching.New(cuda.NewDriver(dev, clock, sim.DefaultCostModel())), clock)
	b1, _ := rec.Alloc(16 * sim.MiB)
	b2, _ := rec.Alloc(32 * sim.MiB)
	rec.Free(b1)
	rec.Free(b2)

	var buf bytes.Buffer
	if err := rec.Trace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	clock2 := sim.NewClock()
	dev2 := gpu.NewDevice("t2", sim.GiB)
	target := caching.New(cuda.NewDriver(dev2, clock2, sim.DefaultCostModel()))
	if err := Replay(loaded, target); err != nil {
		t.Fatal(err)
	}
	if target.Stats().Active != 0 {
		t.Fatal("replay leaked")
	}
}
