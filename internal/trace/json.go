package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonTrace is the on-disk format: a small header guards against replaying
// files from incompatible versions.
type jsonTrace struct {
	Format  string  `json:"format"`
	Version int     `json:"version"`
	Events  []Event `json:"events"`
}

const (
	jsonFormat  = "gmlake-trace"
	jsonVersion = 1
)

// WriteJSON serializes the trace for later replay (ReadJSON).
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(jsonTrace{Format: jsonFormat, Version: jsonVersion, Events: t.Events})
}

// ReadJSON loads a trace written by WriteJSON and validates it: the header
// must match and every Free must reference a prior, still-live Alloc.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if jt.Format != jsonFormat {
		return nil, fmt.Errorf("trace: not a %s file (format %q)", jsonFormat, jt.Format)
	}
	if jt.Version != jsonVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", jt.Version)
	}
	t := &Trace{Events: jt.Events}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks stream well-formedness: allocation IDs are unique and
// positive sizes, frees reference live allocations exactly once.
func (t *Trace) Validate() error {
	live := make(map[int64]bool, len(t.Events)/2)
	for i, e := range t.Events {
		switch e.Op {
		case OpAlloc:
			if e.Size <= 0 {
				return fmt.Errorf("trace: event %d: alloc of %d bytes", i, e.Size)
			}
			if live[e.ID] {
				return fmt.Errorf("trace: event %d: duplicate alloc id %d", i, e.ID)
			}
			live[e.ID] = true
		case OpFree:
			if !live[e.ID] {
				return fmt.Errorf("trace: event %d: free of unknown or freed id %d", i, e.ID)
			}
			delete(live, e.ID)
		default:
			return fmt.Errorf("trace: event %d: unknown op %d", i, e.Op)
		}
	}
	return nil
}
