package container

// Queue is a generic doubly-linked queue used for LRU bookkeeping (GMLake's
// StitchFree evicts least-recently-used sBlocks). Elements are addressed by
// *QueueNode handles so that touching an element (move-to-back) is O(1).
//
// The zero value is an empty queue ready to use.
type Queue[T any] struct {
	head, tail *QueueNode[T]
	size       int
}

// QueueNode is an element handle inside a Queue.
type QueueNode[T any] struct {
	Value      T
	prev, next *QueueNode[T]
	queue      *Queue[T]
}

// Len reports the number of elements in the queue.
func (q *Queue[T]) Len() int { return q.size }

// PushBack appends v and returns its handle (most-recently-used position).
func (q *Queue[T]) PushBack(v T) *QueueNode[T] {
	n := &QueueNode[T]{Value: v, queue: q}
	if q.tail == nil {
		q.head, q.tail = n, n
	} else {
		n.prev = q.tail
		q.tail.next = n
		q.tail = n
	}
	q.size++
	return n
}

// Front returns the oldest element's handle (least-recently-used), or nil.
func (q *Queue[T]) Front() *QueueNode[T] { return q.head }

// Remove unlinks n from the queue. It panics on a handle that is not in this
// queue, since a stale LRU handle indicates an accounting bug.
func (q *Queue[T]) Remove(n *QueueNode[T]) {
	if n == nil || n.queue != q {
		panic("container: Remove of node not in queue")
	}
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	n.prev, n.next, n.queue = nil, nil, nil
	q.size--
}

// MoveToBack marks n as most-recently-used.
func (q *Queue[T]) MoveToBack(n *QueueNode[T]) {
	if n == nil || n.queue != q {
		panic("container: MoveToBack of node not in queue")
	}
	if q.tail == n {
		return
	}
	// Unlink.
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	n.next.prev = n.prev
	// Relink at tail.
	n.prev = q.tail
	n.next = nil
	q.tail.next = n
	q.tail = n
}

// Each calls fn from oldest to newest until fn returns false.
func (q *Queue[T]) Each(fn func(v T) bool) {
	for n := q.head; n != nil; n = n.next {
		if !fn(n.Value) {
			return
		}
	}
}
