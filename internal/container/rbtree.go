// Package container provides the ordered data structures shared by the
// allocators: a generic red-black tree ordered multiset (the paper's sorted
// sets backing pPool, sPool and the caching allocator's free lists) and a
// small FIFO/LRU queue.
package container

// Tree is an ordered multiset implemented as a red-black tree. Elements are
// ordered by the less function supplied at construction; duplicates (elements
// neither less nor greater than each other) are allowed and kept in insertion
// order on the right spine.
//
// Insert returns a *Node handle which the caller may retain for O(log n)
// deletion, the pattern both allocators use to remove a specific block from
// a pool.
type Tree[T any] struct {
	root *Node[T]
	size int
	less func(a, b T) bool
}

// Node is an element handle inside a Tree.
type Node[T any] struct {
	Value               T
	left, right, parent *Node[T]
	red                 bool
	tree                *Tree[T] // owner; nil after removal
}

// NewTree returns an empty tree ordered by less.
func NewTree[T any](less func(a, b T) bool) *Tree[T] {
	return &Tree[T]{less: less}
}

// Len reports the number of elements in the tree.
func (t *Tree[T]) Len() int { return t.size }

// Insert adds v to the tree and returns its node handle.
func (t *Tree[T]) Insert(v T) *Node[T] {
	n := &Node[T]{Value: v, red: true, tree: t}
	var parent *Node[T]
	cur := t.root
	for cur != nil {
		parent = cur
		if t.less(v, cur.Value) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	n.parent = parent
	switch {
	case parent == nil:
		t.root = n
	case t.less(v, parent.Value):
		parent.left = n
	default:
		parent.right = n
	}
	t.size++
	t.insertFixup(n)
	return n
}

// Delete removes the node n from the tree. It panics if n does not belong to
// this tree (including if it was already deleted), because silently ignoring
// a stale handle would mask pool-accounting bugs in the allocators.
func (t *Tree[T]) Delete(n *Node[T]) {
	if n == nil || n.tree != t {
		panic("container: Delete of node not in tree")
	}
	t.remove(n)
	n.tree = nil
	n.left, n.right, n.parent = nil, nil, nil
	t.size--
}

// Min returns the smallest element's node, or nil if the tree is empty.
func (t *Tree[T]) Min() *Node[T] {
	if t.root == nil {
		return nil
	}
	return t.root.min()
}

// Max returns the largest element's node, or nil if the tree is empty.
func (t *Tree[T]) Max() *Node[T] {
	if t.root == nil {
		return nil
	}
	return t.root.max()
}

// Next returns the in-order successor of n, or nil.
func (t *Tree[T]) Next(n *Node[T]) *Node[T] { return n.next() }

// Prev returns the in-order predecessor of n, or nil.
func (t *Tree[T]) Prev(n *Node[T]) *Node[T] { return n.prev() }

// Ceil returns the first node whose value is >= v (i.e. not less than v),
// or nil if all elements are smaller.
func (t *Tree[T]) Ceil(v T) *Node[T] {
	var best *Node[T]
	cur := t.root
	for cur != nil {
		if t.less(cur.Value, v) {
			cur = cur.right
		} else {
			best = cur
			cur = cur.left
		}
	}
	return best
}

// Floor returns the last node whose value is <= v (i.e. v is not less than
// it), or nil if all elements are greater.
func (t *Tree[T]) Floor(v T) *Node[T] {
	var best *Node[T]
	cur := t.root
	for cur != nil {
		if t.less(v, cur.Value) {
			cur = cur.left
		} else {
			best = cur
			cur = cur.right
		}
	}
	return best
}

// Ascend calls fn for each element in ascending order until fn returns false.
func (t *Tree[T]) Ascend(fn func(n *Node[T]) bool) {
	for n := t.Min(); n != nil; n = n.next() {
		if !fn(n) {
			return
		}
	}
}

// Descend calls fn for each element in descending order until fn returns
// false.
func (t *Tree[T]) Descend(fn func(n *Node[T]) bool) {
	for n := t.Max(); n != nil; n = n.prev() {
		if !fn(n) {
			return
		}
	}
}

// Clear removes all elements.
func (t *Tree[T]) Clear() {
	t.root = nil
	t.size = 0
}

func (n *Node[T]) min() *Node[T] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func (n *Node[T]) max() *Node[T] {
	for n.right != nil {
		n = n.right
	}
	return n
}

func (n *Node[T]) next() *Node[T] {
	if n.right != nil {
		return n.right.min()
	}
	p := n.parent
	for p != nil && n == p.right {
		n, p = p, p.parent
	}
	return p
}

func (n *Node[T]) prev() *Node[T] {
	if n.left != nil {
		return n.left.max()
	}
	p := n.parent
	for p != nil && n == p.left {
		n, p = p, p.parent
	}
	return p
}

func isRed[T any](n *Node[T]) bool { return n != nil && n.red }

func (t *Tree[T]) rotateLeft(x *Node[T]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[T]) rotateRight(x *Node[T]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[T]) insertFixup(z *Node[T]) {
	for isRed(z.parent) {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if isRed(u) {
				z.parent.red = false
				u.red = false
				gp.red = true
				z = gp
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.red = false
				gp.red = true
				t.rotateRight(gp)
			}
		} else {
			u := gp.left
			if isRed(u) {
				z.parent.red = false
				u.red = false
				gp.red = true
				z = gp
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.red = false
				gp.red = true
				t.rotateLeft(gp)
			}
		}
	}
	t.root.red = false
}

// remove implements CLRS delete with a transplant that swaps node identity so
// external handles stay valid: when the node to delete has two children we
// splice out its successor and move the successor's links, not its value.
func (t *Tree[T]) remove(z *Node[T]) {
	var x, xParent *Node[T]
	y := z
	yWasRed := y.red
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = z.right.min()
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
	}
	if !yWasRed {
		t.deleteFixup(x, xParent)
	}
}

func (t *Tree[T]) transplant(u, v *Node[T]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[T]) deleteFixup(x, parent *Node[T]) {
	for x != t.root && !isRed(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if isRed(w) {
				w.red = false
				parent.red = true
				t.rotateLeft(parent)
				w = parent.right
			}
			if !isRed(w.left) && !isRed(w.right) {
				w.red = true
				x = parent
				parent = x.parent
			} else {
				if !isRed(w.right) {
					w.left.red = false
					w.red = true
					t.rotateRight(w)
					w = parent.right
				}
				w.red = parent.red
				parent.red = false
				w.right.red = false
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if isRed(w) {
				w.red = false
				parent.red = true
				t.rotateRight(parent)
				w = parent.left
			}
			if !isRed(w.left) && !isRed(w.right) {
				w.red = true
				x = parent
				parent = x.parent
			} else {
				if !isRed(w.left) {
					w.right.red = false
					w.red = true
					t.rotateLeft(w)
					w = parent.left
				}
				w.red = parent.red
				parent.red = false
				w.left.red = false
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.red = false
	}
}

// checkInvariants validates red-black properties; used by tests.
func (t *Tree[T]) checkInvariants() error {
	if t.root == nil {
		return nil
	}
	if t.root.red {
		return errRootRed
	}
	_, err := t.check(t.root)
	return err
}

type rbError string

func (e rbError) Error() string { return string(e) }

const (
	errRootRed   = rbError("container: root is red")
	errRedRed    = rbError("container: red node with red child")
	errBlackH    = rbError("container: unequal black heights")
	errOrder     = rbError("container: ordering violated")
	errParentPtr = rbError("container: bad parent pointer")
)

func (t *Tree[T]) check(n *Node[T]) (blackHeight int, err error) {
	if n == nil {
		return 1, nil
	}
	if n.left != nil {
		if n.left.parent != n {
			return 0, errParentPtr
		}
		if t.less(n.Value, n.left.Value) {
			return 0, errOrder
		}
		if n.red && n.left.red {
			return 0, errRedRed
		}
	}
	if n.right != nil {
		if n.right.parent != n {
			return 0, errParentPtr
		}
		if t.less(n.right.Value, n.Value) {
			return 0, errOrder
		}
		if n.red && n.right.red {
			return 0, errRedRed
		}
	}
	lh, err := t.check(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := t.check(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackH
	}
	if !n.red {
		lh++
	}
	return lh, nil
}
