package container

import (
	"sort"
	"testing"
)

// TestHeapSortsArbitraryStreams pushes deterministic pseudo-random values
// in several interleavings and checks Pop drains them in sorted order.
func TestHeapSortsArbitraryStreams(t *testing.T) {
	state := uint64(42)
	next := func() int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % 10_000)
	}
	for _, n := range []int{0, 1, 2, 7, 100, 4096} {
		h := NewHeap[int](func(a, b int) bool { return a < b })
		want := make([]int, n)
		for i := range want {
			want[i] = next()
			h.Push(want[i])
		}
		sort.Ints(want)
		if h.Len() != n {
			t.Fatalf("n=%d: Len %d", n, h.Len())
		}
		for i, w := range want {
			if got := h.Peek(); got != w {
				t.Fatalf("n=%d: peek %d = %d, want %d", n, i, got, w)
			}
			if got := h.Pop(); got != w {
				t.Fatalf("n=%d: pop %d = %d, want %d", n, i, got, w)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("n=%d: %d left after drain", n, h.Len())
		}
	}
}

// TestHeapInterleavedPushPop mixes pushes and pops: after any prefix the
// popped values must be the overall minima seen so far.
func TestHeapInterleavedPushPop(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	h.Push(5)
	h.Push(3)
	if got := h.Pop(); got != 3 {
		t.Fatalf("pop = %d, want 3", got)
	}
	h.Push(1)
	h.Push(4)
	for _, want := range []int{1, 4, 5} {
		if got := h.Pop(); got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
}

// TestHeapTieOrdering: with a composite key the secondary field must break
// ties, mirroring the scheduler's (time, replica-index) ordering.
func TestHeapTieOrdering(t *testing.T) {
	type ev struct{ at, idx int }
	h := NewHeap[ev](func(a, b ev) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		return a.idx < b.idx
	})
	h.Push(ev{10, 3})
	h.Push(ev{10, 1})
	h.Push(ev{5, 9})
	h.Push(ev{10, 2})
	want := []ev{{5, 9}, {10, 1}, {10, 2}, {10, 3}}
	for _, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop = %+v, want %+v", got, w)
		}
	}
}
