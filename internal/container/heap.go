package container

// Heap is a binary min-heap over a strict-weak less ordering — the event
// spine of the cluster scheduler. Compared to container/heap it needs no
// interface boxing and no external slice management: Push and Pop are
// O(log n) on a flat slice.
type Heap[T any] struct {
	less  func(a, b T) bool
	items []T
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements held.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts v.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// Peek returns the minimum without removing it. It panics on an empty heap;
// guard with Len.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Pop removes and returns the minimum. It panics on an empty heap; guard
// with Len.
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release references for the garbage collector
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < last && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
