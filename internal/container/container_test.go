package container

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func intTree() *Tree[int] {
	return NewTree[int](func(a, b int) bool { return a < b })
}

func treeContents(t *Tree[int]) []int {
	var out []int
	t.Ascend(func(n *Node[int]) bool {
		out = append(out, n.Value)
		return true
	})
	return out
}

func TestTreeInsertAscend(t *testing.T) {
	tr := intTree()
	in := []int{5, 3, 8, 1, 9, 7, 2, 6, 4, 0}
	for _, v := range in {
		tr.Insert(v)
	}
	got := treeContents(tr)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ascend order %v, want %v", got, want)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDuplicates(t *testing.T) {
	tr := intTree()
	for i := 0; i < 5; i++ {
		tr.Insert(7)
	}
	tr.Insert(3)
	tr.Insert(9)
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	got := treeContents(tr)
	want := []int{3, 7, 7, 7, 7, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents %v, want %v", got, want)
		}
	}
}

func TestTreeDeleteByHandle(t *testing.T) {
	tr := intTree()
	nodes := make([]*Node[int], 0, 100)
	for i := 0; i < 100; i++ {
		nodes = append(nodes, tr.Insert(i%10))
	}
	// Delete every third node; handles must remain valid for the others.
	for i := 0; i < 100; i += 3 {
		tr.Delete(nodes[i])
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	wantLen := 100 - 34
	if tr.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", tr.Len(), wantLen)
	}
	// Remaining handles still deletable.
	for i := 1; i < 100; i += 3 {
		tr.Delete(nodes[i])
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDeleteStaleHandlePanics(t *testing.T) {
	tr := intTree()
	n := tr.Insert(1)
	tr.Delete(n)
	defer func() {
		if recover() == nil {
			t.Fatal("double Delete did not panic")
		}
	}()
	tr.Delete(n)
}

func TestTreeCeilFloor(t *testing.T) {
	tr := intTree()
	for _, v := range []int{10, 20, 30, 40} {
		tr.Insert(v)
	}
	tests := []struct {
		v           int
		ceil, floor int // -1 means nil
	}{
		{5, 10, -1},
		{10, 10, 10},
		{15, 20, 10},
		{40, 40, 40},
		{45, -1, 40},
	}
	for _, tt := range tests {
		c := tr.Ceil(tt.v)
		f := tr.Floor(tt.v)
		if tt.ceil == -1 && c != nil {
			t.Errorf("Ceil(%d) = %d, want nil", tt.v, c.Value)
		} else if tt.ceil != -1 && (c == nil || c.Value != tt.ceil) {
			t.Errorf("Ceil(%d) = %v, want %d", tt.v, c, tt.ceil)
		}
		if tt.floor == -1 && f != nil {
			t.Errorf("Floor(%d) = %d, want nil", tt.v, f.Value)
		} else if tt.floor != -1 && (f == nil || f.Value != tt.floor) {
			t.Errorf("Floor(%d) = %v, want %d", tt.v, f, tt.floor)
		}
	}
}

func TestTreeDescend(t *testing.T) {
	tr := intTree()
	for _, v := range []int{3, 1, 2} {
		tr.Insert(v)
	}
	var out []int
	tr.Descend(func(n *Node[int]) bool {
		out = append(out, n.Value)
		return true
	})
	want := []int{3, 2, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Descend order %v, want %v", out, want)
		}
	}
}

func TestTreeMinMaxEmpty(t *testing.T) {
	tr := intTree()
	if tr.Min() != nil || tr.Max() != nil {
		t.Fatal("Min/Max of empty tree should be nil")
	}
	tr.Insert(1)
	tr.Clear()
	if tr.Len() != 0 || tr.Min() != nil {
		t.Fatal("Clear did not empty the tree")
	}
}

// TestTreeRandomOps is a randomized property test: after arbitrary insert and
// delete sequences, the tree matches a reference sorted multiset and keeps
// red-black invariants.
func TestTreeRandomOps(t *testing.T) {
	rng := sim.NewRNG(12345)
	tr := intTree()
	var ref []int
	handles := map[int][]*Node[int]{}
	for step := 0; step < 5000; step++ {
		if rng.Float64() < 0.6 || len(ref) == 0 {
			v := rng.Intn(200)
			handles[v] = append(handles[v], tr.Insert(v))
			ref = append(ref, v)
		} else {
			v := ref[rng.Intn(len(ref))]
			hs := handles[v]
			h := hs[len(hs)-1]
			handles[v] = hs[:len(hs)-1]
			tr.Delete(h)
			for i, rv := range ref {
				if rv == v {
					ref = append(ref[:i], ref[i+1:]...)
					break
				}
			}
		}
		if step%250 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	sort.Ints(ref)
	got := treeContents(tr)
	if len(got) != len(ref) {
		t.Fatalf("len = %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], ref[i])
		}
	}
}

// TestTreeQuickSorted uses testing/quick: inserting any slice yields a sorted
// traversal of the same multiset.
func TestTreeQuickSorted(t *testing.T) {
	f := func(vals []int16) bool {
		tr := intTree()
		for _, v := range vals {
			tr.Insert(int(v))
		}
		if err := tr.checkInvariants(); err != nil {
			return false
		}
		got := treeContents(tr)
		want := make([]int, len(vals))
		for i, v := range vals {
			want[i] = int(v)
		}
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueBasic(t *testing.T) {
	var q Queue[string]
	a := q.PushBack("a")
	b := q.PushBack("b")
	c := q.PushBack("c")
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if q.Front() != a {
		t.Fatal("Front should be a")
	}
	q.MoveToBack(a) // order: b c a
	if q.Front() != b {
		t.Fatal("Front should be b after MoveToBack(a)")
	}
	q.Remove(c) // order: b a
	var got []string
	q.Each(func(v string) bool { got = append(got, v); return true })
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("Each order %v, want [b a]", got)
	}
	q.Remove(b)
	q.Remove(a)
	if q.Len() != 0 || q.Front() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestQueueRemoveStalePanics(t *testing.T) {
	var q Queue[int]
	n := q.PushBack(1)
	q.Remove(n)
	defer func() {
		if recover() == nil {
			t.Fatal("double Remove did not panic")
		}
	}()
	q.Remove(n)
}

func TestQueueMoveToBackSingle(t *testing.T) {
	var q Queue[int]
	n := q.PushBack(1)
	q.MoveToBack(n) // no-op, must not corrupt
	if q.Front() != n || q.Len() != 1 {
		t.Fatal("MoveToBack on singleton corrupted the queue")
	}
}

func TestQueueLRUPattern(t *testing.T) {
	var q Queue[int]
	nodes := make([]*QueueNode[int], 10)
	for i := range nodes {
		nodes[i] = q.PushBack(i)
	}
	// Touch evens; odds should be evicted first.
	for i := 0; i < 10; i += 2 {
		q.MoveToBack(nodes[i])
	}
	var order []int
	q.Each(func(v int) bool { order = append(order, v); return true })
	want := []int{1, 3, 5, 7, 9, 0, 2, 4, 6, 8}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LRU order %v, want %v", order, want)
		}
	}
}
