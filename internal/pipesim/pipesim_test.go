package pipesim

import (
	"testing"
	"testing/quick"

	"repro/internal/caching"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/sim"
)

func pipeCfg(stages, micro int, sched parallel.Schedule) parallel.PipelineConfig {
	return parallel.PipelineConfig{Stages: stages, MicroBatches: micro, Schedule: sched}
}

func TestGPipeScheduleShape(t *testing.T) {
	ops, err := StageSchedule(pipeCfg(4, 3, parallel.GPipe), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{true, 0}, {true, 1}, {true, 2},
		{false, 2}, {false, 1}, {false, 0},
	}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestOneFOneBScheduleShape(t *testing.T) {
	// Stage 2 of 4, 6 microbatches: warmup 2 forwards, then B/F pairs,
	// then drain.
	ops, err := StageSchedule(pipeCfg(4, 6, parallel.OneFOneB), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{true, 0}, {true, 1},
		{false, 0}, {true, 2},
		{false, 1}, {true, 3},
		{false, 2}, {true, 4},
		{false, 3}, {true, 5},
		{false, 4}, {false, 5},
	}
	if len(ops) != len(want) {
		t.Fatalf("%d ops: %v", len(ops), ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := StageSchedule(pipeCfg(0, 4, parallel.GPipe), 0); err == nil {
		t.Fatal("accepted zero stages")
	}
	if _, err := StageSchedule(pipeCfg(2, 4, parallel.GPipe), 2); err == nil {
		t.Fatal("accepted out-of-range stage")
	}
}

// Property: every schedule runs each microbatch's F exactly once before its
// B, ends with nothing in flight, and its in-flight peak matches the
// PipelineConfig bound.
func TestScheduleProperty(t *testing.T) {
	prop := func(stagesRaw, microRaw, stageRaw uint8, oneF bool) bool {
		stages := int(stagesRaw)%12 + 1
		micro := int(microRaw)%24 + 1
		stage := int(stageRaw) % stages
		sched := parallel.GPipe
		if oneF {
			sched = parallel.OneFOneB
		}
		cfg := pipeCfg(stages, micro, sched)
		ops, err := StageSchedule(cfg, stage)
		if err != nil {
			return false
		}
		if len(ops) != 2*micro {
			return false
		}
		inFlight := map[int]bool{}
		peak := 0
		for _, op := range ops {
			if op.Forward {
				if inFlight[op.Microbatch] {
					return false // double forward
				}
				inFlight[op.Microbatch] = true
				if len(inFlight) > peak {
					peak = len(inFlight)
				}
			} else {
				if !inFlight[op.Microbatch] {
					return false // backward before forward
				}
				delete(inFlight, op.Microbatch)
			}
		}
		return len(inFlight) == 0 && peak == cfg.PeakMicrobatchesInFlight(stage)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func newStageAlloc(capacity int64, gmlake bool) func(int) memalloc.Allocator {
	return func(int) memalloc.Allocator {
		drv := cuda.NewDriver(gpu.NewDevice("t", capacity), sim.NewClock(), sim.DefaultCostModel())
		if gmlake {
			return core.NewDefault(drv)
		}
		return caching.New(drv)
	}
}

func TestRunCompletesWithoutLeak(t *testing.T) {
	cfg := Config{
		Model:      model.OPT1_3B,
		Pipe:       pipeCfg(4, 8, parallel.OneFOneB),
		MicroBatch: 4,
		Steps:      3,
	}
	results, err := Run(cfg, newStageAlloc(40*sim.GiB, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	totalLayers := 0
	for _, r := range results {
		if r.OOM {
			t.Fatalf("stage %d OOM on a 40 GiB device", r.Stage)
		}
		if r.Stats.Active != 0 {
			t.Fatalf("stage %d leaked %d bytes", r.Stage, r.Stats.Active)
		}
		totalLayers += r.Layers
	}
	if totalLayers != model.OPT1_3B.Layers {
		t.Fatalf("stages cover %d layers", totalLayers)
	}
}

func TestRunValidation(t *testing.T) {
	bad := Config{Model: model.OPT1_3B, Pipe: pipeCfg(4, 8, parallel.GPipe)}
	if _, err := Run(bad, newStageAlloc(sim.GiB, false)); err == nil {
		t.Fatal("accepted zero microbatch")
	}
	bad = Config{Model: model.OPT1_3B, Pipe: pipeCfg(4, 8, parallel.GPipe), MicroBatch: 2, SeqJitter: 1.5}
	if _, err := Run(bad, newStageAlloc(sim.GiB, false)); err == nil {
		t.Fatal("accepted jitter ≥ 1")
	}
}

func TestGPipeHoldsMoreThanOneFOneB(t *testing.T) {
	base := Config{
		Model:      model.OPT1_3B,
		Pipe:       pipeCfg(4, 16, parallel.GPipe),
		MicroBatch: 4,
		Steps:      2,
	}
	gp, err := Run(base, newStageAlloc(60*sim.GiB, false))
	if err != nil {
		t.Fatal(err)
	}
	base.Pipe.Schedule = parallel.OneFOneB
	ob, err := Run(base, newStageAlloc(60*sim.GiB, false))
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0: GPipe buffers 16 microbatches, 1F1B only 4.
	if gp[0].Stats.PeakActive <= ob[0].Stats.PeakActive {
		t.Fatalf("GPipe peak %d not above 1F1B %d", gp[0].Stats.PeakActive, ob[0].Stats.PeakActive)
	}
}

func TestJitterFragmentsCachingNotGMLake(t *testing.T) {
	cfg := Config{
		Model:      model.OPT1_3B,
		Pipe:       pipeCfg(2, 8, parallel.OneFOneB),
		MicroBatch: 8,
		SeqJitter:  0.2,
		Steps:      8,
		Seed:       7,
	}
	ca, err := Run(cfg, newStageAlloc(60*sim.GiB, false))
	if err != nil {
		t.Fatal(err)
	}
	gm, err := Run(cfg, newStageAlloc(60*sim.GiB, true))
	if err != nil {
		t.Fatal(err)
	}
	wc, wg := WorstStage(ca), WorstStage(gm)
	if wg.Stats.Utilization() < wc.Stats.Utilization() {
		t.Fatalf("GMLake util %.3f below caching %.3f under jitter",
			wg.Stats.Utilization(), wc.Stats.Utilization())
	}
	if wg.Stats.PeakReserved > wc.Stats.PeakReserved {
		t.Fatalf("GMLake reserved %d above caching %d", wg.Stats.PeakReserved, wc.Stats.PeakReserved)
	}
}

func TestOOMReportedPerStage(t *testing.T) {
	cfg := Config{
		Model:      model.OPT13B,
		Pipe:       pipeCfg(2, 8, parallel.GPipe),
		MicroBatch: 8,
		Steps:      1,
	}
	// Far too small for 13B halves: both stages OOM, Run still returns.
	results, err := Run(cfg, newStageAlloc(sim.GiB, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OOM {
			t.Fatalf("stage %d did not OOM on a 1 GiB device", r.Stage)
		}
	}
}

func TestWorstStage(t *testing.T) {
	rs := []StageResult{
		{Stage: 0, Stats: memalloc.Stats{PeakReserved: 10}},
		{Stage: 1, Stats: memalloc.Stats{PeakReserved: 30}},
		{Stage: 2, Stats: memalloc.Stats{PeakReserved: 20}},
	}
	if w := WorstStage(rs); w.Stage != 1 {
		t.Fatalf("worst = %d", w.Stage)
	}
}
