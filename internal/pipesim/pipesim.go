// Package pipesim drives per-stage memory allocators through pipeline-
// parallel training schedules, turning the paper's §2.4 observation — model
// parallelism fragments memory — into allocator traffic.
//
// A pipeline stage's activation lifetimes depend on the schedule: GPipe
// buffers every microbatch's activations to the flush and frees them in
// reverse (LIFO, friendly to any allocator); 1F1B holds a bounded window
// and frees in arrival order (FIFO) while fresh forwards interleave, so the
// pool keeps recycling under load. With sequence-length jitter the recycled
// blocks no longer fit exactly, which fragments the splitting-based caching
// allocator but not GMLake's stitching.
package pipesim

import (
	"fmt"

	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Op is one schedule slot of one stage.
type Op struct {
	Forward    bool
	Microbatch int
}

// StageSchedule returns the execution order of stage (0-based) under cfg:
// F/B ops over cfg.MicroBatches microbatches. The in-flight activation
// count never exceeds parallel.PipelineConfig.PeakMicrobatchesInFlight.
func StageSchedule(cfg parallel.PipelineConfig, stage int) ([]Op, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if stage < 0 || stage >= cfg.Stages {
		return nil, fmt.Errorf("pipesim: stage %d of %d", stage, cfg.Stages)
	}
	m := cfg.MicroBatches
	ops := make([]Op, 0, 2*m)
	switch cfg.Schedule {
	case parallel.GPipe:
		// All forwards, then backwards in reverse order (the autograd
		// graph unwinds LIFO).
		for i := 0; i < m; i++ {
			ops = append(ops, Op{Forward: true, Microbatch: i})
		}
		for i := m - 1; i >= 0; i-- {
			ops = append(ops, Op{Microbatch: i})
		}
	default: // OneFOneB
		warm := cfg.Stages - stage
		if warm > m {
			warm = m
		}
		for i := 0; i < warm; i++ {
			ops = append(ops, Op{Forward: true, Microbatch: i})
		}
		for i := warm; i < m; i++ {
			ops = append(ops, Op{Microbatch: i - warm})
			ops = append(ops, Op{Forward: true, Microbatch: i})
		}
		for i := m - warm; i < m; i++ {
			ops = append(ops, Op{Microbatch: i})
		}
	}
	return ops, nil
}

// Config describes one pipeline-parallel training simulation.
type Config struct {
	Model model.Config
	Pipe  parallel.PipelineConfig

	// MicroBatch is the per-microbatch sample count.
	MicroBatch int
	// SeqLen is the nominal sequence length (0 → model default).
	SeqLen int
	// SeqJitter varies each microbatch's activation size by up to this
	// fraction, the variable-length batches of real fine-tuning. Zero
	// replays identical sizes.
	SeqJitter float64
	// Steps is how many full pipeline flushes to run.
	Steps int
	// Seed drives the jitter.
	Seed uint64
}

func (c Config) normalize() (Config, error) {
	if err := c.Pipe.Validate(); err != nil {
		return c, err
	}
	if c.MicroBatch <= 0 {
		return c, fmt.Errorf("pipesim: microbatch %d", c.MicroBatch)
	}
	if c.SeqLen == 0 {
		c.SeqLen = c.Model.SeqLen
	}
	if c.SeqLen <= 0 {
		return c, fmt.Errorf("pipesim: seq len %d", c.SeqLen)
	}
	if c.Steps <= 0 {
		c.Steps = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SeqJitter < 0 || c.SeqJitter >= 1 {
		return c, fmt.Errorf("pipesim: jitter %v", c.SeqJitter)
	}
	return c, nil
}

// StageResult is one stage's memory outcome.
type StageResult struct {
	Stage  int
	Layers int
	Stats  memalloc.Stats
	OOM    bool
}

// Run executes cfg with one allocator per stage, supplied by newAlloc (each
// stage models its own GPU). It returns per-stage results; an OOM stops the
// affected stage but the others complete, mirroring how a real job surfaces
// the worst rank.
func Run(cfg Config, newAlloc func(stage int) memalloc.Allocator) ([]StageResult, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	layersPerStage, err := cfg.Pipe.PartitionLayers(cfg.Model.Layers)
	if err != nil {
		return nil, err
	}

	results := make([]StageResult, cfg.Pipe.Stages)
	for stage := 0; stage < cfg.Pipe.Stages; stage++ {
		results[stage] = runStage(cfg, stage, layersPerStage[stage], newAlloc(stage))
	}
	return results, nil
}

func runStage(cfg Config, stage, layers int, alloc memalloc.Allocator) StageResult {
	res := StageResult{Stage: stage, Layers: layers}
	rng := sim.NewRNG(cfg.Seed + uint64(stage)*1e9)

	// Persistent stage state: this stage's parameter and gradient shard.
	stateBytes := 2 * cfg.Model.LayerParamBytes() * int64(layers)
	state, err := alloc.Alloc(stateBytes)
	if err != nil {
		res.OOM = true
		res.Stats = alloc.Stats()
		return res
	}

	perMicro := cfg.Model.ActivationBytesPerLayer(cfg.MicroBatch, cfg.SeqLen) * int64(layers)
	sched, err := StageSchedule(cfg.Pipe, stage)
	if err != nil {
		panic(err) // cfg was validated
	}

	live := make(map[int]*memalloc.Buffer, cfg.Pipe.MicroBatches)
	oom := false
steps:
	for step := 0; step < cfg.Steps; step++ {
		for _, op := range sched {
			if op.Forward {
				size := rng.Jitter(perMicro, cfg.SeqJitter)
				b, err := alloc.Alloc(size)
				if err != nil {
					oom = true
					break steps
				}
				live[op.Microbatch] = b
				// Transient working set of the forward kernels, freed
				// before the next slot.
				if w, err := alloc.Alloc(size / 4); err == nil {
					alloc.Free(w)
				}
			} else {
				b, ok := live[op.Microbatch]
				if !ok {
					panic(fmt.Sprintf("pipesim: backward for unseen microbatch %d", op.Microbatch))
				}
				// Backward needs a gradient working buffer alongside the
				// stored activations.
				if w, err := alloc.Alloc(perMicro / 2); err == nil {
					alloc.Free(w)
				}
				alloc.Free(b)
				delete(live, op.Microbatch)
			}
		}
		if len(live) != 0 {
			panic("pipesim: schedule left activations in flight after a flush")
		}
	}
	for _, b := range live {
		alloc.Free(b)
	}
	alloc.Free(state)
	res.OOM = oom
	res.Stats = alloc.Stats()
	return res
}

// WorstStage returns the result with the highest peak reserved memory.
func WorstStage(results []StageResult) StageResult {
	worst := results[0]
	for _, r := range results[1:] {
		if r.Stats.PeakReserved > worst.Stats.PeakReserved {
			worst = r
		}
	}
	return worst
}
