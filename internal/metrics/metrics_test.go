package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.Record(0, 10, 20)
	tl.Record(time.Second, 50, 60)
	tl.Record(2*time.Second, 30, 60)
	if tl.Len() != 3 {
		t.Fatalf("Len = %d", tl.Len())
	}
	if tl.PeakActive() != 50 || tl.PeakReserved() != 60 {
		t.Fatalf("peaks %d/%d", tl.PeakActive(), tl.PeakReserved())
	}
}

func TestTimelineCSV(t *testing.T) {
	var tl Timeline
	tl.Record(1500*time.Millisecond, 1<<20, 2<<20)
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "seconds,active_bytes,reserved_bytes\n1.500,1048576,2097152\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestRunMetrics(t *testing.T) {
	r := Run{PeakActive: 75, PeakReserved: 100, Samples: 200, Elapsed: 4 * time.Second}
	if r.Utilization() != 0.75 {
		t.Fatalf("Utilization = %v", r.Utilization())
	}
	if r.Fragmentation() != 0.25 {
		t.Fatalf("Fragmentation = %v", r.Fragmentation())
	}
	if r.Throughput() != 50 {
		t.Fatalf("Throughput = %v", r.Throughput())
	}
	empty := Run{}
	if empty.Utilization() != 1 || empty.Throughput() != 0 {
		t.Fatal("zero-run metrics wrong")
	}
}

func TestMemReductionRatio(t *testing.T) {
	base := []Run{{PeakReserved: 100}, {PeakReserved: 100}}
	treat := []Run{{PeakReserved: 80}, {PeakReserved: 60}}
	if got := MemReductionRatio(base, treat); got != 0.3 {
		t.Fatalf("ratio = %v, want 0.3", got)
	}
	// OOM pairs are skipped.
	base = append(base, Run{PeakReserved: 1000, OOM: true})
	treat = append(treat, Run{PeakReserved: 10})
	if got := MemReductionRatio(base, treat); got != 0.3 {
		t.Fatalf("ratio with OOM pair = %v, want 0.3", got)
	}
}

func TestMemReductionRatioMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lists did not panic")
		}
	}()
	MemReductionRatio([]Run{{}}, nil)
}
