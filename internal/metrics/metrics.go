// Package metrics aggregates the paper's measurement vocabulary: memory
// timelines (Figures 5 and 14), peak utilization/fragmentation (every other
// figure) and throughput.
package metrics

import (
	"fmt"
	"io"
	"time"
)

// Sample is one point of a memory timeline.
type Sample struct {
	T        time.Duration
	Active   int64
	Reserved int64
}

// Timeline is an append-only series of memory samples.
type Timeline struct {
	samples []Sample
}

// Record appends a sample.
func (tl *Timeline) Record(t time.Duration, active, reserved int64) {
	tl.samples = append(tl.samples, Sample{T: t, Active: active, Reserved: reserved})
}

// Samples returns the recorded series.
func (tl *Timeline) Samples() []Sample { return tl.samples }

// Len returns the number of samples.
func (tl *Timeline) Len() int { return len(tl.samples) }

// PeakActive returns the maximum active bytes seen.
func (tl *Timeline) PeakActive() int64 {
	var peak int64
	for _, s := range tl.samples {
		if s.Active > peak {
			peak = s.Active
		}
	}
	return peak
}

// PeakReserved returns the maximum reserved bytes seen.
func (tl *Timeline) PeakReserved() int64 {
	var peak int64
	for _, s := range tl.samples {
		if s.Reserved > peak {
			peak = s.Reserved
		}
	}
	return peak
}

// WriteCSV emits "seconds,active_bytes,reserved_bytes" rows.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "seconds,active_bytes,reserved_bytes"); err != nil {
		return err
	}
	for _, s := range tl.samples {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d\n", s.T.Seconds(), s.Active, s.Reserved); err != nil {
			return err
		}
	}
	return nil
}

// Run summarizes one workload execution on one allocator, the row format
// shared by every experiment table.
type Run struct {
	Allocator    string
	PeakActive   int64
	PeakReserved int64
	Steps        int
	Samples      int           // total samples processed
	Elapsed      time.Duration // virtual time
	OOM          bool          // the run died with out-of-memory
	AllocCount   int64
	FreeCount    int64
}

// Utilization returns peak active / peak reserved (paper §5.1).
func (r Run) Utilization() float64 {
	if r.PeakReserved == 0 {
		return 1
	}
	return float64(r.PeakActive) / float64(r.PeakReserved)
}

// Fragmentation returns 1 - Utilization.
func (r Run) Fragmentation() float64 { return 1 - r.Utilization() }

// Throughput returns samples per virtual second.
func (r Run) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Samples) / r.Elapsed.Seconds()
}

// MemReductionRatio computes the paper's §5.1 aggregate
// (Σ baseline reserved − Σ treatment reserved) / Σ baseline reserved over
// paired runs. Runs where either side OOM'd are skipped, as the paper can
// only compare completed workloads.
func MemReductionRatio(baseline, treatment []Run) float64 {
	if len(baseline) != len(treatment) {
		panic("metrics: mismatched run lists")
	}
	var base, treat int64
	for i := range baseline {
		if baseline[i].OOM || treatment[i].OOM {
			continue
		}
		base += baseline[i].PeakReserved
		treat += treatment[i].PeakReserved
	}
	if base == 0 {
		return 0
	}
	return float64(base-treat) / float64(base)
}
