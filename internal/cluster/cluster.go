// Package cluster simulates a full data-parallel job: one device, driver and
// allocator per rank, stepped in lockstep with barrier semantics.
//
// The single-rank harness runs "rank 0" and relies on data-parallel symmetry,
// which is exact when every rank sees identically-shaped batches. In real
// dynamic-shape training each rank draws different samples, so ranks
// fragment differently — and a job dies when *any* rank OOMs, making the
// worst rank's reserved memory the operative number. This package quantifies
// that gap (the harness's `cluster` experiment) and doubles as a multi-GPU
// integration test of the whole stack.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/caching"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/expandable"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes one cluster job.
type Config struct {
	// Spec is the per-rank workload; Spec.World is the number of ranks.
	Spec workload.Spec

	// Allocator names the allocator every rank uses: "caching", "gmlake",
	// "expandable" or "compact".
	Allocator string

	// Capacity is per-GPU memory in bytes.
	Capacity int64

	// SharedShapes makes every rank draw identical batch shapes (the
	// symmetric approximation); when false, each rank seeds its own shape
	// stream, as with real per-rank data loaders.
	SharedShapes bool
}

// Rank is one simulated GPU plus its allocator and trainer.
type Rank struct {
	ID      int
	Device  *gpu.Device
	Driver  *cuda.Driver
	Clock   *sim.Clock
	Alloc   memalloc.Allocator
	Trainer *workload.Trainer
}

// Cluster is a running multi-rank job.
type Cluster struct {
	cfg   Config
	ranks []*Rank
	steps int
}

// New assembles a cluster; Setup must be called before stepping.
func New(cfg Config) (*Cluster, error) {
	spec, err := cfg.Spec.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 80 * sim.GiB
	}
	c := &Cluster{cfg: cfg}
	for r := 0; r < spec.World; r++ {
		dev := gpu.NewDevice(fmt.Sprintf("sim-gpu-%d", r), cfg.Capacity)
		clock := sim.NewClock()
		driver := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
		alloc, err := newAllocator(cfg.Allocator, driver)
		if err != nil {
			return nil, err
		}
		rankSpec := spec
		if !cfg.SharedShapes {
			// Distinct shape streams per rank, as with per-rank data
			// loaders.
			rankSpec.Seed = spec.Seed + uint64(r)*0x9e3779b9
		}
		tr, err := workload.NewTrainer(rankSpec, alloc, clock)
		if err != nil {
			return nil, err
		}
		c.ranks = append(c.ranks, &Rank{
			ID: r, Device: dev, Driver: driver, Clock: clock,
			Alloc: alloc, Trainer: tr,
		})
	}
	return c, nil
}

func newAllocator(name string, driver *cuda.Driver) (memalloc.Allocator, error) {
	switch name {
	case "", "caching":
		return caching.New(driver), nil
	case "gmlake":
		return core.NewDefault(driver), nil
	case "expandable":
		return expandable.New(driver), nil
	case "compact":
		return compact.New(driver), nil
	default:
		return nil, fmt.Errorf("cluster: unknown allocator %q", name)
	}
}

// Ranks returns the cluster's ranks.
func (c *Cluster) Ranks() []*Rank { return c.ranks }

// Steps returns the completed lockstep count.
func (c *Cluster) Steps() int { return c.steps }

// Setup allocates every rank's persistent state. The first rank failure
// aborts the job, mirroring a collective launch.
func (c *Cluster) Setup() error {
	for _, r := range c.ranks {
		if err := r.Trainer.Setup(); err != nil {
			return fmt.Errorf("cluster: rank %d: %w", r.ID, err)
		}
	}
	c.barrier()
	return nil
}

// Step runs one training step on every rank and synchronizes their clocks at
// the gradient barrier: the job advances at the slowest rank's pace. An OOM
// on any rank fails the whole step, as a collective would.
func (c *Cluster) Step() error {
	for _, r := range c.ranks {
		if err := r.Trainer.Step(); err != nil {
			return fmt.Errorf("cluster: rank %d: %w", r.ID, err)
		}
	}
	c.barrier()
	c.steps++
	return nil
}

// barrier advances every rank's clock to the slowest rank's time.
func (c *Cluster) barrier() {
	var max time.Duration
	for _, r := range c.ranks {
		if t := r.Clock.Now(); t > max {
			max = t
		}
	}
	for _, r := range c.ranks {
		r.Clock.AdvanceTo(max)
	}
}

// Teardown frees every rank's state.
func (c *Cluster) Teardown() {
	for _, r := range c.ranks {
		r.Trainer.Teardown()
	}
}

// Summary aggregates the job-level numbers.
type Summary struct {
	Ranks            int
	Steps            int
	Elapsed          time.Duration
	MaxPeakReserved  int64 // worst rank — the OOM-relevant figure
	MinPeakReserved  int64
	MeanPeakReserved int64
	MaxPeakActive    int64
	MinUtilization   float64
}

// Summarize reports the cluster's aggregate statistics.
func (c *Cluster) Summarize() Summary {
	s := Summary{Ranks: len(c.ranks), Steps: c.steps, MinUtilization: 1}
	if len(c.ranks) == 0 {
		return s
	}
	s.MinPeakReserved = int64(1<<62 - 1)
	var total int64
	for _, r := range c.ranks {
		st := r.Alloc.Stats()
		total += st.PeakReserved
		if st.PeakReserved > s.MaxPeakReserved {
			s.MaxPeakReserved = st.PeakReserved
		}
		if st.PeakReserved < s.MinPeakReserved {
			s.MinPeakReserved = st.PeakReserved
		}
		if st.PeakActive > s.MaxPeakActive {
			s.MaxPeakActive = st.PeakActive
		}
		if u := st.Utilization(); u < s.MinUtilization {
			s.MinUtilization = u
		}
	}
	s.MeanPeakReserved = total / int64(len(c.ranks))
	s.Elapsed = c.ranks[0].Clock.Now()
	return s
}

// RankSkew returns the worst-to-mean peak-reserved ratio: 1.0 under
// perfectly symmetric ranks, above it when per-rank shape streams fragment
// ranks differently.
func (s Summary) RankSkew() float64 {
	if s.MeanPeakReserved == 0 {
		return 1
	}
	return float64(s.MaxPeakReserved) / float64(s.MeanPeakReserved)
}
