package cluster

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testConfig(alloc string, shared bool, world, batch int) Config {
	return Config{
		Spec: workload.Spec{
			Model:    model.OPT1_3B,
			Strategy: workload.StrategyLR,
			World:    world,
			Batch:    batch,
			Seed:     7,
		},
		Allocator:    alloc,
		Capacity:     80 * sim.GiB,
		SharedShapes: shared,
	}
}

func TestClusterLockstep(t *testing.T) {
	c, err := New(testConfig("gmlake", false, 4, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(); err != nil {
		t.Fatal(err)
	}
	defer c.Teardown()
	for i := 0; i < 5; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Steps() != 5 {
		t.Fatalf("Steps = %d", c.Steps())
	}
	// Barrier: all clocks equal after each step.
	t0 := c.Ranks()[0].Clock.Now()
	for _, r := range c.Ranks() {
		if r.Clock.Now() != t0 {
			t.Fatalf("rank %d clock %v != rank 0 clock %v", r.ID, r.Clock.Now(), t0)
		}
	}
	if t0 <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestSharedShapesAreSymmetric(t *testing.T) {
	c, err := New(testConfig("caching", true, 4, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(); err != nil {
		t.Fatal(err)
	}
	defer c.Teardown()
	for i := 0; i < 6; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Summarize()
	if s.MaxPeakReserved != s.MinPeakReserved {
		t.Fatalf("shared shapes produced asymmetric ranks: max %d min %d",
			s.MaxPeakReserved, s.MinPeakReserved)
	}
	if got := s.RankSkew(); got != 1 {
		t.Fatalf("RankSkew = %v, want 1", got)
	}
}

func TestPerRankShapesSkewReserved(t *testing.T) {
	c, err := New(testConfig("caching", false, 4, 16))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(); err != nil {
		t.Fatal(err)
	}
	defer c.Teardown()
	for i := 0; i < 12; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Summarize()
	if s.MaxPeakReserved <= s.MinPeakReserved {
		t.Fatal("per-rank shape streams produced identical ranks; seeds not varied")
	}
	if s.RankSkew() <= 1.0 {
		t.Fatalf("RankSkew = %v, want > 1", s.RankSkew())
	}
}

func TestGMLakeShrinksRankSkew(t *testing.T) {
	// GMLake's reserved tracks active, so rank-to-rank variance shrinks
	// versus the caching allocator's packing-history-dependent reserved.
	run := func(alloc string) Summary {
		c, err := New(testConfig(alloc, false, 4, 16))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Setup(); err != nil {
			t.Fatal(err)
		}
		defer c.Teardown()
		for i := 0; i < 12; i++ {
			if err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return c.Summarize()
	}
	base := run("caching")
	gml := run("gmlake")
	if gml.MaxPeakReserved >= base.MaxPeakReserved {
		t.Fatalf("worst-rank reserved: gmlake %d not below caching %d",
			gml.MaxPeakReserved, base.MaxPeakReserved)
	}
}

func TestClusterOOMPropagates(t *testing.T) {
	cfg := testConfig("caching", false, 2, 64)
	cfg.Capacity = 4 * sim.GiB
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Teardown()
	if err := c.Setup(); err == nil {
		if err := c.Step(); err == nil {
			t.Fatal("expected an OOM somewhere on a 4 GiB device")
		}
	}
}

func TestUnknownAllocator(t *testing.T) {
	cfg := testConfig("bogus", true, 1, 1)
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown allocator accepted")
	}
}

func TestSummaryFields(t *testing.T) {
	c, err := New(testConfig("gmlake", true, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Setup(); err != nil {
		t.Fatal(err)
	}
	defer c.Teardown()
	for i := 0; i < 3; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Summarize()
	if s.Ranks != 2 || s.Steps != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.MaxPeakReserved < s.MeanPeakReserved || s.MeanPeakReserved < s.MinPeakReserved {
		t.Fatalf("reserved ordering broken: %+v", s)
	}
	if s.MinUtilization <= 0 || s.MinUtilization > 1 {
		t.Fatalf("MinUtilization = %v", s.MinUtilization)
	}
	if s.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}
