package core

// fitState is the outcome of the BestFit search, paper Algorithm 1.
type fitState int

const (
	// fitExact (S1): an inactive block — sBlock or pBlock — matches the
	// request exactly. The only state in which an sBlock may be handed out.
	fitExact fitState = iota + 1
	// fitSingle (S2): the best-fit single pBlock is larger than the request
	// and will be split.
	fitSingle
	// fitMultiple (S3): no single pBlock fits, but several together do and
	// will be stitched.
	fitMultiple
	// fitInsufficient (S4): the inactive pBlocks cannot cover the request;
	// new physical memory must be allocated for the deficit.
	fitInsufficient
)

// bestFitResult carries the candidates out of the search.
type bestFitResult struct {
	state  fitState
	exactS *SBlock   // set for fitExact when the match is an sBlock
	exactP *PBlock   // set for fitExact when the match is a pBlock
	cands  []*PBlock // candidate pBlocks for S2/S3/S4
	total  int64     // Σ candidate sizes
}

// bestFit implements paper Algorithm 1 over the inactive pools.
//
// Exact matches are looked up directly in both ordered trees (line 2-4's
// scan, done in O(log n)). Otherwise the inactive pBlocks are walked in
// descending size order: while blocks still cover the request the current
// best (smallest sufficient) single block is retained; once blocks become
// smaller than the request they are accumulated greedily until the running
// total covers it.
//
// Candidates smaller than fragLimit are skipped during accumulation — the
// paper's §4.2.3 robustness rule ("if a block is smaller than this limit,
// GMLake will avoid stitching or splitting it"); they remain reusable
// through exact matches.
func (a *Allocator) bestFit(size int64) bestFitResult {
	// S1: exact match, sBlocks first (reusing a cached stitched block is
	// the convergence mechanism of §5.4).
	if s := findExactS(a.sblocks.inactive, size); s != nil {
		return bestFitResult{state: fitExact, exactS: s}
	}
	if p := findExactP(a.pblocks.inactive, size); p != nil {
		return bestFitResult{state: fitExact, exactP: p}
	}

	// Single-block regime: the smallest inactive pBlock covering the whole
	// request (best fit). Exact sizes were handled above, so this is a
	// strictly larger block headed for a split.
	if n := a.pblocks.inactive.Ceil(&PBlock{size: size}); n != nil {
		return bestFitResult{state: fitSingle, cands: []*PBlock{n.Value}, total: n.Value.size}
	}

	// Multi-block regime. The first pass honours the fragmentation limit;
	// if that leaves the request uncovered, a second pass admits the small
	// blocks too — stitching fragments is still better than allocating new
	// physical memory (and far better than reporting OOM).
	cands, total := a.collectCandidates(size, a.cfg.FragLimit)
	if total < size {
		cands, total = a.collectCandidates(size, 0)
	}
	if total >= size {
		return bestFitResult{state: fitMultiple, cands: cands, total: total}
	}
	return bestFitResult{state: fitInsufficient, cands: cands, total: total}
}

// collectCandidates accumulates inactive pBlocks (each at least minBlock
// bytes) for stitching, walking sizes in descending order and never letting
// a block overshoot the remaining need. On 2 MiB-granular block populations
// this lands an exact sum most of the time, which matters doubly: no
// trailing split is needed (splits destroy every cached sBlock over the
// split block, erasing the convergence tape), and the stitched block matches
// the request with zero waste.
//
// When the exact walk leaves a remainder, the smallest block covering the
// remainder is appended for the caller to split — preferring, among
// same-sized choices, a block with the fewest stitched views over it.
func (a *Allocator) collectCandidates(size, minBlock int64) ([]*PBlock, int64) {
	var (
		cands []*PBlock
		taken map[*PBlock]struct{}
	)
	needed := size
	a.pblocks.inactive.Descend(func(n *pNode) bool {
		p := n.Value
		if p.size < minBlock {
			return false
		}
		if p.size <= needed {
			cands = append(cands, p)
			needed -= p.size
		}
		return needed > 0
	})
	if needed == 0 {
		return cands, size
	}
	// Top up with a block to split. Everything accumulated so far is
	// excluded; ties on size prefer fewer owner sBlocks to limit tape
	// damage.
	taken = make(map[*PBlock]struct{}, len(cands))
	for _, p := range cands {
		taken[p] = struct{}{}
	}
	var top *PBlock
	scanned := 0
	for n := a.pblocks.inactive.Ceil(&PBlock{size: needed}); n != nil && scanned < 8; n = a.pblocks.inactive.Next(n) {
		p := n.Value
		if _, dup := taken[p]; dup {
			continue
		}
		scanned++
		if top == nil || len(p.owners) < len(top.owners) {
			top = p
		}
		if len(top.owners) == 0 {
			break
		}
	}
	if top == nil {
		return cands, size - needed
	}
	return append(cands, top), size - needed + top.size
}
