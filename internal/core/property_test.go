package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

// opSeq is a compact encoding of an alloc/free sequence for property tests:
// non-negative values allocate (value scales the size), negative values free
// the oldest live buffer.
func runOpSeq(a *Allocator, ops []int16) (live []*memalloc.Buffer) {
	for _, op := range ops {
		if op >= 0 {
			size := (int64(op)%1024 + 1) * sim.MiB
			if b, err := a.Alloc(size); err == nil {
				live = append(live, b)
			}
		} else if len(live) > 0 {
			a.Free(live[0])
			live = live[1:]
		}
	}
	return live
}

// TestQuickInvariants drives arbitrary alloc/free sequences and checks the
// §4.2.1 structural invariants plus device-accounting agreement throughout.
func TestQuickInvariants(t *testing.T) {
	f := func(ops []int16) bool {
		dev := gpu.NewDevice("q", 8*sim.GiB)
		drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
		a := NewDefault(drv)
		live := runOpSeq(a, ops)
		if err := a.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		// Reserved must equal what the device has handed out.
		if a.Stats().Reserved != dev.Used() {
			t.Logf("reserved %d != device used %d", a.Stats().Reserved, dev.Used())
			return false
		}
		for _, b := range live {
			a.Free(b)
		}
		a.EmptyCache()
		if dev.Used() != 0 {
			t.Logf("device leak: %d", dev.Used())
			return false
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickActiveNeverExceedsReserved holds by construction but is the
// paper's core accounting identity; check it across random sequences.
func TestQuickActiveNeverExceedsReserved(t *testing.T) {
	f := func(ops []int16) bool {
		dev := gpu.NewDevice("q", 4*sim.GiB)
		drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
		a := NewDefault(drv)
		var live []*memalloc.Buffer
		for _, op := range ops {
			if op >= 0 {
				size := (int64(op)%512 + 1) * sim.MiB
				if b, err := a.Alloc(size); err == nil {
					live = append(live, b)
				}
			} else if len(live) > 0 {
				a.Free(live[len(live)-1])
				live = live[:len(live)-1]
			}
			st := a.Stats()
			if st.Active > st.Reserved {
				return false
			}
		}
		for _, b := range live {
			a.Free(b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRebindOnSplitPreservesSBlocks verifies the rebind extension directly:
// splitting a pBlock that cached sBlocks reference must keep those sBlocks
// alive and exactly-matchable.
func TestRebindOnSplitPreservesSBlocks(t *testing.T) {
	dev := gpu.NewDevice("t", 4*sim.GiB)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	a := NewDefault(drv)

	// Build a 600 MiB stitched block over two pBlocks.
	b1 := mustAlloc(t, a, 200*sim.MiB)
	b2 := mustAlloc(t, a, 400*sim.MiB)
	a.Free(b1)
	a.Free(b2)
	big := mustAlloc(t, a, 600*sim.MiB)
	a.Free(big)
	sBefore := a.SBlockCount()

	// Split the 400 MiB member via a smaller request (S2).
	small := mustAlloc(t, a, 300*sim.MiB)
	if a.SBlockCount() < sBefore {
		t.Fatalf("split destroyed cached sBlocks: %d -> %d", sBefore, a.SBlockCount())
	}
	a.Free(small)
	checkInv(t, a)

	// The 600 MiB view must still exact-match (S1), with no new stitch.
	_, _, s3Before, _ := a.StrategyCounts()
	again := mustAlloc(t, a, 600*sim.MiB)
	_, _, s3After, _ := a.StrategyCounts()
	if s3After != s3Before {
		t.Fatal("600 MiB request re-stitched; rebind failed to preserve the cached view")
	}
	a.Free(again)
	checkInv(t, a)
}

// TestDestroyOnSplitAblation runs the same scenario with the paper's literal
// semantics: the cached view dies with the split and the request re-stitches.
func TestDestroyOnSplitAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RebindOnSplit = false
	dev := gpu.NewDevice("t", 4*sim.GiB)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	a := New(drv, cfg)

	b1 := mustAlloc(t, a, 200*sim.MiB)
	b2 := mustAlloc(t, a, 400*sim.MiB)
	a.Free(b1)
	a.Free(b2)
	big := mustAlloc(t, a, 600*sim.MiB)
	a.Free(big)

	small := mustAlloc(t, a, 300*sim.MiB)
	a.Free(small)
	checkInv(t, a)

	_, _, s3Before, _ := a.StrategyCounts()
	again := mustAlloc(t, a, 600*sim.MiB)
	_, _, s3After, _ := a.StrategyCounts()
	if s3After == s3Before {
		t.Fatal("expected a re-stitch under destroy-on-split semantics")
	}
	a.Free(again)
	checkInv(t, a)
}

// TestQuickInvariantsDestroyOnSplit re-runs the structural property test
// under the ablation configuration.
func TestQuickInvariantsDestroyOnSplit(t *testing.T) {
	f := func(ops []int16) bool {
		dev := gpu.NewDevice("q", 8*sim.GiB)
		drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
		cfg := DefaultConfig()
		cfg.RebindOnSplit = false
		a := New(drv, cfg)
		live := runOpSeq(a, ops)
		if err := a.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		for _, b := range live {
			a.Free(b)
		}
		a.EmptyCache()
		return dev.Used() == 0 && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVASpaceReleasedOnEmptyCache confirms no virtual address space leaks
// across heavy stitch/split churn followed by a full GC.
func TestVASpaceReleasedOnEmptyCache(t *testing.T) {
	dev := gpu.NewDevice("t", 8*sim.GiB)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	a := NewDefault(drv)
	rng := sim.NewRNG(11)
	var live []*memalloc.Buffer
	for i := 0; i < 600; i++ {
		if rng.Float64() < 0.55 {
			if b, err := a.Alloc((rng.Int63n(512) + 1) * sim.MiB); err == nil {
				live = append(live, b)
			}
		} else if len(live) > 0 {
			j := rng.Intn(len(live))
			a.Free(live[j])
			live = append(live[:j], live[j+1:]...)
		}
	}
	for _, b := range live {
		a.Free(b)
	}
	a.EmptyCache()
	if got := dev.VAFragments(); got != 1 {
		t.Fatalf("virtual address space fragmented into %d pieces after full GC, want 1", got)
	}
}
