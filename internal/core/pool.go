package core

import (
	"repro/internal/container"
)

// pNode abbreviates the tree node type in iteration callbacks.
type pNode = container.Node[*PBlock]

// pPool holds every pBlock. Inactive pBlocks are additionally indexed in an
// ordered tree so BestFit can scan them by size (the paper keeps the pool
// "sorted by block size in descending order"; we store ascending and walk
// backwards, which is equivalent).
type pPool struct {
	all      map[*PBlock]struct{}
	inactive *container.Tree[*PBlock]
	bytes    int64 // Σ sizes of all pBlocks == GMLake's reserved memory
}

func newPPool() *pPool {
	return &pPool{
		all: make(map[*PBlock]struct{}),
		inactive: container.NewTree[*PBlock](func(a, b *PBlock) bool {
			if a.size != b.size {
				return a.size < b.size
			}
			return a.va < b.va
		}),
	}
}

// add registers a new (inactive) pBlock.
func (pp *pPool) add(p *PBlock) {
	pp.all[p] = struct{}{}
	pp.bytes += p.size
	p.node = pp.inactive.Insert(p)
}

// remove unregisters a pBlock entirely (it is being split or destroyed).
func (pp *pPool) remove(p *PBlock) {
	delete(pp.all, p)
	pp.bytes -= p.size
	if p.node != nil {
		pp.inactive.Delete(p.node)
		p.node = nil
	}
}

// markActive pulls p from the inactive index.
func (pp *pPool) markActive(p *PBlock) {
	if p.node != nil {
		pp.inactive.Delete(p.node)
		p.node = nil
	}
}

// markInactive puts p back into the inactive index.
func (pp *pPool) markInactive(p *PBlock) {
	if p.node == nil {
		p.node = pp.inactive.Insert(p)
	}
}

// sPool holds every sBlock, its inactive index, and the LRU queue StitchFree
// evicts from.
type sPool struct {
	all      map[*SBlock]struct{}
	inactive *container.Tree[*SBlock]
	lru      container.Queue[*SBlock]
}

func newSPool() *sPool {
	return &sPool{
		all: make(map[*SBlock]struct{}),
		inactive: container.NewTree[*SBlock](func(a, b *SBlock) bool {
			if a.size != b.size {
				return a.size < b.size
			}
			return a.va < b.va
		}),
	}
}

func (sp *sPool) add(s *SBlock) {
	sp.all[s] = struct{}{}
	s.lru = sp.lru.PushBack(s)
}

func (sp *sPool) remove(s *SBlock) {
	delete(sp.all, s)
	if s.node != nil {
		sp.inactive.Delete(s.node)
		s.node = nil
	}
	if s.lru != nil {
		sp.lru.Remove(s.lru)
		s.lru = nil
	}
}

func (sp *sPool) markAvailable(s *SBlock) {
	if s.node == nil {
		s.node = sp.inactive.Insert(s)
	}
}

func (sp *sPool) markUnavailable(s *SBlock) {
	if s.node != nil {
		sp.inactive.Delete(s.node)
		s.node = nil
	}
}

func (sp *sPool) touch(s *SBlock) {
	if s.lru != nil {
		sp.lru.MoveToBack(s.lru)
	}
}

// findExactP returns an inactive pBlock of exactly size bytes, or nil.
// Among equal-sized blocks it prefers one with the fewest sBlocks stitched
// over it: assigning a lightly-shared block keeps the heavily-shared ones
// free, so the cached stitched views over them stay available for exact
// matches (the convergence mechanism of §5.4).
func findExactP(tree *container.Tree[*PBlock], size int64) *PBlock {
	n := tree.Ceil(&PBlock{size: size})
	if n == nil || n.Value.size != size {
		return nil
	}
	best := n.Value
	for scanned := 0; scanned < 8 && len(best.owners) > 0; scanned++ {
		n = tree.Next(n)
		if n == nil || n.Value.size != size {
			break
		}
		if len(n.Value.owners) < len(best.owners) {
			best = n.Value
		}
	}
	return best
}

func findExactS(tree *container.Tree[*SBlock], size int64) *SBlock {
	n := tree.Ceil(&SBlock{size: size})
	if n == nil || n.Value.size != size {
		return nil
	}
	return n.Value
}
