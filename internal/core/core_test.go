package core

import (
	"errors"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func newTestAllocator(capacity int64) (*Allocator, *cuda.Driver) {
	dev := gpu.NewDevice("test", capacity)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	return NewDefault(drv), drv
}

func mustAlloc(t *testing.T, a *Allocator, size int64) *memalloc.Buffer {
	t.Helper()
	b, err := a.Alloc(size)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", size, err)
	}
	return b
}

func checkInv(t *testing.T, a *Allocator) {
	t.Helper()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFreeExactReuse(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 100*sim.MiB)
	creates := drv.Counters().MemCreate
	a.Free(b)
	// Same-size realloc must be an S1 exact match: no new physical chunks.
	b2 := mustAlloc(t, a, 100*sim.MiB)
	if drv.Counters().MemCreate != creates {
		t.Fatal("exact-match realloc created new physical chunks")
	}
	if b2.Ptr != b.Ptr {
		t.Fatal("exact match should reuse the same pBlock")
	}
	s1, _, _, s4 := a.StrategyCounts()
	if s1 != 1 || s4 != 1 {
		t.Fatalf("strategy counts s1=%d s4=%d, want 1 and 1", s1, s4)
	}
	a.Free(b2)
	checkInv(t, a)
}

func TestSplitS2(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	big := mustAlloc(t, a, 400*sim.MiB)
	a.Free(big)
	// Smaller request: S2 splits the 400 MiB pBlock.
	small := mustAlloc(t, a, 150*sim.MiB)
	_, s2, _, _ := a.StrategyCounts()
	if s2 != 1 {
		t.Fatalf("s2 = %d, want 1", s2)
	}
	if small.BlockSize != 150*sim.MiB {
		t.Fatalf("BlockSize = %d, want exact 150 MiB after split", small.BlockSize)
	}
	// Reserved must not have grown: the split reused physical chunks.
	if got := a.Stats().Reserved; got != 400*sim.MiB {
		t.Fatalf("Reserved = %d, want 400 MiB", got)
	}
	// The Figure 9 S2 side effect: the two halves were stitched into an
	// sBlock preserving the original 400 MiB size.
	if a.SBlockCount() != 1 {
		t.Fatalf("SBlockCount = %d, want 1", a.SBlockCount())
	}
	a.Free(small)
	// Now a 400 MiB request exact-matches the preserved sBlock (S1).
	again := mustAlloc(t, a, 400*sim.MiB)
	s1, _, _, s4 := a.StrategyCounts()
	if s1 != 1 {
		t.Fatalf("s1 = %d, want 1 (sBlock exact match)", s1)
	}
	if s4 != 1 {
		t.Fatalf("s4 = %d, want 1 (only the first allocation)", s4)
	}
	a.Free(again)
	checkInv(t, a)
}

func TestStitchS3(t *testing.T) {
	a, dev := newTestAllocator(sim.GiB)
	// Create two separated 200 MiB pBlocks.
	b1 := mustAlloc(t, a, 200*sim.MiB)
	b2 := mustAlloc(t, a, 200*sim.MiB)
	a.Free(b1)
	a.Free(b2)
	// A 400 MiB request cannot be served by either alone: S3 stitches both.
	big := mustAlloc(t, a, 400*sim.MiB)
	_, _, s3, _ := a.StrategyCounts()
	if s3 != 1 {
		t.Fatalf("s3 = %d, want 1", s3)
	}
	// No new physical memory: reserved stays 400 MiB and the device agrees.
	if got := a.Stats().Reserved; got != 400*sim.MiB {
		t.Fatalf("Reserved = %d, want 400 MiB (stitching allocates nothing)", got)
	}
	if used := dev.Device().Used(); used != 400*sim.MiB {
		t.Fatalf("device Used = %d, want 400 MiB", used)
	}
	a.Free(big)
	checkInv(t, a)
}

func TestStitchS3WithTrim(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b1 := mustAlloc(t, a, 200*sim.MiB)
	b2 := mustAlloc(t, a, 300*sim.MiB)
	a.Free(b1)
	a.Free(b2)
	// 440 MiB needs both blocks but only part of the second: trim split.
	big := mustAlloc(t, a, 440*sim.MiB)
	if big.BlockSize != 440*sim.MiB {
		t.Fatalf("BlockSize = %d, want exact 440 MiB", big.BlockSize)
	}
	if got := a.Stats().Reserved; got != 500*sim.MiB {
		t.Fatalf("Reserved = %d, want 500 MiB", got)
	}
	a.Free(big)
	checkInv(t, a)
	// The 60 MiB trim remainder must be reusable.
	rest := mustAlloc(t, a, 60*sim.MiB)
	if got := a.Stats().Reserved; got != 500*sim.MiB {
		t.Fatalf("Reserved grew to %d reusing the trim remainder", got)
	}
	a.Free(rest)
	checkInv(t, a)
}

func TestInsufficientS4StitchesWithNew(t *testing.T) {
	a, _ := newTestAllocator(2 * sim.GiB)
	b1 := mustAlloc(t, a, 200*sim.MiB)
	a.Free(b1)
	// 500 MiB: the free 200 MiB pBlock is insufficient; S4 allocates the
	// 300 MiB deficit and stitches.
	big := mustAlloc(t, a, 500*sim.MiB)
	_, _, _, s4 := a.StrategyCounts()
	if s4 != 2 { // first allocation + this one
		t.Fatalf("s4 = %d, want 2", s4)
	}
	// Reserved grew only by the deficit.
	if got := a.Stats().Reserved; got != 500*sim.MiB {
		t.Fatalf("Reserved = %d, want 500 MiB (200 reused + 300 new)", got)
	}
	a.Free(big)
	checkInv(t, a)
}

func TestFragmentationDefeated(t *testing.T) {
	// The paper's Figure 1: free blocks individually too small for a new
	// request. The caching allocator would cudaMalloc more; GMLake stitches
	// and reserved memory does not grow.
	a, _ := newTestAllocator(4 * sim.GiB)
	var bufs []*memalloc.Buffer
	for i := 0; i < 8; i++ {
		bufs = append(bufs, mustAlloc(t, a, 256*sim.MiB))
	}
	reserved := a.Stats().Reserved
	if reserved != 2*sim.GiB {
		t.Fatalf("Reserved = %d, want 2 GiB", reserved)
	}
	for _, b := range bufs {
		a.Free(b)
	}
	// One 2 GiB request over eight scattered 256 MiB blocks.
	big := mustAlloc(t, a, 2*sim.GiB)
	if got := a.Stats().Reserved; got != reserved {
		t.Fatalf("Reserved grew from %d to %d; stitching should defeat fragmentation", reserved, got)
	}
	a.Free(big)
	checkInv(t, a)
}

func TestConvergence(t *testing.T) {
	// §5.4: after a warm-up iteration, a repeating allocation pattern must
	// be served entirely by S1 exact matches.
	a, drv := newTestAllocator(8 * sim.GiB)
	sizes := []int64{512 * sim.MiB, 100 * sim.MiB, 257 * sim.MiB, 64 * sim.MiB, 1 * sim.GiB}

	iteration := func() {
		var bufs []*memalloc.Buffer
		for _, s := range sizes {
			bufs = append(bufs, mustAlloc(t, a, s))
		}
		for _, b := range bufs {
			a.Free(b)
		}
	}
	iteration() // warm-up
	s1Before, _, _, _ := a.StrategyCounts()
	creates := drv.Counters().MemCreate
	for i := 0; i < 10; i++ {
		iteration()
	}
	s1After, s2, s3, s4 := a.StrategyCounts()
	if got, want := s1After-s1Before, int64(10*len(sizes)); got != want {
		t.Fatalf("S1 hits after warm-up = %d, want %d (s2=%d s3=%d s4=%d)", got, want, s2, s3, s4)
	}
	if drv.Counters().MemCreate != creates {
		t.Fatal("steady state created new physical chunks")
	}
	checkInv(t, a)
}

func TestSmallRequestsUseSplittingPath(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	// Sub-2MiB requests must not consume VMM machinery (paper §3.1).
	var bufs []*memalloc.Buffer
	for i := 0; i < 50; i++ {
		bufs = append(bufs, mustAlloc(t, a, 100*sim.KiB))
	}
	if drv.Counters().AddressReserve != 0 {
		t.Fatal("small requests used the VMM path")
	}
	if drv.Counters().Malloc == 0 {
		t.Fatal("small requests should use cudaMalloc'd caching segments")
	}
	for _, b := range bufs {
		a.Free(b)
	}
	if st := a.Stats(); st.Active != 0 {
		t.Fatalf("Active = %d after freeing small buffers", st.Active)
	}
}

func TestStitchBelowFragLimitFallback(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	// Blocks below the 128 MiB FragLimit are not first-choice stitch
	// candidates, but when the request cannot be covered otherwise the
	// second BestFit pass must stitch them rather than allocate new
	// physical memory (let alone OOM).
	var bufs []*memalloc.Buffer
	for i := 0; i < 10; i++ {
		bufs = append(bufs, mustAlloc(t, a, 100*sim.MiB))
	}
	for _, b := range bufs {
		a.Free(b)
	}
	big := mustAlloc(t, a, 800*sim.MiB)
	if got := a.Stats().Reserved; got != 1000*sim.MiB {
		t.Fatalf("Reserved = %d, want 1000 MiB (no new physical)", got)
	}
	if a.GCRuns() != 0 {
		t.Fatalf("GCRuns = %d, want 0", a.GCRuns())
	}
	a.Free(big)
	checkInv(t, a)
}

func TestOOMThenGC(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	// Fill the device through the embedded small-request pool, whose cached
	// cudaMalloc segments are not stitchable. A large VMM request must
	// trigger the GC fallback, which flushes that cache, and succeed.
	var bufs []*memalloc.Buffer
	for i := 0; i < 45; i++ {
		bufs = append(bufs, mustAlloc(t, a, int64(1900)*sim.KiB)) // ~45 * 2 MiB segments
	}
	for _, b := range bufs {
		a.Free(b)
	}
	// Small cache now holds ~90 MiB of cudaMalloc segments. A request for
	// nearly the whole device cannot create its pBlock until GC flushes it.
	big := mustAlloc(t, a, 960*sim.MiB)
	if a.GCRuns() == 0 {
		t.Fatal("expected a GC run")
	}
	a.Free(big)
	checkInv(t, a)
}

func TestHardOOM(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 900*sim.MiB)
	if _, err := a.Alloc(500 * sim.MiB); !errors.Is(err, cuda.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory (S5)", err)
	}
	a.Free(b)
	checkInv(t, a)
}

func TestChunkRounding(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 3*sim.MiB+1)
	if b.BlockSize != 4*sim.MiB {
		t.Fatalf("BlockSize = %d, want 4 MiB (chunk-rounded)", b.BlockSize)
	}
	a.Free(b)
}

func TestFreeNeverReleasesPhysical(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 100*sim.MiB)
	rel := drv.Counters().MemRelease
	a.Free(b)
	if drv.Counters().MemRelease != rel {
		t.Fatal("Free released physical memory; deallocation must only update state")
	}
	if got := a.Stats().Reserved; got != 100*sim.MiB {
		t.Fatalf("Reserved = %d after free, want 100 MiB retained", got)
	}
}

func TestEmptyCache(t *testing.T) {
	a, drv := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 100*sim.MiB)
	a.Free(b)
	a.EmptyCache()
	if got := a.Stats().Reserved; got != 0 {
		t.Fatalf("Reserved = %d after EmptyCache", got)
	}
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatalf("device not fully free: %d/%d", free, total)
	}
	if a.PBlockCount() != 0 || a.SBlockCount() != 0 {
		t.Fatalf("blocks leaked: p=%d s=%d", a.PBlockCount(), a.SBlockCount())
	}
	checkInv(t, a)
}

func TestEmptyCacheSparesActive(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	live := mustAlloc(t, a, 200*sim.MiB)
	dead := mustAlloc(t, a, 200*sim.MiB)
	a.Free(dead)
	a.EmptyCache()
	if got := a.Stats().Reserved; got != 200*sim.MiB {
		t.Fatalf("Reserved = %d, want live 200 MiB only", got)
	}
	a.Free(live)
	checkInv(t, a)
}

func TestStitchFreeLRUCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSBlocks = 4
	dev := gpu.NewDevice("test", 8*sim.GiB)
	drv := cuda.NewDriver(dev, sim.NewClock(), sim.DefaultCostModel())
	a := New(drv, cfg)

	// Each cycle uses fresh sizes so convergence cannot reuse cached
	// sBlocks: new stitches accumulate until the cap forces StitchFree.
	for i := int64(0); i < 8; i++ {
		size := (150 + 10*i) * sim.MiB
		b1 := mustAlloc(t, a, size)
		b2 := mustAlloc(t, a, size)
		a.Free(b1)
		a.Free(b2)
		big := mustAlloc(t, a, 2*size)
		a.Free(big)
	}
	if a.SBlockCount() > cfg.MaxSBlocks {
		t.Fatalf("SBlockCount = %d exceeds cap %d", a.SBlockCount(), cfg.MaxSBlocks)
	}
	if a.StitchFreeCount() == 0 {
		t.Fatal("expected StitchFree evictions")
	}
	checkInv(t, a)
}

func TestDoubleFreePanics(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 10*sim.MiB)
	a.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double Free did not panic")
		}
	}()
	a.Free(b)
}

func TestSharedChunkSingleTensor(t *testing.T) {
	// A pBlock's chunks may be reachable via several sBlocks, but only one
	// tensor may use them at a time (§3.3.1). After assigning a stitched
	// sBlock, its members and every overlapping sBlock must be unavailable.
	a, _ := newTestAllocator(2 * sim.GiB)
	b1 := mustAlloc(t, a, 200*sim.MiB)
	b2 := mustAlloc(t, a, 200*sim.MiB)
	b3 := mustAlloc(t, a, 200*sim.MiB)
	a.Free(b1)
	a.Free(b2)
	a.Free(b3)
	// Stitch p1+p2 (+p3 partially, depending on fit) into 400 MiB.
	big := mustAlloc(t, a, 400*sim.MiB)
	// Now request another 400 MiB: must NOT reuse any active member.
	big2 := mustAlloc(t, a, 400*sim.MiB)
	if big.Ptr == big2.Ptr {
		t.Fatal("same stitched block assigned twice")
	}
	// Total active is 800 MiB over 600 MiB of original blocks: at least
	// 200 MiB new physical was required.
	if got := a.Stats().Reserved; got < 800*sim.MiB {
		t.Fatalf("Reserved = %d < active 800 MiB: chunks double-booked", got)
	}
	a.Free(big)
	a.Free(big2)
	checkInv(t, a)
}

func TestRandomWorkloadInvariants(t *testing.T) {
	a, drv := newTestAllocator(8 * sim.GiB)
	rng := sim.NewRNG(777)
	var live []*memalloc.Buffer
	for step := 0; step < 3000; step++ {
		if rng.Float64() < 0.55 {
			var size int64
			switch rng.Intn(4) {
			case 0:
				size = int64(rng.Intn(int(2*sim.MiB)) + 1) // small path
			case 1:
				size = int64(rng.Intn(int(32*sim.MiB)) + 1)
			case 2:
				size = int64(rng.Intn(int(256*sim.MiB)) + 1)
			default:
				size = int64(rng.Intn(int(sim.GiB)) + 1)
			}
			b, err := a.Alloc(size)
			if err != nil {
				continue
			}
			live = append(live, b)
		} else if len(live) > 0 {
			i := rng.Intn(len(live))
			a.Free(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if step%300 == 0 {
			checkInv(t, a)
		}
	}
	for _, b := range live {
		a.Free(b)
	}
	checkInv(t, a)
	if st := a.Stats(); st.Active != 0 {
		t.Fatalf("leaked %d active bytes", st.Active)
	}
	a.EmptyCache()
	if free, total := drv.MemGetInfo(); free != total {
		t.Fatalf("device leak: %d of %d free", free, total)
	}
}

func TestStatsUtilization(t *testing.T) {
	a, _ := newTestAllocator(sim.GiB)
	b := mustAlloc(t, a, 100*sim.MiB)
	st := a.Stats()
	if st.Utilization() != 1 {
		t.Fatalf("Utilization = %v, want 1 (active == reserved)", st.Utilization())
	}
	if st.Fragmentation() != 0 {
		t.Fatalf("Fragmentation = %v, want 0", st.Fragmentation())
	}
	a.Free(b)
}

func TestAccessorsAndFreeBlockSizes(t *testing.T) {
	a, _ := newTestAllocator(4 * sim.GiB)
	if a.Name() != "gmlake" {
		t.Fatalf("Name = %q", a.Name())
	}
	b1, err := a.Alloc(64 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Alloc(32 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.FreeBlockSizes(); len(got) != 0 {
		t.Fatalf("free sizes with everything active: %v", got)
	}
	a.Free(b2)
	sizes := a.FreeBlockSizes()
	if len(sizes) != 1 || sizes[0] != 32*sim.MiB {
		t.Fatalf("free sizes = %v", sizes)
	}
	a.Free(b1)
	sizes = a.FreeBlockSizes()
	if len(sizes) != 2 || sizes[0] > sizes[1] {
		t.Fatalf("free sizes not ascending: %v", sizes)
	}

	a.ResetPeaks()
	st := a.Stats()
	if st.PeakActive != st.Active || st.PeakReserved != st.Reserved {
		t.Fatal("ResetPeaks did not restart peak tracking")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAccessors(t *testing.T) {
	a, _ := newTestAllocator(4 * sim.GiB)
	// Force a stitch: two free pBlocks, then a request spanning both.
	b1, _ := a.Alloc(256 * sim.MiB)
	b2, _ := a.Alloc(256 * sim.MiB)
	a.Free(b1)
	a.Free(b2)
	big, err := a.Alloc(512 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	_, _, s3, _ := a.StrategyCounts()
	if s3 != 1 {
		t.Fatalf("expected one S3 stitch, got %d", s3)
	}
	// Walk the structures through the exported accessors.
	found := false
	for p := range a.pblocks.all {
		if p.Size() <= 0 {
			t.Fatalf("degenerate pBlock %d@%d", p.Size(), p.VA())
		}
		if len(p.owners) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no pBlock has a stitched owner")
	}
	for s := range a.sblocks.all {
		if s.Size() != 512*sim.MiB {
			t.Fatalf("sBlock %d@%d", s.Size(), s.VA())
		}
		if len(s.Members()) != 2 {
			t.Fatalf("sBlock members = %d", len(s.Members()))
		}
	}
	a.Free(big)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
