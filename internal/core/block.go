// Package core implements GMLake, the paper's contribution: a GPU memory
// allocator that defragments transparently by stitching non-contiguous
// physical memory into contiguous virtual address ranges with the CUDA
// low-level virtual memory management (VMM) API.
//
// The building blocks mirror the paper's §3:
//
//   - PBlock ("primitive block"): one contiguous VA reservation fully mapped
//     to physical chunks that the pBlock owns. pBlocks are the only objects
//     that own physical memory.
//   - SBlock ("stitched block"): a second VA reservation mapped onto the
//     chunks of one or more pBlocks. sBlocks never own physical memory; they
//     give tensors one contiguous view over scattered pBlocks.
//   - pPool / sPool: ordered pools of the inactive blocks, searched by the
//     BestFit algorithm (paper Algorithm 1).
//
// The allocator (see allocator.go) wires these into the multi-state
// allocation strategy of paper Figure 9.
package core

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/cuda"
)

// ChunkSize is the uniform physical chunk size GMLake uses for every pBlock
// (paper §3.1: "we apply a uniform chunk size of 2 MB across all chunks").
const ChunkSize = cuda.ChunkGranularity

// PBlock is a primitive block: a VA range backed by physical chunks it owns.
type PBlock struct {
	va     cuda.DevicePtr
	size   int64
	chunks []cuda.MemHandle

	// activeRefs counts reasons this pBlock is in use: 1 for a tensor
	// assigned directly to it plus 1 per assigned sBlock that contains it.
	// The paper's "active" flag is activeRefs > 0.
	activeRefs int

	// assigned reports a tensor living directly in this pBlock.
	assigned bool

	// owners are the sBlocks stitched over this pBlock.
	owners map[*SBlock]struct{}

	// node is the pBlock's position in the pPool inactive tree (nil while
	// active).
	node *container.Node[*PBlock]
}

// VA returns the block's base virtual address.
func (p *PBlock) VA() cuda.DevicePtr { return p.va }

// Size returns the block's size in bytes.
func (p *PBlock) Size() int64 { return p.size }

// Active reports whether the block backs any live tensor.
func (p *PBlock) Active() bool { return p.activeRefs > 0 }

// SBlock is a stitched block: a contiguous VA view over several pBlocks'
// physical chunks.
type SBlock struct {
	va      cuda.DevicePtr
	size    int64
	members []*PBlock

	// assigned reports a tensor living in this sBlock.
	assigned bool

	// node is the sBlock's position in the sPool inactive tree (nil while
	// any member is active or while assigned).
	node *container.Node[*SBlock]

	// lru is the sBlock's position in the StitchFree LRU queue.
	lru *container.QueueNode[*SBlock]
}

// VA returns the stitched range's base virtual address.
func (s *SBlock) VA() cuda.DevicePtr { return s.va }

// Size returns the stitched range's size in bytes.
func (s *SBlock) Size() int64 { return s.size }

// Members returns the pBlocks this sBlock stitches, in address order of the
// stitched view.
func (s *SBlock) Members() []*PBlock { return s.members }

// Active reports whether any member pBlock is active (paper §3.2: "if even
// one pBlock is active, all corresponding sBlocks are labeled as active").
func (s *SBlock) Active() bool {
	for _, p := range s.members {
		if p.Active() {
			return true
		}
	}
	return false
}

// newPBlock allocates a fresh pBlock of size bytes (a multiple of ChunkSize):
// one AddrReserve, then Create+Map per 2 MiB chunk, then SetAccess — the
// paper's Figure 8 "Alloc" primitive. This is the only operation in GMLake
// that allocates new physical memory.
func newPBlock(drv *cuda.Driver, size int64) (*PBlock, error) {
	if size <= 0 || size%ChunkSize != 0 {
		return nil, fmt.Errorf("core: pBlock size %d not a positive multiple of %d", size, ChunkSize)
	}
	va, err := drv.MemAddressReserve(size)
	if err != nil {
		return nil, err
	}
	n := size / ChunkSize
	chunks := make([]cuda.MemHandle, 0, n)
	for i := int64(0); i < n; i++ {
		h, err := drv.MemCreate(ChunkSize)
		if err != nil {
			// Roll back everything created so far.
			unmapAndReleaseChunks(drv, va, chunks)
			if e := drv.MemAddressFree(va, size); e != nil {
				panic("core: rollback MemAddressFree: " + e.Error())
			}
			return nil, err
		}
		if err := drv.MemMap(va+cuda.DevicePtr(i*ChunkSize), h); err != nil {
			panic("core: MemMap into fresh reservation: " + err.Error())
		}
		chunks = append(chunks, h)
	}
	if err := drv.MemSetAccess(va, size); err != nil {
		panic("core: MemSetAccess on fresh pBlock: " + err.Error())
	}
	return &PBlock{va: va, size: size, chunks: chunks, owners: make(map[*SBlock]struct{})}, nil
}

// mapChunksAt maps chunks consecutively starting at va and enables access.
func mapChunksAt(drv *cuda.Driver, va cuda.DevicePtr, chunks []cuda.MemHandle) {
	for i, h := range chunks {
		if err := drv.MemMap(va+cuda.DevicePtr(int64(i)*ChunkSize), h); err != nil {
			panic("core: MemMap: " + err.Error())
		}
	}
	size := int64(len(chunks)) * ChunkSize
	if err := drv.MemSetAccess(va, size); err != nil {
		panic("core: MemSetAccess: " + err.Error())
	}
}

// unmapAndReleaseChunks unmaps the first len(chunks) chunk slots at va.
func unmapAndReleaseChunks(drv *cuda.Driver, va cuda.DevicePtr, chunks []cuda.MemHandle) {
	if len(chunks) == 0 {
		return
	}
	size := int64(len(chunks)) * ChunkSize
	if err := drv.MemUnmap(va, size); err != nil {
		panic("core: MemUnmap: " + err.Error())
	}
	for _, h := range chunks {
		if err := drv.MemRelease(h); err != nil {
			panic("core: MemRelease: " + err.Error())
		}
	}
}

// splitPBlock splits p into two fresh pBlocks of size bytes and p.size-size
// bytes (paper's Split: "two new pBlocks with corresponding virtual memory
// addresses and remapped physical chunks; the previous pBlock structure is
// subsequently removed"). The physical chunks are reused — no cuMemCreate —
// so splitting costs only remapping, which is the VMM advantage over copying
// defragmenters.
//
// The caller must have destroyed or rebound every sBlock referencing p and
// must remove p from the pools.
func splitPBlock(drv *cuda.Driver, p *PBlock, size int64) (front, back *PBlock) {
	if size <= 0 || size%ChunkSize != 0 || size >= p.size {
		panic(fmt.Sprintf("core: splitPBlock(%d) of pBlock size %d", size, p.size))
	}
	if len(p.owners) != 0 {
		panic("core: splitPBlock with live sBlock owners")
	}
	// Tear down the old view.
	if err := drv.MemUnmap(p.va, p.size); err != nil {
		panic("core: splitPBlock unmap: " + err.Error())
	}
	if err := drv.MemAddressFree(p.va, p.size); err != nil {
		panic("core: splitPBlock address free: " + err.Error())
	}
	k := size / ChunkSize
	frontChunks := p.chunks[:k]
	backChunks := p.chunks[k:]

	front = remapAsPBlock(drv, size, frontChunks)
	back = remapAsPBlock(drv, p.size-size, backChunks)
	p.chunks = nil
	return front, back
}

func remapAsPBlock(drv *cuda.Driver, size int64, chunks []cuda.MemHandle) *PBlock {
	va, err := drv.MemAddressReserve(size)
	if err != nil {
		panic("core: remapAsPBlock reserve: " + err.Error())
	}
	mapChunksAt(drv, va, chunks)
	return &PBlock{va: va, size: size, chunks: chunks, owners: make(map[*SBlock]struct{})}
}

// stitchSBlock builds an sBlock over members: one VA reservation of the
// combined size with every member's chunks mapped consecutively (paper's
// Stitch). sBlocks never create physical chunks — the same physical memory
// is now reachable through both the pBlock VAs and the stitched VA.
func stitchSBlock(drv *cuda.Driver, members []*PBlock) *SBlock {
	if len(members) == 0 {
		panic("core: stitchSBlock with no members")
	}
	var total int64
	for _, p := range members {
		total += p.size
	}
	va, err := drv.MemAddressReserve(total)
	if err != nil {
		panic("core: stitchSBlock reserve: " + err.Error())
	}
	off := cuda.DevicePtr(0)
	for _, p := range members {
		mapChunksAt(drv, va+off, p.chunks)
		off += cuda.DevicePtr(p.size)
	}
	s := &SBlock{va: va, size: total, members: members}
	for _, p := range members {
		p.owners[s] = struct{}{}
	}
	return s
}

// replaceMember substitutes pBlock old with its two split halves in s's
// member list, keeping the stitched order. No driver work is needed: s maps
// physical chunks, and the split reused them untouched.
func replaceMember(s *SBlock, old, front, back *PBlock) {
	for i, m := range s.members {
		if m != old {
			continue
		}
		out := make([]*PBlock, 0, len(s.members)+1)
		out = append(out, s.members[:i]...)
		out = append(out, front, back)
		out = append(out, s.members[i+1:]...)
		s.members = out
		return
	}
	panic("core: replaceMember: old pBlock not a member")
}

// unstitchSBlock tears down an sBlock's VA view. Member pBlocks and their
// physical chunks are untouched.
func unstitchSBlock(drv *cuda.Driver, s *SBlock) {
	if s.assigned {
		panic("core: unstitch of assigned sBlock")
	}
	if err := drv.MemUnmap(s.va, s.size); err != nil {
		panic("core: unstitch unmap: " + err.Error())
	}
	if err := drv.MemAddressFree(s.va, s.size); err != nil {
		panic("core: unstitch address free: " + err.Error())
	}
	for _, p := range s.members {
		delete(p.owners, s)
	}
	s.members = nil
}

// destroyPBlock releases a pBlock's physical chunks and VA. The caller must
// have destroyed its owner sBlocks first and removed it from the pools.
func destroyPBlock(drv *cuda.Driver, p *PBlock) {
	if p.Active() {
		panic("core: destroy of active pBlock")
	}
	if len(p.owners) != 0 {
		panic("core: destroy of pBlock with live sBlock owners")
	}
	unmapAndReleaseChunks(drv, p.va, p.chunks)
	if err := drv.MemAddressFree(p.va, p.size); err != nil {
		panic("core: destroyPBlock address free: " + err.Error())
	}
	p.chunks = nil
}
