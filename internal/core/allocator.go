package core

import (
	"fmt"
	"sort"

	"repro/internal/caching"
	"repro/internal/cuda"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

// Config tunes the GMLake allocator. The defaults follow the paper's best
// practices.
type Config struct {
	// FragLimit is the minimal fragment size (paper §4.2.3, default
	// 128 MiB): inactive pBlocks smaller than this are never used as stitch
	// candidates and splits never produce them deliberately; they remain
	// reusable through exact matches.
	FragLimit int64

	// SmallThreshold routes requests below it to an embedded caching
	// allocator (paper §3.1: "for memory allocation less than 2 MB, we use
	// the original PyTorch splitting method").
	SmallThreshold int64

	// MaxSBlocks caps the stitched pool. When exceeded, StitchFree evicts
	// least-recently-used unassigned sBlocks (paper §4.2.3's fallback).
	MaxSBlocks int

	// RebindOnSplit keeps cached sBlocks alive across pBlock splits by
	// rebinding their member lists to the two halves instead of destroying
	// them. An sBlock's chunk mappings are unaffected by a member split —
	// the physical chunks and the stitched VA stay exactly as they were —
	// so only the soft links in the sPool (paper §4.2.1) need updating.
	// This preserves the convergence "tape" (§5.4) under memory pressure,
	// where splits are frequent. Disable to measure the paper's literal
	// split semantics (the ablation benchmark in bench_test.go).
	RebindOnSplit bool
}

// DefaultConfig returns the paper's recommended configuration.
func DefaultConfig() Config {
	return Config{
		FragLimit:      128 * sim.MiB,
		SmallThreshold: 2 * sim.MiB,
		MaxSBlocks:     32768,
		RebindOnSplit:  true,
	}
}

// Allocator is the GMLake allocator (paper Figure 7, right side). It
// implements memalloc.Allocator.
type Allocator struct {
	driver *cuda.Driver
	cfg    Config
	acct   memalloc.Accounting

	pblocks *pPool
	sblocks *sPool

	// small serves sub-2 MiB requests with the original splitting method.
	small *caching.Allocator

	// strategy counters, one per Figure 9 state; tests assert convergence
	// (steady-state training uses only S1) through them.
	hits struct {
		s1Exact, s2Single, s3Multiple, s4Insufficient int64
	}
	stitchFrees int64
	gcRuns      int64
}

// assignment is the Buffer impl payload: which block a tensor occupies.
type assignment struct {
	p *PBlock
	s *SBlock
}

// New returns a GMLake allocator over driver with cfg.
func New(driver *cuda.Driver, cfg Config) *Allocator {
	if cfg.SmallThreshold < ChunkSize {
		cfg.SmallThreshold = ChunkSize
	}
	return &Allocator{
		driver:  driver,
		cfg:     cfg,
		pblocks: newPPool(),
		sblocks: newSPool(),
		small:   caching.New(driver),
	}
}

// NewDefault returns a GMLake allocator with DefaultConfig.
func NewDefault(driver *cuda.Driver) *Allocator { return New(driver, DefaultConfig()) }

// Name implements memalloc.Allocator.
func (a *Allocator) Name() string { return "gmlake" }

// Stats implements memalloc.Allocator, combining the VMM pools with the
// embedded small-request allocator.
func (a *Allocator) Stats() memalloc.Stats {
	st := a.acct.Stats()
	ss := a.small.Stats()
	st.Active += ss.Active
	st.Reserved += ss.Reserved
	st.PeakActive += ss.PeakActive
	st.PeakReserved += ss.PeakReserved
	st.AllocCount += ss.AllocCount
	st.FreeCount += ss.FreeCount
	return st
}

// ResetPeaks restarts peak tracking from current levels.
func (a *Allocator) ResetPeaks() {
	a.acct.ResetPeaks()
	a.small.ResetPeaks()
}

// StrategyCounts reports how many allocations each Figure 9 state served:
// exact match (S1), split (S2), stitch (S3), new physical allocation (S4).
func (a *Allocator) StrategyCounts() (s1, s2, s3, s4 int64) {
	return a.hits.s1Exact, a.hits.s2Single, a.hits.s3Multiple, a.hits.s4Insufficient
}

// Alloc implements memalloc.Allocator with the paper's Figure 9 strategy.
func (a *Allocator) Alloc(size int64) (*memalloc.Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: Alloc(%d)", size)
	}
	if size < a.cfg.SmallThreshold {
		return a.small.Alloc(size)
	}
	a.driver.Clock().Advance(a.driver.Cost().HostOp())
	rounded := sim.RoundUp(size, ChunkSize)

	fit := a.bestFit(rounded)
	switch fit.state {
	case fitExact: // S1
		a.hits.s1Exact++
		if fit.exactS != nil {
			return a.assignSBlock(fit.exactS, size), nil
		}
		return a.assignPBlock(fit.exactP, size), nil

	case fitSingle: // S2
		a.hits.s2Single++
		buf := a.allocSplit(fit.cands[0], rounded, size)
		a.stitchFreeIfNeeded()
		return buf, nil

	case fitMultiple: // S3
		a.hits.s3Multiple++
		buf := a.allocStitch(fit.cands, rounded, size)
		a.stitchFreeIfNeeded()
		return buf, nil

	default: // S4 (and S5 on failure)
		a.hits.s4Insufficient++
		buf, err := a.allocNew(fit.cands, fit.total, rounded, size)
		if err == nil {
			a.stitchFreeIfNeeded()
		}
		return buf, err
	}
}

// assignPBlock hands p to a tensor.
func (a *Allocator) assignPBlock(p *PBlock, requested int64) *memalloc.Buffer {
	if p.assigned || p.Active() {
		panic("core: assign of active pBlock")
	}
	p.assigned = true
	a.activatePBlock(p)
	a.acct.OnAlloc(p.size)
	buf := &memalloc.Buffer{Ptr: p.va, Requested: requested, BlockSize: p.size}
	buf.SetImpl(&assignment{p: p})
	return buf
}

// assignSBlock hands s to a tensor, activating all member pBlocks.
func (a *Allocator) assignSBlock(s *SBlock, requested int64) *memalloc.Buffer {
	if s.assigned || s.Active() {
		panic("core: assign of active sBlock")
	}
	s.assigned = true
	a.sblocks.markUnavailable(s)
	a.sblocks.touch(s)
	for _, p := range s.members {
		a.activatePBlock(p)
	}
	a.acct.OnAlloc(s.size)
	buf := &memalloc.Buffer{Ptr: s.va, Requested: requested, BlockSize: s.size}
	buf.SetImpl(&assignment{s: s})
	return buf
}

// activatePBlock increments p's active references, pulling p and every
// sBlock stitched over it out of the inactive indexes on the 0→1 edge.
func (a *Allocator) activatePBlock(p *PBlock) {
	p.activeRefs++
	if p.activeRefs == 1 {
		a.pblocks.markActive(p)
		for s := range p.owners {
			a.sblocks.markUnavailable(s)
		}
	}
}

// deactivatePBlock decrements p's active references; on the 1→0 edge p
// re-enters the inactive index and any fully-inactive unassigned owner
// sBlocks become available again.
func (a *Allocator) deactivatePBlock(p *PBlock) {
	if p.activeRefs <= 0 {
		panic("core: deactivate of inactive pBlock")
	}
	p.activeRefs--
	if p.activeRefs == 0 {
		a.pblocks.markInactive(p)
		for s := range p.owners {
			if !s.assigned && !s.Active() {
				a.sblocks.markAvailable(s)
			}
		}
	}
}

// allocSplit implements S2: split the best-fit pBlock to the exact size, hand
// out the front, and — per Figure 9 — stitch the two halves into an sBlock
// that preserves the original size for future exact matches.
func (a *Allocator) allocSplit(cand *PBlock, rounded, requested int64) *memalloc.Buffer {
	if cand.size-rounded < ChunkSize {
		// Remainder below chunk granularity: hand out the whole block.
		return a.assignPBlock(cand, requested)
	}
	hadOwners := len(cand.owners) > 0
	front, back := a.split(cand, rounded)
	if !hadOwners {
		// Preserve the original size for future exact matches (Figure 9's
		// S2 side effect); with rebinding, surviving owner sBlocks already
		// do that.
		a.addSBlock(stitchSBlock(a.driver, []*PBlock{front, back}))
	}
	return a.assignPBlock(front, requested)
}

// split divides an inactive pBlock, either rebinding or destroying the
// sBlocks stitched over it per the configuration, and updates the pool.
func (a *Allocator) split(p *PBlock, size int64) (front, back *PBlock) {
	var rebind []*SBlock
	if a.cfg.RebindOnSplit {
		for s := range p.owners {
			if s.assigned {
				panic("core: owner sBlock assigned while member inactive")
			}
			rebind = append(rebind, s)
			delete(p.owners, s)
		}
		// p.owners is a map: sort so the rebind sequence (and any driver
		// call order behind it) never depends on iteration order.
		sort.Slice(rebind, func(i, j int) bool { return rebind[i].va < rebind[j].va })
	} else {
		a.dropOwners(p)
	}
	a.pblocks.remove(p)
	front, back = splitPBlock(a.driver, p, size)
	a.pblocks.add(front)
	a.pblocks.add(back)
	for _, s := range rebind {
		replaceMember(s, p, front, back)
		front.owners[s] = struct{}{}
		back.owners[s] = struct{}{}
	}
	return front, back
}

// allocStitch implements S3: stitch candidate pBlocks (splitting the last one
// if the total overshoots) into an exact-size sBlock and hand it out.
func (a *Allocator) allocStitch(cands []*PBlock, rounded, requested int64) *memalloc.Buffer {
	members, total := a.trimCandidates(cands, rounded)
	if total != rounded {
		panic(fmt.Sprintf("core: stitch total %d != rounded %d", total, rounded))
	}
	if len(members) == 1 {
		// Trimming collapsed the request onto a single exact block.
		return a.assignPBlock(members[0], requested)
	}
	s := stitchSBlock(a.driver, members)
	a.addSBlock(s)
	return a.assignSBlock(s, requested)
}

// trimCandidates adjusts the candidate set so the combined size equals
// rounded exactly. It first tries to complete the sum with an existing
// inactive pBlock of exactly the missing size — splitting destroys every
// cached sBlock stitched over the split block (erasing the §5.4 "tape"), so
// an exact completion is strictly better. Only when no exact completion
// exists is the last candidate split (the paper's S3 "the final pBlock can
// be subdivided").
func (a *Allocator) trimCandidates(cands []*PBlock, rounded int64) ([]*PBlock, int64) {
	var total int64
	for _, p := range cands {
		total += p.size
	}
	if total == rounded {
		return cands, total
	}
	last := cands[len(cands)-1]
	need := rounded - (total - last.size)
	if need <= 0 || need%ChunkSize != 0 {
		panic(fmt.Sprintf("core: trim needs %d from block of %d", need, last.size))
	}
	if exact := a.findExactCompletion(cands, need); exact != nil {
		out := append(append([]*PBlock(nil), cands[:len(cands)-1]...), exact)
		return out, rounded
	}
	hadOwners := len(last.owners) > 0
	front, back := a.split(last, need)
	if !hadOwners && !a.cfg.RebindOnSplit {
		a.addSBlock(stitchSBlock(a.driver, []*PBlock{front, back}))
	}
	out := append(append([]*PBlock(nil), cands[:len(cands)-1]...), front)
	return out, rounded
}

// findExactCompletion returns an inactive pBlock of exactly need bytes that
// is not already among cands, or nil.
func (a *Allocator) findExactCompletion(cands []*PBlock, need int64) *PBlock {
	taken := make(map[*PBlock]struct{}, len(cands))
	for _, p := range cands {
		taken[p] = struct{}{}
	}
	for n := a.pblocks.inactive.Ceil(&PBlock{size: need}); n != nil; n = a.pblocks.inactive.Next(n) {
		p := n.Value
		if p.size != need {
			return nil
		}
		if _, dup := taken[p]; !dup {
			return p
		}
	}
	return nil
}

// allocNew implements S4: allocate a fresh pBlock covering the deficit and
// stitch it with whatever candidates exist. On device OOM it garbage-collects
// inactive physical memory (sparing the candidates) and retries once; if the
// deficit still cannot be created, S5 reports out-of-memory.
func (a *Allocator) allocNew(cands []*PBlock, total, rounded, requested int64) (*memalloc.Buffer, error) {
	deficit := rounded - total
	fresh, err := newPBlock(a.driver, deficit)
	if err != nil {
		a.gcInactive(cands)
		fresh, err = newPBlock(a.driver, deficit)
		if err != nil {
			return nil, fmt.Errorf("core: S5 out of memory allocating %s (deficit %s): %w",
				sim.FormatBytes(rounded), sim.FormatBytes(deficit), err)
		}
	}
	a.pblocks.add(fresh)
	a.acct.OnReserve(deficit)
	if len(cands) == 0 {
		return a.assignPBlock(fresh, requested), nil
	}
	members := append(append([]*PBlock(nil), cands...), fresh)
	s := stitchSBlock(a.driver, members)
	a.addSBlock(s)
	return a.assignSBlock(s, requested), nil
}

// Free implements memalloc.Allocator. Per the paper's deallocation module it
// never releases physical memory — it only flips active state (Update), so a
// future same-size allocation exact-matches instantly.
func (a *Allocator) Free(buf *memalloc.Buffer) {
	if buf.Impl() == nil {
		panic("core: Free of unowned or already-freed buffer")
	}
	if asg, ok := buf.Impl().(*assignment); ok {
		a.driver.Clock().Advance(a.driver.Cost().HostOp())
		a.update(asg)
		a.acct.OnFree(buf.BlockSize)
		buf.SetImpl(nil)
		return
	}
	// Small-pool buffer: owned by the embedded caching allocator.
	a.small.Free(buf)
}

// update is the paper's Update function: restore inactive state on the freed
// block and its neighbours in the pools.
func (a *Allocator) update(asg *assignment) {
	switch {
	case asg.p != nil:
		p := asg.p
		if !p.assigned {
			panic("core: double Free of pBlock")
		}
		p.assigned = false
		a.deactivatePBlock(p)
	case asg.s != nil:
		s := asg.s
		if !s.assigned {
			panic("core: double Free of sBlock")
		}
		s.assigned = false
		a.sblocks.touch(s)
		for _, p := range s.members {
			a.deactivatePBlock(p)
		}
		if !s.Active() {
			a.sblocks.markAvailable(s)
		}
	default:
		panic("core: empty assignment")
	}
}

// addSBlock registers a freshly stitched sBlock. The caller runs
// stitchFreeIfNeeded once the block is assigned, so a brand-new sBlock can
// never be evicted before the tensor lands in it.
func (a *Allocator) addSBlock(s *SBlock) {
	a.sblocks.add(s)
	if !s.assigned && !s.Active() {
		a.sblocks.markAvailable(s)
	}
}

// stitchFreeIfNeeded evicts least-recently-used unassigned sBlocks while the
// stitched pool exceeds its cap (paper's StitchFree).
func (a *Allocator) stitchFreeIfNeeded() {
	if a.cfg.MaxSBlocks <= 0 {
		return
	}
	for len(a.sblocks.all) > a.cfg.MaxSBlocks {
		victim := a.oldestUnassigned()
		if victim == nil {
			return // everything is assigned; nothing to evict
		}
		a.dropSBlock(victim)
		a.stitchFrees++
	}
}

// oldestUnassigned returns the least-recently-used sBlock with no tensor.
func (a *Allocator) oldestUnassigned() *SBlock {
	var victim *SBlock
	a.sblocks.lru.Each(func(s *SBlock) bool {
		if !s.assigned {
			victim = s
			return false
		}
		return true
	})
	return victim
}

// dropSBlock unstitches s and removes it from the pool.
func (a *Allocator) dropSBlock(s *SBlock) {
	a.sblocks.remove(s)
	unstitchSBlock(a.driver, s)
}

// dropOwners unstitches every sBlock referencing p. Only legal when p is
// inactive, which guarantees no tensor lives in any of those sBlocks.
func (a *Allocator) dropOwners(p *PBlock) {
	if p.Active() {
		panic("core: dropOwners of active pBlock")
	}
	owners := make([]*SBlock, 0, len(p.owners))
	for s := range p.owners {
		if s.assigned {
			panic("core: owner sBlock assigned while member inactive")
		}
		owners = append(owners, s)
	}
	// Unstitching issues driver calls (unmap, VA free); sort by VA so the
	// call sequence is independent of map iteration order.
	sort.Slice(owners, func(i, j int) bool { return owners[i].va < owners[j].va })
	for _, s := range owners {
		a.dropSBlock(s)
	}
}

// gcInactive releases the physical memory of every inactive pBlock except
// those in keep: the allocator's last resort before reporting OOM, analogous
// to the caching allocator's cache flush.
func (a *Allocator) gcInactive(keep []*PBlock) {
	a.gcRuns++
	keepSet := make(map[*PBlock]struct{}, len(keep))
	for _, p := range keep {
		keepSet[p] = struct{}{}
	}
	var victims []*PBlock
	for p := range a.pblocks.all {
		if _, kept := keepSet[p]; kept {
			continue
		}
		if !p.Active() {
			victims = append(victims, p)
		}
	}
	// a.pblocks.all is a map: destroy in VA order so the driver sees the
	// same release sequence (clock charges, VA free-range coalescing)
	// every run, not one chosen by map iteration.
	sort.Slice(victims, func(i, j int) bool { return victims[i].va < victims[j].va })
	for _, p := range victims {
		a.dropOwners(p)
		a.pblocks.remove(p)
		a.acct.OnRelease(p.size)
		destroyPBlock(a.driver, p)
	}
	a.small.EmptyCache()
}

// EmptyCache implements memalloc.Allocator: release all inactive physical
// memory and cached stitched views.
func (a *Allocator) EmptyCache() { a.gcInactive(nil) }

// PBlockCount reports live pBlocks (diagnostics).
func (a *Allocator) PBlockCount() int { return len(a.pblocks.all) }

// SBlockCount reports live sBlocks (diagnostics).
func (a *Allocator) SBlockCount() int { return len(a.sblocks.all) }

// FreeBlockSizes returns the size of every inactive pBlock, ascending;
// fragstat consumes it for fragmentation indices. The notion is softer for
// GMLake than for the caching allocator: inactive pBlocks can be stitched
// into arbitrarily larger virtual blocks, so "free but small" does not mean
// "unusable" — exactly the paper's point.
func (a *Allocator) FreeBlockSizes() []int64 {
	out := make([]int64, 0, a.pblocks.inactive.Len())
	a.pblocks.inactive.Ascend(func(n *pNode) bool {
		out = append(out, n.Value.size)
		return true
	})
	return out
}

// StitchFreeCount reports how many sBlocks StitchFree evicted.
func (a *Allocator) StitchFreeCount() int64 { return a.stitchFrees }

// GCRuns reports how many times the OOM fallback garbage collector ran.
func (a *Allocator) GCRuns() int64 { return a.gcRuns }

// CheckInvariants validates the §4.2.1 structural guarantees; tests call it
// after workloads:
//
//   - pPool bytes equal the allocator's reserved accounting.
//   - every inactive pBlock is indexed, every active one is not;
//   - an sBlock is indexed as available iff unassigned with all members
//     inactive;
//   - sBlock membership and owner back-pointers agree (the "sPool is a
//     subset of pPool" soft-link rule).
func (a *Allocator) CheckInvariants() error {
	var bytes int64
	for p := range a.pblocks.all {
		bytes += p.size
		if p.Active() && p.node != nil {
			return fmt.Errorf("core: active pBlock in inactive index")
		}
		if !p.Active() && p.node == nil {
			return fmt.Errorf("core: inactive pBlock missing from index")
		}
		for s := range p.owners {
			if _, ok := a.sblocks.all[s]; !ok {
				return fmt.Errorf("core: pBlock owner sBlock not in sPool")
			}
		}
	}
	if bytes != a.pblocks.bytes {
		return fmt.Errorf("core: pPool bytes %d != tracked %d", bytes, a.pblocks.bytes)
	}
	if got := a.acct.Stats().Reserved; got != bytes {
		return fmt.Errorf("core: reserved accounting %d != pPool bytes %d", got, bytes)
	}
	for s := range a.sblocks.all {
		available := !s.assigned && !s.Active()
		if available && s.node == nil {
			return fmt.Errorf("core: available sBlock missing from index")
		}
		if !available && s.node != nil {
			return fmt.Errorf("core: unavailable sBlock present in index")
		}
		for _, p := range s.members {
			if _, ok := a.pblocks.all[p]; !ok {
				return fmt.Errorf("core: sBlock member not in pPool")
			}
			if _, ok := p.owners[s]; !ok {
				return fmt.Errorf("core: sBlock missing from member's owners")
			}
		}
	}
	return nil
}
