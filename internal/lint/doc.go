// Package lint is the repository's determinism-contract linter: a
// self-contained static-analysis engine on the standard library's
// go/parser, go/ast and go/types (no external dependencies — the module
// has none and must stay that way) that mechanically enforces the
// invariant every result in this repo rests on: a seeded run is
// byte-identical at any parallelism.
//
// That contract was previously enforced only dynamically — differential
// tests, the chaos suite, -race — so a single stray time.Now, an
// unseeded math/rand call, or an unsorted map iteration feeding a report
// would silently break reproducibility until a downstream diff test
// happened to catch it. The linter turns each of those failure modes
// into a build-time error, checked in CI on every push.
//
// # Analyzers
//
//	wallclock    no time.Now / time.Since / time.Sleep (or timers and
//	             tickers) anywhere in simulation code — time flows from
//	             sim.Clock, the virtual clock, so runs replay exactly.
//	globalrand   no top-level math/rand or math/rand/v2 functions: they
//	             draw from a shared, auto-seeded source. Randomness must
//	             flow from sim.RNG or an explicitly seeded source
//	             (rand.New(rand.NewSource(seed)) is allowed).
//	maporder     a `range` over a map whose body appends to a slice
//	             declared outside the loop, or writes output (fmt.Fprint*,
//	             Write*/AddRow/AddNote methods), bakes Go's randomized map
//	             iteration order into the result — the classic
//	             byte-identity killer. The idiomatic fix, collect keys →
//	             sort → re-iterate, is recognized: an append target that
//	             is later passed to a sort.* / slices.Sort* call in the
//	             same function is not flagged.
//	floatorder   `x += v` (or -=, *=, /=) on a float accumulator inside a
//	             map-range body: float addition is not associative, so
//	             iteration order changes the sum. Per-key accumulation
//	             (m[k] += v indexed by the range key, or through a pointer
//	             fetched inside the loop) is order-independent and not
//	             flagged.
//	sealedreport reports and tables must be built from the sealed,
//	             sorted summarize paths (serve's classRows/seal,
//	             harness.Table.Render) — passing a raw map to an
//	             fmt print/format call is flagged.
//
// The engine itself contributes a sixth check, ignorecheck, which
// validates suppression directives (see below): a malformed directive,
// one naming an unknown analyzer, or one that suppresses nothing is
// itself a diagnostic, so stale suppressions cannot accumulate.
//
// # Suppression
//
// A finding that is a deliberate, justified exception is silenced with a
// directive comment on the offending line or on the line directly above
// it:
//
//	//lint:ignore wallclock real elapsed time shown to the operator
//
// The first field names the analyzer (comma-separate several); everything
// after it is the mandatory reason. Unused or malformed directives are
// errors — suppressions must always pay rent.
//
// # Running
//
// cmd/gmlake-lint wires the suite as a CLI (`go run ./cmd/gmlake-lint
// ./...`, -json for tooling; exits nonzero on findings), CI runs it on
// every push, and TestLintCleanTree pins the tree itself to zero
// diagnostics so a violation can never land silently.
package lint
