// Package lint is the repository's determinism-contract linter: a
// self-contained static-analysis engine on the standard library's
// go/parser, go/ast and go/types (no external dependencies — the module
// has none and must stay that way) that mechanically enforces the
// invariant every result in this repo rests on: a seeded run is
// byte-identical at any parallelism.
//
// That contract was previously enforced only dynamically — differential
// tests, the chaos suite, -race — so a single stray time.Now, an
// unseeded math/rand call, or an unsorted map iteration feeding a report
// would silently break reproducibility until a downstream diff test
// happened to catch it. The linter turns each of those failure modes
// into a build-time error, checked in CI on every push.
//
// # Analyzers
//
//	wallclock    no time.Now / time.Since / time.Sleep (or timers and
//	             tickers) anywhere in simulation code — time flows from
//	             sim.Clock, the virtual clock, so runs replay exactly.
//	globalrand   no top-level math/rand or math/rand/v2 functions: they
//	             draw from a shared, auto-seeded source. Randomness must
//	             flow from sim.RNG or an explicitly seeded source
//	             (rand.New(rand.NewSource(seed)) is allowed).
//	maporder     a `range` over a map whose body appends to a slice
//	             declared outside the loop, or writes output (fmt.Fprint*,
//	             Write*/AddRow/AddNote methods), bakes Go's randomized map
//	             iteration order into the result — the classic
//	             byte-identity killer. The idiomatic fix, collect keys →
//	             sort → re-iterate, is recognized: an append target that
//	             is later passed to a sort.* / slices.Sort* call in the
//	             same function is not flagged.
//	floatorder   `x += v` (or -=, *=, /=) on a float accumulator inside a
//	             map-range body: float addition is not associative, so
//	             iteration order changes the sum. Per-key accumulation
//	             (m[k] += v indexed by the range key, or through a pointer
//	             fetched inside the loop) is order-independent and not
//	             flagged.
//	sealedreport reports and tables must be built from the sealed,
//	             sorted summarize paths (serve's classRows/seal,
//	             harness.Table.Render) — passing a raw map to an
//	             fmt print/format call is flagged.
//
// Three interprocedural analyzers sit on top of a whole-program call
// graph (see # Effect engine below):
//
//	wallclockflow a determinism entrypoint must not *transitively* reach
//	             wall-clock time: the per-function wallclock check stops
//	             at one body, this one follows calls, so time.Now cannot
//	             launder through helpers. The diagnostic carries the
//	             shortest call chain (gmlake-lint -why prints it, -json
//	             always includes it).
//	randflow     the same flow property for top-level math/rand(/v2)
//	             draws reachable from an entrypoint.
//	parcapture   a parallel job closure — one submitted to
//	             internal/runner's pool (runner.Do, runner.Collect) or
//	             launched with `go` — must not write a variable captured
//	             from an enclosing scope or at package level unless every
//	             write is discriminated by the job's own index
//	             (out[i] = ..., or the per-iteration loop variable for a
//	             `go` inside for/range). Map writes are never exempt:
//	             concurrent map writes race regardless of key. The
//	             interprocedural half also flags job closures whose
//	             callees transitively write package-level state.
//
// The engine itself contributes one more check, ignorecheck, which
// validates suppression directives (see below): a malformed directive,
// one naming an unknown analyzer, or one that suppresses nothing is
// itself a diagnostic, so stale suppressions cannot accumulate.
//
// # Effect engine
//
// BuildCallGraph constructs a static may-call graph over all loaded
// packages, one node per declared function, method, or function literal.
// Any use of an identifier that resolves to a module function — a direct
// call, a method call through a concrete receiver, a method value, a
// deferred or go-launched call, or passing the function as a value —
// creates an edge. Leaf facts (a wall-clock call, a top-level math/rand
// draw, an assignment whose target resolves to a package-level variable)
// are seeded at the functions that contain them and propagated to all
// transitive callers by a per-effect breadth-first pass, which terminates
// on recursion and cycles and records, for every tainted function, the
// shortest call chain to a culprit.
//
// The flow analyzers report at a fixed set of entrypoint roots — the
// functions whose byte-identity the paper's results rest on:
//
//	serve.Serve, serve.ServeCluster, harness.Env.RunExperiment,
//	core.Allocator.Alloc, core.Allocator.Free, reqtrace.Trace.Replay
//
// plus any function whose doc comment carries a //lint:entrypoint
// directive.
//
// Conservative-resolution caveats — the graph is deliberately
// under-approximate so it never reports a false chain:
//
//   - Calls through function-typed variables, parameters, fields, or
//     returned closures create no edge at the call site. Referencing the
//     function to *store or pass* it does create an edge, so a tainted
//     function handed to a combinator still taints the passer.
//   - Interface method calls create no edge (no class-hierarchy
//     analysis); only methods invoked through concrete receivers are
//     resolved.
//   - Package-level variable initializer expressions run before main and
//     are not part of any function body, so effects inside them are not
//     seeded (they cannot vary between runs of a seeded binary).
//   - Writes through pointers passed into a callee are attributed to the
//     function containing the assignment, not to the caller that handed
//     over the pointer.
//
// # Suppression
//
// A finding that is a deliberate, justified exception is silenced with a
// directive comment on the offending line or on the line directly above
// it:
//
//	//lint:ignore wallclock real elapsed time shown to the operator
//
// The first field names the analyzer (comma-separate several); everything
// after it is the mandatory reason. Unused or malformed directives are
// errors — suppressions must always pay rent.
//
// # Running
//
// cmd/gmlake-lint wires the suite as a CLI (`go run ./cmd/gmlake-lint
// ./...`, -json for tooling, -why to print each finding's call chain;
// exits nonzero on findings), CI runs it on every push, and
// TestLintCleanTree pins the tree itself to zero diagnostics so a
// violation can never land silently. Each package is parsed and
// type-checked exactly once per process — the Loader memoizes by
// directory — and the call graph is built once per Run and shared by
// every graph-consuming analyzer.
package lint
