package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// IgnoreCheck is the name the engine reports directive problems under:
// malformed //lint:ignore comments, directives naming unknown analyzers,
// and directives that suppress nothing. It is not a runnable Analyzer —
// suppressions must always pay rent, so these findings are themselves
// unsuppressable.
const IgnoreCheck = "ignorecheck"

const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool
	used      bool
}

// applyIgnores filters a package's diagnostics through its //lint:ignore
// directives. A directive suppresses diagnostics from the named
// analyzer(s) on its own line or on the line directly below it (i.e. it
// sits at the end of the offending line, or alone on the line above).
// Malformed directives, unknown analyzer names and directives that end up
// suppressing nothing are reported under IgnoreCheck.
func applyIgnores(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var directives []*ignoreDirective
	var ignoreDiags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ignoreDiags = append(ignoreDiags, Diagnostic{
						Analyzer: IgnoreCheck,
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				d := &ignoreDirective{pos: pos, analyzers: map[string]bool{}}
				bad := false
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						ignoreDiags = append(ignoreDiags, Diagnostic{
							Analyzer: IgnoreCheck,
							Pos:      pos,
							Message:  "//lint:ignore names unknown analyzer " + strconv.Quote(name),
						})
						bad = true
						continue
					}
					d.analyzers[name] = true
				}
				if bad && len(d.analyzers) == 0 {
					continue // fully bogus; already reported, don't also report unused
				}
				directives = append(directives, d)
			}
		}
	}

	var kept []Diagnostic
	for _, diag := range diags {
		// A directive anchors to the diagnostic's own line AND to the
		// start line of the statement enclosing it: a gofmt-split
		// multiline expression may land the diagnostic two lines below
		// the statement the author annotated, and the directive above
		// the statement must still apply.
		lines := map[int]bool{diag.Pos.Line: true}
		if diag.pos.IsValid() {
			lines[stmtStartLine(pkg, diag.pos)] = true
		}
		suppressed := false
		for _, d := range directives {
			if d.pos.Filename != diag.Pos.Filename || !d.analyzers[diag.Analyzer] {
				continue
			}
			for line := range lines {
				if line == d.pos.Line || line == d.pos.Line+1 {
					d.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	for _, d := range directives {
		if !d.used {
			kept = append(kept, Diagnostic{
				Analyzer: IgnoreCheck,
				Pos:      d.pos,
				Message:  "//lint:ignore suppresses no diagnostic; delete the stale directive",
			})
		}
	}
	return append(kept, ignoreDiags...)
}

// stmtStartLine returns the start line of the innermost statement
// enclosing pos, falling back to pos's own line when no statement contains
// it (e.g. a diagnostic on a declaration).
func stmtStartLine(pkg *Package, pos token.Pos) int {
	for _, f := range pkg.Files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		var best ast.Stmt
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if pos < n.Pos() || pos >= n.End() {
				return false
			}
			if s, ok := n.(ast.Stmt); ok {
				if best == nil || s.Pos() >= best.Pos() {
					best = s
				}
			}
			return true
		})
		if best != nil {
			return pkg.Fset.Position(best.Pos()).Line
		}
		break
	}
	return pkg.Fset.Position(pos).Line
}
