package lint

import "testing"

// TestLintCleanTree runs the full determinism-contract suite over the
// real repository — every non-test package under the module — and
// asserts zero diagnostics, so a wall-clock read, a global-rand call or
// an unsorted map iteration feeding a report can never land silently.
// It runs in -short mode on purpose: this is the contract's CI gate.
func TestLintCleanTree(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load(./...) found only %d packages; loader is missing the tree", len(pkgs))
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("determinism contract violation: %s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the violation or add a justified //lint:ignore <analyzer> <reason>")
	}
}
