package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the static call graph the interprocedural analyzers
// (wallclockflow, randflow, parcapture) run over. The graph covers every
// function declaration and function literal in the loaded packages; edges
// are *may-call* edges, resolved conservatively:
//
//   - A use of an identifier that resolves to a declared function or
//     method — whether in call position, as a method value, deferred, in a
//     `go` statement, or passed/assigned as a value — creates an edge from
//     the enclosing function. Referencing a function means it may run on
//     the referencer's behalf, so references taint exactly like calls.
//   - A function literal gets its own node with an edge from the function
//     that lexically encloses it (defining a closure is a reference to it).
//   - Calls through function-typed variables and parameters, and calls on
//     interface-typed receivers, are NOT resolved — no edge is created, so
//     they can never manufacture a false chain. They also cannot launder
//     effects by themselves: the function value had to be *referenced*
//     somewhere to flow into the variable, and that reference carries the
//     edge. The one genuinely unresolved case is a package-level variable
//     initializer expression (`var f = helper`), which lies outside every
//     function body; see the doc.go caveats.
//
// Leaf effect facts (wall-clock use, top-level math/rand, package-level
// variable writes) are seeded during the same walk; effects.go propagates
// them to every transitive caller.

// Effect is one leaf fact propagated through the call graph.
type Effect int

const (
	// EffectWallClock: the function (or something it transitively
	// references) reads or waits on the host wall clock.
	EffectWallClock Effect = iota
	// EffectGlobalRand: draws from the process-global auto-seeded
	// math/rand (or /v2) source.
	EffectGlobalRand
	// EffectGlobalWrite: assigns to a package-level variable (directly or
	// through a selector/index/deref path rooted at one).
	EffectGlobalWrite

	numEffects
)

// String names the effect for diagnostics.
func (e Effect) String() string {
	switch e {
	case EffectWallClock:
		return "wall-clock"
	case EffectGlobalRand:
		return "global-rand"
	case EffectGlobalWrite:
		return "global-write"
	}
	return fmt.Sprintf("effect(%d)", int(e))
}

// leafFact records that a node performs an effect directly, with the
// human-readable culprit for chain rendering ("time.Now", "rand.Intn",
// "package-level var tables").
type leafFact struct {
	has    bool
	detail string
}

// Node is one function in the call graph: a declared function or method
// (Obj != nil) or a function literal (Lit != nil).
type Node struct {
	Obj  *types.Func  // nil for literals
	Lit  *ast.FuncLit // nil for declarations
	Encl *Node        // lexically enclosing function, for literals
	Pkg  *Package
	Name string // display name: "serve.Serve", "core.Allocator.Alloc", "serve.Serve.func1"
	Pos  token.Pos

	Calls   []*Node // out-edges in first-reference source order, deduped
	callers []*Node // reverse edges, filled after the build walk

	root bool // determinism entrypoint (hardcoded list or //lint:entrypoint)

	leaf [numEffects]leafFact

	// Propagation results (effects.go): dist 0 = effect absent, 1 = this
	// node is the leaf, k = k-1 calls away from the leaf along next.
	dist [numEffects]int
	next [numEffects]*Node

	litCount int // ordinal source for child literal names
	callSet  map[*Node]bool
}

// HasEffect reports whether the node performs the effect directly or
// through any transitive callee.
func (n *Node) HasEffect(e Effect) bool { return n.dist[e] > 0 }

// Chain returns the shortest call chain from n to the effect's leaf,
// ending with the culprit itself: ["serve.Serve", "serve.logTick",
// "time.Now"]. Nil when the node does not have the effect.
func (n *Node) Chain(e Effect) []string {
	if n.dist[e] == 0 {
		return nil
	}
	var out []string
	cur := n
	for {
		out = append(out, cur.Name)
		if cur.next[e] == nil {
			break
		}
		cur = cur.next[e]
	}
	return append(out, cur.leaf[e].detail)
}

// CallGraph is the module-wide static call graph with propagated effects.
type CallGraph struct {
	nodes []*Node // stable order: package, file, declaration, nesting
	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// NodeOf returns the node for a declared function or method, or nil.
func (g *CallGraph) NodeOf(obj *types.Func) *Node { return g.byObj[obj] }

// LitNode returns the node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Nodes returns every node in stable order.
func (g *CallGraph) Nodes() []*Node { return g.nodes }

// Roots returns the determinism entrypoints in stable order: the hardcoded
// simulation entry list (see entrypointRoots in effects.go) plus every
// function annotated //lint:entrypoint.
func (g *CallGraph) Roots() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.root {
			out = append(out, n)
		}
	}
	return out
}

// BuildCallGraph constructs the graph over the loaded packages and
// propagates effects. The packages must share one FileSet (they do when
// they come from one Loader).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj: map[*types.Func]*Node{},
		byLit: map[*ast.FuncLit]*Node{},
	}
	// Pass 1: a node per declaration, so forward references resolve.
	type declWork struct {
		node *Node
		decl *ast.FuncDecl
	}
	var work []declWork
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{
					Obj:  obj,
					Pkg:  pkg,
					Name: declName(pkg, fd),
					Pos:  fd.Name.Pos(),
					root: isEntrypoint(pkg, fd),
				}
				g.nodes = append(g.nodes, n)
				g.byObj[obj] = n
				work = append(work, declWork{n, fd})
			}
		}
	}
	// Pass 2: walk bodies, creating edges, literal nodes and leaf facts.
	for _, w := range work {
		if w.decl.Body != nil {
			g.walkBody(w.node, w.decl.Body)
		}
	}
	// Reverse edges, in the same stable order as the forward walk.
	for _, n := range g.nodes {
		for _, c := range n.Calls {
			c.callers = append(c.callers, n)
		}
	}
	g.propagate()
	return g
}

// declName renders a stable display name for a declaration.
func declName(pkg *Package, fd *ast.FuncDecl) string {
	prefix := pkg.Types.Name() + "."
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if recv := recvTypeName(fd.Recv.List[0].Type); recv != "" {
			return prefix + recv + "." + fd.Name.Name
		}
	}
	return prefix + fd.Name.Name
}

// recvTypeName extracts the base type name of a receiver: *T, T, T[P] all
// yield "T".
func recvTypeName(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			e = v.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			e = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}

// walkBody visits cur's body: function literals recurse under their own
// node, identifier uses of declared functions become edges, external
// wall-clock/rand references and package-level writes become leaf facts.
func (g *CallGraph) walkBody(cur *Node, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			cur.litCount++
			child := &Node{
				Lit:  n,
				Encl: cur,
				Pkg:  cur.Pkg,
				Name: fmt.Sprintf("%s.func%d", cur.Name, cur.litCount),
				Pos:  n.Pos(),
			}
			g.nodes = append(g.nodes, child)
			g.byLit[n] = child
			g.addEdge(cur, child)
			g.walkBody(child, n.Body)
			return false // children handled under the literal's node
		case *ast.Ident:
			g.identRef(cur, n)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				g.noteGlobalWrite(cur, lhs)
			}
		case *ast.IncDecStmt:
			g.noteGlobalWrite(cur, n.X)
		}
		return true
	})
}

// identRef handles one identifier use: an edge when it names a declared
// module function, a leaf fact when it names a forbidden external one.
func (g *CallGraph) identRef(cur *Node, id *ast.Ident) {
	fn, ok := cur.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if callee, ok := g.byObj[fn]; ok {
		g.addEdge(cur, callee)
		return
	}
	// Not declared in the loaded packages: stdlib or an interface method.
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	topLevel := sig != nil && sig.Recv() == nil
	switch pkg.Path() {
	case "time":
		if topLevel && wallclockFuncs[fn.Name()] {
			g.setLeaf(cur, EffectWallClock, "time."+fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if topLevel && !randConstructors[fn.Name()] {
			g.setLeaf(cur, EffectGlobalRand, "rand."+fn.Name())
		}
	}
}

// noteGlobalWrite records a package-level-variable write leaf fact.
func (g *CallGraph) noteGlobalWrite(cur *Node, lhs ast.Expr) {
	v := writeTarget(cur.Pkg.Info, lhs)
	if v == nil || !isPackageLevel(v) {
		return
	}
	g.setLeaf(cur, EffectGlobalWrite, "package-level var "+v.Name())
}

// setLeaf seeds an effect fact; the first (source-order) culprit wins so
// chain rendering is deterministic.
func (g *CallGraph) setLeaf(n *Node, e Effect, detail string) {
	if !n.leaf[e].has {
		n.leaf[e] = leafFact{has: true, detail: detail}
	}
}

// addEdge appends a deduplicated call edge.
func (g *CallGraph) addEdge(from, to *Node) {
	if from == nil || to == nil || from == to {
		return
	}
	if from.callSet == nil {
		from.callSet = map[*Node]bool{}
	}
	if from.callSet[to] {
		return
	}
	from.callSet[to] = true
	from.Calls = append(from.Calls, to)
}

// propagate runs a multi-source BFS per effect over reverse edges: every
// transitive caller of a leaf inherits the effect, with next-hop pointers
// recording the shortest chain. Cycles terminate because a node is
// assigned a distance at most once.
func (g *CallGraph) propagate() {
	for e := Effect(0); e < numEffects; e++ {
		var queue []*Node
		for _, n := range g.nodes {
			if n.leaf[e].has {
				n.dist[e] = 1
				queue = append(queue, n)
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, c := range n.callers {
				if c.dist[e] == 0 {
					c.dist[e] = n.dist[e] + 1
					c.next[e] = n
					queue = append(queue, c)
				}
			}
		}
	}
}

// writeTarget resolves the variable an assignment's left-hand side
// ultimately stores into: x, x.f, x[i], *x all target x, and pkg.V targets
// V. Returns nil when the target is not a variable (call results, blank).
func writeTarget(info *types.Info, lhs ast.Expr) *types.Var {
	e := lhs
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if v.Name == "_" {
				return nil
			}
			tgt, _ := objectOf(info, v).(*types.Var)
			return tgt
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					tgt, _ := info.Uses[v.Sel].(*types.Var)
					return tgt
				}
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isPackageLevel reports whether v is a package-level variable (not a
// field, not a local).
func isPackageLevel(v *types.Var) bool {
	return v != nil && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// pkgPathMatches reports whether an import path ends with the given
// module-root-relative suffix ("internal/serve" matches
// "repro/internal/serve" and a bare "internal/serve").
func pkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
