package lint

import "go/ast"

// wallclockFuncs are the package time functions that read or wait on the
// host's real clock. time.Duration arithmetic and time.ParseDuration are
// fine — only entry points that observe wall time break replayability.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// WallClock flags reads of the host wall clock. All simulated time in
// this repo flows from sim.Clock so that a seeded run replays
// byte-identically; a single time.Now in a simulation path silently ties
// results to the host scheduler.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now/Since/Sleep (or timers) in simulation code; use sim.Clock virtual time",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkg, name, ok := calleePkgFunc(p.Info, call); ok && pkg == "time" && wallclockFuncs[name] {
					p.Reportf(call.Pos(), "time.%s reads the wall clock; simulated time must come from sim.Clock so seeded runs stay byte-identical", name)
				}
				return true
			})
		}
	},
}
