package lint

import "go/ast"

// randConstructors are the math/rand entry points that do NOT draw from
// the shared global source: they build an explicitly seeded generator,
// which is exactly what the determinism contract asks for.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// GlobalRand flags calls to math/rand (and math/rand/v2) package-level
// functions: they draw from a process-global, auto-seeded source, so two
// runs — or two goroutine interleavings — produce different streams.
// Randomness must flow from sim.RNG or an explicitly seeded source.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "no top-level math/rand functions or unseeded sources; randomness flows from sim.RNG/explicit seeds",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := calleePkgFunc(p.Info, call)
				if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") {
					return true
				}
				if randConstructors[name] {
					return true
				}
				p.Reportf(call.Pos(), "rand.%s draws from the global auto-seeded source; use sim.RNG or rand.New(rand.NewSource(seed))", name)
				return true
			})
		}
	},
}
