package lint

import (
	"go/ast"
	"go/types"
)

// calleePkgFunc resolves a call of the form pkg.Name(...) where pkg is an
// imported package qualifier, returning the package's import path and the
// function name. ok is false for method calls, locals, builtins, and
// anything else.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := ast.Unparen(sel.X).(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// rootIdent walks to the leftmost identifier of an lvalue-ish expression:
// x, x.f, x[i], *x, (x) all root at x. Returns nil when the expression
// has no identifier root (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object through Uses then Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node —
// used to exempt per-iteration locals from accumulation checks.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// usesObject reports whether the expression references obj anywhere.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	if e == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
