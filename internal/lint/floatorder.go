package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags `x += v` (and -=, *=, /=) on a floating-point
// accumulator inside a map-range body: float addition is not
// associative, so the randomized iteration order changes the low bits of
// the sum and the rendered tables with them. Per-key accumulation —
// indexing the destination by the range key, or accumulating through a
// pointer fetched inside the loop — touches each destination once per
// pass and stays order-independent, so it is not flagged.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "no float accumulation in map-iteration order; sum over a sorted slice or per-key buckets",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(p.Info.TypeOf(rs.X)) {
					return true
				}
				key := objectOf(p.Info, keyIdent(rs))
				ast.Inspect(rs.Body, func(m ast.Node) bool {
					a, ok := m.(*ast.AssignStmt)
					if !ok || !isAccumAssign(a.Tok) || len(a.Lhs) != 1 {
						return true
					}
					lhs := a.Lhs[0]
					if !isFloat(p.Info.TypeOf(lhs)) {
						return true
					}
					// m[k] += v, m[k].f += v, *ptrFromKey += v: one
					// destination per key — order-independent.
					if key != nil && usesObject(p.Info, lhs, key) {
						return true
					}
					if declaredWithin(objectOf(p.Info, rootIdent(lhs)), rs) {
						return true
					}
					p.Reportf(a.Pos(), "float accumulation into %s in randomized map-iteration order changes the sum; iterate a sorted key slice or accumulate per key", types.ExprString(lhs))
					return true
				})
				return true
			})
		}
	},
}

// keyIdent returns the range statement's key identifier, or nil for `_`
// or a keyless range.
func keyIdent(rs *ast.RangeStmt) *ast.Ident {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

func isAccumAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
