package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// fmtOutputFuncs are the fmt entry points that emit output directly.
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writeMethods are method names that accumulate ordered output or
// report/table state; calling one inside a map range bakes the random
// iteration order into the result.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddNote": true,
}

// sortFuncs are the sort/slices entry points whose argument ends up in a
// deterministic order; an append target later passed to one of these is
// the idiomatic collect-sort-iterate fix and is not flagged.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Strings": true, "Ints": true,
		"Float64s": true, "Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// MapOrder flags `range` over a map whose body appends to a slice
// declared outside the loop (with no later sort of that slice in the
// same function) or writes output/report state — the classic
// byte-identity killer: Go randomizes map iteration order on purpose.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map ranges must not append to output slices or write reports without a sort; collect keys, sort, iterate",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				sorted := sortedExprs(p, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok || !isMapType(p.Info.TypeOf(rs.X)) {
						return true
					}
					checkMapRangeBody(p, rs, sorted)
					return true
				})
			}
		}
	},
}

// sortedExprs collects the source renderings of every expression passed
// to a sort.*/slices.Sort* call in body. For wrapped arguments like
// sort.Sort(byLen(rows)) the constructor's arguments are included too.
func sortedExprs(p *Pass, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	add := func(e ast.Expr) {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = u.X
		}
		out[types.ExprString(e)] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := calleePkgFunc(p.Info, call)
		if !ok || !sortFuncs[pkg][name] {
			return true
		}
		for _, arg := range call.Args {
			add(arg)
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				for _, ia := range inner.Args {
					add(ia)
				}
			}
		}
		return true
	})
	return out
}

// checkMapRangeBody reports order-dependent accumulation inside one
// map-range body.
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, sorted map[string]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, rhs := range v.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) {
					continue
				}
				target := v.Lhs[i]
				rendering := types.ExprString(target)
				if sorted[rendering] {
					continue
				}
				if declaredWithin(objectOf(p.Info, rootIdent(target)), rs) {
					continue // per-iteration local; order cannot leak out
				}
				p.Reportf(v.Pos(), "appends to %s in randomized map-iteration order with no later sort; collect keys, sort, then iterate", rendering)
			}
		case *ast.CallExpr:
			if pkg, name, ok := calleePkgFunc(p.Info, v); ok && pkg == "fmt" && fmtOutputFuncs[name] {
				p.Reportf(v.Pos(), "fmt.%s inside a map range writes output in randomized iteration order; iterate a sorted key slice instead", name)
				return true
			}
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok || p.Info.Selections[sel] == nil || !writeMethods[sel.Sel.Name] {
				return true
			}
			recv := ast.Unparen(sel.X)
			if declaredWithin(objectOf(p.Info, rootIdent(recv)), rs) {
				return true // per-iteration buffer
			}
			rendering := types.ExprString(recv)
			for s := range sorted {
				if s == rendering || strings.HasPrefix(s, rendering+".") {
					return true // e.g. sort.Slice(t.Rows, ...) after AddRow on t
				}
			}
			p.Reportf(v.Pos(), "%s.%s inside a map range records output in randomized iteration order; iterate a sorted key slice instead", rendering, sel.Sel.Name)
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
