package lint

import (
	"go/ast"
	"go/types"
)

// ParCapture guards the idiom that carries all of this repo's parallelism:
// closures submitted as indexed jobs to internal/runner's pool (runner.Do,
// runner.Collect) or launched with a `go` statement. Such a closure may
// run concurrently with its siblings, so a plain assignment to a variable
// captured from an enclosing scope is a data race — and even when a mutex
// makes it race-free, the *order* of the writes depends on goroutine
// scheduling, which breaks the byte-identical-run contract in exactly the
// way -race only catches when the scheduler happens to collide.
//
// The one safe shape is per-job index discrimination: each job writes only
// its own slot, `out[i] = ...` with i the job's index parameter (or, for a
// `go` inside a for/range, the loop's per-iteration variable), so the
// joined result is independent of execution order. Writes to variables
// declared inside the closure — including its named results — are local
// and exempt.
//
// The analyzer is also interprocedural: a job closure that calls a helper
// whose propagated effect set includes a package-level-variable write is
// flagged with the call chain, so shared-state mutation cannot launder
// through one level of function call. (Writes through pointers *passed* to
// helpers are not tracked; see the doc.go caveats.)
var ParCapture = &Analyzer{
	Name:       "parcapture",
	Doc:        "no parallel job closure (runner pool / go stmt) may write captured or package-level state without per-job indexing",
	NeedsGraph: true,
	Run:        parcaptureRun,
}

// runnerPoolFuncs are the pool-submission entry points of internal/runner.
var runnerPoolFuncs = map[string]bool{
	"Do":      true,
	"Collect": true,
}

func parcaptureRun(p *Pass) {
	for _, f := range p.Files {
		walkParCapture(p, f, nil)
	}
}

// walkParCapture descends the file tracking the per-iteration loop
// variables in scope (Go 1.22 semantics: each iteration gets fresh
// bindings, so a `go` closure indexing by the loop variable writes a
// distinct slot per iteration).
func walkParCapture(p *Pass, n ast.Node, loopVars []types.Object) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		walkParCapture(p, n.X, loopVars)
		inner := loopVars
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					inner = append(inner, obj)
				}
			}
		}
		walkParCapture(p, n.Body, inner)
		return
	case *ast.ForStmt:
		walkParCapture(p, n.Init, loopVars)
		walkParCapture(p, n.Cond, loopVars)
		walkParCapture(p, n.Post, loopVars)
		inner := loopVars
		if init, ok := n.Init.(*ast.AssignStmt); ok {
			for _, e := range init.Lhs {
				if id, ok := e.(*ast.Ident); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						inner = append(inner, obj)
					}
				}
			}
		}
		walkParCapture(p, n.Body, inner)
		return
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			checkJobLit(p, lit, "go-launched closure", loopVars)
		}
	case *ast.CallExpr:
		if pkg, name, ok := calleePkgFunc(p.Info, n); ok && pkgPathMatches(pkg, "internal/runner") && runnerPoolFuncs[name] {
			for _, arg := range n.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkJobLit(p, lit, "runner pool job", nil)
				}
			}
		}
	}
	// Generic descent: visit children, recursing manually so loop and go
	// statements above keep control of their subtrees.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		switch c.(type) {
		case *ast.RangeStmt, *ast.ForStmt, *ast.GoStmt, *ast.CallExpr:
			walkParCapture(p, c, loopVars)
			return false
		}
		return true
	})
}

// checkJobLit checks one parallel job closure: direct writes to captured
// or package-level variables (unless index-discriminated), then transitive
// package-level writes through its callees via the effect engine.
func checkJobLit(p *Pass, lit *ast.FuncLit, kind string, loopVars []types.Object) {
	// Discriminators: the closure's own parameters plus the enclosing
	// per-iteration loop variables.
	disc := map[types.Object]bool{}
	for _, obj := range loopVars {
		disc[obj] = true
	}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, id := range field.Names {
				if obj := p.Info.Defs[id]; obj != nil {
					disc[obj] = true
				}
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkJobWrite(p, lit, lhs, disc, kind)
			}
		case *ast.IncDecStmt:
			checkJobWrite(p, lit, st.X, disc, kind)
		}
		return true
	})

	// Interprocedural half: a callee (transitively) writing package-level
	// state makes the job's side effects order-dependent even though the
	// closure body itself looks clean. dist >= 2 skips the direct-leaf
	// case, which the write check above already reported.
	if p.Graph != nil {
		if node := p.Graph.LitNode(lit); node != nil && node.dist[EffectGlobalWrite] >= 2 {
			chain := node.Chain(EffectGlobalWrite)
			p.ReportChainf(lit.Pos(), chain, "%s transitively writes %s (%d calls deep); parallel jobs must not mutate shared state (rerun with -why for the call chain)", kind, chain[len(chain)-1], len(chain)-2)
		}
	}
}

// checkJobWrite flags one assignment target inside a job closure when it
// resolves to a variable captured from outside the closure (or a
// package-level one) and no index on the access path uses a per-job
// discriminator.
func checkJobWrite(p *Pass, lit *ast.FuncLit, lhs ast.Expr, disc map[types.Object]bool, kind string) {
	v := writeTarget(p.Info, lhs)
	if v == nil || declaredWithin(v, lit) {
		return
	}
	if indexedByJob(p.Info, lhs, disc) {
		return
	}
	where := "captured from the enclosing scope"
	if isPackageLevel(v) {
		where = "at package level"
	}
	p.Reportf(lhs.Pos(), "%s writes %q, declared %s, without per-job index discrimination; concurrent jobs race and the write order depends on scheduling", kind, v.Name(), where)
}

// indexedByJob reports whether any index expression on the lvalue's access
// path references a per-job discriminator (job index parameter or
// per-iteration loop variable) — the collect-by-index shape that keeps
// parallel writes disjoint and join-order deterministic. Indexing into a
// map never discriminates: concurrent map writes race whatever the key,
// so only slice/array element writes qualify.
func indexedByJob(info *types.Info, lhs ast.Expr, disc map[types.Object]bool) bool {
	e := lhs
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[v.X]; ok && isMapType(tv.Type) {
				return false
			}
			for obj := range disc {
				if usesObject(info, v.Index, obj) {
					return true
				}
			}
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return false
		}
	}
}
