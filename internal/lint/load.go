package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked, non-test package.
type Package struct {
	Path  string // import path, e.g. "repro/internal/serve"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the module's non-test packages using only
// the standard library: intra-module imports resolve recursively from
// source, everything else (the standard library) through go/importer's
// source importer, which shares the loader's FileSet so positions stay
// coherent.
type Loader struct {
	fset    *token.FileSet
	root    string // module root (the directory holding go.mod)
	modpath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package
	dirs    map[string]*Package // LoadDir memo, keyed by absolute path
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory root, which
// must contain a go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    abs,
		modpath: modpath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		dirs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load expands the patterns ("./...", "./internal/...", "./cmd/gmlake-lint",
// or "." for the root package) into package directories, loads and
// type-checks each, and returns them sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{} // rel dir ("" = root) → include
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "." || pat == "":
			dirs[""] = true
		case pat == "...":
			subtree, err := l.goDirs("")
			if err != nil {
				return nil, err
			}
			for _, d := range subtree {
				dirs[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			subtree, err := l.goDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range subtree {
				dirs[d] = true
			}
		default:
			dirs[filepath.ToSlash(filepath.Clean(pat))] = true
		}
	}
	rels := make([]string, 0, len(dirs))
	for d := range dirs {
		rels = append(rels, d)
	}
	sort.Strings(rels)
	pkgs := make([]*Package, 0, len(rels))
	for _, rel := range rels {
		ipath := l.modpath
		if rel != "" {
			ipath = l.modpath + "/" + rel
		}
		pkg, err := l.loadPackage(ipath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goDirs walks the subtree under rel (module-root-relative, "" = whole
// module) and returns, sorted, every directory that holds at least one
// non-test .go file. testdata and hidden directories are skipped, as the
// go tool does.
func (l *Loader) goDirs(rel string) ([]string, error) {
	start := filepath.Join(l.root, filepath.FromSlash(rel))
	var out []string
	err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dirRel, err := filepath.Rel(l.root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if dirRel == "." {
			dirRel = ""
		}
		out = append(out, filepath.ToSlash(dirRel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	// dedupe
	uniq := out[:0]
	for i, d := range out {
		if i == 0 || d != out[i-1] {
			uniq = append(uniq, d)
		}
	}
	return uniq, nil
}

// loadPackage parses and type-checks the package at the given intra-module
// import path, memoized and cycle-checked.
func (l *Loader) loadPackage(ipath string) (*Package, error) {
	if pkg, ok := l.pkgs[ipath]; ok {
		return pkg, nil
	}
	if l.loading[ipath] {
		return nil, fmt.Errorf("lint: import cycle through %s", ipath)
	}
	l.loading[ipath] = true
	defer delete(l.loading, ipath)

	rel := strings.TrimPrefix(strings.TrimPrefix(ipath, l.modpath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	pkg, err := l.checkDir(ipath, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[ipath] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks a single standalone directory (used by
// the golden-file analyzer tests over testdata packages, which may import
// the standard library and intra-module packages). Results are memoized
// per directory so a shared loader type-checks each testdata package once
// per run however many tests consume it.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.dirs[abs]; ok {
		return pkg, nil
	}
	pkg, err := l.checkDir(filepath.Base(abs), abs)
	if err != nil {
		return nil, err
	}
	l.dirs[abs] = pkg
	return pkg, nil
}

func (l *Loader) checkDir(ipath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := cfg.Check(ipath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", ipath, err)
	}
	return &Package{
		Path:  ipath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPkg resolves one import: intra-module paths recurse through the
// loader, everything else goes to the standard-library source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
