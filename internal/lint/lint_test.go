package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// testLoader is shared across tests: the standard-library source importer
// memoizes type-checked packages, so one loader keeps the suite fast.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// want is one expectation comment: `// want "regexp"` on the line a
// diagnostic must appear on. Several quoted patterns may share one
// comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantPattern = regexp.MustCompile(`"([^"]*)"`)

// collectWants scans a loaded package's comments for expectations.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantPattern.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
				}
			}
		}
	}
	return wants
}

// runGolden loads testdata/src/<dir>, runs the given analyzers, and
// checks the diagnostics against the files' want comments exactly: every
// want must match a diagnostic on its line, and every diagnostic must be
// claimed by a want.
func runGolden(t *testing.T, dir string, analyzers []*Analyzer) {
	t.Helper()
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags := Run([]*Package{pkg}, analyzers)
	wants := collectWants(t, pkg)

	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func TestWallClockGolden(t *testing.T)    { runGolden(t, "wallclock", []*Analyzer{WallClock}) }
func TestGlobalRandGolden(t *testing.T)   { runGolden(t, "globalrand", []*Analyzer{GlobalRand}) }
func TestMapOrderGolden(t *testing.T)     { runGolden(t, "maporder", []*Analyzer{MapOrder}) }
func TestFloatOrderGolden(t *testing.T)   { runGolden(t, "floatorder", []*Analyzer{FloatOrder}) }
func TestSealedReportGolden(t *testing.T) { runGolden(t, "sealedreport", []*Analyzer{SealedReport}) }
func TestEffectsFlowGolden(t *testing.T) {
	runGolden(t, "effects", []*Analyzer{WallClockFlow, RandFlow})
}
func TestParCaptureGolden(t *testing.T) { runGolden(t, "parcapture", []*Analyzer{ParCapture}) }

// TestIgnoreDirectives pins the suppression engine's semantics on
// testdata/src/ignore: two justified directives silence their findings,
// while a stale, an unknown-analyzer and a reasonless directive are each
// themselves diagnosed — suppressions must pay rent.
func TestIgnoreDirectives(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatalf("LoadDir(ignore): %v", err)
	}
	diags := Run([]*Package{pkg}, All())

	for _, d := range diags {
		if d.Analyzer != IgnoreCheck {
			t.Errorf("finding survived a valid suppression: %s", d)
		}
	}
	expect := []string{
		"suppresses no diagnostic",
		"unknown analyzer",
		"malformed //lint:ignore",
	}
	for _, sub := range expect {
		found := false
		for _, d := range diags {
			if d.Analyzer == IgnoreCheck && strings.Contains(d.Message, sub) {
				found = true
			}
		}
		if !found {
			t.Errorf("expected an ignorecheck diagnostic containing %q, got:\n%s", sub, renderDiags(diags))
		}
	}
	if got := len(diags); got != len(expect) {
		t.Errorf("want exactly %d ignorecheck diagnostics, got %d:\n%s", len(expect), got, renderDiags(diags))
	}
}

// TestRunDeterministic pins the linter's own output contract: two runs
// over the same package yield byte-identical diagnostic listings.
func TestRunDeterministic(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "maporder"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	a := renderDiags(Run([]*Package{pkg}, All()))
	b := renderDiags(Run([]*Package{pkg}, All()))
	if a != b {
		t.Fatalf("diagnostic output not deterministic:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

func renderDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}
