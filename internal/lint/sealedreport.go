package lint

import "go/ast"

// fmtFormatFuncs are the fmt entry points checked by sealedreport; the
// int value is the index of the first data argument (past writers).
var fmtFormatFuncs = map[string]int{
	"Print": 0, "Printf": 0, "Println": 0, "Sprint": 0, "Sprintf": 0,
	"Sprintln": 0, "Fprint": 1, "Fprintf": 1, "Fprintln": 1,
}

// SealedReport flags passing a raw map to an fmt print/format call.
// Reports and tables in this repo are rendered through sealed,
// pre-sorted paths (serve's seal/classRows, harness.Table.Render,
// reqtrace's summaries); an ad-hoc dump of map contents bypasses the
// sort discipline those paths guarantee — and even where fmt sorts keys
// itself, the formatting belongs in the sealed path, not scattered at
// call sites.
var SealedReport = &Analyzer{
	Name: "sealedreport",
	Doc:  "reports/tables come from sealed summarize paths; no ad-hoc fmt of raw map contents",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := calleePkgFunc(p.Info, call)
				if !ok || pkg != "fmt" {
					return true
				}
				skip, ok := fmtFormatFuncs[name]
				if !ok {
					return true
				}
				for _, arg := range call.Args[min(skip, len(call.Args)):] {
					if isMapType(p.Info.TypeOf(arg)) {
						p.Reportf(arg.Pos(), "fmt.%s of a raw map bypasses the sealed report paths; summarize into sorted rows first", name)
					}
				}
				return true
			})
		}
	},
}
