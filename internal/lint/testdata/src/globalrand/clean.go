package globalrand

import "math/rand"

// clean builds an explicitly seeded generator — the allowed form.
func clean(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
