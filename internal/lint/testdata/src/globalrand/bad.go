package globalrand

import "math/rand"

// bad draws from the shared, auto-seeded global source.
func bad() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the global auto-seeded source"
	n := rand.Intn(10)                 // want "rand.Intn draws from the global auto-seeded source"
	return rand.Float64() + float64(n) // want "rand.Float64 draws from the global auto-seeded source"
}
