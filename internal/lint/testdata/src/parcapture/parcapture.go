// Package parcapture is the golden input for the parallel-capture race
// analyzer: closures submitted to internal/runner's pool or launched with
// `go` must not write state captured from an enclosing scope unless every
// write is discriminated by the job's own index — the collect-by-index
// shape whose joined result is independent of scheduling.
package parcapture

import "repro/internal/runner"

// badSum is the classic nondeterministic reduction: every job adds into
// one captured accumulator, so the total depends on interleaving.
func badSum(n int) int {
	total := 0
	_ = runner.Do(0, n, func(i int) {
		total += i // want "runner pool job writes .total., declared captured from the enclosing scope"
	})
	return total
}

// cleanCollect is the safe shape: each job writes only its own slot,
// indexed by the job parameter.
func cleanCollect(n int) []int {
	out := make([]int, n)
	_ = runner.Do(0, n, func(i int) {
		out[i] = i * i
	})
	return out
}

// badMapKeyed races even though the key is derived from the job index:
// maps have no per-slot independence, concurrent writes race regardless.
func badMapKeyed(n int) map[int]int {
	m := map[int]int{}
	_ = runner.Do(0, n, func(i int) {
		m[i] = i // want "runner pool job writes .m., declared captured from the enclosing scope"
	})
	return m
}

// badGo launches a goroutine that mutates captured state.
func badGo() int {
	x := 0
	go func() {
		x = 1 // want "go-launched closure writes .x., declared captured from the enclosing scope"
	}()
	return x
}

// cleanGoLoop is safe: the per-iteration loop variable (Go 1.22
// semantics) discriminates the slots, one per goroutine.
func cleanGoLoop(n int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		go func() {
			out[i] = i
		}()
	}
	return out
}

// cleanRangeLoop is the range-loop flavour of the same safe shape.
func cleanRangeLoop(vals []int) []int {
	out := make([]int, len(vals))
	for i, v := range vals {
		go func() {
			out[i] = v * 2
		}()
	}
	return out
}

var hits int

func bump() { hits++ }

// badLaunder has a clean-looking job body, but a callee mutates
// package-level state: the interprocedural half must flag it with the
// call chain.
func badLaunder(n int) {
	_ = runner.Do(0, n, func(i int) { // want "runner pool job transitively writes package-level var hits"
		bump()
	})
}

var counter int

// badGlobal writes package-level state directly from the job.
func badGlobal(n int) {
	_ = runner.Do(0, n, func(i int) {
		counter++ // want "runner pool job writes .counter., declared at package level"
	})
}

// cleanLocals writes only job-local state: declarations inside the
// closure, including the closure's own named results, are exempt.
func cleanLocals(n int) []int {
	out := make([]int, n)
	_ = runner.Do(0, n, func(i int) {
		v := i * 2
		v++
		out[i] = v
	})
	go func() (done bool) {
		done = true
		return done
	}()
	return out
}
