package wallclock

import "time"

// clean uses only duration arithmetic and parsing — no wall-clock reads.
func clean(virtual time.Duration) time.Duration {
	d, err := time.ParseDuration("250ms")
	if err != nil {
		return virtual
	}
	return virtual + 3*d.Round(time.Millisecond)
}
