package wallclock

import "time"

// bad exercises the wall-clock entry points the analyzer must flag.
func bad() time.Time {
	time.Sleep(time.Millisecond)     // want "time.Sleep reads the wall clock"
	if time.Since(time.Time{}) > 0 { // want "time.Since reads the wall clock"
		_ = time.After(time.Second) // want "time.After reads the wall clock"
	}
	return time.Now() // want "time.Now reads the wall clock"
}
