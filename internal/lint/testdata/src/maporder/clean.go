package maporder

import (
	"sort"
	"strconv"
	"strings"
)

// cleanSorted is the idiomatic fix: collect, sort, iterate.
func cleanSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cleanSortSlice sorts the collected pairs with sort.Slice.
func cleanSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// cleanLocal appends only to a per-iteration local; order cannot leak.
func cleanLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var row []string
		for _, v := range vs {
			row = append(row, strconv.Itoa(v))
		}
		n += len(row)
	}
	return n
}

// cleanPerKeyBuilder writes into a buffer declared inside the loop.
func cleanPerKeyBuilder(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		b.WriteString(strconv.Itoa(v))
		out[k] = b.String()
	}
	return out
}
