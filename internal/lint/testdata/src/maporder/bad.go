package maporder

import (
	"fmt"
	"io"
	"strings"
)

// badAppend bakes map iteration order into the returned slice.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appends to out in randomized map-iteration order"
	}
	return out
}

// badPrint writes output in map iteration order.
func badPrint(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside a map range writes output"
	}
}

// badBuilder records into a builder that outlives the loop.
func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "b.WriteString inside a map range records output"
	}
	return b.String()
}
