package floatorder

// badSum accumulates floats in map iteration order: addition is not
// associative, so the low bits of the sum differ run to run.
func badSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation into sum in randomized map-iteration order"
	}
	return sum
}

// badScale multiplies in map order — same hazard.
func badScale(m map[int]float64) float64 {
	prod := 1.0
	for _, v := range m {
		prod *= 1 + v // want "float accumulation into prod in randomized map-iteration order"
	}
	return prod
}
