package floatorder

import "sort"

// cleanSortedSum sums over a sorted key slice — deterministic order.
func cleanSortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// cleanPerKey accumulates per key: each destination is touched once per
// source map, so iteration order cannot change any bucket's value.
func cleanPerKey(dst map[string]float64, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// cleanPerKeyPtr accumulates through a pointer fetched inside the loop —
// still one destination per key.
func cleanPerKeyPtr(dst map[string]*float64, src map[string]float64) {
	for k, v := range src {
		p := dst[k]
		if p == nil {
			p = new(float64)
			dst[k] = p
		}
		*p += v
	}
}

// cleanIntCount is integer accumulation: exact, order-independent.
func cleanIntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
