// Package effects is the golden input for the interprocedural flow
// analyzers (wallclockflow, randflow): an entrypoint that launders a
// wall-clock read or a global-rand draw through helper functions must be
// flagged at its declaration, with the shortest call chain to the leaf.
// The per-call-site analyzers (wallclock, globalrand) see nothing wrong
// at the entrypoints themselves — that laundering gap is exactly what the
// flow analyzers close.
package effects

import (
	"math/rand"
	"time"
)

// Entry launders a wall-clock read through two helpers.
//
//lint:entrypoint
func Entry() { // want "effects.Entry is a determinism entrypoint but transitively reaches time.Now"
	dispatch()
}

func dispatch() { logTick() }

func logTick() {
	t := time.Now()
	_ = t
}

// EntryRand launders a global-rand draw through a helper.
//
//lint:entrypoint
func EntryRand() int { // want "effects.EntryRand is a determinism entrypoint but transitively reaches rand.Intn"
	return pick()
}

func pick() int { return rand.Intn(10) }

// ticker.now wraps the clock; taking the method as a value creates a call
// edge, so an entrypoint holding the method value is tainted.
type ticker struct{}

func (ticker) now() time.Time { return time.Now() }

//lint:entrypoint
func EntryMethodValue() time.Time { // want "effects.EntryMethodValue is a determinism entrypoint but transitively reaches time.Now"
	f := ticker{}.now
	return f()
}

// EntryClean uses only explicitly seeded randomness: constructors are
// allowed and methods on the seeded source are fine.
//
//lint:entrypoint
func EntryClean() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// callsParam invokes an unresolved function-typed parameter: conservative
// resolution creates no edge here, so no false chain can appear.
func callsParam(f func() int) int { return f() }

func fixed() int { return 4 }

// EntryParam stays clean: the only functions it references are clean, and
// the unresolved call inside callsParam must not manufacture a chain.
//
//lint:entrypoint
func EntryParam() int { return callsParam(fixed) }

// notRoot reaches the clock but is not an entrypoint: the flow analyzers
// stay silent (the per-call-site wallclock analyzer owns direct reports).
func notRoot() { logTick() }
