// Package callgraph is the golden input for the call-graph builder's edge
// cases: recursion and cycles must terminate, method values and deferred
// and go-launched calls must create edges, and unresolvable
// function-typed parameters must degrade conservatively without
// manufacturing false chains. callgraph_test.go drives the CallGraph API
// over this package directly.
package callgraph

import "time"

// tick is the wall-clock leaf everything below points at.
func tick() { _ = time.Now() }

// cycleA and cycleB are mutually recursive: propagation must terminate
// and both must inherit the effect through the cycle.
func cycleA() { cycleB() }

func cycleB() {
	cycleA()
	tick()
}

// self is directly recursive and clean: no effect, no infinite loop.
func self(n int) int {
	if n <= 0 {
		return 0
	}
	return self(n - 1)
}

// clock.now wraps the leaf; methodValue takes it as a method value
// without calling it — that reference alone must create the edge.
type clock struct{}

func (clock) now() time.Time { return time.Now() }

func methodValue() func() time.Time {
	var c clock
	return c.now
}

// deferred reaches the leaf only through a defer statement.
func deferred() { defer tick() }

// launched reaches the leaf only through a go statement.
func launched() { go tick() }

// callsParam invokes an unresolved function-typed parameter: no edge, no
// false chain — even though tainted functions exist in the package, none
// may be attributed to callsParam.
func callsParam(f func()) { f() }

// cleanCaller only ever passes a clean literal into callsParam; the
// conservative non-resolution of f() must keep it clean.
func cleanCaller() {
	callsParam(func() {})
}

// taintedPasser hands the tainted function to callsParam: referencing
// tick is itself a may-call edge, so taintedPasser is (correctly,
// conservatively) tainted — while callsParam stays clean.
func taintedPasser() {
	callsParam(tick)
}
