package ignore

import (
	"fmt"
	"time"
)

// suppressed is a justified exception: the directive on the line above
// the finding silences exactly that diagnostic.
func suppressed() time.Time {
	//lint:ignore wallclock golden test of the suppression path
	return time.Now()
}

// inline demonstrates a same-line directive.
func inline() time.Time {
	return time.Now() //lint:ignore wallclock golden test of the same-line form
}

// stale suppresses nothing: the engine must flag it (ignorecheck).
//
//lint:ignore wallclock there is no wall-clock use on the next line
func stale() int { return 4 }

// unknown names an analyzer that does not exist (ignorecheck).
//
//lint:ignore nosuchanalyzer reason text
func unknown() int { return 5 }

// reasonless omits the mandatory justification (ignorecheck).
//
//lint:ignore wallclock
func reasonless() int { return 6 }

// multiline is the regression case for statement-anchored suppression: the
// gofmt-split call puts the offending time.Now two lines below the
// statement's first line, but the directive above the statement must still
// suppress it (it used to be reported as both a violation and a stale
// directive).
func multiline() string {
	//lint:ignore wallclock golden test of statement-anchored suppression
	return fmt.Sprintf(
		"%v",
		time.Now(),
	)
}
