package ignore

import "time"

// suppressed is a justified exception: the directive on the line above
// the finding silences exactly that diagnostic.
func suppressed() time.Time {
	//lint:ignore wallclock golden test of the suppression path
	return time.Now()
}

// inline demonstrates a same-line directive.
func inline() time.Time {
	return time.Now() //lint:ignore wallclock golden test of the same-line form
}

// stale suppresses nothing: the engine must flag it (ignorecheck).
//
//lint:ignore wallclock there is no wall-clock use on the next line
func stale() int { return 4 }

// unknown names an analyzer that does not exist (ignorecheck).
//
//lint:ignore nosuchanalyzer reason text
func unknown() int { return 5 }

// reasonless omits the mandatory justification (ignorecheck).
//
//lint:ignore wallclock
func reasonless() int { return 6 }
