package sealedreport

import (
	"fmt"
	"io"
)

// bad dumps raw map contents into report output.
func bad(w io.Writer, counts map[string]int) {
	fmt.Fprintf(w, "served per class: %v\n", counts) // want "fmt.Fprintf of a raw map bypasses the sealed report paths"
}

// badSprint builds a report line straight from a map.
func badSprint(shares map[string]float64) string {
	return fmt.Sprintf("kv shares: %v", shares) // want "fmt.Sprintf of a raw map bypasses the sealed report paths"
}
