package sealedreport

import (
	"fmt"
	"io"
	"sort"
)

// row is a sealed, sorted rendering of one class — the shape reports
// must flow through.
type row struct {
	class string
	count int
}

// summarize seals a map into sorted rows.
func summarize(counts map[string]int) []row {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{class: k, count: counts[k]})
	}
	return rows
}

// clean renders the sealed rows; scalar facts about a map are fine too.
func clean(w io.Writer, counts map[string]int) {
	fmt.Fprintf(w, "%d classes\n", len(counts))
	for _, r := range summarize(counts) {
		fmt.Fprintf(w, "%s: %d\n", r.class, r.count)
	}
}
