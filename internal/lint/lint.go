package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one determinism check: a name (used in diagnostics and
// //lint:ignore directives), a one-line doc string, and a Run function
// that inspects a type-checked package and reports findings. Analyzers
// with NeedsGraph set receive the shared interprocedural call graph —
// built once per Run over the whole package set — through Pass.Graph.
type Analyzer struct {
	Name       string
	Doc        string
	NeedsGraph bool
	Run        func(*Pass)
}

// Pass is the per-package view an Analyzer runs over: the parsed files,
// the type-checked package and its type info, and a report sink. Graph is
// the module-wide call graph with propagated effects, shared by every
// graph-consuming analyzer in the run; it is nil for analyzers that did
// not request it.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Graph *CallGraph

	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportChainf(pos, nil, format, args...)
}

// ReportChainf records a diagnostic at pos carrying a call chain — the
// shortest path from an entrypoint or job closure to the effect leaf,
// rendered by gmlake-lint's -why flag and included in its -json output.
func (p *Pass) ReportChainf(pos token.Pos, chain []string, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
		pos:      pos,
	})
}

// Diagnostic is one finding: which analyzer fired, where, and why. Chain,
// when set, is the shortest call chain from the reported function to the
// offending leaf, ending with the culprit ("serve.Serve",
// "serve.logTick", "time.Now").
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Chain    []string

	// pos is the original token position, kept so suppression can anchor
	// to the enclosing statement's start line (a gofmt-split expression
	// may place the diagnostic lines below the statement's first line).
	pos token.Pos
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full determinism-contract suite, in stable order: the
// per-call-site analyzers first, then the interprocedural flow analyzers
// built on the shared call graph.
func All() []*Analyzer {
	return []*Analyzer{
		WallClock,
		GlobalRand,
		MapOrder,
		FloatOrder,
		SealedReport,
		WallClockFlow,
		RandFlow,
		ParCapture,
	}
}

// ByName returns the analyzer with the given name from All, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppression directives (reporting malformed and unused ones under the
// ignorecheck pseudo-analyzer), and returns the surviving diagnostics
// sorted by file, line, column, analyzer and message — the linter's own
// output obeys the byte-identity contract it enforces.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// The interprocedural analyzers share one call graph over the whole
	// package set: built (and its effects propagated) exactly once per
	// run, not per analyzer or per package.
	var graph *CallGraph
	for _, a := range analyzers {
		if a.NeedsGraph {
			graph = BuildCallGraph(pkgs)
			break
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
				sink:     &pkgDiags,
			}
			if a.NeedsGraph {
				pass.Graph = graph
			}
			a.Run(pass)
		}
		diags = append(diags, applyIgnores(pkg, analyzers, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
