package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one determinism check: a name (used in diagnostics and
// //lint:ignore directives), a one-line doc string, and a Run function
// that inspects a type-checked package and reports findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-package view an Analyzer runs over: the parsed files,
// the type-checked package and its type info, and a report sink.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full determinism-contract suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		WallClock,
		GlobalRand,
		MapOrder,
		FloatOrder,
		SealedReport,
	}
}

// ByName returns the analyzer with the given name from All, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppression directives (reporting malformed and unused ones under the
// ignorecheck pseudo-analyzer), and returns the surviving diagnostics
// sorted by file, line, column, analyzer and message — the linter's own
// output obeys the byte-identity contract it enforces.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				analyzer: a,
				sink:     &pkgDiags,
			}
			a.Run(pass)
		}
		diags = append(diags, applyIgnores(pkg, analyzers, pkgDiags)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
