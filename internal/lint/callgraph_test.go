package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadGraph builds the call graph over one testdata package.
func loadGraph(t *testing.T, dir string) *CallGraph {
	t.Helper()
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return BuildCallGraph([]*Package{pkg})
}

// nodeByName finds the unique node with the given display name.
func nodeByName(t *testing.T, g *CallGraph, name string) *Node {
	t.Helper()
	var found *Node
	for _, n := range g.Nodes() {
		if n.Name == name {
			if found != nil {
				t.Fatalf("duplicate node name %q", name)
			}
			found = n
		}
	}
	if found == nil {
		var names []string
		for _, n := range g.Nodes() {
			names = append(names, n.Name)
		}
		t.Fatalf("no node named %q; have: %s", name, strings.Join(names, ", "))
	}
	return found
}

// TestCallGraphCyclesTerminate pins cycle handling: mutually recursive
// functions both inherit the effect, the chain is finite, and a directly
// self-recursive clean function stays clean.
func TestCallGraphCyclesTerminate(t *testing.T) {
	g := loadGraph(t, "callgraph")

	for _, name := range []string{"callgraph.cycleA", "callgraph.cycleB"} {
		n := nodeByName(t, g, name)
		if !n.HasEffect(EffectWallClock) {
			t.Errorf("%s: expected wall-clock effect through the cycle", name)
		}
		chain := n.Chain(EffectWallClock)
		if len(chain) == 0 || len(chain) > 5 {
			t.Errorf("%s: chain not finite/shortest: %v", name, chain)
		}
		if chain[len(chain)-1] != "time.Now" {
			t.Errorf("%s: chain must end at the culprit, got %v", name, chain)
		}
	}
	if n := nodeByName(t, g, "callgraph.self"); n.HasEffect(EffectWallClock) {
		t.Errorf("self-recursive clean function acquired an effect: %v", n.Chain(EffectWallClock))
	}
}

// TestCallGraphEdgeKinds pins that method values, deferred calls and go
// statements all create call edges carrying effects.
func TestCallGraphEdgeKinds(t *testing.T) {
	g := loadGraph(t, "callgraph")
	for _, tc := range []struct {
		name  string
		chain []string
	}{
		{"callgraph.methodValue", []string{"callgraph.methodValue", "callgraph.clock.now", "time.Now"}},
		{"callgraph.deferred", []string{"callgraph.deferred", "callgraph.tick", "time.Now"}},
		{"callgraph.launched", []string{"callgraph.launched", "callgraph.tick", "time.Now"}},
	} {
		n := nodeByName(t, g, tc.name)
		if !n.HasEffect(EffectWallClock) {
			t.Errorf("%s: expected wall-clock effect", tc.name)
			continue
		}
		got := n.Chain(EffectWallClock)
		if strings.Join(got, " → ") != strings.Join(tc.chain, " → ") {
			t.Errorf("%s: chain = %v, want %v", tc.name, got, tc.chain)
		}
	}
}

// TestCallGraphConservativeParams pins the degradation contract for
// unresolvable function-typed parameters: calling the parameter creates no
// edge (callsParam and cleanCaller stay clean — no false chains), while
// *referencing* a tainted function to pass it in is itself a may-call edge
// (taintedPasser is tainted).
func TestCallGraphConservativeParams(t *testing.T) {
	g := loadGraph(t, "callgraph")
	for _, name := range []string{"callgraph.callsParam", "callgraph.cleanCaller"} {
		if n := nodeByName(t, g, name); n.HasEffect(EffectWallClock) {
			t.Errorf("%s: false chain through an unresolved parameter: %v", name, n.Chain(EffectWallClock))
		}
	}
	n := nodeByName(t, g, "callgraph.taintedPasser")
	if !n.HasEffect(EffectWallClock) {
		t.Error("taintedPasser: passing a tainted function is a may-call reference and must taint")
	}
}

// TestEffectChains pins the exact shortest laundering chains the flow
// analyzers attach to their diagnostics — the -why payload.
func TestEffectChains(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "effects"))
	if err != nil {
		t.Fatalf("LoadDir(effects): %v", err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{WallClockFlow, RandFlow})

	wantChains := map[string]string{
		"wallclockflow@effects.Entry":            "effects.Entry → effects.dispatch → effects.logTick → time.Now",
		"randflow@effects.EntryRand":             "effects.EntryRand → effects.pick → rand.Intn",
		"wallclockflow@effects.EntryMethodValue": "effects.EntryMethodValue → effects.ticker.now → time.Now",
	}
	got := map[string]string{}
	for _, d := range diags {
		if len(d.Chain) == 0 {
			t.Errorf("flow diagnostic without a chain: %s", d)
			continue
		}
		got[d.Analyzer+"@"+d.Chain[0]] = strings.Join(d.Chain, " → ")
	}
	for key, want := range wantChains {
		if got[key] != want {
			t.Errorf("%s: chain = %q, want %q", key, got[key], want)
		}
	}
	if len(diags) != len(wantChains) {
		t.Errorf("want exactly %d flow diagnostics, got %d:\n%s", len(wantChains), len(diags), renderDiags(diags))
	}
}

// TestParCaptureChain pins the interprocedural half of parcapture: the
// laundering job closure's diagnostic carries the chain to the
// package-level write.
func TestParCaptureChain(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "parcapture"))
	if err != nil {
		t.Fatalf("LoadDir(parcapture): %v", err)
	}
	want := "parcapture.badLaunder.func1 → parcapture.bump → package-level var hits"
	for _, d := range Run([]*Package{pkg}, []*Analyzer{ParCapture}) {
		if len(d.Chain) > 0 {
			if got := strings.Join(d.Chain, " → "); got != want {
				t.Errorf("laundering chain = %q, want %q", got, want)
			}
			return
		}
	}
	t.Errorf("no parcapture diagnostic carried a chain")
}

// TestCallGraphDeterministic pins that two independent builds over the
// same package yield identical node orders, names and chains — the graph
// itself obeys the byte-identity contract it enforces.
func TestCallGraphDeterministic(t *testing.T) {
	render := func(g *CallGraph) string {
		var sb strings.Builder
		for _, n := range g.Nodes() {
			sb.WriteString(n.Name)
			for e := Effect(0); e < numEffects; e++ {
				if n.HasEffect(e) {
					sb.WriteString(" [" + e.String() + ": " + strings.Join(n.Chain(e), "→") + "]")
				}
			}
			sb.WriteString("\n")
		}
		return sb.String()
	}
	a := render(loadGraph(t, "callgraph"))
	b := render(loadGraph(t, "callgraph"))
	if a != b {
		t.Fatalf("call graph not deterministic:\n--- build 1\n%s\n--- build 2\n%s", a, b)
	}
}

// TestEntrypointRootsCoverRealTree pins the hardcoded entrypoint list
// against the real repository: every named root must exist and be marked,
// so a rename can't silently drop the flow analyzers' coverage.
func TestEntrypointRootsCoverRealTree(t *testing.T) {
	if testing.Short() {
		// The full tree is loaded by TestLintCleanTree in -short mode
		// already; keep this one cheap to skip double work when the shared
		// loader has not warmed up.
		_ = 0
	}
	l := sharedLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	g := BuildCallGraph(pkgs)
	roots := map[string]bool{}
	for _, n := range g.Roots() {
		roots[n.Name] = true
	}
	for _, want := range []string{
		"serve.Serve",
		"serve.ServeCluster",
		"harness.Env.RunExperiment",
		"core.Allocator.Alloc",
		"core.Allocator.Free",
		"reqtrace.Trace.Replay",
		"servegen.Mix.Generate",
	} {
		if !roots[want] {
			t.Errorf("entrypoint %s missing from call-graph roots; got %v", want, roots)
		}
	}
}
