package lint

import (
	"go/ast"
	"strings"
)

// The flow analyzers make the determinism contract *transitive*: the
// per-call-site analyzers (wallclock, globalrand) catch a direct time.Now,
// but a helper that wraps it launders the violation past them. Here every
// function reachable from a simulation entrypoint is checked against the
// propagated effect sets from the call graph, and a violation's diagnostic
// carries the shortest call chain to the culprit (rendered by
// gmlake-lint's -why flag and in its -json output).

// rootSpec names one hardcoded determinism entrypoint by package-path
// suffix, receiver base type ("" for plain functions) and function name.
type rootSpec struct {
	pkgSuffix string
	recv      string
	name      string
}

// entrypointRoots are the simulation entrypoints every BENCH table flows
// through. Anything reachable from these must stay byte-identical at any
// seed × parallelism, so their transitive effect sets must be clean.
// Additional roots can be declared in source with a //lint:entrypoint
// directive in the function's doc comment.
var entrypointRoots = []rootSpec{
	{"internal/serve", "", "Serve"},
	{"internal/serve", "", "ServeCluster"},
	{"internal/harness", "Env", "RunExperiment"},
	{"internal/core", "Allocator", "Alloc"},
	{"internal/core", "Allocator", "Free"},
	{"internal/reqtrace", "Trace", "Replay"},
	{"internal/servegen", "Mix", "Generate"},
}

// entrypointDirective marks a function as a determinism root from source.
const entrypointDirective = "//lint:entrypoint"

// isEntrypoint reports whether a declaration is a determinism root, either
// via the hardcoded list or a //lint:entrypoint doc-comment directive.
func isEntrypoint(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if text, ok := strings.CutPrefix(c.Text, entrypointDirective); ok && (text == "" || text[0] == ' ' || text[0] == '\t') {
				return true
			}
		}
	}
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv = recvTypeName(fd.Recv.List[0].Type)
	}
	for _, r := range entrypointRoots {
		if r.name == fd.Name.Name && r.recv == recv && pkgPathMatches(pkg.Path, r.pkgSuffix) {
			return true
		}
	}
	return false
}

// flowRun reports every entrypoint declared in the pass's package whose
// propagated effect set includes the forbidden leaf. The diagnostic is
// anchored at the entrypoint's declaration (suppress with //lint:ignore on
// or directly above the func line) and carries the shortest call chain.
func flowRun(p *Pass, effect Effect, remedy string) {
	if p.Graph == nil {
		return
	}
	for _, n := range p.Graph.Roots() {
		if n.Pkg.Types != p.Pkg || !n.HasEffect(effect) {
			continue
		}
		chain := n.Chain(effect)
		culprit := chain[len(chain)-1]
		p.ReportChainf(n.Pos, chain, "%s is a determinism entrypoint but transitively reaches %s (%d calls deep); %s", n.Name, culprit, len(chain)-2, remedy)
	}
}

// WallClockFlow is the interprocedural wallclock analyzer: no function
// reachable from a simulation entrypoint may read the host wall clock,
// however many helpers deep the read hides.
var WallClockFlow = &Analyzer{
	Name:       "wallclockflow",
	Doc:        "no entrypoint-reachable function may transitively reach time.Now/Sleep/timers; sim.Clock only",
	NeedsGraph: true,
	Run: func(p *Pass) {
		flowRun(p, EffectWallClock, "simulated time must flow from sim.Clock (rerun with -why for the call chain)")
	},
}

// RandFlow is the interprocedural globalrand analyzer: no function
// reachable from a simulation entrypoint may draw from the process-global
// auto-seeded math/rand source, directly or through helpers.
var RandFlow = &Analyzer{
	Name:       "randflow",
	Doc:        "no entrypoint-reachable function may transitively draw from global math/rand; sim.RNG or explicit seeds only",
	NeedsGraph: true,
	Run: func(p *Pass) {
		flowRun(p, EffectGlobalRand, "randomness must flow from sim.RNG or an explicitly seeded source (rerun with -why for the call chain)")
	},
}
