package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/container"
)

// DispatchPolicy names a cluster-level dispatch policy: how the admission
// queue assigns an arriving request to a replica.
type DispatchPolicy string

const (
	// DispatchRoundRobin cycles arrivals over the active replicas in order
	// — oblivious to load, the baseline every smarter policy is measured
	// against.
	DispatchRoundRobin DispatchPolicy = "round-robin"
	// DispatchJSQ joins the shortest queue: the replica with the fewest
	// unfinished requests (queued plus decoding) per unit of capacity,
	// ties to the lowest replica index.
	DispatchJSQ DispatchPolicy = "jsq"
	// DispatchLeastKV picks the replica with the least outstanding KV
	// demand per unit of capacity — the sum of total tokens (prompt+output)
	// of its unfinished requests, a token-weighted shortest queue that sees
	// the difference between ten chat turns and ten long batch jobs.
	DispatchLeastKV DispatchPolicy = "least-kv"
	// DispatchSessionAffinity routes a request whose session prefix is
	// resident on an active replica to that replica — lowest index first,
	// though a session pins to one home so at most one replica holds its
	// prefix in practice — and everything else (first turns, invalidated
	// prefixes, homes that are down or draining) through the
	// ClusterConfig.AffinityBase policy, jsq when unset. Pair it with
	// ServerConfig.PrefixReuse: without residency every probe misses and
	// the policy degenerates to exactly its base.
	DispatchSessionAffinity DispatchPolicy = "session-affinity"
)

// DispatchPolicies lists the accepted policies in presentation order.
func DispatchPolicies() []DispatchPolicy {
	return []DispatchPolicy{DispatchRoundRobin, DispatchJSQ, DispatchLeastKV, DispatchSessionAffinity}
}

// ParseDispatch resolves a policy name ("" = round-robin). Names are
// case-insensitive and surrounding whitespace is ignored, so "JSQ" from a
// CLI flag or " least-kv " from a hand-edited conf file resolve like their
// canonical spellings. A near-miss ("sesion-affinity", "jqs") earns a
// did-you-mean suggestion, like conf's unknown-key diagnostics.
func ParseDispatch(name string) (DispatchPolicy, error) {
	norm := strings.ToLower(strings.TrimSpace(name))
	switch p := DispatchPolicy(norm); p {
	case "":
		return DispatchRoundRobin, nil
	case DispatchRoundRobin, DispatchJSQ, DispatchLeastKV, DispatchSessionAffinity:
		return p, nil
	}
	known := DispatchPolicies()
	names := make([]string, len(known))
	for i, p := range known {
		names[i] = string(p)
	}
	have := strings.Join(names, ", ")
	if guess := nearestPolicy(norm, names); guess != "" {
		return "", fmt.Errorf("serve: unknown dispatch policy %q (did you mean %q? have %s)", name, guess, have)
	}
	return "", fmt.Errorf("serve: unknown dispatch policy %q (have %s)", name, have)
}

// nearestPolicy returns the known policy name closest to name in edit
// distance, within a conservative budget — max(2, len/3), the same rule
// conf applies to unknown keys — or "" when nothing is plausibly close
// (garbage input should not earn a confident suggestion).
func nearestPolicy(name string, known []string) string {
	limit := len(name) / 3
	if limit < 2 {
		limit = 2
	}
	best, bestDist := "", limit+1
	for _, k := range known {
		if d := editDistance(name, k); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, two-row DP.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Autoscaler defaults (see ClusterConfig).
const (
	DefaultScaleUpDepth   = 4
	DefaultScaleDownDepth = 1
	DefaultScaleCooldown  = 250 * time.Millisecond
)

// ReplicaOverride customizes one replica of a heterogeneous cluster. The
// zero value inherits everything from the cluster-wide configuration.
type ReplicaOverride struct {
	// Capacity is the replica's relative serving capacity (0 = 1). The
	// load-aware dispatch policies (jsq, least-kv) divide the replica's
	// observed load by it, so a Capacity-2 replica legitimately absorbs
	// twice the demand of a Capacity-1 peer instead of looking "twice as
	// loaded" at the same queue depth. It is a dispatch weight only; the
	// caller sizes the replica's actual pool and batch to match (MaxBatch
	// here, pool capacity in the cache-manager factory).
	Capacity float64
	// MaxBatch overrides ServerConfig.MaxBatch for this replica (0 =
	// inherit the cluster-wide value).
	MaxBatch int
	// Aging overrides ServerConfig.Aging for this replica (0 = inherit).
	Aging time.Duration
}

// ClusterConfig tunes a multi-replica serving cluster.
type ClusterConfig struct {
	// Replicas is the number of replica servers. With autoscaling off
	// (MaxReplicas == 0) it is the fixed fleet size and must be >= 1. With
	// autoscaling on it is the initial fleet size and may be left 0 to
	// start at MinReplicas.
	Replicas int
	// Dispatch assigns arrivals to replicas ("" = round-robin).
	Dispatch DispatchPolicy
	// AffinityBase is the fallback policy session-affinity dispatch uses
	// for requests with no resident prefix anywhere ("" = jsq). It is only
	// accepted alongside DispatchSessionAffinity and cannot itself be
	// session-affinity.
	AffinityBase DispatchPolicy
	// Server is the per-replica continuous-batching configuration,
	// including the priority-aging rate (Server.Aging).
	Server ServerConfig

	// Overrides customizes replica i via Overrides[i]; replicas beyond the
	// slice (including autoscaled spawns past its end) use the cluster-wide
	// defaults. It must not be longer than the maximum fleet size.
	Overrides []ReplicaOverride

	// MaxReplicas > 0 enables queue-depth autoscaling: the scheduler
	// watches the cluster backlog in virtual time and keeps between
	// MinReplicas and MaxReplicas replicas active. MinReplicas 0 means 1.
	// The scaler spawns a replica when the queued backlog exceeds
	// ScaleUpDepth per active replica, and starts draining one when the
	// backlog would leave at most ScaleDownDepth per remaining replica.
	// A draining replica accepts no new dispatches and leaves the fleet
	// only after it has fully emptied; scale-ups reuse draining or drained
	// replicas before growing the fleet. Consecutive scale decisions are
	// at least ScaleCooldown of virtual time apart. All decisions happen
	// at event boundaries of the co-simulation, so elastic runs are as
	// deterministic as static ones.
	MinReplicas int
	MaxReplicas int
	// ScaleUpDepth is the queued-requests-per-active-replica backlog that
	// triggers a spawn (0 = DefaultScaleUpDepth).
	ScaleUpDepth int
	// ScaleDownDepth is the backlog per remaining replica below which one
	// replica starts draining (0 = DefaultScaleDownDepth; use a negative
	// value to effectively never scale down).
	ScaleDownDepth int
	// ScaleCooldown is the minimum virtual time between scale decisions
	// (0 = DefaultScaleCooldown).
	ScaleCooldown time.Duration

	// Steal enables work-stealing re-dispatch: when a replica is starving
	// (nothing decoding, nothing admissible) while another holds queued
	// requests beyond what it can admit, the scheduler re-dispatches the
	// backlogged replica's lowest-ranked queued request — never a running
	// one — to the idle replica. Dispatch stops being decide-once at
	// arrival. Stealing works on static and elastic fleets alike.
	Steal bool

	// Faults injects deterministic replica crash/restart events (the zero
	// value injects none and leaves every fault-handling path inert). A
	// crashed replica loses its KV cache and in-flight sequences, leaves
	// dispatch, and rejoins empty at its restart event. See FaultConfig.
	Faults FaultConfig
	// Recovery is the crash-retry policy for in-flight requests lost to a
	// crash: bounded retries with exponential backoff and a per-class
	// retry budget. The zero value abandons crashed in-flight work (it is
	// counted in ClusterReport.Lost); queued requests on a crashed replica
	// are always re-dispatched free of charge. See RecoveryConfig.
	Recovery RecoveryConfig
}

// ClusterReport summarizes one cluster serving run.
type ClusterReport struct {
	// Report is the cluster-level view. Counters (served, steps, admit
	// failures, blocked steps, preemptions) are summed over replicas,
	// MeanWaste and MeanBatch are step-weighted means, Duration is the
	// longest replica makespan, and PeakUsed/PeakLogical sum the per-
	// replica peaks (an upper bound on the cluster-wide footprint, since
	// replicas peak at different virtual times). The latency percentiles
	// and per-class rows are recomputed from the union of the replicas'
	// raw per-request samples — merging percentiles by averaging them
	// would be statistically meaningless.
	Report
	// Replicas are the per-replica reports, indexed by replica. Every
	// replica that ever joined the fleet appears, drained ones included.
	// A request that was stolen counts in the report of the replica that
	// finally served it.
	Replicas []Report
	// Assigned[i] is how many requests the dispatcher sent to replica i
	// at arrival. With stealing on, a request may be re-dispatched later;
	// Assigned keeps the original decision, Stolen records the moves.
	Assigned []int
	// Stolen[i] is how many queued requests replica i stole from a
	// backlogged peer (all zero unless ClusterConfig.Steal).
	Stolen []int

	// PeakReplicas is the largest number of simultaneously active
	// replicas; Spawns and Drains count scale-up decisions (including
	// drain cancellations and re-activations) and completed drains.
	// Without autoscaling PeakReplicas is the static fleet size and
	// Spawns/Drains are zero.
	PeakReplicas int
	Spawns       int
	Drains       int
	// ReplicaSeconds is the virtual time integral of the active fleet:
	// the sum over replicas of their spawn-to-drain (or spawn-to-end)
	// spans — the fleet cost an autoscaler exists to shrink.
	ReplicaSeconds time.Duration

	// Retries counts granted re-dispatches of requests that were decoding
	// on a replica when it crashed; Lost counts the ones abandoned because
	// the retry cap or their class's retry budget was exhausted (queued
	// requests displaced by a crash are re-dispatched without consuming
	// either, and appear in neither counter — nor in Assigned, which only
	// records arrival-time dispatch decisions).
	Retries int
	Lost    int
	// AffinityRouted counts dispatch decisions session-affinity resolved
	// by prefix residency; the policy's remaining decisions fell back to
	// AffinityBase. Zero under every other dispatch policy.
	AffinityRouted int
	// Availability is the capacity-weighted fraction of provisioned
	// replica time the fleet was actually up:
	// 1 − Σᵢ capᵢ·downᵢ / Σᵢ capᵢ·spanᵢ, the down and busy spans both on
	// the virtual clock. Exactly 1 on a zero-fault run.
	Availability float64
}

// replicaState tracks one replica's place in the elastic fleet lifecycle.
type replicaState int

const (
	replicaActive   replicaState = iota // receives dispatches
	replicaDraining                     // serving out its backlog, no new work
	replicaStopped                      // drained and out of the fleet
	replicaDown                         // crashed: empty, out of dispatch, awaiting restart
)

// clusterReplica is one replica server plus the scheduler-side bookkeeping
// the dispatch policies and the autoscaler read.
type clusterReplica struct {
	srv      *server
	capacity float64
	state    replicaState
	// spawnAt opens the current busy span on the cluster clock; busy
	// accumulates closed spans (a replica can stop and be re-activated).
	spawnAt time.Duration
	busy    time.Duration
	// assigned counts arrival dispatches, stolen counts re-dispatches won,
	// dispatchedTokens the outstanding-KV numerator for least-kv dispatch.
	assigned         int
	stolen           int
	dispatchedTokens int64

	// downSince opens the current outage on the cluster clock (valid while
	// state == replicaDown); downTotal accumulates closed outages — the
	// numerator of the availability metric.
	downSince time.Duration
	downTotal time.Duration

	// eventSeq versions the replica's entry in the scheduler's event heap:
	// every touch bumps it, so events pushed earlier become stale and are
	// discarded on pop instead of being searched for and removed (lazy
	// invalidation).
	eventSeq uint64
}

// repEvent is one replica's pending next-event entry in the global heap.
// The ordering (time, then replica index) reproduces the old scan's
// tie-break: among simultaneous events the lowest-index replica runs first.
type repEvent struct {
	at  time.Duration
	ri  int
	seq uint64
}

// clusterSched is the cluster scheduler: the admission queue, the fleet and
// the elastic machinery, advanced one event at a time.
type clusterSched struct {
	cfg      ClusterConfig
	dispatch DispatchPolicy
	// base is session-affinity's fallback policy (jsq unless
	// cfg.AffinityBase overrides it); unused under other dispatches.
	base           DispatchPolicy
	affinityRouted int
	newMgr         func(int) CacheManager
	reqs           []Request
	queue          []int // input indexes in arrival order
	qi             int
	fleet          []*clusterReplica
	rr             int // round-robin cursor over active replicas

	// events is the single global event spine: one (next-event time,
	// replica) entry per replica with work, min-ordered by (time, index).
	// Advancing the co-simulation is an O(log fleet) pop instead of the old
	// O(fleet) scan of every replica's clock per event — on large fleets
	// the scan was exactly the lock-step polling the event-driven design
	// exists to avoid. Entries are invalidated lazily via eventSeq.
	events *container.Heap[repEvent]

	elastic      bool
	minReplicas  int
	upDepth      int
	downDepth    int
	cooldown     time.Duration
	lastScale    time.Duration
	scaled       bool          // a scale decision happened (gates cooldown)
	now          time.Duration // monotonic cluster event clock
	spawns       int
	drains       int
	peakReplicas int

	// Fault-injection and recovery state. faults is nil on a zero-fault
	// run, which keeps every fault path below unreachable and the schedule
	// byte-identical to the pre-fault scheduler.
	faults     *faultSource
	retryDelay time.Duration
	backoff    float64
	// pool holds crash-displaced requests awaiting re-dispatch (and
	// arrivals that landed while every replica was down), ordered by
	// (eligible-at, insertion order).
	pool    *container.Heap[redispatch]
	poolSeq uint64
	// attempts counts granted retries per lifetime record; classRetries
	// charges them against the per-class retry budget.
	attempts     map[*track]int
	classRetries map[string]int
	retries      int
	lost         int
}

// redispatch is one request waiting in the scheduler's re-dispatch pool:
// its lifetime record, the FIFO ticket it keeps when it was merely queued
// (hasTicket; a retried in-flight request instead draws a fresh ticket from
// its destination, like a preemption requeue), and the earliest cluster
// instant it may re-enter dispatch — the displacement instant itself for
// queued requests and parked arrivals, crash time plus exponential backoff
// for granted retries.
type redispatch struct {
	rec       *track
	ticket    int64
	hasTicket bool
	at        time.Duration
	seq       uint64 // FIFO tie-break among equal eligibility instants
}

// resolveOverride returns replica i's override (zero value past the slice).
func (cfg ClusterConfig) resolveOverride(i int) ReplicaOverride {
	if i < len(cfg.Overrides) {
		return cfg.Overrides[i]
	}
	return ReplicaOverride{}
}

// serverConfig is replica i's effective per-server configuration.
func (cfg ClusterConfig) serverConfig(i int) ServerConfig {
	sc := cfg.Server
	o := cfg.resolveOverride(i)
	if o.MaxBatch > 0 {
		sc.MaxBatch = o.MaxBatch
	}
	if o.Aging > 0 {
		sc.Aging = o.Aging
	}
	return sc
}

// Validate checks the full cluster configuration without running anything.
// ServeCluster performs the same checks; callers that assemble a
// configuration from user input (flags, conf strings) can call Validate
// first to report configuration mistakes as such, rather than as serving
// failures.
func (cfg ClusterConfig) Validate() error {
	_, _, err := cfg.validate()
	return err
}

// validate checks the whole configuration up front — including every
// replica configuration the run could ever instantiate — so mid-run spawns
// cannot fail.
func (cfg ClusterConfig) validate() (initial, fleetMax int, err error) {
	if cfg.MinReplicas < 0 || cfg.MaxReplicas < 0 {
		return 0, 0, fmt.Errorf("serve: negative replica bounds [%d, %d]", cfg.MinReplicas, cfg.MaxReplicas)
	}
	if cfg.ScaleCooldown < 0 {
		return 0, 0, fmt.Errorf("serve: negative scale cooldown %v", cfg.ScaleCooldown)
	}
	if cfg.MaxReplicas > 0 {
		min := cfg.MinReplicas
		if min == 0 {
			min = 1
		}
		if min > cfg.MaxReplicas {
			return 0, 0, fmt.Errorf("serve: min replicas %d above max %d", min, cfg.MaxReplicas)
		}
		initial, fleetMax = min, cfg.MaxReplicas
		if cfg.Replicas != 0 {
			if cfg.Replicas < min || cfg.Replicas > cfg.MaxReplicas {
				return 0, 0, fmt.Errorf("serve: initial replicas %d outside [%d, %d]",
					cfg.Replicas, min, cfg.MaxReplicas)
			}
			initial = cfg.Replicas
		}
	} else {
		if cfg.MinReplicas > 0 || cfg.ScaleUpDepth > 0 || cfg.ScaleDownDepth != 0 || cfg.ScaleCooldown > 0 {
			return 0, 0, fmt.Errorf("serve: autoscaling knobs need MaxReplicas > 0")
		}
		if cfg.Replicas <= 0 {
			return 0, 0, fmt.Errorf("serve: cluster needs >= 1 replica, got %d", cfg.Replicas)
		}
		initial, fleetMax = cfg.Replicas, cfg.Replicas
	}
	if len(cfg.Overrides) > fleetMax {
		return 0, 0, fmt.Errorf("serve: %d replica overrides for a fleet of at most %d",
			len(cfg.Overrides), fleetMax)
	}
	// Fleet-uniform server knobs, checked here so Validate is a complete
	// pre-flight (newEmptyServer re-checks them at each spawn).
	if cfg.Server.Timeout < 0 {
		return 0, 0, fmt.Errorf("serve: negative request timeout %v", cfg.Server.Timeout)
	}
	if cfg.Server.Shed && cfg.Server.Timeout == 0 {
		return 0, 0, fmt.Errorf("serve: shed needs a timeout to shed against")
	}
	dispatch, err := ParseDispatch(string(cfg.Dispatch))
	if err != nil {
		return 0, 0, err
	}
	if cfg.AffinityBase != "" && dispatch != DispatchSessionAffinity {
		return 0, 0, fmt.Errorf("serve: affinity base %q needs session-affinity dispatch, not %q", cfg.AffinityBase, dispatch)
	}
	if dispatch == DispatchSessionAffinity {
		base, err := ParseDispatch(string(cfg.AffinityBase))
		if err != nil {
			return 0, 0, err
		}
		if base == DispatchSessionAffinity {
			return 0, 0, fmt.Errorf("serve: affinity base cannot itself be session-affinity")
		}
	}
	if err := cfg.Faults.validate(fleetMax); err != nil {
		return 0, 0, err
	}
	if err := cfg.Recovery.validate(); err != nil {
		return 0, 0, err
	}
	for i := 0; i < fleetMax; i++ {
		o := cfg.resolveOverride(i)
		if o.Capacity < 0 || math.IsNaN(o.Capacity) || math.IsInf(o.Capacity, 0) {
			return 0, 0, fmt.Errorf("serve: replica %d capacity %v", i, o.Capacity)
		}
		if o.MaxBatch < 0 || o.Aging < 0 {
			return 0, 0, fmt.Errorf("serve: replica %d override %+v", i, o)
		}
		sc := cfg.serverConfig(i)
		if sc.MaxBatch <= 0 {
			return 0, 0, fmt.Errorf("serve: replica %d max batch %d", i, sc.MaxBatch)
		}
		if sc.StepTime < 0 || sc.PrefillTokenTime < 0 || sc.Aging < 0 {
			return 0, 0, fmt.Errorf("serve: replica %d negative durations in config %+v", i, sc)
		}
	}
	return initial, fleetMax, nil
}

// ServeCluster runs the requests on a multi-replica serving cluster: a
// cluster-level admission queue releases each request at its arrival time to
// one replica, chosen by the dispatch policy from the replicas' states at
// that instant, and every replica runs the same SLO-aware continuous-
// batching loop as Serve on its own cache manager and virtual clock. newMgr
// builds replica i's cache manager — each replica must get its own manager
// (and, for pool-backed managers, its own allocator and device) — and is
// also invoked mid-run when the autoscaler grows the fleet.
//
// The fleet can be heterogeneous (ClusterConfig.Overrides: per-replica
// capacity weight, batch limit and aging), elastic (MinReplicas/MaxReplicas
// queue-depth autoscaling with drain-on-empty), and work-stealing
// (ClusterConfig.Steal re-dispatches queued — never running — requests from
// a backlogged replica to a starving one).
//
// The co-simulation is event-driven and fully deterministic: the scheduler
// always advances the earliest event (an arrival, or the replica with the
// smallest next-event time, ties to the lowest replica index), and scaling
// and stealing decisions happen only at those event boundaries, so the same
// input produces a byte-identical ClusterReport on every run. With one
// replica (static, stealing off — or MinReplicas == MaxReplicas == 1) the
// scheduler degenerates to exactly Serve's loop — dispatched requests carry
// their input position as the FIFO ticket, replaying Serve's up-front
// numbering whatever order the input arrived in — and the output is
// identical to Serve's report.
//
// On a replica error (a request that fits nowhere, a stuck decode) the
// partial reports of every replica are sealed and returned with the error;
// requests still waiting in the cluster queue appear in the merged class
// roster with nothing served, exactly as Serve reports requests it never
// started.
func ServeCluster(reqs []Request, newMgr func(replica int) CacheManager, cfg ClusterConfig) (ClusterReport, error) {
	if newMgr == nil {
		return ClusterReport{}, fmt.Errorf("serve: cluster needs a cache-manager factory")
	}
	c, err := newClusterSched(reqs, newMgr, cfg)
	if err != nil {
		return ClusterReport{}, err
	}
	return c.run()
}

func newClusterSched(reqs []Request, newMgr func(int) CacheManager, cfg ClusterConfig) (*clusterSched, error) {
	initial, fleetMax, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	dispatch, err := ParseDispatch(string(cfg.Dispatch))
	if err != nil {
		return nil, err
	}
	if cfg.Faults.Enabled() && cfg.Server.OnComplete != nil {
		// Exactly-once completion guarantee under faults: the capture hook
		// fires on the final completion only, even if a request is ever
		// retried or re-dispatched along the way, deduplicated by request
		// ID. Zero-fault runs keep the caller's hook untouched.
		inner := cfg.Server.OnComplete
		fired := map[int]bool{}
		cfg.Server.OnComplete = func(r Request) {
			if fired[r.ID] {
				return
			}
			fired[r.ID] = true
			inner(r)
		}
	}

	base := DispatchJSQ
	if dispatch == DispatchSessionAffinity && cfg.AffinityBase != "" {
		// Validated above; ParseDispatch only normalizes spelling here.
		base, _ = ParseDispatch(string(cfg.AffinityBase))
	}

	c := &clusterSched{
		cfg:         cfg,
		dispatch:    dispatch,
		base:        base,
		newMgr:      newMgr,
		reqs:        reqs,
		elastic:     cfg.MaxReplicas > 0,
		minReplicas: cfg.MinReplicas,
		upDepth:     cfg.ScaleUpDepth,
		downDepth:   cfg.ScaleDownDepth,
		cooldown:    cfg.ScaleCooldown,
		events: container.NewHeap[repEvent](func(a, b repEvent) bool {
			if a.at != b.at {
				return a.at < b.at
			}
			return a.ri < b.ri
		}),
	}
	if c.minReplicas == 0 {
		c.minReplicas = 1
	}
	if c.upDepth == 0 {
		c.upDepth = DefaultScaleUpDepth
	}
	if c.downDepth == 0 {
		c.downDepth = DefaultScaleDownDepth
	}
	if c.cooldown == 0 {
		c.cooldown = DefaultScaleCooldown
	}
	if cfg.Faults.Enabled() {
		c.faults = newFaultSource(cfg.Faults, fleetMax)
		c.pool = container.NewHeap[redispatch](func(a, b redispatch) bool {
			if a.at != b.at {
				return a.at < b.at
			}
			return a.seq < b.seq
		})
		c.attempts = map[*track]int{}
		c.classRetries = map[string]int{}
		c.retryDelay = cfg.Recovery.RetryDelay
		if c.retryDelay == 0 {
			c.retryDelay = DefaultRetryDelay
		}
		c.backoff = cfg.Recovery.Backoff
		if c.backoff == 0 {
			c.backoff = DefaultBackoff
		}
	}

	// The cluster admission queue: input indexes in arrival-time order,
	// input order preserved among ties. Dispatch releases requests in this
	// order but tickets them by input index, matching Serve's numbering.
	c.queue = make([]int, len(reqs))
	for i := range c.queue {
		c.queue[i] = i
	}
	sort.SliceStable(c.queue, func(i, j int) bool {
		return reqs[c.queue[i]].ArrivalAt < reqs[c.queue[j]].ArrivalAt
	})

	for i := 0; i < initial; i++ {
		if err := c.spawn(); err != nil {
			return nil, err
		}
	}
	c.peakReplicas = initial
	return c, nil
}

// spawn appends a fresh replica to the fleet with the cluster clock as its
// busy-span start. Configurations were validated up front, so construction
// cannot fail mid-run in practice.
func (c *clusterSched) spawn() error {
	i := len(c.fleet)
	s, err := newEmptyServer(c.newMgr(i), c.cfg.serverConfig(i))
	if err != nil {
		return err
	}
	// Reserve the global ticket range [0, len(reqs)) for dispatched
	// requests; requeued preemptions draw above it, exactly as Serve's
	// up-front enqueue would have numbered them.
	s.nextTkt = int64(len(c.reqs))
	w := c.cfg.resolveOverride(i).Capacity
	if w == 0 {
		w = 1
	}
	c.fleet = append(c.fleet, &clusterReplica{srv: s, capacity: w, spawnAt: c.now})
	return nil
}

// advance moves the monotonic cluster clock to the event being processed.
func (c *clusterSched) advance(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// activeCount is the number of dispatchable replicas.
func (c *clusterSched) activeCount() int {
	n := 0
	for _, r := range c.fleet {
		if r.state == replicaActive {
			n++
		}
	}
	return n
}

// autoscale is the queue-depth scaler, evaluated at every event boundary.
// It first retires draining replicas that have emptied, then — outside the
// cooldown — takes at most one scale decision against the queued backlog
// per active replica.
func (c *clusterSched) autoscale() {
	if !c.elastic {
		return
	}
	c.retireDrained()
	if c.scaled && c.now-c.lastScale < c.cooldown {
		return
	}
	active, backlog := 0, c.poolLen()
	for _, r := range c.fleet {
		if r.state == replicaStopped {
			continue
		}
		backlog += r.srv.pendingLen()
		if r.state == replicaActive {
			active++
		}
	}
	if backlog > c.upDepth*active && active < c.cfg.MaxReplicas {
		c.scaleUp()
		c.spawns++
		if a := c.activeCount(); a > c.peakReplicas {
			c.peakReplicas = a
		}
		c.scaled, c.lastScale = true, c.now
		return
	}
	if active > c.minReplicas && backlog <= c.downDepth*(active-1) {
		// Drain the highest-index active replica: the fleet shrinks from
		// the top, mirroring how it grew.
		for i := len(c.fleet) - 1; i >= 0; i-- {
			if c.fleet[i].state == replicaActive {
				c.fleet[i].state = replicaDraining
				break
			}
		}
		c.scaled, c.lastScale = true, c.now
	}
}

// retireDrained completes drain-on-idle: a draining replica leaves the
// fleet only once it has neither queued nor running work. Its busy span
// closes at its own clock — the virtual instant it finished its last
// request. Called at every autoscale evaluation and once more at seal, so
// a drain that completes on the run's final event still counts.
func (c *clusterSched) retireDrained() {
	for _, r := range c.fleet {
		if r.state == replicaDraining && r.srv.pendingLen() == 0 && len(r.srv.running) == 0 {
			r.state = replicaStopped
			end := r.srv.now
			if end < r.spawnAt {
				end = r.spawnAt
			}
			r.busy += end - r.spawnAt
			c.drains++
		}
	}
}

// scaleUp adds one active replica, cheapest first: cancel a drain in
// progress, re-activate a drained replica, and only then grow the fleet.
func (c *clusterSched) scaleUp() {
	for _, r := range c.fleet {
		if r.state == replicaDraining {
			r.state = replicaActive // busy span never closed: it continues
			return
		}
	}
	for _, r := range c.fleet {
		if r.state == replicaStopped {
			r.state = replicaActive
			r.spawnAt = c.now // a new busy span opens
			return
		}
	}
	if err := c.spawn(); err != nil {
		// Unreachable: every config in [0, fleetMax) was validated.
		panic("serve: mid-run spawn failed: " + err.Error())
	}
}

// pick chooses the replica for an arriving request among the active ones.
// Load-aware policies normalize by the replica's capacity, so a Capacity-2
// replica absorbs twice the demand before looking equally loaded. Under
// session-affinity a request whose session prefix is resident on an active
// replica goes home to it regardless of load — that is the TTFT-versus-
// imbalance trade the policy exists to measure — and every other request
// falls back to the base policy.
func (c *clusterSched) pick(req Request) int {
	policy := c.dispatch
	if policy == DispatchSessionAffinity {
		if req.SessionID != "" {
			for i, r := range c.fleet {
				if r.state == replicaActive && r.srv.hasResident(req.SessionID) {
					c.affinityRouted++
					return i
				}
			}
		}
		policy = c.base
	}
	switch policy {
	case DispatchJSQ:
		best, bestLoad := -1, 0.0
		for i, r := range c.fleet {
			if r.state != replicaActive {
				continue
			}
			l := float64(r.srv.pendingLen()+len(r.srv.running)) / r.capacity
			if best == -1 || l < bestLoad {
				best, bestLoad = i, l
			}
		}
		return best
	case DispatchLeastKV:
		best, bestLoad := -1, 0.0
		for i, r := range c.fleet {
			if r.state != replicaActive {
				continue
			}
			l := float64(r.dispatchedTokens-r.srv.doneTokens) / r.capacity
			if best == -1 || l < bestLoad {
				best, bestLoad = i, l
			}
		}
		return best
	default: // round-robin cycles the active replicas in index order
		act := make([]int, 0, len(c.fleet))
		for i, r := range c.fleet {
			if r.state == replicaActive {
				act = append(act, i)
			}
		}
		p := act[c.rr%len(act)]
		c.rr++
		return p
	}
}

// trySteal performs at most one work-stealing re-dispatch: the lowest-index
// starving active replica takes the lowest-ranked queued request from the
// peer with the largest un-admissible backlog. Only queued requests move —
// a decoding sequence is never migrated — and the stolen request keeps its
// FIFO ticket, so the move is exactly a late dispatch decision.
func (c *clusterSched) trySteal() bool {
	thief := -1
	for i, r := range c.fleet {
		if r.state == replicaActive && len(r.srv.running) == 0 && r.srv.ready.Len() == 0 {
			thief = i
			break
		}
	}
	if thief == -1 {
		return false
	}
	victim, excess := -1, 0
	for i, r := range c.fleet {
		if i == thief || r.state == replicaStopped {
			continue
		}
		if e := r.srv.stealableExcess(); e > excess {
			victim, excess = i, e
		}
	}
	if victim == -1 {
		return false
	}
	// On a heterogeneous fleet the thief's pool may be smaller than the
	// victim's: a request that cannot fit the idle thief even alone must
	// stay queued where it is (stealing it would abort the run as a hard
	// admission failure). A trial admit answers exactly that question; the
	// reservation is released immediately either way.
	cand := c.fleet[victim].srv.ready.Max()
	if cand == nil {
		return false
	}
	if h, err := c.fleet[thief].srv.mgr.Admit(cand.Value.rec.req); err != nil {
		return false
	} else {
		c.fleet[thief].srv.mgr.Release(h)
	}
	w, ok := c.fleet[victim].srv.stealWorstReady()
	if !ok {
		return false
	}
	tokens := int64(w.rec.req.TotalTokens())
	c.fleet[victim].dispatchedTokens -= tokens
	c.fleet[thief].dispatchedTokens += tokens
	c.fleet[thief].srv.acceptStolen(w, c.now)
	c.fleet[thief].stolen++
	c.touch(victim)
	c.touch(thief)
	return true
}

// touch re-registers replica ri in the event heap after anything that can
// change its next-event time (a dispatch, a step, a steal). The previous
// entry — if any — becomes stale via the sequence bump; a fresh entry is
// pushed only when the replica still has work. Every replica therefore has
// at most one live entry, keyed by its current nextEventTime.
func (c *clusterSched) touch(ri int) {
	r := c.fleet[ri]
	r.eventSeq++
	if t, ok := r.srv.nextEventTime(); ok {
		c.events.Push(repEvent{at: t, ri: ri, seq: r.eventSeq})
	}
}

// nextEvent returns the earliest live replica event without consuming it,
// discarding stale entries; ri == -1 means every replica is idle.
func (c *clusterSched) nextEvent() (tRep time.Duration, ri int) {
	for c.events.Len() > 0 {
		ev := c.events.Peek()
		r := c.fleet[ev.ri]
		if ev.seq != r.eventSeq || r.state == replicaStopped || r.state == replicaDown {
			c.events.Pop() // stale: superseded, or the replica retired or crashed
			continue
		}
		return ev.at, ev.ri
	}
	return 0, -1
}

// run drives the co-simulation to completion: pop the earliest event —
// fault injection, an eligible re-dispatch, an arrival, or a replica step —
// advance the monotonic cluster clock to it, and re-touch exactly the
// replicas it mutated. On a zero-fault configuration the fault and pool
// branches are unreachable (c.faults is nil) and the loop is the pre-fault
// scheduler, event for event.
func (c *clusterSched) run() (ClusterReport, error) {
	for {
		tRep, ri := c.nextEvent()
		if ri == -1 && c.qi >= len(c.queue) && c.poolLen() == 0 {
			break // drained; fault events past the last work are moot
		}
		haveArr := c.qi < len(c.queue)
		var tArr time.Duration
		if haveArr {
			tArr = c.reqs[c.queue[c.qi]].ArrivalAt
		}
		// Fault events fire first at any boundary they precede or share:
		// a crash at t kills the replica before the arrival at t lands.
		if c.faults != nil && c.injectFault(tRep, ri, tArr, haveArr) {
			continue
		}
		// An eligible pool entry precedes arrivals and steps at its
		// instant: displaced requests are older than anything arriving now.
		// The pool is gated on a dispatch target existing; while every
		// replica is down it waits for the restart that the fault branch
		// above will eventually inject.
		if c.poolLen() > 0 && c.activeCount() > 0 {
			e := c.pool.Peek()
			if (!haveArr || e.at <= tArr) && (ri == -1 || e.at <= tRep) {
				c.pool.Pop()
				c.advance(e.at)
				c.autoscale()
				c.redispatchOne(e)
				continue
			}
		}
		// Dispatch an arrival when it is due at or before the next replica
		// event — the policy then sees every replica's state as of the
		// arrival instant, exactly like admission sees arrivals that
		// landed during the previous decode step.
		if haveArr && (ri == -1 || tArr <= tRep) {
			req := c.reqs[c.queue[c.qi]]
			c.advance(req.ArrivalAt)
			c.autoscale()
			if c.faults != nil && c.activeCount() == 0 {
				// Every replica is down (or draining): park the arrival in
				// the pool — no retry consumed — until a restart or a
				// scale-up restores a dispatch target.
				c.poolPush(&track{req: req}, int64(c.queue[c.qi]), true, req.ArrivalAt)
				c.qi++
				continue
			}
			r := c.pick(req)
			c.fleet[r].srv.addRequest(req, int64(c.queue[c.qi]))
			c.fleet[r].assigned++
			c.fleet[r].dispatchedTokens += int64(req.TotalTokens())
			c.qi++
			c.touch(r)
			continue
		}
		if ri == -1 {
			// Work remains only in a blocked pool, and no fault event is
			// pending to unblock it (a scripted plan ran dry).
			return c.seal(fmt.Errorf("serve: %d request(s) stranded in the re-dispatch pool with no active replica and no pending restart", c.poolLen()))
		}
		c.advance(tRep)
		c.autoscale()
		if c.cfg.Steal && c.trySteal() {
			continue // fleet state changed; the steal re-touched both sides
		}
		if _, err := c.fleet[ri].srv.runOnce(); err != nil {
			return c.seal(fmt.Errorf("serve: replica %d: %w", ri, err))
		}
		c.touch(ri)
	}
	return c.seal(nil)
}

// injectFault applies the next pending fault event iff it is due at or
// before every other actionable event — the event-boundary injection
// contract: faults never interrupt a decode step, they land between steps,
// so a faulty run is exactly as deterministic as a fault-free one. Returns
// whether an event was consumed.
func (c *clusterSched) injectFault(tRep time.Duration, ri int, tArr time.Duration, haveArr bool) bool {
	fe, ok := c.faults.peek()
	if !ok {
		return false
	}
	if haveArr && tArr < fe.At {
		return false
	}
	if ri != -1 && tRep < fe.At {
		return false
	}
	if c.poolLen() > 0 && c.activeCount() > 0 && c.pool.Peek().at < fe.At {
		return false
	}
	c.faults.pop()
	c.advance(fe.At)
	c.applyFault(fe)
	c.autoscale()
	return true
}

// applyFault routes one fault event. Crashes only touch replicas that are
// up (active or draining); restarts only touch crashed ones; anything else
// — including events aimed at replicas the autoscaler never spawned — is a
// no-op, so MTTF streams and scripted plans stay valid whatever the fleet
// actually did.
func (c *clusterSched) applyFault(fe FaultEvent) {
	if fe.Replica >= len(c.fleet) {
		return
	}
	r := c.fleet[fe.Replica]
	switch fe.Kind {
	case FaultCrash:
		if r.state == replicaActive || r.state == replicaDraining {
			c.crashReplica(fe.Replica)
		}
	case FaultRestart:
		if r.state == replicaDown {
			c.restartReplica(fe.Replica)
		}
	}
}

// crashReplica kills replica ri at the current cluster instant. The server
// tears down its KV and batch (recompute semantics — see (*server).crash);
// displaced queued requests re-enter dispatch through the pool immediately
// and for free, while in-flight ones must win a retry grant — bounded per
// request and per class — or be abandoned as lost. Either way the
// replica's outstanding-KV gauge drains to zero, keeping load-aware
// dispatch honest about the survivors.
func (c *clusterSched) crashReplica(ri int) {
	r := c.fleet[ri]
	inflight, queued := r.srv.crash(c.now)
	r.state = replicaDown
	r.downSince = c.now
	r.eventSeq++ // its pending heap entry, if any, is now stale
	for _, w := range queued {
		r.dispatchedTokens -= int64(w.rec.req.TotalTokens())
		c.poolPush(w.rec, w.seq, true, c.now)
	}
	for _, rec := range inflight {
		r.dispatchedTokens -= int64(rec.req.TotalTokens())
		if k, ok := c.grantRetry(rec); ok {
			delay := time.Duration(float64(c.retryDelay) * math.Pow(c.backoff, float64(k-1)))
			c.poolPush(rec, 0, false, c.now+delay)
		} else {
			c.lost++
			// The request dies with the replica that was serving it: it
			// joins that replica's roster (keeping its TTFT if it had
			// already streamed), like any other unfinished request.
			r.srv.recordUnfinished(rec)
		}
	}
}

// restartReplica brings a crashed replica back, empty, into dispatch at
// the current cluster instant, closing its outage span. A replica that
// crashed while draining rejoins as active — its backlog died with it —
// and the autoscaler is free to drain it again.
func (c *clusterSched) restartReplica(ri int) {
	r := c.fleet[ri]
	r.downTotal += c.now - r.downSince
	r.state = replicaActive
	r.srv.restart(c.now)
	r.eventSeq++
}

// grantRetry charges one retry for rec against the per-request cap and its
// class's budget, returning the 1-based attempt number when granted.
func (c *clusterSched) grantRetry(rec *track) (int, bool) {
	if c.cfg.Recovery.Retries <= 0 {
		return 0, false
	}
	k := c.attempts[rec]
	if k >= c.cfg.Recovery.Retries {
		return 0, false
	}
	if b := c.cfg.Recovery.RetryBudget; b > 0 && c.classRetries[rec.class()] >= b {
		return 0, false
	}
	c.attempts[rec] = k + 1
	c.classRetries[rec.class()]++
	c.retries++
	return k + 1, true
}

// poolPush parks a request in the re-dispatch pool.
func (c *clusterSched) poolPush(rec *track, ticket int64, hasTicket bool, at time.Duration) {
	c.poolSeq++
	c.pool.Push(redispatch{rec: rec, ticket: ticket, hasTicket: hasTicket, at: at, seq: c.poolSeq})
}

// poolLen is the re-dispatch pool's size (0 when faults are disabled).
func (c *clusterSched) poolLen() int {
	if c.pool == nil {
		return 0
	}
	return c.pool.Len()
}

// redispatchOne sends one pool entry to the replica the dispatch policy
// picks at the current instant — a late dispatch decision for displaced
// queued requests and parked arrivals (which keep their FIFO ticket), a
// recompute requeue for retried in-flight ones (which draw a fresh ticket
// at the destination). Callers guarantee an active replica exists.
func (c *clusterSched) redispatchOne(e redispatch) {
	ri := c.pick(e.rec.req)
	r := c.fleet[ri]
	if e.hasTicket {
		r.srv.acceptStolen(waiting{rec: e.rec, seq: e.ticket}, c.now)
	} else {
		r.srv.acceptRedispatch(e.rec, c.now)
	}
	r.dispatchedTokens += int64(e.rec.req.TotalTokens())
	c.touch(ri)
}

// seal finalizes every replica and assembles the cluster report. All slices
// in the report are freshly allocated — never views of scheduler state — so
// a caller mutating the report cannot corrupt anything read later.
func (c *clusterSched) seal(err error) (ClusterReport, error) {
	if c.elastic {
		// A drain that completed on the run's very last event has not been
		// through an autoscale evaluation yet — retire it before counting.
		c.retireDrained()
	}
	rep := ClusterReport{
		Replicas:     make([]Report, len(c.fleet)),
		Assigned:     make([]int, len(c.fleet)),
		Stolen:       make([]int, len(c.fleet)),
		PeakReplicas: c.peakReplicas,
		Spawns:       c.spawns,
		Drains:       c.drains,
	}
	servers := make([]*server, len(c.fleet))
	// A replica still in the fleet at the end of the run was provisioned
	// until the cluster makespan, idle tail included — that is what makes
	// ReplicaSeconds of a static N-replica fleet exactly N × makespan, the
	// baseline elastic drains are measured against. Drained replicas
	// closed their spans at their own drain instant.
	var makespan time.Duration
	for _, r := range c.fleet {
		if r.srv.now > makespan {
			makespan = r.srv.now
		}
	}
	var weightedSpan, weightedDown float64
	for i, r := range c.fleet {
		r.srv.finish()
		rep.Replicas[i] = r.srv.rep
		rep.Assigned[i] = r.assigned
		rep.Stolen[i] = r.stolen
		servers[i] = r.srv
		if r.state == replicaDown {
			// The outage was still open at the end of the run: it spans to
			// the cluster makespan, like the busy span closed below.
			end := makespan
			if end < r.downSince {
				end = r.downSince
			}
			r.downTotal += end - r.downSince
		}
		if r.state != replicaStopped {
			end := makespan
			if end < r.spawnAt {
				end = r.spawnAt
			}
			r.busy += end - r.spawnAt
			r.state = replicaStopped
		}
		rep.ReplicaSeconds += r.busy
		weightedSpan += r.capacity * float64(r.busy)
		weightedDown += r.capacity * float64(r.downTotal)
	}
	rep.Retries = c.retries
	rep.Lost = c.lost
	rep.AffinityRouted = c.affinityRouted
	rep.Availability = 1
	if weightedSpan > 0 {
		rep.Availability = 1 - weightedDown/weightedSpan
	}
	// Requests never released from the cluster queue (the run failed
	// first) still belong in the merged roster, unserved — as do requests
	// stranded in the re-dispatch pool (error paths only: a completed run
	// drains it).
	undispatched := make([]Request, 0, len(c.queue)-c.qi+c.poolLen())
	for _, idx := range c.queue[c.qi:] {
		undispatched = append(undispatched, c.reqs[idx])
	}
	for c.poolLen() > 0 {
		undispatched = append(undispatched, c.pool.Pop().rec.req)
	}
	rep.Report = mergeReports(servers, undispatched)
	return rep, err
}

// mergeReports builds the cluster-level Report by merging the replicas'
// streaming latency digests: percentiles of the union of per-request
// samples, never averages of per-replica percentiles. While the combined
// sample count of a digest fits the exact-retention threshold the union
// stays raw and the merged percentiles are exact (byte-identical to the old
// record concatenation); past it the union lives in a mergeable quantile
// sketch, whose bucket-wise merge makes the result independent of replica
// order. undispatched requests (present only when a failed run sealed
// early) join the class roster without samples. Replicas must already be
// finished: finish seals each replica's digests, including the unfinished-
// request walk this merge relies on.
func mergeReports(replicas []*server, undispatched []Request) Report {
	var m Report
	var steps int
	var wasteSum, batchSum float64
	// The fleet shares one ExactSamples setting (per-replica overrides
	// cover capacity, batch and aging only), so replica 0's limit is the
	// cluster's.
	limit := replicas[0].exactSamples
	merged := map[string]*classAgg{}
	ensure := func(name, slo string) *classAgg {
		a := merged[name]
		if a == nil {
			a = newClassAgg(slo, limit)
			merged[name] = a
		}
		return a
	}
	allTTFT, allE2E := newLatDigest(limit), newLatDigest(limit)
	preempt := map[string]int64{}
	tokenSteps := map[string]*float64{}
	var totalTokenSteps float64
	for i := range undispatched {
		rec := track{req: undispatched[i]}
		ensure(rec.class(), rec.req.SLO)
	}
	for _, s := range replicas {
		m.Served += s.rep.Served
		m.PeakUsed += s.rep.PeakUsed
		m.PeakLogical += s.rep.PeakLogical
		m.AdmitFailures += s.rep.AdmitFailures
		m.BlockedSteps += s.rep.BlockedSteps
		m.Preemptions += s.rep.Preemptions
		m.Crashes += s.rep.Crashes
		m.Restarts += s.rep.Restarts
		m.DeadlineMisses += s.rep.DeadlineMisses
		m.Shed += s.rep.Shed
		m.Goodput += s.rep.Goodput
		m.PrefixHits += s.rep.PrefixHits
		m.PrefixMisses += s.rep.PrefixMisses
		m.ReusedTokens += s.rep.ReusedTokens
		if s.rep.Duration > m.Duration {
			m.Duration = s.rep.Duration
		}
		steps += s.rep.Steps
		wasteSum += s.wasteSum
		batchSum += s.batchSum
		names := make([]string, 0, len(s.classes))
		for name := range s.classes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := s.classes[name]
			dst := ensure(name, a.slo)
			dst.served += a.served
			dst.ttft.merge(a.ttft)
			dst.e2e.merge(a.e2e)
		}
		allTTFT.merge(s.allTTFT)
		allE2E.merge(s.allE2E)
		for c, n := range s.classPreempt {
			preempt[c] += n
		}
		for c, t := range s.classTokenSteps {
			b := tokenSteps[c]
			if b == nil {
				b = new(float64)
				tokenSteps[c] = b
			}
			*b += *t
		}
		totalTokenSteps += s.totalTokenSteps
	}
	m.Steps = steps
	if steps > 0 {
		m.MeanWaste = wasteSum / float64(steps)
		m.MeanBatch = batchSum / float64(steps)
	}
	m.Classes = classRows(merged, steps, preempt, tokenSteps, totalTokenSteps)
	m.TTFT = allTTFT.summary()
	m.E2E = allE2E.summary()
	m.RetainedSamples, m.SketchedSamples = digestFootprint(merged, allTTFT, allE2E)
	return m
}
