package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/container"
)

// DispatchPolicy names a cluster-level dispatch policy: how the admission
// queue assigns an arriving request to a replica.
type DispatchPolicy string

const (
	// DispatchRoundRobin cycles arrivals over the active replicas in order
	// — oblivious to load, the baseline every smarter policy is measured
	// against.
	DispatchRoundRobin DispatchPolicy = "round-robin"
	// DispatchJSQ joins the shortest queue: the replica with the fewest
	// unfinished requests (queued plus decoding) per unit of capacity,
	// ties to the lowest replica index.
	DispatchJSQ DispatchPolicy = "jsq"
	// DispatchLeastKV picks the replica with the least outstanding KV
	// demand per unit of capacity — the sum of total tokens (prompt+output)
	// of its unfinished requests, a token-weighted shortest queue that sees
	// the difference between ten chat turns and ten long batch jobs.
	DispatchLeastKV DispatchPolicy = "least-kv"
)

// DispatchPolicies lists the accepted policies in presentation order.
func DispatchPolicies() []DispatchPolicy {
	return []DispatchPolicy{DispatchRoundRobin, DispatchJSQ, DispatchLeastKV}
}

// ParseDispatch resolves a policy name ("" = round-robin). Names are
// case-insensitive and surrounding whitespace is ignored, so "JSQ" from a
// CLI flag or " least-kv " from a hand-edited conf file resolve like their
// canonical spellings.
func ParseDispatch(name string) (DispatchPolicy, error) {
	switch p := DispatchPolicy(strings.ToLower(strings.TrimSpace(name))); p {
	case "":
		return DispatchRoundRobin, nil
	case DispatchRoundRobin, DispatchJSQ, DispatchLeastKV:
		return p, nil
	}
	return "", fmt.Errorf("serve: unknown dispatch policy %q (round-robin, jsq, least-kv)", name)
}

// Autoscaler defaults (see ClusterConfig).
const (
	DefaultScaleUpDepth   = 4
	DefaultScaleDownDepth = 1
	DefaultScaleCooldown  = 250 * time.Millisecond
)

// ReplicaOverride customizes one replica of a heterogeneous cluster. The
// zero value inherits everything from the cluster-wide configuration.
type ReplicaOverride struct {
	// Capacity is the replica's relative serving capacity (0 = 1). The
	// load-aware dispatch policies (jsq, least-kv) divide the replica's
	// observed load by it, so a Capacity-2 replica legitimately absorbs
	// twice the demand of a Capacity-1 peer instead of looking "twice as
	// loaded" at the same queue depth. It is a dispatch weight only; the
	// caller sizes the replica's actual pool and batch to match (MaxBatch
	// here, pool capacity in the cache-manager factory).
	Capacity float64
	// MaxBatch overrides ServerConfig.MaxBatch for this replica (0 =
	// inherit the cluster-wide value).
	MaxBatch int
	// Aging overrides ServerConfig.Aging for this replica (0 = inherit).
	Aging time.Duration
}

// ClusterConfig tunes a multi-replica serving cluster.
type ClusterConfig struct {
	// Replicas is the number of replica servers. With autoscaling off
	// (MaxReplicas == 0) it is the fixed fleet size and must be >= 1. With
	// autoscaling on it is the initial fleet size and may be left 0 to
	// start at MinReplicas.
	Replicas int
	// Dispatch assigns arrivals to replicas ("" = round-robin).
	Dispatch DispatchPolicy
	// Server is the per-replica continuous-batching configuration,
	// including the priority-aging rate (Server.Aging).
	Server ServerConfig

	// Overrides customizes replica i via Overrides[i]; replicas beyond the
	// slice (including autoscaled spawns past its end) use the cluster-wide
	// defaults. It must not be longer than the maximum fleet size.
	Overrides []ReplicaOverride

	// MaxReplicas > 0 enables queue-depth autoscaling: the scheduler
	// watches the cluster backlog in virtual time and keeps between
	// MinReplicas and MaxReplicas replicas active. MinReplicas 0 means 1.
	// The scaler spawns a replica when the queued backlog exceeds
	// ScaleUpDepth per active replica, and starts draining one when the
	// backlog would leave at most ScaleDownDepth per remaining replica.
	// A draining replica accepts no new dispatches and leaves the fleet
	// only after it has fully emptied; scale-ups reuse draining or drained
	// replicas before growing the fleet. Consecutive scale decisions are
	// at least ScaleCooldown of virtual time apart. All decisions happen
	// at event boundaries of the co-simulation, so elastic runs are as
	// deterministic as static ones.
	MinReplicas int
	MaxReplicas int
	// ScaleUpDepth is the queued-requests-per-active-replica backlog that
	// triggers a spawn (0 = DefaultScaleUpDepth).
	ScaleUpDepth int
	// ScaleDownDepth is the backlog per remaining replica below which one
	// replica starts draining (0 = DefaultScaleDownDepth; use a negative
	// value to effectively never scale down).
	ScaleDownDepth int
	// ScaleCooldown is the minimum virtual time between scale decisions
	// (0 = DefaultScaleCooldown).
	ScaleCooldown time.Duration

	// Steal enables work-stealing re-dispatch: when a replica is starving
	// (nothing decoding, nothing admissible) while another holds queued
	// requests beyond what it can admit, the scheduler re-dispatches the
	// backlogged replica's lowest-ranked queued request — never a running
	// one — to the idle replica. Dispatch stops being decide-once at
	// arrival. Stealing works on static and elastic fleets alike.
	Steal bool
}

// ClusterReport summarizes one cluster serving run.
type ClusterReport struct {
	// Report is the cluster-level view. Counters (served, steps, admit
	// failures, blocked steps, preemptions) are summed over replicas,
	// MeanWaste and MeanBatch are step-weighted means, Duration is the
	// longest replica makespan, and PeakUsed/PeakLogical sum the per-
	// replica peaks (an upper bound on the cluster-wide footprint, since
	// replicas peak at different virtual times). The latency percentiles
	// and per-class rows are recomputed from the union of the replicas'
	// raw per-request samples — merging percentiles by averaging them
	// would be statistically meaningless.
	Report
	// Replicas are the per-replica reports, indexed by replica. Every
	// replica that ever joined the fleet appears, drained ones included.
	// A request that was stolen counts in the report of the replica that
	// finally served it.
	Replicas []Report
	// Assigned[i] is how many requests the dispatcher sent to replica i
	// at arrival. With stealing on, a request may be re-dispatched later;
	// Assigned keeps the original decision, Stolen records the moves.
	Assigned []int
	// Stolen[i] is how many queued requests replica i stole from a
	// backlogged peer (all zero unless ClusterConfig.Steal).
	Stolen []int

	// PeakReplicas is the largest number of simultaneously active
	// replicas; Spawns and Drains count scale-up decisions (including
	// drain cancellations and re-activations) and completed drains.
	// Without autoscaling PeakReplicas is the static fleet size and
	// Spawns/Drains are zero.
	PeakReplicas int
	Spawns       int
	Drains       int
	// ReplicaSeconds is the virtual time integral of the active fleet:
	// the sum over replicas of their spawn-to-drain (or spawn-to-end)
	// spans — the fleet cost an autoscaler exists to shrink.
	ReplicaSeconds time.Duration
}

// replicaState tracks one replica's place in the elastic fleet lifecycle.
type replicaState int

const (
	replicaActive   replicaState = iota // receives dispatches
	replicaDraining                     // serving out its backlog, no new work
	replicaStopped                      // drained and out of the fleet
)

// clusterReplica is one replica server plus the scheduler-side bookkeeping
// the dispatch policies and the autoscaler read.
type clusterReplica struct {
	srv      *server
	capacity float64
	state    replicaState
	// spawnAt opens the current busy span on the cluster clock; busy
	// accumulates closed spans (a replica can stop and be re-activated).
	spawnAt time.Duration
	busy    time.Duration
	// assigned counts arrival dispatches, stolen counts re-dispatches won,
	// dispatchedTokens the outstanding-KV numerator for least-kv dispatch.
	assigned         int
	stolen           int
	dispatchedTokens int64

	// eventSeq versions the replica's entry in the scheduler's event heap:
	// every touch bumps it, so events pushed earlier become stale and are
	// discarded on pop instead of being searched for and removed (lazy
	// invalidation).
	eventSeq uint64
}

// repEvent is one replica's pending next-event entry in the global heap.
// The ordering (time, then replica index) reproduces the old scan's
// tie-break: among simultaneous events the lowest-index replica runs first.
type repEvent struct {
	at  time.Duration
	ri  int
	seq uint64
}

// clusterSched is the cluster scheduler: the admission queue, the fleet and
// the elastic machinery, advanced one event at a time.
type clusterSched struct {
	cfg      ClusterConfig
	dispatch DispatchPolicy
	newMgr   func(int) CacheManager
	reqs     []Request
	queue    []int // input indexes in arrival order
	qi       int
	fleet    []*clusterReplica
	rr       int // round-robin cursor over active replicas

	// events is the single global event spine: one (next-event time,
	// replica) entry per replica with work, min-ordered by (time, index).
	// Advancing the co-simulation is an O(log fleet) pop instead of the old
	// O(fleet) scan of every replica's clock per event — on large fleets
	// the scan was exactly the lock-step polling the event-driven design
	// exists to avoid. Entries are invalidated lazily via eventSeq.
	events *container.Heap[repEvent]

	elastic      bool
	minReplicas  int
	upDepth      int
	downDepth    int
	cooldown     time.Duration
	lastScale    time.Duration
	scaled       bool          // a scale decision happened (gates cooldown)
	now          time.Duration // monotonic cluster event clock
	spawns       int
	drains       int
	peakReplicas int
}

// resolveOverride returns replica i's override (zero value past the slice).
func (cfg ClusterConfig) resolveOverride(i int) ReplicaOverride {
	if i < len(cfg.Overrides) {
		return cfg.Overrides[i]
	}
	return ReplicaOverride{}
}

// serverConfig is replica i's effective per-server configuration.
func (cfg ClusterConfig) serverConfig(i int) ServerConfig {
	sc := cfg.Server
	o := cfg.resolveOverride(i)
	if o.MaxBatch > 0 {
		sc.MaxBatch = o.MaxBatch
	}
	if o.Aging > 0 {
		sc.Aging = o.Aging
	}
	return sc
}

// validate checks the whole configuration up front — including every
// replica configuration the run could ever instantiate — so mid-run spawns
// cannot fail.
func (cfg ClusterConfig) validate() (initial, fleetMax int, err error) {
	if cfg.MinReplicas < 0 || cfg.MaxReplicas < 0 {
		return 0, 0, fmt.Errorf("serve: negative replica bounds [%d, %d]", cfg.MinReplicas, cfg.MaxReplicas)
	}
	if cfg.ScaleCooldown < 0 {
		return 0, 0, fmt.Errorf("serve: negative scale cooldown %v", cfg.ScaleCooldown)
	}
	if cfg.MaxReplicas > 0 {
		min := cfg.MinReplicas
		if min == 0 {
			min = 1
		}
		if min > cfg.MaxReplicas {
			return 0, 0, fmt.Errorf("serve: min replicas %d above max %d", min, cfg.MaxReplicas)
		}
		initial, fleetMax = min, cfg.MaxReplicas
		if cfg.Replicas != 0 {
			if cfg.Replicas < min || cfg.Replicas > cfg.MaxReplicas {
				return 0, 0, fmt.Errorf("serve: initial replicas %d outside [%d, %d]",
					cfg.Replicas, min, cfg.MaxReplicas)
			}
			initial = cfg.Replicas
		}
	} else {
		if cfg.MinReplicas > 0 || cfg.ScaleUpDepth > 0 || cfg.ScaleDownDepth != 0 || cfg.ScaleCooldown > 0 {
			return 0, 0, fmt.Errorf("serve: autoscaling knobs need MaxReplicas > 0")
		}
		if cfg.Replicas <= 0 {
			return 0, 0, fmt.Errorf("serve: cluster needs >= 1 replica, got %d", cfg.Replicas)
		}
		initial, fleetMax = cfg.Replicas, cfg.Replicas
	}
	if len(cfg.Overrides) > fleetMax {
		return 0, 0, fmt.Errorf("serve: %d replica overrides for a fleet of at most %d",
			len(cfg.Overrides), fleetMax)
	}
	for i := 0; i < fleetMax; i++ {
		o := cfg.resolveOverride(i)
		if o.Capacity < 0 || math.IsNaN(o.Capacity) || math.IsInf(o.Capacity, 0) {
			return 0, 0, fmt.Errorf("serve: replica %d capacity %v", i, o.Capacity)
		}
		if o.MaxBatch < 0 || o.Aging < 0 {
			return 0, 0, fmt.Errorf("serve: replica %d override %+v", i, o)
		}
		sc := cfg.serverConfig(i)
		if sc.MaxBatch <= 0 {
			return 0, 0, fmt.Errorf("serve: replica %d max batch %d", i, sc.MaxBatch)
		}
		if sc.StepTime < 0 || sc.PrefillTokenTime < 0 || sc.Aging < 0 {
			return 0, 0, fmt.Errorf("serve: replica %d negative durations in config %+v", i, sc)
		}
	}
	return initial, fleetMax, nil
}

// ServeCluster runs the requests on a multi-replica serving cluster: a
// cluster-level admission queue releases each request at its arrival time to
// one replica, chosen by the dispatch policy from the replicas' states at
// that instant, and every replica runs the same SLO-aware continuous-
// batching loop as Serve on its own cache manager and virtual clock. newMgr
// builds replica i's cache manager — each replica must get its own manager
// (and, for pool-backed managers, its own allocator and device) — and is
// also invoked mid-run when the autoscaler grows the fleet.
//
// The fleet can be heterogeneous (ClusterConfig.Overrides: per-replica
// capacity weight, batch limit and aging), elastic (MinReplicas/MaxReplicas
// queue-depth autoscaling with drain-on-empty), and work-stealing
// (ClusterConfig.Steal re-dispatches queued — never running — requests from
// a backlogged replica to a starving one).
//
// The co-simulation is event-driven and fully deterministic: the scheduler
// always advances the earliest event (an arrival, or the replica with the
// smallest next-event time, ties to the lowest replica index), and scaling
// and stealing decisions happen only at those event boundaries, so the same
// input produces a byte-identical ClusterReport on every run. With one
// replica (static, stealing off — or MinReplicas == MaxReplicas == 1) the
// scheduler degenerates to exactly Serve's loop — dispatched requests carry
// their input position as the FIFO ticket, replaying Serve's up-front
// numbering whatever order the input arrived in — and the output is
// identical to Serve's report.
//
// On a replica error (a request that fits nowhere, a stuck decode) the
// partial reports of every replica are sealed and returned with the error;
// requests still waiting in the cluster queue appear in the merged class
// roster with nothing served, exactly as Serve reports requests it never
// started.
func ServeCluster(reqs []Request, newMgr func(replica int) CacheManager, cfg ClusterConfig) (ClusterReport, error) {
	if newMgr == nil {
		return ClusterReport{}, fmt.Errorf("serve: cluster needs a cache-manager factory")
	}
	c, err := newClusterSched(reqs, newMgr, cfg)
	if err != nil {
		return ClusterReport{}, err
	}
	return c.run()
}

func newClusterSched(reqs []Request, newMgr func(int) CacheManager, cfg ClusterConfig) (*clusterSched, error) {
	initial, _, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	dispatch, err := ParseDispatch(string(cfg.Dispatch))
	if err != nil {
		return nil, err
	}

	c := &clusterSched{
		cfg:         cfg,
		dispatch:    dispatch,
		newMgr:      newMgr,
		reqs:        reqs,
		elastic:     cfg.MaxReplicas > 0,
		minReplicas: cfg.MinReplicas,
		upDepth:     cfg.ScaleUpDepth,
		downDepth:   cfg.ScaleDownDepth,
		cooldown:    cfg.ScaleCooldown,
		events: container.NewHeap[repEvent](func(a, b repEvent) bool {
			if a.at != b.at {
				return a.at < b.at
			}
			return a.ri < b.ri
		}),
	}
	if c.minReplicas == 0 {
		c.minReplicas = 1
	}
	if c.upDepth == 0 {
		c.upDepth = DefaultScaleUpDepth
	}
	if c.downDepth == 0 {
		c.downDepth = DefaultScaleDownDepth
	}
	if c.cooldown == 0 {
		c.cooldown = DefaultScaleCooldown
	}

	// The cluster admission queue: input indexes in arrival-time order,
	// input order preserved among ties. Dispatch releases requests in this
	// order but tickets them by input index, matching Serve's numbering.
	c.queue = make([]int, len(reqs))
	for i := range c.queue {
		c.queue[i] = i
	}
	sort.SliceStable(c.queue, func(i, j int) bool {
		return reqs[c.queue[i]].ArrivalAt < reqs[c.queue[j]].ArrivalAt
	})

	for i := 0; i < initial; i++ {
		if err := c.spawn(); err != nil {
			return nil, err
		}
	}
	c.peakReplicas = initial
	return c, nil
}

// spawn appends a fresh replica to the fleet with the cluster clock as its
// busy-span start. Configurations were validated up front, so construction
// cannot fail mid-run in practice.
func (c *clusterSched) spawn() error {
	i := len(c.fleet)
	s, err := newEmptyServer(c.newMgr(i), c.cfg.serverConfig(i))
	if err != nil {
		return err
	}
	// Reserve the global ticket range [0, len(reqs)) for dispatched
	// requests; requeued preemptions draw above it, exactly as Serve's
	// up-front enqueue would have numbered them.
	s.nextTkt = int64(len(c.reqs))
	w := c.cfg.resolveOverride(i).Capacity
	if w == 0 {
		w = 1
	}
	c.fleet = append(c.fleet, &clusterReplica{srv: s, capacity: w, spawnAt: c.now})
	return nil
}

// advance moves the monotonic cluster clock to the event being processed.
func (c *clusterSched) advance(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// activeCount is the number of dispatchable replicas.
func (c *clusterSched) activeCount() int {
	n := 0
	for _, r := range c.fleet {
		if r.state == replicaActive {
			n++
		}
	}
	return n
}

// autoscale is the queue-depth scaler, evaluated at every event boundary.
// It first retires draining replicas that have emptied, then — outside the
// cooldown — takes at most one scale decision against the queued backlog
// per active replica.
func (c *clusterSched) autoscale() {
	if !c.elastic {
		return
	}
	c.retireDrained()
	if c.scaled && c.now-c.lastScale < c.cooldown {
		return
	}
	active, backlog := 0, 0
	for _, r := range c.fleet {
		if r.state == replicaStopped {
			continue
		}
		backlog += r.srv.pendingLen()
		if r.state == replicaActive {
			active++
		}
	}
	if backlog > c.upDepth*active && active < c.cfg.MaxReplicas {
		c.scaleUp()
		c.spawns++
		if a := c.activeCount(); a > c.peakReplicas {
			c.peakReplicas = a
		}
		c.scaled, c.lastScale = true, c.now
		return
	}
	if active > c.minReplicas && backlog <= c.downDepth*(active-1) {
		// Drain the highest-index active replica: the fleet shrinks from
		// the top, mirroring how it grew.
		for i := len(c.fleet) - 1; i >= 0; i-- {
			if c.fleet[i].state == replicaActive {
				c.fleet[i].state = replicaDraining
				break
			}
		}
		c.scaled, c.lastScale = true, c.now
	}
}

// retireDrained completes drain-on-idle: a draining replica leaves the
// fleet only once it has neither queued nor running work. Its busy span
// closes at its own clock — the virtual instant it finished its last
// request. Called at every autoscale evaluation and once more at seal, so
// a drain that completes on the run's final event still counts.
func (c *clusterSched) retireDrained() {
	for _, r := range c.fleet {
		if r.state == replicaDraining && r.srv.pendingLen() == 0 && len(r.srv.running) == 0 {
			r.state = replicaStopped
			end := r.srv.now
			if end < r.spawnAt {
				end = r.spawnAt
			}
			r.busy += end - r.spawnAt
			c.drains++
		}
	}
}

// scaleUp adds one active replica, cheapest first: cancel a drain in
// progress, re-activate a drained replica, and only then grow the fleet.
func (c *clusterSched) scaleUp() {
	for _, r := range c.fleet {
		if r.state == replicaDraining {
			r.state = replicaActive // busy span never closed: it continues
			return
		}
	}
	for _, r := range c.fleet {
		if r.state == replicaStopped {
			r.state = replicaActive
			r.spawnAt = c.now // a new busy span opens
			return
		}
	}
	if err := c.spawn(); err != nil {
		// Unreachable: every config in [0, fleetMax) was validated.
		panic("serve: mid-run spawn failed: " + err.Error())
	}
}

// pick chooses the replica for an arriving request among the active ones.
// Load-aware policies normalize by the replica's capacity, so a Capacity-2
// replica absorbs twice the demand before looking equally loaded.
func (c *clusterSched) pick() int {
	switch c.dispatch {
	case DispatchJSQ:
		best, bestLoad := -1, 0.0
		for i, r := range c.fleet {
			if r.state != replicaActive {
				continue
			}
			l := float64(r.srv.pendingLen()+len(r.srv.running)) / r.capacity
			if best == -1 || l < bestLoad {
				best, bestLoad = i, l
			}
		}
		return best
	case DispatchLeastKV:
		best, bestLoad := -1, 0.0
		for i, r := range c.fleet {
			if r.state != replicaActive {
				continue
			}
			l := float64(r.dispatchedTokens-r.srv.doneTokens) / r.capacity
			if best == -1 || l < bestLoad {
				best, bestLoad = i, l
			}
		}
		return best
	default: // round-robin cycles the active replicas in index order
		act := make([]int, 0, len(c.fleet))
		for i, r := range c.fleet {
			if r.state == replicaActive {
				act = append(act, i)
			}
		}
		p := act[c.rr%len(act)]
		c.rr++
		return p
	}
}

// trySteal performs at most one work-stealing re-dispatch: the lowest-index
// starving active replica takes the lowest-ranked queued request from the
// peer with the largest un-admissible backlog. Only queued requests move —
// a decoding sequence is never migrated — and the stolen request keeps its
// FIFO ticket, so the move is exactly a late dispatch decision.
func (c *clusterSched) trySteal() bool {
	thief := -1
	for i, r := range c.fleet {
		if r.state == replicaActive && len(r.srv.running) == 0 && r.srv.ready.Len() == 0 {
			thief = i
			break
		}
	}
	if thief == -1 {
		return false
	}
	victim, excess := -1, 0
	for i, r := range c.fleet {
		if i == thief || r.state == replicaStopped {
			continue
		}
		if e := r.srv.stealableExcess(); e > excess {
			victim, excess = i, e
		}
	}
	if victim == -1 {
		return false
	}
	// On a heterogeneous fleet the thief's pool may be smaller than the
	// victim's: a request that cannot fit the idle thief even alone must
	// stay queued where it is (stealing it would abort the run as a hard
	// admission failure). A trial admit answers exactly that question; the
	// reservation is released immediately either way.
	cand := c.fleet[victim].srv.ready.Max()
	if cand == nil {
		return false
	}
	if h, err := c.fleet[thief].srv.mgr.Admit(cand.Value.rec.req); err != nil {
		return false
	} else {
		c.fleet[thief].srv.mgr.Release(h)
	}
	w, ok := c.fleet[victim].srv.stealWorstReady()
	if !ok {
		return false
	}
	tokens := int64(w.rec.req.TotalTokens())
	c.fleet[victim].dispatchedTokens -= tokens
	c.fleet[thief].dispatchedTokens += tokens
	c.fleet[thief].srv.acceptStolen(w, c.now)
	c.fleet[thief].stolen++
	c.touch(victim)
	c.touch(thief)
	return true
}

// touch re-registers replica ri in the event heap after anything that can
// change its next-event time (a dispatch, a step, a steal). The previous
// entry — if any — becomes stale via the sequence bump; a fresh entry is
// pushed only when the replica still has work. Every replica therefore has
// at most one live entry, keyed by its current nextEventTime.
func (c *clusterSched) touch(ri int) {
	r := c.fleet[ri]
	r.eventSeq++
	if t, ok := r.srv.nextEventTime(); ok {
		c.events.Push(repEvent{at: t, ri: ri, seq: r.eventSeq})
	}
}

// nextEvent returns the earliest live replica event without consuming it,
// discarding stale entries; ri == -1 means every replica is idle.
func (c *clusterSched) nextEvent() (tRep time.Duration, ri int) {
	for c.events.Len() > 0 {
		ev := c.events.Peek()
		r := c.fleet[ev.ri]
		if ev.seq != r.eventSeq || r.state == replicaStopped {
			c.events.Pop() // stale: superseded or the replica retired
			continue
		}
		return ev.at, ev.ri
	}
	return 0, -1
}

// run drives the co-simulation to completion: pop the earliest event from
// the global spine (ties to the lowest replica index, so the schedule is
// the old scan's, event for event), interleave due arrivals, and re-touch
// exactly the replicas each event mutated.
func (c *clusterSched) run() (ClusterReport, error) {
	for {
		tRep, ri := c.nextEvent()
		// Dispatch an arrival when it is due at or before the next replica
		// event — the policy then sees every replica's state as of the
		// arrival instant, exactly like admission sees arrivals that
		// landed during the previous decode step.
		if c.qi < len(c.queue) && (ri == -1 || c.reqs[c.queue[c.qi]].ArrivalAt <= tRep) {
			req := c.reqs[c.queue[c.qi]]
			c.advance(req.ArrivalAt)
			c.autoscale()
			r := c.pick()
			c.fleet[r].srv.addRequest(req, int64(c.queue[c.qi]))
			c.fleet[r].assigned++
			c.fleet[r].dispatchedTokens += int64(req.TotalTokens())
			c.qi++
			c.touch(r)
			continue
		}
		if ri == -1 {
			break // drained: no arrivals left, every replica idle
		}
		c.advance(tRep)
		c.autoscale()
		if c.cfg.Steal && c.trySteal() {
			continue // fleet state changed; the steal re-touched both sides
		}
		if _, err := c.fleet[ri].srv.runOnce(); err != nil {
			return c.seal(fmt.Errorf("serve: replica %d: %w", ri, err))
		}
		c.touch(ri)
	}
	return c.seal(nil)
}

// seal finalizes every replica and assembles the cluster report. All slices
// in the report are freshly allocated — never views of scheduler state — so
// a caller mutating the report cannot corrupt anything read later.
func (c *clusterSched) seal(err error) (ClusterReport, error) {
	if c.elastic {
		// A drain that completed on the run's very last event has not been
		// through an autoscale evaluation yet — retire it before counting.
		c.retireDrained()
	}
	rep := ClusterReport{
		Replicas:     make([]Report, len(c.fleet)),
		Assigned:     make([]int, len(c.fleet)),
		Stolen:       make([]int, len(c.fleet)),
		PeakReplicas: c.peakReplicas,
		Spawns:       c.spawns,
		Drains:       c.drains,
	}
	servers := make([]*server, len(c.fleet))
	// A replica still in the fleet at the end of the run was provisioned
	// until the cluster makespan, idle tail included — that is what makes
	// ReplicaSeconds of a static N-replica fleet exactly N × makespan, the
	// baseline elastic drains are measured against. Drained replicas
	// closed their spans at their own drain instant.
	var makespan time.Duration
	for _, r := range c.fleet {
		if r.srv.now > makespan {
			makespan = r.srv.now
		}
	}
	for i, r := range c.fleet {
		r.srv.finish()
		rep.Replicas[i] = r.srv.rep
		rep.Assigned[i] = r.assigned
		rep.Stolen[i] = r.stolen
		servers[i] = r.srv
		if r.state != replicaStopped {
			end := makespan
			if end < r.spawnAt {
				end = r.spawnAt
			}
			r.busy += end - r.spawnAt
			r.state = replicaStopped
		}
		rep.ReplicaSeconds += r.busy
	}
	// Requests never released from the cluster queue (the run failed
	// first) still belong in the merged roster, unserved.
	undispatched := make([]Request, 0, len(c.queue)-c.qi)
	for _, idx := range c.queue[c.qi:] {
		undispatched = append(undispatched, c.reqs[idx])
	}
	rep.Report = mergeReports(servers, undispatched)
	return rep, err
}

// mergeReports builds the cluster-level Report by merging the replicas'
// streaming latency digests: percentiles of the union of per-request
// samples, never averages of per-replica percentiles. While the combined
// sample count of a digest fits the exact-retention threshold the union
// stays raw and the merged percentiles are exact (byte-identical to the old
// record concatenation); past it the union lives in a mergeable quantile
// sketch, whose bucket-wise merge makes the result independent of replica
// order. undispatched requests (present only when a failed run sealed
// early) join the class roster without samples. Replicas must already be
// finished: finish seals each replica's digests, including the unfinished-
// request walk this merge relies on.
func mergeReports(replicas []*server, undispatched []Request) Report {
	var m Report
	var steps int
	var wasteSum, batchSum float64
	// The fleet shares one ExactSamples setting (per-replica overrides
	// cover capacity, batch and aging only), so replica 0's limit is the
	// cluster's.
	limit := replicas[0].exactSamples
	merged := map[string]*classAgg{}
	ensure := func(name, slo string) *classAgg {
		a := merged[name]
		if a == nil {
			a = newClassAgg(slo, limit)
			merged[name] = a
		}
		return a
	}
	allTTFT, allE2E := newLatDigest(limit), newLatDigest(limit)
	preempt := map[string]int64{}
	tokenSteps := map[string]*float64{}
	var totalTokenSteps float64
	for i := range undispatched {
		rec := track{req: undispatched[i]}
		ensure(rec.class(), rec.req.SLO)
	}
	for _, s := range replicas {
		m.Served += s.rep.Served
		m.PeakUsed += s.rep.PeakUsed
		m.PeakLogical += s.rep.PeakLogical
		m.AdmitFailures += s.rep.AdmitFailures
		m.BlockedSteps += s.rep.BlockedSteps
		m.Preemptions += s.rep.Preemptions
		if s.rep.Duration > m.Duration {
			m.Duration = s.rep.Duration
		}
		steps += s.rep.Steps
		wasteSum += s.wasteSum
		batchSum += s.batchSum
		names := make([]string, 0, len(s.classes))
		for name := range s.classes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := s.classes[name]
			dst := ensure(name, a.slo)
			dst.served += a.served
			dst.ttft.merge(a.ttft)
			dst.e2e.merge(a.e2e)
		}
		allTTFT.merge(s.allTTFT)
		allE2E.merge(s.allE2E)
		for c, n := range s.classPreempt {
			preempt[c] += n
		}
		for c, t := range s.classTokenSteps {
			b := tokenSteps[c]
			if b == nil {
				b = new(float64)
				tokenSteps[c] = b
			}
			*b += *t
		}
		totalTokenSteps += s.totalTokenSteps
	}
	m.Steps = steps
	if steps > 0 {
		m.MeanWaste = wasteSum / float64(steps)
		m.MeanBatch = batchSum / float64(steps)
	}
	m.Classes = classRows(merged, steps, preempt, tokenSteps, totalTokenSteps)
	m.TTFT = allTTFT.summary()
	m.E2E = allE2E.summary()
	m.RetainedSamples, m.SketchedSamples = digestFootprint(merged, allTTFT, allE2E)
	return m
}
