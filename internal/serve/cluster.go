package serve

import (
	"fmt"
	"sort"
	"time"
)

// DispatchPolicy names a cluster-level dispatch policy: how the admission
// queue assigns an arriving request to a replica.
type DispatchPolicy string

const (
	// DispatchRoundRobin cycles arrivals over the replicas in order —
	// oblivious to load, the baseline every smarter policy is measured
	// against.
	DispatchRoundRobin DispatchPolicy = "round-robin"
	// DispatchJSQ joins the shortest queue: the replica with the fewest
	// unfinished requests (queued plus decoding), ties to the lowest
	// replica index.
	DispatchJSQ DispatchPolicy = "jsq"
	// DispatchLeastKV picks the replica with the least outstanding KV
	// demand — the sum of total tokens (prompt+output) of its unfinished
	// requests, a token-weighted shortest queue that sees the difference
	// between ten chat turns and ten long batch jobs.
	DispatchLeastKV DispatchPolicy = "least-kv"
)

// DispatchPolicies lists the accepted policies in presentation order.
func DispatchPolicies() []DispatchPolicy {
	return []DispatchPolicy{DispatchRoundRobin, DispatchJSQ, DispatchLeastKV}
}

// ParseDispatch resolves a policy name ("" = round-robin).
func ParseDispatch(name string) (DispatchPolicy, error) {
	switch DispatchPolicy(name) {
	case "":
		return DispatchRoundRobin, nil
	case DispatchRoundRobin, DispatchJSQ, DispatchLeastKV:
		return DispatchPolicy(name), nil
	}
	return "", fmt.Errorf("serve: unknown dispatch policy %q (round-robin, jsq, least-kv)", name)
}

// ClusterConfig tunes a multi-replica serving cluster.
type ClusterConfig struct {
	// Replicas is the number of replica servers (must be >= 1). Each
	// replica owns its cache manager and its own virtual clock.
	Replicas int
	// Dispatch assigns arrivals to replicas ("" = round-robin).
	Dispatch DispatchPolicy
	// Server is the per-replica continuous-batching configuration,
	// including the priority-aging rate (Server.Aging).
	Server ServerConfig
}

// ClusterReport summarizes one cluster serving run.
type ClusterReport struct {
	// Report is the cluster-level view. Counters (served, steps, admit
	// failures, blocked steps, preemptions) are summed over replicas,
	// MeanWaste and MeanBatch are step-weighted means, Duration is the
	// longest replica makespan, and PeakUsed/PeakLogical sum the per-
	// replica peaks (an upper bound on the cluster-wide footprint, since
	// replicas peak at different virtual times). The latency percentiles
	// and per-class rows are recomputed from the union of the replicas'
	// raw per-request samples — merging percentiles by averaging them
	// would be statistically meaningless.
	Report
	// Replicas are the per-replica reports, indexed by replica.
	Replicas []Report
	// Assigned[i] is how many requests the dispatcher sent to replica i.
	Assigned []int
}

// ServeCluster runs the requests on a multi-replica serving cluster: a
// cluster-level admission queue releases each request at its arrival time to
// one replica, chosen by the dispatch policy from the replicas' states at
// that instant, and every replica runs the same SLO-aware continuous-
// batching loop as Serve on its own cache manager and virtual clock. newMgr
// builds replica i's cache manager — each replica must get its own manager
// (and, for pool-backed managers, its own allocator and device).
//
// The co-simulation is event-driven and fully deterministic: the scheduler
// always advances the earliest event (an arrival, or the replica with the
// smallest next-event time, ties to the lowest replica index), so the same
// input produces a byte-identical ClusterReport on every run. With one
// replica the scheduler degenerates to exactly Serve's loop — dispatched
// requests carry their input position as the FIFO ticket, replaying Serve's
// up-front numbering whatever order the input arrived in — and the output
// is identical to Serve's report.
//
// On a replica error (a request that fits nowhere, a stuck decode) the
// partial reports of every replica are sealed and returned with the error;
// requests still waiting in the cluster queue appear in the merged class
// roster with nothing served, exactly as Serve reports requests it never
// started.
func ServeCluster(reqs []Request, newMgr func(replica int) CacheManager, cfg ClusterConfig) (ClusterReport, error) {
	if cfg.Replicas <= 0 {
		return ClusterReport{}, fmt.Errorf("serve: cluster needs >= 1 replica, got %d", cfg.Replicas)
	}
	if newMgr == nil {
		return ClusterReport{}, fmt.Errorf("serve: cluster needs a cache-manager factory")
	}
	dispatch, err := ParseDispatch(string(cfg.Dispatch))
	if err != nil {
		return ClusterReport{}, err
	}

	// The cluster admission queue: input indexes in arrival-time order,
	// input order preserved among ties. Dispatch releases requests in this
	// order but tickets them by input index, matching Serve's numbering.
	queue := make([]int, len(reqs))
	for i := range queue {
		queue[i] = i
	}
	sort.SliceStable(queue, func(i, j int) bool {
		return reqs[queue[i]].ArrivalAt < reqs[queue[j]].ArrivalAt
	})

	replicas := make([]*server, cfg.Replicas)
	for i := range replicas {
		s, err := newEmptyServer(newMgr(i), cfg.Server)
		if err != nil {
			return ClusterReport{}, err
		}
		// Reserve the global ticket range [0, len(reqs)) for dispatched
		// requests; requeued preemptions draw above it, exactly as Serve's
		// up-front enqueue would have numbered them.
		s.nextTkt = int64(len(reqs))
		replicas[i] = s
	}

	assigned := make([]int, cfg.Replicas)
	dispatchedTokens := make([]int64, cfg.Replicas)
	rr := 0
	pick := func() int {
		switch dispatch {
		case DispatchJSQ:
			best, bestLen := 0, -1
			for i, s := range replicas {
				if l := s.pendingLen() + len(s.running); bestLen < 0 || l < bestLen {
					best, bestLen = i, l
				}
			}
			return best
		case DispatchLeastKV:
			best, bestLoad := 0, int64(-1)
			for i, s := range replicas {
				if l := dispatchedTokens[i] - s.doneTokens; bestLoad < 0 || l < bestLoad {
					best, bestLoad = i, l
				}
			}
			return best
		default: // round-robin
			p := rr
			rr = (rr + 1) % len(replicas)
			return p
		}
	}

	qi := 0
	seal := func(err error) (ClusterReport, error) {
		rep := ClusterReport{
			Replicas: make([]Report, len(replicas)),
			Assigned: assigned,
		}
		for i, s := range replicas {
			s.finish()
			rep.Replicas[i] = s.rep
		}
		// Requests never released from the cluster queue (the run failed
		// first) still belong in the merged roster, unserved.
		undispatched := make([]Request, 0, len(queue)-qi)
		for _, idx := range queue[qi:] {
			undispatched = append(undispatched, reqs[idx])
		}
		rep.Report = mergeReports(replicas, undispatched)
		return rep, err
	}

	for {
		// The earliest replica event; ties go to the lowest index so the
		// schedule is deterministic.
		tRep, ri := time.Duration(0), -1
		for i, s := range replicas {
			if t, ok := s.nextEventTime(); ok && (ri == -1 || t < tRep) {
				tRep, ri = t, i
			}
		}
		// Dispatch an arrival when it is due at or before the next replica
		// event — the policy then sees every replica's state as of the
		// arrival instant, exactly like admission sees arrivals that
		// landed during the previous decode step.
		if qi < len(queue) && (ri == -1 || reqs[queue[qi]].ArrivalAt <= tRep) {
			req := reqs[queue[qi]]
			r := pick()
			replicas[r].addRequest(req, int64(queue[qi]))
			assigned[r]++
			dispatchedTokens[r] += int64(req.TotalTokens())
			qi++
			continue
		}
		if ri == -1 {
			break // drained: no arrivals left, every replica idle
		}
		if _, err := replicas[ri].runOnce(); err != nil {
			return seal(fmt.Errorf("serve: replica %d: %w", ri, err))
		}
	}
	return seal(nil)
}

// mergeReports builds the cluster-level Report from the replicas' raw
// per-request records: percentiles of the merged samples, never averages of
// per-replica percentiles. undispatched requests (present only when a
// failed run sealed early) join the class roster without samples.
func mergeReports(replicas []*server, undispatched []Request) Report {
	var m Report
	var steps int
	var wasteSum, batchSum float64
	var recs []*track
	preempt := map[string]int64{}
	tokenSteps := map[string]float64{}
	var totalTokenSteps float64
	for i := range undispatched {
		recs = append(recs, &track{req: undispatched[i]})
	}
	for _, s := range replicas {
		m.Served += s.rep.Served
		m.PeakUsed += s.rep.PeakUsed
		m.PeakLogical += s.rep.PeakLogical
		m.AdmitFailures += s.rep.AdmitFailures
		m.BlockedSteps += s.rep.BlockedSteps
		m.Preemptions += s.rep.Preemptions
		if s.rep.Duration > m.Duration {
			m.Duration = s.rep.Duration
		}
		steps += s.rep.Steps
		wasteSum += s.wasteSum
		batchSum += s.batchSum
		recs = append(recs, s.recs...)
		for c, n := range s.classPreempt {
			preempt[c] += n
		}
		for c, t := range s.classTokenSteps {
			tokenSteps[c] += t
		}
		totalTokenSteps += s.totalTokenSteps
	}
	m.Steps = steps
	if steps > 0 {
		m.MeanWaste = wasteSum / float64(steps)
		m.MeanBatch = batchSum / float64(steps)
	}
	m.Classes = classReports(recs, steps, preempt, tokenSteps, totalTokenSteps)
	allTTFT, allE2E := latencySamples(recs)
	m.TTFT = summarize(allTTFT)
	m.E2E = summarize(allE2E)
	return m
}
