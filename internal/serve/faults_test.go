package serve

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("crash@t=12s:r1/restart@t=14s:r1/crash@t=2s:r0")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []FaultEvent{
		{At: 12 * time.Second, Kind: FaultCrash, Replica: 1},
		{At: 14 * time.Second, Kind: FaultRestart, Replica: 1},
		{At: 2 * time.Second, Kind: FaultCrash, Replica: 0},
	}
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("plan %+v, want %+v", plan, want)
	}
	for _, bad := range []string{
		"", "///", "crash", "crash@12s:r1", "reboot@t=1s:r0", "crash@t=1s:x0",
		"crash@t=-1s:r0", "crash@t=1s:r-1", "crash@t=1s:r0.5", "crash@t=zz:r0",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q): expected error", bad)
		}
	}
}

func TestFaultConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		fc   FaultConfig
		ok   bool
	}{
		{"zero", FaultConfig{}, true},
		{"mttf+mttr", FaultConfig{MTTF: time.Second, MTTR: 100 * time.Millisecond}, true},
		{"mttf-alone", FaultConfig{MTTF: time.Second}, false},
		{"mttr-alone", FaultConfig{MTTR: time.Second}, false},
		{"negative-mttf", FaultConfig{MTTF: -time.Second, MTTR: time.Second}, false},
		{"plan", FaultConfig{Plan: []FaultEvent{{At: time.Second, Kind: FaultCrash, Replica: 0}}}, true},
		{"plan-and-mttf", FaultConfig{MTTF: time.Second, MTTR: time.Second,
			Plan: []FaultEvent{{At: time.Second, Kind: FaultCrash}}}, false},
		{"plan-replica-out-of-range", FaultConfig{Plan: []FaultEvent{{At: time.Second, Kind: FaultCrash, Replica: 2}}}, false},
		{"plan-restart-first", FaultConfig{Plan: []FaultEvent{{At: time.Second, Kind: FaultRestart, Replica: 0}}}, false},
		{"plan-double-crash", FaultConfig{Plan: []FaultEvent{
			{At: time.Second, Kind: FaultCrash, Replica: 0},
			{At: 2 * time.Second, Kind: FaultCrash, Replica: 0}}}, false},
		{"plan-same-instant", FaultConfig{Plan: []FaultEvent{
			{At: time.Second, Kind: FaultCrash, Replica: 0},
			{At: time.Second, Kind: FaultRestart, Replica: 0}}}, false},
		{"plan-alternates", FaultConfig{Plan: []FaultEvent{
			{At: time.Second, Kind: FaultCrash, Replica: 0},
			{At: 2 * time.Second, Kind: FaultRestart, Replica: 0},
			{At: 3 * time.Second, Kind: FaultCrash, Replica: 0}}}, true},
	}
	for _, tc := range cases {
		err := tc.fc.validate(2)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRecoveryConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		rc   RecoveryConfig
		ok   bool
	}{
		{"zero", RecoveryConfig{}, true},
		{"full", RecoveryConfig{Retries: 3, RetryDelay: time.Millisecond, Backoff: 1.5, RetryBudget: 8}, true},
		{"negative-retries", RecoveryConfig{Retries: -1}, false},
		{"negative-delay", RecoveryConfig{RetryDelay: -time.Second}, false},
		{"backoff-below-one", RecoveryConfig{Backoff: 0.5}, false},
		{"negative-budget", RecoveryConfig{RetryBudget: -1}, false},
	} {
		err := tc.rc.validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestMTTFStreamDeterministic pins the seeded fault source: identical
// configuration, identical event sequence; different seeds, different ones.
func TestMTTFStreamDeterministic(t *testing.T) {
	draw := func(seed uint64) []FaultEvent {
		f := newFaultSource(FaultConfig{MTTF: time.Second, MTTR: 100 * time.Millisecond, Seed: seed}, 3)
		out := make([]FaultEvent, 0, 20)
		for i := 0; i < 20; i++ {
			out = append(out, f.pop())
		}
		return out
	}
	a, b := draw(7), draw(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault streams")
	}
	if reflect.DeepEqual(a, draw(8)) {
		t.Fatal("different seeds produced identical fault streams")
	}
	last := map[int]FaultKind{}
	prevAt := map[int]time.Duration{}
	for _, e := range a {
		if k, ok := last[e.Replica]; ok {
			if k == e.Kind {
				t.Fatalf("replica %d: consecutive %v events", e.Replica, e.Kind)
			}
			if e.At <= prevAt[e.Replica] {
				t.Fatalf("replica %d: non-increasing event times", e.Replica)
			}
		} else if e.Kind != FaultCrash {
			t.Fatalf("replica %d: first event %v, want crash", e.Replica, e.Kind)
		}
		last[e.Replica], prevAt[e.Replica] = e.Kind, e.At
	}
}

// TestZeroFaultDifferential is the tentpole acceptance gate: with no fault
// events firing, the fault-capable scheduler must reproduce the pre-fault
// cluster byte for byte across dispatch policies, elasticity and stealing —
// whether the fault machinery is absent (zero config), armed with recovery
// knobs that never trigger, or armed with an MTTF so long no crash lands
// inside the run.
func TestZeroFaultDifferential(t *testing.T) {
	reqs := mixedStream(60)
	for _, cfg := range []ClusterConfig{
		{Replicas: 2, Server: ServerConfig{MaxBatch: 4}},
		{Replicas: 3, Dispatch: DispatchJSQ, Server: ServerConfig{MaxBatch: 4}},
		{Replicas: 2, Dispatch: DispatchLeastKV, Server: ServerConfig{MaxBatch: 4}, Steal: true},
		{MinReplicas: 1, MaxReplicas: 3, Server: ServerConfig{MaxBatch: 4}},
		{MinReplicas: 1, MaxReplicas: 3, Server: ServerConfig{MaxBatch: 4}, Steal: true, Dispatch: DispatchJSQ},
	} {
		base, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), cfg)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		armed := cfg
		armed.Recovery = RecoveryConfig{Retries: 3, Backoff: 2, RetryBudget: 4}
		got, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), armed)
		if err != nil {
			t.Fatalf("armed recovery: %v", err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("%+v: recovery knobs without faults changed the report", cfg)
		}
		quiet := cfg
		quiet.Faults = FaultConfig{MTTF: 1000 * time.Hour, MTTR: time.Second, Seed: 7}
		got, err = ServeCluster(reqs, chunkedFactory(8*sim.GiB), quiet)
		if err != nil {
			t.Fatalf("quiet faults: %v", err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("%+v: armed-but-silent fault source changed the report", cfg)
		}
		if base.Availability != 1 {
			t.Fatalf("zero-fault availability %v, want exactly 1", base.Availability)
		}
		if base.Goodput != base.Served {
			t.Fatalf("no-deadline goodput %d != served %d", base.Goodput, base.Served)
		}
		if base.Crashes != 0 || base.Restarts != 0 || base.Retries != 0 || base.Lost != 0 || base.Shed != 0 {
			t.Fatalf("zero-fault run reported fault activity: %+v", base.Report)
		}
	}
}

// TestScriptedCrashPreservesTTFT mirrors the preemption contract for
// crashes: a request that streamed its first token before its replica died
// keeps that TTFT through recompute-from-scratch re-dispatch, while its E2E
// stretches past the restart.
func TestScriptedCrashPreservesTTFT(t *testing.T) {
	reqs := []Request{{ID: 0, PromptLen: 32, OutputLen: 200}}
	run := func(plan []FaultEvent, retries int) ClusterReport {
		rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
			Replicas: 1,
			Server:   ServerConfig{MaxBatch: 2},
			Faults:   FaultConfig{Plan: plan},
			Recovery: RecoveryConfig{Retries: retries},
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return rep
	}
	base := run(nil, 0)
	// Crash well after the first token (one step in) but long before the
	// 200-step decode completes; restart shortly after.
	faulty := run([]FaultEvent{
		{At: 2 * time.Second, Kind: FaultCrash, Replica: 0},
		{At: 3 * time.Second, Kind: FaultRestart, Replica: 0},
	}, 1)
	if faulty.Crashes != 1 || faulty.Restarts != 1 || faulty.Retries != 1 {
		t.Fatalf("crash accounting: crashes=%d restarts=%d retries=%d", faulty.Crashes, faulty.Restarts, faulty.Retries)
	}
	if faulty.Served != 1 || faulty.Lost != 0 {
		t.Fatalf("request not recovered: served=%d lost=%d", faulty.Served, faulty.Lost)
	}
	if faulty.TTFT.P50 != base.TTFT.P50 {
		t.Fatalf("TTFT not preserved across crash: %v, fault-free %v", faulty.TTFT.P50, base.TTFT.P50)
	}
	if faulty.E2E.P50 <= base.E2E.P50 {
		t.Fatalf("E2E %v did not stretch past fault-free %v", faulty.E2E.P50, base.E2E.P50)
	}
	if faulty.Availability >= 1 || faulty.Availability <= 0 {
		t.Fatalf("availability %v, want in (0,1)", faulty.Availability)
	}
}

// TestCrashWithoutRetryLosesInflight: the zero-value recovery policy
// abandons in-flight work on a crash, but queued requests are still
// re-dispatched for free.
func TestCrashWithoutRetryLosesInflight(t *testing.T) {
	// Two requests: one decoding when the crash hits, one still queued
	// behind the batch cap.
	reqs := []Request{
		{ID: 0, PromptLen: 32, OutputLen: 400},
		{ID: 1, PromptLen: 32, OutputLen: 20},
	}
	rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
		Replicas: 2,
		Server:   ServerConfig{MaxBatch: 1},
		Faults: FaultConfig{Plan: []FaultEvent{
			{At: time.Second, Kind: FaultCrash, Replica: 0},
			{At: 2 * time.Second, Kind: FaultRestart, Replica: 0},
		}},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Lost != 1 {
		t.Fatalf("lost %d in-flight requests, want 1 (report %+v)", rep.Lost, rep.Report)
	}
	if rep.Served != 1 {
		t.Fatalf("served %d, want the queued request recovered", rep.Served)
	}
	if rep.Retries != 0 {
		t.Fatalf("retries %d with a zero-retry policy", rep.Retries)
	}
}

// TestRetryBudgetCapsClass: a per-class budget of 1 grants the first
// crashed in-flight request of the class its retry and abandons the rest.
func TestRetryBudgetCapsClass(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: "chat", PromptLen: 32, OutputLen: 400},
		{ID: 1, Class: "chat", PromptLen: 32, OutputLen: 400},
	}
	rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
		Replicas: 2,
		Server:   ServerConfig{MaxBatch: 2},
		Dispatch: DispatchRoundRobin,
		Faults: FaultConfig{Plan: []FaultEvent{
			{At: time.Second, Kind: FaultCrash, Replica: 0},
			{At: 1100 * time.Millisecond, Kind: FaultCrash, Replica: 1},
			{At: 2 * time.Second, Kind: FaultRestart, Replica: 0},
			{At: 2100 * time.Millisecond, Kind: FaultRestart, Replica: 1},
		}},
		Recovery: RecoveryConfig{Retries: 3, RetryBudget: 1},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The first crash grants the class its single budgeted retry; the
	// retried request lands on replica 1 and is in-flight again when that
	// replica crashes too, so both it and replica 1's own request are
	// denied and lost.
	if rep.Retries != 1 || rep.Lost != 2 {
		t.Fatalf("retries=%d lost=%d, want exactly 1 retry granted and 2 lost", rep.Retries, rep.Lost)
	}
}

// TestAllDownParksArrivals: with the only replica down, arrivals park in
// the re-dispatch pool and are served after the restart.
func TestAllDownParksArrivals(t *testing.T) {
	reqs := []Request{
		{ID: 0, PromptLen: 16, OutputLen: 8},
		{ID: 1, PromptLen: 16, OutputLen: 8, ArrivalAt: 1500 * time.Millisecond},
	}
	rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
		Replicas: 1,
		Server:   ServerConfig{MaxBatch: 2},
		Faults: FaultConfig{Plan: []FaultEvent{
			{At: time.Second, Kind: FaultCrash, Replica: 0},
			{At: 3 * time.Second, Kind: FaultRestart, Replica: 0},
		}},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Served != 2 {
		t.Fatalf("served %d, want both (one parked during the outage)", rep.Served)
	}
	if e2e := rep.E2E.P99; e2e < 1500*time.Millisecond {
		t.Fatalf("parked arrival E2E %v should straddle the outage", e2e)
	}
}

// TestStrandedPoolSealsWithError: a crash with no scripted restart and no
// retryable target strands displaced requests; the run must terminate with
// a sealed report and a clear error, never loop.
func TestStrandedPoolSealsWithError(t *testing.T) {
	reqs := mixedStream(12)
	rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
		Replicas: 1,
		Server:   ServerConfig{MaxBatch: 2},
		Faults:   FaultConfig{Plan: []FaultEvent{{At: 200 * time.Millisecond, Kind: FaultCrash, Replica: 0}}},
	})
	if err == nil || !strings.Contains(err.Error(), "stranded") {
		t.Fatalf("expected stranded-pool error, got %v", err)
	}
	if rep.Crashes != 1 {
		t.Fatalf("sealed report lost the crash: %+v", rep.Report)
	}
	// Every request is accounted for somewhere: served, lost, or in the
	// roster as unserved.
	if got := len(rep.Classes); got == 0 {
		t.Fatal("sealed report carries no class roster")
	}
}

// TestTimeoutGoodputSingleServer exercises deadlines on the plain Serve
// loop: an overloaded server with a tight timeout aborts expired requests,
// splits completions into goodput and late, and never reports more goodput
// than served.
func TestTimeoutGoodputSingleServer(t *testing.T) {
	reqs := make([]Request, 40)
	for i := range reqs {
		reqs[i] = Request{ID: i, PromptLen: 64, OutputLen: 32}
	}
	mgr := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	if rep.DeadlineMisses == 0 {
		t.Fatalf("expected deadline misses on an overloaded server: %+v", rep)
	}
	if rep.Goodput > rep.Served {
		t.Fatalf("goodput %d exceeds served %d", rep.Goodput, rep.Served)
	}
	if rep.Goodput+int(rep.DeadlineMisses) < len(reqs)-int(rep.Shed) {
		t.Fatalf("requests unaccounted: goodput=%d misses=%d shed=%d of %d",
			rep.Goodput, rep.DeadlineMisses, rep.Shed, len(reqs))
	}
	if mgr.LogicalBytes() != 0 {
		t.Fatalf("aborted requests leaked KV: %d logical bytes", mgr.LogicalBytes())
	}
}

// TestShedRejectsDoomedRequests: with shedding on, requests whose floor
// cannot meet the deadline are rejected up front and stop competing for
// the batch — so survivors' goodput can only improve.
func TestShedRejectsDoomedRequests(t *testing.T) {
	reqs := make([]Request, 40)
	for i := range reqs {
		reqs[i] = Request{ID: i, PromptLen: 64, OutputLen: 32}
	}
	run := func(shed bool) Report {
		mgr := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
		rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4, Timeout: 2 * time.Second, Shed: shed})
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
		return rep
	}
	noShed, withShed := run(false), run(true)
	if withShed.Shed == 0 {
		t.Fatalf("expected shedding under overload: %+v", withShed)
	}
	if withShed.Goodput < noShed.Goodput {
		t.Fatalf("shedding reduced goodput: %d < %d", withShed.Goodput, noShed.Goodput)
	}
	if withShed.Steps > noShed.Steps {
		t.Fatalf("shedding burned more steps: %d > %d", withShed.Steps, noShed.Steps)
	}
	// A request shed at admission never decodes: shed + misses + goodput
	// covers the stream.
	if got := withShed.Goodput + int(withShed.DeadlineMisses) + int(withShed.Shed); got != len(reqs) {
		t.Fatalf("accounting: goodput+misses+shed = %d, want %d", got, len(reqs))
	}
}

// TestShedRequiresTimeout: shedding without a deadline is rejected by both
// the server and the cluster validators.
func TestShedRequiresTimeout(t *testing.T) {
	mgr := NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64)
	if _, err := Serve(mixedStream(2), mgr, ServerConfig{MaxBatch: 2, Shed: true}); err == nil {
		t.Fatal("Serve accepted shed without timeout")
	}
	if _, err := ServeCluster(mixedStream(2), chunkedFactory(sim.GiB),
		ClusterConfig{Replicas: 1, Server: ServerConfig{MaxBatch: 2, Shed: true}}); err == nil {
		t.Fatal("ServeCluster accepted shed without timeout")
	}
}

// TestClusterFaultConfigRejected: cluster validation catches bad fault and
// recovery settings before any replica spawns.
func TestClusterFaultConfigRejected(t *testing.T) {
	base := ClusterConfig{Replicas: 2, Server: ServerConfig{MaxBatch: 2}}
	for name, mut := range map[string]func(*ClusterConfig){
		"mttf-alone":     func(c *ClusterConfig) { c.Faults.MTTF = time.Second },
		"plan-too-wide":  func(c *ClusterConfig) { c.Faults.Plan = []FaultEvent{{At: time.Second, Kind: FaultCrash, Replica: 5}} },
		"bad-backoff":    func(c *ClusterConfig) { c.Recovery.Backoff = 0.25 },
		"neg-retries":    func(c *ClusterConfig) { c.Recovery.Retries = -1 },
		"neg-timeout":    func(c *ClusterConfig) { c.Server.Timeout = -time.Second },
		"shed-no-expiry": func(c *ClusterConfig) { c.Server.Shed = true },
	} {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", name)
		}
		if _, err := ServeCluster(mixedStream(2), chunkedFactory(sim.GiB), cfg); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

// TestChaosDeterminism is the chaos suite: a seeded MTTF/MTTR fault process
// over an elastic, stealing, multi-class cluster must (a) produce byte-
// identical reports run after run, and (b) uphold the structural
// invariants — no orphaned KV slots, zero outstanding-KV skew on surviving
// replicas, availability in [0,1], goodput bounded by served.
func TestChaosDeterminism(t *testing.T) {
	reqs := mixedStream(80)
	for _, cfg := range []ClusterConfig{
		{Replicas: 3, Server: ServerConfig{MaxBatch: 4, Timeout: 30 * time.Second},
			Faults:   FaultConfig{MTTF: 2 * time.Second, MTTR: 300 * time.Millisecond, Seed: 11},
			Recovery: RecoveryConfig{Retries: 4, Backoff: 2}},
		{MinReplicas: 1, MaxReplicas: 4, Steal: true, Dispatch: DispatchLeastKV,
			Server:   ServerConfig{MaxBatch: 4, Timeout: 30 * time.Second, Shed: true},
			Faults:   FaultConfig{MTTF: 1500 * time.Millisecond, MTTR: 200 * time.Millisecond, Seed: 3},
			Recovery: RecoveryConfig{Retries: 3, RetryDelay: 20 * time.Millisecond, Backoff: 1.5, RetryBudget: 16}},
	} {
		var mgrs []CacheManager
		factory := func(i int) CacheManager {
			m := chunkedFactory(8 * sim.GiB)(i)
			mgrs = append(mgrs, m)
			return m
		}
		c, err := newClusterSched(reqs, factory, cfg)
		if err != nil {
			t.Fatalf("sched: %v", err)
		}
		rep, err := c.run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if rep.Crashes == 0 || rep.Restarts == 0 {
			t.Fatalf("testbed too calm: crashes=%d restarts=%d — chaos untested", rep.Crashes, rep.Restarts)
		}
		for i, r := range c.fleet {
			if load := r.dispatchedTokens - r.srv.doneTokens; load != 0 {
				t.Errorf("replica %d finished with outstanding-KV estimate %d, want 0", i, load)
			}
		}
		for i, m := range mgrs {
			if lb := m.LogicalBytes(); lb != 0 {
				t.Errorf("manager %d holds %d logical bytes after the run — orphaned KV slots", i, lb)
			}
		}
		if rep.Availability < 0 || rep.Availability > 1 {
			t.Errorf("availability %v outside [0,1]", rep.Availability)
		}
		if rep.Availability >= 1 {
			t.Errorf("availability %v with %d crashes, want < 1", rep.Availability, rep.Crashes)
		}
		if rep.Goodput > rep.Served {
			t.Errorf("goodput %d exceeds served %d", rep.Goodput, rep.Served)
		}
		if total := rep.Served + rep.Lost + int(rep.Shed) + int(rep.DeadlineMisses); total < len(reqs) {
			// DeadlineMisses can double-count a late completion, so this is
			// a lower-bound check: every request ends served, lost, shed,
			// or timed out.
			t.Errorf("only %d of %d requests accounted for", total, len(reqs))
		}

		again, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), cfg)
		if err != nil {
			t.Fatalf("rerun: %v", err)
		}
		if !reflect.DeepEqual(rep, again) {
			t.Fatal("same seed and fault config produced different reports")
		}
	}
}
