package serve

import (
	"fmt"
)

// ServerConfig tunes the continuous-batching loop.
type ServerConfig struct {
	// MaxBatch caps concurrently decoding sequences.
	MaxBatch int
}

// Report summarizes one serving run.
type Report struct {
	Served        int     // requests completed
	Steps         int     // decode steps executed
	PeakUsed      int64   // peak bytes taken by the cache manager
	PeakLogical   int64   // peak bytes of real KV data
	MeanWaste     float64 // average per-step waste ratio
	MeanBatch     float64 // average decoding batch size
	AdmitFailures int64   // admissions deferred for lack of memory
	Preemptions   int64   // sequences evicted mid-decode and requeued
}

// Utilization returns peak logical / peak used.
func (r Report) Utilization() float64 {
	if r.PeakUsed == 0 {
		return 1
	}
	return float64(r.PeakLogical) / float64(r.PeakUsed)
}

// Serve runs the requests to completion under continuous batching: admit
// while memory and the batch cap allow, append one token per active
// sequence per step, release completions, and — when a mid-decode Append
// hits the memory wall — preempt the youngest sequence and requeue it
// (vLLM's recompute-preemption).
func Serve(reqs []Request, mgr CacheManager, cfg ServerConfig) (Report, error) {
	if cfg.MaxBatch <= 0 {
		return Report{}, fmt.Errorf("serve: max batch %d", cfg.MaxBatch)
	}
	type active struct {
		req       Request
		handle    SeqHandle
		remaining int
	}

	pending := append([]Request(nil), reqs...)
	var running []*active
	var rep Report
	var batchSum, wasteSum float64

	release := func(i int) {
		mgr.Release(running[i].handle)
		running = append(running[:i], running[i+1:]...)
	}
	// preemptYoungest evicts the most recently admitted sequence other
	// than the one at index keep, requeuing its request in full.
	preemptYoungest := func(keep int) bool {
		for i := len(running) - 1; i >= 0; i-- {
			if i == keep {
				continue
			}
			rep.Preemptions++
			pending = append(pending, running[i].req)
			release(i)
			return true
		}
		return false
	}

	for len(pending) > 0 || len(running) > 0 {
		// Admission: fill the batch while memory lasts.
		for len(running) < cfg.MaxBatch && len(pending) > 0 {
			h, err := mgr.Admit(pending[0])
			if err != nil {
				rep.AdmitFailures++
				if len(running) == 0 {
					return rep, fmt.Errorf("serve: request %d does not fit even alone: %w", pending[0].ID, err)
				}
				break // head-of-line waits for capacity
			}
			running = append(running, &active{req: pending[0], handle: h, remaining: pending[0].OutputLen})
			pending = pending[1:]
		}

		// One decode step across the batch.
		rep.Steps++
		batchSum += float64(len(running))
		for i := 0; i < len(running); i++ {
			a := running[i]
			if a.remaining == 0 {
				continue
			}
			err := mgr.Append(a.handle)
			for err != nil {
				if !preemptYoungest(i) {
					return rep, fmt.Errorf("serve: request %d stuck mid-decode: %w", a.req.ID, err)
				}
				// Indexes shifted; find a again.
				i = indexOf(running, a)
				err = mgr.Append(a.handle)
			}
			a.remaining--
		}

		if u := mgr.UsedBytes(); u > rep.PeakUsed {
			rep.PeakUsed = u
		}
		if l := mgr.LogicalBytes(); l > rep.PeakLogical {
			rep.PeakLogical = l
		}
		wasteSum += WasteRatio(mgr)

		// Retire completions.
		for i := len(running) - 1; i >= 0; i-- {
			if running[i].remaining == 0 {
				rep.Served++
				release(i)
			}
		}
	}

	if rep.Steps > 0 {
		rep.MeanWaste = wasteSum / float64(rep.Steps)
		rep.MeanBatch = batchSum / float64(rep.Steps)
	}
	return rep, nil
}

func indexOf[T comparable](s []T, v T) int {
	for i, e := range s {
		if e == v {
			return i
		}
	}
	return -1
}
