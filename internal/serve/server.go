package serve

import (
	"fmt"
	"sort"
	"time"
)

// Default step costs. Latency is simulated, not measured: one decode step
// across the batch costs StepTime, and every prompt token prefilled in a
// step adds PrefillTokenTime — A100-class magnitudes, enough to turn
// queueing and preemption into TTFT/E2E differences.
const (
	DefaultStepTime         = 30 * time.Millisecond
	DefaultPrefillTokenTime = 100 * time.Microsecond
)

// ServerConfig tunes the continuous-batching loop.
type ServerConfig struct {
	// MaxBatch caps concurrently decoding sequences.
	MaxBatch int

	// StepTime is the simulated duration of one decode step across the
	// batch (0 = DefaultStepTime).
	StepTime time.Duration

	// PrefillTokenTime is the simulated cost per prompt token prefilled
	// during a step (0 = DefaultPrefillTokenTime).
	PrefillTokenTime time.Duration
}

// LatencySummary holds nearest-rank percentiles of a latency sample.
type LatencySummary struct {
	P50, P95, P99 time.Duration
}

// summarize computes the nearest-rank percentiles of samples (sorted in
// place).
func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) time.Duration {
		idx := int(q*float64(len(samples))+0.9999999) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	return LatencySummary{P50: at(0.50), P95: at(0.95), P99: at(0.99)}
}

// ClassReport is the per-client-class (per-SLO-class) slice of a serving
// run: the latency distribution each tenant actually experienced, plus how
// often it was evicted and how much KV cache it held.
type ClassReport struct {
	Class string // client class name ("default" when requests carry none)
	SLO   string // SLO tag carried by the class's requests

	Served      int   // requests completed
	Preemptions int64 // evictions of this class's sequences

	// TTFT is time from arrival to the end of the step that prefilled the
	// request (its first output token); E2E is time from arrival to the
	// last generated token.
	TTFT, E2E LatencySummary

	// MeanKVTokens is the class's mean resident KV tokens per decode step;
	// KVShare is its fraction of the run's total token·steps — the
	// KV-cache occupancy attributable to the tenant.
	MeanKVTokens float64
	KVShare      float64
}

// Report summarizes one serving run.
type Report struct {
	Served        int     // requests completed
	Steps         int     // decode steps executed
	PeakUsed      int64   // peak bytes taken by the cache manager
	PeakLogical   int64   // peak bytes of real KV data
	MeanWaste     float64 // average per-step waste ratio
	MeanBatch     float64 // average decoding batch size
	AdmitFailures int64   // admissions deferred for lack of memory
	Preemptions   int64   // sequences evicted mid-decode and requeued

	// Duration is the virtual makespan of the run.
	Duration time.Duration
	// TTFT and E2E aggregate latency over all classes.
	TTFT, E2E LatencySummary
	// Classes is the per-client-class breakdown, sorted by class name.
	Classes []ClassReport
}

// Utilization returns peak logical / peak used.
func (r Report) Utilization() float64 {
	if r.PeakUsed == 0 {
		return 1
	}
	return float64(r.PeakLogical) / float64(r.PeakUsed)
}

// Class returns the report of the named class, or nil.
func (r Report) Class(name string) *ClassReport {
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}

// track is the lifetime record of one input request across preemptions.
type track struct {
	req        Request
	firstToken time.Duration
	hasFirst   bool
	done       time.Duration
}

func (t *track) class() string {
	if t.req.Class == "" {
		return "default"
	}
	return t.req.Class
}

// Serve runs the requests to completion under continuous batching: admit
// arrived requests while memory and the batch cap allow (highest priority
// first), append one token per active sequence per step, release
// completions, and — when a mid-decode Append hits the memory wall —
// preempt the lowest-priority, most recently admitted other sequence and
// requeue it in full (vLLM's recompute-preemption, made SLO-aware).
//
// Time is simulated on an internal virtual clock (see ServerConfig's step
// costs); per-request arrival, first-token and completion times feed the
// per-class TTFT/E2E percentiles in the report.
func Serve(reqs []Request, mgr CacheManager, cfg ServerConfig) (Report, error) {
	if cfg.MaxBatch <= 0 {
		return Report{}, fmt.Errorf("serve: max batch %d", cfg.MaxBatch)
	}
	stepTime := cfg.StepTime
	if stepTime == 0 {
		stepTime = DefaultStepTime
	}
	prefillTok := cfg.PrefillTokenTime
	if prefillTok == 0 {
		prefillTok = DefaultPrefillTokenTime
	}

	type active struct {
		rec        *track
		handle     SeqHandle
		remaining  int
		admitOrder int64
	}

	recs := make([]*track, len(reqs))
	pending := make([]*track, len(reqs))
	for i, r := range reqs {
		recs[i] = &track{req: r}
		pending[i] = recs[i]
	}

	var running []*active
	var rep Report
	var now time.Duration
	var batchSum, wasteSum float64
	var admitSeq int64
	classPreempt := map[string]int64{}
	classTokenSteps := map[string]float64{}
	var totalTokenSteps float64

	release := func(i int) {
		mgr.Release(running[i].handle)
		running = append(running[:i], running[i+1:]...)
	}
	// evict requeues the sequence at index i in full (vLLM's
	// recompute-preemption).
	evict := func(i int) {
		rep.Preemptions++
		classPreempt[running[i].rec.class()]++
		pending = append(pending, running[i].rec)
		release(i)
	}
	// preemptFor evicts a victim so the sequence at index keep can grow. A
	// victim must be strictly lower priority, or the same priority but
	// admitted later; among the eligible, lowest priority first, then the
	// most recently admitted. Higher-priority sequences are never evicted
	// (the SLO guarantee), and same-priority older ones are off limits so
	// the oldest sequence of the top class always makes monotonic progress
	// — without that rule two sequences that cannot coexist in memory
	// preempt each other forever, each eviction resetting the other's
	// decode.
	preemptFor := func(keep int) bool {
		req := running[keep]
		victim := -1
		for i, v := range running {
			if i == keep {
				continue
			}
			if v.rec.req.Priority > req.rec.req.Priority ||
				(v.rec.req.Priority == req.rec.req.Priority && v.admitOrder < req.admitOrder) {
				continue
			}
			if victim == -1 ||
				v.rec.req.Priority < running[victim].rec.req.Priority ||
				(v.rec.req.Priority == running[victim].rec.req.Priority &&
					v.admitOrder > running[victim].admitOrder) {
				victim = i
			}
		}
		if victim == -1 {
			return false
		}
		evict(victim)
		return true
	}
	// nextArrived picks the admission candidate: the highest-priority
	// already-arrived pending request, FIFO within a priority.
	nextArrived := func() int {
		best := -1
		for i, p := range pending {
			if p.req.ArrivalAt > now {
				continue
			}
			if best == -1 || p.req.Priority > pending[best].req.Priority {
				best = i
			}
		}
		return best
	}

	for len(pending) > 0 || len(running) > 0 {
		// Admission: fill the batch with arrived requests while memory
		// lasts.
		var prefillTokens int64
		for len(running) < cfg.MaxBatch {
			i := nextArrived()
			if i == -1 {
				break
			}
			rec := pending[i]
			h, err := mgr.Admit(rec.req)
			if err != nil {
				rep.AdmitFailures++
				if len(running) == 0 {
					return rep, fmt.Errorf("serve: request %d does not fit even alone: %w", rec.req.ID, err)
				}
				break // head-of-line waits for capacity
			}
			admitSeq++
			running = append(running, &active{rec: rec, handle: h, remaining: rec.req.OutputLen, admitOrder: admitSeq})
			prefillTokens += int64(rec.req.PromptLen)
			pending = append(pending[:i], pending[i+1:]...)
		}

		// Idle server: jump to the next arrival.
		if len(running) == 0 {
			next := pending[0].req.ArrivalAt
			for _, p := range pending[1:] {
				if p.req.ArrivalAt < next {
					next = p.req.ArrivalAt
				}
			}
			if next > now {
				now = next
			}
			continue
		}

		// One decode step across the batch.
		rep.Steps++
		batchSum += float64(len(running))
		for i := 0; i < len(running); i++ {
			a := running[i]
			if a.remaining == 0 {
				continue
			}
			evictedSelf := false
			err := mgr.Append(a.handle)
			for err != nil {
				if preemptFor(indexOf(running, a)) {
					// Indexes shifted; find a again.
					i = indexOf(running, a)
					err = mgr.Append(a.handle)
					continue
				}
				if len(running) == 1 {
					return rep, fmt.Errorf("serve: request %d stuck mid-decode: %w", a.rec.req.ID, err)
				}
				// No eligible victim (everything else is older or higher
				// priority): yield this slot and wait for capacity.
				i = indexOf(running, a)
				evict(i)
				evictedSelf = true
				break
			}
			if evictedSelf {
				i-- // the slot at i now holds the next sequence
				continue
			}
			a.remaining--
		}
		now += stepTime + time.Duration(prefillTokens)*prefillTok

		if u := mgr.UsedBytes(); u > rep.PeakUsed {
			rep.PeakUsed = u
		}
		if l := mgr.LogicalBytes(); l > rep.PeakLogical {
			rep.PeakLogical = l
		}
		wasteSum += WasteRatio(mgr)

		// End-of-step bookkeeping: first tokens, occupancy, completions.
		for i := len(running) - 1; i >= 0; i-- {
			a := running[i]
			if !a.rec.hasFirst {
				a.rec.hasFirst = true
				a.rec.firstToken = now
			}
			tokens := a.rec.req.PromptLen + (a.rec.req.OutputLen - a.remaining)
			classTokenSteps[a.rec.class()] += float64(tokens)
			totalTokenSteps += float64(tokens)
			if a.remaining == 0 {
				rep.Served++
				a.rec.done = now
				release(i)
			}
		}
	}

	if rep.Steps > 0 {
		rep.MeanWaste = wasteSum / float64(rep.Steps)
		rep.MeanBatch = batchSum / float64(rep.Steps)
	}
	rep.Duration = now
	rep.Classes = classReports(recs, rep.Steps, classPreempt, classTokenSteps, totalTokenSteps)
	var allTTFT, allE2E []time.Duration
	for _, rec := range recs {
		allTTFT = append(allTTFT, rec.firstToken-rec.req.ArrivalAt)
		allE2E = append(allE2E, rec.done-rec.req.ArrivalAt)
	}
	rep.TTFT = summarize(allTTFT)
	rep.E2E = summarize(allE2E)
	return rep, nil
}

// classReports aggregates per-request records into sorted per-class rows.
func classReports(recs []*track, steps int, preempt map[string]int64, tokenSteps map[string]float64, totalTokenSteps float64) []ClassReport {
	type agg struct {
		slo    string
		served int
		ttft   []time.Duration
		e2e    []time.Duration
	}
	byClass := map[string]*agg{}
	for _, rec := range recs {
		c := rec.class()
		a := byClass[c]
		if a == nil {
			a = &agg{slo: rec.req.SLO}
			byClass[c] = a
		}
		a.served++
		a.ttft = append(a.ttft, rec.firstToken-rec.req.ArrivalAt)
		a.e2e = append(a.e2e, rec.done-rec.req.ArrivalAt)
	}
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ClassReport, 0, len(names))
	for _, name := range names {
		a := byClass[name]
		cr := ClassReport{
			Class:       name,
			SLO:         a.slo,
			Served:      a.served,
			Preemptions: preempt[name],
			TTFT:        summarize(a.ttft),
			E2E:         summarize(a.e2e),
		}
		if steps > 0 {
			cr.MeanKVTokens = tokenSteps[name] / float64(steps)
		}
		if totalTokenSteps > 0 {
			cr.KVShare = tokenSteps[name] / totalTokenSteps
		}
		out = append(out, cr)
	}
	return out
}

func indexOf[T comparable](s []T, v T) int {
	for i, e := range s {
		if e == v {
			return i
		}
	}
	return -1
}
