package serve

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/container"
)

// Default step costs. Latency is simulated, not measured: one decode step
// across the batch costs StepTime, and every prompt token prefilled in a
// step adds PrefillTokenTime — A100-class magnitudes, enough to turn
// queueing and preemption into TTFT/E2E differences.
const (
	DefaultStepTime         = 30 * time.Millisecond
	DefaultPrefillTokenTime = 100 * time.Microsecond
)

// ServerConfig tunes the continuous-batching loop.
type ServerConfig struct {
	// MaxBatch caps concurrently decoding sequences.
	MaxBatch int

	// StepTime is the simulated duration of one decode step across the
	// batch (0 = DefaultStepTime).
	StepTime time.Duration

	// PrefillTokenTime is the simulated cost per prompt token prefilled
	// during a step (0 = DefaultPrefillTokenTime).
	PrefillTokenTime time.Duration

	// Aging is the priority-aging rate: a waiting request's effective
	// priority rises by one full priority level per Aging of queue wait,
	// so under a permanent high-priority overload a batch-class request
	// eventually outranks freshly arrived interactive ones instead of
	// starving. 0 disables aging (pure static priority, the original
	// behaviour). See (*server).rank for why aging keeps the O(log n)
	// queue indexes.
	Aging time.Duration

	// Timeout is the per-request completion deadline, measured from the
	// request's arrival: a request whose last token has not streamed by
	// ArrivalAt+Timeout has missed its SLO. The deadline is absolute — it
	// does not reset on preemption or crash re-dispatch. Expired requests
	// are aborted lazily (a queued one when admission next considers it, a
	// decoding one at the end of the step that crossed its deadline) and
	// counted in Report.DeadlineMisses; completions past the deadline
	// still count as Served but not as Goodput. 0 disables deadlines:
	// every completion is goodput.
	Timeout time.Duration

	// Shed enables deadline-aware admission shedding (requires Timeout):
	// when admission considers a request whose remaining slack cannot
	// cover even its minimum service time — PrefillTokenTime·PromptLen +
	// StepTime·OutputLen, the cost of running it alone on an idle server —
	// the request is rejected up front (Report.Shed) instead of burning
	// decode steps on a provably missed deadline. Graceful degradation
	// under overload: survivors' goodput rises because doomed requests
	// stop competing for the batch.
	Shed bool

	// OnComplete, when non-nil, is invoked once per request at the virtual
	// instant its last token is generated — the capture hook
	// internal/reqtrace uses to record a served workload back into a
	// request trace. In a cluster every replica inherits the same hook, so
	// the callback must not assume any cross-replica completion order
	// (reqtrace canonicalizes by sorting on arrival). It must not mutate
	// the server.
	OnComplete func(Request)

	// ExactSamples is the exact-retention threshold of every latency digest
	// (aggregate and per-class TTFT/E2E): up to this many raw samples are
	// retained and summarized by the exact nearest-rank rule; one more and
	// the digest spills into a fixed-size mergeable quantile sketch
	// (internal/quantile, 1% relative error), keeping memory flat however
	// long the run. 0 means DefaultExactSamples — large enough that the
	// existing experiment tables stay byte-identical — and a negative value
	// sketches from the first sample.
	ExactSamples int

	// PrefixReuse enables session KV prefix reuse: the server remembers,
	// per SessionID, the context tokens (prompt+output) of the session's
	// last completed turn and lets a follow-up turn whose prompt embeds
	// that context skip that many prompt tokens of prefill — its TTFT
	// drops by exactly the skipped prefill time. Residency is invalidated
	// by recompute-preemption, deadline aborts and sheds of the session's
	// sequence, and cleared wholesale by a crash. The reuse is a compute
	// model only: KV memory is still allocated for the full sequence, so
	// the fragmentation story is untouched. Off (the default) reproduces
	// the session-unaware server exactly, whatever the requests carry.
	PrefixReuse bool
}

// LatencySummary holds nearest-rank percentiles of a latency sample.
type LatencySummary struct {
	P50, P95, P99 time.Duration
}

// summarize computes the nearest-rank percentiles of samples (sorted in
// place). The nearest rank of the pct-th percentile over n samples is
// ceil(n*pct/100), computed in exact integer arithmetic: products like
// 0.95*n are not exactly representable in binary floating point, so the
// former float formulation needed an epsilon that silently picks the wrong
// rank once n grows past the epsilon's resolution. For n >= 1 and
// 1 <= pct <= 100 the index is always in [0, n).
func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(pct int) time.Duration {
		return samples[(len(samples)*pct+99)/100-1]
	}
	return LatencySummary{P50: at(50), P95: at(95), P99: at(99)}
}

// ClassReport is the per-client-class (per-SLO-class) slice of a serving
// run: the latency distribution each tenant actually experienced, plus how
// often it was evicted and how much KV cache it held.
type ClassReport struct {
	Class string // client class name ("default" when requests carry none)
	SLO   string // SLO tag carried by the class's requests

	Served      int   // requests completed
	Preemptions int64 // evictions of this class's sequences

	// TTFT is time from arrival to the end of the step that prefilled the
	// request (its first output token); E2E is time from arrival to the
	// last generated token.
	TTFT, E2E LatencySummary

	// MeanKVTokens is the class's mean resident KV tokens per decode step;
	// KVShare is its fraction of the run's total token·steps — the
	// KV-cache occupancy attributable to the tenant.
	MeanKVTokens float64
	KVShare      float64
}

// Report summarizes one serving run.
type Report struct {
	Served      int     // requests completed
	Steps       int     // decode steps executed
	PeakUsed    int64   // peak bytes taken by the cache manager
	PeakLogical int64   // peak bytes of real KV data
	MeanWaste   float64 // average per-step waste ratio
	MeanBatch   float64 // average decoding batch size

	// AdmitFailures counts distinct requests whose admission was deferred
	// at least once for lack of memory; BlockedSteps counts head-of-line
	// blocked admission attempts, one per step the blocked request kept
	// waiting. (They used to be a single counter with BlockedSteps
	// semantics under the AdmitFailures name, overcounting one long-blocked
	// request once per step.)
	AdmitFailures int64
	BlockedSteps  int64

	Preemptions int64 // sequences evicted mid-decode and requeued

	// Failure and SLO accounting (PR 7). Crashes and Restarts count fault
	// events applied to this server (always zero outside a faulty cluster
	// run). DeadlineMisses counts requests that blew their Timeout —
	// aborted while queued or decoding, or completed late. Shed counts
	// requests rejected by deadline-aware admission shedding
	// (ServerConfig.Shed). Goodput counts completions within their
	// deadline — with Timeout unset it equals Served, and it never
	// exceeds Served.
	Crashes        int
	Restarts       int
	DeadlineMisses int64
	Shed           int64
	Goodput        int

	// Session prefix-reuse accounting (PR 10); all zero unless
	// ServerConfig.PrefixReuse is on and requests carry sessions.
	// PrefixHits counts admissions that found their session's prefix
	// resident, skipping ReusedTokens prompt tokens of prefill in total;
	// PrefixMisses counts follow-up turns (Turn > 0) admitted with no
	// resident prefix — invalidated by a fault or eviction, never
	// established, or held by a different replica.
	PrefixHits   int64
	PrefixMisses int64
	ReusedTokens int64

	// Duration is the virtual makespan of the run.
	Duration time.Duration
	// TTFT and E2E aggregate latency over all classes.
	TTFT, E2E LatencySummary
	// Classes is the per-client-class breakdown, sorted by class name.
	Classes []ClassReport

	// RetainedSamples counts the raw latency samples the report's digests
	// (aggregate and per-class) still hold exactly; SketchedSamples counts
	// the samples absorbed into fixed-size quantile sketches instead. Their
	// split is the run's metrics-memory story: retained samples cost O(1)
	// memory each, sketched samples cost nothing beyond the sketch.
	RetainedSamples int64
	SketchedSamples int64
}

// Utilization returns peak logical / peak used.
func (r Report) Utilization() float64 {
	if r.PeakUsed == 0 {
		return 1
	}
	return float64(r.PeakLogical) / float64(r.PeakUsed)
}

// Class returns the report of the named class, or nil.
func (r Report) Class(name string) *ClassReport {
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}

// track is the lifetime record of one input request across preemptions.
// done is the completion time on the virtual clock; it doubles as the
// completion marker (zero = still unfinished) because completions are
// recorded strictly after the clock advanced past the first step.
type track struct {
	req        Request
	firstToken time.Duration
	hasFirst   bool
	done       time.Duration
	// deferred marks that the request's admission was blocked at least
	// once, so AdmitFailures counts distinct requests, not blocked steps.
	deferred bool
}

func (t *track) class() string {
	if t.req.Class == "" {
		return "default"
	}
	return t.req.Class
}

// active is one sequence currently in the decoding batch.
type active struct {
	rec        *track
	handle     SeqHandle
	remaining  int
	admitOrder int64
	// node is the sequence's handle in the victim-ordered running index;
	// nil once the sequence has left the batch.
	node *container.Node[*active]
	// tokenBox is the server's boxed per-class token-steps accumulator,
	// resolved once at admission so the per-step add skips the map.
	tokenBox *float64
	// evicted marks a sequence preempted during the current decode step so
	// the step loop never touches it again.
	evicted bool
}

// waiting is one request in the pending set: a track plus the FIFO ticket
// that orders it against same-priority peers. Requeued (preempted)
// sequences draw a fresh ticket, putting them behind everything already
// waiting — exactly the position an append to a pending slice would give
// them.
type waiting struct {
	rec *track
	seq int64
}

// server is the continuous-batching loop with its indexed queues. The
// pending set is split by arrival: `future` is a flat cursor over
// not-yet-arrived requests in (ArrivalAt, ticket) order (see arrivalQueue)
// so promotion and the idle-jump are O(1) peeks, and `ready` is a tree
// ordering arrived-unadmitted requests by (aged rank desc, ticket asc)
// — the aged rank is the static priority when aging is off — so the
// admission candidate is its minimum. The running batch keeps a
// slice for deterministic step order plus `victims`, a tree ordered by
// (aged rank asc, admitOrder desc) whose minimum is the preemption victim.
// All three replace the linear rescans of the slice-based loop; the
// selection rules are unchanged, so reports are identical.
type server struct {
	mgr        CacheManager
	maxBatch   int
	stepTime   time.Duration
	prefillTok time.Duration
	aging      time.Duration
	timeout    time.Duration
	shed       bool
	onComplete func(Request)

	now time.Duration
	rep Report

	// Latency aggregation is streaming: completions feed the per-class and
	// aggregate digests the moment they happen, so no per-request record
	// outlives its request and report memory is bounded by ExactSamples,
	// not by the stream length.
	exactSamples int
	classes      map[string]*classAgg
	allTTFT      *latDigest
	allE2E       *latDigest

	future  arrivalQueue
	ready   *container.Tree[waiting]
	nextTkt int64

	running  []*active
	victims  *container.Tree[*active]
	admitSeq int64
	// batchScratch is step's reusable snapshot buffer of the running
	// batch — one live allocation instead of one per decode step.
	batchScratch []*active

	// doneTokens is the total tokens (prompt+output) of completed
	// requests — the cluster dispatcher's O(1) source for outstanding
	// KV demand (dispatched tokens − doneTokens).
	doneTokens int64

	// prefixReuse gates the session residency model; resident maps a
	// SessionID to the context tokens (prompt+output) of its last
	// completed turn, nil when reuse is off. Point lookups and deletes
	// only — the map is never ranged, so it stays outside every
	// report-ordering path.
	prefixReuse bool
	resident    map[string]int

	batchSum, wasteSum float64
	classPreempt       map[string]int64
	// classTokenSteps accumulates per-class KV token-steps in boxed cells
	// so the per-step hot loop adds through a pointer cached on the active
	// sequence instead of hashing the class name every step.
	classTokenSteps map[string]*float64
	totalTokenSteps float64
}

// rank is a request's effective scheduling priority with aging applied,
// encoded as a static per-request key. Without aging it is the bare
// priority. With aging the effective priority at time t is
//
//	Priority + (t − ArrivalAt)/Aging
//
// — continuous aging, one full priority level gained per Aging of wait.
// Because every request ages at the same rate, the order of two effective
// priorities is time-invariant:
//
//	pa + (t−aa)/G > pb + (t−ab)/G  ⇔  pa·G − aa > pb·G − ab
//
// and the right-hand side does not mention t. The aged order is therefore a
// fixed per-request integer, and the same O(log n) tree indexes that serve
// static priorities serve aged ones — no re-keying as the clock advances.
// A requeued (preempted) request keeps its original ArrivalAt, so its age
// keeps counting from first arrival across preemptions.
func (s *server) rank(rec *track) int64 {
	if s.aging <= 0 {
		return int64(rec.req.Priority)
	}
	return int64(rec.req.Priority)*int64(s.aging) - int64(rec.req.ArrivalAt)
}

// victimLess is the preemption order: lowest aged rank first, then most
// recently admitted. It doubles as the eligibility rule — v may be evicted
// in favour of keep iff victimLess(v, keep) — so the tree minimum is both
// the candidate and the proof: if even the minimum is not below keep,
// nothing in the batch is evictable for it. Higher-ranked sequences are
// never evicted (the SLO guarantee, aging included), and same-rank older
// ones are off limits so the oldest sequence of the top rank always makes
// monotonic progress — without that rule two sequences that cannot coexist
// in memory preempt each other forever, each eviction resetting the other's
// decode. Ranks are static (see rank), so the unevictable maximum is fixed
// and the argument survives aging unchanged.
func (s *server) victimLess(a, b *active) bool {
	if ra, rb := s.rank(a.rec), s.rank(b.rec); ra != rb {
		return ra < rb
	}
	return a.admitOrder > b.admitOrder
}

// newEmptyServer builds the loop with no requests enqueued; Serve fills it
// via enqueue, the cluster dispatcher feeds it addRequest by addRequest.
func newEmptyServer(mgr CacheManager, cfg ServerConfig) (*server, error) {
	if cfg.MaxBatch <= 0 {
		return nil, fmt.Errorf("serve: max batch %d", cfg.MaxBatch)
	}
	if cfg.StepTime < 0 || cfg.PrefillTokenTime < 0 || cfg.Aging < 0 || cfg.Timeout < 0 {
		return nil, fmt.Errorf("serve: negative durations in config %+v", cfg)
	}
	if cfg.Shed && cfg.Timeout == 0 {
		return nil, fmt.Errorf("serve: shed needs a timeout to shed against")
	}
	limit := resolveExactSamples(cfg.ExactSamples)
	s := &server{
		mgr:             mgr,
		maxBatch:        cfg.MaxBatch,
		stepTime:        cfg.StepTime,
		prefillTok:      cfg.PrefillTokenTime,
		aging:           cfg.Aging,
		timeout:         cfg.Timeout,
		shed:            cfg.Shed,
		onComplete:      cfg.OnComplete,
		prefixReuse:     cfg.PrefixReuse,
		exactSamples:    limit,
		classes:         map[string]*classAgg{},
		allTTFT:         newLatDigest(limit),
		allE2E:          newLatDigest(limit),
		classPreempt:    map[string]int64{},
		classTokenSteps: map[string]*float64{},
	}
	s.ready = container.NewTree[waiting](func(a, b waiting) bool {
		if ra, rb := s.rank(a.rec), s.rank(b.rec); ra != rb {
			return ra > rb
		}
		return a.seq < b.seq
	})
	s.victims = container.NewTree[*active](s.victimLess)
	if cfg.PrefixReuse {
		s.resident = map[string]int{}
	}
	if s.stepTime == 0 {
		s.stepTime = DefaultStepTime
	}
	if s.prefillTok == 0 {
		s.prefillTok = DefaultPrefillTokenTime
	}
	return s, nil
}

func newServer(reqs []Request, mgr CacheManager, cfg ServerConfig) (*server, error) {
	s, err := newEmptyServer(mgr, cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range reqs {
		s.enqueue(&track{req: r})
	}
	return s, nil
}

// addRequest hands the server one request mid-run under an externally
// assigned FIFO ticket. The cluster dispatcher tickets every request by its
// input position and reserves the range [0, n) before the run (see
// ServeCluster), so a single-replica cluster replays the exact ticket order
// Serve's up-front enqueue produces — whatever order the input arrived in —
// while requeued preemptions still draw fresh tickets above every external
// one.
func (s *server) addRequest(req Request, ticket int64) {
	rec := &track{req: req}
	w := waiting{rec: rec, seq: ticket}
	if req.ArrivalAt > s.now {
		s.future.push(w)
	} else {
		s.ready.Insert(w)
	}
}

// stealableExcess is how many ready (arrived, unadmitted) requests the
// server holds beyond the batch slots it could still fill — the queued
// backlog a work-stealing scheduler may re-dispatch. Requests that would be
// admitted at the server's next event are not counted: stealing them could
// only delay them.
func (s *server) stealableExcess() int {
	free := s.maxBatch - len(s.running)
	if free < 0 {
		free = 0
	}
	if e := s.ready.Len() - free; e > 0 {
		return e
	}
	return 0
}

// stealWorstReady removes and returns the ready request the server would
// admit last (lowest aged rank, then highest ticket) — the tail end a
// work-stealing peer takes. The request's lifetime record leaves this
// server's roster: it will be reported by whoever finally serves it.
// Running sequences are never stolen.
func (s *server) stealWorstReady() (waiting, bool) {
	n := s.ready.Max()
	if n == nil {
		return waiting{}, false
	}
	w := n.Value
	s.ready.Delete(n)
	return w, true
}

// acceptStolen hands the server a request stolen from a peer at cluster
// time at. The request keeps its FIFO ticket — the move is a late dispatch
// decision, not a requeue — and the idle server's clock advances to the
// steal instant, since before it the request was queued elsewhere.
func (s *server) acceptStolen(w waiting, at time.Duration) {
	if at > s.now {
		s.now = at
	}
	if w.rec.req.ArrivalAt > s.now {
		s.future.push(w)
	} else {
		s.ready.Insert(w)
	}
}

// acceptRedispatch hands the server a request re-dispatched after a replica
// crash. Recompute-from-scratch semantics, mirroring evict's requeue: the
// sequence draws a fresh FIFO ticket (putting it behind everything already
// waiting here), its full decode will be regenerated, and the lifetime
// record keeps its first-token time — TTFT is preserved exactly when the
// request had already streamed before the crash.
func (s *server) acceptRedispatch(rec *track, at time.Duration) {
	if at > s.now {
		s.now = at
	}
	s.enqueue(rec)
}

// crash models the replica's host dying at cluster instant at: every
// decoding sequence and queued request leaves the server and the cache
// manager releases all KV. The returned slices — inflight in batch order,
// queued in (rank, then arrival) order — are the scheduler's to re-dispatch
// or abandon; the server itself keeps its report, digests and clock, ready
// to be restarted empty.
func (s *server) crash(at time.Duration) (inflight []*track, queued []waiting) {
	if at > s.now {
		s.now = at
	}
	for _, a := range s.running {
		s.victims.Delete(a.node)
		a.node = nil
		s.mgr.Release(a.handle)
		inflight = append(inflight, a.rec)
	}
	s.running = s.running[:0]
	for {
		n := s.ready.Min()
		if n == nil {
			break
		}
		queued = append(queued, n.Value)
		s.ready.Delete(n)
	}
	for s.future.len() > 0 {
		queued = append(queued, s.future.popMin())
	}
	// The crash lost the whole KV cache, session prefixes included: every
	// residency entry goes at once, so post-restart follow-up turns miss.
	if s.prefixReuse {
		s.resident = map[string]int{}
	}
	s.rep.Crashes++
	return inflight, queued
}

// restart reopens a crashed server, empty, at cluster instant at.
func (s *server) restart(at time.Duration) {
	if at > s.now {
		s.now = at
	}
	s.rep.Restarts++
}

// enqueue adds rec to the pending set with a fresh FIFO ticket, routing it
// by arrival time.
func (s *server) enqueue(rec *track) {
	w := waiting{rec: rec, seq: s.nextTkt}
	s.nextTkt++
	if rec.req.ArrivalAt > s.now {
		s.future.push(w)
	} else {
		s.ready.Insert(w)
	}
}

// promoteArrivals moves every request whose arrival time has passed from
// the future queue into the ready index, keeping its ticket.
func (s *server) promoteArrivals() {
	for {
		w, ok := s.future.min()
		if !ok || w.rec.req.ArrivalAt > s.now {
			return
		}
		s.ready.Insert(s.future.popMin())
	}
}

// pendingLen is the size of the whole pending set.
func (s *server) pendingLen() int { return s.future.len() + s.ready.Len() }

// deadline is rec's absolute completion deadline; meaningful only when a
// timeout is configured.
func (s *server) deadline(rec *track) time.Duration {
	return rec.req.ArrivalAt + s.timeout
}

// minServiceTime is the provable floor on rec's remaining service: the cost
// of prefilling its prompt and decoding every output token alone on an idle
// server. Queueing, batching and preemption only add to it.
func (s *server) minServiceTime(rec *track) time.Duration {
	return time.Duration(rec.req.PromptLen)*s.prefillTok + time.Duration(rec.req.OutputLen)*s.stepTime
}

// drop removes a request that will never be served (expired or shed) from
// the run's outstanding work: its tokens count as done so a cluster
// dispatcher's outstanding-KV gauge (dispatched − done) drains to zero, and
// it joins the class roster — with its TTFT, if it ever streamed a first
// token — exactly like any other unfinished request.
func (s *server) drop(rec *track) {
	s.doneTokens += int64(rec.req.TotalTokens())
	s.invalidateResident(rec.req.SessionID)
	s.recordUnfinished(rec)
}

// admit fills the batch with arrived requests while memory lasts: highest
// priority first, FIFO within a priority. With a timeout configured, each
// candidate is first checked against its deadline — already expired ones
// are aborted, and with shedding on, ones whose remaining slack cannot
// cover their minimum service time are rejected — so a doomed request
// never occupies a batch slot. It returns the prompt tokens prefilled by
// the admissions for this step's cost, and an error when a request cannot
// fit even on an idle server.
func (s *server) admit() (prefillTokens int64, err error) {
	s.promoteArrivals()
	for len(s.running) < s.maxBatch {
		n := s.ready.Min()
		if n == nil {
			break
		}
		rec := n.Value.rec
		if s.timeout > 0 {
			if s.now > s.deadline(rec) {
				s.ready.Delete(n)
				s.rep.DeadlineMisses++
				s.drop(rec)
				continue
			}
			if s.shed && s.now+s.minServiceTime(rec) > s.deadline(rec) {
				s.ready.Delete(n)
				s.rep.Shed++
				s.drop(rec)
				continue
			}
		}
		h, err := s.mgr.Admit(rec.req)
		if err != nil {
			s.rep.BlockedSteps++
			if !rec.deferred {
				rec.deferred = true
				s.rep.AdmitFailures++
			}
			if len(s.running) == 0 {
				return prefillTokens, fmt.Errorf("serve: request %d does not fit even alone: %w", rec.req.ID, err)
			}
			break // head-of-line waits for capacity
		}
		s.ready.Delete(n)
		s.admitSeq++
		a := &active{rec: rec, handle: h, remaining: rec.req.OutputLen, admitOrder: s.admitSeq}
		a.tokenBox = s.tokenCell(rec.class())
		a.node = s.victims.Insert(a)
		s.running = append(s.running, a)
		prefillTokens += s.prefillNeed(rec.req)
	}
	return prefillTokens, nil
}

// prefillNeed is the prompt tokens req must actually prefill at admission:
// its full prompt, minus the session prefix still resident when reuse is
// on. Hit/miss/reused accounting happens here, at the admission that
// consumed (or missed) the residency; a request re-admitted after a
// recompute-preemption prefills in full again, because evict invalidated
// its session's entry along with the KV.
func (s *server) prefillNeed(req Request) int64 {
	need := int64(req.PromptLen)
	if !s.prefixReuse || req.SessionID == "" {
		return need
	}
	if res := int64(s.resident[req.SessionID]); res > 0 {
		reused := res
		if reused > need {
			reused = need
		}
		s.rep.PrefixHits++
		s.rep.ReusedTokens += reused
		return need - reused
	}
	if req.Turn > 0 {
		s.rep.PrefixMisses++
	}
	return need
}

// invalidateResident drops sid's session residency: recompute-preemption,
// deadline aborts and sheds throw the shared prefix away, so the session's
// next turn prefills in full.
func (s *server) invalidateResident(sid string) {
	if s.prefixReuse && sid != "" {
		delete(s.resident, sid)
	}
}

// hasResident reports whether sid's prefix is resident on this server —
// the cluster's session-affinity probe. Safe on a reuse-off server (the
// nil map never holds anything).
func (s *server) hasResident(sid string) bool {
	_, ok := s.resident[sid]
	return ok
}

// jumpToNextArrival advances the idle server's clock to the next pending
// arrival.
func (s *server) jumpToNextArrival() error {
	w, ok := s.future.min()
	if !ok {
		// Unreachable: an arrived request on an idle server is either
		// admitted or fails hard in admit.
		return fmt.Errorf("serve: idle with %d arrived requests unadmitted", s.ready.Len())
	}
	if at := w.rec.req.ArrivalAt; at > s.now {
		s.now = at
	}
	return nil
}

// removeFromBatch takes a out of the running set (slice and victim index).
func (s *server) removeFromBatch(a *active) {
	s.victims.Delete(a.node)
	a.node = nil
	for i, v := range s.running {
		if v == a {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
	panic("serve: active sequence missing from batch")
}

// evict requeues the sequence in full (vLLM's recompute-preemption),
// releases its KV storage, and marks it so the in-flight decode step skips
// it.
func (s *server) evict(a *active) {
	s.rep.Preemptions++
	s.classPreempt[a.rec.class()]++
	a.evicted = true
	s.removeFromBatch(a)
	s.mgr.Release(a.handle)
	s.invalidateResident(a.rec.req.SessionID)
	s.enqueue(a.rec)
}

// preemptFor evicts a victim so keep can grow, or reports that no eligible
// victim exists. The victim tree's minimum is the most evictable sequence;
// it is eligible exactly when it orders below keep (see victimLess).
func (s *server) preemptFor(keep *active) bool {
	n := s.victims.Min()
	if n == nil {
		return false
	}
	if n.Value == keep {
		n = s.victims.Next(n)
		if n == nil {
			return false
		}
	}
	if !s.victimLess(n.Value, keep) {
		return false
	}
	s.evict(n.Value)
	return true
}

// step runs one decode step across the batch: append one token per active
// sequence in admission order, preempting when a mid-decode Append hits the
// memory wall, then advance the clock and do end-of-step bookkeeping
// (first tokens, occupancy, completions).
func (s *server) step(prefillTokens int64) error {
	s.rep.Steps++
	s.batchSum += float64(len(s.running))

	// The step decodes the sequences that were in the batch when it
	// started, in batch order; preemptions during the step mark their
	// victims evicted rather than re-indexing a live slice, so every
	// survivor is appended exactly once and no slot is stepped twice.
	batch := append(s.batchScratch[:0], s.running...)
	s.batchScratch = batch
	for _, a := range batch {
		if a.evicted || a.remaining == 0 {
			continue
		}
		err := s.mgr.Append(a.handle)
		for err != nil {
			if !s.preemptFor(a) {
				if len(s.running) == 1 {
					return fmt.Errorf("serve: request %d stuck mid-decode: %w", a.rec.req.ID, err)
				}
				// No eligible victim (everything else is older or higher
				// priority): yield this slot and wait for capacity.
				s.evict(a)
				break
			}
			err = s.mgr.Append(a.handle)
		}
		if a.evicted {
			continue
		}
		a.remaining--
	}
	s.now += s.stepTime + time.Duration(prefillTokens)*s.prefillTok

	if u := s.mgr.UsedBytes(); u > s.rep.PeakUsed {
		s.rep.PeakUsed = u
	}
	if l := s.mgr.LogicalBytes(); l > s.rep.PeakLogical {
		s.rep.PeakLogical = l
	}
	s.wasteSum += WasteRatio(s.mgr)

	// End-of-step bookkeeping: first tokens, occupancy, completions.
	for i := len(s.running) - 1; i >= 0; i-- {
		a := s.running[i]
		if !a.rec.hasFirst {
			a.rec.hasFirst = true
			a.rec.firstToken = s.now
		}
		tokens := a.rec.req.PromptLen + (a.rec.req.OutputLen - a.remaining)
		*a.tokenBox += float64(tokens)
		s.totalTokenSteps += float64(tokens)
		if a.remaining == 0 {
			s.rep.Served++
			s.doneTokens += int64(tokens)
			a.rec.done = s.now
			s.recordCompletion(a.rec)
			s.removeFromBatch(a)
			s.mgr.Release(a.handle)
			if s.prefixReuse && a.rec.req.SessionID != "" {
				// The completed turn's full context becomes the session's
				// resident prefix for the follow-up turn.
				s.resident[a.rec.req.SessionID] = tokens
			}
			if s.onComplete != nil {
				s.onComplete(a.rec.req)
			}
		} else if s.timeout > 0 && s.now > s.deadline(a.rec) {
			// The step crossed the sequence's deadline mid-decode: abort it
			// rather than keep generating tokens nobody will wait for. It
			// streamed a first token (set just above), so its TTFT survives
			// into the roster via drop.
			s.rep.DeadlineMisses++
			s.removeFromBatch(a)
			s.mgr.Release(a.handle)
			s.drop(a.rec)
		}
	}
	return nil
}

// tokenCell returns the class's boxed token-steps accumulator, creating it
// on first sight. The box, not the map slot, is what admitted sequences
// cache: it never moves, so the cached pointer survives map growth.
func (s *server) tokenCell(name string) *float64 {
	b := s.classTokenSteps[name]
	if b == nil {
		b = new(float64)
		s.classTokenSteps[name] = b
	}
	return b
}

// classFor returns the streaming aggregation of rec's class, creating the
// roster entry on first sight.
func (s *server) classFor(rec *track) *classAgg {
	name := rec.class()
	a := s.classes[name]
	if a == nil {
		a = newClassAgg(rec.req.SLO, s.exactSamples)
		s.classes[name] = a
	}
	return a
}

// recordCompletion feeds one completed request into the per-class and
// aggregate latency digests — the streaming replacement for retaining the
// request's record until the end of the run. Completion implies a first
// token (step sets it before checking remaining), so the request contributes
// one TTFT and one E2E sample, under the same eligibility rule the old
// record scan applied.
func (s *server) recordCompletion(rec *track) {
	a := s.classFor(rec)
	a.served++
	ttft := rec.firstToken - rec.req.ArrivalAt
	e2e := rec.done - rec.req.ArrivalAt
	a.ttft.add(ttft)
	a.e2e.add(e2e)
	s.allTTFT.add(ttft)
	s.allE2E.add(e2e)
	if s.timeout > 0 && rec.done > s.deadline(rec) {
		s.rep.DeadlineMisses++ // served, but past its deadline: not goodput
	} else {
		s.rep.Goodput++
	}
}

// recordUnfinished folds a request the run never completed into the roster:
// the class row exists (served count and samples untouched), and a request
// preempted after streaming its first token still contributes its TTFT —
// exactly what the old scan over retained records reported after a failed
// run.
func (s *server) recordUnfinished(rec *track) {
	s.classFor(rec)
	if rec.hasFirst {
		ttft := rec.firstToken - rec.req.ArrivalAt
		s.classFor(rec).ttft.add(ttft)
		s.allTTFT.add(ttft)
	}
}

// finish seals the report: duration, step means, per-class rows and latency
// percentiles. On a completed run every request contributed one TTFT and one
// E2E sample as it completed. After a failed run (a request that fits
// nowhere, a stuck decode) it seals what is known — the pending and running
// requests still on the server join the class roster, those that produced a
// first token contribute TTFT — so an error-path Report never carries zeroed
// Duration, Classes or percentile fields for the work that did happen.
// finish must be called at most once: sealing feeds the digests.
func (s *server) finish() {
	if s.rep.Steps > 0 {
		s.rep.MeanWaste = s.wasteSum / float64(s.rep.Steps)
		s.rep.MeanBatch = s.batchSum / float64(s.rep.Steps)
	}
	s.rep.Duration = s.now
	walk := func(n *container.Node[waiting]) bool {
		s.recordUnfinished(n.Value.rec)
		return true
	}
	s.future.ascend(func(w waiting) { s.recordUnfinished(w.rec) })
	s.ready.Ascend(walk)
	for _, a := range s.running {
		s.recordUnfinished(a.rec)
	}
	s.rep.Classes = classRows(s.classes, s.rep.Steps, s.classPreempt, s.classTokenSteps, s.totalTokenSteps)
	s.rep.TTFT = s.allTTFT.summary()
	s.rep.E2E = s.allE2E.summary()
	s.rep.RetainedSamples, s.rep.SketchedSamples = digestFootprint(s.classes, s.allTTFT, s.allE2E)
}

// digestFootprint sums the retained-versus-sketched sample split over a
// report's digests (aggregate plus per-class) — the peak-RSS proxy the
// scale benchmark records.
func digestFootprint(classes map[string]*classAgg, allTTFT, allE2E *latDigest) (retained, sketched int64) {
	retained = allTTFT.retained() + allE2E.retained()
	sketched = allTTFT.sketched() + allE2E.sketched()
	for _, a := range classes {
		retained += a.ttft.retained() + a.e2e.retained()
		sketched += a.ttft.sketched() + a.e2e.sketched()
	}
	return retained, sketched
}

// nextEventTime is when the server can next make progress: now when it has
// running or arrived work, the earliest future arrival when it is idle
// awaiting one, and ok=false when it is fully drained. The cluster
// scheduler interleaves replicas by this time.
func (s *server) nextEventTime() (at time.Duration, ok bool) {
	if len(s.running) > 0 || s.ready.Len() > 0 {
		return s.now, true
	}
	if w, ok := s.future.min(); ok {
		at = w.rec.req.ArrivalAt
		if at < s.now {
			at = s.now
		}
		return at, true
	}
	return 0, false
}

// runOnce executes one iteration of the serving loop — admit, then either
// one decode step or an idle jump to the next arrival — and reports whether
// the server still has work. Serve's run loop and the cluster scheduler
// drive the identical method, so a single-replica cluster reproduces Serve
// step for step.
func (s *server) runOnce() (more bool, err error) {
	if s.pendingLen() == 0 && len(s.running) == 0 {
		return false, nil
	}
	prefillTokens, err := s.admit()
	if err != nil {
		return false, err
	}
	if len(s.running) == 0 {
		if s.pendingLen() == 0 {
			// Admission aborted or shed the last pending requests: the
			// server drained without another step.
			return false, nil
		}
		if err := s.jumpToNextArrival(); err != nil {
			return false, err
		}
		return true, nil
	}
	if err := s.step(prefillTokens); err != nil {
		return false, err
	}
	return true, nil
}

// run drives the loop to completion. The report is sealed on the error
// paths too, so callers always see the duration, class rows and percentiles
// of whatever work completed before the failure.
func (s *server) run() (Report, error) {
	for {
		more, err := s.runOnce()
		if err != nil {
			s.finish()
			return s.rep, err
		}
		if !more {
			s.finish()
			return s.rep, nil
		}
	}
}

// Serve runs the requests to completion under continuous batching: admit
// arrived requests while memory and the batch cap allow (highest priority
// first), append one token per active sequence per step, release
// completions, and — when a mid-decode Append hits the memory wall —
// preempt the lowest-priority, most recently admitted other sequence and
// requeue it in full (vLLM's recompute-preemption, made SLO-aware).
// With ServerConfig.Aging set, "priority" throughout means the aged
// effective priority — Priority + wait/Aging — so starved low-priority
// requests eventually outrank fresh high-priority arrivals.
//
// The queues are indexed: pending requests live in arrival- and priority-
// ordered red-black trees and the batch keeps a preemption-ordered tree, so
// admission, the idle-jump and victim selection are O(log n) instead of the
// per-step linear rescans a slice-based loop pays. On long backlogged
// streams the loop's bookkeeping is O(total work · log n).
//
// Time is simulated on an internal virtual clock (see ServerConfig's step
// costs); per-request arrival, first-token and completion times feed the
// per-class TTFT/E2E percentiles in the report.
func Serve(reqs []Request, mgr CacheManager, cfg ServerConfig) (Report, error) {
	s, err := newServer(reqs, mgr, cfg)
	if err != nil {
		return Report{}, err
	}
	return s.run()
}

// classRows renders the streaming per-class aggregations into sorted rows.
// The roster is exactly the set of classes that fed a digest (completions
// plus finish's walk over unfinished requests), so the rows stay truthful
// when a run is sealed mid-failure.
func classRows(classes map[string]*classAgg, steps int, preempt map[string]int64, tokenSteps map[string]*float64, totalTokenSteps float64) []ClassReport {
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ClassReport, 0, len(names))
	for _, name := range names {
		a := classes[name]
		cr := ClassReport{
			Class:       name,
			SLO:         a.slo,
			Served:      a.served,
			Preemptions: preempt[name],
			TTFT:        a.ttft.summary(),
			E2E:         a.e2e.summary(),
		}
		var ts float64
		if b := tokenSteps[name]; b != nil {
			ts = *b
		}
		if steps > 0 {
			cr.MeanKVTokens = ts / float64(steps)
		}
		if totalTokenSteps > 0 {
			cr.KVShare = ts / totalTokenSteps
		}
		out = append(out, cr)
	}
	return out
}
