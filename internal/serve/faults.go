package serve

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// FaultKind classifies one fault-plan event.
type FaultKind int

const (
	// FaultCrash kills a replica: its KV cache and in-flight sequences are
	// lost, queued requests are displaced, and it leaves dispatch.
	FaultCrash FaultKind = iota
	// FaultRestart brings a crashed replica back, empty, into dispatch.
	FaultRestart
)

// String names the kind in fault-plan syntax ("crash", "restart").
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one scripted replica fault on the cluster's virtual clock.
type FaultEvent struct {
	At      time.Duration
	Kind    FaultKind
	Replica int
}

// FaultConfig injects deterministic replica crash/restart events into a
// cluster run. The zero value injects nothing. Faults come from exactly one
// of two sources:
//
//   - MTTF/MTTR (both must be set together): each replica draws an
//     independent, seeded alternating sequence of exponential time-to-crash
//     (mean MTTF) and time-to-restart (mean MTTR) intervals, starting at
//     t=0. The streams depend only on Seed and the replica index, so the
//     same configuration replays the same fault history byte for byte.
//   - Plan: an explicit scripted schedule (see ParseFaultPlan), for
//     reproducing one specific failure scenario.
//
// Events are injected only at event boundaries of the co-simulation (see
// the package comment's failure-model section), so faulty runs stay as
// deterministic as fault-free ones. A crash aimed at a replica that is
// already down (or was never spawned) is a no-op, as is a restart of a
// replica that is up.
type FaultConfig struct {
	// MTTF is the mean time to failure of one replica (exponential).
	MTTF time.Duration
	// MTTR is the mean time to restart after a crash (exponential).
	MTTR time.Duration
	// Seed seeds the per-replica fault streams (MTTF mode only).
	Seed uint64
	// Plan is the scripted schedule; mutually exclusive with MTTF/MTTR.
	Plan []FaultEvent
}

// Enabled reports whether the configuration injects any faults.
func (fc FaultConfig) Enabled() bool { return fc.MTTF > 0 || len(fc.Plan) > 0 }

// validate checks the configuration against the largest fleet the run could
// instantiate. Scripted plans must alternate crash/restart per replica,
// starting with a crash — two crashes in a row would be aimed at a replica
// that is already down, a silent no-op hiding a mistyped schedule.
func (fc FaultConfig) validate(fleetMax int) error {
	if fc.MTTF < 0 || fc.MTTR < 0 {
		return fmt.Errorf("serve: negative mttf/mttr %v/%v", fc.MTTF, fc.MTTR)
	}
	if (fc.MTTF > 0) != (fc.MTTR > 0) {
		return fmt.Errorf("serve: mttf and mttr must be set together (got %v/%v)", fc.MTTF, fc.MTTR)
	}
	if len(fc.Plan) > 0 && fc.MTTF > 0 {
		return fmt.Errorf("serve: scripted fault plan and mttf/mttr are mutually exclusive")
	}
	last := map[int]FaultKind{}
	seenAt := map[int]time.Duration{}
	for _, e := range sortedPlan(fc.Plan) {
		if e.At < 0 {
			return fmt.Errorf("serve: fault event %v at negative time %v", e.Kind, e.At)
		}
		if e.Kind != FaultCrash && e.Kind != FaultRestart {
			return fmt.Errorf("serve: unknown fault kind %d", int(e.Kind))
		}
		if e.Replica < 0 || e.Replica >= fleetMax {
			return fmt.Errorf("serve: fault event targets replica %d of a fleet of at most %d", e.Replica, fleetMax)
		}
		want := FaultCrash
		if k, ok := last[e.Replica]; ok {
			if at := seenAt[e.Replica]; at == e.At {
				return fmt.Errorf("serve: two fault events for replica %d at %v", e.Replica, e.At)
			}
			if k == FaultCrash {
				want = FaultRestart
			}
		}
		if e.Kind != want {
			return fmt.Errorf("serve: fault plan for replica %d: %v at %v, expected %v (crash/restart must alternate, starting with crash)",
				e.Replica, e.Kind, e.At, want)
		}
		last[e.Replica] = e.Kind
		seenAt[e.Replica] = e.At
	}
	return nil
}

// sortedPlan returns the plan ordered by (time, replica) — the injection
// order. Alternation per replica guarantees a replica never has two events
// at one instant, so the order is total.
func sortedPlan(plan []FaultEvent) []FaultEvent {
	out := append([]FaultEvent(nil), plan...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Replica < out[j].Replica
	})
	return out
}

// ParseFaultPlan parses a scripted fault schedule of '/'-separated events:
//
//	crash@t=12s:r1/restart@t=13s:r1/crash@t=20s:r0
//
// Each event is <kind>@t=<duration>:r<replica>, kind one of "crash" or
// "restart". Empty segments are skipped. The parsed plan is not validated
// against a fleet size here — ClusterConfig validation does that, with the
// actual fleet bound in hand.
func ParseFaultPlan(s string) ([]FaultEvent, error) {
	var plan []FaultEvent
	for _, part := range strings.Split(s, "/") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("serve: fault event %q is not <kind>@t=<time>:r<replica>", part)
		}
		var kind FaultKind
		switch kindStr {
		case "crash":
			kind = FaultCrash
		case "restart":
			kind = FaultRestart
		default:
			return nil, fmt.Errorf("serve: unknown fault kind %q in %q (crash, restart)", kindStr, part)
		}
		tStr, rStr, ok := strings.Cut(rest, ":")
		if !ok || !strings.HasPrefix(tStr, "t=") || !strings.HasPrefix(rStr, "r") {
			return nil, fmt.Errorf("serve: fault event %q is not <kind>@t=<time>:r<replica>", part)
		}
		at, err := time.ParseDuration(strings.TrimPrefix(tStr, "t="))
		if err != nil || at < 0 {
			return nil, fmt.Errorf("serve: fault time in %q must be a non-negative duration", part)
		}
		ri, err := strconv.Atoi(strings.TrimPrefix(rStr, "r"))
		if err != nil || ri < 0 {
			return nil, fmt.Errorf("serve: fault replica in %q must be a non-negative integer", part)
		}
		plan = append(plan, FaultEvent{At: at, Kind: kind, Replica: ri})
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("serve: empty fault plan %q", s)
	}
	return plan, nil
}

// Crash-retry defaults (see RecoveryConfig).
const (
	DefaultRetryDelay = 50 * time.Millisecond
	DefaultBackoff    = 2.0
)

// RecoveryConfig tunes how the cluster recovers requests that were decoding
// on a replica when it crashed. Queued (not yet admitted) requests on a
// crashed replica are always re-dispatched immediately and consume no retry
// — they lost nothing but their place in line. Deadlines and admission
// shedding are per-server knobs (ServerConfig.Timeout, ServerConfig.Shed);
// this struct is the cluster-level retry policy.
type RecoveryConfig struct {
	// Retries caps re-dispatch attempts per crashed in-flight request.
	// 0 means no retry: work lost to a crash is abandoned (and counted in
	// ClusterReport.Lost).
	Retries int
	// RetryDelay is the base backoff before a retry re-enters dispatch
	// (0 = DefaultRetryDelay). Retry k of a request waits
	// RetryDelay·Backoff^(k−1) after the crash.
	RetryDelay time.Duration
	// Backoff is the exponential backoff multiplier, >= 1
	// (0 = DefaultBackoff).
	Backoff float64
	// RetryBudget caps the total retries any one client class may consume
	// across the run — a noisy class that keeps landing on crashing
	// replicas cannot monopolize recovery capacity. 0 means unlimited.
	RetryBudget int
}

func (rc RecoveryConfig) validate() error {
	if rc.Retries < 0 {
		return fmt.Errorf("serve: negative retries %d", rc.Retries)
	}
	if rc.RetryDelay < 0 {
		return fmt.Errorf("serve: negative retry delay %v", rc.RetryDelay)
	}
	if rc.Backoff != 0 && (rc.Backoff < 1 || math.IsNaN(rc.Backoff) || math.IsInf(rc.Backoff, 0)) {
		return fmt.Errorf("serve: backoff %v must be >= 1", rc.Backoff)
	}
	if rc.RetryBudget < 0 {
		return fmt.Errorf("serve: negative retry budget %d", rc.RetryBudget)
	}
	return nil
}

// faultSource is the merged, time-ordered feed of fault events for one run:
// either the sorted scripted plan behind a cursor, or one lazily generated
// alternating crash/restart stream per potential replica. peek and pop are
// deterministic functions of the configuration, never of scheduler state.
type faultSource struct {
	plan   []FaultEvent
	cursor int

	streams    []faultStream
	mttf, mttr time.Duration
}

// faultStream is one replica's pending next event plus the generator that
// produces its successors.
type faultStream struct {
	rng  *sim.RNG
	next FaultEvent
}

// newFaultSource builds the feed for a fleet of at most fleetMax replicas.
// In MTTF mode every potential replica gets its own stream seeded from
// (Seed, replica index), so the fault history of replica i does not depend
// on how many replicas the autoscaler actually spawned.
func newFaultSource(fc FaultConfig, fleetMax int) *faultSource {
	if len(fc.Plan) > 0 {
		return &faultSource{plan: sortedPlan(fc.Plan)}
	}
	f := &faultSource{mttf: fc.MTTF, mttr: fc.MTTR, streams: make([]faultStream, fleetMax)}
	for i := range f.streams {
		rng := sim.NewRNG(fc.Seed + 0x9e3779b97f4a7c15*uint64(i+1))
		f.streams[i] = faultStream{
			rng:  rng,
			next: FaultEvent{At: expDur(rng, fc.MTTF), Kind: FaultCrash, Replica: i},
		}
	}
	return f
}

// earliest returns the stream index holding the earliest pending event,
// ties to the lowest replica index.
func (f *faultSource) earliest() int {
	best := 0
	for i := 1; i < len(f.streams); i++ {
		if f.streams[i].next.At < f.streams[best].next.At {
			best = i
		}
	}
	return best
}

// peek returns the next fault event without consuming it. MTTF streams are
// endless, so ok is false only for an exhausted scripted plan.
func (f *faultSource) peek() (FaultEvent, bool) {
	if f.streams == nil {
		if f.cursor >= len(f.plan) {
			return FaultEvent{}, false
		}
		return f.plan[f.cursor], true
	}
	return f.streams[f.earliest()].next, true
}

// pop consumes the next fault event; in MTTF mode the popped stream draws
// its successor (a restart after a crash, the next crash after a restart).
func (f *faultSource) pop() FaultEvent {
	if f.streams == nil {
		e := f.plan[f.cursor]
		f.cursor++
		return e
	}
	st := &f.streams[f.earliest()]
	e := st.next
	if e.Kind == FaultCrash {
		st.next = FaultEvent{At: e.At + expDur(st.rng, f.mttr), Kind: FaultRestart, Replica: e.Replica}
	} else {
		st.next = FaultEvent{At: e.At + expDur(st.rng, f.mttf), Kind: FaultCrash, Replica: e.Replica}
	}
	return e
}

// expDur draws an exponential duration with the given mean via the inverse
// CDF, floored at 1ns so consecutive events never collapse onto one
// instant.
func expDur(rng *sim.RNG, mean time.Duration) time.Duration {
	d := time.Duration(-math.Log(1-rng.Float64()) * float64(mean))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}
