package serve

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestServeCompletesAllRequests(t *testing.T) {
	reqs, err := GenRequests(40, GenConfig{MinPrompt: 8, MaxPrompt: 64, MinOutput: 4, MaxOutput: 64}, 7)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 40 {
		t.Fatalf("served %d of 40", rep.Served)
	}
	if mgr.UsedBytes() != 0 {
		t.Fatal("server left sequences allocated")
	}
	if rep.MeanBatch <= 1 || rep.MeanBatch > 8 {
		t.Fatalf("mean batch %.2f implausible", rep.MeanBatch)
	}
	if rep.PeakLogical > rep.PeakUsed {
		t.Fatal("logical exceeded used")
	}
}

func TestServeValidatesConfig(t *testing.T) {
	mgr := NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64)
	if _, err := Serve(nil, mgr, ServerConfig{}); err == nil {
		t.Fatal("accepted zero max batch")
	}
}

func TestServeErrorsWhenSingleRequestCannotFit(t *testing.T) {
	reqs := []Request{{ID: 0, PromptLen: 4096, OutputLen: 1}}
	mgr := NewChunkedKV(newServeAlloc(32*sim.MiB), model.OPT13B, 64)
	if _, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4}); err == nil {
		t.Fatal("impossible request served")
	}
}

func TestServeDefersAdmissionUnderPressure(t *testing.T) {
	// A tiny paged pool forces head-of-line waiting but everything
	// eventually completes.
	reqs, _ := GenRequests(12, GenConfig{MinPrompt: 16, MaxPrompt: 32, MinOutput: 8, MaxOutput: 16}, 3)
	alloc := newServeAlloc(sim.GiB)
	mgr, err := NewPagedKV(alloc, model.OPT1_3B, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 12 {
		t.Fatalf("served %d of 12", rep.Served)
	}
	if rep.AdmitFailures == 0 {
		t.Fatal("expected admission pressure on a 12-block pool")
	}
}

func TestServePreemptsInsteadOfFailing(t *testing.T) {
	// Pool sized so concurrent decodes eventually exhaust blocks
	// mid-flight: preemption must kick in and all requests still finish.
	reqs := []Request{
		{ID: 0, PromptLen: 16, OutputLen: 64},
		{ID: 1, PromptLen: 16, OutputLen: 64},
		{ID: 2, PromptLen: 16, OutputLen: 64},
	}
	mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 3 {
		t.Fatalf("served %d of 3", rep.Served)
	}
	if rep.Preemptions == 0 {
		t.Fatal("expected at least one preemption on a 7-block pool")
	}
}

func TestServeWasteContrastPagedVsContiguous(t *testing.T) {
	reqs, _ := GenRequests(30, GenConfig{MinPrompt: 16, MaxPrompt: 128, MinOutput: 8, MaxOutput: 256}, 11)

	contig := NewContiguousKV(newServeAlloc(16*sim.GiB), model.OPT1_3B, 512)
	repC, err := Serve(reqs, contig, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	paged, err := NewPagedKV(newServeAlloc(16*sim.GiB), model.OPT1_3B, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	repP, err := Serve(reqs, paged, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if repC.MeanWaste < 2*repP.MeanWaste {
		t.Fatalf("contiguous waste %.3f not far above paged %.3f (vLLM's headline effect)",
			repC.MeanWaste, repP.MeanWaste)
	}
	if repP.Utilization() < 0.8 {
		t.Fatalf("paged utilization %.2f too low", repP.Utilization())
	}
}

func TestReportUtilizationEmptyRun(t *testing.T) {
	if (Report{}).Utilization() != 1 {
		t.Fatal("empty report utilization should be 1")
	}
}

// TestServeRandomMixesProperty serves random request mixes on all three
// policies; every run must complete all requests and leave the manager
// empty.
func TestServeRandomMixesProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		mix := GenConfig{
			MinPrompt: 4 + int(seed), MaxPrompt: 64 + 8*int(seed),
			MinOutput: 2, MaxOutput: 48,
		}
		reqs, err := GenRequests(25, mix, seed)
		if err != nil {
			t.Fatal(err)
		}
		mgrs := []CacheManager{
			NewContiguousKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 512),
			NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 32),
		}
		if paged, err := NewPagedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 16, 1024); err == nil {
			mgrs = append(mgrs, paged)
		} else {
			t.Fatal(err)
		}
		for _, mgr := range mgrs {
			rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 6})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, mgr.Name(), err)
			}
			if rep.Served != len(reqs) {
				t.Fatalf("seed %d %s: served %d/%d", seed, mgr.Name(), rep.Served, len(reqs))
			}
			if mgr.UsedBytes() != 0 || mgr.LogicalBytes() != 0 {
				t.Fatalf("seed %d %s: manager not drained", seed, mgr.Name())
			}
			if rep.MeanWaste < 0 || rep.MeanWaste > 1 {
				t.Fatalf("seed %d %s: waste %v", seed, mgr.Name(), rep.MeanWaste)
			}
		}
	}
}
