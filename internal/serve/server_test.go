package serve

import (
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestServeCompletesAllRequests(t *testing.T) {
	reqs, err := GenRequests(40, GenConfig{MinPrompt: 8, MaxPrompt: 64, MinOutput: 4, MaxOutput: 64}, 7)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 40 {
		t.Fatalf("served %d of 40", rep.Served)
	}
	if mgr.UsedBytes() != 0 {
		t.Fatal("server left sequences allocated")
	}
	if rep.MeanBatch <= 1 || rep.MeanBatch > 8 {
		t.Fatalf("mean batch %.2f implausible", rep.MeanBatch)
	}
	if rep.PeakLogical > rep.PeakUsed {
		t.Fatal("logical exceeded used")
	}
}

func TestServeValidatesConfig(t *testing.T) {
	mgr := NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64)
	if _, err := Serve(nil, mgr, ServerConfig{}); err == nil {
		t.Fatal("accepted zero max batch")
	}
}

func TestServeErrorsWhenSingleRequestCannotFit(t *testing.T) {
	reqs := []Request{{ID: 0, PromptLen: 4096, OutputLen: 1}}
	mgr := NewChunkedKV(newServeAlloc(32*sim.MiB), model.OPT13B, 64)
	if _, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4}); err == nil {
		t.Fatal("impossible request served")
	}
}

func TestServeDefersAdmissionUnderPressure(t *testing.T) {
	// A tiny paged pool forces head-of-line waiting but everything
	// eventually completes.
	reqs, _ := GenRequests(12, GenConfig{MinPrompt: 16, MaxPrompt: 32, MinOutput: 8, MaxOutput: 16}, 3)
	alloc := newServeAlloc(sim.GiB)
	mgr, err := NewPagedKV(alloc, model.OPT1_3B, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 12 {
		t.Fatalf("served %d of 12", rep.Served)
	}
	if rep.AdmitFailures == 0 {
		t.Fatal("expected admission pressure on a 12-block pool")
	}
}

func TestServePreemptsInsteadOfFailing(t *testing.T) {
	// Pool sized so concurrent decodes eventually exhaust blocks
	// mid-flight: preemption must kick in and all requests still finish.
	reqs := []Request{
		{ID: 0, PromptLen: 16, OutputLen: 64},
		{ID: 1, PromptLen: 16, OutputLen: 64},
		{ID: 2, PromptLen: 16, OutputLen: 64},
	}
	mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 3 {
		t.Fatalf("served %d of 3", rep.Served)
	}
	if rep.Preemptions == 0 {
		t.Fatal("expected at least one preemption on a 7-block pool")
	}
}

func TestServeWasteContrastPagedVsContiguous(t *testing.T) {
	reqs, _ := GenRequests(30, GenConfig{MinPrompt: 16, MaxPrompt: 128, MinOutput: 8, MaxOutput: 256}, 11)

	contig := NewContiguousKV(newServeAlloc(16*sim.GiB), model.OPT1_3B, 512)
	repC, err := Serve(reqs, contig, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	paged, err := NewPagedKV(newServeAlloc(16*sim.GiB), model.OPT1_3B, 16, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	repP, err := Serve(reqs, paged, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if repC.MeanWaste < 2*repP.MeanWaste {
		t.Fatalf("contiguous waste %.3f not far above paged %.3f (vLLM's headline effect)",
			repC.MeanWaste, repP.MeanWaste)
	}
	if repP.Utilization() < 0.8 {
		t.Fatalf("paged utilization %.2f too low", repP.Utilization())
	}
}

func TestReportUtilizationEmptyRun(t *testing.T) {
	if (Report{}).Utilization() != 1 {
		t.Fatal("empty report utilization should be 1")
	}
}

// TestServeRandomMixesProperty serves random request mixes on all three
// policies; every run must complete all requests and leave the manager
// empty.
func TestServeRandomMixesProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		mix := GenConfig{
			MinPrompt: 4 + int(seed), MaxPrompt: 64 + 8*int(seed),
			MinOutput: 2, MaxOutput: 48,
		}
		reqs, err := GenRequests(25, mix, seed)
		if err != nil {
			t.Fatal(err)
		}
		mgrs := []CacheManager{
			NewContiguousKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 512),
			NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 32),
		}
		if paged, err := NewPagedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 16, 1024); err == nil {
			mgrs = append(mgrs, paged)
		} else {
			t.Fatal(err)
		}
		for _, mgr := range mgrs {
			rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 6})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, mgr.Name(), err)
			}
			if rep.Served != len(reqs) {
				t.Fatalf("seed %d %s: served %d/%d", seed, mgr.Name(), rep.Served, len(reqs))
			}
			if mgr.UsedBytes() != 0 || mgr.LogicalBytes() != 0 {
				t.Fatalf("seed %d %s: manager not drained", seed, mgr.Name())
			}
			if rep.MeanWaste < 0 || rep.MeanWaste > 1 {
				t.Fatalf("seed %d %s: waste %v", seed, mgr.Name(), rep.MeanWaste)
			}
		}
	}
}

// TestSummarizeNearestRankBoundaries pins the exact-integer nearest-rank
// index (rank = ceil(n·pct/100)) at the sample counts where the old float
// formulation leaned on its epsilon: tiny n, n where 0.95·n is not exactly
// representable, and n large enough that a float product's error can cross
// an integer boundary.
func TestSummarizeNearestRankBoundaries(t *testing.T) {
	mk := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Microsecond // value = 1-based rank
		}
		return s
	}
	cases := []struct {
		n             int
		p50, p95, p99 int // expected 1-based ranks
	}{
		{1, 1, 1, 1},
		{2, 1, 2, 2},
		{20, 10, 19, 20},
		{100, 50, 95, 99},
		{1000000, 500000, 950000, 990000},
	}
	for _, c := range cases {
		got := summarize(mk(c.n))
		want := LatencySummary{
			P50: time.Duration(c.p50) * time.Microsecond,
			P95: time.Duration(c.p95) * time.Microsecond,
			P99: time.Duration(c.p99) * time.Microsecond,
		}
		if got != want {
			t.Errorf("n=%d: got %+v, want %+v", c.n, got, want)
		}
	}
}

// TestErrorReportSealedOnImpossibleAdmission: when a request that fits
// nowhere arrives after real work completed, the error-path Report must
// still carry the duration, served counts, class rows and percentiles of
// that completed work.
func TestErrorReportSealedOnImpossibleAdmission(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: "ok", PromptLen: 16, OutputLen: 4},
		{ID: 1, Class: "ok", PromptLen: 16, OutputLen: 4},
		{ID: 2, Class: "huge", PromptLen: 100000, OutputLen: 4, ArrivalAt: 10 * time.Second},
	}
	mgr := NewChunkedKV(newServeAlloc(sim.GiB/4), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4})
	if err == nil {
		t.Fatal("expected an admission error for the unservable request")
	}
	if rep.Served != 2 || rep.Steps == 0 {
		t.Fatalf("sealed report lost completed work: served %d, steps %d", rep.Served, rep.Steps)
	}
	if rep.Duration <= 0 || rep.MeanBatch <= 0 {
		t.Fatalf("sealed report has zeroed run stats: %+v", rep)
	}
	ok := rep.Class("ok")
	if ok == nil || ok.Served != 2 || ok.TTFT.P99 <= 0 || ok.E2E.P99 <= 0 {
		t.Fatalf("sealed report lost the completed class: %+v", ok)
	}
	if huge := rep.Class("huge"); huge == nil || huge.Served != 0 {
		t.Fatalf("unserved class misreported: %+v", huge)
	}
	if rep.E2E.P50 <= 0 {
		t.Fatal("aggregate percentiles zeroed on the error path")
	}
}

// TestErrorReportSealedOnStuckDecode: a request that admits but cannot
// finish decoding alone (output outgrows the pool with nothing to preempt)
// errors out mid-decode; the sealed report keeps earlier completions and the
// stuck request's TTFT — it produced tokens — while not counting it served.
func TestErrorReportSealedOnStuckDecode(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: "ok", PromptLen: 16, OutputLen: 4},
		{ID: 1, Class: "doomed", PromptLen: 16, OutputLen: 100000, ArrivalAt: 5 * time.Second},
	}
	mgr := NewChunkedKV(newServeAlloc(sim.GiB/4), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4})
	if err == nil {
		t.Fatal("expected a stuck-mid-decode error")
	}
	if rep.Served != 1 || rep.Duration <= 0 {
		t.Fatalf("sealed report wrong: served %d, duration %v", rep.Served, rep.Duration)
	}
	doomed := rep.Class("doomed")
	if doomed == nil || doomed.Served != 0 {
		t.Fatalf("stuck request misreported: %+v", doomed)
	}
	if doomed.TTFT.P50 <= 0 {
		t.Fatal("stuck request generated tokens; its TTFT sample must be kept")
	}
	if doomed.E2E != (LatencySummary{}) {
		t.Fatal("unfinished request must not contribute an E2E sample")
	}
}

// TestAdmitFailuresCountsDistinctRequests: one head-of-line request blocked
// across many steps is one admission failure, not one per step; the per-step
// view lives in BlockedSteps.
func TestAdmitFailuresCountsDistinctRequests(t *testing.T) {
	// An 8-block pool: the first request's 80-token prompt takes 5 blocks,
	// so the identical second request (5 blocks) blocks until the first
	// completes ~32 steps later.
	reqs := []Request{
		{ID: 0, PromptLen: 80, OutputLen: 32},
		{ID: 1, PromptLen: 80, OutputLen: 32},
	}
	mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 2 {
		t.Fatalf("served %d of 2", rep.Served)
	}
	if rep.AdmitFailures != 1 {
		t.Fatalf("AdmitFailures = %d, want 1 distinct blocked request", rep.AdmitFailures)
	}
	if rep.BlockedSteps < 5 {
		t.Fatalf("BlockedSteps = %d, want the multi-step wait visible", rep.BlockedSteps)
	}
}

// TestTTFTPreservedAcrossPreemption: recompute-preemption requeues the whole
// sequence, but the first token already streamed to the client — the TTFT
// recorded at first decode must survive eviction, requeue and re-admission
// untouched. The test drives the server's own loop methods so it can watch
// first-token times step by step and catch sequences waiting in the pending
// set again after having produced tokens.
func TestTTFTPreservedAcrossPreemption(t *testing.T) {
	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, Request{
			ID: i, Class: []string{"bulk", "std", "gold"}[i%3], Priority: i % 3,
			PromptLen: 16, OutputLen: 64 + 8*(i%4),
		})
	}
	mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 28)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	s, err := newServer(reqs, mgr, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}

	firstSeen := map[*track]time.Duration{}
	requeuedAfterFirst := map[*track]bool{}
	for {
		more, err := s.runOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		// Visit every live track (the server retains no per-request records
		// after completion): the running batch plus both pending indexes.
		seeFirst := func(rec *track) {
			if rec.hasFirst {
				if _, ok := firstSeen[rec]; !ok {
					firstSeen[rec] = rec.firstToken
				}
			}
		}
		for _, a := range s.running {
			seeFirst(a.rec)
		}
		s.ready.Ascend(func(n *container.Node[waiting]) bool {
			seeFirst(n.Value.rec)
			return true
		})
		s.future.ascend(func(w waiting) { seeFirst(w.rec) })
		// A record with a first token sitting in the pending set again was
		// preempted after it started streaming.
		s.ready.Ascend(func(n *container.Node[waiting]) bool {
			if n.Value.rec.hasFirst {
				requeuedAfterFirst[n.Value.rec] = true
			}
			return true
		})
	}
	s.finish()

	if len(requeuedAfterFirst) == 0 {
		t.Fatal("no sequence was preempted after its first token; testbed no longer exercises the invariant")
	}
	for rec, first := range firstSeen {
		if rec.firstToken != first {
			t.Fatalf("request %d: firstToken moved from %v to %v across preemption",
				rec.req.ID, first, rec.firstToken)
		}
	}
	if s.rep.Served != len(reqs) {
		t.Fatalf("served %d of %d", s.rep.Served, len(reqs))
	}
}
