package serve

import (
	"testing"

	"repro/internal/caching"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/model"
	"repro/internal/sim"
)

func newServeAlloc(capacity int64) memalloc.Allocator {
	clock := sim.NewClock()
	dev := gpu.NewDevice("t", capacity)
	return caching.New(cuda.NewDriver(dev, clock, sim.DefaultCostModel()))
}

func TestKVBytesPerToken(t *testing.T) {
	got := KVBytesPerToken(model.OPT13B)
	want := int64(2 * 40 * 5120 * 2)
	if got != want {
		t.Fatalf("KVBytesPerToken = %d, want %d", got, want)
	}
}

func TestGenRequestsDeterministicAndInRange(t *testing.T) {
	cfg := DefaultGenConfig()
	a, err := GenRequests(100, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenRequests(100, cfg, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different requests")
		}
		if a[i].PromptLen < cfg.MinPrompt || a[i].PromptLen > cfg.MaxPrompt {
			t.Fatalf("prompt %d out of range", a[i].PromptLen)
		}
		if a[i].OutputLen < cfg.MinOutput || a[i].OutputLen > cfg.MaxOutput {
			t.Fatalf("output %d out of range", a[i].OutputLen)
		}
	}
	c, _ := GenRequests(100, cfg, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical requests")
	}
}

func TestGenRequestsValidation(t *testing.T) {
	if _, err := GenRequests(0, DefaultGenConfig(), 1); err == nil {
		t.Fatal("accepted zero requests")
	}
	if _, err := GenRequests(1, GenConfig{MinPrompt: 10, MaxPrompt: 5, MinOutput: 1, MaxOutput: 2}, 1); err == nil {
		t.Fatal("accepted inverted prompt range")
	}
}

func TestContiguousLifecycleAndWaste(t *testing.T) {
	alloc := newServeAlloc(8 * sim.GiB)
	mgr := NewContiguousKV(alloc, model.OPT1_3B, 1024)
	h, err := mgr.Admit(Request{ID: 1, PromptLen: 100, OutputLen: 50})
	if err != nil {
		t.Fatal(err)
	}
	perTok := KVBytesPerToken(model.OPT1_3B)
	if got := mgr.LogicalBytes(); got != 100*perTok {
		t.Fatalf("logical = %d", got)
	}
	if mgr.UsedBytes() < 1024*perTok {
		t.Fatalf("used = %d, want ≥ full padded buffer", mgr.UsedBytes())
	}
	if w := WasteRatio(mgr); w < 0.85 {
		t.Fatalf("pad-to-max waste = %.2f, expected ≥ 0.85 for a 100/1024 fill", w)
	}
	for i := 0; i < 50; i++ {
		if err := mgr.Append(h); err != nil {
			t.Fatal(err)
		}
	}
	mgr.Release(h)
	if mgr.UsedBytes() != 0 || mgr.LogicalBytes() != 0 {
		t.Fatal("release leaked accounting")
	}
	if alloc.Stats().Active != 0 {
		t.Fatal("release leaked device memory")
	}
}

func TestContiguousRejectsOversizedRequest(t *testing.T) {
	mgr := NewContiguousKV(newServeAlloc(sim.GiB), model.OPT1_3B, 128)
	if _, err := mgr.Admit(Request{PromptLen: 100, OutputLen: 100}); err == nil {
		t.Fatal("oversized request admitted")
	}
}

func TestContiguousAppendBeyondMaxErrors(t *testing.T) {
	mgr := NewContiguousKV(newServeAlloc(sim.GiB), model.OPT1_3B, 4)
	h, err := mgr.Admit(Request{PromptLen: 4, OutputLen: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Append(h); err == nil {
		t.Fatal("append past max succeeded")
	}
}

func TestPagedBlockAccounting(t *testing.T) {
	alloc := newServeAlloc(8 * sim.GiB)
	mgr, err := NewPagedKV(alloc, model.OPT1_3B, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	// 33 prompt tokens → 3 blocks of 16.
	h, err := mgr.Admit(Request{PromptLen: 33, OutputLen: 0})
	if err != nil {
		t.Fatal(err)
	}
	perTok := KVBytesPerToken(model.OPT1_3B)
	if got := mgr.UsedBytes(); got != 3*16*perTok {
		t.Fatalf("used = %d, want 3 blocks", got)
	}
	// Waste bounded by the partial block: 48−33 = 15 tokens.
	if w := WasteRatio(mgr); w > float64(15)/float64(48)+1e-9 {
		t.Fatalf("paged waste %.3f above partial-block bound", w)
	}
	// 15 appends fill block 3; the 16th takes a 4th block.
	for i := 0; i < 15; i++ {
		if err := mgr.Append(h); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.UsedBytes() != 3*16*perTok {
		t.Fatal("filling a partial block must not take a new one")
	}
	if err := mgr.Append(h); err != nil {
		t.Fatal(err)
	}
	if mgr.UsedBytes() != 4*16*perTok {
		t.Fatal("crossing a block boundary must take a new block")
	}
	mgr.Release(h)
	if mgr.UsedBytes() != 0 {
		t.Fatal("release did not return blocks")
	}
}

func TestPagedExhaustionAndReuse(t *testing.T) {
	alloc := newServeAlloc(8 * sim.GiB)
	mgr, err := NewPagedKV(alloc, model.OPT1_3B, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	h1, err := mgr.Admit(Request{PromptLen: 64, OutputLen: 0}) // all 4 blocks
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Admit(Request{PromptLen: 1, OutputLen: 0}); err == nil {
		t.Fatal("admission with zero free blocks succeeded")
	}
	mgr.Release(h1)
	if _, err := mgr.Admit(Request{PromptLen: 64, OutputLen: 0}); err != nil {
		t.Fatalf("blocks not reusable after release: %v", err)
	}
}

func TestPagedValidation(t *testing.T) {
	if _, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 0, 4); err == nil {
		t.Fatal("accepted zero block tokens")
	}
	// Slab bigger than the device must fail cleanly.
	if _, err := NewPagedKV(newServeAlloc(64*sim.MiB), model.OPT13B, 16, 1<<20); err == nil {
		t.Fatal("oversized slab accepted")
	}
}

func TestChunkedGrowthAndRelease(t *testing.T) {
	alloc := newServeAlloc(8 * sim.GiB)
	mgr := NewChunkedKV(alloc, model.OPT1_3B, 64)
	h, err := mgr.Admit(Request{PromptLen: 65, OutputLen: 0})
	if err != nil {
		t.Fatal(err)
	}
	perTok := KVBytesPerToken(model.OPT1_3B)
	// Prefill is one right-sized buffer: 65 tokens exactly (mod rounding).
	if got := mgr.UsedBytes(); got < 65*perTok || got > 66*perTok {
		t.Fatalf("prefill used = %d, want ≈ 65 tokens", got)
	}
	// The first append hits capacity and grows one 64-token decode chunk;
	// the next 63 stay inside it; the 65th grows again.
	before := mgr.UsedBytes()
	if err := mgr.Append(h); err != nil {
		t.Fatal(err)
	}
	afterGrow := mgr.UsedBytes()
	if afterGrow <= before {
		t.Fatal("append at capacity did not grow a chunk")
	}
	for i := 0; i < 63; i++ {
		if err := mgr.Append(h); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.UsedBytes() != afterGrow {
		t.Fatal("append inside a chunk grew memory")
	}
	if err := mgr.Append(h); err != nil {
		t.Fatal(err)
	}
	if mgr.UsedBytes() <= afterGrow {
		t.Fatal("crossing a chunk boundary did not grow")
	}
	mgr.Release(h)
	if mgr.UsedBytes() != 0 || alloc.Stats().Active != 0 {
		t.Fatal("chunked release leaked")
	}
}

func TestChunkedAdmitRollsBackOnOOM(t *testing.T) {
	alloc := newServeAlloc(16 * sim.MiB)
	mgr := NewChunkedKV(alloc, model.OPT13B, 64)
	// One 64-token chunk of OPT-13B KV is 64·819200 B = 50 MiB > device.
	if _, err := mgr.Admit(Request{PromptLen: 640, OutputLen: 0}); err == nil {
		t.Fatal("admission succeeded beyond capacity")
	}
	if mgr.UsedBytes() != 0 || alloc.Stats().Active != 0 {
		t.Fatal("failed admission leaked partial chunks")
	}
}

func TestWasteOrderingAcrossPolicies(t *testing.T) {
	// Same request on all three managers. Contiguous pads to max and
	// wastes most. Paged wastes at most one partial block. Chunked's
	// *manager-level* waste is near zero because the prompt buffer is
	// right-sized — its cost shows up as pool fragmentation in the backing
	// allocator instead, which is the paper's scope distinction.
	req := Request{PromptLen: 100, OutputLen: 0}

	contig := NewContiguousKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 1024)
	if _, err := contig.Admit(req); err != nil {
		t.Fatal(err)
	}
	paged, err := NewPagedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 16, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	if _, err := paged.Admit(req); err != nil {
		t.Fatal(err)
	}
	chunked := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
	if _, err := chunked.Admit(req); err != nil {
		t.Fatal(err)
	}

	wc, wp, wk := WasteRatio(contig), WasteRatio(paged), WasteRatio(chunked)
	if !(wk < wp && wp < wc) {
		t.Fatalf("waste ordering chunked %.3f < paged %.3f < contiguous %.3f violated", wk, wp, wc)
	}
	if wk > 0.01 {
		t.Fatalf("chunked manager-level waste %.3f should be ≈ 0", wk)
	}
}

func TestUnknownHandlesAreSafe(t *testing.T) {
	mgr := NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64)
	if err := mgr.Append(SeqHandle(42)); err == nil {
		t.Fatal("append on unknown handle succeeded")
	}
	mgr.Release(SeqHandle(42)) // must not panic
	contig := NewContiguousKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64)
	if err := contig.Append(SeqHandle(1)); err == nil {
		t.Fatal("append on unknown handle succeeded")
	}
	contig.Release(SeqHandle(1))
}

func TestAdmitRejectsEmptyPrompt(t *testing.T) {
	bad := Request{ID: 1, PromptLen: 0, OutputLen: 4}
	if _, err := NewContiguousKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64).Admit(bad); err == nil {
		t.Fatal("contiguous admitted empty prompt")
	}
	paged, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	if _, err := paged.Admit(bad); err == nil {
		t.Fatal("paged admitted empty prompt")
	}
	if _, err := NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64).Admit(bad); err == nil {
		t.Fatal("chunked admitted empty prompt")
	}
}
