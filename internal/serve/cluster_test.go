package serve

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// chunkedFactory returns a per-replica chunked manager over a private pool.
func chunkedFactory(capacity int64) func(int) CacheManager {
	return func(int) CacheManager {
		return NewChunkedKV(newServeAlloc(capacity), model.OPT1_3B, 64)
	}
}

// mixedStream is a deterministic two-class arrival-spread request stream
// that keeps a small server busy enough to queue.
func mixedStream(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		r := Request{ID: i, PromptLen: 32 + (i*37)%96, OutputLen: 8 + (i*13)%24,
			ArrivalAt: time.Duration(i) * 40 * time.Millisecond}
		if i%3 == 0 {
			r.Class, r.SLO, r.Priority = "batch", "batch", 0
		} else {
			r.Class, r.SLO, r.Priority = "chat", "interactive", 2
		}
		reqs[i] = r
	}
	return reqs
}

// TestClusterSingleReplicaMatchesServe is the differential acceptance
// criterion: a one-replica cluster must reproduce the single-server Serve
// loop field for field, whatever the dispatch policy, on both an
// unconstrained and a preemption-heavy (paged) testbed.
func TestClusterSingleReplicaMatchesServe(t *testing.T) {
	reqs := mixedStream(60)
	srvCfg := ServerConfig{MaxBatch: 6}

	managers := map[string]func() CacheManager{
		"chunked": func() CacheManager {
			return NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
		},
		"paged-tight": func() CacheManager {
			mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 40)
			if err != nil {
				t.Fatal(err)
			}
			return mgr
		},
	}
	for name, mk := range managers {
		want, err := Serve(reqs, mk(), srvCfg)
		if err != nil {
			t.Fatalf("%s: Serve: %v", name, err)
		}
		for _, policy := range DispatchPolicies() {
			got, err := ServeCluster(reqs, func(int) CacheManager { return mk() },
				ClusterConfig{Replicas: 1, Dispatch: policy, Server: srvCfg})
			if err != nil {
				t.Fatalf("%s/%s: ServeCluster: %v", name, policy, err)
			}
			if !reflect.DeepEqual(got.Report, want) {
				t.Errorf("%s/%s: one-replica cluster diverged from Serve:\ncluster %+v\nserve   %+v",
					name, policy, got.Report, want)
			}
			if len(got.Replicas) != 1 || !reflect.DeepEqual(got.Replicas[0], want) {
				t.Errorf("%s/%s: replica report diverged from Serve", name, policy)
			}
			if got.Assigned[0] != len(reqs) {
				t.Errorf("%s/%s: assigned %d of %d", name, policy, got.Assigned[0], len(reqs))
			}
		}
	}
}

// TestClusterDeterministic: the cluster co-simulation is event-ordered, so
// two runs over the same input are deep-equal for every dispatch policy.
func TestClusterDeterministic(t *testing.T) {
	reqs := mixedStream(80)
	for _, policy := range DispatchPolicies() {
		cfg := ClusterConfig{Replicas: 3, Dispatch: policy,
			Server: ServerConfig{MaxBatch: 4, Aging: 2 * time.Second}}
		a, errA := ServeCluster(reqs, chunkedFactory(8*sim.GiB), cfg)
		b, errB := ServeCluster(reqs, chunkedFactory(8*sim.GiB), cfg)
		if errA != nil || errB != nil {
			t.Fatalf("%s: %v / %v", policy, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two identical cluster runs diverged", policy)
		}
	}
}

// TestClusterServesEverythingAndScales: every dispatch policy completes the
// full stream, per-replica serves and assignments account for every request,
// and adding replicas shrinks the backlogged makespan.
func TestClusterServesEverythingAndScales(t *testing.T) {
	reqs := mixedStream(90)
	for _, policy := range DispatchPolicies() {
		single, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB),
			ClusterConfig{Replicas: 1, Dispatch: policy, Server: ServerConfig{MaxBatch: 2}})
		if err != nil {
			t.Fatal(err)
		}
		quad, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB),
			ClusterConfig{Replicas: 4, Dispatch: policy, Server: ServerConfig{MaxBatch: 2}})
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range []ClusterReport{single, quad} {
			if rep.Served != len(reqs) {
				t.Fatalf("%s: served %d of %d", policy, rep.Served, len(reqs))
			}
			sumServed, sumAssigned := 0, 0
			for i, r := range rep.Replicas {
				sumServed += r.Served
				sumAssigned += rep.Assigned[i]
			}
			if sumServed != len(reqs) || sumAssigned != len(reqs) {
				t.Fatalf("%s: replica served %d / assigned %d, want %d",
					policy, sumServed, sumAssigned, len(reqs))
			}
		}
		if quad.Duration >= single.Duration {
			t.Errorf("%s: 4 replicas makespan %v not below 1 replica %v",
				policy, quad.Duration, single.Duration)
		}
		if quad.E2E.P99 >= single.E2E.P99 {
			t.Errorf("%s: 4 replicas e2e p99 %v not below 1 replica %v",
				policy, quad.E2E.P99, single.E2E.P99)
		}
	}
}

// TestClusterRoundRobinSpreadsEvenly: the oblivious policy must assign
// near-equal request counts.
func TestClusterRoundRobinSpreadsEvenly(t *testing.T) {
	reqs := mixedStream(91)
	rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB),
		ClusterConfig{Replicas: 4, Dispatch: DispatchRoundRobin, Server: ServerConfig{MaxBatch: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range rep.Assigned {
		want := len(reqs) / 4
		if n != want && n != want+1 {
			t.Fatalf("replica %d assigned %d, want %d or %d (got %v)", i, n, want, want+1, rep.Assigned)
		}
	}
}

// TestClusterLeastKVWeighsTokens: with one huge request followed by small
// ones all due at t=0, round-robin alternates blindly while least-KV parks
// the huge request alone and routes the small ones to the other replica.
func TestClusterLeastKVWeighsTokens(t *testing.T) {
	reqs := []Request{
		{ID: 0, PromptLen: 500, OutputLen: 300},
		{ID: 1, PromptLen: 16, OutputLen: 8},
		{ID: 2, PromptLen: 16, OutputLen: 8},
		{ID: 3, PromptLen: 16, OutputLen: 8},
	}
	run := func(policy DispatchPolicy) []int {
		rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB),
			ClusterConfig{Replicas: 2, Dispatch: policy, Server: ServerConfig{MaxBatch: 4}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Assigned
	}
	if got := run(DispatchRoundRobin); !reflect.DeepEqual(got, []int{2, 2}) {
		t.Fatalf("round-robin assigned %v, want [2 2]", got)
	}
	if got := run(DispatchLeastKV); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("least-kv assigned %v, want [1 3]", got)
	}
}

// TestClusterJSQAvoidsBusyReplica: a long-running job pins replica 0; later
// short arrivals must prefer the emptier replica 1.
func TestClusterJSQAvoidsBusyReplica(t *testing.T) {
	reqs := []Request{{ID: 0, PromptLen: 64, OutputLen: 400}}
	for i := 1; i <= 6; i++ {
		reqs = append(reqs, Request{ID: i, PromptLen: 16, OutputLen: 4,
			ArrivalAt: time.Duration(i) * 200 * time.Millisecond})
	}
	rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB),
		ClusterConfig{Replicas: 2, Dispatch: DispatchJSQ, Server: ServerConfig{MaxBatch: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assigned[1] <= rep.Assigned[0] {
		t.Fatalf("JSQ sent %v; the busy replica should receive fewer requests", rep.Assigned)
	}
}

// overloadStream is a permanent interactive overload (3x the service rate of
// a MaxBatch-2 server) with a handful of batch requests submitted up front —
// the starvation scenario priority aging exists for.
func overloadStream() []Request {
	var reqs []Request
	for i := 0; i < 4; i++ { // saturate both slots immediately
		reqs = append(reqs, Request{ID: len(reqs), Class: "chat", SLO: "interactive",
			Priority: 2, PromptLen: 16, OutputLen: 4})
	}
	for i := 0; i < 280; i++ {
		reqs = append(reqs, Request{ID: len(reqs), Class: "chat", SLO: "interactive",
			Priority: 2, PromptLen: 16, OutputLen: 4,
			ArrivalAt: time.Duration(i) * 20 * time.Millisecond})
	}
	for i := 0; i < 4; i++ {
		reqs = append(reqs, Request{ID: len(reqs), Class: "batch", SLO: "batch",
			Priority: 0, PromptLen: 16, OutputLen: 4})
	}
	return reqs
}

// TestClusterAgingBoundsStarvation is the aging acceptance criterion: under
// a permanent interactive overload the no-aging cluster starves the batch
// class to the end of the run, while priority aging bounds its p99 E2E well
// below that.
func TestClusterAgingBoundsStarvation(t *testing.T) {
	run := func(aging time.Duration) ClusterReport {
		rep, err := ServeCluster(overloadStream(), chunkedFactory(8*sim.GiB),
			ClusterConfig{Replicas: 2, Dispatch: DispatchJSQ,
				Server: ServerConfig{MaxBatch: 1, Aging: aging}})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	starved := run(0)
	aged := run(time.Second)

	sb, ab := starved.Class("batch"), aged.Class("batch")
	if sb == nil || ab == nil {
		t.Fatal("missing batch class report")
	}
	// Without aging the batch requests ride out the entire overload: their
	// p99 E2E is essentially the makespan.
	if float64(sb.E2E.P99) < 0.8*float64(starved.Duration) {
		t.Fatalf("no-aging batch p99 %v vs makespan %v: testbed no longer starves",
			sb.E2E.P99, starved.Duration)
	}
	// With one priority level gained per second of wait, batch outranks
	// fresh interactive traffic after ~2s and completes mid-run.
	if float64(ab.E2E.P99) > 0.5*float64(sb.E2E.P99) {
		t.Fatalf("aging did not bound starvation: batch p99 %v (no aging: %v)",
			ab.E2E.P99, sb.E2E.P99)
	}
	// Aging must not break completeness on either run.
	if starved.Served != aged.Served || starved.Served != len(overloadStream()) {
		t.Fatalf("served %d / %d of %d", starved.Served, aged.Served, len(overloadStream()))
	}
}

// TestServeAgingSingleServer: aging is a ServerConfig knob, so the plain
// Serve loop honours it too — same starvation scenario, one server.
func TestServeAgingSingleServer(t *testing.T) {
	run := func(aging time.Duration) Report {
		mgr := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
		rep, err := Serve(overloadStream(), mgr, ServerConfig{MaxBatch: 2, Aging: aging})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	starved, aged := run(0), run(time.Second)
	if s, a := starved.Class("batch"), aged.Class("batch"); float64(a.E2E.P99) > 0.5*float64(s.E2E.P99) {
		t.Fatalf("single-server aging did not bound starvation: %v vs %v", a.E2E.P99, s.E2E.P99)
	}
}

// TestClusterMergePercentilesFromRawSamples pins the merge rule: the
// cluster-level percentile is the percentile of the union of per-request
// samples, not an average of per-replica percentiles.
func TestClusterMergePercentilesFromRawSamples(t *testing.T) {
	mk := func(latencies ...time.Duration) *server {
		s, err := newEmptyServer(NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64), ServerConfig{MaxBatch: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range latencies {
			s.recordCompletion(&track{
				req:        Request{ID: i, Class: "c"},
				hasFirst:   true,
				firstToken: l,
				done:       l,
			})
		}
		return s
	}
	// Replica A holds the 9 smallest samples, replica B the largest one:
	// every per-replica p99 average lands far from the true union p99.
	a := mk(1*time.Millisecond, 2*time.Millisecond, 3*time.Millisecond, 4*time.Millisecond,
		5*time.Millisecond, 6*time.Millisecond, 7*time.Millisecond, 8*time.Millisecond, 9*time.Millisecond)
	b := mk(100 * time.Millisecond)
	m := mergeReports([]*server{a, b}, nil)
	if m.E2E.P99 != 100*time.Millisecond {
		t.Fatalf("union p99 = %v, want 100ms", m.E2E.P99)
	}
	if m.E2E.P50 != 5*time.Millisecond {
		t.Fatalf("union p50 = %v, want 5ms", m.E2E.P50)
	}
	c := m.Class("c")
	if c == nil || c.E2E.P99 != 100*time.Millisecond {
		t.Fatalf("class union p99 wrong: %+v", c)
	}
}

// TestClusterConfigValidation: bad replica counts, factories and dispatch
// names are rejected up front.
func TestClusterConfigValidation(t *testing.T) {
	reqs := mixedStream(4)
	if _, err := ServeCluster(reqs, chunkedFactory(sim.GiB), ClusterConfig{Replicas: 0, Server: ServerConfig{MaxBatch: 2}}); err == nil {
		t.Fatal("accepted 0 replicas")
	}
	if _, err := ServeCluster(reqs, nil, ClusterConfig{Replicas: 1, Server: ServerConfig{MaxBatch: 2}}); err == nil {
		t.Fatal("accepted nil factory")
	}
	if _, err := ServeCluster(reqs, chunkedFactory(sim.GiB), ClusterConfig{Replicas: 1, Dispatch: "nope", Server: ServerConfig{MaxBatch: 2}}); err == nil {
		t.Fatal("accepted unknown dispatch policy")
	}
	if _, err := ParseDispatch(""); err != nil {
		t.Fatal("empty dispatch should default to round-robin")
	}
}

// TestClusterSealsReportOnReplicaError: when one replica hits a hard error
// mid-run, the cluster report still carries everything that completed —
// per-replica durations, served counts and class rows.
func TestClusterSealsReportOnReplicaError(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: "ok", PromptLen: 16, OutputLen: 4},
		{ID: 1, Class: "ok", PromptLen: 16, OutputLen: 4},
		// Arrives later on a drained replica and can never fit: hard error.
		{ID: 2, Class: "huge", PromptLen: 100000, OutputLen: 4, ArrivalAt: 5 * time.Second},
	}
	rep, err := ServeCluster(reqs, chunkedFactory(sim.GiB/4),
		ClusterConfig{Replicas: 2, Dispatch: DispatchRoundRobin, Server: ServerConfig{MaxBatch: 2}})
	if err == nil {
		t.Fatal("expected a replica error for the unservable request")
	}
	if rep.Served != 2 {
		t.Fatalf("sealed report served %d, want 2", rep.Served)
	}
	if rep.Duration <= 0 {
		t.Fatal("sealed report lost the makespan")
	}
	if c := rep.Class("ok"); c == nil || c.Served != 2 || c.E2E.P99 <= 0 {
		t.Fatalf("sealed report lost completed work: %+v", c)
	}
	if c := rep.Class("huge"); c == nil || c.Served != 0 {
		t.Fatalf("unserved class misreported: %+v", c)
	}
}

// TestClusterSingleReplicaMatchesServeUnsortedInput: the equivalence
// contract holds for input that is NOT arrival-sorted. Dispatched requests
// carry their input position as the FIFO ticket, so same-priority requests
// that end up waiting together are admitted in Serve's order (input order),
// not cluster-queue order — with requeued preemptions tie-breaking above
// both, all on a pool tight enough that the order is observable.
func TestClusterSingleReplicaMatchesServeUnsortedInput(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: "a", PromptLen: 48, OutputLen: 120, ArrivalAt: 5 * time.Second},
		{ID: 1, Class: "b", PromptLen: 48, OutputLen: 120},
		{ID: 2, Class: "c", PromptLen: 48, OutputLen: 120, ArrivalAt: time.Second},
		{ID: 3, Class: "d", PromptLen: 48, OutputLen: 120},
	}
	mk := func() CacheManager {
		mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 20)
		if err != nil {
			t.Fatal(err)
		}
		return mgr
	}
	cfg := ServerConfig{MaxBatch: 4}
	want, err := Serve(reqs, mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Preemptions == 0 || want.BlockedSteps == 0 {
		t.Fatalf("testbed too roomy to observe queueing order: %+v", want)
	}
	got, err := ServeCluster(reqs, func(int) CacheManager { return mk() },
		ClusterConfig{Replicas: 1, Server: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Report, want) {
		t.Fatalf("unsorted input diverged:\ncluster %+v\nserve   %+v", got.Report, want)
	}
}

// TestClusterSealKeepsUndispatchedClasses: a request still waiting in the
// cluster queue when a replica error seals the run must appear in the merged
// class roster unserved — and the sealed one-replica report must equal
// Serve's sealed report for the same failure.
func TestClusterSealKeepsUndispatchedClasses(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: "ok", PromptLen: 16, OutputLen: 4},
		{ID: 1, Class: "huge", PromptLen: 100000, OutputLen: 4, ArrivalAt: 5 * time.Second},
		{ID: 2, Class: "late", PromptLen: 16, OutputLen: 4, ArrivalAt: 10 * time.Second},
	}
	mk := func() CacheManager { return NewChunkedKV(newServeAlloc(sim.GiB/4), model.OPT1_3B, 64) }
	want, serveErr := Serve(reqs, mk(), ServerConfig{MaxBatch: 2})
	rep, err := ServeCluster(reqs, func(int) CacheManager { return mk() },
		ClusterConfig{Replicas: 1, Server: ServerConfig{MaxBatch: 2}})
	if err == nil || serveErr == nil {
		t.Fatal("expected both runs to fail on the unservable request")
	}
	if c := rep.Class("late"); c == nil || c.Served != 0 {
		t.Fatalf("undispatched class dropped from the sealed roster: %+v", c)
	}
	if !reflect.DeepEqual(rep.Report, want) {
		t.Fatalf("sealed cluster report diverged from sealed Serve report:\ncluster %+v\nserve   %+v",
			rep.Report, want)
	}
}
