package serve

import (
	"time"

	"repro/internal/quantile"
)

// DefaultExactSamples is the exact-retention threshold of the latency
// digests when ServerConfig.ExactSamples is zero: up to this many raw
// samples per digest are kept and summarized by the exact nearest-rank rule;
// one sample more and the whole digest spills into a fixed-size quantile
// sketch. The default keeps every harness experiment (≤ a few thousand
// requests) on the exact path — their tables render byte-identically —
// while million-request runs stay flat in memory.
const DefaultExactSamples = 8192

// resolveExactSamples maps the ServerConfig knob to a digest limit:
// 0 = DefaultExactSamples, negative = sketch-only from the first sample.
func resolveExactSamples(v int) int {
	if v == 0 {
		return DefaultExactSamples
	}
	if v < 0 {
		return 0
	}
	return v
}

// latDigest accumulates one latency distribution (TTFT or E2E, per class or
// aggregate). It retains raw samples exactly up to limit; the first sample
// beyond the limit spills everything into a mergeable quantile sketch
// (internal/quantile) and the digest stays O(1) from then on. Whether a
// digest is exact or sketched is a pure function of its total sample count,
// so merging per-replica digests in any order agrees with a single-stream
// digest on which side of the threshold it lands.
type latDigest struct {
	limit int
	exact []time.Duration
	sk    *quantile.Sketch
}

func newLatDigest(limit int) *latDigest { return &latDigest{limit: limit} }

// spill moves every retained sample into the sketch.
func (d *latDigest) spill() {
	if d.sk == nil {
		d.sk = quantile.New()
	}
	for _, v := range d.exact {
		d.sk.Add(int64(v))
	}
	d.exact = nil
}

// add records one sample.
func (d *latDigest) add(v time.Duration) {
	if d.sk == nil && len(d.exact) < d.limit {
		d.exact = append(d.exact, v)
		return
	}
	d.spill()
	d.sk.Add(int64(v))
}

// count returns the total samples recorded.
func (d *latDigest) count() int64 {
	if d.sk != nil {
		return d.sk.Count()
	}
	return int64(len(d.exact))
}

// retained and sketched split count by storage: raw samples held exactly
// versus samples absorbed into the fixed-size sketch — the report's
// memory-footprint proxy.
func (d *latDigest) retained() int64 {
	return int64(len(d.exact))
}

func (d *latDigest) sketched() int64 {
	if d.sk == nil {
		return 0
	}
	return d.sk.Count()
}

// merge folds src into d without modifying src. The merged digest stays
// exact only while the combined count fits d's limit — the same rule a
// single digest fed both streams would apply.
func (d *latDigest) merge(src *latDigest) {
	if d.sk == nil && src.sk == nil && len(d.exact)+len(src.exact) <= d.limit {
		d.exact = append(d.exact, src.exact...)
		return
	}
	d.spill()
	if src.sk != nil {
		// Sketches at the same alpha always merge; both sides come from
		// quantile.New.
		_ = d.sk.Merge(src.sk)
	}
	for _, v := range src.exact {
		d.sk.Add(int64(v))
	}
}

// summary renders the digest's nearest-rank percentiles: the exact rule on
// the retained samples, the sketch's rank query (same integer rank
// arithmetic, within the sketch's documented error bound) after a spill.
func (d *latDigest) summary() LatencySummary {
	if d.sk == nil {
		return summarize(d.exact)
	}
	n := d.sk.Count()
	if n == 0 {
		return LatencySummary{}
	}
	at := func(pct int64) time.Duration {
		return time.Duration(d.sk.Rank((n*pct + 99) / 100))
	}
	return LatencySummary{P50: at(50), P95: at(95), P99: at(99)}
}

// classAgg is one client class's streaming aggregation: the roster entry,
// served count and latency digests that replace the old retained-forever
// per-request record slice.
type classAgg struct {
	slo    string
	served int
	ttft   *latDigest
	e2e    *latDigest
}

func newClassAgg(slo string, limit int) *classAgg {
	return &classAgg{slo: slo, ttft: newLatDigest(limit), e2e: newLatDigest(limit)}
}
