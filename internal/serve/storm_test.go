package serve

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// countingKV wraps a CacheManager and counts successful Appends per handle,
// reset externally at step boundaries.
type countingKV struct {
	CacheManager
	appends map[SeqHandle]int
}

func (c *countingKV) Append(h SeqHandle) error {
	err := c.CacheManager.Append(h)
	if err == nil {
		c.appends[h]++
	}
	return err
}

// TestPreemptionStormStepsEachSequenceExactlyOnce is the regression test
// for the old slice re-indexing (`i = indexOf(running, a)` / `i--`) in the
// decode loop: under a forced preemption storm, every sequence that is in
// the batch when a step starts must be decoded exactly once by that step —
// unless the step itself evicts it, in which case it must not be decoded
// again after eviction. The test drives the server's own admit/step methods
// (the same ones Serve's run loop uses) so it can observe step boundaries,
// with a counting manager recording per-handle Appends.
func TestPreemptionStormStepsEachSequenceExactlyOnce(t *testing.T) {
	// Three priority tiers colliding in a pool that holds only a fraction
	// of the working set: evictions happen mid-step, repeatedly.
	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, Request{
			ID: i, Class: []string{"bulk", "std", "gold"}[i%3], Priority: i % 3,
			PromptLen: 16, OutputLen: 64 + 8*(i%4),
		})
	}
	inner, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 28)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	mgr := &countingKV{CacheManager: inner, appends: map[SeqHandle]int{}}

	s, err := newServer(reqs, mgr, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}

	type snap struct {
		a      *active
		handle SeqHandle
	}
	steps := 0
	for s.pendingLen() > 0 || len(s.running) > 0 {
		prefill, err := s.admit()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.running) == 0 {
			if err := s.jumpToNextArrival(); err != nil {
				t.Fatal(err)
			}
			continue
		}

		batch := make([]snap, 0, len(s.running))
		for _, a := range s.running {
			batch = append(batch, snap{a: a, handle: a.handle})
		}
		mgr.appends = map[SeqHandle]int{}
		if err := s.step(prefill); err != nil {
			t.Fatal(err)
		}
		steps++

		total := 0
		for _, sn := range batch {
			got := mgr.appends[sn.handle]
			total += got
			switch {
			case sn.a.evicted && got > 1:
				t.Fatalf("step %d: evicted request %d decoded %d times", steps, sn.a.rec.req.ID, got)
			case !sn.a.evicted && got != 1:
				t.Fatalf("step %d: request %d decoded %d times, want exactly 1", steps, sn.a.rec.req.ID, got)
			}
		}
		// No decode outside the step's batch: admissions only happen
		// between steps.
		all := 0
		for _, n := range mgr.appends {
			all += n
		}
		if all != total {
			t.Fatalf("step %d: %d appends outside the step's batch", steps, all-total)
		}
		if steps > 100000 {
			t.Fatal("storm run does not terminate")
		}
	}
	s.finish()

	if s.rep.Served != len(reqs) {
		t.Fatalf("served %d of %d", s.rep.Served, len(reqs))
	}
	if s.rep.Preemptions < 10 {
		t.Fatalf("only %d preemptions; the testbed no longer forces a storm", s.rep.Preemptions)
	}
	if used := inner.UsedBytes(); used != 0 {
		t.Fatalf("%d bytes still held after completion", used)
	}

	// The manually-driven loop is the same machinery Serve runs: a fresh
	// end-to-end run over the identical input must produce the identical
	// report.
	inner2, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 28)
	if err != nil {
		t.Fatal(err)
	}
	defer inner2.Close()
	rep, err := Serve(reqs, inner2, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != s.rep.Served || rep.Steps != s.rep.Steps ||
		rep.Preemptions != s.rep.Preemptions || rep.Duration != s.rep.Duration {
		t.Fatalf("driven run diverged from Serve: %+v vs %+v", s.rep, rep)
	}
}

// TestStormVictimOrderInvariant: across an entire storm, no eviction may
// ever claim a victim that outranks the sequence it was evicted for — the
// tree-backed victim selection must enforce the same SLO guarantee the
// linear scan did. The gold class (highest priority, admitted under
// pressure) must finish with zero preemptions while the storm rages below
// it.
func TestStormVictimOrderInvariant(t *testing.T) {
	var reqs []Request
	for i := 0; i < 9; i++ {
		pri := i % 3
		reqs = append(reqs, Request{
			ID: i, Class: []string{"bulk", "std", "gold"}[pri], Priority: pri,
			PromptLen: 16, OutputLen: 96,
		})
	}
	mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != len(reqs) {
		t.Fatalf("served %d of %d", rep.Served, len(reqs))
	}
	if rep.Preemptions == 0 {
		t.Fatal("no preemptions; pool no longer under pressure")
	}
	if g := rep.Class("gold"); g == nil || g.Preemptions != 0 {
		t.Fatalf("gold class preempted with lower-priority victims in the batch: %+v", g)
	}
}
