package serve

import (
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// TestSummarizeEdgeCases tables the degenerate sample shapes a rendered
// report must survive: no samples, a single sample (all three percentiles
// are that sample under nearest-rank), and a pair.
func TestSummarizeEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name    string
		samples []time.Duration
		want    LatencySummary
	}{
		{name: "empty", samples: nil, want: LatencySummary{}},
		{
			name:    "one-sample",
			samples: []time.Duration{7 * time.Millisecond},
			want: LatencySummary{
				P50: 7 * time.Millisecond,
				P95: 7 * time.Millisecond,
				P99: 7 * time.Millisecond,
			},
		},
		{
			// Nearest rank over n=2: p50 → rank 1, p95/p99 → rank 2.
			name:    "two-samples",
			samples: []time.Duration{3 * time.Millisecond, 9 * time.Millisecond},
			want: LatencySummary{
				P50: 3 * time.Millisecond,
				P95: 9 * time.Millisecond,
				P99: 9 * time.Millisecond,
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := summarize(tc.samples); got != tc.want {
				t.Errorf("summarize = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestLatDigestEmptySummary: a digest that never saw a sample renders zero
// percentiles on both the exact path and the sketch path (negative
// ExactSamples sketches from the first sample, so its empty state is an
// empty sketch rather than an empty slice).
func TestLatDigestEmptySummary(t *testing.T) {
	if got := newLatDigest(DefaultExactSamples).summary(); got != (LatencySummary{}) {
		t.Errorf("empty exact digest = %+v", got)
	}
	d := newLatDigest(0) // sketch-only
	d.spill()
	if got := d.summary(); got != (LatencySummary{}) {
		t.Errorf("empty sketched digest = %+v", got)
	}
}

// TestClassRowsZeroCompletionClass: a class whose only requests never
// completed (it exists in the roster via recordUnfinished) must render a
// zero row — no division by zero steps or token·steps, no NaN in the
// occupancy columns.
func TestClassRowsZeroCompletionClass(t *testing.T) {
	classes := map[string]*classAgg{
		"stranded": newClassAgg("interactive", DefaultExactSamples),
	}
	rows := classRows(classes, 0, nil, nil, 0)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Served != 0 || r.TTFT != (LatencySummary{}) || r.E2E != (LatencySummary{}) {
		t.Errorf("zero-completion class row %+v", r)
	}
	if math.IsNaN(r.MeanKVTokens) || math.IsNaN(r.KVShare) {
		t.Errorf("NaN in occupancy: mean=%v share=%v", r.MeanKVTokens, r.KVShare)
	}
	if r.MeanKVTokens != 0 || r.KVShare != 0 {
		t.Errorf("occupancy of a class that held nothing: %+v", r)
	}
}

// TestServeSingleRequestReport: a one-request run end to end. Every
// rendered figure must be finite and the percentile columns collapse to
// the one request's latencies.
func TestServeSingleRequestReport(t *testing.T) {
	reqs := []Request{{ID: 0, PromptLen: 16, OutputLen: 4, Class: "solo", SLO: "interactive"}}
	mgr := NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 1 {
		t.Fatalf("served %d", rep.Served)
	}
	for label, v := range map[string]float64{
		"MeanBatch":   rep.MeanBatch,
		"Utilization": rep.Utilization(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v", label, v)
		}
	}
	if rep.TTFT.P50 != rep.TTFT.P99 || rep.E2E.P50 != rep.E2E.P99 {
		t.Errorf("single-request percentiles differ: TTFT %+v E2E %+v", rep.TTFT, rep.E2E)
	}
	if rep.TTFT.P50 <= 0 || rep.E2E.P50 < rep.TTFT.P50 {
		t.Errorf("implausible latencies: TTFT %v E2E %v", rep.TTFT.P50, rep.E2E.P50)
	}
	if len(rep.Classes) != 1 || rep.Classes[0].Class != "solo" || rep.Classes[0].Served != 1 {
		t.Errorf("classes %+v", rep.Classes)
	}
	if got := rep.Classes[0]; math.IsNaN(got.MeanKVTokens) || math.IsNaN(got.KVShare) {
		t.Errorf("NaN in the class row: %+v", got)
	}
}
