package serve

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// classedRequests builds two classes of identical shape: "gold" (priority
// 2, interactive) and "bulk" (priority 0, batch), all available at t=0.
func classedRequests(n int) []Request {
	reqs := make([]Request, 0, 2*n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{
			ID: len(reqs), Class: "bulk", SLO: "batch", Priority: 0,
			PromptLen: 64, OutputLen: 32,
		})
		reqs = append(reqs, Request{
			ID: len(reqs), Class: "gold", SLO: "interactive", Priority: 2,
			PromptLen: 64, OutputLen: 32,
		})
	}
	return reqs
}

func TestPerClassReportStructure(t *testing.T) {
	reqs := classedRequests(10)
	mgr := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("%d class reports, want 2", len(rep.Classes))
	}
	if rep.Classes[0].Class != "bulk" || rep.Classes[1].Class != "gold" {
		t.Fatalf("classes not sorted: %s, %s", rep.Classes[0].Class, rep.Classes[1].Class)
	}
	var served int
	var share float64
	for _, c := range rep.Classes {
		served += c.Served
		share += c.KVShare
		if c.TTFT.P50 <= 0 || c.TTFT.P50 > c.TTFT.P95 || c.TTFT.P95 > c.TTFT.P99 {
			t.Fatalf("%s: TTFT percentiles disordered: %+v", c.Class, c.TTFT)
		}
		if c.E2E.P50 < c.TTFT.P50 {
			t.Fatalf("%s: e2e p50 below TTFT p50", c.Class)
		}
		if c.MeanKVTokens <= 0 {
			t.Fatalf("%s: no KV occupancy", c.Class)
		}
	}
	if served != rep.Served || served != len(reqs) {
		t.Fatalf("class served %d, report %d, want %d", served, rep.Served, len(reqs))
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("KV shares sum to %.4f", share)
	}
	if rep.Class("gold") == nil || rep.Class("nope") != nil {
		t.Fatal("Class lookup broken")
	}
	if rep.Duration <= 0 {
		t.Fatal("no virtual makespan")
	}
}

// TestPriorityAdmissionOrdersTTFT: with a pool that holds only a few
// sequences, the high-priority class must be admitted first and see far
// lower TTFT than the low-priority class submitted at the same instant.
func TestPriorityAdmissionOrdersTTFT(t *testing.T) {
	reqs := classedRequests(12)
	// 4-sequence pool: 4 × (64+32) tokens of OPT-1.3B KV.
	mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 24)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	gold, bulk := rep.Class("gold"), rep.Class("bulk")
	if gold == nil || bulk == nil {
		t.Fatal("missing class reports")
	}
	if gold.TTFT.P95 >= bulk.TTFT.P50 {
		t.Fatalf("priority admission broken: gold TTFT p95 %v vs bulk p50 %v",
			gold.TTFT.P95, bulk.TTFT.P50)
	}
}

// TestPreemptionPrefersLowPriority: when a mid-decode Append hits the
// memory wall, the batch class must be evicted, never the interactive one.
func TestPreemptionPrefersLowPriority(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: "bulk", SLO: "batch", Priority: 0, PromptLen: 16, OutputLen: 64},
		{ID: 1, Class: "bulk", SLO: "batch", Priority: 0, PromptLen: 16, OutputLen: 64},
		{ID: 2, Class: "gold", SLO: "interactive", Priority: 2, PromptLen: 16, OutputLen: 64},
	}
	mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 3 {
		t.Fatalf("served %d of 3", rep.Served)
	}
	if rep.Preemptions == 0 {
		t.Fatal("expected preemptions on a 7-block pool")
	}
	if g := rep.Class("gold"); g.Preemptions != 0 {
		t.Fatalf("interactive class preempted %d times with batch victims available", g.Preemptions)
	}
	if b := rep.Class("bulk"); b.Preemptions != rep.Preemptions {
		t.Fatalf("bulk preemptions %d, total %d", b.Preemptions, rep.Preemptions)
	}
}

// TestArrivalsRespected: the server never admits a request before its
// arrival, idles forward to the next arrival, and TTFT is measured from
// arrival, not from t=0.
func TestArrivalsRespected(t *testing.T) {
	gap := 5 * time.Second
	reqs := []Request{
		{ID: 0, Class: "a", PromptLen: 8, OutputLen: 4},
		{ID: 1, Class: "b", PromptLen: 8, OutputLen: 4, ArrivalAt: gap},
	}
	mgr := NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration < gap {
		t.Fatalf("makespan %v ends before the second arrival at %v", rep.Duration, gap)
	}
	b := rep.Class("b")
	// If arrival were ignored, b's TTFT would include the 5s wait.
	if b.TTFT.P50 > time.Second {
		t.Fatalf("b's TTFT %v includes pre-arrival time", b.TTFT.P50)
	}
	// The idle server must fast-forward, not spin: two short requests
	// yield only a handful of steps.
	if rep.Steps > 20 {
		t.Fatalf("%d steps for 8 output tokens; idle spin suspected", rep.Steps)
	}
}

// TestServeDeterministic: identical inputs produce identical reports,
// including the per-class latency tables.
func TestServeDeterministic(t *testing.T) {
	run := func() Report {
		reqs := classedRequests(15)
		mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 32)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 6})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Classes) != len(b.Classes) {
		t.Fatal("class counts differ")
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			t.Fatalf("class report %d differs:\n%+v\n%+v", i, a.Classes[i], b.Classes[i])
		}
	}
	if a.Duration != b.Duration || a.Steps != b.Steps || a.Preemptions != b.Preemptions {
		t.Fatal("aggregate run state differs across identical runs")
	}
}

// TestNoMutualPreemptionLivelock: two same-priority sequences that each
// fit the pool alone but cannot coexist must not preempt each other
// forever. The victim rule (only strictly-lower priority, or same priority
// admitted later) keeps the older sequence unevictable, so it completes
// and the run terminates.
func TestNoMutualPreemptionLivelock(t *testing.T) {
	reqs := []Request{
		{ID: 0, Class: "a", Priority: 2, PromptLen: 64, OutputLen: 120}, // 12 blocks at completion
		{ID: 1, Class: "b", Priority: 2, PromptLen: 64, OutputLen: 120}, // 12 blocks at completion
	}
	// 16 blocks: each sequence fits alone (12), the pair (24) never does,
	// and growing in lockstep they collide mid-decode at 17.
	mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	type result struct {
		rep Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 2})
		done <- result{rep, err}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.rep.Served != 2 {
			t.Fatalf("served %d of 2", res.rep.Served)
		}
		if res.rep.Preemptions == 0 {
			t.Fatal("the pair coexisted; the testbed no longer exercises preemption")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mutual-preemption livelock: Serve did not terminate")
	}
}

// TestLatencySummaryPercentiles pins the nearest-rank definition.
func TestLatencySummaryPercentiles(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := summarize(samples)
	if s.P50 != 50*time.Millisecond || s.P95 != 95*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Fatalf("percentiles %+v", s)
	}
	if (summarize(nil) != LatencySummary{}) {
		t.Fatal("empty sample summary not zero")
	}
	one := summarize([]time.Duration{time.Second})
	if one.P50 != time.Second || one.P99 != time.Second {
		t.Fatalf("singleton summary %+v", one)
	}
}
