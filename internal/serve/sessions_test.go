package serve

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// sessionStream builds a deterministic multi-turn stream: nSessions
// conversations of `turns` turns each, prompts growing by the prior
// exchange plus a fixed delta, interleaved across sessions by arrival.
func sessionStream(nSessions, turns int) []Request {
	var reqs []Request
	id := 0
	for s := 0; s < nSessions; s++ {
		prompt := 64 + (s*17)%64
		at := time.Duration(s) * 150 * time.Millisecond
		for turn := 0; turn < turns; turn++ {
			output := 12 + (s*7+turn*5)%20
			reqs = append(reqs, Request{
				ID: id, Class: "chat", SLO: "interactive", Priority: 2,
				ArrivalAt: at, PromptLen: prompt, OutputLen: output,
				SessionID: string(rune('a'+s%26)) + "#" + string(rune('0'+s/26)),
				Turn:      turn,
			})
			id++
			at += 2 * time.Second // past the turn's service time: think gap
			prompt += output + 24 + (turn*11)%16
		}
	}
	// Canonical arrival order, IDs renumbered like a generated stream.
	for i := 0; i < len(reqs); i++ {
		for j := i + 1; j < len(reqs); j++ {
			if reqs[j].ArrivalAt < reqs[i].ArrivalAt {
				reqs[i], reqs[j] = reqs[j], reqs[i]
			}
		}
	}
	for i := range reqs {
		reqs[i].ID = i
	}
	return reqs
}

// TestPrefixReuseCutsTTFT: the session tentpole's compute model on one
// server — with reuse on, a follow-up turn whose prefix is resident skips
// that many prompt tokens of prefill, so its TTFT (the p99 of a two-request
// run) drops by exactly the skipped prefill time, and the report counts the
// hit and the reused tokens.
func TestPrefixReuseCutsTTFT(t *testing.T) {
	reqs := []Request{
		{ID: 0, ArrivalAt: 0, PromptLen: 256, OutputLen: 16, SessionID: "s#0", Turn: 0},
		// The follow-up prompt is large enough that its TTFT stays the run's
		// maximum even after the reuse discount, so the p99 delta below
		// isolates exactly the skipped prefill.
		{ID: 1, ArrivalAt: 20 * time.Second, PromptLen: 1024, OutputLen: 16, SessionID: "s#0", Turn: 1},
	}
	run := func(reuse bool) Report {
		mgr := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
		rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4, PrefixReuse: reuse})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run(false)
	on := run(true)
	if off.PrefixHits != 0 || off.ReusedTokens != 0 {
		t.Fatalf("reuse off but counted hits: %+v", off)
	}
	// Turn 0 left prompt+output = 272 tokens resident; turn 1 reuses all of
	// them against its 1024-token prompt.
	if on.PrefixHits != 1 || on.ReusedTokens != 272 {
		t.Fatalf("hits %d reused %d, want 1/272", on.PrefixHits, on.ReusedTokens)
	}
	saved := time.Duration(on.ReusedTokens) * DefaultPrefillTokenTime
	if got, want := off.TTFT.P99-on.TTFT.P99, saved; got != want {
		t.Fatalf("turn-1 TTFT saved %v, want exactly %v (off %v on %v)",
			got, want, off.TTFT.P99, on.TTFT.P99)
	}
	// Turn 0 is identical in both runs: no residency exists at its admit.
	if off.TTFT.P50 != on.TTFT.P50 {
		t.Fatalf("turn-0 TTFT changed under reuse: %v vs %v", off.TTFT.P50, on.TTFT.P50)
	}
}

// TestPrefixMissCounting: a turn > 0 with no residency is a miss, a turn 0
// never is, and residency is consumed per admit against the live map.
func TestPrefixMissCounting(t *testing.T) {
	reqs := []Request{
		// A session whose first turn was served elsewhere: immediate miss.
		{ID: 0, ArrivalAt: 0, PromptLen: 64, OutputLen: 8, SessionID: "x#0", Turn: 3},
		// A plain one-shot request: neither hit nor miss.
		{ID: 1, ArrivalAt: 5 * time.Second, PromptLen: 64, OutputLen: 8},
	}
	mgr := NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64)
	rep, err := Serve(reqs, mgr, ServerConfig{MaxBatch: 4, PrefixReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrefixHits != 0 || rep.PrefixMisses != 1 || rep.ReusedTokens != 0 {
		t.Fatalf("hits/misses/reused = %d/%d/%d, want 0/1/0",
			rep.PrefixHits, rep.PrefixMisses, rep.ReusedTokens)
	}
}

// TestCrashClearsResidency: a crash loses the replica's KV wholesale, so
// every resident session prefix must vanish with it.
func TestCrashClearsResidency(t *testing.T) {
	mgr := NewChunkedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 64)
	s, err := newEmptyServer(mgr, ServerConfig{MaxBatch: 2, PrefixReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	s.resident["a#0"] = 128
	s.resident["b#0"] = 64
	if !s.hasResident("a#0") {
		t.Fatal("residency not visible before crash")
	}
	s.crash(time.Second)
	if len(s.resident) != 0 || s.hasResident("a#0") || s.hasResident("b#0") {
		t.Fatalf("crash left residency behind: %v", s.resident)
	}
}

// TestSessionAccountingInvariants runs the session stream through a fleet
// under affinity dispatch with reuse on and checks the white-box accounting:
// reused tokens never exceed the stream's prompt tokens, every request is
// served, and after the drain each replica's outstanding-KV numerator
// (dispatchedTokens − doneTokens) is exactly zero.
func TestSessionAccountingInvariants(t *testing.T) {
	reqs := sessionStream(8, 4)
	c, err := newClusterSched(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
		Replicas:     3,
		Dispatch:     DispatchSessionAffinity,
		AffinityBase: DispatchJSQ,
		Server:       ServerConfig{MaxBatch: 4, PrefixReuse: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != len(reqs) {
		t.Fatalf("served %d of %d", rep.Served, len(reqs))
	}
	var promptTokens int64
	for _, r := range reqs {
		promptTokens += int64(r.PromptLen)
	}
	if rep.ReusedTokens <= 0 || rep.ReusedTokens > promptTokens {
		t.Fatalf("reused %d tokens outside (0, %d]", rep.ReusedTokens, promptTokens)
	}
	if rep.AffinityRouted <= 0 {
		t.Fatal("affinity never routed on a pure session stream")
	}
	for i, r := range c.fleet {
		if out := r.dispatchedTokens - r.srv.doneTokens; out != 0 {
			t.Errorf("replica %d: %d outstanding tokens after drain", i, out)
		}
	}
}

// TestZeroSessionConfigByteIdentical is the regression differential: on a
// stream with no sessions, turning PrefixReuse on must not change one byte
// of the report, and session-affinity must reproduce its base policy
// exactly — across dispatch, elastic, stealing and fault configurations.
func TestZeroSessionConfigByteIdentical(t *testing.T) {
	reqs := mixedStream(60)
	bases := []ClusterConfig{
		{Replicas: 3, Dispatch: DispatchRoundRobin},
		{Replicas: 3, Dispatch: DispatchJSQ},
		{Replicas: 3, Dispatch: DispatchLeastKV},
		{Replicas: 3, Dispatch: DispatchJSQ, Steal: true},
		{Replicas: 1, MinReplicas: 1, MaxReplicas: 3, Dispatch: DispatchJSQ},
		{Replicas: 3, Dispatch: DispatchJSQ,
			Server:   ServerConfig{Timeout: 60 * time.Second},
			Faults:   FaultConfig{MTTF: 2 * time.Second, MTTR: 300 * time.Millisecond, Seed: 5},
			Recovery: RecoveryConfig{Retries: 3, Backoff: 2}},
	}
	run := func(cfg ClusterConfig) ClusterReport {
		if cfg.Server.MaxBatch == 0 {
			cfg.Server.MaxBatch = 4
		}
		rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		return rep
	}
	for _, base := range bases {
		plain := run(base)
		withReuse := base
		withReuse.Server.PrefixReuse = true
		if got := run(withReuse); !reflect.DeepEqual(got, plain) {
			t.Errorf("dispatch %s: PrefixReuse changed a sessionless run:\nwith    %+v\nwithout %+v",
				base.Dispatch, got.Report, plain.Report)
		}
		affinity := base
		affinity.AffinityBase = base.Dispatch
		affinity.Dispatch = DispatchSessionAffinity
		affinity.Server.PrefixReuse = true
		if got := run(affinity); !reflect.DeepEqual(got, plain) {
			t.Errorf("dispatch %s: session-affinity diverged from its base on a sessionless run:\naffinity %+v\nbase     %+v",
				base.Dispatch, got.Report, plain.Report)
		}
	}
}

// TestSessionClusterDeterministic: the full session machinery — growing
// prompts, residency, sticky dispatch, faults — replays byte-identically
// from one seed.
func TestSessionClusterDeterministic(t *testing.T) {
	reqs := sessionStream(6, 3)
	run := func() ClusterReport {
		rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
			Replicas:     3,
			Dispatch:     DispatchSessionAffinity,
			AffinityBase: DispatchLeastKV,
			Server:       ServerConfig{MaxBatch: 3, Timeout: 90 * time.Second, PrefixReuse: true},
			Faults:       FaultConfig{MTTF: 3 * time.Second, MTTR: 200 * time.Millisecond, Seed: 9},
			Recovery:     RecoveryConfig{Retries: 4, Backoff: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("session cluster run not reproducible:\n%+v\n%+v", a.Report, b.Report)
	}
}

// TestParseDispatchSuggestions pins the did-you-mean behavior of the
// dispatch-policy parser.
func TestParseDispatchSuggestions(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string
	}{
		{"sesion-affinity", `did you mean "session-affinity"`},
		{"jqs", `did you mean "jsq"`},
		{"least-k", `did you mean "least-kv"`},
		{"round-robbin", `did you mean "round-robin"`},
		{"quantum-entangled", "have round-robin, jsq, least-kv, session-affinity"},
	}
	for _, c := range cases {
		_, err := ParseDispatch(c.in)
		if err == nil {
			t.Errorf("ParseDispatch(%q) accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseDispatch(%q) = %q, want substring %q", c.in, err, c.wantErr)
		}
	}
	for _, ok := range []string{"", "jsq", " Session-Affinity ", "least-kv"} {
		if _, err := ParseDispatch(ok); err != nil {
			t.Errorf("ParseDispatch(%q): %v", ok, err)
		}
	}
}
