package serve

import (
	"fmt"

	"repro/internal/memalloc"
	"repro/internal/model"
)

// ContiguousKV is the pad-to-maximum baseline vLLM replaced: every admitted
// request gets one contiguous buffer sized for the model's maximum sequence
// length, whatever it ends up generating. Internal waste is the unused tail.
type ContiguousKV struct {
	alloc      memalloc.Allocator
	perToken   int64
	maxTokens  int
	next       SeqHandle
	sequences  map[SeqHandle]*contigSeq
	usedBytes  int64
	logicalTok int64
}

type contigSeq struct {
	buf    *memalloc.Buffer
	tokens int
}

// NewContiguousKV builds the pad-to-max manager for cfg, growing sequences
// up to maxTokens.
func NewContiguousKV(alloc memalloc.Allocator, cfg model.Config, maxTokens int) *ContiguousKV {
	return &ContiguousKV{
		alloc:     alloc,
		perToken:  KVBytesPerToken(cfg),
		maxTokens: maxTokens,
		sequences: make(map[SeqHandle]*contigSeq),
	}
}

// Name implements CacheManager.
func (c *ContiguousKV) Name() string { return "contiguous" }

// Admit implements CacheManager.
func (c *ContiguousKV) Admit(r Request) (SeqHandle, error) {
	if r.PromptLen <= 0 {
		return 0, fmt.Errorf("serve: request %d has %d prompt tokens", r.ID, r.PromptLen)
	}
	if r.TotalTokens() > c.maxTokens {
		return 0, fmt.Errorf("serve: request %d needs %d tokens, max %d", r.ID, r.TotalTokens(), c.maxTokens)
	}
	buf, err := c.alloc.Alloc(int64(c.maxTokens) * c.perToken)
	if err != nil {
		return 0, err
	}
	c.next++
	c.sequences[c.next] = &contigSeq{buf: buf, tokens: r.PromptLen}
	c.usedBytes += buf.BlockSize
	c.logicalTok += int64(r.PromptLen)
	return c.next, nil
}

// Append implements CacheManager.
func (c *ContiguousKV) Append(h SeqHandle) error {
	s, ok := c.sequences[h]
	if !ok {
		return fmt.Errorf("serve: unknown sequence %d", h)
	}
	if s.tokens >= c.maxTokens {
		return fmt.Errorf("serve: sequence %d exceeded max tokens", h)
	}
	s.tokens++
	c.logicalTok++
	return nil
}

// Release implements CacheManager.
func (c *ContiguousKV) Release(h SeqHandle) {
	s, ok := c.sequences[h]
	if !ok {
		return
	}
	c.usedBytes -= s.buf.BlockSize
	c.logicalTok -= int64(s.tokens)
	c.alloc.Free(s.buf)
	delete(c.sequences, h)
}

// UsedBytes implements CacheManager.
func (c *ContiguousKV) UsedBytes() int64 { return c.usedBytes }

// LogicalBytes implements CacheManager.
func (c *ContiguousKV) LogicalBytes() int64 { return c.logicalTok * c.perToken }

// PagedKV is the vLLM policy: the KV region is pre-allocated once and carved
// into fixed blocks of BlockTokens tokens; sequences hold block lists and
// grow block by block, so waste is bounded by one partial block per
// sequence. This defragments *within* the KV tensor (Table 3's "Tensor"
// scope) but the slab itself is one giant reservation the pool-level
// allocator must satisfy up front.
type PagedKV struct {
	alloc       memalloc.Allocator
	perToken    int64
	blockTokens int
	slab        *memalloc.Buffer
	freeBlocks  []int
	next        SeqHandle
	sequences   map[SeqHandle]*pagedSeq
	logicalTok  int64
	usedBlocks  int
}

type pagedSeq struct {
	blocks []int
	tokens int
}

// NewPagedKV reserves a slab of totalBlocks blocks of blockTokens tokens
// each from alloc.
func NewPagedKV(alloc memalloc.Allocator, cfg model.Config, blockTokens, totalBlocks int) (*PagedKV, error) {
	if blockTokens <= 0 || totalBlocks <= 0 {
		return nil, fmt.Errorf("serve: paged config %d×%d", blockTokens, totalBlocks)
	}
	perToken := KVBytesPerToken(cfg)
	slab, err := alloc.Alloc(int64(blockTokens) * int64(totalBlocks) * perToken)
	if err != nil {
		return nil, fmt.Errorf("serve: KV slab: %w", err)
	}
	free := make([]int, totalBlocks)
	for i := range free {
		free[i] = i
	}
	return &PagedKV{
		alloc:       alloc,
		perToken:    perToken,
		blockTokens: blockTokens,
		slab:        slab,
		freeBlocks:  free,
		sequences:   make(map[SeqHandle]*pagedSeq),
	}, nil
}

// Name implements CacheManager.
func (p *PagedKV) Name() string { return "paged" }

// Close releases the slab.
func (p *PagedKV) Close() { p.alloc.Free(p.slab) }

func (p *PagedKV) takeBlocks(n int) ([]int, bool) {
	if n > len(p.freeBlocks) {
		return nil, false
	}
	taken := p.freeBlocks[len(p.freeBlocks)-n:]
	p.freeBlocks = p.freeBlocks[:len(p.freeBlocks)-n]
	p.usedBlocks += n
	return taken, true
}

// Admit implements CacheManager.
func (p *PagedKV) Admit(r Request) (SeqHandle, error) {
	if r.PromptLen <= 0 {
		return 0, fmt.Errorf("serve: request %d has %d prompt tokens", r.ID, r.PromptLen)
	}
	need := (r.PromptLen + p.blockTokens - 1) / p.blockTokens
	blocks, ok := p.takeBlocks(need)
	if !ok {
		return 0, fmt.Errorf("serve: %d free blocks, need %d", len(p.freeBlocks), need)
	}
	p.next++
	p.sequences[p.next] = &pagedSeq{blocks: append([]int(nil), blocks...), tokens: r.PromptLen}
	p.logicalTok += int64(r.PromptLen)
	return p.next, nil
}

// Append implements CacheManager.
func (p *PagedKV) Append(h SeqHandle) error {
	s, ok := p.sequences[h]
	if !ok {
		return fmt.Errorf("serve: unknown sequence %d", h)
	}
	if s.tokens%p.blockTokens == 0 { // current block full (or none yet)
		blocks, ok := p.takeBlocks(1)
		if !ok {
			return fmt.Errorf("serve: out of KV blocks")
		}
		s.blocks = append(s.blocks, blocks[0])
	}
	s.tokens++
	p.logicalTok++
	return nil
}

// Release implements CacheManager.
func (p *PagedKV) Release(h SeqHandle) {
	s, ok := p.sequences[h]
	if !ok {
		return
	}
	p.freeBlocks = append(p.freeBlocks, s.blocks...)
	p.usedBlocks -= len(s.blocks)
	p.logicalTok -= int64(s.tokens)
	delete(p.sequences, h)
}

// UsedBytes implements CacheManager: blocks held by live sequences.
func (p *PagedKV) UsedBytes() int64 {
	return int64(p.usedBlocks) * int64(p.blockTokens) * p.perToken
}

// LogicalBytes implements CacheManager.
func (p *PagedKV) LogicalBytes() int64 { return p.logicalTok * p.perToken }

// SlabBytes returns the up-front reservation the policy made.
func (p *PagedKV) SlabBytes() int64 { return p.slab.BlockSize }

// ChunkedKV grows each sequence in fixed chunks allocated from an ordinary
// tensor allocator — no custom paging, no pre-reserved slab. The chunks of
// one sequence are not physically contiguous; a real attention kernel needs
// them presented as one tensor, which is exactly what GMLake's virtual
// memory stitching provides for free. Running this manager over the caching
// allocator versus GMLake contrasts pool-level fragmentation on the same
// request stream (the paper's Table 3 scope argument, made executable).
type ChunkedKV struct {
	alloc       memalloc.Allocator
	perToken    int64
	chunkTokens int
	// sequences is a slot table — handle = slot index + 1 — and free is
	// the LIFO of released slots. Reusing slots keeps the table at the
	// live-sequence count (not the stream length) and turns the per-token
	// Append's handle resolution from a map probe into an index, the
	// hottest lookup of a long serving run.
	sequences  []chunkSeq
	free       []SeqHandle
	usedBytes  int64
	logicalTok int64
}

type chunkSeq struct {
	bufs      []*memalloc.Buffer
	tokens    int // 0 marks a vacant slot: live sequences hold ≥ 1 prompt token
	capTokens int // token capacity across all chunks
}

// NewChunkedKV builds the chunk-growing manager with decode chunks of
// chunkTokens tokens. The prompt KV is allocated as one right-sized buffer
// (prefill writes it in one kernel), so prompt-length variability reaches
// the pool allocator directly — the irregular sizing that fragments it.
func NewChunkedKV(alloc memalloc.Allocator, cfg model.Config, chunkTokens int) *ChunkedKV {
	return &ChunkedKV{
		alloc:       alloc,
		perToken:    KVBytesPerToken(cfg),
		chunkTokens: chunkTokens,
	}
}

// seq resolves a handle to its live slot, nil for unknown or released
// handles.
func (c *ChunkedKV) seq(h SeqHandle) *chunkSeq {
	if h <= 0 || int(h) > len(c.sequences) {
		return nil
	}
	s := &c.sequences[h-1]
	if s.tokens == 0 {
		return nil
	}
	return s
}

// Name implements CacheManager.
func (c *ChunkedKV) Name() string { return "chunked" }

func (c *ChunkedKV) grow(s *chunkSeq, tokens int) error {
	buf, err := c.alloc.Alloc(int64(tokens) * c.perToken)
	if err != nil {
		return err
	}
	s.bufs = append(s.bufs, buf)
	s.capTokens += tokens
	c.usedBytes += buf.BlockSize
	return nil
}

// Admit implements CacheManager.
func (c *ChunkedKV) Admit(r Request) (SeqHandle, error) {
	if r.PromptLen <= 0 {
		return 0, fmt.Errorf("serve: request %d has %d prompt tokens", r.ID, r.PromptLen)
	}
	var h SeqHandle
	if n := len(c.free); n > 0 {
		h = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		c.sequences = append(c.sequences, chunkSeq{})
		h = SeqHandle(len(c.sequences))
	}
	s := &c.sequences[h-1]
	if err := c.grow(s, r.PromptLen); err != nil {
		c.free = append(c.free, h)
		return 0, err
	}
	s.tokens = r.PromptLen
	c.logicalTok += int64(r.PromptLen)
	return h, nil
}

// Append implements CacheManager.
func (c *ChunkedKV) Append(h SeqHandle) error {
	s := c.seq(h)
	if s == nil {
		return fmt.Errorf("serve: unknown sequence %d", h)
	}
	if s.tokens == s.capTokens {
		if err := c.grow(s, c.chunkTokens); err != nil {
			return err
		}
	}
	s.tokens++
	c.logicalTok++
	return nil
}

func (c *ChunkedKV) release(s *chunkSeq) {
	for _, b := range s.bufs {
		c.usedBytes -= b.BlockSize
		c.alloc.Free(b)
	}
	s.bufs = nil
}

// Release implements CacheManager.
func (c *ChunkedKV) Release(h SeqHandle) {
	s := c.seq(h)
	if s == nil {
		return
	}
	c.release(s)
	c.logicalTok -= int64(s.tokens)
	*s = chunkSeq{}
	c.free = append(c.free, h)
}

// UsedBytes implements CacheManager.
func (c *ChunkedKV) UsedBytes() int64 { return c.usedBytes }

// LogicalBytes implements CacheManager.
func (c *ChunkedKV) LogicalBytes() int64 { return c.logicalTok * c.perToken }
