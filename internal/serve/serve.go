// Package serve is an LLM inference-serving substrate: a deterministic
// request generator, three KV-cache management policies, and a continuous-
// batching server loop that measures how much GPU memory each policy wastes.
//
// The paper's related-work discussion (§6, Table 3) separates vLLM — which
// defragments *inside* a tensor by paging the KV cache — from GMLake, which
// defragments the memory pool *under* whatever tensors the application
// allocates. This package makes that separation executable: the paged
// manager reproduces vLLM's block table, the contiguous manager reproduces
// the pad-to-max baseline vLLM replaced, and the chunked manager grows each
// sequence through an ordinary allocator — so running it over the caching
// allocator versus GMLake shows the pool-level fragmentation GMLake removes
// on a workload vLLM's technique does not touch.
//
// # Latency reporting: exact, then sketched
//
// Every latency distribution a report renders (TTFT and E2E, aggregate and
// per class) streams through a digest that retains raw samples and applies
// the exact nearest-rank percentile rule up to
// ServerConfig.ExactSamples values (DefaultExactSamples when zero, so
// ordinary runs render byte-identical to the historical exact tables).
// One sample past the threshold the digest spills into a fixed-size
// deterministic mergeable quantile sketch (internal/quantile) and stays
// O(1) in memory from then on: a 10M-request run holds a few thousand
// sketch buckets instead of tens of millions of samples, at the sketch's
// documented relative rank-error bound. Whether a digest is exact or
// sketched is a pure function of its total sample count, so cluster
// union-merges agree with a single-stream digest regardless of merge
// order. Report.RetainedSamples and Report.SketchedSamples expose the
// split — the memory-footprint proxy the scale benchmark tracks. Negative
// ExactSamples sketches from the first sample.
//
// # Sessions and KV prefix reuse
//
// Requests can belong to multi-turn sessions (Request.SessionID/Turn): turn
// N+1's prompt embeds turn N's prompt and output as a shared prefix. With
// ServerConfig.PrefixReuse enabled a server remembers, per session, how many
// context tokens of the last completed turn are still resident in its KV
// cache; a follow-up turn that finds its prefix resident skips that many
// prompt tokens of prefill — its TTFT drops by exactly the skipped
// prefill time. Residency interacts honestly with the failure and memory
// paths: a crash clears the whole table, and preemption-recompute, a
// deadline abort or a shed of a session's sequence invalidates that
// session's entry (the recompute throws the shared prefix away). Reports
// grow PrefixHits, PrefixMisses and ReusedTokens. Zero-session request
// streams and PrefixReuse-off configurations take none of these paths and
// reproduce the pre-session scheduler byte for byte.
//
// At the cluster level the DispatchSessionAffinity policy routes a turn to
// the replica whose prefix table holds its session, falling back to
// ClusterConfig.AffinityBase (jsq when unset) when the prefix is gone or
// the replica is down or draining — trading TTFT saved for the load
// imbalance session pinning induces, which ClusterReport.AffinityRouted
// and the per-replica Assigned counts quantify.
//
// # Failure model and the event-boundary determinism contract
//
// A cluster run can inject replica faults (ClusterConfig.Faults): a crash
// loses the replica's KV cache and every in-flight sequence, removes it
// from dispatch, and a later restart returns it empty. Faults come from a
// seeded MTTF/MTTR process or a scripted plan (ParseFaultPlan), and are
// injected only at event boundaries of the co-simulation — between decode
// steps, never inside one — so a faulty run is exactly as deterministic as
// a fault-free one: same seed and plan, byte-identical report, at any test
// parallelism. A crash that falls mid-step on a replica's clock takes
// effect at the next boundary the scheduler reaches.
//
// Recovery mirrors the preemption semantics: queued requests displaced by
// a crash are re-dispatched immediately (a late dispatch decision, FIFO
// ticket kept), while in-flight sequences are retried with recompute-from-
// scratch cost under ClusterConfig.Recovery's bounded retries, exponential
// backoff and per-class retry budget — their TTFT survives only if the
// first token had already streamed. Requests denied a retry are Lost.
// Request deadlines (ServerConfig.Timeout) bound end-to-end latency across
// retries; deadline-aware admission shedding (ServerConfig.Shed) rejects
// requests that provably cannot meet them. Reports grow Crashes, Restarts,
// DeadlineMisses, Shed and Goodput, and ClusterReport adds Retries, Lost
// and capacity-weighted Availability — all merged across replicas exactly
// like the existing counters and digests.
//
// The byte-identity invariants this package leans on — virtual time only,
// seeded randomness only, no map-iteration order in any report path — are
// enforced statically by the determinism-contract linter (internal/lint,
// run as `go run ./cmd/gmlake-lint ./...` and gated in CI), not just by
// the differential tests.
package serve

import (
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// KVBytesPerToken returns the bytes one token's key+value vectors occupy
// across all layers of cfg.
func KVBytesPerToken(cfg model.Config) int64 {
	return 2 * int64(cfg.Layers) * int64(cfg.Hidden) * model.DTypeBytes
}

// Request is one serving request. The zero values of the multi-tenant
// fields (empty class and SLO, priority 0, arrival 0) reproduce the original
// homogeneous behaviour: every request belongs to one anonymous class and is
// available at time zero.
type Request struct {
	ID int

	// Class names the client class the request belongs to (servegen's
	// tenant decomposition); empty means the default class.
	Class string
	// SLO is the request's service-level class tag, reported per class.
	SLO string
	// Priority orders admission and protects against preemption: higher
	// priorities are admitted first and evicted last.
	Priority int
	// ArrivalAt is when the request enters the system on the server's
	// virtual clock; the server never admits a request early.
	ArrivalAt time.Duration

	PromptLen int // tokens in the prompt (prefill)
	OutputLen int // tokens to generate (decode steps)

	// SessionID ties multi-turn requests together: turn N+1 of a session
	// carries the same SessionID and its prompt embeds turn N's prompt and
	// output as a shared prefix. An empty SessionID (with Turn 0) is the
	// original one-shot request and takes none of the session code paths.
	SessionID string
	// Turn is the request's 0-based position within its session.
	Turn int
}

// TotalTokens returns the sequence length at completion.
func (r Request) TotalTokens() int { return r.PromptLen + r.OutputLen }

// GenConfig shapes the synthetic request mix.
type GenConfig struct {
	// Prompt lengths are uniform in [MinPrompt, MaxPrompt].
	MinPrompt, MaxPrompt int
	// Output lengths are uniform in [MinOutput, MaxOutput] — the
	// unpredictable-length decode that makes pad-to-max so wasteful.
	MinOutput, MaxOutput int
}

// DefaultGenConfig returns a chat-like mix: short-to-medium prompts with
// highly variable outputs.
func DefaultGenConfig() GenConfig {
	return GenConfig{MinPrompt: 16, MaxPrompt: 512, MinOutput: 8, MaxOutput: 512}
}

func (c GenConfig) validate() error {
	if c.MinPrompt <= 0 || c.MaxPrompt < c.MinPrompt {
		return fmt.Errorf("serve: prompt range [%d,%d]", c.MinPrompt, c.MaxPrompt)
	}
	if c.MinOutput <= 0 || c.MaxOutput < c.MinOutput {
		return fmt.Errorf("serve: output range [%d,%d]", c.MinOutput, c.MaxOutput)
	}
	return nil
}

// GenRequests returns n deterministic requests drawn from cfg with the
// given seed.
func GenRequests(n int, cfg GenConfig, seed uint64) ([]Request, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: %d requests", n)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed)
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{
			ID:        i,
			PromptLen: cfg.MinPrompt + rng.Intn(cfg.MaxPrompt-cfg.MinPrompt+1),
			OutputLen: cfg.MinOutput + rng.Intn(cfg.MaxOutput-cfg.MinOutput+1),
		}
	}
	return out, nil
}

// SeqHandle identifies one admitted sequence inside a cache manager.
type SeqHandle int

// CacheManager is one KV-cache management policy.
type CacheManager interface {
	// Name identifies the policy in reports.
	Name() string

	// Admit reserves KV storage for a request's prompt. It fails when the
	// backing memory cannot hold the sequence; the server then retries
	// after other sequences complete.
	Admit(r Request) (SeqHandle, error)

	// Append extends the sequence by one generated token.
	Append(h SeqHandle) error

	// Release frees the sequence's storage.
	Release(h SeqHandle)

	// UsedBytes is the memory currently taken from the device or
	// allocator; LogicalBytes is the KV data actually stored. Their gap
	// is the policy's waste.
	UsedBytes() int64
	LogicalBytes() int64
}

// WasteRatio returns 1 − logical/used for a manager snapshot; zero when
// nothing is allocated.
func WasteRatio(m CacheManager) float64 {
	used := m.UsedBytes()
	if used == 0 {
		return 0
	}
	return 1 - float64(m.LogicalBytes())/float64(used)
}
