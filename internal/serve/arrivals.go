package serve

import "sort"

// arrivalQueue indexes not-yet-arrived requests by (ArrivalAt, ticket). On
// every live path arrivals are already pushed in that order — Serve
// enqueues its input stream up front with ascending tickets and the cluster
// dispatches each request at its arrival instant — so the queue is a flat
// sorted cursor: push is an append, the minimum is a peek and promotion
// advances the head, with none of the per-request node allocation and
// rebalancing a tree pays on the O(n) stream. Sorted input is not part of
// the API contract, though: a push that lands out of order marks the queue
// dirty and the next read re-sorts the remaining entries once.
type arrivalQueue struct {
	items []waiting
	head  int
	dirty bool
}

// less is the queue order: arrival time, then FIFO ticket.
func (q *arrivalQueue) less(a, b waiting) bool {
	if at, bt := a.rec.req.ArrivalAt, b.rec.req.ArrivalAt; at != bt {
		return at < bt
	}
	return a.seq < b.seq
}

func (q *arrivalQueue) push(w waiting) {
	if n := len(q.items); !q.dirty && n > q.head && q.less(w, q.items[n-1]) {
		q.dirty = true
	}
	q.items = append(q.items, w)
}

func (q *arrivalQueue) sort() {
	if !q.dirty {
		return
	}
	rest := q.items[q.head:]
	sort.Slice(rest, func(i, j int) bool { return q.less(rest[i], rest[j]) })
	q.dirty = false
}

// min peeks the earliest pending arrival.
func (q *arrivalQueue) min() (waiting, bool) {
	if q.head == len(q.items) {
		return waiting{}, false
	}
	q.sort()
	return q.items[q.head], true
}

// popMin removes and returns the earliest pending arrival. The vacated slot
// is zeroed so the popped request's record is not pinned by the backing
// array, and a fully drained queue recycles it.
func (q *arrivalQueue) popMin() waiting {
	q.sort()
	w := q.items[q.head]
	q.items[q.head] = waiting{}
	q.head++
	if q.head == len(q.items) {
		q.items, q.head = q.items[:0], 0
	}
	return w
}

func (q *arrivalQueue) len() int { return len(q.items) - q.head }

// ascend visits the pending arrivals in queue order.
func (q *arrivalQueue) ascend(f func(waiting)) {
	q.sort()
	for _, w := range q.items[q.head:] {
		f(w)
	}
}
