package serve

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// TestParseDispatchVariants pins the normalization satellite: conf files
// and CLI flags spell policies in any case with stray whitespace, and all
// of them must resolve; genuinely unknown names must still error.
func TestParseDispatchVariants(t *testing.T) {
	cases := []struct {
		in   string
		want DispatchPolicy
		ok   bool
	}{
		{"", DispatchRoundRobin, true},
		{"round-robin", DispatchRoundRobin, true},
		{"jsq", DispatchJSQ, true},
		{"least-kv", DispatchLeastKV, true},
		{"JSQ", DispatchJSQ, true},
		{"Jsq", DispatchJSQ, true},
		{" least-kv ", DispatchLeastKV, true},
		{"LEAST-KV", DispatchLeastKV, true},
		{"Round-Robin", DispatchRoundRobin, true},
		{"\tround-robin\n", DispatchRoundRobin, true},
		{"   ", DispatchRoundRobin, true},
		{"least kv", "", false},
		{"shortest-queue", "", false},
		{"jsq2", "", false},
	}
	for _, c := range cases {
		got, err := ParseDispatch(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseDispatch(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseDispatch(%q) accepted, want error", c.in)
		}
	}
}

// burstThenTrickle is the autoscaler's canonical workload: a dense burst
// that piles up queued backlog, then a long sparse tail during which the
// extra replicas should drain away.
func burstThenTrickle() []Request {
	var reqs []Request
	for i := 0; i < 60; i++ { // ~30 req/s burst
		reqs = append(reqs, Request{ID: i, Class: "burst", PromptLen: 32 + (i*37)%64,
			OutputLen: 12 + (i*13)%20, ArrivalAt: time.Duration(i) * 33 * time.Millisecond})
	}
	for i := 0; i < 40; i++ { // 2 req/s tail
		reqs = append(reqs, Request{ID: 60 + i, Class: "tail", PromptLen: 32,
			OutputLen: 8, ArrivalAt: 2*time.Second + time.Duration(i)*500*time.Millisecond})
	}
	return reqs
}

// TestElasticSingleReplicaMatchesServe is the PR's differential acceptance
// criterion: a MinReplicas == MaxReplicas == 1 autoscaled cluster with
// stealing off is byte-identical to the plain Serve loop.
func TestElasticSingleReplicaMatchesServe(t *testing.T) {
	reqs := burstThenTrickle()
	srvCfg := ServerConfig{MaxBatch: 4}
	mk := func() CacheManager { return NewChunkedKV(newServeAlloc(8*sim.GiB), model.OPT1_3B, 64) }
	want, err := Serve(reqs, mk(), srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range DispatchPolicies() {
		got, err := ServeCluster(reqs, func(int) CacheManager { return mk() },
			ClusterConfig{MinReplicas: 1, MaxReplicas: 1, Dispatch: policy, Server: srvCfg})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !reflect.DeepEqual(got.Report, want) {
			t.Errorf("%s: elastic 1..1 cluster diverged from Serve:\ncluster %+v\nserve   %+v",
				policy, got.Report, want)
		}
		if got.PeakReplicas != 1 || got.Spawns != 0 || got.Drains != 0 {
			t.Errorf("%s: 1..1 cluster scaled: peak %d, %d spawns, %d drains",
				policy, got.PeakReplicas, got.Spawns, got.Drains)
		}
	}
}

// TestElasticScalesUpAndDrains drives the burst-then-trickle stream through
// an elastic 1..4 fleet: the burst must spawn replicas, the tail must drain
// them, the whole stream must still be served, runs must be deterministic,
// and the elastic fleet must consume strictly fewer replica-seconds than
// the static MaxReplicas fleet it is measured against.
func TestElasticScalesUpAndDrains(t *testing.T) {
	reqs := burstThenTrickle()
	elasticCfg := ClusterConfig{
		MinReplicas: 1, MaxReplicas: 4,
		Dispatch: DispatchJSQ,
		Server:   ServerConfig{MaxBatch: 2},
	}
	run := func(cfg ClusterConfig) ClusterReport {
		rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	elastic := run(elasticCfg)
	again := run(elasticCfg)
	if !reflect.DeepEqual(elastic, again) {
		t.Fatal("two identical elastic runs diverged")
	}
	if elastic.Served != len(reqs) {
		t.Fatalf("elastic served %d of %d", elastic.Served, len(reqs))
	}
	if elastic.PeakReplicas <= 1 || elastic.Spawns == 0 {
		t.Fatalf("burst did not scale the fleet up: peak %d, %d spawns", elastic.PeakReplicas, elastic.Spawns)
	}
	if elastic.PeakReplicas > 4 {
		t.Fatalf("fleet exceeded MaxReplicas: peak %d", elastic.PeakReplicas)
	}
	if elastic.Drains == 0 {
		t.Fatalf("trickle tail did not drain any replica: %+v", elastic)
	}

	static := run(ClusterConfig{Replicas: 4, Dispatch: DispatchJSQ, Server: ServerConfig{MaxBatch: 2}})
	if static.ReplicaSeconds != 4*static.Duration {
		t.Fatalf("static fleet replica-seconds %v, want 4 x makespan %v", static.ReplicaSeconds, 4*static.Duration)
	}
	if elastic.ReplicaSeconds >= static.ReplicaSeconds {
		t.Fatalf("elastic fleet consumed %v replica-seconds, static fleet %v — draining saved nothing",
			elastic.ReplicaSeconds, static.ReplicaSeconds)
	}
	// The latency price of elasticity stays bounded (acceptance: within 2x).
	if float64(elastic.E2E.P99) > 2*float64(static.E2E.P99) {
		t.Fatalf("elastic e2e p99 %v more than 2x static %v", elastic.E2E.P99, static.E2E.P99)
	}
}

// TestElasticConfigValidation: the autoscaler bounds and overrides are
// rejected up front when inconsistent.
func TestElasticConfigValidation(t *testing.T) {
	reqs := mixedStream(4)
	mk := chunkedFactory(sim.GiB)
	bad := []ClusterConfig{
		{MinReplicas: 3, MaxReplicas: 2, Server: ServerConfig{MaxBatch: 2}},
		{MinReplicas: 2, Server: ServerConfig{MaxBatch: 2}},                              // min without max
		{Replicas: 1, ScaleUpDepth: 8, Server: ServerConfig{MaxBatch: 2}},                // knob without max
		{Replicas: 5, MinReplicas: 1, MaxReplicas: 4, Server: ServerConfig{MaxBatch: 2}}, // initial out of range
		{Replicas: 2, Overrides: make([]ReplicaOverride, 3), Server: ServerConfig{MaxBatch: 2}},
		{Replicas: 1, Overrides: []ReplicaOverride{{Capacity: -1}}, Server: ServerConfig{MaxBatch: 2}},
		{Replicas: 1, Overrides: []ReplicaOverride{{MaxBatch: -4}}, Server: ServerConfig{MaxBatch: 2}},
		{Replicas: 1, Overrides: []ReplicaOverride{{Aging: -time.Second}}, Server: ServerConfig{MaxBatch: 2}},
		{MinReplicas: -1, MaxReplicas: 2, Server: ServerConfig{MaxBatch: 2}},
	}
	for i, cfg := range bad {
		if _, err := ServeCluster(reqs, mk, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// A negative ScaleDownDepth is legal: it means never scale down.
	rep, err := ServeCluster(reqs, mk, ClusterConfig{
		MinReplicas: 1, MaxReplicas: 2, ScaleDownDepth: -1, Server: ServerConfig{MaxBatch: 2}})
	if err != nil {
		t.Fatalf("negative scale-down depth rejected: %v", err)
	}
	if rep.Drains != 0 {
		t.Fatalf("never-scale-down fleet drained %d replicas", rep.Drains)
	}
}

// stealStream alternates a long-output request (round-robin sends it to
// replica 0) with a short one (replica 1): replica 0 piles up queued
// backlog while replica 1 drains fast and starves — the exact imbalance
// work-stealing re-dispatch exists to fix.
func stealStream() []Request {
	var reqs []Request
	for i := 0; i < 24; i++ {
		r := Request{ID: i, PromptLen: 32, ArrivalAt: time.Duration(i) * 10 * time.Millisecond}
		if i%2 == 0 {
			r.Class, r.OutputLen = "long", 120
		} else {
			r.Class, r.OutputLen = "short", 4
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// TestStealRedispatchesQueuedBacklog: with stealing on, the starving
// replica takes over queued requests and the makespan shrinks; with it off
// the backlogged replica serves its whole queue alone. Stealing must not
// lose or duplicate any request.
func TestStealRedispatchesQueuedBacklog(t *testing.T) {
	reqs := stealStream()
	run := func(steal bool) ClusterReport {
		rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
			Replicas: 2, Dispatch: DispatchRoundRobin, Steal: steal,
			Server: ServerConfig{MaxBatch: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	off := run(false)
	on := run(true)
	again := run(true)
	if !reflect.DeepEqual(on, again) {
		t.Fatal("two identical stealing runs diverged")
	}
	if off.Served != len(reqs) || on.Served != len(reqs) {
		t.Fatalf("served %d / %d of %d", off.Served, on.Served, len(reqs))
	}
	if off.Stolen[0] != 0 || off.Stolen[1] != 0 {
		t.Fatalf("stealing off but Stolen = %v", off.Stolen)
	}
	steals := on.Stolen[0] + on.Stolen[1]
	if steals == 0 {
		t.Fatal("no request was stolen despite the starving replica")
	}
	if on.Duration >= off.Duration {
		t.Fatalf("stealing did not shrink the makespan: %v vs %v", on.Duration, off.Duration)
	}
	// Every request is served exactly once: per-replica served counts sum
	// to the stream, even though Assigned no longer matches Served.
	sum := 0
	for _, r := range on.Replicas {
		sum += r.Served
	}
	if sum != len(reqs) {
		t.Fatalf("per-replica served sums to %d, want %d", sum, len(reqs))
	}
	if on.Assigned[0]+on.Assigned[1] != len(reqs) {
		t.Fatalf("assigned %v does not cover the stream", on.Assigned)
	}
}

// TestStealNeverMovesRunningWork: white-box — drive a stealing scheduler
// and assert stolen requests were queued (never decoding) at the instant
// they moved, by checking the victim's preemption count is unaffected by
// steals (a migrated running sequence would have to be evicted first).
func TestStealOnlyFromQueue(t *testing.T) {
	reqs := stealStream()
	rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
		Replicas: 2, Dispatch: DispatchRoundRobin, Steal: true,
		Server: ServerConfig{MaxBatch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A roomy pool never preempts; if stealing moved running sequences it
	// would show up as evictions.
	if rep.Preemptions != 0 {
		t.Fatalf("stealing caused %d preemptions on a roomy pool", rep.Preemptions)
	}
}

// TestHeterogeneousCapacityDispatch: a 3x-capacity replica (3x batch, 3x
// dispatch weight) must absorb roughly 3x the requests under both
// load-aware policies, while oblivious round-robin still splits evenly.
func TestHeterogeneousCapacityDispatch(t *testing.T) {
	var reqs []Request
	for i := 0; i < 80; i++ {
		reqs = append(reqs, Request{ID: i, PromptLen: 32, OutputLen: 16})
	}
	run := func(policy DispatchPolicy) ClusterReport {
		rep, err := ServeCluster(reqs, chunkedFactory(8*sim.GiB), ClusterConfig{
			Replicas: 2,
			Dispatch: policy,
			Server:   ServerConfig{MaxBatch: 4},
			Overrides: []ReplicaOverride{
				{Capacity: 3, MaxBatch: 12},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rr := run(DispatchRoundRobin); rr.Assigned[0] != 40 || rr.Assigned[1] != 40 {
		t.Fatalf("round-robin is capacity-blind by design, got %v", rr.Assigned)
	}
	for _, policy := range []DispatchPolicy{DispatchJSQ, DispatchLeastKV} {
		rep := run(policy)
		if rep.Served != len(reqs) {
			t.Fatalf("%s: served %d of %d", policy, rep.Served, len(reqs))
		}
		// 3:1 capacity => ~60/20 split; allow slack for tie-breaking.
		if rep.Assigned[0] < 54 || rep.Assigned[1] > 26 {
			t.Errorf("%s: capacity-aware split %v, want ~[60 20]", policy, rep.Assigned)
		}
		// The big replica finishes the load it absorbed no later than the
		// small one would a third of it: both makespans stay comparable.
		if rep.Replicas[0].Served <= rep.Replicas[1].Served {
			t.Errorf("%s: big replica served %d <= small %d",
				policy, rep.Replicas[0].Served, rep.Replicas[1].Served)
		}
	}
}

// TestPerReplicaAgingOverride: an aging override applies to exactly one
// replica of the fleet.
func TestPerReplicaAgingOverride(t *testing.T) {
	c, err := newClusterSched(nil, chunkedFactory(sim.GiB), ClusterConfig{
		Replicas: 2,
		Server:   ServerConfig{MaxBatch: 2},
		Overrides: []ReplicaOverride{
			{Aging: time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.fleet[0].srv.aging != time.Second || c.fleet[1].srv.aging != 0 {
		t.Fatalf("aging overrides misapplied: %v / %v", c.fleet[0].srv.aging, c.fleet[1].srv.aging)
	}
	if c.fleet[0].capacity != 1 || c.fleet[1].capacity != 1 {
		t.Fatalf("zero capacity should default to 1: %v / %v", c.fleet[0].capacity, c.fleet[1].capacity)
	}
}

// TestClusterReportSlicesAreCopies pins the aliasing satellite: mutating
// the returned report's slices must not corrupt the scheduler's state (the
// old code returned the internal assigned slice itself).
func TestClusterReportSlicesAreCopies(t *testing.T) {
	c, err := newClusterSched(mixedStream(20), chunkedFactory(8*sim.GiB), ClusterConfig{
		Replicas: 2, Dispatch: DispatchRoundRobin, Server: ServerConfig{MaxBatch: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.run()
	if err != nil {
		t.Fatal(err)
	}
	wantAssigned := c.fleet[0].assigned
	wantServed := c.fleet[0].srv.rep.Served
	rep.Assigned[0] = -1
	rep.Stolen[0] = -1
	rep.Replicas[0].Served = -1
	if c.fleet[0].assigned != wantAssigned {
		t.Fatal("report.Assigned aliases the scheduler's assigned slice")
	}
	if c.fleet[0].stolen != 0 {
		t.Fatal("report.Stolen aliases the scheduler's stolen counters")
	}
	if c.fleet[0].srv.rep.Served != wantServed {
		t.Fatal("report.Replicas aliases the replica reports")
	}
}

// TestLeastKVLoadDrainsToZero pins the least-KV accounting invariant: once
// the cluster fully drains, every replica's outstanding-KV estimate
// (dispatched tokens minus completed tokens) must return to exactly zero —
// including when requests were recompute-preempted and requeued mid-run,
// and when stealing re-dispatched queued requests between replicas.
func TestLeastKVLoadDrainsToZero(t *testing.T) {
	// A tight paged pool under overlapping long requests forces recompute
	// preemptions; least-kv dispatch makes the counters load-bearing.
	mkTight := func(int) CacheManager {
		mgr, err := NewPagedKV(newServeAlloc(sim.GiB), model.OPT1_3B, 16, 40)
		if err != nil {
			t.Fatal(err)
		}
		return mgr
	}
	var reqs []Request
	for i := 0; i < 30; i++ {
		reqs = append(reqs, Request{ID: i, PromptLen: 48 + (i*31)%64, OutputLen: 60 + (i*17)%80,
			ArrivalAt: time.Duration(i) * 25 * time.Millisecond, Priority: i % 3})
	}
	for _, steal := range []bool{false, true} {
		c, err := newClusterSched(reqs, mkTight, ClusterConfig{
			Replicas: 2, Dispatch: DispatchLeastKV, Steal: steal,
			Server: ServerConfig{MaxBatch: 6}})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.run()
		if err != nil {
			t.Fatalf("steal=%v: %v", steal, err)
		}
		if rep.Preemptions == 0 {
			t.Fatalf("steal=%v: testbed too roomy — no preemptions, invariant untested", steal)
		}
		if rep.Served != len(reqs) {
			t.Fatalf("steal=%v: served %d of %d", steal, rep.Served, len(reqs))
		}
		for i, r := range c.fleet {
			if load := r.dispatchedTokens - r.srv.doneTokens; load != 0 {
				t.Errorf("steal=%v: replica %d drained with outstanding-KV estimate %d, want 0",
					steal, i, load)
			}
		}
	}
}

// TestElasticWithStealAndOverridesDeterministic: the full feature stack —
// autoscaling, stealing and a heterogeneous override — replays
// byte-identically, serving the entire stream.
func TestElasticWithStealAndOverridesDeterministic(t *testing.T) {
	reqs := burstThenTrickle()
	cfg := ClusterConfig{
		MinReplicas: 1, MaxReplicas: 3,
		Dispatch: DispatchLeastKV,
		Steal:    true,
		Server:   ServerConfig{MaxBatch: 2, Aging: 2 * time.Second},
		Overrides: []ReplicaOverride{
			{Capacity: 2, MaxBatch: 4},
		},
	}
	a, errA := ServeCluster(reqs, chunkedFactory(8*sim.GiB), cfg)
	b, errB := ServeCluster(reqs, chunkedFactory(8*sim.GiB), cfg)
	if errA != nil || errB != nil {
		t.Fatalf("%v / %v", errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("elastic+steal+override runs diverged")
	}
	if a.Served != len(reqs) {
		t.Fatalf("served %d of %d", a.Served, len(reqs))
	}
}

// TestStealRespectsThiefCapacity: on a heterogeneous fleet a request that
// cannot fit the idle thief's smaller pool must stay queued on its bigger
// victim instead of being stolen into a fatal admission failure — the same
// stream must complete with stealing on exactly as it does with it off.
func TestStealRespectsThiefCapacity(t *testing.T) {
	// Replica 0: roomy pool; replica 1: pool too small for the big request.
	pools := []int64{8 * sim.GiB, sim.GiB / 8}
	mk := func(i int) CacheManager {
		return NewChunkedKV(newServeAlloc(pools[i]), model.OPT1_3B, 64)
	}
	reqs := []Request{
		// Round-robin at t=0: evens land on replica 0, odds on replica 1.
		// Replica 0 decodes the long job with the oversized request queued
		// behind it (MaxBatch 1); replica 1 finishes its tiny jobs fast
		// and goes idle — the classic steal trigger, except the only
		// stealable request can never fit replica 1's pool.
		{ID: 0, PromptLen: 64, OutputLen: 200},
		{ID: 1, PromptLen: 16, OutputLen: 2},
		// The oversized request: fits replica 0, never replica 1.
		{ID: 2, PromptLen: 4000, OutputLen: 200},
		{ID: 3, PromptLen: 16, OutputLen: 2},
	}
	for _, steal := range []bool{false, true} {
		rep, err := ServeCluster(reqs, mk, ClusterConfig{
			Replicas: 2, Dispatch: DispatchRoundRobin, Steal: steal,
			Server: ServerConfig{MaxBatch: 1},
		})
		if err != nil {
			t.Fatalf("steal=%v: oversized request aborted the run: %v", steal, err)
		}
		if rep.Served != len(reqs) {
			t.Fatalf("steal=%v: served %d of %d", steal, rep.Served, len(reqs))
		}
	}
}
