package serve

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// runScan is the pre-heap scheduler loop, kept verbatim as the differential
// oracle for the global event spine: per event it scans every replica for
// the minimum next-event time (ties to the lowest index) instead of popping
// the heap. Any divergence between run and runScan on the same input is a
// scheduler bug, not a modeling change.
func (c *clusterSched) runScan() (ClusterReport, error) {
	for {
		tRep, ri := time.Duration(0), -1
		for i, r := range c.fleet {
			if r.state == replicaStopped {
				continue
			}
			if t, ok := r.srv.nextEventTime(); ok && (ri == -1 || t < tRep) {
				tRep, ri = t, i
			}
		}
		if c.qi < len(c.queue) && (ri == -1 || c.reqs[c.queue[c.qi]].ArrivalAt <= tRep) {
			req := c.reqs[c.queue[c.qi]]
			c.advance(req.ArrivalAt)
			c.autoscale()
			r := c.pick(req)
			c.fleet[r].srv.addRequest(req, int64(c.queue[c.qi]))
			c.fleet[r].assigned++
			c.fleet[r].dispatchedTokens += int64(req.TotalTokens())
			c.qi++
			continue
		}
		if ri == -1 {
			break
		}
		c.advance(tRep)
		c.autoscale()
		if c.cfg.Steal && c.trySteal() {
			continue
		}
		if _, err := c.fleet[ri].srv.runOnce(); err != nil {
			return c.seal(fmt.Errorf("serve: replica %d: %w", ri, err))
		}
		c.touch(ri)
	}
	return c.seal(nil)
}

// burstyStream clusters arrivals into waves with an always-first-token mix
// of priorities — the shape that exercises simultaneous replica events
// (heap tie-breaking) and elastic scale decisions.
func burstyStream(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		wave := i / 8
		r := Request{ID: i, PromptLen: 48 + (i*29)%128, OutputLen: 6 + (i*17)%30,
			ArrivalAt: time.Duration(wave) * 900 * time.Millisecond}
		switch i % 4 {
		case 0:
			r.Class, r.SLO, r.Priority = "batch", "batch", 0
		case 1:
			r.Class, r.SLO, r.Priority = "agent", "interactive", 1
		default:
			r.Class, r.SLO, r.Priority = "chat", "interactive", 2
		}
		reqs[i] = r
	}
	return reqs
}

// TestClusterHeapMatchesScanLoop is the differential acceptance test for
// the event-heap scheduler: across streams × dispatch policies × static/
// elastic fleets × stealing × heterogeneous overrides, the heap-driven run
// must produce a ClusterReport byte-identical (reflect.DeepEqual) to the
// old full-scan loop, error paths included.
func TestClusterHeapMatchesScanLoop(t *testing.T) {
	streams := map[string][]Request{
		"mixed-120":  mixedStream(120),
		"bursty-160": burstyStream(160),
	}
	// An unservable request arriving late: both loops must fail identically
	// and seal identical partial reports.
	errStream := []Request{
		{ID: 0, Class: "ok", PromptLen: 16, OutputLen: 4},
		{ID: 1, Class: "ok", PromptLen: 16, OutputLen: 4},
		{ID: 2, Class: "huge", PromptLen: 100000, OutputLen: 4, ArrivalAt: 5 * time.Second},
	}

	configs := map[string]ClusterConfig{
		"static-rr": {Replicas: 3, Dispatch: DispatchRoundRobin,
			Server: ServerConfig{MaxBatch: 3}},
		"static-jsq": {Replicas: 4, Dispatch: DispatchJSQ,
			Server: ServerConfig{MaxBatch: 2}},
		"static-leastkv-aging": {Replicas: 3, Dispatch: DispatchLeastKV,
			Server: ServerConfig{MaxBatch: 3, Aging: 2 * time.Second}},
		"static-steal": {Replicas: 4, Dispatch: DispatchRoundRobin, Steal: true,
			Server: ServerConfig{MaxBatch: 2}},
		"hetero-override-steal": {Replicas: 3, Dispatch: DispatchJSQ, Steal: true,
			Server: ServerConfig{MaxBatch: 2},
			Overrides: []ReplicaOverride{
				{Capacity: 2, MaxBatch: 6},
				{Aging: time.Second},
			}},
		"elastic": {MinReplicas: 1, MaxReplicas: 4, Dispatch: DispatchJSQ,
			ScaleUpDepth: 3, ScaleCooldown: 200 * time.Millisecond,
			Server: ServerConfig{MaxBatch: 2}},
		"elastic-steal": {MinReplicas: 1, MaxReplicas: 5, Dispatch: DispatchLeastKV,
			Steal: true, ScaleUpDepth: 2, ScaleDownDepth: 1,
			Server: ServerConfig{MaxBatch: 2, Aging: 3 * time.Second}},
	}

	run := func(reqs []Request, cfg ClusterConfig, scan bool) (ClusterReport, error) {
		c, err := newClusterSched(reqs, chunkedFactory(sim.GiB/2), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if scan {
			return c.runScan()
		}
		return c.run()
	}

	for sname, reqs := range streams {
		for cname, cfg := range configs {
			want, wantErr := run(reqs, cfg, true)
			got, gotErr := run(reqs, cfg, false)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s/%s: scan err %v, heap err %v", sname, cname, wantErr, gotErr)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: heap scheduler diverged from scan loop:\nscan: %+v\nheap: %+v",
					sname, cname, want, got)
			}
		}
	}

	// Error path: a hard admission failure must seal identically.
	cfg := ClusterConfig{Replicas: 2, Dispatch: DispatchRoundRobin, Server: ServerConfig{MaxBatch: 2}}
	mk := func() (ClusterReport, error, ClusterReport, error) {
		a, errA := func() (ClusterReport, error) {
			c, err := newClusterSched(errStream, chunkedFactory(sim.GiB/4), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return c.runScan()
		}()
		b, errB := func() (ClusterReport, error) {
			c, err := newClusterSched(errStream, chunkedFactory(sim.GiB/4), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return c.run()
		}()
		return a, errA, b, errB
	}
	want, wantErr, got, gotErr := mk()
	if wantErr == nil || gotErr == nil {
		t.Fatalf("expected both loops to fail: scan %v, heap %v", wantErr, gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error mismatch: scan %q, heap %q", wantErr, gotErr)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("error-path reports diverged:\nscan: %+v\nheap: %+v", want, got)
	}
}
