package offload

import (
	"fmt"
	"time"

	"repro/internal/memalloc"
	"repro/internal/sim"
	"repro/internal/stream"
)

// StreamRecorder is implemented by stream-aware allocators
// (stream.Allocator); the optimizer and swapper use it to free buffers that
// asynchronous copies are still reading without blocking the host.
type StreamRecorder interface {
	RecordStream(b *memalloc.Buffer, id stream.ID)
}

// OptimizerConfig tunes the ZeRO-Offload CPU optimizer.
type OptimizerConfig struct {
	// Bucket is the pipeline granularity: gradients leave and parameters
	// return in buckets of this size, so transfer, CPU compute and the
	// reverse transfer of consecutive buckets overlap. Default 64 MiB.
	Bucket int64

	// Pinned selects page-locked staging on the host (the fast DMA path).
	Pinned bool

	// CPUAdamGiBps is the CPU Adam throughput over fp16 gradient bytes
	// (each byte of gradient drives a read-modify-write of 6 bytes of fp32
	// host state). ZeRO-Offload's vectorized CPU Adam sustains a few GiB/s;
	// default 2.
	CPUAdamGiBps float64

	// StageOnGPU allocates a transient GPU staging buffer per bucket (the
	// flattened, contiguous gradient copy real engines build before DMA).
	// This is the allocation churn that the paper's "O" strategy induces.
	StageOnGPU bool
}

func (c OptimizerConfig) withDefaults() OptimizerConfig {
	if c.Bucket <= 0 {
		c.Bucket = 64 * sim.MiB
	}
	if c.CPUAdamGiBps <= 0 {
		c.CPUAdamGiBps = 2
	}
	return c
}

// Optimizer is a ZeRO-Offload style optimizer: fp32 master parameters,
// momentum and variance live in host memory; every step streams the fp16
// gradient shard to the host, runs CPU Adam, and streams updated fp16
// parameters back, bucket by bucket, with all three stages pipelined.
type Optimizer struct {
	cfg    OptimizerConfig
	engine *Engine
	alloc  memalloc.Allocator
	cpu    stream.ID // the CPU modeled as one more executor

	steps     int64
	hostState int64
}

// NewOptimizer creates an offloaded optimizer for a parameter shard of
// paramBytes (fp16 bytes on the GPU). alloc may be nil when
// cfg.StageOnGPU is false.
func NewOptimizer(cfg OptimizerConfig, engine *Engine, alloc memalloc.Allocator, paramBytes int64) (*Optimizer, error) {
	cfg = cfg.withDefaults()
	if paramBytes <= 0 {
		return nil, fmt.Errorf("offload: param shard %d bytes", paramBytes)
	}
	if cfg.StageOnGPU && alloc == nil {
		return nil, fmt.Errorf("offload: StageOnGPU requires an allocator")
	}
	return &Optimizer{
		cfg:    cfg,
		engine: engine,
		alloc:  alloc,
		cpu:    engine.Scheduler().NewStream(),
		// fp32 master + momentum + variance = 3 × 4 bytes per parameter,
		// i.e. 6× the fp16 shard (ZeRO-Offload's host footprint).
		hostState: 6 * paramBytes,
	}, nil
}

// HostStateBytes returns the resident host memory the optimizer state
// occupies.
func (o *Optimizer) HostStateBytes() int64 { return o.hostState }

// Steps returns how many optimizer steps ran.
func (o *Optimizer) Steps() int64 { return o.steps }

// Step runs one offloaded optimizer step over gradBytes of fp16 gradients.
// It returns the virtual time the step took on the critical path (the host
// blocks until the last updated parameter bucket lands back on the GPU).
func (o *Optimizer) Step(gradBytes int64) (time.Duration, error) {
	if gradBytes <= 0 {
		return 0, fmt.Errorf("offload: step with %d gradient bytes", gradBytes)
	}
	sched := o.engine.Scheduler()
	watch := sim.StartStopwatch(sched.Clock())

	var last stream.Event
	for off := int64(0); off < gradBytes; off += o.cfg.Bucket {
		n := min(o.cfg.Bucket, gradBytes-off)

		var staging *memalloc.Buffer
		if o.cfg.StageOnGPU {
			b, err := o.alloc.Alloc(n)
			if err != nil {
				return watch.Elapsed(), fmt.Errorf("offload: staging bucket: %w", err)
			}
			staging = b
		}

		// Gradients leave; CPU Adam waits for them; parameters return.
		d2h := o.engine.CopyD2H(n, o.cfg.Pinned)
		sched.WaitEvent(o.cpu, d2h)
		sched.Launch(o.cpu, o.adamTime(n))
		cpuDone := sched.Record(o.cpu)
		o.engine.After(HostToDevice, cpuDone)
		last = o.engine.CopyH2D(n, o.cfg.Pinned)

		if staging != nil {
			o.freeAfter(staging, o.engine.D2HStream(), d2h)
		}
	}
	last.Sync(sched.Clock())
	o.steps++
	return watch.Elapsed(), nil
}

// freeAfter frees b once the copy reading it (event ev on stream id) has
// completed, without blocking the host when the allocator is stream-aware.
func (o *Optimizer) freeAfter(b *memalloc.Buffer, id stream.ID, ev stream.Event) {
	if rec, ok := o.alloc.(StreamRecorder); ok {
		rec.RecordStream(b, id)
		o.alloc.Free(b)
		return
	}
	ev.Sync(o.engine.Scheduler().Clock())
	o.alloc.Free(b)
}

// adamTime prices CPU Adam over n fp16 gradient bytes.
func (o *Optimizer) adamTime(n int64) time.Duration {
	return transferTime(n, o.cfg.CPUAdamGiBps)
}

// SerialStepEstimate returns the step time with zero overlap, for reporting
// the pipeline's benefit.
func (o *Optimizer) SerialStepEstimate(gradBytes int64) time.Duration {
	var total time.Duration
	for off := int64(0); off < gradBytes; off += o.cfg.Bucket {
		n := min(o.cfg.Bucket, gradBytes-off)
		total += o.engine.Link().D2H(n, o.cfg.Pinned) +
			o.adamTime(n) +
			o.engine.Link().H2D(n, o.cfg.Pinned)
	}
	return total
}
