package offload

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stream"
)

func newTestEngine() (*Engine, *stream.Scheduler, *sim.Clock) {
	clock := sim.NewClock()
	sched := stream.NewScheduler(clock)
	return NewEngine(DefaultPCIe(), sched), sched, clock
}

func TestCopiesAreAsynchronous(t *testing.T) {
	e, _, clock := newTestEngine()
	e.CopyH2D(sim.GiB, true)
	if clock.Now() != 0 {
		t.Fatal("CopyH2D blocked the host")
	}
	if !e.Busy() {
		t.Fatal("engine idle with a copy in flight")
	}
	e.Synchronize()
	if clock.Now() != e.Link().H2D(sim.GiB, true) {
		t.Fatalf("sync at %v, want one transfer time", clock.Now())
	}
}

func TestDirectionsOverlap(t *testing.T) {
	e, _, clock := newTestEngine()
	e.CopyH2D(sim.GiB, true)
	e.CopyD2H(sim.GiB, true)
	e.Synchronize()
	// Full duplex: both directions run concurrently.
	if clock.Now() != e.Link().H2D(sim.GiB, true) {
		t.Fatalf("duplex copies serialized: %v", clock.Now())
	}
}

func TestSameDirectionSerializes(t *testing.T) {
	e, _, clock := newTestEngine()
	e.CopyH2D(sim.GiB, true)
	e.CopyH2D(sim.GiB, true)
	e.Synchronize()
	if clock.Now() != 2*e.Link().H2D(sim.GiB, true) {
		t.Fatalf("same-direction copies did not serialize: %v", clock.Now())
	}
}

func TestAfterOrdersCopyBehindEvent(t *testing.T) {
	e, sched, clock := newTestEngine()
	compute := sched.NewStream()
	sched.Launch(compute, 100*time.Millisecond)
	ev := sched.Record(compute)

	e.After(DeviceToHost, ev) // D2H must wait for the producer kernel
	done := e.CopyD2H(sim.MiB, true)
	done.Sync(clock)
	if clock.Now() < 100*time.Millisecond {
		t.Fatalf("D2H ran before its producer: %v", clock.Now())
	}
}

func TestByteAndCopyCounters(t *testing.T) {
	e, _, _ := newTestEngine()
	e.CopyH2D(3*sim.MiB, true)
	e.CopyD2H(5*sim.MiB, false)
	if e.BytesH2D() != 3*sim.MiB || e.BytesD2H() != 5*sim.MiB {
		t.Fatalf("byte counters h2d=%d d2h=%d", e.BytesH2D(), e.BytesD2H())
	}
	if e.Copies() != 2 {
		t.Fatalf("Copies = %d, want 2", e.Copies())
	}
}

func TestEstimateRoundTrip(t *testing.T) {
	e, _, _ := newTestEngine()
	want := e.Link().D2H(sim.GiB, true) + e.Link().H2D(sim.GiB, true)
	if got := e.EstimateRoundTrip(sim.GiB, true); got != want {
		t.Fatalf("EstimateRoundTrip = %v, want %v", got, want)
	}
}
