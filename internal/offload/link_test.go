package offload

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPinnedBandwidthMath(t *testing.T) {
	l := DefaultPCIe()
	// 25 GiB at 25 GiB/s = 1 s + latency.
	got := l.H2D(25*sim.GiB, true)
	want := time.Second + l.Latency
	if got != want {
		t.Fatalf("H2D(25GiB, pinned) = %v, want %v", got, want)
	}
	if d2h := l.D2H(25*sim.GiB, true); d2h != want {
		t.Fatalf("D2H(25GiB, pinned) = %v, want %v", d2h, want)
	}
}

func TestPageableIsSlowerThanPinned(t *testing.T) {
	l := DefaultPCIe()
	size := int64(sim.GiB)
	if l.H2D(size, false) <= l.H2D(size, true) {
		t.Fatal("pageable H2D not slower than pinned")
	}
	if l.D2H(size, false) <= l.D2H(size, true) {
		t.Fatal("pageable D2H not slower than pinned")
	}
}

func TestZeroSizeCostsOnlyLatency(t *testing.T) {
	l := DefaultPCIe()
	if got := l.H2D(0, true); got != l.Latency {
		t.Fatalf("H2D(0) = %v, want %v", got, l.Latency)
	}
}

func TestTransferScalesLinearly(t *testing.T) {
	l := DefaultPCIe()
	one := l.H2D(sim.GiB, true) - l.Latency
	four := l.H2D(4*sim.GiB, true) - l.Latency
	if four != 4*one {
		t.Fatalf("4 GiB = %v, want 4x 1 GiB (%v)", four, 4*one)
	}
}

func TestNVLinkMuchFasterThanPCIe(t *testing.T) {
	pcie, nvl := DefaultPCIe(), NVLinkC2C()
	size := int64(10 * sim.GiB)
	if nvl.H2D(size, true)*10 > pcie.H2D(size, true) {
		t.Fatal("NVLink-C2C should be >10x faster than PCIe for bulk")
	}
}
