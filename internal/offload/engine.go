package offload

import (
	"time"

	"repro/internal/stream"
)

// Engine is the device's copy engine: one dedicated stream per direction, so
// H2D and D2H transfers overlap with each other and with compute, exactly
// like the DMA engines of a discrete GPU.
type Engine struct {
	link  *Link
	sched *stream.Scheduler
	h2d   stream.ID
	d2h   stream.ID

	bytesH2D int64
	bytesD2H int64
	copies   int64
}

// NewEngine creates a copy engine with two fresh streams on sched.
func NewEngine(link *Link, sched *stream.Scheduler) *Engine {
	return &Engine{
		link:  link,
		sched: sched,
		h2d:   sched.NewStream(),
		d2h:   sched.NewStream(),
	}
}

// Link returns the engine's interconnect model.
func (e *Engine) Link() *Link { return e.link }

// Scheduler returns the stream scheduler the engine enqueues on.
func (e *Engine) Scheduler() *stream.Scheduler { return e.sched }

// H2DStream and D2HStream expose the copy streams so callers can order
// compute against transfers with events.
func (e *Engine) H2DStream() stream.ID { return e.h2d }

// D2HStream returns the device-to-host copy stream.
func (e *Engine) D2HStream() stream.ID { return e.d2h }

// CopyH2D enqueues an asynchronous host-to-device copy and returns the event
// marking its completion. The host does not block.
func (e *Engine) CopyH2D(size int64, pinned bool) stream.Event {
	e.bytesH2D += size
	e.copies++
	e.sched.Launch(e.h2d, e.link.H2D(size, pinned))
	return e.sched.Record(e.h2d)
}

// CopyD2H enqueues an asynchronous device-to-host copy and returns its
// completion event.
func (e *Engine) CopyD2H(size int64, pinned bool) stream.Event {
	e.bytesD2H += size
	e.copies++
	e.sched.Launch(e.d2h, e.link.D2H(size, pinned))
	return e.sched.Record(e.d2h)
}

// After makes the next transfer in the given direction start no earlier than
// event ev (cudaStreamWaitEvent on the copy stream). Used to order a D2H
// behind the compute that produces its source.
func (e *Engine) After(dir Direction, ev stream.Event) {
	e.sched.WaitEvent(e.streamFor(dir), ev)
}

// Synchronize blocks the host until both copy streams drain.
func (e *Engine) Synchronize() {
	e.sched.Synchronize(e.h2d)
	e.sched.Synchronize(e.d2h)
}

// Busy reports whether either copy stream has transfers in flight.
func (e *Engine) Busy() bool {
	return e.sched.Busy(e.h2d) || e.sched.Busy(e.d2h)
}

// BytesH2D returns total bytes ever copied host-to-device.
func (e *Engine) BytesH2D() int64 { return e.bytesH2D }

// BytesD2H returns total bytes ever copied device-to-host.
func (e *Engine) BytesD2H() int64 { return e.bytesD2H }

// Copies returns the number of transfers ever enqueued.
func (e *Engine) Copies() int64 { return e.copies }

// Direction selects a copy stream.
type Direction int

// Copy directions.
const (
	HostToDevice Direction = iota
	DeviceToHost
)

func (e *Engine) streamFor(d Direction) stream.ID {
	if d == HostToDevice {
		return e.h2d
	}
	return e.d2h
}

// EstimateRoundTrip returns the time to move size bytes out and back with no
// overlap; a quick sizing helper for planners.
func (e *Engine) EstimateRoundTrip(size int64, pinned bool) time.Duration {
	return e.link.D2H(size, pinned) + e.link.H2D(size, pinned)
}
