// Package offload simulates the host-device transfer path used by the
// paper's "O" strategy (ZeRO-Offload, §2.3): a PCIe link cost model, an
// asynchronous copy engine running on dedicated streams, a ZeRO-Offload
// style CPU optimizer with a bucketed D2H → CPU-Adam → H2D pipeline, and an
// activation swapper with prefetch.
//
// Offloading trades GPU memory for transfer time, and — what matters to this
// repository — replaces a few long-lived residents with a steady churn of
// staging allocations and frees. That churn is one of the irregular request
// streams that fragment the baseline caching allocator (Observation 1); the
// swapper and optimizer here generate it mechanistically rather than
// statistically.
package offload

import (
	"time"

	"repro/internal/sim"
)

// Link prices one direction of a host-device interconnect. Bandwidths are
// effective (post-protocol-overhead) GiB/s; Latency is the fixed per-transfer
// submission cost.
type Link struct {
	// PinnedH2D and PinnedD2H are DMA bandwidths from/to page-locked host
	// memory, the fast path every serious offload engine uses.
	PinnedH2D float64
	PinnedD2H float64

	// PageableH2D and PageableD2H go through an internal staging copy and
	// run several times slower.
	PageableH2D float64
	PageableD2H float64

	// Latency is charged once per transfer regardless of size.
	Latency time.Duration
}

// DefaultPCIe returns a PCIe 4.0 x16 link as found on the paper's A100
// testbed: ~25 GiB/s effective pinned, ~6 GiB/s pageable, ~10 µs submission.
func DefaultPCIe() *Link {
	return &Link{
		PinnedH2D:   25,
		PinnedD2H:   25,
		PageableH2D: 6,
		PageableD2H: 6,
		Latency:     10 * time.Microsecond,
	}
}

// NVLinkC2C returns a Grace-Hopper-class coherent link (~450 GiB/s), for
// sensitivity sweeps over much faster host connections.
func NVLinkC2C() *Link {
	return &Link{
		PinnedH2D:   450,
		PinnedD2H:   450,
		PageableH2D: 450,
		PageableD2H: 450,
		Latency:     2 * time.Microsecond,
	}
}

// H2D returns the transfer time of size bytes host-to-device.
func (l *Link) H2D(size int64, pinned bool) time.Duration {
	bw := l.PageableH2D
	if pinned {
		bw = l.PinnedH2D
	}
	return l.Latency + transferTime(size, bw)
}

// D2H returns the transfer time of size bytes device-to-host.
func (l *Link) D2H(size int64, pinned bool) time.Duration {
	bw := l.PageableD2H
	if pinned {
		bw = l.PinnedD2H
	}
	return l.Latency + transferTime(size, bw)
}

func transferTime(size int64, gibPerSec float64) time.Duration {
	if size <= 0 || gibPerSec <= 0 {
		return 0
	}
	sec := float64(size) / (gibPerSec * float64(sim.GiB))
	return time.Duration(sec * float64(time.Second))
}
