package offload

import (
	"fmt"

	"repro/internal/memalloc"
	"repro/internal/stream"
)

// Handle identifies one tensor currently parked in host memory.
type Handle int64

// Swapper moves activation tensors between GPU and host memory (the swap
// half of the paper's "O" strategy). SwapOut parks a tensor on the host and
// frees its GPU block; SwapIn brings it back into a freshly allocated block.
// Prefetch starts the return copy early so a later SwapIn finds it complete.
//
// Because every swap-in allocates a new block, a swap-heavy workload turns a
// stable resident set into high-frequency allocate/free traffic — the
// offload-induced fragmentation the paper measures in Figures 3 and 10.
type Swapper struct {
	engine *Engine
	alloc  memalloc.Allocator
	pinned bool

	next    Handle
	parked  map[Handle]*swapEntry
	host    int64
	peak    int64
	outs    int64
	ins     int64
	prefhit int64
}

type swapEntry struct {
	size int64
	// prefetched is the GPU buffer a Prefetch already allocated, with the
	// event marking its H2D completion.
	prefetched *memalloc.Buffer
	ready      stream.Event
}

// NewSwapper returns a swapper that moves data over engine and (re)allocates
// GPU blocks from alloc.
func NewSwapper(engine *Engine, alloc memalloc.Allocator, pinned bool) *Swapper {
	return &Swapper{
		engine: engine,
		alloc:  alloc,
		pinned: pinned,
		parked: make(map[Handle]*swapEntry),
	}
}

// SwapOut enqueues the D2H copy of b, frees b's GPU block (deferred behind
// the copy when the allocator is stream-aware) and returns a handle for the
// parked host copy. The host does not block.
func (s *Swapper) SwapOut(b *memalloc.Buffer) Handle {
	size := b.Requested
	ev := s.engine.CopyD2H(size, s.pinned)
	if rec, ok := s.alloc.(StreamRecorder); ok {
		rec.RecordStream(b, s.engine.D2HStream())
		s.alloc.Free(b)
	} else {
		ev.Sync(s.engine.Scheduler().Clock())
		s.alloc.Free(b)
	}

	s.next++
	h := s.next
	s.parked[h] = &swapEntry{size: size}
	s.host += size
	if s.host > s.peak {
		s.peak = s.host
	}
	s.outs++
	return h
}

// Prefetch allocates the GPU destination and starts the asynchronous H2D
// copy for h, so a later SwapIn does not wait. Safe to call once per handle;
// repeated calls are no-ops.
func (s *Swapper) Prefetch(h Handle) error {
	e, ok := s.parked[h]
	if !ok {
		return fmt.Errorf("offload: prefetch of unknown handle %d", h)
	}
	if e.prefetched != nil {
		return nil
	}
	b, err := s.alloc.Alloc(e.size)
	if err != nil {
		return fmt.Errorf("offload: prefetch destination: %w", err)
	}
	e.prefetched = b
	e.ready = s.engine.CopyH2D(e.size, s.pinned)
	return nil
}

// SwapIn returns the tensor to GPU memory, blocking the host until the data
// has landed, and releases the host copy. A preceding Prefetch that already
// completed makes this free.
func (s *Swapper) SwapIn(h Handle) (*memalloc.Buffer, error) {
	e, ok := s.parked[h]
	if !ok {
		return nil, fmt.Errorf("offload: swap-in of unknown handle %d", h)
	}
	clock := s.engine.Scheduler().Clock()

	b := e.prefetched
	ready := e.ready
	if b == nil {
		var err error
		b, err = s.alloc.Alloc(e.size)
		if err != nil {
			return nil, fmt.Errorf("offload: swap-in destination: %w", err)
		}
		ready = s.engine.CopyH2D(e.size, s.pinned)
	} else if ready.Done(clock) {
		s.prefhit++
	}
	ready.Sync(clock)

	delete(s.parked, h)
	s.host -= e.size
	s.ins++
	return b, nil
}

// Drop discards a parked tensor without bringing it back (e.g. the
// activation became dead after the backward pass consumed its sibling).
func (s *Swapper) Drop(h Handle) error {
	e, ok := s.parked[h]
	if !ok {
		return fmt.Errorf("offload: drop of unknown handle %d", h)
	}
	if e.prefetched != nil {
		e.ready.Sync(s.engine.Scheduler().Clock())
		s.alloc.Free(e.prefetched)
	}
	delete(s.parked, h)
	s.host -= e.size
	return nil
}

// HostBytes returns the bytes currently parked in host memory.
func (s *Swapper) HostBytes() int64 { return s.host }

// PeakHostBytes returns the maximum ever parked at once.
func (s *Swapper) PeakHostBytes() int64 { return s.peak }

// Parked returns how many tensors are currently on the host.
func (s *Swapper) Parked() int { return len(s.parked) }

// SwapOuts and SwapIns return the operation counts; PrefetchHits counts
// swap-ins whose data had already arrived.
func (s *Swapper) SwapOuts() int64 { return s.outs }

// SwapIns returns how many tensors were brought back to the device.
func (s *Swapper) SwapIns() int64 { return s.ins }

// PrefetchHits counts swap-ins that found their prefetch already complete.
func (s *Swapper) PrefetchHits() int64 { return s.prefhit }
