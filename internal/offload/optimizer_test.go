package offload

import (
	"testing"

	"repro/internal/caching"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
	"repro/internal/stream"
)

func newTestStack(capacity int64) (*Engine, *stream.Scheduler, memalloc.Allocator) {
	clock := sim.NewClock()
	sched := stream.NewScheduler(clock)
	dev := gpu.NewDevice("t", capacity)
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	return NewEngine(DefaultPCIe(), sched), sched, caching.New(drv)
}

func TestHostStateIsSixTimesShard(t *testing.T) {
	e, _, _ := newTestStack(sim.GiB)
	o, err := NewOptimizer(OptimizerConfig{Pinned: true}, e, nil, 100*sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.HostStateBytes(); got != 600*sim.MiB {
		t.Fatalf("host state = %d, want 600 MiB", got)
	}
}

func TestNewOptimizerValidation(t *testing.T) {
	e, _, _ := newTestStack(sim.GiB)
	if _, err := NewOptimizer(OptimizerConfig{}, e, nil, 0); err == nil {
		t.Fatal("accepted zero-byte shard")
	}
	if _, err := NewOptimizer(OptimizerConfig{StageOnGPU: true}, e, nil, sim.MiB); err == nil {
		t.Fatal("accepted StageOnGPU without allocator")
	}
}

func TestStepPipelinesBuckets(t *testing.T) {
	e, _, _ := newTestStack(sim.GiB)
	o, err := NewOptimizer(OptimizerConfig{Bucket: 32 * sim.MiB, Pinned: true}, e, nil, 256*sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	grad := int64(256 * sim.MiB)
	elapsed, err := o.Step(grad)
	if err != nil {
		t.Fatal(err)
	}
	serial := o.SerialStepEstimate(grad)
	if elapsed >= serial {
		t.Fatalf("pipelined step %v not faster than serial %v", elapsed, serial)
	}
	// The critical path can never beat the slowest single stage over all
	// bytes (here CPU Adam at 2 GiB/s).
	slowest := transferTime(grad, 2)
	if elapsed < slowest {
		t.Fatalf("step %v beat the bottleneck stage %v", elapsed, slowest)
	}
	if o.Steps() != 1 {
		t.Fatalf("Steps = %d", o.Steps())
	}
}

func TestStepRejectsZeroGradients(t *testing.T) {
	e, _, _ := newTestStack(sim.GiB)
	o, _ := NewOptimizer(OptimizerConfig{Pinned: true}, e, nil, sim.MiB)
	if _, err := o.Step(0); err == nil {
		t.Fatal("accepted zero-byte step")
	}
}

func TestStagingChurnsAllocator(t *testing.T) {
	e, _, alloc := newTestStack(2 * sim.GiB)
	o, err := NewOptimizer(OptimizerConfig{
		Bucket:     16 * sim.MiB,
		Pinned:     true,
		StageOnGPU: true,
	}, e, alloc, 128*sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(128 * sim.MiB); err != nil {
		t.Fatal(err)
	}
	st := alloc.Stats()
	if st.AllocCount != 8 || st.FreeCount != 8 {
		t.Fatalf("staging traffic alloc=%d free=%d, want 8/8", st.AllocCount, st.FreeCount)
	}
	if st.Active != 0 {
		t.Fatalf("leaked %d staging bytes", st.Active)
	}
}

func TestStagingWithStreamAwareAllocatorDoesNotBlock(t *testing.T) {
	clock := sim.NewClock()
	sched := stream.NewScheduler(clock)
	dev := gpu.NewDevice("t", 2*sim.GiB)
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	salloc := stream.NewAllocator(caching.New(drv), sched)
	engine := NewEngine(DefaultPCIe(), sched)

	o, err := NewOptimizer(OptimizerConfig{
		Bucket:     16 * sim.MiB,
		Pinned:     true,
		StageOnGPU: true,
	}, engine, salloc, 128*sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(128 * sim.MiB); err != nil {
		t.Fatal(err)
	}
	if salloc.DeferredTotal() == 0 {
		t.Fatal("no free was deferred behind the D2H copies")
	}
	salloc.SynchronizeAndFree()
	if got := salloc.Stats().Active; got != 0 {
		t.Fatalf("leaked %d bytes after drain", got)
	}
}

func TestUnevenLastBucket(t *testing.T) {
	e, _, alloc := newTestStack(sim.GiB)
	o, err := NewOptimizer(OptimizerConfig{
		Bucket:     64 * sim.MiB,
		Pinned:     true,
		StageOnGPU: true,
	}, e, alloc, 100*sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	// 100 MiB = one 64 MiB bucket + one 36 MiB remainder.
	if _, err := o.Step(100 * sim.MiB); err != nil {
		t.Fatal(err)
	}
	if got := e.BytesD2H(); got != 100*sim.MiB {
		t.Fatalf("D2H bytes = %d, want exactly the gradient bytes", got)
	}
	if got := e.BytesH2D(); got != 100*sim.MiB {
		t.Fatalf("H2D bytes = %d, want exactly the parameter bytes", got)
	}
}
