package offload

import (
	"testing"
	"time"

	"repro/internal/caching"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/stream"
)

func newSwapperStack(capacity int64, streamAware bool) (*Swapper, *stream.Scheduler, *sim.Clock) {
	clock := sim.NewClock()
	sched := stream.NewScheduler(clock)
	dev := gpu.NewDevice("t", capacity)
	drv := cuda.NewDriver(dev, clock, sim.DefaultCostModel())
	engine := NewEngine(DefaultPCIe(), sched)
	if streamAware {
		return NewSwapper(engine, stream.NewAllocator(caching.New(drv), sched), true), sched, clock
	}
	return NewSwapper(engine, caching.New(drv), true), sched, clock
}

func TestSwapOutParksAndFrees(t *testing.T) {
	s, _, _ := newSwapperStack(sim.GiB, false)
	b, err := s.alloc.Alloc(64 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	h := s.SwapOut(b)
	if s.HostBytes() != 64*sim.MiB {
		t.Fatalf("host bytes = %d", s.HostBytes())
	}
	if s.Parked() != 1 {
		t.Fatalf("parked = %d", s.Parked())
	}
	if got := s.alloc.Stats().Active; got != 0 {
		t.Fatalf("GPU still holds %d active bytes after swap-out", got)
	}
	if _, err := s.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	if s.HostBytes() != 0 || s.Parked() != 0 {
		t.Fatalf("host copy not released: %d bytes, %d parked", s.HostBytes(), s.Parked())
	}
}

func TestSwapRoundTripTiming(t *testing.T) {
	s, _, clock := newSwapperStack(sim.GiB, false)
	b, _ := s.alloc.Alloc(250 * sim.MiB)
	start := clock.Now()
	h := s.SwapOut(b)
	if _, err := s.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now() - start
	// At least the two transfers; allocator host ops add a little.
	floor := s.engine.EstimateRoundTrip(250*sim.MiB, true)
	if elapsed < floor {
		t.Fatalf("round trip %v under transfer floor %v", elapsed, floor)
	}
}

func TestStreamAwareSwapOutDoesNotBlockHost(t *testing.T) {
	s, _, clock := newSwapperStack(sim.GiB, true)
	b, _ := s.alloc.Alloc(256 * sim.MiB)
	before := clock.Now()
	s.SwapOut(b)
	// Only host bookkeeping may have advanced the clock — far less than
	// the ~10 ms the 256 MiB D2H takes.
	if clock.Now()-before > time.Millisecond {
		t.Fatalf("SwapOut blocked the host for %v", clock.Now()-before)
	}
}

func TestPrefetchMakesSwapInFree(t *testing.T) {
	s, _, clock := newSwapperStack(sim.GiB, false)
	b, _ := s.alloc.Alloc(128 * sim.MiB)
	h := s.SwapOut(b)

	if err := s.Prefetch(h); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch(h); err != nil { // idempotent
		t.Fatal(err)
	}
	clock.Advance(time.Second) // plenty for the H2D to land

	before := clock.Now()
	if _, err := s.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != before {
		t.Fatalf("prefetched swap-in still waited %v", clock.Now()-before)
	}
	if s.PrefetchHits() != 1 {
		t.Fatalf("PrefetchHits = %d, want 1", s.PrefetchHits())
	}
}

func TestSwapInWithoutPrefetchWaits(t *testing.T) {
	s, _, clock := newSwapperStack(sim.GiB, false)
	b, _ := s.alloc.Alloc(128 * sim.MiB)
	h := s.SwapOut(b)
	before := clock.Now()
	if _, err := s.SwapIn(h); err != nil {
		t.Fatal(err)
	}
	if clock.Now()-before < s.engine.Link().H2D(128*sim.MiB, true) {
		t.Fatal("unprefetched swap-in did not wait for the copy")
	}
	if s.PrefetchHits() != 0 {
		t.Fatal("phantom prefetch hit")
	}
}

func TestDropReleasesHostAndPrefetchedBuffer(t *testing.T) {
	s, _, _ := newSwapperStack(sim.GiB, false)
	b, _ := s.alloc.Alloc(32 * sim.MiB)
	h := s.SwapOut(b)
	if err := s.Prefetch(h); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop(h); err != nil {
		t.Fatal(err)
	}
	if s.HostBytes() != 0 || s.Parked() != 0 {
		t.Fatal("Drop left host state behind")
	}
	if got := s.alloc.Stats().Active; got != 0 {
		t.Fatalf("Drop leaked %d GPU bytes", got)
	}
}

func TestUnknownHandleErrors(t *testing.T) {
	s, _, _ := newSwapperStack(sim.GiB, false)
	if _, err := s.SwapIn(Handle(99)); err == nil {
		t.Fatal("SwapIn of unknown handle succeeded")
	}
	if err := s.Prefetch(Handle(99)); err == nil {
		t.Fatal("Prefetch of unknown handle succeeded")
	}
	if err := s.Drop(Handle(99)); err == nil {
		t.Fatal("Drop of unknown handle succeeded")
	}
}

func TestPeakHostBytesAndCounters(t *testing.T) {
	s, _, _ := newSwapperStack(sim.GiB, false)
	b1, _ := s.alloc.Alloc(10 * sim.MiB)
	b2, _ := s.alloc.Alloc(20 * sim.MiB)
	h1, h2 := s.SwapOut(b1), s.SwapOut(b2)
	if s.PeakHostBytes() != 30*sim.MiB {
		t.Fatalf("peak = %d", s.PeakHostBytes())
	}
	if _, err := s.SwapIn(h1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SwapIn(h2); err != nil {
		t.Fatal(err)
	}
	if s.SwapOuts() != 2 || s.SwapIns() != 2 {
		t.Fatalf("counters out=%d in=%d", s.SwapOuts(), s.SwapIns())
	}
	if s.PeakHostBytes() != 30*sim.MiB {
		t.Fatal("peak must not decay")
	}
}

func TestSwapManyCyclesNoLeak(t *testing.T) {
	s, _, _ := newSwapperStack(sim.GiB, true)
	for i := 0; i < 50; i++ {
		b, err := s.alloc.Alloc(16 * sim.MiB)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		h := s.SwapOut(b)
		if err := s.Prefetch(h); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		back, err := s.SwapIn(h)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		s.alloc.Free(back)
	}
	s.engine.Synchronize()
	if sa, ok := s.alloc.(*stream.Allocator); ok {
		sa.ProcessEvents()
	}
	if got := s.alloc.Stats().Active; got != 0 {
		t.Fatalf("leaked %d bytes over swap cycles", got)
	}
}
