package conf

import (
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestParseFaultKeys(t *testing.T) {
	cfg, err := Parse("mttf:2m,mttr:15s,timeout:30s,retries:3,backoff:1.5,retry_budget:8,shed:true")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MTTF != 2*time.Minute || cfg.MTTR != 15*time.Second {
		t.Fatalf("mttf/mttr %v/%v", cfg.MTTF, cfg.MTTR)
	}
	if cfg.Timeout != 30*time.Second || cfg.Retries != 3 || cfg.Backoff != 1.5 ||
		cfg.RetryBudget != 8 || !cfg.Shed {
		t.Fatalf("recovery knobs: %+v", cfg)
	}

	cfg, err = Parse("fault_plan:crash@t=12s:r1/restart@t=14s:r1")
	if err != nil {
		t.Fatal(err)
	}
	want := []serve.FaultEvent{
		{At: 12 * time.Second, Kind: serve.FaultCrash, Replica: 1},
		{At: 14 * time.Second, Kind: serve.FaultRestart, Replica: 1},
	}
	if len(cfg.FaultPlan) != 2 || cfg.FaultPlan[0] != want[0] || cfg.FaultPlan[1] != want[1] {
		t.Fatalf("fault plan %+v, want %+v", cfg.FaultPlan, want)
	}
}

func TestParseFaultKeyErrors(t *testing.T) {
	cases := []struct {
		s    string
		frag string // expected error fragment
	}{
		{"mttf:2m", "mttr"},
		{"mttr:15s", "mttf"},
		{"mttf:0s,mttr:1s", "positive duration"},
		{"mttf:-2m,mttr:15s", "positive duration"},
		{"mttr:nope,mttf:1m", "positive duration"},
		{"fault_plan:garbage", "fault"},
		{"fault_plan:crash@t=1s:r0,mttf:1m,mttr:1s", "mutually exclusive"},
		{"timeout:0s", "positive duration"},
		{"timeout:-5s", "positive duration"},
		{"retries:3", "timeout"},
		{"retries:0,timeout:30s", "positive integer"},
		{"retries:-1,timeout:30s", "positive integer"},
		{"backoff:1.5,timeout:30s", "retries"},
		{"backoff:0.5,retries:2,timeout:30s", ">= 1"},
		{"backoff:NaN,retries:2,timeout:30s", ">= 1"},
		{"retry_budget:4,timeout:30s", "retries"},
		{"shed:yes-please,timeout:30s", "bool"},
		{"shed:true", "timeout"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.s)
		if err == nil {
			t.Errorf("Parse(%q): expected error", tc.s)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Parse(%q): error %q does not mention %q", tc.s, err, tc.frag)
		}
	}
}

// TestClusterCarriesFaultConfig: the assembled ClusterConfig carries the
// fault and recovery knobs, and conf-level deadlines yield to ones the
// caller already fixed on the server config.
func TestClusterCarriesFaultConfig(t *testing.T) {
	cfg, err := Parse("replicas:2,mttf:2m,mttr:15s,timeout:30s,retries:3,backoff:1.5,retry_budget:8,shed:true")
	if err != nil {
		t.Fatal(err)
	}
	cc := cfg.Cluster(serve.ServerConfig{MaxBatch: 4})
	if cc.Faults.MTTF != 2*time.Minute || cc.Faults.MTTR != 15*time.Second {
		t.Fatalf("faults not wired: %+v", cc.Faults)
	}
	if cc.Recovery.Retries != 3 || cc.Recovery.Backoff != 1.5 || cc.Recovery.RetryBudget != 8 {
		t.Fatalf("recovery not wired: %+v", cc.Recovery)
	}
	if cc.Server.Timeout != 30*time.Second || !cc.Server.Shed {
		t.Fatalf("deadline knobs not defaulted onto the server: %+v", cc.Server)
	}

	pinned := cfg.Cluster(serve.ServerConfig{MaxBatch: 4, Timeout: time.Minute})
	if pinned.Server.Timeout != time.Minute {
		t.Fatalf("caller timeout overridden: %v", pinned.Server.Timeout)
	}
}
