package conf

import (
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

func newDriver() *cuda.Driver {
	return cuda.NewDriver(gpu.NewDevice("t", sim.GiB), sim.NewClock(), sim.DefaultCostModel())
}

func TestParseDefaults(t *testing.T) {
	cfg, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Backend != "caching" {
		t.Fatalf("default backend %q", cfg.Backend)
	}
}

func TestParseFullCachingString(t *testing.T) {
	cfg, err := Parse("backend:caching, max_split_size_mb:128, garbage_collection_threshold:0.8")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxSplitSizeMB != 128 || cfg.GCThreshold != 0.8 {
		t.Fatalf("%+v", cfg)
	}
}

func TestParseGMLakeKnobs(t *testing.T) {
	cfg, err := Parse("backend:gmlake,frag_limit_mb:256,max_sblocks:4096,rebind_on_split:false")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Backend != "gmlake" || cfg.FragLimitMB != 256 || cfg.MaxSBlocks != 4096 {
		t.Fatalf("%+v", cfg)
	}
	if cfg.RebindSplit == nil || *cfg.RebindSplit {
		t.Fatal("rebind_on_split:false not captured")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"backend:turbo",                    // unknown backend
		"max_split_size_mb:-1",             // negative
		"max_split_size_mb:lots",           // not a number
		"garbage_collection_threshold:1.5", // out of range
		"rebind_on_split:perhaps",          // not a bool
		"frag_limit_mb",                    // not key:value
		"warp_speed:9",                     // unknown key
		"max_sblocks:0",                    // zero
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestParseSkipsEmptySegments(t *testing.T) {
	cfg, err := Parse("backend:gmlake,,")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Backend != "gmlake" {
		t.Fatalf("%+v", cfg)
	}
}

func TestBuildAllBackends(t *testing.T) {
	for _, s := range []string{
		"",
		"backend:gmlake",
		"backend:native",
		"backend:expandable",
		"backend:compact",
		"backend:caching,max_split_size_mb:64",
		"backend:gmlake,frag_limit_mb:64,max_sblocks:128,rebind_on_split:true",
	} {
		a, err := New(s, newDriver())
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		b, err := a.Alloc(4 * sim.MiB)
		if err != nil {
			t.Fatalf("%q: alloc: %v", s, err)
		}
		a.Free(b)
		if got := a.Stats().Active; got != 0 {
			t.Fatalf("%q: active %d after free", s, got)
		}
	}
}

func TestNewPropagatesParseError(t *testing.T) {
	if _, err := New("backend:bogus", newDriver()); err == nil {
		t.Fatal("bad config built an allocator")
	}
}

func TestBuildRejectsUnknownBackendStruct(t *testing.T) {
	cfg := Config{Backend: "bogus"}
	if _, err := cfg.Build(newDriver()); err == nil {
		t.Fatal("unknown backend built")
	}
}

func TestParseServeKeys(t *testing.T) {
	cfg, err := Parse("backend:gmlake,serve_mix:chat+batch,serve_rate:6.5,burst_cv:4")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ServeMix != "chat+batch" || cfg.ServeRate != 6.5 || cfg.BurstCV != 4 {
		t.Fatalf("%+v", cfg)
	}
	if !cfg.HasServeMix() {
		t.Fatal("HasServeMix false after serve_mix key")
	}
	mix, err := cfg.ServeWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if mix.Name != "mixed-bursty" {
		t.Fatalf("chat+batch resolved to %q", mix.Name)
	}
	if mix.Rate != 6.5 {
		t.Fatalf("serve_rate not applied: %g", mix.Rate)
	}
	for _, c := range mix.Classes {
		if c.Arrival.Kind == servegen.ArrivalGamma && c.Arrival.CV != 4 {
			t.Fatalf("burst_cv not applied to class %s: %g", c.Name, c.Arrival.CV)
		}
	}
	// The allocator half of the string still builds.
	if _, err := cfg.Build(newDriver()); err != nil {
		t.Fatal(err)
	}
}

func TestServeWorkloadDefaults(t *testing.T) {
	cfg, err := Parse("backend:caching")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HasServeMix() {
		t.Fatal("HasServeMix true without serve_mix key")
	}
	mix, err := cfg.ServeWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if mix.Name != "mixed-bursty" {
		t.Fatalf("default mix %q", mix.Name)
	}
	if mix.Rate != servegen.MixedBursty().Rate {
		t.Fatalf("default mix rate overridden: %g", mix.Rate)
	}
}

// TestParseParallel is table-driven over the parallel:<n> engine knob:
// 0 (= GOMAXPROCS) and positive worker counts parse; negatives, floats,
// NaN and junk are rejected.
func TestParseParallel(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"parallel:0", 0, true},
		{"parallel:1", 1, true},
		{"parallel:8", 8, true},
		{"backend:gmlake,parallel:4", 4, true},
		{"parallel:-1", 0, false},
		{"parallel:-8", 0, false},
		{"parallel:NaN", 0, false},
		{"parallel:+Inf", 0, false},
		{"parallel:2.5", 0, false},
		{"parallel:many", 0, false},
		{"parallel:", 0, false},
	}
	for _, c := range cases {
		cfg, err := Parse(c.in)
		if c.ok != (err == nil) {
			t.Errorf("Parse(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && cfg.Parallelism != c.want {
			t.Errorf("Parse(%q).Parallelism = %d, want %d", c.in, cfg.Parallelism, c.want)
		}
	}
}

func TestParseServeKeyErrors(t *testing.T) {
	for _, s := range []string{
		"serve_mix:nope",  // unknown mix
		"serve_rate:0",    // must be positive
		"serve_rate:fast", // not a number
		"serve_rate:NaN",  // NaN compares false to everything
		"serve_rate:+Inf", // infinite rate
		"burst_cv:-2",     // negative
		"burst_cv:-Inf",   // negative infinity
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestParseClusterKeys(t *testing.T) {
	cfg, err := Parse("backend:gmlake,serve_mix:mixed,replicas:4,dispatch:jsq,aging:2s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Replicas != 4 {
		t.Fatalf("replicas = %d", cfg.Replicas)
	}
	if cfg.Dispatch != serve.DispatchJSQ {
		t.Fatalf("dispatch = %q", cfg.Dispatch)
	}
	if cfg.Aging != 2*time.Second {
		t.Fatalf("aging = %v", cfg.Aging)
	}
	// Unconfigured defaults: single server, round-robin, no aging.
	cfg, err = Parse("backend:caching")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Replicas != 0 || cfg.Dispatch != "" || cfg.Aging != 0 {
		t.Fatalf("cluster defaults polluted: %+v", cfg)
	}
	if _, err := serve.ParseDispatch(string(cfg.Dispatch)); err != nil {
		t.Fatal("empty dispatch must resolve to the default policy")
	}
}

func TestParseExactSamples(t *testing.T) {
	cfg, err := Parse("backend:gmlake,serve_mix:mixed,exact_samples:500")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ExactSamples != 500 {
		t.Fatalf("exact_samples = %d", cfg.ExactSamples)
	}
	// Negative means sketch-only, zero means the serve default: both valid.
	cfg, err = Parse("backend:caching,exact_samples:-1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ExactSamples != -1 {
		t.Fatalf("exact_samples = %d", cfg.ExactSamples)
	}
	if cfg, err = Parse("backend:caching"); err != nil || cfg.ExactSamples != 0 {
		t.Fatalf("exact_samples default: %d, %v", cfg.ExactSamples, err)
	}
	if _, err := Parse("exact_samples:lots"); err == nil {
		t.Fatal("accepted non-integer exact_samples")
	}
}

func TestParseClusterKeyErrors(t *testing.T) {
	for _, s := range []string{
		"replicas:0",       // cluster needs at least one replica
		"replicas:-2",      // negative
		"replicas:many",    // not a number
		"dispatch:fastest", // unknown policy
		"aging:-1s",        // negative duration
		"aging:2 parsecs",  // not a duration
		"aging:1000000",    // missing unit
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestParseElasticKeys(t *testing.T) {
	cfg, err := Parse("min_replicas:1,max_replicas:6,scale_up:8,scale_down:2,scale_cooldown:500ms,steal:true,replica_caps:2/1/1.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MinReplicas != 1 || cfg.MaxReplicas != 6 {
		t.Fatalf("bounds = [%d, %d]", cfg.MinReplicas, cfg.MaxReplicas)
	}
	if cfg.ScaleUpDepth != 8 || cfg.ScaleDownDepth != 2 || cfg.ScaleCooldown != 500*time.Millisecond {
		t.Fatalf("scaler knobs: %+v", cfg)
	}
	if !cfg.Steal {
		t.Fatal("steal:true not captured")
	}
	if len(cfg.ReplicaCaps) != 3 || cfg.ReplicaCaps[0] != 2 || cfg.ReplicaCaps[1] != 1 || cfg.ReplicaCaps[2] != 1.5 {
		t.Fatalf("replica_caps = %v", cfg.ReplicaCaps)
	}
	// Dispatch names from conf strings may carry case and whitespace.
	cfg, err = Parse("dispatch: JSQ")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dispatch != serve.DispatchJSQ {
		t.Fatalf("dispatch = %q", cfg.Dispatch)
	}
}

func TestParseElasticKeyErrors(t *testing.T) {
	for _, s := range []string{
		"min_replicas:0",      // positive
		"max_replicas:-3",     // negative
		"scale_up:0",          // positive
		"scale_down:none",     // not a number
		"scale_cooldown:-1s",  // negative duration
		"steal:perhaps",       // not a bool
		"replica_caps:2/0/1",  // zero weight
		"replica_caps:2,1",    // comma splits keys, not weights
		"replica_caps:fast/1", // not a number
		"replica_caps:",       // empty
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestClusterAssembly(t *testing.T) {
	cfg, err := Parse("replicas:2,dispatch:least-kv,min_replicas:2,max_replicas:4,steal:true,replica_caps:2/1")
	if err != nil {
		t.Fatal(err)
	}
	cc := cfg.Cluster(serve.ServerConfig{MaxBatch: 8, Aging: cfg.Aging})
	if cc.Replicas != 2 || cc.MinReplicas != 2 || cc.MaxReplicas != 4 || !cc.Steal {
		t.Fatalf("%+v", cc)
	}
	if cc.Dispatch != serve.DispatchLeastKV || cc.Server.MaxBatch != 8 {
		t.Fatalf("%+v", cc)
	}
	if len(cc.Overrides) != 2 || cc.Overrides[0].Capacity != 2 || cc.Overrides[1].Capacity != 1 {
		t.Fatalf("overrides = %+v", cc.Overrides)
	}
	// An unconfigured static fleet is one replica.
	plain, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if cc := plain.Cluster(serve.ServerConfig{MaxBatch: 8}); cc.Replicas != 1 || cc.MaxReplicas != 0 {
		t.Fatalf("%+v", cc)
	}
	// With autoscaling on and no replicas key, the initial size is the
	// scaler's business (serve defaults it to MinReplicas).
	auto, err := Parse("max_replicas:4")
	if err != nil {
		t.Fatal(err)
	}
	if cc := auto.Cluster(serve.ServerConfig{MaxBatch: 8}); cc.Replicas != 0 || cc.MaxReplicas != 4 {
		t.Fatalf("%+v", cc)
	}
}

func TestParseSessionKeys(t *testing.T) {
	cfg, err := Parse("replicas:4,dispatch:session-affinity,affinity_base:least-kv,prefix_reuse:true")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dispatch != serve.DispatchSessionAffinity {
		t.Fatalf("dispatch = %q", cfg.Dispatch)
	}
	if cfg.AffinityBase != serve.DispatchLeastKV {
		t.Fatalf("affinity_base = %q", cfg.AffinityBase)
	}
	if !cfg.PrefixReuse {
		t.Fatal("prefix_reuse:true not captured")
	}
	// Both default off: a sessionless conf string assembles the pre-session
	// scheduler exactly.
	cfg, err = Parse("backend:caching")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PrefixReuse || cfg.AffinityBase != "" {
		t.Fatalf("session defaults polluted: %+v", cfg)
	}
	// Affinity with no explicit base: serve defaults the base to jsq.
	if _, err := Parse("dispatch:session-affinity,prefix_reuse:true"); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{
		"prefix_reuse:maybe",                  // not a bool
		"affinity_base:fastest",               // unknown policy
		"affinity_base:",                      // empty
		"affinity_base:jsq",                   // needs session-affinity dispatch
		"dispatch:jsq,affinity_base:least-kv", // ditto, with dispatch set
		"dispatch:session-affinity,affinity_base:session-affinity", // self-referential
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestClusterAssemblySessionKnobs(t *testing.T) {
	cfg, err := Parse("replicas:2,dispatch:session-affinity,affinity_base:least-kv,prefix_reuse:true")
	if err != nil {
		t.Fatal(err)
	}
	cc := cfg.Cluster(serve.ServerConfig{MaxBatch: 8})
	if cc.Dispatch != serve.DispatchSessionAffinity || cc.AffinityBase != serve.DispatchLeastKV {
		t.Fatalf("%+v", cc)
	}
	if !cc.Server.PrefixReuse {
		t.Fatal("prefix_reuse did not reach the server config")
	}
	// A caller that already enabled reuse on the server config keeps it
	// regardless of the conf string (the caller-wins merge rule).
	plain, err := Parse("replicas:2")
	if err != nil {
		t.Fatal(err)
	}
	if cc := plain.Cluster(serve.ServerConfig{MaxBatch: 8, PrefixReuse: true}); !cc.Server.PrefixReuse {
		t.Fatal("caller's PrefixReuse lost in assembly")
	}
}
