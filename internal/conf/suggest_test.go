package conf

import (
	"strings"
	"testing"
)

// TestUnknownKeySuggestions pins the did-you-mean behavior: a plausible
// typo names its nearest known key, gibberish gets no suggestion.
func TestUnknownKeySuggestions(t *testing.T) {
	cases := []struct {
		in      string
		suggest string // "" = error mentions no suggestion
	}{
		{"replicaz:4", "replicas"},
		{"serve_rte:6", "serve_rate"},
		{"maxreplicas:8", "max_replicas"},
		{"trace_n:x.jsonl", "trace_in"},
		{"backoffs:2", "backoff"},
		{"scale_cool_down:1s", "scale_cooldown"},
		{"garbage_collection_treshold:0.5", "garbage_collection_threshold"},
		{"warp_speed:9", ""},
		{"zzzzqqq:1", ""},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) accepted an unknown key", c.in)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown key") {
			t.Errorf("Parse(%q) error %q does not mention unknown key", c.in, msg)
			continue
		}
		if c.suggest == "" {
			if strings.Contains(msg, "did you mean") {
				t.Errorf("Parse(%q) suggested for gibberish: %q", c.in, msg)
			}
		} else if !strings.Contains(msg, `did you mean "`+c.suggest+`"`) {
			t.Errorf("Parse(%q) = %q, want suggestion %q", c.in, msg, c.suggest)
		}
	}
}

// TestKnownKeysAccepted pins knownKeys against Parse's switch: every
// listed key must be recognized (its error, if any, is about the value or
// cross-key validation — never "unknown key"), so the suggestion list
// cannot drift from the parser.
func TestKnownKeysAccepted(t *testing.T) {
	samples := map[string]string{
		"backend":                      "gmlake",
		"serve_mix":                    "chat-heavy",
		"dispatch":                     "jsq",
		"fault_plan":                   "crash@t=12s:r1",
		"rebind_on_split":              "true",
		"steal":                        "true",
		"shed":                         "true",
		"fit":                          "true",
		"aging":                        "2s",
		"scale_cooldown":               "500ms",
		"mttf":                         "8s",
		"mttr":                         "1s",
		"timeout":                      "30s",
		"garbage_collection_threshold": "0.5",
		"replica_caps":                 "2/1",
		"trace_in":                     "t.jsonl",
		"trace_out":                    "t.jsonl",
		"trace_scale":                  "2",
		"serve_rate":                   "6",
		"burst_cv":                     "4",
		"backoff":                      "2",
	}
	for _, key := range knownKeys {
		val, ok := samples[key]
		if !ok {
			val = "4"
		}
		_, err := Parse(key + ":" + val)
		if err != nil && strings.Contains(err.Error(), "unknown key") {
			t.Errorf("Parse rejects listed key %q as unknown: %v", key, err)
		}
	}
}

// TestEditDistance spot-checks the Levenshtein helper.
func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"replicas", "replicaz", 1},
		{"steal", "scale_up", 6},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.d {
			t.Errorf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.d)
		}
		if got := editDistance(c.b, c.a); got != c.d {
			t.Errorf("editDistance(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.d)
		}
	}
}
