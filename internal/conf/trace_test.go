package conf

import (
	"strings"
	"testing"
)

// TestParseTraceKeys is the table-driven coverage of the request-trace
// configuration keys, including the cross-key rule that fit and
// trace_scale are rejected without a trace_in to act on.
func TestParseTraceKeys(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string // "" = must parse
		check   func(Config) bool
	}{
		{
			in:    "trace_in:prod.jsonl",
			check: func(c Config) bool { return c.TraceIn == "prod.jsonl" && !c.Fit && c.TraceScale == 0 },
		},
		{
			in:    "trace_in:prod.csv,trace_out:replayed.jsonl",
			check: func(c Config) bool { return c.TraceIn == "prod.csv" && c.TraceOut == "replayed.jsonl" },
		},
		{
			in:    "trace_in:prod.jsonl,trace_scale:2.5",
			check: func(c Config) bool { return c.TraceScale == 2.5 },
		},
		{
			in:    "trace_in:prod.jsonl,fit:true",
			check: func(c Config) bool { return c.Fit },
		},
		{
			in:    "trace_in:prod.jsonl,fit:false",
			check: func(c Config) bool { return !c.Fit },
		},
		{
			in:    "backend:gmlake,trace_in:t.jsonl,fit:1,trace_scale:0.5,parallel:2",
			check: func(c Config) bool { return c.Backend == "gmlake" && c.Fit && c.TraceScale == 0.5 },
		},
		{
			// trace_out alone is fine: capture a synthetic run.
			in:    "serve_mix:chat-heavy,trace_out:captured.csv",
			check: func(c Config) bool { return c.TraceOut == "captured.csv" && c.ServeMix == "chat-heavy" },
		},
		{in: "fit:true", wantErr: "fit requires trace_in"},
		{in: "fit:1,serve_mix:chat-heavy", wantErr: "fit requires trace_in"},
		{in: "trace_scale:2", wantErr: "trace_scale requires trace_in"},
		{in: "trace_in:", wantErr: "trace_in needs a file path"},
		{in: "trace_out:", wantErr: "trace_out needs a file path"},
		{in: "trace_in:t.jsonl,trace_scale:0", wantErr: "trace_scale"},
		{in: "trace_in:t.jsonl,trace_scale:-1", wantErr: "trace_scale"},
		{in: "trace_in:t.jsonl,trace_scale:NaN", wantErr: "trace_scale"},
		{in: "trace_in:t.jsonl,fit:perhaps", wantErr: "fit must be a bool"},
	}
	for _, c := range cases {
		cfg, err := Parse(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Parse(%q) error %v, want mention of %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !c.check(cfg) {
			t.Errorf("Parse(%q) = %+v fails check", c.in, cfg)
		}
	}
}
