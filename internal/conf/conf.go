// Package conf parses PYTORCH_CUDA_ALLOC_CONF-style configuration strings
// and builds the selected allocator. The paper stresses that switching
// between the caching allocator and GMLake "is notably convenient by
// switching certain configurations" — this package is that switch:
//
//	backend:gmlake
//	backend:caching,max_split_size_mb:128,garbage_collection_threshold:0.8
//	backend:gmlake,frag_limit_mb:256,max_sblocks:4096
//
// Keys are comma-separated key:value pairs, unknown keys are errors (typos
// in environment variables should never be silent), and every knob maps to
// a field of the corresponding allocator's Config.
//
// Beyond allocator knobs, the same string configures the serving-workload
// generator (consumed by cmd/gmlake-serve and the harness, not by Build):
//
//	backend:gmlake,serve_mix:chat+batch,burst_cv:4,serve_rate:6
//
//	serve_mix:<name>    named multi-tenant client mix (chat-heavy,
//	                    batch-heavy, mixed-bursty, chat+batch, …)
//	serve_rate:<r>      aggregate request rate override, requests/second
//	burst_cv:<cv>       interarrival CV override for the mix's bursty
//	                    (Gamma-arrival) classes
//	parallel:<n>        worker-pool bound for the parallel experiment
//	                    engine and policy sweeps (0 = GOMAXPROCS)
//
// and the multi-replica serving cluster (consumed by cmd/gmlake-serve and
// the servecluster experiment):
//
//	replicas:<n>        replica servers behind the cluster admission
//	                    queue (1 = the single-server loop); with
//	                    autoscaling on, the initial fleet size
//	dispatch:<policy>   cluster dispatch policy: round-robin, jsq
//	                    (join-shortest-queue), least-kv or
//	                    session-affinity (route follow-up session turns
//	                    to the replica holding their KV prefix)
//	aging:<dur>         priority-aging rate, e.g. aging:2s — a waiting
//	                    request gains one priority level per <dur> of
//	                    queue wait; 0 disables aging
//	exact_samples:<n>   exact-retention threshold of the latency digests:
//	                    up to n raw samples per digest are summarized by
//	                    the exact nearest-rank rule before spilling into
//	                    a fixed-size quantile sketch (0 = the default
//	                    8192; negative = sketch from the first sample)
//
// the session-serving knobs (PR 10, consumed by the cluster runners):
//
//	prefix_reuse:<bool> session KV prefix reuse: a follow-up turn whose
//	                    session prefix is still resident on its replica
//	                    skips that many prompt tokens of prefill
//	affinity_base:<p>   fallback dispatch policy for session-affinity
//	                    when a request has no resident prefix (default
//	                    jsq; requires dispatch:session-affinity and
//	                    cannot itself be session-affinity)
//
// the elastic heterogeneous fleet (PR 4):
//
//	min_replicas:<n>    autoscaler floor (needs max_replicas)
//	max_replicas:<n>    autoscaler ceiling; > 0 enables queue-depth
//	                    autoscaling between the two bounds
//	scale_up:<n>        queued backlog per active replica that spawns
//	                    one more (default 4)
//	scale_down:<n>      backlog per remaining replica below which one
//	                    replica starts draining (default 1); a draining
//	                    replica leaves only after it empties
//	scale_cooldown:<d>  minimum virtual time between scale decisions
//	                    (default 250ms)
//	steal:<bool>        work-stealing re-dispatch: a starving replica
//	                    takes queued (never running) requests from a
//	                    backlogged peer
//	replica_caps:<a/b/…> per-replica capacity weights, slash-separated
//	                    (e.g. replica_caps:2/1/1): load-aware dispatch
//	                    divides a replica's load by its weight
//
// the fault-injection and recovery knobs (PR 7, consumed by the cluster
// runners):
//
//	mttf:<dur>          mean time to failure per replica (exponential,
//	                    seeded); requires mttr
//	mttr:<dur>          mean time to restart after a crash; requires mttf
//	fault_plan:<plan>   scripted crash/restart schedule, '/'-separated
//	                    events like crash@t=12s:r1/restart@t=14s:r1;
//	                    mutually exclusive with mttf/mttr
//	timeout:<dur>       per-request deadline from arrival; completions
//	                    past it count as deadline misses, not goodput
//	retries:<n>         re-dispatch attempts per crashed in-flight
//	                    request (requires timeout — unbounded retries
//	                    with no deadline would mask every crash)
//	backoff:<f>         exponential retry-backoff multiplier, >= 1
//	                    (requires retries)
//	retry_budget:<n>    total retries one client class may consume
//	                    (requires retries)
//	shed:<bool>         deadline-aware admission shedding: reject
//	                    requests that provably cannot meet the deadline
//	                    (requires timeout)
//
// and the request-trace subsystem (internal/reqtrace, consumed by
// cmd/gmlake-serve and the servetrace experiment):
//
//	trace_in:<path>     replay the request trace at <path> (JSONL or CSV)
//	                    instead of generating a synthetic mix
//	trace_out:<path>    capture the completed run back into a trace file
//	trace_scale:<f>     rate-scale the replayed trace: 2 doubles the
//	                    request rate (requires trace_in)
//	fit:<bool>          calibrate: fit a servegen mix to the trace and
//	                    serve the fitted mix instead of the replay, with a
//	                    fit-error report (requires trace_in)
package conf

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/caching"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/expandable"
	"repro/internal/memalloc"
	"repro/internal/serve"
	"repro/internal/servegen"
	"repro/internal/sim"
)

// Config is a parsed allocator configuration.
type Config struct {
	// Backend selects the allocator: "caching" (default), "gmlake",
	// "native", "expandable", "compact".
	Backend string

	// Caching knobs (PYTORCH_CUDA_ALLOC_CONF names).
	MaxSplitSizeMB int64
	GCThreshold    float64

	// GMLake knobs.
	FragLimitMB int64 // 0 = paper default
	MaxSBlocks  int   // 0 = default
	RebindSplit *bool // nil = default (on)

	// Serving-workload knobs (see the package comment; applied by
	// ServeWorkload, ignored by Build).
	ServeMix  string  // named client mix ("" = none configured)
	ServeRate float64 // aggregate requests/second override (0 = mix default)
	BurstCV   float64 // bursty-class interarrival CV override (0 = mix default)

	// Request-trace knobs (internal/reqtrace; consumed by the serving
	// runners, ignored by Build). TraceScale and Fit require TraceIn —
	// Parse rejects them without it.
	TraceIn    string  // replay this trace file instead of a synthetic mix
	TraceOut   string  // capture the completed run into this trace file
	TraceScale float64 // replay rate multiplier (0 = recorded rate)
	Fit        bool    // serve the mix fitted to TraceIn, with a fit report

	// Serving-cluster knobs (consumed by the cluster runners, ignored by
	// Build). Replicas 0 means unconfigured (callers treat it as 1);
	// Dispatch "" means round-robin; Aging 0 disables priority aging.
	Replicas int
	Dispatch serve.DispatchPolicy
	Aging    time.Duration
	// PrefixReuse enables session KV prefix reuse on every replica
	// (serve.ServerConfig.PrefixReuse); AffinityBase is session-affinity
	// dispatch's fallback policy ("" = jsq), only accepted alongside
	// dispatch:session-affinity.
	PrefixReuse  bool
	AffinityBase serve.DispatchPolicy
	// ExactSamples is the latency digests' exact-retention threshold
	// (serve.ServerConfig.ExactSamples): 0 means the serve default,
	// negative sketches from the first sample.
	ExactSamples int

	// Elastic-fleet knobs (see the package comment). MaxReplicas > 0
	// enables queue-depth autoscaling; Steal enables work-stealing
	// re-dispatch; ReplicaCaps are per-replica capacity weights for
	// capacity-aware dispatch over a heterogeneous fleet.
	MinReplicas    int
	MaxReplicas    int
	ScaleUpDepth   int
	ScaleDownDepth int
	ScaleCooldown  time.Duration
	Steal          bool
	ReplicaCaps    []float64

	// Fault-injection and recovery knobs (consumed by the cluster
	// runners, ignored by Build). MTTF/MTTR arm the seeded per-replica
	// crash/restart process (both or neither); FaultPlan is the scripted
	// alternative. Timeout is the per-request deadline; Retries, Backoff
	// and RetryBudget shape crash recovery (all require Timeout — Parse
	// rejects retry knobs with no deadline bounding them); Shed rejects
	// provably-late requests at admission (requires Timeout).
	MTTF        time.Duration
	MTTR        time.Duration
	FaultPlan   []serve.FaultEvent
	Timeout     time.Duration
	Retries     int
	Backoff     float64
	RetryBudget int
	Shed        bool

	// Parallelism bounds the worker pool of consumers that sweep
	// independent cells (the experiment engine, policy comparisons).
	// 0 — the default — means GOMAXPROCS; negative values are rejected
	// at parse time.
	Parallelism int
}

// HasServeMix reports whether the string configured a serving workload.
func (c Config) HasServeMix() bool { return c.ServeMix != "" }

// ServeWorkload resolves the configured client mix with the rate and
// burstiness overrides applied. When no serve_mix key was given, name
// defaults to the mixed bursty workload.
func (c Config) ServeWorkload() (servegen.Mix, error) {
	name := c.ServeMix
	if name == "" {
		name = "mixed-bursty"
	}
	m, err := servegen.MixByName(name)
	if err != nil {
		return servegen.Mix{}, err
	}
	if c.ServeRate > 0 {
		m = m.WithRate(c.ServeRate)
	}
	if c.BurstCV > 0 {
		m = m.WithBurstCV(c.BurstCV)
	}
	return m, nil
}

// Parse parses a configuration string. The empty string is the default
// caching backend.
func Parse(s string) (Config, error) {
	cfg := Config{Backend: "caching"}
	if strings.TrimSpace(s) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, ":")
		if !ok {
			return cfg, fmt.Errorf("conf: %q is not key:value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "backend":
			switch val {
			case "caching", "gmlake", "native", "expandable", "compact":
				cfg.Backend = val
			default:
				return cfg, fmt.Errorf("conf: unknown backend %q", val)
			}
		case "max_split_size_mb":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.MaxSplitSizeMB = n
		case "garbage_collection_threshold":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return cfg, fmt.Errorf("conf: %s must be in [0,1], got %q", key, val)
			}
			cfg.GCThreshold = f
		case "frag_limit_mb":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.FragLimitMB = n
		case "max_sblocks":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.MaxSBlocks = int(n)
		case "rebind_on_split":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %s must be a bool, got %q", key, val)
			}
			cfg.RebindSplit = &b
		case "serve_mix":
			if _, err := servegen.MixByName(val); err != nil {
				return cfg, fmt.Errorf("conf: %w", err)
			}
			cfg.ServeMix = val
		case "serve_rate":
			f, err := parsePositiveFloat(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.ServeRate = f
		case "burst_cv":
			f, err := parsePositiveFloat(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.BurstCV = f
		case "replicas":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.Replicas = int(n)
		case "dispatch":
			p, err := serve.ParseDispatch(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %w", err)
			}
			cfg.Dispatch = p
		case "prefix_reuse":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %s must be a bool, got %q", key, val)
			}
			cfg.PrefixReuse = b
		case "affinity_base":
			if val == "" {
				return cfg, fmt.Errorf("conf: affinity_base needs a policy name")
			}
			p, err := serve.ParseDispatch(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %w", err)
			}
			if p == serve.DispatchSessionAffinity {
				return cfg, fmt.Errorf("conf: affinity_base cannot itself be session-affinity")
			}
			cfg.AffinityBase = p
		case "aging":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("conf: %s must be a non-negative duration (e.g. 2s), got %q", key, val)
			}
			cfg.Aging = d
		case "exact_samples":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("conf: %s must be an integer (negative = sketch-only), got %q", key, val)
			}
			cfg.ExactSamples = int(n)
		case "min_replicas":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.MinReplicas = int(n)
		case "max_replicas":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.MaxReplicas = int(n)
		case "scale_up":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.ScaleUpDepth = int(n)
		case "scale_down":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.ScaleDownDepth = int(n)
		case "scale_cooldown":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return cfg, fmt.Errorf("conf: %s must be a non-negative duration (e.g. 500ms), got %q", key, val)
			}
			cfg.ScaleCooldown = d
		case "steal":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %s must be a bool, got %q", key, val)
			}
			cfg.Steal = b
		case "replica_caps":
			caps, err := parseReplicaCaps(val)
			if err != nil {
				return cfg, err
			}
			cfg.ReplicaCaps = caps
		case "mttf":
			d, err := parsePositiveDuration(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.MTTF = d
		case "mttr":
			d, err := parsePositiveDuration(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.MTTR = d
		case "fault_plan":
			plan, err := serve.ParseFaultPlan(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %w", err)
			}
			cfg.FaultPlan = plan
		case "timeout":
			d, err := parsePositiveDuration(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.Timeout = d
		case "retries":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.Retries = int(n)
		case "backoff":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 1 {
				return cfg, fmt.Errorf("conf: %s must be a finite number >= 1, got %q", key, val)
			}
			cfg.Backoff = f
		case "retry_budget":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.RetryBudget = int(n)
		case "shed":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %s must be a bool, got %q", key, val)
			}
			cfg.Shed = b
		case "trace_in":
			if val == "" {
				return cfg, fmt.Errorf("conf: trace_in needs a file path")
			}
			cfg.TraceIn = val
		case "trace_out":
			if val == "" {
				return cfg, fmt.Errorf("conf: trace_out needs a file path")
			}
			cfg.TraceOut = val
		case "trace_scale":
			f, err := parsePositiveFloat(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.TraceScale = f
		case "fit":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %s must be a bool, got %q", key, val)
			}
			cfg.Fit = b
		case "parallel":
			// Parsed as an integer, so "NaN", floats and junk are rejected
			// outright; 0 is legal and means GOMAXPROCS.
			n, err := strconv.ParseInt(val, 10, 32)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("conf: %s must be a non-negative integer, got %q", key, val)
			}
			cfg.Parallelism = int(n)
		default:
			if s := nearestKey(key); s != "" {
				return cfg, fmt.Errorf("conf: unknown key %q (did you mean %q?)", key, s)
			}
			return cfg, fmt.Errorf("conf: unknown key %q", key)
		}
	}
	// Cross-key validation: the trace transforms are meaningless without a
	// trace to transform, and silently ignoring them would hide a typo'd or
	// forgotten trace_in.
	if cfg.TraceIn == "" {
		if cfg.Fit {
			return cfg, fmt.Errorf("conf: fit requires trace_in")
		}
		if cfg.TraceScale > 0 {
			return cfg, fmt.Errorf("conf: trace_scale requires trace_in")
		}
	}
	// Fault knobs: an MTTF with no MTTR (or vice versa) is an incomplete
	// fault process, a scripted plan alongside one is ambiguous, and retry/
	// shed knobs without the keys they modulate would silently do nothing.
	if (cfg.MTTF > 0) != (cfg.MTTR > 0) {
		return cfg, fmt.Errorf("conf: mttf and mttr must be set together")
	}
	if len(cfg.FaultPlan) > 0 && cfg.MTTF > 0 {
		return cfg, fmt.Errorf("conf: fault_plan and mttf/mttr are mutually exclusive")
	}
	if cfg.Retries > 0 && cfg.Timeout == 0 {
		return cfg, fmt.Errorf("conf: retries requires timeout (unbounded retries need a deadline)")
	}
	if cfg.Backoff > 0 && cfg.Retries == 0 {
		return cfg, fmt.Errorf("conf: backoff requires retries")
	}
	if cfg.RetryBudget > 0 && cfg.Retries == 0 {
		return cfg, fmt.Errorf("conf: retry_budget requires retries")
	}
	if cfg.Shed && cfg.Timeout == 0 {
		return cfg, fmt.Errorf("conf: shed requires timeout")
	}
	// A fallback policy with nothing to fall back from is a typo'd or
	// half-edited configuration, not a request for a default.
	if cfg.AffinityBase != "" && cfg.Dispatch != serve.DispatchSessionAffinity {
		return cfg, fmt.Errorf("conf: affinity_base requires dispatch:session-affinity")
	}
	return cfg, nil
}

// knownKeys lists every key Parse's switch accepts, for did-you-mean
// suggestions on typos. Keep in sync with the switch above —
// TestKnownKeysAccepted pins the list against the parser.
var knownKeys = []string{
	"backend", "max_split_size_mb", "garbage_collection_threshold",
	"frag_limit_mb", "max_sblocks", "rebind_on_split",
	"serve_mix", "serve_rate", "burst_cv",
	"replicas", "dispatch", "aging", "exact_samples",
	"prefix_reuse", "affinity_base",
	"min_replicas", "max_replicas", "scale_up", "scale_down",
	"scale_cooldown", "steal", "replica_caps",
	"mttf", "mttr", "fault_plan", "timeout",
	"retries", "backoff", "retry_budget", "shed",
	"trace_in", "trace_out", "trace_scale", "fit",
	"parallel",
}

// nearestKey returns the known key closest to key by edit distance, or ""
// when nothing is close enough to be a plausible typo (distance must be
// at most 2, or a third of the key's length for long keys).
func nearestKey(key string) string {
	best, bestDist := "", int(^uint(0)>>1)
	for _, k := range knownKeys {
		if d := editDistance(key, k); d < bestDist || (d == bestDist && k < best) {
			best, bestDist = k, d
		}
	}
	limit := 2
	if l := len(key) / 3; l > limit {
		limit = l
	}
	if bestDist > limit {
		return ""
	}
	return best
}

// editDistance is the Levenshtein distance between a and b (unit costs),
// computed with a rolling single-row table.
func editDistance(a, b string) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	row := make([]int, len(a)+1)
	for i := range row {
		row[i] = i
	}
	for j := 1; j <= len(b); j++ {
		prev := row[0] // row[j-1][0]
		row[0] = j
		for i := 1; i <= len(a); i++ {
			ins := row[i-1] + 1 // insert
			del := row[i] + 1   // delete
			sub := prev         // substitute (or match)
			if a[i-1] != b[j-1] {
				sub++
			}
			prev = row[i]
			row[i] = min(ins, min(del, sub))
		}
	}
	return row[len(a)]
}

func parsePositiveDuration(key, val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("conf: %s must be a positive duration (e.g. 30s), got %q", key, val)
	}
	return d, nil
}

func parsePositive(key, val string) (int64, error) {
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("conf: %s must be a positive integer, got %q", key, val)
	}
	return n, nil
}

// parseReplicaCaps parses a slash-separated list of positive capacity
// weights, e.g. "2/1/1". Commas separate conf keys, so they cannot
// separate list elements.
func parseReplicaCaps(val string) ([]float64, error) {
	parts := strings.Split(val, "/")
	caps := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := parsePositiveFloat("replica_caps", strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		caps = append(caps, f)
	}
	return caps, nil
}

// Cluster assembles the serving-cluster configuration the string describes
// around the given per-replica server config (which carries MaxBatch and,
// typically, c.Aging). Replica capacity weights become per-replica
// overrides; an unconfigured static fleet defaults to one replica.
func (c Config) Cluster(server serve.ServerConfig) serve.ClusterConfig {
	cc := serve.ClusterConfig{
		Replicas:       c.Replicas,
		Dispatch:       c.Dispatch,
		AffinityBase:   c.AffinityBase,
		Server:         server,
		MinReplicas:    c.MinReplicas,
		MaxReplicas:    c.MaxReplicas,
		ScaleUpDepth:   c.ScaleUpDepth,
		ScaleDownDepth: c.ScaleDownDepth,
		ScaleCooldown:  c.ScaleCooldown,
		Steal:          c.Steal,
	}
	if cc.Replicas == 0 && cc.MaxReplicas == 0 {
		cc.Replicas = 1
	}
	for _, w := range c.ReplicaCaps {
		cc.Overrides = append(cc.Overrides, serve.ReplicaOverride{Capacity: w})
	}
	cc.Faults = serve.FaultConfig{MTTF: c.MTTF, MTTR: c.MTTR, Plan: c.FaultPlan}
	cc.Recovery = serve.RecoveryConfig{
		Retries:     c.Retries,
		Backoff:     c.Backoff,
		RetryBudget: c.RetryBudget,
	}
	// The deadline knobs ride on the per-replica server config; an explicit
	// value already set by the caller wins over the conf string.
	if cc.Server.Timeout == 0 {
		cc.Server.Timeout = c.Timeout
	}
	if !cc.Server.Shed {
		cc.Server.Shed = c.Shed
	}
	if !cc.Server.PrefixReuse {
		cc.Server.PrefixReuse = c.PrefixReuse
	}
	return cc
}

func parsePositiveFloat(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	// !(f > 0) also rejects NaN, which compares false to everything.
	if err != nil || !(f > 0) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("conf: %s must be a positive finite number, got %q", key, val)
	}
	return f, nil
}

// Build constructs the configured allocator over driver.
func (c Config) Build(driver *cuda.Driver) (memalloc.Allocator, error) {
	switch c.Backend {
	case "caching":
		return caching.NewWithConfig(driver, caching.Config{
			MaxSplitSize: c.MaxSplitSizeMB * sim.MiB,
			GCThreshold:  c.GCThreshold,
		}), nil
	case "gmlake":
		gc := core.DefaultConfig()
		if c.FragLimitMB > 0 {
			gc.FragLimit = c.FragLimitMB * sim.MiB
		}
		if c.MaxSBlocks > 0 {
			gc.MaxSBlocks = c.MaxSBlocks
		}
		if c.RebindSplit != nil {
			gc.RebindOnSplit = *c.RebindSplit
		}
		return core.New(driver, gc), nil
	case "native":
		return memalloc.NewNative(driver), nil
	case "expandable":
		return expandable.New(driver), nil
	case "compact":
		return compact.New(driver), nil
	default:
		return nil, fmt.Errorf("conf: unknown backend %q", c.Backend)
	}
}

// New parses s and builds the allocator in one step.
func New(s string, driver *cuda.Driver) (memalloc.Allocator, error) {
	cfg, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return cfg.Build(driver)
}
