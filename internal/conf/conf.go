// Package conf parses PYTORCH_CUDA_ALLOC_CONF-style configuration strings
// and builds the selected allocator. The paper stresses that switching
// between the caching allocator and GMLake "is notably convenient by
// switching certain configurations" — this package is that switch:
//
//	backend:gmlake
//	backend:caching,max_split_size_mb:128,garbage_collection_threshold:0.8
//	backend:gmlake,frag_limit_mb:256,max_sblocks:4096
//
// Keys are comma-separated key:value pairs, unknown keys are errors (typos
// in environment variables should never be silent), and every knob maps to
// a field of the corresponding allocator's Config.
package conf

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/caching"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/expandable"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

// Config is a parsed allocator configuration.
type Config struct {
	// Backend selects the allocator: "caching" (default), "gmlake",
	// "native", "expandable", "compact".
	Backend string

	// Caching knobs (PYTORCH_CUDA_ALLOC_CONF names).
	MaxSplitSizeMB int64
	GCThreshold    float64

	// GMLake knobs.
	FragLimitMB int64 // 0 = paper default
	MaxSBlocks  int   // 0 = default
	RebindSplit *bool // nil = default (on)
}

// Parse parses a configuration string. The empty string is the default
// caching backend.
func Parse(s string) (Config, error) {
	cfg := Config{Backend: "caching"}
	if strings.TrimSpace(s) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, ":")
		if !ok {
			return cfg, fmt.Errorf("conf: %q is not key:value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "backend":
			switch val {
			case "caching", "gmlake", "native", "expandable", "compact":
				cfg.Backend = val
			default:
				return cfg, fmt.Errorf("conf: unknown backend %q", val)
			}
		case "max_split_size_mb":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.MaxSplitSizeMB = n
		case "garbage_collection_threshold":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return cfg, fmt.Errorf("conf: %s must be in [0,1], got %q", key, val)
			}
			cfg.GCThreshold = f
		case "frag_limit_mb":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.FragLimitMB = n
		case "max_sblocks":
			n, err := parsePositive(key, val)
			if err != nil {
				return cfg, err
			}
			cfg.MaxSBlocks = int(n)
		case "rebind_on_split":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, fmt.Errorf("conf: %s must be a bool, got %q", key, val)
			}
			cfg.RebindSplit = &b
		default:
			return cfg, fmt.Errorf("conf: unknown key %q", key)
		}
	}
	return cfg, nil
}

func parsePositive(key, val string) (int64, error) {
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("conf: %s must be a positive integer, got %q", key, val)
	}
	return n, nil
}

// Build constructs the configured allocator over driver.
func (c Config) Build(driver *cuda.Driver) (memalloc.Allocator, error) {
	switch c.Backend {
	case "caching":
		return caching.NewWithConfig(driver, caching.Config{
			MaxSplitSize: c.MaxSplitSizeMB * sim.MiB,
			GCThreshold:  c.GCThreshold,
		}), nil
	case "gmlake":
		gc := core.DefaultConfig()
		if c.FragLimitMB > 0 {
			gc.FragLimit = c.FragLimitMB * sim.MiB
		}
		if c.MaxSBlocks > 0 {
			gc.MaxSBlocks = c.MaxSBlocks
		}
		if c.RebindSplit != nil {
			gc.RebindOnSplit = *c.RebindSplit
		}
		return core.New(driver, gc), nil
	case "native":
		return memalloc.NewNative(driver), nil
	case "expandable":
		return expandable.New(driver), nil
	case "compact":
		return compact.New(driver), nil
	default:
		return nil, fmt.Errorf("conf: unknown backend %q", c.Backend)
	}
}

// New parses s and builds the allocator in one step.
func New(s string, driver *cuda.Driver) (memalloc.Allocator, error) {
	cfg, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return cfg.Build(driver)
}
