// Package safealloc makes any memalloc.Allocator safe for concurrent use.
//
// The real PyTorch caching allocator is called from arbitrary host threads
// and serializes on a per-device mutex; GMLake inherits that locking. The
// simulation's allocators are single-threaded by design (they share a
// virtual clock), so this wrapper restores the thread-safety contract for
// users embedding the library in concurrent programs, and its tests pin the
// wrapper under -race.
package safealloc

import (
	"sync"

	"repro/internal/memalloc"
)

// Allocator serializes every operation of the wrapped allocator behind one
// mutex, PyTorch's per-device locking discipline.
type Allocator struct {
	mu    sync.Mutex
	inner memalloc.Allocator
}

// New wraps inner.
func New(inner memalloc.Allocator) *Allocator { return &Allocator{inner: inner} }

// Inner returns the wrapped allocator. Callers must not use it concurrently
// with the wrapper.
func (a *Allocator) Inner() memalloc.Allocator { return a.inner }

// Name implements memalloc.Allocator.
func (a *Allocator) Name() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inner.Name()
}

// Alloc implements memalloc.Allocator.
func (a *Allocator) Alloc(size int64) (*memalloc.Buffer, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inner.Alloc(size)
}

// Free implements memalloc.Allocator.
func (a *Allocator) Free(b *memalloc.Buffer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inner.Free(b)
}

// Stats implements memalloc.Allocator.
func (a *Allocator) Stats() memalloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inner.Stats()
}

// EmptyCache implements memalloc.Allocator.
func (a *Allocator) EmptyCache() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inner.EmptyCache()
}

// Do runs fn with the lock held, for multi-call sequences that must observe
// a consistent allocator state (e.g. capture stats then free).
func (a *Allocator) Do(fn func(inner memalloc.Allocator)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fn(a.inner)
}
