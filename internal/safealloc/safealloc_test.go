package safealloc

import (
	"sync"
	"testing"

	"repro/internal/caching"
	"repro/internal/core"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/memalloc"
	"repro/internal/sim"
)

func newInner(capacity int64, gmlake bool) memalloc.Allocator {
	drv := cuda.NewDriver(gpu.NewDevice("t", capacity), sim.NewClock(), sim.DefaultCostModel())
	if gmlake {
		return core.NewDefault(drv)
	}
	return caching.New(drv)
}

func TestPassThrough(t *testing.T) {
	a := New(newInner(sim.GiB, false))
	if a.Name() != "caching" {
		t.Fatalf("Name = %q", a.Name())
	}
	b, err := a.Alloc(4 * sim.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Active; got != b.BlockSize {
		t.Fatalf("active = %d", got)
	}
	a.Free(b)
	a.EmptyCache()
	if got := a.Stats().Reserved; got != 0 {
		t.Fatalf("reserved = %d after EmptyCache", got)
	}
	if a.Inner() == nil {
		t.Fatal("Inner is nil")
	}
}

func TestDoHoldsConsistentState(t *testing.T) {
	a := New(newInner(sim.GiB, false))
	b, _ := a.Alloc(8 * sim.MiB)
	var active int64
	a.Do(func(inner memalloc.Allocator) {
		active = inner.Stats().Active
	})
	if active != b.BlockSize {
		t.Fatalf("Do observed %d", active)
	}
	a.Free(b)
}

// stress runs allocate/free churn across goroutines; under -race this pins
// the wrapper's mutual exclusion.
func stress(t *testing.T, a *Allocator) {
	t.Helper()
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRNG(seed + 1)
			live := make([]*memalloc.Buffer, 0, 16)
			for i := 0; i < rounds; i++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(live))
					a.Free(live[k])
					live = append(live[:k], live[k+1:]...)
					continue
				}
				size := int64(rng.Intn(8)+1) * 2 * sim.MiB
				b, err := a.Alloc(size)
				if err != nil {
					continue // transient pressure is fine
				}
				live = append(live, b)
			}
			for _, b := range live {
				a.Free(b)
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := a.Stats().Active; got != 0 {
		t.Fatalf("leaked %d bytes after concurrent churn", got)
	}
}

func TestConcurrentChurnCaching(t *testing.T) {
	stress(t, New(newInner(4*sim.GiB, false)))
}

func TestConcurrentChurnGMLake(t *testing.T) {
	a := New(newInner(4*sim.GiB, true))
	stress(t, a)
	var err error
	a.Do(func(inner memalloc.Allocator) {
		err = inner.(*core.Allocator).CheckInvariants()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStatsReaders(t *testing.T) {
	a := New(newInner(2*sim.GiB, false))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := a.Stats()
					if s.Active < 0 || s.Reserved < 0 {
						t.Error("negative accounting observed")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		b, err := a.Alloc(2 * sim.MiB)
		if err != nil {
			t.Fatal(err)
		}
		a.Free(b)
	}
	close(stop)
	wg.Wait()
}
